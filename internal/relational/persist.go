package relational

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// This file implements a plain-text persistence format for databases, so
// acquired and repaired instances can be saved and reloaded (the paper's
// module "transforms them into a database instance" — this is its
// serialization). The format is line-oriented:
//
//	relation CashBudget(Year:Z, Section:S, Subsection:S, Type:S, Value:Z)
//	measure CashBudget.Value
//	row CashBudget	2003	Receipts	beginning cash	drv	20
//
// Row values are tab-separated (tabs inside string values are not
// supported and rejected on write).

// Write serializes the database.
func (d *Database) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, name := range d.order {
		rel := d.relations[name]
		if _, err := fmt.Fprintf(bw, "relation %s\n", rel.Schema()); err != nil {
			return err
		}
	}
	for _, m := range d.Measures() {
		if _, err := fmt.Fprintf(bw, "measure %s\n", m); err != nil {
			return err
		}
	}
	for _, name := range d.order {
		rel := d.relations[name]
		for _, t := range rel.Tuples() {
			cells := make([]string, rel.Schema().Arity())
			for i := range cells {
				v := t.At(i)
				s := v.String()
				if strings.ContainsAny(s, "\t\n") {
					return fmt.Errorf("relational: value %q of %s contains tab/newline; not serializable", s, name)
				}
				cells[i] = s
			}
			if _, err := fmt.Fprintf(bw, "row %s\t%s\n", name, strings.Join(cells, "\t")); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Read parses a database previously serialized with Write.
func Read(r io.Reader) (*Database, error) {
	db := NewDatabase()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimRight(sc.Text(), "\r")
		if strings.TrimSpace(line) == "" || strings.HasPrefix(strings.TrimSpace(line), "#") {
			continue
		}
		switch {
		case strings.HasPrefix(line, "relation "):
			s, err := parseSchemaDecl(strings.TrimPrefix(line, "relation "))
			if err != nil {
				return nil, fmt.Errorf("relational: line %d: %w", lineNo, err)
			}
			if _, err := db.AddRelation(s); err != nil {
				return nil, fmt.Errorf("relational: line %d: %w", lineNo, err)
			}
		case strings.HasPrefix(line, "measure "):
			ref := strings.TrimSpace(strings.TrimPrefix(line, "measure "))
			dot := strings.LastIndexByte(ref, '.')
			if dot < 0 {
				return nil, fmt.Errorf("relational: line %d: measure needs Relation.Attribute", lineNo)
			}
			if err := db.DesignateMeasure(ref[:dot], ref[dot+1:]); err != nil {
				return nil, fmt.Errorf("relational: line %d: %w", lineNo, err)
			}
		case strings.HasPrefix(line, "row "):
			rest := strings.TrimPrefix(line, "row ")
			parts := strings.Split(rest, "\t")
			rel := db.Relation(strings.TrimSpace(parts[0]))
			if rel == nil {
				return nil, fmt.Errorf("relational: line %d: row for undeclared relation %q", lineNo, parts[0])
			}
			if len(parts)-1 != rel.Schema().Arity() {
				return nil, fmt.Errorf("relational: line %d: %d values for arity %d", lineNo, len(parts)-1, rel.Schema().Arity())
			}
			vals := make([]Value, rel.Schema().Arity())
			for i := range vals {
				v, err := ParseValue(parts[i+1], rel.Schema().Attribute(i).Domain)
				if err != nil {
					return nil, fmt.Errorf("relational: line %d: %w", lineNo, err)
				}
				vals[i] = v
			}
			if _, err := rel.Insert(vals...); err != nil {
				return nil, fmt.Errorf("relational: line %d: %w", lineNo, err)
			}
		default:
			return nil, fmt.Errorf("relational: line %d: unknown directive %q", lineNo, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return db, nil
}

// parseSchemaDecl parses "Name(Attr:Z, Attr:S, ...)".
func parseSchemaDecl(s string) (*Schema, error) {
	open := strings.IndexByte(s, '(')
	closeIdx := strings.LastIndexByte(s, ')')
	if open < 0 || closeIdx < open {
		return nil, fmt.Errorf("bad relation declaration %q", s)
	}
	name := strings.TrimSpace(s[:open])
	var attrs []Attribute
	for _, part := range strings.Split(s[open+1:closeIdx], ",") {
		kv := strings.SplitN(part, ":", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad attribute %q", part)
		}
		dom, err := ParseDomain(kv[1])
		if err != nil {
			return nil, err
		}
		attrs = append(attrs, Attribute{Name: strings.TrimSpace(kv[0]), Domain: dom})
	}
	return NewSchema(name, attrs...)
}
