// Package relational implements the minimal typed relational substrate DART
// operates on: database schemes with attributes over the domains Z (integers),
// R (reals) and S (strings), relations, tuples, and measure-attribute sets.
//
// The package mirrors Section 3 of the paper: a relational scheme is a sorted
// predicate R(A1:D1, ..., An:Dn); a database scheme D designates a subset M_D
// of its numerical attributes as measure attributes, which are the only
// attributes repairs may update.
package relational

import (
	"fmt"
	"strconv"
	"strings"
)

// Domain identifies one of the three attribute domains of the paper.
type Domain int

const (
	// DomainInt is the infinite domain of integers (Z).
	DomainInt Domain = iota
	// DomainReal is the domain of reals (R).
	DomainReal
	// DomainString is the domain of strings (S).
	DomainString
)

// Numerical reports whether the domain is Z or R. Only numerical attributes
// may be designated as measure attributes.
func (d Domain) Numerical() bool { return d == DomainInt || d == DomainReal }

// String returns the paper's name for the domain.
func (d Domain) String() string {
	switch d {
	case DomainInt:
		return "Z"
	case DomainReal:
		return "R"
	case DomainString:
		return "S"
	default:
		return fmt.Sprintf("Domain(%d)", int(d))
	}
}

// ParseDomain converts a domain name ("Z"/"int", "R"/"real", "S"/"string")
// into a Domain.
func ParseDomain(s string) (Domain, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "z", "int", "integer":
		return DomainInt, nil
	case "r", "real", "float":
		return DomainReal, nil
	case "s", "string", "str":
		return DomainString, nil
	default:
		return 0, fmt.Errorf("relational: unknown domain %q", s)
	}
}

// Value is a single typed database value: an integer, a real, or a string.
// The zero Value is the integer 0.
type Value struct {
	kind Domain
	i    int64
	r    float64
	s    string
}

// Int returns an integer Value.
func Int(v int64) Value { return Value{kind: DomainInt, i: v} }

// Real returns a real Value.
func Real(v float64) Value { return Value{kind: DomainReal, r: v} }

// String returns a string Value.
func String(v string) Value { return Value{kind: DomainString, s: v} }

// Kind reports the domain the value belongs to.
func (v Value) Kind() Domain { return v.kind }

// IsNumeric reports whether the value lies in a numerical domain.
func (v Value) IsNumeric() bool { return v.kind.Numerical() }

// AsInt returns the value as an int64. It panics if the value is a string.
// Real values are truncated toward zero.
func (v Value) AsInt() int64 {
	switch v.kind {
	case DomainInt:
		return v.i
	case DomainReal:
		return int64(v.r)
	default:
		panic(fmt.Sprintf("relational: AsInt on string value %q", v.s))
	}
}

// AsFloat returns the numeric value as a float64. It panics if the value is
// a string.
func (v Value) AsFloat() float64 {
	switch v.kind {
	case DomainInt:
		return float64(v.i)
	case DomainReal:
		return v.r
	default:
		panic(fmt.Sprintf("relational: AsFloat on string value %q", v.s))
	}
}

// AsString returns the string content of a string value. It panics on
// numeric values; use String() for display formatting.
func (v Value) AsString() string {
	if v.kind != DomainString {
		panic(fmt.Sprintf("relational: AsString on %s value", v.kind))
	}
	return v.s
}

// Equal reports whether two values are identical in kind and content.
// An integer and a real are never Equal even when numerically equal;
// use NumericEqual for cross-domain numeric comparison.
func (v Value) Equal(o Value) bool { return v == o }

// NumericEqual reports whether two numeric values are numerically equal
// within tolerance eps. It returns false if either value is a string.
func (v Value) NumericEqual(o Value, eps float64) bool {
	if !v.IsNumeric() || !o.IsNumeric() {
		return false
	}
	d := v.AsFloat() - o.AsFloat()
	return d <= eps && d >= -eps
}

// Compare orders values: by kind first (Z < R < S), then by content.
// It returns -1, 0, or +1.
func (v Value) Compare(o Value) int {
	if v.kind != o.kind {
		if v.kind < o.kind {
			return -1
		}
		return 1
	}
	switch v.kind {
	case DomainInt:
		switch {
		case v.i < o.i:
			return -1
		case v.i > o.i:
			return 1
		}
	case DomainReal:
		switch {
		case v.r < o.r:
			return -1
		case v.r > o.r:
			return 1
		}
	case DomainString:
		return strings.Compare(v.s, o.s)
	}
	return 0
}

// String renders the value for display: integers and reals in decimal
// notation, strings verbatim.
func (v Value) String() string {
	switch v.kind {
	case DomainInt:
		return strconv.FormatInt(v.i, 10)
	case DomainReal:
		return strconv.FormatFloat(v.r, 'g', -1, 64)
	default:
		return v.s
	}
}

// ParseValue parses the textual form of a value belonging to domain d.
// String values are taken verbatim (surrounding whitespace trimmed).
func ParseValue(s string, d Domain) (Value, error) {
	s = strings.TrimSpace(s)
	switch d {
	case DomainInt:
		i, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("relational: parsing %q as Z: %w", s, err)
		}
		return Int(i), nil
	case DomainReal:
		r, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return Value{}, fmt.Errorf("relational: parsing %q as R: %w", s, err)
		}
		return Real(r), nil
	case DomainString:
		return String(s), nil
	default:
		return Value{}, fmt.Errorf("relational: unknown domain %v", d)
	}
}

// FromFloat builds a Value in domain d from a float64, rounding to the
// nearest integer for DomainInt. It returns an error for DomainString.
func FromFloat(f float64, d Domain) (Value, error) {
	switch d {
	case DomainInt:
		if f >= 0 {
			return Int(int64(f + 0.5)), nil
		}
		return Int(int64(f - 0.5)), nil
	case DomainReal:
		return Real(f), nil
	default:
		return Value{}, fmt.Errorf("relational: cannot build string value from float %v", f)
	}
}
