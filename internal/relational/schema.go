package relational

import (
	"fmt"
	"strings"
)

// Attribute is a named attribute of a relational scheme together with its
// domain.
type Attribute struct {
	Name   string
	Domain Domain
}

// Schema is a relational scheme R(A1:D1, ..., An:Dn).
type Schema struct {
	name  string
	attrs []Attribute
	index map[string]int
}

// NewSchema builds a relational scheme. Attribute names must be non-empty
// and pairwise distinct.
func NewSchema(name string, attrs ...Attribute) (*Schema, error) {
	if name == "" {
		return nil, fmt.Errorf("relational: empty relation name")
	}
	if len(attrs) == 0 {
		return nil, fmt.Errorf("relational: scheme %s has no attributes", name)
	}
	s := &Schema{name: name, attrs: append([]Attribute(nil), attrs...), index: make(map[string]int, len(attrs))}
	for i, a := range attrs {
		if a.Name == "" {
			return nil, fmt.Errorf("relational: scheme %s: attribute %d has empty name", name, i)
		}
		if _, dup := s.index[a.Name]; dup {
			return nil, fmt.Errorf("relational: scheme %s: duplicate attribute %q", name, a.Name)
		}
		s.index[a.Name] = i
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error; for statically known schemes.
func MustSchema(name string, attrs ...Attribute) *Schema {
	s, err := NewSchema(name, attrs...)
	if err != nil {
		panic(err)
	}
	return s
}

// Name returns the relation name.
func (s *Schema) Name() string { return s.name }

// Arity returns the number of attributes.
func (s *Schema) Arity() int { return len(s.attrs) }

// Attributes returns a copy of the attribute list.
func (s *Schema) Attributes() []Attribute { return append([]Attribute(nil), s.attrs...) }

// Attribute returns the i-th attribute.
func (s *Schema) Attribute(i int) Attribute { return s.attrs[i] }

// AttrIndex returns the position of the named attribute, or -1 if absent.
func (s *Schema) AttrIndex(name string) int {
	if i, ok := s.index[name]; ok {
		return i
	}
	return -1
}

// HasAttr reports whether the scheme has an attribute with the given name.
func (s *Schema) HasAttr(name string) bool { return s.AttrIndex(name) >= 0 }

// DomainOf returns the domain of the named attribute.
func (s *Schema) DomainOf(name string) (Domain, error) {
	i := s.AttrIndex(name)
	if i < 0 {
		return 0, fmt.Errorf("relational: scheme %s has no attribute %q", s.name, name)
	}
	return s.attrs[i].Domain, nil
}

// String renders the scheme in the paper's sorted-predicate notation.
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteString(s.name)
	b.WriteByte('(')
	for i, a := range s.attrs {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s:%s", a.Name, a.Domain)
	}
	b.WriteByte(')')
	return b.String()
}

// AttrRef names an attribute of a specific relation; database-level sets of
// attributes (such as the measure set M_D) are sets of AttrRefs.
type AttrRef struct {
	Relation  string
	Attribute string
}

// String renders the reference as Relation.Attribute.
func (r AttrRef) String() string { return r.Relation + "." + r.Attribute }
