package relational

import (
	"fmt"
	"sort"
	"strings"
)

// Database is an instance of a database scheme: a set of relations plus the
// designated measure-attribute set M_D (Section 3 of the paper). Measure
// attributes are the numerical attributes representing measure data; they
// are the only attributes atomic updates may change.
type Database struct {
	relations map[string]*Relation
	order     []string
	measures  map[AttrRef]bool
}

// NewDatabase creates an empty database.
func NewDatabase() *Database {
	return &Database{
		relations: make(map[string]*Relation),
		measures:  make(map[AttrRef]bool),
	}
}

// AddRelation registers an empty relation over the given scheme and returns
// it. Relation names must be unique within the database.
func (d *Database) AddRelation(schema *Schema) (*Relation, error) {
	if _, dup := d.relations[schema.Name()]; dup {
		return nil, fmt.Errorf("relational: duplicate relation %q", schema.Name())
	}
	r := NewRelation(schema)
	d.relations[schema.Name()] = r
	d.order = append(d.order, schema.Name())
	return r, nil
}

// MustAddRelation is AddRelation that panics on error.
func (d *Database) MustAddRelation(schema *Schema) *Relation {
	r, err := d.AddRelation(schema)
	if err != nil {
		panic(err)
	}
	return r
}

// Relation returns the named relation, or nil if absent.
func (d *Database) Relation(name string) *Relation { return d.relations[name] }

// RelationNames returns relation names in registration order.
func (d *Database) RelationNames() []string { return append([]string(nil), d.order...) }

// DesignateMeasure adds Relation.Attribute to the measure set M_D. The
// attribute must exist and be numerical.
func (d *Database) DesignateMeasure(relation, attribute string) error {
	r := d.relations[relation]
	if r == nil {
		return fmt.Errorf("relational: no relation %q", relation)
	}
	dom, err := r.Schema().DomainOf(attribute)
	if err != nil {
		return err
	}
	if !dom.Numerical() {
		return fmt.Errorf("relational: measure attribute %s.%s must be numerical, is %s",
			relation, attribute, dom)
	}
	d.measures[AttrRef{relation, attribute}] = true
	return nil
}

// IsMeasure reports whether Relation.Attribute belongs to M_D.
func (d *Database) IsMeasure(relation, attribute string) bool {
	return d.measures[AttrRef{relation, attribute}]
}

// Measures returns M_D sorted lexicographically.
func (d *Database) Measures() []AttrRef {
	out := make([]AttrRef, 0, len(d.measures))
	for m := range d.measures {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Relation != out[j].Relation {
			return out[i].Relation < out[j].Relation
		}
		return out[i].Attribute < out[j].Attribute
	})
	return out
}

// MeasuresOf returns the measure attributes of one relation (the paper's
// M_R), in scheme order.
func (d *Database) MeasuresOf(relation string) []string {
	r := d.relations[relation]
	if r == nil {
		return nil
	}
	var out []string
	for _, a := range r.Schema().Attributes() {
		if d.measures[AttrRef{relation, a.Name}] {
			out = append(out, a.Name)
		}
	}
	return out
}

// Clone returns a deep copy of the database (schemes shared, tuples copied).
func (d *Database) Clone() *Database {
	c := NewDatabase()
	for _, name := range d.order {
		c.relations[name] = d.relations[name].Clone()
		c.order = append(c.order, name)
	}
	for m := range d.measures {
		c.measures[m] = true
	}
	return c
}

// TotalTuples returns the number of tuples across all relations.
func (d *Database) TotalTuples() int {
	n := 0
	for _, r := range d.relations {
		n += r.Len()
	}
	return n
}

// String renders every relation as an aligned text table, in registration
// order — the format used by the CLI and the examples.
func (d *Database) String() string {
	var b strings.Builder
	for i, name := range d.order {
		if i > 0 {
			b.WriteByte('\n')
		}
		r := d.relations[name]
		writeTable(&b, r)
	}
	return b.String()
}

func writeTable(b *strings.Builder, r *Relation) {
	s := r.Schema()
	headers := make([]string, s.Arity())
	widths := make([]int, s.Arity())
	for i := 0; i < s.Arity(); i++ {
		headers[i] = s.Attribute(i).Name
		widths[i] = len(headers[i])
	}
	rows := make([][]string, 0, r.Len())
	for _, t := range r.Tuples() {
		row := make([]string, s.Arity())
		for i := 0; i < s.Arity(); i++ {
			row[i] = t.At(i).String()
			if len(row[i]) > widths[i] {
				widths[i] = len(row[i])
			}
		}
		rows = append(rows, row)
	}
	fmt.Fprintf(b, "%s\n", s.Name())
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString(" | ")
			}
			fmt.Fprintf(b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	total := len(headers) - 1
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range rows {
		writeRow(row)
	}
}
