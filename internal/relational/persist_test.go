package relational

import (
	"strings"
	"testing"
)

func TestWriteReadRoundTrip(t *testing.T) {
	db := NewDatabase()
	r := db.MustAddRelation(cashBudgetSchema(t))
	r.MustInsert(Int(2003), String("Receipts"), String("cash sales"), String("det"), Int(100))
	r.MustInsert(Int(2004), String("Balance"), String("net cash inflow"), String("drv"), Int(-10))
	db.MustAddRelation(MustSchema("Rates",
		Attribute{Name: "Name", Domain: DomainString},
		Attribute{Name: "Rate", Domain: DomainReal},
	)).MustInsert(String("discount"), Real(0.125))
	if err := db.DesignateMeasure("CashBudget", "Value"); err != nil {
		t.Fatal(err)
	}
	if err := db.DesignateMeasure("Rates", "Rate"); err != nil {
		t.Fatal(err)
	}

	var buf strings.Builder
	if err := db.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("%v\nserialized:\n%s", err, buf.String())
	}
	if got.String() != db.String() {
		t.Errorf("round trip mismatch:\n%s\nvs\n%s", got.String(), db.String())
	}
	if !got.IsMeasure("CashBudget", "Value") || !got.IsMeasure("Rates", "Rate") {
		t.Error("measures lost")
	}
	// And a second round trip is byte-identical.
	var buf2 strings.Builder
	if err := got.Write(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Error("serialization not canonical")
	}
}

func TestWriteRejectsTabs(t *testing.T) {
	db := NewDatabase()
	r := db.MustAddRelation(MustSchema("R", Attribute{Name: "S", Domain: DomainString}))
	r.MustInsert(String("a\tb"))
	if err := db.Write(&strings.Builder{}); err == nil {
		t.Error("tab in value must be rejected")
	}
}

func TestReadErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"unknown directive", "banana\n"},
		{"bad relation", "relation R A:Z\n"},
		{"bad attribute", "relation R(A)\n"},
		{"bad domain", "relation R(A: Q)\n"},
		{"dup relation", "relation R(A: Z)\nrelation R(A: Z)\n"},
		{"bad measure", "measure R\n"},
		{"measure unknown rel", "measure R.A\n"},
		{"row undeclared", "row R\t1\n"},
		{"row arity", "relation R(A: Z)\nrow R\t1\t2\n"},
		{"row bad value", "relation R(A: Z)\nrow R\tx\n"},
	}
	for _, tc := range cases {
		if _, err := Read(strings.NewReader(tc.src)); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
	// Comments and blank lines are fine.
	db, err := Read(strings.NewReader("# comment\n\nrelation R(A: Z)\nrow R\t7\n"))
	if err != nil {
		t.Fatal(err)
	}
	if db.Relation("R").Len() != 1 {
		t.Error("row lost")
	}
}
