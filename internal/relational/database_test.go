package relational

import (
	"strings"
	"testing"
)

func cashBudgetSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema("CashBudget",
		Attribute{"Year", DomainInt},
		Attribute{"Section", DomainString},
		Attribute{"Subsection", DomainString},
		Attribute{"Type", DomainString},
		Attribute{"Value", DomainInt},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSchemaValidation(t *testing.T) {
	if _, err := NewSchema(""); err == nil {
		t.Error("empty name should fail")
	}
	if _, err := NewSchema("R"); err == nil {
		t.Error("no attributes should fail")
	}
	if _, err := NewSchema("R", Attribute{"", DomainInt}); err == nil {
		t.Error("empty attribute name should fail")
	}
	if _, err := NewSchema("R", Attribute{"A", DomainInt}, Attribute{"A", DomainReal}); err == nil {
		t.Error("duplicate attribute should fail")
	}
}

func TestSchemaLookup(t *testing.T) {
	s := cashBudgetSchema(t)
	if s.Name() != "CashBudget" || s.Arity() != 5 {
		t.Fatalf("unexpected schema %v", s)
	}
	if i := s.AttrIndex("Subsection"); i != 2 {
		t.Errorf("AttrIndex(Subsection) = %d, want 2", i)
	}
	if i := s.AttrIndex("Nope"); i != -1 {
		t.Errorf("AttrIndex(Nope) = %d, want -1", i)
	}
	d, err := s.DomainOf("Value")
	if err != nil || d != DomainInt {
		t.Errorf("DomainOf(Value) = %v, %v", d, err)
	}
	if _, err := s.DomainOf("Nope"); err == nil {
		t.Error("DomainOf(Nope) should fail")
	}
	want := "CashBudget(Year:Z, Section:S, Subsection:S, Type:S, Value:Z)"
	if got := s.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestRelationInsertAndSelect(t *testing.T) {
	r := NewRelation(cashBudgetSchema(t))
	_, err := r.Insert(Int(2003), String("Receipts"), String("cash sales"), String("det"), Int(100))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Insert(Int(2003)); err == nil {
		t.Error("arity mismatch should fail")
	}
	if _, err := r.Insert(String("2003"), String("a"), String("b"), String("c"), Int(1)); err == nil {
		t.Error("domain mismatch should fail")
	}
	r.MustInsert(Int(2004), String("Receipts"), String("cash sales"), String("det"), Int(100))
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
	got := r.Select(func(t *Tuple) bool { return t.Get("Year") == Int(2003) })
	if len(got) != 1 || got[0].ID() != 0 {
		t.Errorf("Select returned %v", got)
	}
}

func TestTupleAccessorsAndString(t *testing.T) {
	r := NewRelation(cashBudgetSchema(t))
	tp := r.MustInsert(Int(2003), String("Receipts"), String("cash sales"), String("det"), Int(100))
	if tp.Get("Value") != Int(100) {
		t.Errorf("Get(Value) = %v", tp.Get("Value"))
	}
	if tp.At(0) != Int(2003) {
		t.Errorf("At(0) = %v", tp.At(0))
	}
	want := "CashBudget(2003, 'Receipts', 'cash sales', 'det', 100)"
	if got := tp.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	defer func() {
		if recover() == nil {
			t.Error("Get of missing attribute should panic")
		}
	}()
	tp.Get("Nope")
}

func TestSetValue(t *testing.T) {
	r := NewRelation(cashBudgetSchema(t))
	tp := r.MustInsert(Int(2003), String("Receipts"), String("total cash receipts"), String("aggr"), Int(250))
	if err := r.SetValue(tp.ID(), "Value", Int(220)); err != nil {
		t.Fatal(err)
	}
	if tp.Get("Value") != Int(220) {
		t.Errorf("after SetValue, Value = %v", tp.Get("Value"))
	}
	if err := r.SetValue(99, "Value", Int(1)); err == nil {
		t.Error("missing tuple id should fail")
	}
	if err := r.SetValue(tp.ID(), "Nope", Int(1)); err == nil {
		t.Error("missing attribute should fail")
	}
	if err := r.SetValue(tp.ID(), "Value", String("x")); err == nil {
		t.Error("domain mismatch should fail")
	}
}

func TestRelationClone(t *testing.T) {
	r := NewRelation(cashBudgetSchema(t))
	tp := r.MustInsert(Int(2003), String("Receipts"), String("cash sales"), String("det"), Int(100))
	c := r.Clone()
	if err := c.SetValue(tp.ID(), "Value", Int(999)); err != nil {
		t.Fatal(err)
	}
	if tp.Get("Value") != Int(100) {
		t.Error("Clone is not deep: original changed")
	}
	if c.TupleByID(tp.ID()).Get("Value") != Int(999) {
		t.Error("clone update lost")
	}
}

func TestDatabaseMeasures(t *testing.T) {
	db := NewDatabase()
	db.MustAddRelation(cashBudgetSchema(t))
	if _, err := db.AddRelation(cashBudgetSchema(t)); err == nil {
		t.Error("duplicate relation should fail")
	}
	if err := db.DesignateMeasure("CashBudget", "Value"); err != nil {
		t.Fatal(err)
	}
	if err := db.DesignateMeasure("CashBudget", "Section"); err == nil {
		t.Error("string attribute cannot be a measure")
	}
	if err := db.DesignateMeasure("Nope", "Value"); err == nil {
		t.Error("missing relation should fail")
	}
	if err := db.DesignateMeasure("CashBudget", "Nope"); err == nil {
		t.Error("missing attribute should fail")
	}
	if !db.IsMeasure("CashBudget", "Value") {
		t.Error("Value should be a measure")
	}
	if db.IsMeasure("CashBudget", "Year") {
		t.Error("Year was not designated")
	}
	if got := db.Measures(); len(got) != 1 || got[0] != (AttrRef{"CashBudget", "Value"}) {
		t.Errorf("Measures() = %v", got)
	}
	if got := db.MeasuresOf("CashBudget"); len(got) != 1 || got[0] != "Value" {
		t.Errorf("MeasuresOf = %v", got)
	}
	if got := db.MeasuresOf("Nope"); got != nil {
		t.Errorf("MeasuresOf(Nope) = %v", got)
	}
}

func TestDatabaseCloneAndString(t *testing.T) {
	db := NewDatabase()
	r := db.MustAddRelation(cashBudgetSchema(t))
	tp := r.MustInsert(Int(2003), String("Receipts"), String("cash sales"), String("det"), Int(100))
	if err := db.DesignateMeasure("CashBudget", "Value"); err != nil {
		t.Fatal(err)
	}
	c := db.Clone()
	if err := c.Relation("CashBudget").SetValue(tp.ID(), "Value", Int(5)); err != nil {
		t.Fatal(err)
	}
	if tp.Get("Value") != Int(100) {
		t.Error("database Clone is not deep")
	}
	if !c.IsMeasure("CashBudget", "Value") {
		t.Error("clone lost measures")
	}
	if db.TotalTuples() != 1 {
		t.Errorf("TotalTuples = %d", db.TotalTuples())
	}
	s := db.String()
	for _, want := range []string{"CashBudget", "Year", "cash sales", "100"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}
