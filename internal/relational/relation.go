package relational

import (
	"fmt"
	"strings"
)

// Tuple is a ground atom R(v1, ..., vn). Tuples carry a relation-local
// identifier assigned at insertion time; identifiers are stable across
// value updates, which lets the repairing machinery address database items
// as (tuple, attribute) pairs.
type Tuple struct {
	schema *Schema
	id     int
	vals   []Value
}

// Schema returns the scheme the tuple conforms to.
func (t *Tuple) Schema() *Schema { return t.schema }

// ID returns the relation-local tuple identifier.
func (t *Tuple) ID() int { return t.id }

// Get returns the value of the named attribute (the paper's t[A]).
// It panics if the attribute does not exist; use the scheme to validate.
func (t *Tuple) Get(attr string) Value {
	i := t.schema.AttrIndex(attr)
	if i < 0 {
		panic(fmt.Sprintf("relational: tuple of %s has no attribute %q", t.schema.Name(), attr))
	}
	return t.vals[i]
}

// At returns the value at attribute position i.
func (t *Tuple) At(i int) Value { return t.vals[i] }

// Values returns a copy of the tuple's values.
func (t *Tuple) Values() []Value { return append([]Value(nil), t.vals...) }

// String renders the tuple as a ground atom.
func (t *Tuple) String() string {
	parts := make([]string, len(t.vals))
	for i, v := range t.vals {
		if v.Kind() == DomainString {
			parts[i] = "'" + v.String() + "'"
		} else {
			parts[i] = v.String()
		}
	}
	return t.schema.Name() + "(" + strings.Join(parts, ", ") + ")"
}

// Relation is a finite set of tuples over one scheme, in insertion order.
type Relation struct {
	schema *Schema
	tuples []*Tuple
	nextID int
}

// NewRelation creates an empty relation over the given scheme.
func NewRelation(schema *Schema) *Relation {
	return &Relation{schema: schema}
}

// Schema returns the relation's scheme.
func (r *Relation) Schema() *Schema { return r.schema }

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.tuples) }

// Insert appends a tuple with the given values, checking arity and domains.
// It returns the inserted tuple.
func (r *Relation) Insert(vals ...Value) (*Tuple, error) {
	if len(vals) != r.schema.Arity() {
		return nil, fmt.Errorf("relational: %s expects %d values, got %d",
			r.schema.Name(), r.schema.Arity(), len(vals))
	}
	for i, v := range vals {
		want := r.schema.Attribute(i).Domain
		if v.Kind() != want {
			return nil, fmt.Errorf("relational: %s.%s expects domain %s, got %s value %v",
				r.schema.Name(), r.schema.Attribute(i).Name, want, v.Kind(), v)
		}
	}
	t := &Tuple{schema: r.schema, id: r.nextID, vals: append([]Value(nil), vals...)}
	r.nextID++
	r.tuples = append(r.tuples, t)
	return t, nil
}

// MustInsert is Insert that panics on error; for statically known tuples.
func (r *Relation) MustInsert(vals ...Value) *Tuple {
	t, err := r.Insert(vals...)
	if err != nil {
		panic(err)
	}
	return t
}

// Tuples returns the tuples in insertion order. The returned slice must not
// be modified.
func (r *Relation) Tuples() []*Tuple { return r.tuples }

// TupleByID returns the tuple with the given identifier, or nil.
func (r *Relation) TupleByID(id int) *Tuple {
	for _, t := range r.tuples {
		if t.id == id {
			return t
		}
	}
	return nil
}

// Select returns the tuples satisfying the predicate, in insertion order.
func (r *Relation) Select(pred func(*Tuple) bool) []*Tuple {
	var out []*Tuple
	for _, t := range r.tuples {
		if pred(t) {
			out = append(out, t)
		}
	}
	return out
}

// SetValue updates attribute attr of the tuple with the given id to v,
// checking the domain. This is the primitive the repairing module uses to
// apply atomic updates.
func (r *Relation) SetValue(id int, attr string, v Value) error {
	t := r.TupleByID(id)
	if t == nil {
		return fmt.Errorf("relational: %s has no tuple with id %d", r.schema.Name(), id)
	}
	i := r.schema.AttrIndex(attr)
	if i < 0 {
		return fmt.Errorf("relational: %s has no attribute %q", r.schema.Name(), attr)
	}
	if want := r.schema.Attribute(i).Domain; v.Kind() != want {
		return fmt.Errorf("relational: %s.%s expects domain %s, got %s",
			r.schema.Name(), attr, want, v.Kind())
	}
	t.vals[i] = v
	return nil
}

// Clone returns a deep copy of the relation (tuple identifiers preserved).
func (r *Relation) Clone() *Relation {
	c := &Relation{schema: r.schema, nextID: r.nextID, tuples: make([]*Tuple, len(r.tuples))}
	for i, t := range r.tuples {
		c.tuples[i] = &Tuple{schema: t.schema, id: t.id, vals: append([]Value(nil), t.vals...)}
	}
	return c
}
