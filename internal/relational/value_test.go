package relational

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDomainNumerical(t *testing.T) {
	tests := []struct {
		d    Domain
		want bool
	}{
		{DomainInt, true},
		{DomainReal, true},
		{DomainString, false},
	}
	for _, tc := range tests {
		if got := tc.d.Numerical(); got != tc.want {
			t.Errorf("%s.Numerical() = %v, want %v", tc.d, got, tc.want)
		}
	}
}

func TestParseDomain(t *testing.T) {
	tests := []struct {
		in      string
		want    Domain
		wantErr bool
	}{
		{"Z", DomainInt, false},
		{"int", DomainInt, false},
		{" Integer ", DomainInt, false},
		{"R", DomainReal, false},
		{"real", DomainReal, false},
		{"S", DomainString, false},
		{"string", DomainString, false},
		{"bogus", 0, true},
		{"", 0, true},
	}
	for _, tc := range tests {
		got, err := ParseDomain(tc.in)
		if (err != nil) != tc.wantErr {
			t.Errorf("ParseDomain(%q) error = %v, wantErr %v", tc.in, err, tc.wantErr)
			continue
		}
		if err == nil && got != tc.want {
			t.Errorf("ParseDomain(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestValueAccessors(t *testing.T) {
	if got := Int(42).AsInt(); got != 42 {
		t.Errorf("Int(42).AsInt() = %d", got)
	}
	if got := Int(42).AsFloat(); got != 42.0 {
		t.Errorf("Int(42).AsFloat() = %v", got)
	}
	if got := Real(2.5).AsFloat(); got != 2.5 {
		t.Errorf("Real(2.5).AsFloat() = %v", got)
	}
	if got := Real(2.9).AsInt(); got != 2 {
		t.Errorf("Real(2.9).AsInt() = %d, want truncation to 2", got)
	}
	if got := String("abc").AsString(); got != "abc" {
		t.Errorf(`String("abc").AsString() = %q`, got)
	}
}

func TestValueAccessorPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("AsInt on string", func() { String("x").AsInt() })
	mustPanic("AsFloat on string", func() { String("x").AsFloat() })
	mustPanic("AsString on int", func() { Int(1).AsString() })
}

func TestValueEqualAndNumericEqual(t *testing.T) {
	if !Int(3).Equal(Int(3)) {
		t.Error("Int(3) should Equal Int(3)")
	}
	if Int(3).Equal(Real(3)) {
		t.Error("Int(3) must not Equal Real(3) (different kinds)")
	}
	if !Int(3).NumericEqual(Real(3), 1e-9) {
		t.Error("Int(3) should NumericEqual Real(3)")
	}
	if Int(3).NumericEqual(String("3"), 1e-9) {
		t.Error("numbers never NumericEqual strings")
	}
	if !Real(1.0).NumericEqual(Real(1.0+1e-12), 1e-9) {
		t.Error("NumericEqual should tolerate eps")
	}
}

func TestValueCompare(t *testing.T) {
	tests := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(1), 1},
		{Int(2), Int(2), 0},
		{Real(1.5), Real(2.5), -1},
		{String("a"), String("b"), -1},
		{Int(9), Real(0), -1}, // kind order Z < R
		{Real(9), String(""), -1},
	}
	for _, tc := range tests {
		if got := tc.a.Compare(tc.b); got != tc.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestValueString(t *testing.T) {
	tests := []struct {
		v    Value
		want string
	}{
		{Int(-7), "-7"},
		{Real(2.5), "2.5"},
		{String("cash sales"), "cash sales"},
	}
	for _, tc := range tests {
		if got := tc.v.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
}

func TestParseValue(t *testing.T) {
	v, err := ParseValue(" 220 ", DomainInt)
	if err != nil || v != Int(220) {
		t.Errorf("ParseValue(220, Z) = %v, %v", v, err)
	}
	v, err = ParseValue("3.5", DomainReal)
	if err != nil || v != Real(3.5) {
		t.Errorf("ParseValue(3.5, R) = %v, %v", v, err)
	}
	v, err = ParseValue("  beginning cash ", DomainString)
	if err != nil || v.AsString() != "beginning cash" {
		t.Errorf("ParseValue string = %v, %v", v, err)
	}
	if _, err := ParseValue("abc", DomainInt); err == nil {
		t.Error("ParseValue(abc, Z) should fail")
	}
	if _, err := ParseValue("abc", DomainReal); err == nil {
		t.Error("ParseValue(abc, R) should fail")
	}
}

func TestFromFloat(t *testing.T) {
	v, err := FromFloat(2.6, DomainInt)
	if err != nil || v != Int(3) {
		t.Errorf("FromFloat(2.6, Z) = %v, %v; want 3", v, err)
	}
	v, err = FromFloat(-2.6, DomainInt)
	if err != nil || v != Int(-3) {
		t.Errorf("FromFloat(-2.6, Z) = %v, %v; want -3", v, err)
	}
	v, err = FromFloat(2.6, DomainReal)
	if err != nil || v != Real(2.6) {
		t.Errorf("FromFloat(2.6, R) = %v, %v", v, err)
	}
	if _, err := FromFloat(1, DomainString); err == nil {
		t.Error("FromFloat to string should fail")
	}
}

func TestValueRoundTripProperty(t *testing.T) {
	// Parsing the rendered form of an integer value yields the same value.
	f := func(n int64) bool {
		v, err := ParseValue(Int(n).String(), DomainInt)
		return err == nil && v == Int(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompareIsAntisymmetricProperty(t *testing.T) {
	f := func(a, b int64) bool {
		return Int(a).Compare(Int(b)) == -Int(b).Compare(Int(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFromFloatRejectsNothingNumeric(t *testing.T) {
	// FromFloat never loses more than 0.5 when targeting Z.
	f := func(x float64) bool {
		if math.IsNaN(x) || math.Abs(x) > 1e15 {
			return true
		}
		v, err := FromFloat(x, DomainInt)
		if err != nil {
			return false
		}
		return math.Abs(float64(v.AsInt())-x) <= 0.5
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
