// Package runningex provides the paper's running example as shared
// fixtures: the CashBudget database scheme, the correct instance of Fig. 1,
// the acquired instance of Fig. 3 (with the 250-for-220 symbol recognition
// error), the aggregation functions chi1 and chi2 of Example 2, and
// Constraints 1-3 of Examples 3-4. Nearly every package's tests, the
// examples, and the benchmark harness build on these fixtures.
package runningex

import (
	"dart/internal/aggrcons"
	"dart/internal/relational"
)

// Row subsection labels of a cash budget, in document order.
var Subsections = []string{
	"beginning cash",
	"cash sales",
	"receivables",
	"total cash receipts",
	"payment of accounts",
	"capital expenditure",
	"long-term financing",
	"total disbursements",
	"net cash inflow",
	"ending cash balance",
}

// SectionOf maps each subsection to its section.
var SectionOf = map[string]string{
	"beginning cash":      "Receipts",
	"cash sales":          "Receipts",
	"receivables":         "Receipts",
	"total cash receipts": "Receipts",
	"payment of accounts": "Disbursements",
	"capital expenditure": "Disbursements",
	"long-term financing": "Disbursements",
	"total disbursements": "Disbursements",
	"net cash inflow":     "Balance",
	"ending cash balance": "Balance",
}

// TypeOf is the classification information of Section 6.2: each subsection
// is a detail, aggregate, or derived item.
var TypeOf = map[string]string{
	"beginning cash":      "drv",
	"cash sales":          "det",
	"receivables":         "det",
	"total cash receipts": "aggr",
	"payment of accounts": "det",
	"capital expenditure": "det",
	"long-term financing": "det",
	"total disbursements": "aggr",
	"net cash inflow":     "drv",
	"ending cash balance": "drv",
}

// Schema returns the CashBudget(Year, Section, Subsection, Type, Value)
// scheme of Example 2.
func Schema() *relational.Schema {
	return relational.MustSchema("CashBudget",
		relational.Attribute{Name: "Year", Domain: relational.DomainInt},
		relational.Attribute{Name: "Section", Domain: relational.DomainString},
		relational.Attribute{Name: "Subsection", Domain: relational.DomainString},
		relational.Attribute{Name: "Type", Domain: relational.DomainString},
		relational.Attribute{Name: "Value", Domain: relational.DomainInt},
	)
}

// yearValues holds the Value column per year in Subsections order.
type yearValues struct {
	year int64
	vals [10]int64
}

var correctData = []yearValues{
	{2003, [10]int64{20, 100, 120, 220, 120, 0, 40, 160, 60, 80}},
	{2004, [10]int64{80, 100, 100, 200, 130, 40, 20, 190, 10, 90}},
}

// newDB builds a CashBudget database from per-year value rows.
func newDB(data []yearValues) *relational.Database {
	db := relational.NewDatabase()
	r := db.MustAddRelation(Schema())
	for _, y := range data {
		for i, sub := range Subsections {
			r.MustInsert(
				relational.Int(y.year),
				relational.String(SectionOf[sub]),
				relational.String(sub),
				relational.String(TypeOf[sub]),
				relational.Int(y.vals[i]),
			)
		}
	}
	if err := db.DesignateMeasure("CashBudget", "Value"); err != nil {
		panic(err)
	}
	return db
}

// CorrectDatabase returns the consistent instance matching Fig. 1.
func CorrectDatabase() *relational.Database { return newDB(correctData) }

// AcquiredDatabase returns the Fig. 3 instance: identical to the correct
// one except that 'total cash receipts' for 2003 was acquired as 250
// instead of 220.
func AcquiredDatabase() *relational.Database {
	db := CorrectDatabase()
	r := db.Relation("CashBudget")
	bad := r.Select(func(t *relational.Tuple) bool {
		return t.Get("Year") == relational.Int(2003) &&
			t.Get("Subsection") == relational.String("total cash receipts")
	})
	if len(bad) != 1 {
		panic("runningex: fixture corrupted")
	}
	if err := r.SetValue(bad[0].ID(), "Value", relational.Int(250)); err != nil {
		panic(err)
	}
	return db
}

// Chi1 returns the aggregation function chi1 of Example 2:
//
//	chi1(x,y,z) = SELECT sum(Value) FROM CashBudget
//	              WHERE Section = x AND Year = y AND Type = z
func Chi1() *aggrcons.AggFunc {
	return &aggrcons.AggFunc{
		Name:     "chi1",
		Relation: "CashBudget",
		Params:   []string{"x", "y", "z"},
		Expr:     aggrcons.AttrTerm("Value"),
		Where: aggrcons.And{
			aggrcons.Cmp{L: aggrcons.OpAttr("Section"), Op: aggrcons.CmpEQ, R: aggrcons.OpParam(0)},
			aggrcons.Cmp{L: aggrcons.OpAttr("Year"), Op: aggrcons.CmpEQ, R: aggrcons.OpParam(1)},
			aggrcons.Cmp{L: aggrcons.OpAttr("Type"), Op: aggrcons.CmpEQ, R: aggrcons.OpParam(2)},
		},
	}
}

// Chi2 returns the aggregation function chi2 of Example 2:
//
//	chi2(x,y) = SELECT sum(Value) FROM CashBudget
//	            WHERE Year = x AND Subsection = y
func Chi2() *aggrcons.AggFunc {
	return &aggrcons.AggFunc{
		Name:     "chi2",
		Relation: "CashBudget",
		Params:   []string{"x", "y"},
		Expr:     aggrcons.AttrTerm("Value"),
		Where: aggrcons.And{
			aggrcons.Cmp{L: aggrcons.OpAttr("Year"), Op: aggrcons.CmpEQ, R: aggrcons.OpParam(0)},
			aggrcons.Cmp{L: aggrcons.OpAttr("Subsection"), Op: aggrcons.CmpEQ, R: aggrcons.OpParam(1)},
		},
	}
}

func str(s string) aggrcons.ArgTerm { return aggrcons.ConstArg(relational.String(s)) }

// Constraint1 returns Constraint 1 of Example 3: for each section and year,
// the sum of detail items equals the aggregate item.
//
//	CashBudget(y, x, _, _, _) ==> chi1(x,y,'det') - chi1(x,y,'aggr') = 0
func Constraint1() *aggrcons.Constraint {
	chi1 := Chi1()
	return &aggrcons.Constraint{
		Name: "Constraint1",
		Body: []aggrcons.Atom{{
			Relation: "CashBudget",
			Args: []aggrcons.ArgTerm{
				aggrcons.VarArg("y"), aggrcons.VarArg("x"),
				aggrcons.Wildcard(), aggrcons.Wildcard(), aggrcons.Wildcard(),
			},
		}},
		Calls: []aggrcons.AggCall{
			{Coeff: 1, Func: chi1, Args: []aggrcons.ArgTerm{aggrcons.VarArg("x"), aggrcons.VarArg("y"), str("det")}},
			{Coeff: -1, Func: chi1, Args: []aggrcons.ArgTerm{aggrcons.VarArg("x"), aggrcons.VarArg("y"), str("aggr")}},
		},
		Rel: aggrcons.EQ,
		K:   0,
	}
}

func cbBodyYearOnly() []aggrcons.Atom {
	return []aggrcons.Atom{{
		Relation: "CashBudget",
		Args: []aggrcons.ArgTerm{
			aggrcons.VarArg("x"),
			aggrcons.Wildcard(), aggrcons.Wildcard(), aggrcons.Wildcard(), aggrcons.Wildcard(),
		},
	}}
}

// Constraint2 returns Constraint 2 of Example 4: net cash inflow equals
// total cash receipts minus total disbursements.
//
//	CashBudget(x, _, _, _, _) ==>
//	  chi2(x,'net cash inflow') - (chi2(x,'total cash receipts')
//	                               - chi2(x,'total disbursements')) = 0
func Constraint2() *aggrcons.Constraint {
	chi2 := Chi2()
	return &aggrcons.Constraint{
		Name: "Constraint2",
		Body: cbBodyYearOnly(),
		Calls: []aggrcons.AggCall{
			{Coeff: 1, Func: chi2, Args: []aggrcons.ArgTerm{aggrcons.VarArg("x"), str("net cash inflow")}},
			{Coeff: -1, Func: chi2, Args: []aggrcons.ArgTerm{aggrcons.VarArg("x"), str("total cash receipts")}},
			{Coeff: 1, Func: chi2, Args: []aggrcons.ArgTerm{aggrcons.VarArg("x"), str("total disbursements")}},
		},
		Rel: aggrcons.EQ,
		K:   0,
	}
}

// Constraint3 returns Constraint 3 of Example 4: ending cash balance equals
// beginning cash plus net cash inflow.
//
//	CashBudget(x, _, _, _, _) ==>
//	  chi2(x,'ending cash balance') - (chi2(x,'beginning cash')
//	                                   + chi2(x,'net cash inflow')) = 0
func Constraint3() *aggrcons.Constraint {
	chi2 := Chi2()
	return &aggrcons.Constraint{
		Name: "Constraint3",
		Body: cbBodyYearOnly(),
		Calls: []aggrcons.AggCall{
			{Coeff: 1, Func: chi2, Args: []aggrcons.ArgTerm{aggrcons.VarArg("x"), str("ending cash balance")}},
			{Coeff: -1, Func: chi2, Args: []aggrcons.ArgTerm{aggrcons.VarArg("x"), str("beginning cash")}},
			{Coeff: -1, Func: chi2, Args: []aggrcons.ArgTerm{aggrcons.VarArg("x"), str("net cash inflow")}},
		},
		Rel: aggrcons.EQ,
		K:   0,
	}
}

// Constraints returns all three steady aggregate constraints of the running
// example.
func Constraints() []*aggrcons.Constraint {
	return []*aggrcons.Constraint{Constraint1(), Constraint2(), Constraint3()}
}
