package scenario_test

import (
	"math/rand"
	"testing"

	"dart"
	"dart/internal/aggrcons"
	"dart/internal/core"
	"dart/internal/docgen"
	"dart/internal/milp"
	"dart/internal/ocr"
	"dart/internal/relational"
	"dart/internal/scenario"
	"dart/internal/validate"
)

func TestBalanceSheetMetadataParses(t *testing.T) {
	md, err := scenario.BalanceSheet()
	if err != nil {
		t.Fatal(err)
	}
	if md.Schema.Name() != "BalanceSheet" {
		t.Errorf("schema = %s", md.Schema)
	}
	if got := len(md.Constraints()); got != 8 {
		t.Errorf("constraints = %d, want 8", got)
	}
	if got := len(md.Domains["Item"].Items()); got != len(docgen.BalanceItems) {
		t.Errorf("item domain = %d, want %d", got, len(docgen.BalanceItems))
	}
	if !md.Hierarchy.IsSpecializationOf("retained earnings", "Equity") {
		t.Error("hierarchy missing")
	}
}

func TestRandomBalanceSheetConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	years := docgen.RandomBalanceSheet(rng, 2001, 6)
	for _, y := range years {
		if !y.Consistent() {
			t.Errorf("year %d inconsistent: %+v", y.Year, y.Amounts)
		}
	}
	md, err := scenario.BalanceSheet()
	if err != nil {
		t.Fatal(err)
	}
	db := docgen.BalanceSheetDatabase(years)
	viols, err := aggrcons.Check(db, md.Constraints(), 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if len(viols) != 0 {
		t.Errorf("generated sheet violates constraints: %v", viols)
	}
	for _, k := range md.Constraints() {
		if !k.IsSteady(db) {
			t.Errorf("%s not steady", k.Name)
		}
	}
}

func TestBalanceSheetExtractionRoundTrip(t *testing.T) {
	md, err := scenario.BalanceSheet()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(43))
	years := docgen.RandomBalanceSheet(rng, 2003, 2)
	doc := docgen.BalanceSheetDocument(years)
	p := &dart.Pipeline{Metadata: md}
	res, err := p.Process(doc.HTML())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Acquisition.Consistent() {
		t.Fatalf("clean sheet inconsistent: %v", res.Acquisition.Violations)
	}
	want := docgen.BalanceSheetDatabase(years)
	got := res.Repaired.Relation("BalanceSheet")
	if got.Len() != want.Relation("BalanceSheet").Len() {
		t.Fatalf("tuples = %d, want %d", got.Len(), want.Relation("BalanceSheet").Len())
	}
	for i, tp := range got.Tuples() {
		if tp.String() != want.Relation("BalanceSheet").Tuples()[i].String() {
			t.Errorf("tuple %d: %s != %s", i, tp, want.Relation("BalanceSheet").Tuples()[i])
		}
	}
}

// setSheetCell overwrites one item's amount.
func setSheetCell(t *testing.T, db *relational.Database, year int64, item string, v int64) {
	t.Helper()
	r := db.Relation("BalanceSheet")
	for _, tp := range r.Tuples() {
		if tp.Get("Year") == relational.Int(year) && tp.Get("Item") == relational.String(item) {
			if err := r.SetValue(tp.ID(), "Amount", relational.Int(v)); err != nil {
				t.Fatal(err)
			}
			return
		}
	}
	t.Fatalf("no cell %d/%s", year, item)
}

func TestBalanceSheetDeepCascadeViolations(t *testing.T) {
	// Corrupting a leaf ('cash') violates only its category constraint;
	// corrupting a subtotal ('total current assets') violates two levels;
	// corrupting 'total assets' violates the roll-up AND the accounting
	// equation.
	md, err := scenario.BalanceSheet()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(47))
	years := docgen.RandomBalanceSheet(rng, 2005, 1)

	cases := []struct {
		item       string
		violations int
	}{
		{"cash", 1},
		{"total current assets", 2},
		{"total assets", 2}, // TotalAssets roll-up + AccountingEquation
	}
	for _, tc := range cases {
		db := docgen.BalanceSheetDatabase(years)
		setSheetCell(t, db, 2005, tc.item, 999999)
		viols, err := aggrcons.Check(db, md.Constraints(), 1e-9)
		if err != nil {
			t.Fatal(err)
		}
		if len(viols) != tc.violations {
			t.Errorf("%s: violations = %d, want %d (%v)", tc.item, len(viols), tc.violations, viols)
		}
	}
}

func TestBalanceSheetRepairIsCardMinimal(t *testing.T) {
	md, err := scenario.BalanceSheet()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(53))
	years := docgen.RandomBalanceSheet(rng, 2006, 1)
	db := docgen.BalanceSheetDatabase(years)
	// A single leaf error: card-1 repair must exist.
	setSheetCell(t, db, 2006, "inventory", years[0].Amounts[2]+500)
	for _, solver := range []core.Solver{&core.MILPSolver{}, &core.CardinalitySearchSolver{}} {
		res, err := solver.FindRepair(db.Clone(), md.Constraints(), nil)
		if err != nil {
			t.Fatalf("%s: %v", solver.Name(), err)
		}
		if res.Status != milp.StatusOptimal || res.Card != 1 {
			t.Errorf("%s: status %v card %d, want optimal card 1", solver.Name(), res.Status, res.Card)
		}
	}
}

func TestBalanceSheetOracleRecoversDeepErrors(t *testing.T) {
	// Errors at three depths simultaneously; the oracle loop must recover
	// the exact sheet.
	md, err := scenario.BalanceSheet()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(59))
	years := docgen.RandomBalanceSheet(rng, 2007, 1)
	truth := docgen.BalanceSheetDatabase(years)
	db := docgen.BalanceSheetDatabase(years)
	setSheetCell(t, db, 2007, "cash", years[0].Amounts[0]+70)
	setSheetCell(t, db, 2007, "total equity", years[0].Amounts[15]+300)
	s := &validate.Session{
		DB:          db,
		Constraints: md.Constraints(),
		Solver:      &core.MILPSolver{},
		Operator:    &validate.OracleOperator{Truth: truth},
	}
	out, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	got := out.Repaired.Relation("BalanceSheet")
	for i, tp := range got.Tuples() {
		if tp.String() != truth.Relation("BalanceSheet").Tuples()[i].String() {
			t.Errorf("tuple %d: %s, want %s", i, tp, truth.Relation("BalanceSheet").Tuples()[i])
		}
	}
	if out.Iterations > 6 {
		t.Errorf("iterations = %d, expected few", out.Iterations)
	}
}

func TestBalanceSheetEndToEndWithNoise(t *testing.T) {
	md, err := scenario.BalanceSheet()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(61))
	years := docgen.RandomBalanceSheet(rng, 2008, 2)
	truth := docgen.BalanceSheetDatabase(years)
	doc := docgen.BalanceSheetDocument(years)
	noisy, corr := ocr.Corrupt(doc, ocr.Options{
		NumericErrors: 2,
		StringRate:    0.08,
		EligibleNumeric: func(table, row, col int, text string) bool {
			return !(row == 0 && col == 0)
		},
	}, rng)
	if len(corr) == 0 {
		t.Fatal("no corruption")
	}
	p := &dart.Pipeline{Metadata: md, Operator: &validate.OracleOperator{Truth: truth}}
	res, err := p.Process(noisy.ScanText())
	if err != nil {
		t.Fatal(err)
	}
	got := res.Repaired.Relation("BalanceSheet")
	want := truth.Relation("BalanceSheet")
	if got.Len() != want.Len() {
		t.Fatalf("tuples = %d, want %d", got.Len(), want.Len())
	}
	for i, tp := range got.Tuples() {
		if tp.String() != want.Tuples()[i].String() {
			t.Errorf("tuple %d: %s, want %s", i, tp, want.Tuples()[i])
		}
	}
}
