// Package scenario bundles ready-made designer metadata for the paper's
// application scenarios: cash budgets (Example 1), web product catalogs
// (purchase orders), and full balance sheets (the introduction's motivating
// domain, with the three-level accounting-equation constraint chain). The
// metadata is authored in the textual metadata format and parsed at first
// use, so the scenarios exercise the same path a designer-authored file
// would.
package scenario

import (
	"fmt"
	"strings"
	"sync"

	"dart/internal/docgen"
	"dart/internal/metadata"
	"dart/internal/runningex"
)

// CashBudgetSource returns the cash-budget scenario's metadata file text.
func CashBudgetSource() string {
	var b strings.Builder
	b.WriteString(`title Cash budget acquisition

domain Section: 'Receipts', 'Disbursements', 'Balance'
domain Subsection: 'beginning cash', 'cash sales', 'receivables', 'total cash receipts',
domain Subsection: 'payment of accounts', 'capital expenditure', 'long-term financing',
domain Subsection: 'total disbursements', 'net cash inflow', 'ending cash balance'

`)
	for _, sub := range runningex.Subsections {
		fmt.Fprintf(&b, "hierarchy '%s' -> '%s'\n", sub, runningex.SectionOf[sub])
	}
	b.WriteString(`
pattern BudgetRow:
  cell Year: Integer
  cell Section: domain Section
  cell Subsection: domain Subsection specializes Section
  cell Value: Integer

tnorm min
minscore 0.5

relation CashBudget(Year: Z, Section: S, Subsection: S, Type: S, Value: Z)
measure CashBudget.Value

map Year from cell Year
map Section from cell Section
map Subsection from cell Subsection
map Value from cell Value

classify Type from Subsection:
`)
	for _, sub := range runningex.Subsections {
		fmt.Fprintf(&b, "  '%s' -> '%s'\n", sub, runningex.TypeOf[sub])
	}
	b.WriteString(`
constraints:
  # Aggregation functions of Example 2.
  func chi1(x, y, z) := SELECT sum(Value) FROM CashBudget
                        WHERE Section = x AND Year = y AND Type = z
  func chi2(x, y)    := SELECT sum(Value) FROM CashBudget
                        WHERE Year = x AND Subsection = y

  constraint Constraint1:
      CashBudget(y, x, _, _, _) ==> chi1(x, y, 'det') - chi1(x, y, 'aggr') = 0
  constraint Constraint2:
      CashBudget(x, _, _, _, _) ==>
        chi2(x, 'net cash inflow') - (chi2(x, 'total cash receipts') - chi2(x, 'total disbursements')) = 0
  constraint Constraint3:
      CashBudget(x, _, _, _, _) ==>
        chi2(x, 'ending cash balance') - (chi2(x, 'beginning cash') + chi2(x, 'net cash inflow')) = 0
end
`)
	return b.String()
}

// CatalogSource returns the purchase-order scenario's metadata file text.
func CatalogSource() string {
	var b strings.Builder
	b.WriteString("title Purchase order acquisition\n\ndomain Product: ")
	items := append(docgen.CatalogProducts(), "order total")
	for i, p := range items {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "'%s'", p)
	}
	b.WriteString(`

pattern OrderRow:
  cell OrderID: String
  cell Product: domain Product
  cell Amount: Integer

tnorm min
minscore 0.5

relation Orders(OrderID: S, Product: S, Kind: S, Amount: Z)
measure Orders.Amount

map OrderID from cell OrderID
map Product from cell Product
map Amount from cell Amount

classify Kind from Product:
`)
	for _, p := range docgen.CatalogProducts() {
		fmt.Fprintf(&b, "  '%s' -> 'line'\n", p)
	}
	b.WriteString("  'order total' -> 'total'\n")
	b.WriteString(`
constraints:
  func lineSum(o)  := SELECT sum(Amount) FROM Orders WHERE OrderID = o AND Kind = 'line'
  func totalSum(o) := SELECT sum(Amount) FROM Orders WHERE OrderID = o AND Kind = 'total'
  constraint OrderBalance:
      Orders(o, _, _, _) ==> lineSum(o) - totalSum(o) = 0
end
`)
	return b.String()
}

// BalanceSheetSource returns the balance-sheet scenario's metadata file
// text: the paper's actual motivating domain, with a three-level
// constraint chain ending in the accounting equation.
func BalanceSheetSource() string {
	var b strings.Builder
	b.WriteString("title Balance sheet acquisition\n\n")
	cats := map[string]bool{}
	b.WriteString("domain Category: ")
	first := true
	for _, item := range docgen.BalanceItems {
		c := docgen.BalanceCategoryOf[item]
		if cats[c] {
			continue
		}
		cats[c] = true
		if !first {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "'%s'", c)
		first = false
	}
	b.WriteString("\n")
	for i, item := range docgen.BalanceItems {
		if i%4 == 0 {
			b.WriteString("domain Item: ")
		}
		fmt.Fprintf(&b, "'%s'", item)
		if i%4 == 3 || i == len(docgen.BalanceItems)-1 {
			b.WriteString("\n")
		} else {
			b.WriteString(", ")
		}
	}
	b.WriteString("\n")
	for _, item := range docgen.BalanceItems {
		fmt.Fprintf(&b, "hierarchy '%s' -> '%s'\n", item, docgen.BalanceCategoryOf[item])
	}
	b.WriteString(`
pattern SheetRow:
  cell Year: Integer
  cell Category: domain Category
  cell Item: domain Item specializes Category
  cell Amount: Integer

tnorm min
minscore 0.5

relation BalanceSheet(Year: Z, Category: S, Item: S, Kind: S, Amount: Z)
measure BalanceSheet.Amount

map Year from cell Year
map Category from cell Category
map Item from cell Item
map Amount from cell Amount

classify Kind from Item:
`)
	for _, item := range docgen.BalanceItems {
		fmt.Fprintf(&b, "  '%s' -> '%s'\n", item, docgen.BalanceKindOf[item])
	}
	b.WriteString(`
constraints:
  func amt(y, i) := SELECT sum(Amount) FROM BalanceSheet WHERE Year = y AND Item = i

  constraint CurrentAssets:
      BalanceSheet(y, _, _, _, _) ==>
        amt(y, 'cash') + amt(y, 'accounts receivable') + amt(y, 'inventory') - amt(y, 'total current assets') = 0
  constraint FixedAssets:
      BalanceSheet(y, _, _, _, _) ==>
        amt(y, 'land') + amt(y, 'equipment') - amt(y, 'total fixed assets') = 0
  constraint TotalAssets:
      BalanceSheet(y, _, _, _, _) ==>
        amt(y, 'total current assets') + amt(y, 'total fixed assets') - amt(y, 'total assets') = 0
  constraint CurrentLiabilities:
      BalanceSheet(y, _, _, _, _) ==>
        amt(y, 'accounts payable') + amt(y, 'short-term debt') - amt(y, 'total current liabilities') = 0
  constraint LongTermLiabilities:
      BalanceSheet(y, _, _, _, _) ==>
        amt(y, 'long-term debt') - amt(y, 'total long-term liabilities') = 0
  constraint Equity:
      BalanceSheet(y, _, _, _, _) ==>
        amt(y, 'common stock') + amt(y, 'retained earnings') - amt(y, 'total equity') = 0
  constraint LiabilitiesAndEquity:
      BalanceSheet(y, _, _, _, _) ==>
        amt(y, 'total current liabilities') + amt(y, 'total long-term liabilities') + amt(y, 'total equity') - amt(y, 'total liabilities and equity') = 0
  constraint AccountingEquation:
      BalanceSheet(y, _, _, _, _) ==>
        amt(y, 'total assets') - amt(y, 'total liabilities and equity') = 0
end
`)
	return b.String()
}

var (
	once         sync.Once
	cashBudget   *metadata.Metadata
	catalog      *metadata.Metadata
	balanceSheet *metadata.Metadata
	parseErr     error
)

func ensure() error {
	once.Do(func() {
		cashBudget, parseErr = metadata.Parse(CashBudgetSource())
		if parseErr != nil {
			return
		}
		catalog, parseErr = metadata.Parse(CatalogSource())
		if parseErr != nil {
			return
		}
		balanceSheet, parseErr = metadata.Parse(BalanceSheetSource())
	})
	return parseErr
}

// CashBudget returns the parsed cash-budget metadata.
func CashBudget() (*metadata.Metadata, error) {
	if err := ensure(); err != nil {
		return nil, err
	}
	return cashBudget, nil
}

// Catalog returns the parsed purchase-order metadata.
func Catalog() (*metadata.Metadata, error) {
	if err := ensure(); err != nil {
		return nil, err
	}
	return catalog, nil
}

// BalanceSheet returns the parsed balance-sheet metadata.
func BalanceSheet() (*metadata.Metadata, error) {
	if err := ensure(); err != nil {
		return nil, err
	}
	return balanceSheet, nil
}
