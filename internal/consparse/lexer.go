// Package consparse parses the textual constraint language used in DART
// metadata files. The language mirrors the paper's notation:
//
//	# aggregation functions (Example 2)
//	func chi1(x, y, z) := SELECT sum(Value) FROM CashBudget
//	                      WHERE Section = x AND Year = y AND Type = z
//
//	# aggregate constraints in the shorthand of Example 3 (universal
//	# quantification implied, '_' for don't-care variables)
//	constraint Constraint1:
//	    CashBudget(y, x, _, _, _) ==> chi1(x, y, 'det') - chi1(x, y, 'aggr') = 0
//
// Comments run from '#' to end of line. Declarations may span lines; a
// declaration ends where the next 'func'/'constraint' keyword or EOF
// begins.
package consparse

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind classifies tokens.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString // quoted literal
	tokSymbol // punctuation / operators
)

// token is one lexical unit with its position for error reporting.
type token struct {
	kind tokKind
	text string
	line int
	col  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokString:
		return fmt.Sprintf("'%s'", t.text)
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// lex tokenizes the whole source. Multi-character operators recognized:
// ':=', '==>', '<=', '>=', '<>'.
func lex(src string) ([]token, error) {
	var toks []token
	line, col := 1, 1
	i := 0
	n := len(src)
	advance := func(k int) {
		for j := 0; j < k; j++ {
			if src[i] == '\n' {
				line++
				col = 1
			} else {
				col++
			}
			i++
		}
	}
	for i < n {
		c := src[i]
		switch {
		case c == '#':
			for i < n && src[i] != '\n' {
				advance(1)
			}
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			advance(1)
		case c == '\'':
			start := i
			startLine, startCol := line, col
			advance(1)
			var sb strings.Builder
			closed := false
			for i < n {
				if src[i] == '\'' {
					// Doubled quote escapes a literal quote.
					if i+1 < n && src[i+1] == '\'' {
						sb.WriteByte('\'')
						advance(2)
						continue
					}
					advance(1)
					closed = true
					break
				}
				if src[i] == '\n' {
					return nil, fmt.Errorf("consparse: line %d: unterminated string starting at column %d", startLine, startCol)
				}
				sb.WriteByte(src[i])
				advance(1)
			}
			if !closed {
				return nil, fmt.Errorf("consparse: line %d: unterminated string %q", startLine, src[start:])
			}
			toks = append(toks, token{tokString, sb.String(), startLine, startCol})
		case c >= '0' && c <= '9' || (c == '.' && i+1 < n && src[i+1] >= '0' && src[i+1] <= '9'):
			startLine, startCol := line, col
			var sb strings.Builder
			dot := false
			for i < n {
				d := src[i]
				if d >= '0' && d <= '9' {
					sb.WriteByte(d)
					advance(1)
				} else if d == '.' && !dot {
					dot = true
					sb.WriteByte(d)
					advance(1)
				} else {
					break
				}
			}
			toks = append(toks, token{tokNumber, sb.String(), startLine, startCol})
		case isIdentStart(rune(c)):
			startLine, startCol := line, col
			var sb strings.Builder
			for i < n && isIdentPart(rune(src[i])) {
				sb.WriteByte(src[i])
				advance(1)
			}
			toks = append(toks, token{tokIdent, sb.String(), startLine, startCol})
		default:
			startLine, startCol := line, col
			// Multi-character symbols first.
			rest := src[i:]
			sym := ""
			for _, s := range []string{"==>", ":=", "<=", ">=", "<>", "!="} {
				if strings.HasPrefix(rest, s) {
					sym = s
					break
				}
			}
			if sym == "" {
				if strings.ContainsRune("(),_=<>+-*.:", rune(c)) {
					sym = string(c)
				} else {
					return nil, fmt.Errorf("consparse: line %d col %d: unexpected character %q", line, col, c)
				}
			}
			advance(len(sym))
			toks = append(toks, token{tokSymbol, sym, startLine, startCol})
		}
	}
	toks = append(toks, token{tokEOF, "", line, col})
	return toks, nil
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '$'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '$'
}
