package consparse

import (
	"fmt"
	"strconv"
	"strings"

	"dart/internal/aggrcons"
	"dart/internal/relational"
)

// Catalog is the result of parsing a constraint source: the declared
// aggregation functions (by name) and the aggregate constraints, in
// declaration order.
type Catalog struct {
	Funcs       map[string]*aggrcons.AggFunc
	FuncOrder   []string
	Constraints []*aggrcons.Constraint
}

// Parse parses a constraint source text.
func Parse(src string) (*Catalog, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, cat: &Catalog{Funcs: map[string]*aggrcons.AggFunc{}}}
	if err := p.parse(); err != nil {
		return nil, err
	}
	return p.cat, nil
}

type parser struct {
	toks []token
	pos  int
	cat  *Catalog
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) atEOF() bool { return p.peek().kind == tokEOF }

func (p *parser) errorf(t token, format string, args ...any) error {
	return fmt.Errorf("consparse: line %d col %d: %s", t.line, t.col, fmt.Sprintf(format, args...))
}

// expectSymbol consumes the given symbol or fails.
func (p *parser) expectSymbol(s string) error {
	t := p.next()
	if t.kind != tokSymbol || t.text != s {
		return p.errorf(t, "expected %q, found %s", s, t)
	}
	return nil
}

// expectIdent consumes an identifier (optionally a specific keyword,
// case-insensitive when keyword is non-empty) or fails.
func (p *parser) expectIdent(keyword string) (token, error) {
	t := p.next()
	if t.kind != tokIdent {
		return t, p.errorf(t, "expected identifier, found %s", t)
	}
	if keyword != "" && !strings.EqualFold(t.text, keyword) {
		return t, p.errorf(t, "expected keyword %q, found %s", keyword, t)
	}
	return t, nil
}

func (p *parser) isSymbol(s string) bool {
	t := p.peek()
	return t.kind == tokSymbol && t.text == s
}

func (p *parser) isKeyword(kw string) bool {
	t := p.peek()
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

func (p *parser) parse() error {
	for !p.atEOF() {
		t := p.next()
		if t.kind != tokIdent {
			return p.errorf(t, "expected 'func' or 'constraint' declaration, found %s", t)
		}
		switch strings.ToLower(t.text) {
		case "func":
			if err := p.parseFunc(); err != nil {
				return err
			}
		case "constraint":
			if err := p.parseConstraint(); err != nil {
				return err
			}
		default:
			return p.errorf(t, "expected 'func' or 'constraint', found %s", t)
		}
	}
	return nil
}

// parseFunc parses
//
//	func NAME(p1, ..., pk) := SELECT sum(EXPR) FROM REL WHERE FORMULA
func (p *parser) parseFunc() error {
	name, err := p.expectIdent("")
	if err != nil {
		return err
	}
	if _, dup := p.cat.Funcs[name.text]; dup {
		return p.errorf(name, "duplicate aggregation function %q", name.text)
	}
	if err := p.expectSymbol("("); err != nil {
		return err
	}
	var params []string
	if !p.isSymbol(")") {
		for {
			t, err := p.expectIdent("")
			if err != nil {
				return err
			}
			params = append(params, t.text)
			if p.isSymbol(",") {
				p.next()
				continue
			}
			break
		}
	}
	if err := p.expectSymbol(")"); err != nil {
		return err
	}
	if err := p.expectSymbol(":="); err != nil {
		return err
	}
	if _, err := p.expectIdent("SELECT"); err != nil {
		return err
	}
	if _, err := p.expectIdent("sum"); err != nil {
		return err
	}
	if err := p.expectSymbol("("); err != nil {
		return err
	}
	expr, err := p.parseAttrExpr()
	if err != nil {
		return err
	}
	if err := p.expectSymbol(")"); err != nil {
		return err
	}
	if _, err := p.expectIdent("FROM"); err != nil {
		return err
	}
	rel, err := p.expectIdent("")
	if err != nil {
		return err
	}
	paramIdx := map[string]int{}
	for i, pn := range params {
		if _, dup := paramIdx[pn]; dup {
			return p.errorf(name, "duplicate parameter %q", pn)
		}
		paramIdx[pn] = i
	}
	var where aggrcons.BoolExpr = aggrcons.And{}
	if p.isKeyword("WHERE") {
		p.next()
		where, err = p.parseOrFormula(paramIdx)
		if err != nil {
			return err
		}
	}
	p.cat.Funcs[name.text] = &aggrcons.AggFunc{
		Name:     name.text,
		Relation: rel.text,
		Params:   params,
		Expr:     expr,
		Where:    where,
	}
	p.cat.FuncOrder = append(p.cat.FuncOrder, name.text)
	return nil
}

// parseAttrExpr parses the summed expression: sums/differences of terms,
// where a term is a number, an attribute, c*(expr), c*Attr, or (expr).
func (p *parser) parseAttrExpr() (aggrcons.AttrExpr, error) {
	left, err := p.parseAttrTerm()
	if err != nil {
		return nil, err
	}
	for p.isSymbol("+") || p.isSymbol("-") {
		op := aggrcons.OpAdd
		if p.next().text == "-" {
			op = aggrcons.OpSub
		}
		right, err := p.parseAttrTerm()
		if err != nil {
			return nil, err
		}
		left = aggrcons.BinExpr{Op: op, L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseAttrTerm() (aggrcons.AttrExpr, error) {
	t := p.next()
	switch {
	case t.kind == tokNumber:
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, p.errorf(t, "bad number %q", t.text)
		}
		if p.isSymbol("*") {
			p.next()
			inner, err := p.parseAttrFactor()
			if err != nil {
				return nil, err
			}
			return aggrcons.ScaleExpr{C: v, E: inner}, nil
		}
		return aggrcons.ConstExpr(v), nil
	case t.kind == tokIdent:
		return aggrcons.AttrTerm(t.text), nil
	case t.kind == tokSymbol && t.text == "(":
		e, err := p.parseAttrExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == tokSymbol && t.text == "-":
		inner, err := p.parseAttrFactor()
		if err != nil {
			return nil, err
		}
		return aggrcons.ScaleExpr{C: -1, E: inner}, nil
	default:
		return nil, p.errorf(t, "expected expression term, found %s", t)
	}
}

func (p *parser) parseAttrFactor() (aggrcons.AttrExpr, error) {
	t := p.next()
	switch {
	case t.kind == tokIdent:
		return aggrcons.AttrTerm(t.text), nil
	case t.kind == tokSymbol && t.text == "(":
		e, err := p.parseAttrExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == tokNumber:
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, p.errorf(t, "bad number %q", t.text)
		}
		return aggrcons.ConstExpr(v), nil
	default:
		return nil, p.errorf(t, "expected attribute or parenthesized expression, found %s", t)
	}
}

// parseOrFormula parses OR-separated conjunctions.
func (p *parser) parseOrFormula(params map[string]int) (aggrcons.BoolExpr, error) {
	left, err := p.parseAndFormula(params)
	if err != nil {
		return nil, err
	}
	if !p.isKeyword("OR") {
		return left, nil
	}
	or := aggrcons.Or{left}
	for p.isKeyword("OR") {
		p.next()
		right, err := p.parseAndFormula(params)
		if err != nil {
			return nil, err
		}
		or = append(or, right)
	}
	return or, nil
}

func (p *parser) parseAndFormula(params map[string]int) (aggrcons.BoolExpr, error) {
	left, err := p.parseFormulaPrimary(params)
	if err != nil {
		return nil, err
	}
	if !p.isKeyword("AND") {
		return left, nil
	}
	and := aggrcons.And{left}
	for p.isKeyword("AND") {
		p.next()
		right, err := p.parseFormulaPrimary(params)
		if err != nil {
			return nil, err
		}
		and = append(and, right)
	}
	return and, nil
}

func (p *parser) parseFormulaPrimary(params map[string]int) (aggrcons.BoolExpr, error) {
	if p.isKeyword("NOT") {
		p.next()
		f, err := p.parseFormulaPrimary(params)
		if err != nil {
			return nil, err
		}
		return aggrcons.Not{F: f}, nil
	}
	if p.isKeyword("TRUE") {
		p.next()
		return aggrcons.And{}, nil
	}
	if p.isSymbol("(") {
		p.next()
		f, err := p.parseOrFormula(params)
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return f, nil
	}
	l, err := p.parseOperand(params)
	if err != nil {
		return nil, err
	}
	opTok := p.next()
	var op aggrcons.CmpOp
	switch opTok.text {
	case "=":
		op = aggrcons.CmpEQ
	case "<>", "!=":
		op = aggrcons.CmpNE
	case "<":
		op = aggrcons.CmpLT
	case "<=":
		op = aggrcons.CmpLE
	case ">":
		op = aggrcons.CmpGT
	case ">=":
		op = aggrcons.CmpGE
	default:
		return nil, p.errorf(opTok, "expected comparison operator, found %s", opTok)
	}
	r, err := p.parseOperand(params)
	if err != nil {
		return nil, err
	}
	return aggrcons.Cmp{L: l, Op: op, R: r}, nil
}

// parseOperand parses one side of a comparison. Identifiers matching a
// parameter name resolve to that parameter; all other identifiers are
// attribute references.
func (p *parser) parseOperand(params map[string]int) (aggrcons.Operand, error) {
	t := p.next()
	switch t.kind {
	case tokIdent:
		if i, ok := params[t.text]; ok {
			return aggrcons.OpParam(i), nil
		}
		return aggrcons.OpAttr(t.text), nil
	case tokString:
		return aggrcons.OpConst(relational.String(t.text)), nil
	case tokNumber:
		v, err := numericConst(t)
		if err != nil {
			return aggrcons.Operand{}, err
		}
		return aggrcons.OpConst(v), nil
	case tokSymbol:
		if t.text == "-" {
			num := p.next()
			if num.kind != tokNumber {
				return aggrcons.Operand{}, p.errorf(num, "expected number after '-', found %s", num)
			}
			v, err := numericConst(num)
			if err != nil {
				return aggrcons.Operand{}, err
			}
			return aggrcons.OpConst(negateValue(v)), nil
		}
	}
	return aggrcons.Operand{}, p.errorf(t, "expected operand, found %s", t)
}

// numericConst parses a number token into a typed Value: Real when it
// contains a decimal point, Int otherwise.
func numericConst(t token) (relational.Value, error) {
	if strings.Contains(t.text, ".") {
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return relational.Value{}, fmt.Errorf("consparse: line %d: bad number %q", t.line, t.text)
		}
		return relational.Real(f), nil
	}
	i, err := strconv.ParseInt(t.text, 10, 64)
	if err != nil {
		return relational.Value{}, fmt.Errorf("consparse: line %d: bad number %q", t.line, t.text)
	}
	return relational.Int(i), nil
}

func negateValue(v relational.Value) relational.Value {
	if v.Kind() == relational.DomainReal {
		return relational.Real(-v.AsFloat())
	}
	return relational.Int(-v.AsInt())
}

// parseConstraint parses
//
//	constraint NAME: ATOM (, ATOM)* ==> CALLSUM (=|<=|>=) NUMBER
func (p *parser) parseConstraint() error {
	name, err := p.expectIdent("")
	if err != nil {
		return err
	}
	if err := p.expectSymbol(":"); err != nil {
		return err
	}
	var body []aggrcons.Atom
	for {
		atom, err := p.parseAtom()
		if err != nil {
			return err
		}
		body = append(body, atom)
		if p.isSymbol(",") {
			p.next()
			continue
		}
		break
	}
	if err := p.expectSymbol("==>"); err != nil {
		return err
	}
	calls, err := p.parseCallSum(1)
	if err != nil {
		return err
	}
	relTok := p.next()
	var rel aggrcons.Rel
	switch relTok.text {
	case "=":
		rel = aggrcons.EQ
	case "<=":
		rel = aggrcons.LE
	case ">=":
		rel = aggrcons.GE
	default:
		return p.errorf(relTok, "expected '=', '<=' or '>=', found %s", relTok)
	}
	neg := false
	if p.isSymbol("-") {
		p.next()
		neg = true
	}
	kTok := p.next()
	if kTok.kind != tokNumber {
		return p.errorf(kTok, "expected constant K, found %s", kTok)
	}
	k, err := strconv.ParseFloat(kTok.text, 64)
	if err != nil {
		return p.errorf(kTok, "bad number %q", kTok.text)
	}
	if neg {
		k = -k
	}
	p.cat.Constraints = append(p.cat.Constraints, &aggrcons.Constraint{
		Name:  name.text,
		Body:  body,
		Calls: calls,
		Rel:   rel,
		K:     k,
	})
	return nil
}

func (p *parser) parseAtom() (aggrcons.Atom, error) {
	rel, err := p.expectIdent("")
	if err != nil {
		return aggrcons.Atom{}, err
	}
	if err := p.expectSymbol("("); err != nil {
		return aggrcons.Atom{}, err
	}
	var args []aggrcons.ArgTerm
	if !p.isSymbol(")") {
		for {
			arg, err := p.parseArgTerm(true)
			if err != nil {
				return aggrcons.Atom{}, err
			}
			args = append(args, arg)
			if p.isSymbol(",") {
				p.next()
				continue
			}
			break
		}
	}
	if err := p.expectSymbol(")"); err != nil {
		return aggrcons.Atom{}, err
	}
	return aggrcons.Atom{Relation: rel.text, Args: args}, nil
}

func (p *parser) parseArgTerm(allowWildcard bool) (aggrcons.ArgTerm, error) {
	t := p.next()
	switch {
	case t.kind == tokSymbol && t.text == "_":
		if !allowWildcard {
			return aggrcons.ArgTerm{}, p.errorf(t, "wildcard not allowed here")
		}
		return aggrcons.Wildcard(), nil
	case t.kind == tokIdent:
		return aggrcons.VarArg(t.text), nil
	case t.kind == tokString:
		return aggrcons.ConstArg(relational.String(t.text)), nil
	case t.kind == tokNumber:
		v, err := numericConst(t)
		if err != nil {
			return aggrcons.ArgTerm{}, err
		}
		return aggrcons.ConstArg(v), nil
	case t.kind == tokSymbol && t.text == "-":
		num := p.next()
		if num.kind != tokNumber {
			return aggrcons.ArgTerm{}, p.errorf(num, "expected number after '-', found %s", num)
		}
		v, err := numericConst(num)
		if err != nil {
			return aggrcons.ArgTerm{}, err
		}
		return aggrcons.ConstArg(negateValue(v)), nil
	default:
		return aggrcons.ArgTerm{}, p.errorf(t, "expected argument, found %s", t)
	}
}

// parseCallSum parses a signed sum of aggregation calls with optional
// coefficients and parenthesized groups, distributing signs:
//
//	chi2(x,'a') - (chi2(x,'b') - chi2(x,'c')) + 2*chi1(x,y,'d')
func (p *parser) parseCallSum(sign float64) ([]aggrcons.AggCall, error) {
	var calls []aggrcons.AggCall
	cur := sign
	first := true
	for {
		if !first {
			switch {
			case p.isSymbol("+"):
				p.next()
				cur = sign
			case p.isSymbol("-"):
				p.next()
				cur = -sign
			default:
				return calls, nil
			}
		} else if p.isSymbol("-") {
			p.next()
			cur = -sign
		}
		first = false
		if p.isSymbol("(") {
			p.next()
			inner, err := p.parseCallSum(cur)
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			calls = append(calls, inner...)
			continue
		}
		coeff := cur
		t := p.next()
		if t.kind == tokNumber {
			v, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errorf(t, "bad number %q", t.text)
			}
			coeff = cur * v
			if err := p.expectSymbol("*"); err != nil {
				return nil, err
			}
			t = p.next()
		}
		if t.kind != tokIdent {
			return nil, p.errorf(t, "expected aggregation function name, found %s", t)
		}
		fn, ok := p.cat.Funcs[t.text]
		if !ok {
			return nil, p.errorf(t, "unknown aggregation function %q", t.text)
		}
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var args []aggrcons.ArgTerm
		if !p.isSymbol(")") {
			for {
				arg, err := p.parseArgTerm(false)
				if err != nil {
					return nil, err
				}
				args = append(args, arg)
				if p.isSymbol(",") {
					p.next()
					continue
				}
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		calls = append(calls, aggrcons.AggCall{Coeff: coeff, Func: fn, Args: args})
	}
}
