package consparse_test

import (
	"strings"
	"testing"

	"dart/internal/aggrcons"
	"dart/internal/consparse"
	"dart/internal/core"
	"dart/internal/milp"
	"dart/internal/relational"
	"dart/internal/runningex"
)

// RunningExampleSource is the paper's Examples 2-4 in the DSL.
const runningExampleSource = `
# Aggregation functions of Example 2.
func chi1(x, y, z) := SELECT sum(Value) FROM CashBudget
                      WHERE Section = x AND Year = y AND Type = z
func chi2(x, y)    := SELECT sum(Value) FROM CashBudget
                      WHERE Year = x AND Subsection = y

# Constraint 1 (Example 3).
constraint Constraint1:
    CashBudget(y, x, _, _, _) ==> chi1(x, y, 'det') - chi1(x, y, 'aggr') = 0

# Constraints 2 and 3 (Example 4).
constraint Constraint2:
    CashBudget(x, _, _, _, _) ==>
      chi2(x, 'net cash inflow') - (chi2(x, 'total cash receipts') - chi2(x, 'total disbursements')) = 0

constraint Constraint3:
    CashBudget(x, _, _, _, _) ==>
      chi2(x, 'ending cash balance') - (chi2(x, 'beginning cash') + chi2(x, 'net cash inflow')) = 0
`

func TestParseRunningExample(t *testing.T) {
	cat, err := consparse.Parse(runningExampleSource)
	if err != nil {
		t.Fatal(err)
	}
	if len(cat.Funcs) != 2 || len(cat.Constraints) != 3 {
		t.Fatalf("funcs=%d constraints=%d", len(cat.Funcs), len(cat.Constraints))
	}
	if got := cat.FuncOrder; got[0] != "chi1" || got[1] != "chi2" {
		t.Errorf("FuncOrder = %v", got)
	}
	chi1 := cat.Funcs["chi1"]
	if chi1.Relation != "CashBudget" || chi1.Arity() != 3 {
		t.Errorf("chi1 = %+v", chi1)
	}
	db := runningex.AcquiredDatabase()
	got, err := chi1.Eval(db, []relational.Value{
		relational.String("Receipts"), relational.Int(2003), relational.String("det")})
	if err != nil {
		t.Fatal(err)
	}
	if got != 220 {
		t.Errorf("parsed chi1('Receipts',2003,'det') = %v, want 220", got)
	}
	// Constraint 2's parenthesized group must distribute the minus sign:
	// coefficients +1, -1, +1.
	c2 := cat.Constraints[1]
	if len(c2.Calls) != 3 {
		t.Fatalf("Constraint2 calls = %d", len(c2.Calls))
	}
	wantCoeffs := []float64{1, -1, 1}
	for i, c := range c2.Calls {
		if c.Coeff != wantCoeffs[i] {
			t.Errorf("Constraint2 call %d coeff = %v, want %v", i, c.Coeff, wantCoeffs[i])
		}
	}
}

func TestParsedConstraintsMatchHandBuilt(t *testing.T) {
	// The parsed catalog must yield the same violations and the same
	// card-minimal repair as the programmatic fixtures.
	cat, err := consparse.Parse(runningExampleSource)
	if err != nil {
		t.Fatal(err)
	}
	db := runningex.AcquiredDatabase()
	viols, err := aggrcons.Check(db, cat.Constraints, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if len(viols) != 2 {
		t.Fatalf("violations = %d, want 2", len(viols))
	}
	res, err := (&core.MILPSolver{}).FindRepair(db, cat.Constraints, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != milp.StatusOptimal || res.Card != 1 {
		t.Fatalf("status %v card %d", res.Status, res.Card)
	}
	if res.Repair.Updates[0].New != relational.Int(220) {
		t.Errorf("repair = %v", res.Repair)
	}
	for _, k := range cat.Constraints {
		if !k.IsSteady(db) {
			t.Errorf("parsed %s should be steady", k.Name)
		}
	}
}

func TestParseInequalitiesAndCoefficients(t *testing.T) {
	src := `
func total(x) := SELECT sum(Value) FROM CashBudget WHERE Year = x
constraint cap: CashBudget(x, _, _, _, _) ==> 2*total(x) - 0.5*total(x) <= 1500
constraint floor: CashBudget(x, _, _, _, _) ==> total(x) >= -10
`
	cat, err := consparse.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	cap := cat.Constraints[0]
	if cap.Rel != aggrcons.LE || cap.K != 1500 {
		t.Errorf("cap = rel %v K %v", cap.Rel, cap.K)
	}
	if cap.Calls[0].Coeff != 2 || cap.Calls[1].Coeff != -0.5 {
		t.Errorf("coeffs = %v, %v", cap.Calls[0].Coeff, cap.Calls[1].Coeff)
	}
	floor := cat.Constraints[1]
	if floor.Rel != aggrcons.GE || floor.K != -10 {
		t.Errorf("floor = rel %v K %v", floor.Rel, floor.K)
	}
	db := runningex.CorrectDatabase()
	if _, err := aggrcons.Check(db, cat.Constraints, 1e-9); err != nil {
		t.Fatal(err)
	}
}

func TestParseWhereFormulaFeatures(t *testing.T) {
	src := `
func f(a) := SELECT sum(Value) FROM CashBudget
             WHERE (Year = a OR Year = 2004) AND NOT (Type <> 'det') AND Value >= 0
func g() := SELECT sum(2*(Value) + 1 - Value) FROM CashBudget
constraint k: CashBudget(x, _, _, _, _) ==> f(x) <= 100000
`
	cat, err := consparse.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	db := runningex.CorrectDatabase()
	// f(2003) sums det rows with Value >= 0 over years 2003 and 2004:
	// 2003: 100+120+120+0+40 = 380; 2004: 100+100+130+40+20 = 390.
	got, err := cat.Funcs["f"].Eval(db, []relational.Value{relational.Int(2003)})
	if err != nil {
		t.Fatal(err)
	}
	if got != 770 {
		t.Errorf("f(2003) = %v, want 770", got)
	}
	// g() sums 2*Value + 1 - Value = Value + 1 over all 20 tuples:
	// total values = 990+1030 = 2020? compute: 2003 sums 20+100+120+220+120+0+40+160+60+80=920;
	// 2004: 80+100+100+200+130+40+20+190+10+90=960; total 1880 + 20 = 1900.
	got, err = cat.Funcs["g"].Eval(db, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1900 {
		t.Errorf("g() = %v, want 1900", got)
	}
}

func TestParseQuotedEscapesAndComments(t *testing.T) {
	src := `
# a comment with 'quotes' and ==> arrows
func f(a) := SELECT sum(Value) FROM CashBudget WHERE Subsection = 'it''s'
constraint k: CashBudget(x, _, _, _, _) ==> f(x) <= 5 # trailing comment
`
	cat, err := consparse.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	cmp := cat.Funcs["f"].Where.(aggrcons.Cmp)
	if cmp.Render(cat.Funcs["f"].Params) != "Subsection = 'it's'" {
		t.Errorf("Render = %q", cmp.Render(cat.Funcs["f"].Params))
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"garbage", "42", "expected 'func' or 'constraint'"},
		{"bad decl", "banana x", "expected 'func' or 'constraint'"},
		{"unterminated string", "func f(a) := SELECT sum(V) FROM R WHERE A = 'oops\n", "unterminated string"},
		{"unknown func", "constraint k: R(x) ==> nosuch(x) = 0", "unknown aggregation function"},
		{"dup func", "func f() := SELECT sum(V) FROM R\nfunc f() := SELECT sum(V) FROM R", "duplicate aggregation function"},
		{"dup param", "func f(a, a) := SELECT sum(V) FROM R", "duplicate parameter"},
		{"missing arrow", "func f() := SELECT sum(V) FROM R\nconstraint k: R(x) f() = 0", `expected "==>"`},
		{"bad rel", "func f() := SELECT sum(V) FROM R\nconstraint k: R(x) ==> f() < 0", "expected '=', '<=' or '>='"},
		{"missing K", "func f() := SELECT sum(V) FROM R\nconstraint k: R(x) ==> f() = ", "expected constant K"},
		{"bad char", "func f() := SELECT sum(V) FROM R WHERE A = @", "unexpected character"},
		{"wildcard in call", "func f(a) := SELECT sum(V) FROM R\nconstraint k: R(x) ==> f(_) = 0", "wildcard not allowed"},
		{"bad operand", "func f() := SELECT sum(V) FROM R WHERE = 3", "expected operand"},
		{"bad cmp op", "func f() := SELECT sum(V) FROM R WHERE A + B", "expected comparison operator"},
	}
	for _, tc := range cases {
		_, err := consparse.Parse(tc.src)
		if err == nil {
			t.Errorf("%s: expected error containing %q, got nil", tc.name, tc.wantErr)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not contain %q", tc.name, err, tc.wantErr)
		}
	}
}

func TestParseRoundTripThroughString(t *testing.T) {
	// Rendering a parsed constraint and the hand-built one must agree.
	cat, err := consparse.Parse(runningExampleSource)
	if err != nil {
		t.Fatal(err)
	}
	want := runningex.Constraint1().String()
	if got := cat.Constraints[0].String(); got != want {
		t.Errorf("parsed: %q\nhand-built: %q", got, want)
	}
}

func TestParseNegativeConstantArgsAndFloats(t *testing.T) {
	src := `
func f(a, b) := SELECT sum(Value) FROM CashBudget WHERE Year = a AND Value >= b
constraint k: CashBudget(x, _, _, _, _) ==> f(x, -5) + f(x, 2.5) <= 100000.5
`
	cat, err := consparse.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	k := cat.Constraints[0]
	if k.K != 100000.5 {
		t.Errorf("K = %v", k.K)
	}
	db := runningex.CorrectDatabase()
	viols, err := aggrcons.Check(db, cat.Constraints, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if len(viols) != 0 {
		t.Errorf("violations: %v", viols)
	}
}

func TestParseSumExpressionVariants(t *testing.T) {
	// Exercise the attribute-expression grammar: scaled parens, negation,
	// bare constants, nested parens, scaled attributes.
	src := `
func f1() := SELECT sum(2*(Value + 1) - Year) FROM CashBudget
func f2() := SELECT sum(-Value) FROM CashBudget
func f3() := SELECT sum(3) FROM CashBudget
func f4() := SELECT sum((Value)) FROM CashBudget
func f5() := SELECT sum(0.5*Value) FROM CashBudget
constraint k: CashBudget(x, _, _, _, _) ==> f3() <= 10000
`
	cat, err := consparse.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	db := runningex.CorrectDatabase()
	// f1 = sum(2*Value + 2 - Year); totals: values 1880, years 20 rows of
	// 2003/2004 -> sum(Year) = 10*2003 + 10*2004 = 40070.
	got, err := cat.Funcs["f1"].Eval(db, nil)
	if err != nil {
		t.Fatal(err)
	}
	if want := 2*1880.0 + 2*20 - 40070; got != want {
		t.Errorf("f1 = %v, want %v", got, want)
	}
	got, _ = cat.Funcs["f2"].Eval(db, nil)
	if got != -1880 {
		t.Errorf("f2 = %v, want -1880", got)
	}
	got, _ = cat.Funcs["f3"].Eval(db, nil)
	if got != 60 { // 3 per tuple x 20
		t.Errorf("f3 = %v, want 60", got)
	}
	got, _ = cat.Funcs["f5"].Eval(db, nil)
	if got != 940 {
		t.Errorf("f5 = %v, want 940", got)
	}
}

func TestParseMoreErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"bad sum term", "func f() := SELECT sum(,) FROM R"},
		{"unclosed sum paren", "func f() := SELECT sum((A) FROM R"},
		{"bad factor", "func f() := SELECT sum(2*,) FROM R"},
		{"missing from", "func f() := SELECT sum(A) R"},
		{"bad where operand neg", "func f() := SELECT sum(A) FROM R WHERE A = -x"},
		{"bad arg", "func f(a) := SELECT sum(A) FROM R\nconstraint k: R(x) ==> f(==) = 0"},
		{"neg arg not number", "func f(a) := SELECT sum(A) FROM R\nconstraint k: R(x) ==> f(-y) = 0"},
		{"missing colon", "constraint k R(x) ==> f() = 0"},
	}
	for _, tc := range cases {
		if _, err := consparse.Parse(tc.src); err == nil {
			t.Errorf("%s: expected parse error", tc.name)
		}
	}
}

func TestParseNegativeKAndOr(t *testing.T) {
	src := `
func f(a) := SELECT sum(Value) FROM CashBudget WHERE Year = a OR Year = -1 OR Type = 'det'
constraint k: CashBudget(x, _, _, _, _) ==> -1*f(x) >= -100000
`
	cat, err := consparse.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if cat.Constraints[0].Calls[0].Coeff != -1 {
		t.Errorf("coeff = %v", cat.Constraints[0].Calls[0].Coeff)
	}
	db := runningex.CorrectDatabase()
	if _, err := aggrcons.Check(db, cat.Constraints, 1e-9); err != nil {
		t.Fatal(err)
	}
}
