// Package ocr simulates the acquisition errors DART exists to repair. The
// paper's pipeline digitizes paper documents with a commercial OCR tool;
// this package replaces that proprietary dependency with a seeded
// symbol-confusion model producing exactly the two error classes the paper
// describes (Section 1): numerical value recognition errors (220 read as
// 250) and symbol recognition errors in non-numerical strings ("beginning
// cash" read as "bgnning cesh").
package ocr

import (
	"math/rand"
	"strings"

	"dart/internal/docgen"
)

// digitConfusions lists plausible OCR digit misreads.
var digitConfusions = map[byte][]byte{
	'0': {'8', '6', '9'},
	'1': {'7', '4'},
	'2': {'7', '5'},
	'3': {'8', '9'},
	'4': {'1', '9'},
	'5': {'6', '3'},
	'6': {'5', '8'},
	'7': {'1', '2'},
	'8': {'3', '0'},
	'9': {'4', '0'},
}

// letterConfusions lists plausible OCR letter misreads (lower case).
var letterConfusions = map[byte][]byte{
	'a': {'e', 'o'},
	'b': {'h', 'd'},
	'c': {'e', 'o'},
	'e': {'c', 'o'},
	'g': {'q', 'y'},
	'h': {'b', 'n'},
	'i': {'l', 'j'},
	'l': {'i', 't'},
	'm': {'n'},
	'n': {'m', 'h'},
	'o': {'e', 'c'},
	'q': {'g'},
	'r': {'n'},
	's': {'z'},
	't': {'l', 'f'},
	'u': {'v', 'n'},
	'v': {'u', 'y'},
	'y': {'v', 'g'},
	'z': {'s'},
}

// Corruption records one injected acquisition error for ground-truth
// bookkeeping in experiments.
type Corruption struct {
	Table, Row, Col int
	Old, New        string
	Numeric         bool
}

// Options controls error injection. The zero value injects nothing.
type Options struct {
	// NumericErrors is the exact number of numeric cells to corrupt.
	NumericErrors int
	// StringRate is the per-eligible-cell probability of corrupting a
	// non-numeric string.
	StringRate float64
	// EligibleNumeric optionally restricts which numeric cells may be
	// corrupted (e.g. excluding year columns). nil means all.
	EligibleNumeric func(table, row, col int, text string) bool
}

// Corrupt returns a corrupted copy of the document together with the list
// of injected errors. The original document is untouched. Injection is
// fully determined by rng.
func Corrupt(doc *docgen.Document, opts Options, rng *rand.Rand) (*docgen.Document, []Corruption) {
	out := doc.Clone()
	var corruptions []Corruption

	type pos struct{ t, r, c int }
	var numeric []pos
	out.Cells(func(t, r, c int, cell *docgen.Cell) {
		if isNumeric(cell.Text) {
			if opts.EligibleNumeric == nil || opts.EligibleNumeric(t, r, c, cell.Text) {
				numeric = append(numeric, pos{t, r, c})
			}
		}
	})
	// Numeric errors: pick distinct cells.
	k := opts.NumericErrors
	if k > len(numeric) {
		k = len(numeric)
	}
	for _, pi := range rng.Perm(len(numeric))[:k] {
		p := numeric[pi]
		cell := &out.Tables[p.t].Rows[p.r][p.c]
		old := cell.Text
		cell.Text = corruptNumber(old, rng)
		corruptions = append(corruptions, Corruption{Table: p.t, Row: p.r, Col: p.c, Old: old, New: cell.Text, Numeric: true})
	}
	// String errors: Bernoulli per eligible cell.
	if opts.StringRate > 0 {
		out.Cells(func(t, r, c int, cell *docgen.Cell) {
			if isNumeric(cell.Text) || cell.Text == "" {
				return
			}
			if rng.Float64() >= opts.StringRate {
				return
			}
			old := cell.Text
			nw := corruptString(old, rng)
			if nw == old {
				return
			}
			cell.Text = nw
			corruptions = append(corruptions, Corruption{Table: t, Row: r, Col: c, Old: old, New: nw})
		})
	}
	return out, corruptions
}

// isNumeric reports whether the cell text is a (possibly signed) integer.
func isNumeric(s string) bool {
	s = strings.TrimSpace(s)
	if s == "" {
		return false
	}
	if s[0] == '-' {
		s = s[1:]
	}
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return true
}

// corruptNumber misreads one digit of a numeric string (guaranteed to
// change the value), occasionally dropping or duplicating a digit instead.
func corruptNumber(s string, rng *rand.Rand) string {
	b := []byte(s)
	digits := make([]int, 0, len(b))
	for i := range b {
		if b[i] >= '0' && b[i] <= '9' {
			digits = append(digits, i)
		}
	}
	if len(digits) == 0 {
		return s
	}
	i := digits[rng.Intn(len(digits))]
	switch roll := rng.Float64(); {
	case roll < 0.70: // substitution
		cands := digitConfusions[b[i]]
		b[i] = cands[rng.Intn(len(cands))]
		return string(b)
	case roll < 0.85 && len(digits) > 1: // deletion (keep at least 1 digit)
		return string(append(b[:i:i], b[i+1:]...))
	default: // duplication
		out := make([]byte, 0, len(b)+1)
		out = append(out, b[:i+1]...)
		out = append(out, b[i])
		out = append(out, b[i+1:]...)
		return string(out)
	}
}

// corruptString applies 1-2 symbol slips to a non-numeric string:
// confusions, vowel drops, or adjacent transpositions.
func corruptString(s string, rng *rand.Rand) string {
	b := []byte(s)
	slips := 1 + rng.Intn(2)
	for n := 0; n < slips && len(b) > 1; n++ {
		letters := make([]int, 0, len(b))
		for i := range b {
			if b[i] >= 'a' && b[i] <= 'z' || b[i] >= 'A' && b[i] <= 'Z' {
				letters = append(letters, i)
			}
		}
		if len(letters) == 0 {
			break
		}
		i := letters[rng.Intn(len(letters))]
		lower := b[i] | 0x20
		switch roll := rng.Float64(); {
		case roll < 0.5:
			if cands, ok := letterConfusions[lower]; ok {
				b[i] = cands[rng.Intn(len(cands))]
			} else {
				b[i] = byte('a' + rng.Intn(26))
			}
		case roll < 0.8: // drop the character
			b = append(b[:i:i], b[i+1:]...)
		default: // transpose with the next character when possible
			if i+1 < len(b) && b[i+1] != ' ' {
				b[i], b[i+1] = b[i+1], b[i]
			} else {
				b = append(b[:i:i], b[i+1:]...)
			}
		}
	}
	return string(b)
}
