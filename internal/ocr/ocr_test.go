package ocr

import (
	"math/rand"
	"strings"
	"testing"

	"dart/internal/docgen"
)

func TestCorruptNumericExactCount(t *testing.T) {
	doc := docgen.RunningExampleDocument()
	rng := rand.New(rand.NewSource(1))
	out, corr := Corrupt(doc, Options{NumericErrors: 3}, rng)
	numeric := 0
	for _, c := range corr {
		if c.Numeric {
			numeric++
			if c.Old == c.New {
				t.Errorf("numeric corruption is a no-op: %+v", c)
			}
			got := out.Tables[c.Table].Rows[c.Row][c.Col].Text
			if got != c.New {
				t.Errorf("document cell %q != recorded %q", got, c.New)
			}
		}
	}
	if numeric != 3 {
		t.Errorf("numeric corruptions = %d, want 3", numeric)
	}
	// Original untouched.
	if doc.Tables[0].Rows[0][3].Text != "20" {
		t.Error("original mutated")
	}
}

func TestCorruptNumericValuesStayNumeric(t *testing.T) {
	doc := docgen.RunningExampleDocument()
	for seed := int64(0); seed < 30; seed++ {
		out, corr := Corrupt(doc, Options{NumericErrors: 5}, rand.New(rand.NewSource(seed)))
		_ = out
		for _, c := range corr {
			if !c.Numeric {
				continue
			}
			for i := 0; i < len(c.New); i++ {
				if c.New[i] < '0' || c.New[i] > '9' {
					t.Fatalf("seed %d: corrupted number %q contains non-digit", seed, c.New)
				}
			}
			if c.New == c.Old {
				t.Fatalf("seed %d: no-op corruption", seed)
			}
		}
	}
}

func TestCorruptDeterministicPerSeed(t *testing.T) {
	doc := docgen.RunningExampleDocument()
	a, ca := Corrupt(doc, Options{NumericErrors: 2, StringRate: 0.3}, rand.New(rand.NewSource(42)))
	b, cb := Corrupt(doc, Options{NumericErrors: 2, StringRate: 0.3}, rand.New(rand.NewSource(42)))
	if a.HTML() != b.HTML() || len(ca) != len(cb) {
		t.Error("corruption not deterministic for a fixed seed")
	}
}

func TestCorruptStringRate(t *testing.T) {
	doc := docgen.RunningExampleDocument()
	out, corr := Corrupt(doc, Options{StringRate: 1.0}, rand.New(rand.NewSource(7)))
	strCorr := 0
	for _, c := range corr {
		if !c.Numeric {
			strCorr++
			if c.New == c.Old {
				t.Errorf("string corruption is a no-op: %+v", c)
			}
		}
	}
	// Every non-numeric cell (2 years x (1 year? no: year is numeric) —
	// 3 sections + 10 subsections per table) should have been hit, minus
	// rare cases where slips cancel.
	if strCorr < 20 {
		t.Errorf("string corruptions = %d, want most of 26", strCorr)
	}
	if out.HTML() == doc.HTML() {
		t.Error("document unchanged at rate 1.0")
	}
}

func TestEligibleNumericFilter(t *testing.T) {
	doc := docgen.RunningExampleDocument()
	// Exclude the year cells (column 0 of row 0 in each table).
	opts := Options{
		NumericErrors: 24, // more than available value cells (20)
		EligibleNumeric: func(table, row, col int, text string) bool {
			return !(row == 0 && col == 0)
		},
	}
	_, corr := Corrupt(doc, opts, rand.New(rand.NewSource(9)))
	if len(corr) != 20 {
		t.Errorf("corruptions = %d, want 20 (years excluded)", len(corr))
	}
	for _, c := range corr {
		if c.Row == 0 && c.Col == 0 {
			t.Errorf("year cell corrupted despite filter: %+v", c)
		}
	}
}

func TestZeroOptionsNoCorruptions(t *testing.T) {
	doc := docgen.RunningExampleDocument()
	out, corr := Corrupt(doc, Options{}, rand.New(rand.NewSource(3)))
	if len(corr) != 0 {
		t.Errorf("corruptions = %d", len(corr))
	}
	if out.HTML() != doc.HTML() {
		t.Error("document changed with zero options")
	}
}

func TestIsNumeric(t *testing.T) {
	tests := []struct {
		in   string
		want bool
	}{
		{"123", true}, {"-5", true}, {" 42 ", true},
		{"", false}, {"-", false}, {"12a", false}, {"1.5", false},
		{"beginning cash", false},
	}
	for _, tc := range tests {
		if got := isNumeric(tc.in); got != tc.want {
			t.Errorf("isNumeric(%q) = %v", tc.in, got)
		}
	}
}

func TestCorruptStringStaysPlausible(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 50; i++ {
		out := corruptString("beginning cash", rng)
		if len(out) < len("beginning cash")-2 || len(out) > len("beginning cash")+1 {
			t.Errorf("implausible corruption %q", out)
		}
	}
}

func TestCorruptNumberAllBranches(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	sawShorter, sawLonger, sawSameLen := false, false, false
	for i := 0; i < 200; i++ {
		out := corruptNumber("2048", rng)
		switch {
		case len(out) < 4:
			sawShorter = true
		case len(out) > 4:
			sawLonger = true
		default:
			sawSameLen = true
		}
		if out == "2048" {
			t.Errorf("corruptNumber returned the input")
		}
	}
	if !sawShorter || !sawLonger || !sawSameLen {
		t.Errorf("branch coverage: shorter=%v longer=%v same=%v", sawShorter, sawLonger, sawSameLen)
	}
	if got := corruptNumber("", rng); got != "" {
		t.Errorf("empty input = %q", got)
	}
	if !strings.ContainsAny(corruptNumber("7", rng), "0123456789") {
		t.Error("single digit corruption lost all digits")
	}
}
