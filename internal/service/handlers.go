package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"

	"dart/internal/analysis/specvet"
)

// maxBodyBytes bounds request bodies (documents are page-sized; 8 MiB is
// generous).
const maxBodyBytes = 8 << 20

// routes registers the HTTP API on the server's mux.
func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	s.mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleJobTrace)
	s.mux.HandleFunc("GET /v1/jobs/{id}/suggestions", s.handleSuggestions)
	s.mux.HandleFunc("POST /v1/jobs/{id}/suggestions/{sid}", s.handleSuggestionDecision)
	s.mux.HandleFunc("GET /v1/jobs/{id}/workbench", s.handleWorkbench)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	s.mux.HandleFunc("GET /v1/jobs/{id}/progress", s.handleJobProgress)
	s.mux.HandleFunc("GET /v1/events", s.handleEvents)
	s.mux.HandleFunc("GET /debug/traces", s.handleDebugTraces)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	if s.enablePprof {
		// The debug mux of net/http/pprof registers on DefaultServeMux;
		// mount the handlers explicitly so the flag actually gates them.
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
}

// writeJSON emits one JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// writeError emits one JSON error envelope.
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// handleSubmit accepts one job: it validates the spec eagerly (so malformed
// scenarios and metadata fail at submission, not in a worker) and enqueues.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "malformed job spec: %v", err)
		return
	}
	if spec.Document == "" {
		writeError(w, http.StatusBadRequest, "job spec needs a document")
		return
	}
	md, err := ResolveMetadata(spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Admission-time spec vetting: the same checks dartvet -spec runs.
	// Rejecting here turns a doomed worker run into an immediate,
	// machine-readable 422.
	if diags := specvet.Vet(md); len(diags) > 0 {
		s.metrics.SpecRejected()
		writeJSON(w, http.StatusUnprocessableEntity, map[string]any{
			"error":       fmt.Sprintf("spec failed vetting with %d diagnostic(s)", len(diags)),
			"diagnostics": diags,
		})
		return
	}
	if _, err := resolveSolver(spec.Solver, spec.SolverWorkers); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	view, err := s.queue.Submit(spec)
	switch {
	case errors.Is(err, ErrDraining), errors.Is(err, ErrQueueFull):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	s.metrics.JobSubmitted()
	if s.logger != nil {
		s.logger.Info("job submitted", "job_id", view.ID,
			"scenario", spec.Scenario, "solver", spec.Solver)
	}
	w.Header().Set("Location", "/v1/jobs/"+view.ID)
	writeJSON(w, http.StatusAccepted, view)
}

// handleList returns jobs in submission order, results omitted.
// Query parameters:
//
//	state   keep only jobs in this lifecycle state
//	limit   page size (0 or absent returns everything)
//	cursor  resume after this job ID (the next_cursor of the prior page)
//
// The response carries next_cursor whenever more matching jobs remain.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	params := r.URL.Query()
	state := JobState(params.Get("state"))
	if state != "" && !knownState(state) {
		writeError(w, http.StatusBadRequest, "unknown state %q (want one of %v)", string(state), JobStates)
		return
	}
	limit := 0
	if q := params.Get("limit"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v <= 0 {
			writeError(w, http.StatusBadRequest, "limit must be a positive integer, got %q", q)
			return
		}
		limit = v
	}
	jobs, next, err := s.queue.ListPage(state, params.Get("cursor"), limit)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	resp := map[string]any{
		"jobs":  jobs,
		"count": len(jobs),
	}
	if next != "" {
		resp["next_cursor"] = next
	}
	writeJSON(w, http.StatusOK, resp)
}

// knownState reports whether s is one of the lifecycle states.
func knownState(s JobState) bool {
	for _, st := range JobStates {
		if st == s {
			return true
		}
	}
	return false
}

// handleGet returns one job with its result.
func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	view, ok := s.queue.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", id)
		return
	}
	writeJSON(w, http.StatusOK, view)
}

// handleJobTrace serves one job's span tree. 404 covers both an unknown job
// and a trace already evicted from the ring buffer; 501 tells clients the
// server runs without tracing at all.
func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	if s.tracer == nil {
		writeError(w, http.StatusNotImplemented, "tracing is disabled (start dartd with -trace-buffer > 0)")
		return
	}
	id := r.PathValue("id")
	view, ok := s.queue.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", id)
		return
	}
	if view.TraceID == "" {
		writeError(w, http.StatusNotFound, "job %q has not started (no trace yet)", id)
		return
	}
	tr, ok := s.tracer.Trace(view.TraceID)
	if !ok {
		writeError(w, http.StatusNotFound, "trace %s evicted from the ring buffer", view.TraceID)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"job_id":      id,
		"trace_id":    tr.TraceID,
		"state":       view.State,
		"start":       tr.Start,
		"duration_ns": tr.DurationNS,
		"spans":       len(tr.Spans),
		"tree":        tr.Tree(),
	})
}

// traceSummary is one row of GET /debug/traces.
type traceSummary struct {
	TraceID    string  `json:"trace_id"`
	Name       string  `json:"name"`
	Start      string  `json:"start"`
	DurationMS float64 `json:"duration_ms"`
	Spans      int     `json:"spans"`
	JobID      string  `json:"job_id,omitempty"`
}

// handleDebugTraces lists the N slowest recent traces (default 10).
func (s *Server) handleDebugTraces(w http.ResponseWriter, r *http.Request) {
	if s.tracer == nil {
		writeError(w, http.StatusNotImplemented, "tracing is disabled (start dartd with -trace-buffer > 0)")
		return
	}
	n := 10
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v <= 0 {
			writeError(w, http.StatusBadRequest, "n must be a positive integer, got %q", q)
			return
		}
		n = v
	}
	slowest := s.tracer.Slowest(n)
	out := make([]traceSummary, 0, len(slowest))
	for _, tr := range slowest {
		row := traceSummary{
			TraceID:    tr.TraceID,
			Name:       tr.Name,
			Start:      tr.Start.Format("2006-01-02T15:04:05.000Z07:00"),
			DurationMS: float64(tr.DurationNS) / 1e6,
			Spans:      len(tr.Spans),
		}
		if root := tr.Tree(); root != nil && root.Attrs != nil {
			if id, ok := root.Attrs["job_id"].(string); ok {
				row.JobID = id
			}
		}
		out = append(out, row)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"traces": out,
		"count":  len(out),
	})
}

// handleHealthz reports liveness; a draining server answers 503 so load
// balancers stop routing to it.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  "ok",
		"workers": s.pool.workerCount(),
		"queued":  s.queue.Depth(),
	})
}

// handleMetrics exposes the registry in Prometheus text format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.WritePrometheus(w)
}
