package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"dart/internal/analysis/specvet"
)

// maxBodyBytes bounds request bodies (documents are page-sized; 8 MiB is
// generous).
const maxBodyBytes = 8 << 20

// routes registers the HTTP API on the server's mux.
func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
}

// writeJSON emits one JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// writeError emits one JSON error envelope.
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// handleSubmit accepts one job: it validates the spec eagerly (so malformed
// scenarios and metadata fail at submission, not in a worker) and enqueues.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "malformed job spec: %v", err)
		return
	}
	if spec.Document == "" {
		writeError(w, http.StatusBadRequest, "job spec needs a document")
		return
	}
	md, err := ResolveMetadata(spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Admission-time spec vetting: the same checks dartvet -spec runs.
	// Rejecting here turns a doomed worker run into an immediate,
	// machine-readable 422.
	if diags := specvet.Vet(md); len(diags) > 0 {
		s.metrics.SpecRejected()
		writeJSON(w, http.StatusUnprocessableEntity, map[string]any{
			"error":       fmt.Sprintf("spec failed vetting with %d diagnostic(s)", len(diags)),
			"diagnostics": diags,
		})
		return
	}
	if _, err := resolveSolver(spec.Solver, spec.SolverWorkers); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	view, err := s.queue.Submit(spec)
	switch {
	case errors.Is(err, ErrDraining), errors.Is(err, ErrQueueFull):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	s.metrics.JobSubmitted()
	w.Header().Set("Location", "/v1/jobs/"+view.ID)
	writeJSON(w, http.StatusAccepted, view)
}

// handleList returns every job, results omitted.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.queue.List()
	writeJSON(w, http.StatusOK, map[string]any{
		"jobs":  jobs,
		"count": len(jobs),
	})
}

// handleGet returns one job with its result.
func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	view, ok := s.queue.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", id)
		return
	}
	writeJSON(w, http.StatusOK, view)
}

// handleHealthz reports liveness; a draining server answers 503 so load
// balancers stop routing to it.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  "ok",
		"workers": s.pool.workerCount(),
		"queued":  s.queue.Depth(),
	})
}

// handleMetrics exposes the registry in Prometheus text format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.WritePrometheus(w)
}
