package service

import (
	"encoding/json"
	"testing"

	"dart"
	"dart/internal/relational"
	"dart/internal/runningex"
	"dart/internal/scenario"
)

// TestDatabaseRoundTrip encodes the running example's acquired database to
// JSON bytes and reconstructs an identical instance.
func TestDatabaseRoundTrip(t *testing.T) {
	db := runningex.AcquiredDatabase()
	enc := EncodeDatabase(db)
	raw, err := json.Marshal(enc)
	if err != nil {
		t.Fatal(err)
	}
	var back DatabaseJSON
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeDatabase(&back)
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != db.String() {
		t.Errorf("decoded database differs:\n%s\nwant:\n%s", got, db)
	}
	if len(got.Measures()) != len(db.Measures()) {
		t.Errorf("measures = %v, want %v", got.Measures(), db.Measures())
	}
	for i, m := range got.Measures() {
		if db.Measures()[i] != m {
			t.Errorf("measure %d = %v, want %v", i, m, db.Measures()[i])
		}
	}
}

// TestRepairRoundTrip pushes a repair through JSON and back, then applies
// the decoded repair to verify it still addresses the database.
func TestRepairRoundTrip(t *testing.T) {
	db := runningex.AcquiredDatabase()
	rep := &dart.Repair{Updates: []dart.Update{{
		Item: dart.Item{Relation: "CashBudget", TupleID: 3, Attr: "Value"},
		Old:  relational.Int(250),
		New:  relational.Int(220),
	}}}
	raw, err := json.Marshal(EncodeRepair(rep))
	if err != nil {
		t.Fatal(err)
	}
	var rj RepairJSON
	if err := json.Unmarshal(raw, &rj); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRepair(&rj)
	if err != nil {
		t.Fatal(err)
	}
	if got.Card() != 1 || got.Updates[0] != rep.Updates[0] {
		t.Fatalf("decoded repair = %v, want %v", got, rep)
	}
	if _, err := got.Applied(db); err != nil {
		t.Errorf("decoded repair does not apply: %v", err)
	}
}

// TestEncodeResultEndToEnd runs the real pipeline on the running example
// with the paper's error and checks the wire form carries the essentials.
func TestEncodeResultEndToEnd(t *testing.T) {
	md, err := scenario.CashBudget()
	if err != nil {
		t.Fatal(err)
	}
	p := &dart.Pipeline{Metadata: md}
	res, err := p.Process(runningExampleErrorHTML())
	if err != nil {
		t.Fatal(err)
	}
	enc := EncodeResult(res)
	if enc.Acquisition == nil || enc.Acquisition.Consistent {
		t.Fatalf("acquisition = %+v, want inconsistent", enc.Acquisition)
	}
	if len(enc.Acquisition.Violations) != 2 {
		t.Errorf("violations = %d, want 2", len(enc.Acquisition.Violations))
	}
	if enc.Repair == nil || enc.Repair.Card != 1 {
		t.Fatalf("repair = %+v, want card 1", enc.Repair)
	}
	u := enc.Repair.Updates[0]
	if u.Old.Value != int64(250) || u.New.Value != int64(220) {
		t.Errorf("update = %+v, want 250 -> 220", u)
	}
	if enc.Repaired == nil || len(enc.Repaired.Relations) != 1 {
		t.Fatalf("repaired = %+v", enc.Repaired)
	}
	// The whole result must be wire-representable.
	if _, err := json.Marshal(enc); err != nil {
		t.Errorf("result not marshalable: %v", err)
	}
}

// TestDecodeValueErrors exercises the codec's malformed-input paths.
func TestDecodeValueErrors(t *testing.T) {
	if _, err := decodeValue(ValueJSON{Domain: "X", Value: 1}); err == nil {
		t.Error("unknown domain should fail")
	}
	if _, err := decodeValue(ValueJSON{Domain: "Z", Value: "nope"}); err == nil {
		t.Error("string payload for Z should fail")
	}
	if _, err := decodeValue(ValueJSON{Domain: "S", Value: 3.0}); err == nil {
		t.Error("numeric payload for S should fail")
	}
	if _, err := DecodeDatabase(&DatabaseJSON{Measures: []string{"noDot"}}); err == nil {
		t.Error("bad measure ref should fail")
	}
}
