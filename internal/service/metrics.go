package service

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"dart/internal/repair"
	"dart/internal/store"
)

// Version identifies the build in dart_build_info; release builds override
// it via -ldflags "-X dart/internal/service.Version=v1.2.3".
var Version = "dev"

// histBuckets are the latency histogram upper bounds in seconds,
// exponential from 0.5ms to 60s.
var histBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// histogram is a fixed-bucket latency histogram. counts[i] holds the
// observations that fell into bucket i alone (counts[len(histBuckets)] is
// the +Inf overflow); the cumulative totals the Prometheus text format wants
// are accumulated at write time. Storing per-bucket counts makes observe
// O(log buckets) — one binary search and one increment — instead of
// incrementing every bucket at or above the observation.
type histogram struct {
	counts []uint64 // per-bucket, parallel to histBuckets plus +Inf overflow
	sum    float64
	count  uint64
}

func newHistogram() *histogram {
	return &histogram{counts: make([]uint64, len(histBuckets)+1)}
}

func (h *histogram) observe(seconds float64) {
	// First bucket whose upper bound is >= seconds: exactly Prometheus's
	// "le" semantics. SearchFloat64s returns len(histBuckets) when the
	// observation exceeds every bound — the +Inf overflow slot.
	h.counts[sort.SearchFloat64s(histBuckets, seconds)]++
	h.sum += seconds
	h.count++
}

// write emits the histogram in Prometheus cumulative-bucket text format,
// accumulating the per-bucket counts into running totals.
func (h *histogram) write(w io.Writer, name, labels string) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	var cum uint64
	for i, ub := range histBuckets {
		cum += h.counts[i]
		fmt.Fprintf(w, "%s_bucket{%s%sle=%q} %d\n", name, labels, sep,
			strconv.FormatFloat(ub, 'g', -1, 64), cum)
	}
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, h.count)
	if labels != "" {
		fmt.Fprintf(w, "%s_sum{%s} %g\n", name, labels, h.sum)
		fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, h.count)
	} else {
		fmt.Fprintf(w, "%s_sum %g\n", name, h.sum)
		fmt.Fprintf(w, "%s_count %d\n", name, h.count)
	}
}

// Metrics is the service's in-process metrics registry: job counters by
// terminal state, per-stage pipeline latency histograms (it implements
// dart.StageObserver), whole-job latency, queue depth, retries, violations
// found, and repair cardinality. Exposed by GET /metrics in Prometheus text
// format.
type Metrics struct {
	mu             sync.Mutex
	submitted      uint64
	finished       map[JobState]uint64
	retries        uint64
	violations     uint64
	updates        uint64
	stages         map[string]*histogram
	jobSeconds     *histogram
	queueWait      *histogram
	prepareSeconds *histogram
	resolveSeconds *histogram
	compSolved     uint64
	compReused     uint64
	bbNodes        uint64
	bbWorkers      int
	specRejections uint64
	cacheHits      uint64
	cacheMisses    uint64
	queueDepth     func() int
	workerCount    int
	storeStats     func() store.Stats
	storeErrors    uint64
	recRequeued    uint64
	recCompleted   uint64
	recDropped     uint64
	// Validation-session repair activity: decisions by outcome state, the
	// proposal→decision latency, and a live open-suggestions sampler.
	repairDecisions map[repair.Kind]uint64
	decisionSeconds *histogram
	openSuggestions func() int
	// Telemetry-loss samplers: spans the tracer discarded (ring eviction,
	// post-seal ends) and live events dropped per slow subscriber.
	droppedSpans  func() uint64
	droppedEvents func() map[string]uint64

	// Runtime sampling hooks, overridden by the golden exposition test so
	// /metrics output is reproducible; production uses the defaults.
	start      time.Time
	now        func() time.Time
	goroutines func() int
	heapBytes  func() uint64
}

// NewMetrics creates an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		finished:        make(map[JobState]uint64),
		stages:          make(map[string]*histogram),
		jobSeconds:      newHistogram(),
		queueWait:       newHistogram(),
		prepareSeconds:  newHistogram(),
		resolveSeconds:  newHistogram(),
		repairDecisions: make(map[repair.Kind]uint64),
		decisionSeconds: newHistogram(),
		start:           time.Now(),
		now:             time.Now,
		goroutines:      runtime.NumGoroutine,
		heapBytes: func() uint64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return ms.HeapAlloc
		},
	}
}

// ObserveStage implements dart.StageObserver: it records one pipeline-stage
// latency ("convert", "wrapper", "dbgen", "check", "solver"). The repair
// module's problem-preparation and per-iteration re-solve timings
// ("prepare", "resolve") go to their own histogram families so the generic
// per-stage family keeps one observation per job stage.
func (m *Metrics) ObserveStage(stage string, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	switch stage {
	case "prepare":
		m.prepareSeconds.observe(d.Seconds())
		return
	case "resolve":
		m.resolveSeconds.observe(d.Seconds())
		return
	}
	h := m.stages[stage]
	if h == nil {
		h = newHistogram()
		m.stages[stage] = h
	}
	h.observe(d.Seconds())
}

// Components counts component-level solver work of one finished pipeline
// run: solved components paid a solver call, reused ones were served from
// the prepared problem's memo.
func (m *Metrics) Components(solved, reused int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if solved > 0 {
		m.compSolved += uint64(solved)
	}
	if reused > 0 {
		m.compReused += uint64(reused)
	}
}

// BBNodes counts branch-and-bound nodes explored by one finished pipeline
// run.
func (m *Metrics) BBNodes(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if n > 0 {
		m.bbNodes += uint64(n)
	}
}

// CacheHit counts one job served from the result cache.
func (m *Metrics) CacheHit() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cacheHits++
}

// CacheMiss counts one job that had to run the pipeline.
func (m *Metrics) CacheMiss() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cacheMisses++
}

// JobSubmitted counts one accepted submission.
func (m *Metrics) JobSubmitted() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.submitted++
}

// JobFinished counts one terminal job and its latency and repair outcome.
func (m *Metrics) JobFinished(state JobState, d time.Duration, res *ResultJSON) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.finished[state]++
	m.jobSeconds.observe(d.Seconds())
	if res != nil {
		if res.Acquisition != nil {
			m.violations += uint64(len(res.Acquisition.Violations))
		}
		if res.Repair != nil {
			m.updates += uint64(res.Repair.Card)
		}
	}
}

// SpecRejected counts one submission rejected by admission-time spec
// vetting.
func (m *Metrics) SpecRejected() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.specRejections++
}

// QueueWait records how long a job waited between submission and its first
// dequeue by a worker.
func (m *Metrics) QueueWait(d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.queueWait.observe(d.Seconds())
}

// Retry counts one retried attempt.
func (m *Metrics) Retry() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.retries++
}

// RepairEvent counts one suggestion-ledger transition. Decisions (accepts,
// rejects) additionally observe the proposal→decision latency; proposals
// themselves are not decisions and only show up through the open gauge.
func (m *Metrics) RepairEvent(ev repair.Event) {
	if ev.Kind == repair.KindProposed {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.repairDecisions[ev.Kind]++
	if ev.Kind == repair.KindAccepted || ev.Kind == repair.KindRejected {
		m.decisionSeconds.observe(float64(ev.Suggestion.DecidedAt-ev.Suggestion.ProposedAt) / 1e9)
	}
}

// BindSuggestions attaches the live open-suggestions sampler exposed as
// dart_suggestions_open.
func (m *Metrics) BindSuggestions(f func() int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.openSuggestions = f
}

// BindTracer attaches the tracer's dropped-spans sampler, exposed as
// dart_trace_spans_dropped_total. The family is emitted unconditionally
// (0 while unbound) so dashboards never see it appear out of nowhere.
func (m *Metrics) BindTracer(droppedSpans func() uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.droppedSpans = droppedSpans
}

// BindBus attaches the bus's per-subscriber drop sampler, exposed as
// dart_events_dropped_total{subscriber}.
func (m *Metrics) BindBus(droppedEvents func() map[string]uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.droppedEvents = droppedEvents
}

// Bind attaches the live gauges (queue depth, job worker count, and the
// per-job branch-and-bound worker budget) the registry samples at
// exposition time.
func (m *Metrics) Bind(queueDepth func() int, workers, bbWorkers int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.queueDepth = queueDepth
	m.workerCount = workers
	m.bbWorkers = bbWorkers
}

// BindStore attaches the job store's stats sampler; the dart_store_*
// families are exposed only once a store is bound, so storeless servers
// keep their exposition unchanged.
func (m *Metrics) BindStore(stats func() store.Stats) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.storeStats = stats
}

// StoreError counts one non-fatal job store append failure.
func (m *Metrics) StoreError() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.storeErrors++
}

// Recovered records the boot-time replay outcome: jobs re-enqueued, jobs
// restored terminal with results, and jobs dropped for lack of queue
// capacity.
func (m *Metrics) Recovered(requeued, completed, dropped int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.recRequeued = uint64(requeued)
	m.recCompleted = uint64(completed)
	m.recDropped = uint64(dropped)
}

// Snapshot returns the submitted and per-terminal-state finished counters;
// tests use it to cross-check /metrics against job store contents.
func (m *Metrics) Snapshot() (submitted uint64, finished map[JobState]uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	finished = make(map[JobState]uint64, len(m.finished))
	for k, v := range m.finished {
		finished[k] = v
	}
	return m.submitted, finished
}

// WritePrometheus emits the whole registry in Prometheus text exposition
// format, deterministically ordered.
func (m *Metrics) WritePrometheus(w io.Writer) {
	m.mu.Lock()
	defer m.mu.Unlock()

	fmt.Fprintln(w, "# HELP dart_build_info Build metadata; the value is always 1.")
	fmt.Fprintln(w, "# TYPE dart_build_info gauge")
	fmt.Fprintf(w, "dart_build_info{version=%q,go_version=%q} 1\n", Version, runtime.Version())

	fmt.Fprintln(w, "# HELP dart_uptime_seconds Seconds since the metrics registry was created.")
	fmt.Fprintln(w, "# TYPE dart_uptime_seconds gauge")
	fmt.Fprintf(w, "dart_uptime_seconds %g\n", m.now().Sub(m.start).Seconds())

	fmt.Fprintln(w, "# HELP dart_goroutines Live goroutines at exposition time.")
	fmt.Fprintln(w, "# TYPE dart_goroutines gauge")
	fmt.Fprintf(w, "dart_goroutines %d\n", m.goroutines())

	fmt.Fprintln(w, "# HELP dart_heap_bytes Heap bytes in use at exposition time.")
	fmt.Fprintln(w, "# TYPE dart_heap_bytes gauge")
	fmt.Fprintf(w, "dart_heap_bytes %d\n", m.heapBytes())

	fmt.Fprintln(w, "# HELP dartd_jobs_submitted_total Jobs accepted for processing.")
	fmt.Fprintln(w, "# TYPE dartd_jobs_submitted_total counter")
	fmt.Fprintf(w, "dartd_jobs_submitted_total %d\n", m.submitted)

	fmt.Fprintln(w, "# HELP dartd_jobs_total Jobs finished, by terminal state.")
	fmt.Fprintln(w, "# TYPE dartd_jobs_total counter")
	for _, s := range JobStates {
		if !s.Terminal() {
			continue
		}
		fmt.Fprintf(w, "dartd_jobs_total{state=%q} %d\n", string(s), m.finished[s])
	}

	fmt.Fprintln(w, "# HELP dart_spec_rejections_total Submissions rejected by admission-time spec vetting.")
	fmt.Fprintln(w, "# TYPE dart_spec_rejections_total counter")
	fmt.Fprintf(w, "dart_spec_rejections_total %d\n", m.specRejections)

	fmt.Fprintln(w, "# HELP dartd_job_retries_total Job attempts retried after transient failures.")
	fmt.Fprintln(w, "# TYPE dartd_job_retries_total counter")
	fmt.Fprintf(w, "dartd_job_retries_total %d\n", m.retries)

	fmt.Fprintln(w, "# HELP dartd_violations_found_total Ground constraint violations detected across jobs.")
	fmt.Fprintln(w, "# TYPE dartd_violations_found_total counter")
	fmt.Fprintf(w, "dartd_violations_found_total %d\n", m.violations)

	fmt.Fprintln(w, "# HELP dartd_repair_updates_total Atomic updates across computed repairs (summed cardinality).")
	fmt.Fprintln(w, "# TYPE dartd_repair_updates_total counter")
	fmt.Fprintf(w, "dartd_repair_updates_total %d\n", m.updates)

	fmt.Fprintln(w, "# HELP dart_repair_decisions_total Suggestion-ledger transitions in validation sessions, by outcome state.")
	fmt.Fprintln(w, "# TYPE dart_repair_decisions_total counter")
	for _, k := range []repair.Kind{repair.KindAccepted, repair.KindRejected, repair.KindReverted, repair.KindSuperseded} {
		fmt.Fprintf(w, "dart_repair_decisions_total{state=%q} %d\n", string(k), m.repairDecisions[k])
	}

	fmt.Fprintln(w, "# HELP dartd_components_solved_total Violated connected components handed to a solver.")
	fmt.Fprintln(w, "# TYPE dartd_components_solved_total counter")
	fmt.Fprintf(w, "dartd_components_solved_total %d\n", m.compSolved)

	fmt.Fprintln(w, "# HELP dartd_components_reused_total Component re-solves served from the prepared problem's memo.")
	fmt.Fprintln(w, "# TYPE dartd_components_reused_total counter")
	fmt.Fprintf(w, "dartd_components_reused_total %d\n", m.compReused)

	fmt.Fprintln(w, "# HELP dart_bb_nodes_total Branch-and-bound nodes explored by the repair solver.")
	fmt.Fprintln(w, "# TYPE dart_bb_nodes_total counter")
	fmt.Fprintf(w, "dart_bb_nodes_total %d\n", m.bbNodes)

	fmt.Fprintln(w, "# HELP dartd_result_cache_hits_total Jobs served from the result cache.")
	fmt.Fprintln(w, "# TYPE dartd_result_cache_hits_total counter")
	fmt.Fprintf(w, "dartd_result_cache_hits_total %d\n", m.cacheHits)

	fmt.Fprintln(w, "# HELP dartd_result_cache_misses_total Jobs that ran the pipeline (result cache miss or cache disabled).")
	fmt.Fprintln(w, "# TYPE dartd_result_cache_misses_total counter")
	fmt.Fprintf(w, "dartd_result_cache_misses_total %d\n", m.cacheMisses)

	// Telemetry-loss counters: emitted unconditionally (0 when the tracer
	// or bus is absent) so the golden exposition stays deterministic and
	// dashboards can alert on any nonzero rate.
	fmt.Fprintln(w, "# HELP dart_trace_spans_dropped_total Span records discarded by the tracer (ring-buffer eviction or spans ending after their trace sealed).")
	fmt.Fprintln(w, "# TYPE dart_trace_spans_dropped_total counter")
	var spansDropped uint64
	if m.droppedSpans != nil {
		spansDropped = m.droppedSpans()
	}
	fmt.Fprintf(w, "dart_trace_spans_dropped_total %d\n", spansDropped)

	fmt.Fprintln(w, "# HELP dart_events_dropped_total Live telemetry events dropped per slow subscriber.")
	fmt.Fprintln(w, "# TYPE dart_events_dropped_total counter")
	if m.droppedEvents != nil {
		drops := m.droppedEvents()
		names := make([]string, 0, len(drops))
		for name := range drops {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(w, "dart_events_dropped_total{subscriber=%q} %d\n", name, drops[name])
		}
	}

	if m.storeStats != nil {
		st := m.storeStats()

		fmt.Fprintln(w, "# HELP dart_store_appends_total Records appended to the job store.")
		fmt.Fprintln(w, "# TYPE dart_store_appends_total counter")
		fmt.Fprintf(w, "dart_store_appends_total %d\n", st.Appends)

		fmt.Fprintln(w, "# HELP dart_store_append_bytes_total Frame bytes appended to the job store.")
		fmt.Fprintln(w, "# TYPE dart_store_append_bytes_total counter")
		fmt.Fprintf(w, "dart_store_append_bytes_total %d\n", st.AppendBytes)

		fmt.Fprintln(w, "# HELP dart_store_append_errors_total Job store appends that failed (jobs still completed in memory).")
		fmt.Fprintln(w, "# TYPE dart_store_append_errors_total counter")
		fmt.Fprintf(w, "dart_store_append_errors_total %d\n", m.storeErrors)

		fmt.Fprintln(w, "# HELP dart_store_fsyncs_total fsync calls issued by the job store.")
		fmt.Fprintln(w, "# TYPE dart_store_fsyncs_total counter")
		fmt.Fprintf(w, "dart_store_fsyncs_total %d\n", st.Fsyncs)

		fmt.Fprintln(w, "# HELP dart_store_snapshots_total Snapshots written (each absorbs and truncates the log).")
		fmt.Fprintln(w, "# TYPE dart_store_snapshots_total counter")
		fmt.Fprintf(w, "dart_store_snapshots_total %d\n", st.Snapshots)

		fmt.Fprintln(w, "# HELP dart_store_wal_bytes Current size of the write-ahead log.")
		fmt.Fprintln(w, "# TYPE dart_store_wal_bytes gauge")
		fmt.Fprintf(w, "dart_store_wal_bytes %d\n", st.WALBytes)

		fmt.Fprintln(w, "# HELP dart_store_snapshot_bytes Size of the current snapshot blob.")
		fmt.Fprintln(w, "# TYPE dart_store_snapshot_bytes gauge")
		fmt.Fprintf(w, "dart_store_snapshot_bytes %d\n", st.SnapshotBytes)

		fmt.Fprintln(w, "# HELP dart_store_replay_seconds Wall-clock time of the last store replay.")
		fmt.Fprintln(w, "# TYPE dart_store_replay_seconds gauge")
		fmt.Fprintf(w, "dart_store_replay_seconds %g\n", st.ReplaySeconds)

		fmt.Fprintln(w, "# HELP dart_store_replay_records Records delivered by the last store replay.")
		fmt.Fprintln(w, "# TYPE dart_store_replay_records gauge")
		fmt.Fprintf(w, "dart_store_replay_records %d\n", st.ReplayRecords)

		fmt.Fprintln(w, "# HELP dart_store_recovered_jobs Jobs recovered at boot, by outcome.")
		fmt.Fprintln(w, "# TYPE dart_store_recovered_jobs gauge")
		fmt.Fprintf(w, "dart_store_recovered_jobs{kind=\"requeued\"} %d\n", m.recRequeued)
		fmt.Fprintf(w, "dart_store_recovered_jobs{kind=\"completed\"} %d\n", m.recCompleted)
		fmt.Fprintf(w, "dart_store_recovered_jobs{kind=\"dropped\"} %d\n", m.recDropped)
	}

	if m.queueDepth != nil {
		fmt.Fprintln(w, "# HELP dartd_queue_depth Jobs waiting for a worker.")
		fmt.Fprintln(w, "# TYPE dartd_queue_depth gauge")
		fmt.Fprintf(w, "dartd_queue_depth %d\n", m.queueDepth())
	}
	if m.openSuggestions != nil {
		fmt.Fprintln(w, "# HELP dart_suggestions_open Suggestions awaiting an operator decision across live validation sessions.")
		fmt.Fprintln(w, "# TYPE dart_suggestions_open gauge")
		fmt.Fprintf(w, "dart_suggestions_open %d\n", m.openSuggestions())
	}
	if m.workerCount > 0 {
		fmt.Fprintln(w, "# HELP dartd_workers Configured worker count.")
		fmt.Fprintln(w, "# TYPE dartd_workers gauge")
		fmt.Fprintf(w, "dartd_workers %d\n", m.workerCount)
	}
	if m.bbWorkers > 0 {
		fmt.Fprintln(w, "# HELP dart_bb_workers Branch-and-bound worker budget per job.")
		fmt.Fprintln(w, "# TYPE dart_bb_workers gauge")
		fmt.Fprintf(w, "dart_bb_workers %d\n", m.bbWorkers)
	}

	fmt.Fprintln(w, "# HELP dartd_stage_seconds Pipeline stage latency, by stage.")
	fmt.Fprintln(w, "# TYPE dartd_stage_seconds histogram")
	stages := make([]string, 0, len(m.stages))
	for s := range m.stages {
		stages = append(stages, s)
	}
	sort.Strings(stages)
	for _, s := range stages {
		m.stages[s].write(w, "dartd_stage_seconds", fmt.Sprintf("stage=%q", s))
	}

	fmt.Fprintln(w, "# HELP dart_prepare_seconds Repair-problem preparation latency (grounding + decomposition, once per job).")
	fmt.Fprintln(w, "# TYPE dart_prepare_seconds histogram")
	m.prepareSeconds.write(w, "dart_prepare_seconds", "")

	fmt.Fprintln(w, "# HELP dart_resolve_seconds Prepared-problem re-solve latency (once per validation-loop iteration).")
	fmt.Fprintln(w, "# TYPE dart_resolve_seconds histogram")
	m.resolveSeconds.write(w, "dart_resolve_seconds", "")

	fmt.Fprintln(w, "# HELP dart_decision_seconds Proposal-to-decision latency of validation-session suggestions.")
	fmt.Fprintln(w, "# TYPE dart_decision_seconds histogram")
	m.decisionSeconds.write(w, "dart_decision_seconds", "")

	fmt.Fprintln(w, "# HELP dartd_job_seconds Whole-job latency (queue wait excluded).")
	fmt.Fprintln(w, "# TYPE dartd_job_seconds histogram")
	m.jobSeconds.write(w, "dartd_job_seconds", "")

	fmt.Fprintln(w, "# HELP dart_queue_wait_seconds Time jobs spent queued before their first dequeue.")
	fmt.Fprintln(w, "# TYPE dart_queue_wait_seconds histogram")
	m.queueWait.write(w, "dart_queue_wait_seconds", "")
}
