package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"dart/internal/core"
	"dart/internal/repair"
	"dart/internal/runningex"
	"dart/internal/store"
	"dart/internal/validate"
)

// suggestionsView decodes GET /v1/jobs/{id}/suggestions; the audit-bearing
// parts stay raw so tests can compare them byte for byte across restarts.
type suggestionsView struct {
	JobID       string              `json:"job_id"`
	Live        bool                `json:"live"`
	Open        int                 `json:"open"`
	Count       int                 `json:"count"`
	Counters    json.RawMessage     `json:"counters"`
	Suggestions []repair.Suggestion `json:"suggestions"`
	raw         struct {
		Suggestions json.RawMessage `json:"suggestions"`
	}
}

func getSuggestions(t *testing.T, base, id string) suggestionsView {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + "/suggestions")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET suggestions = %d", resp.StatusCode)
	}
	var buf bytes.Buffer
	var v suggestionsView
	if err := json.NewDecoder(io2(&buf, resp)).Decode(&v); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(buf.Bytes(), &v.raw); err != nil {
		t.Fatal(err)
	}
	return v
}

// io2 tees the response body so the raw bytes survive decoding.
func io2(buf *bytes.Buffer, resp *http.Response) *teeReader {
	return &teeReader{r: resp, buf: buf}
}

type teeReader struct {
	r   *http.Response
	buf *bytes.Buffer
}

func (t *teeReader) Read(p []byte) (int, error) {
	n, err := t.r.Body.Read(p)
	t.buf.Write(p[:n])
	return n, err
}

// waitSuggestions polls the suggestions endpoint until pred holds.
func waitSuggestions(t *testing.T, base, id string, pred func(suggestionsView) bool) suggestionsView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if v := getSuggestions(t, base, id); pred(v) {
			return v
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s suggestions never reached the expected state", id)
	return suggestionsView{}
}

// decide posts one decision and returns the HTTP status plus the updated
// suggestion record.
func decide(t *testing.T, base, id string, sid int, body map[string]any) (int, repair.Suggestion) {
	t.Helper()
	raw, _ := json.Marshal(body)
	resp, err := http.Post(base+"/v1/jobs/"+id+"/suggestions/"+strconv.Itoa(sid),
		"application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sg repair.Suggestion
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&sg); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, sg
}

// TestValidationSessionOverHTTP drives a whole validation session through
// the suggestions API — reject, accept, revert (superseding the rest of the
// queue), re-accept — and then replays the same effective decision sequence
// through the stdin operator path: the two final repaired databases must be
// byte-identical, and the HTTP session's records must carry the full
// who/when audit history.
func TestValidationSessionOverHTTP(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	v, resp := postJob(t, ts.URL, JobSpec{Document: runningExampleErrorHTML(), Scenario: "cashbudget", Validate: true})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}

	// Iteration 1: the solver proposes the card-minimal repair 250 -> 220
	// on total cash receipts. Our operator insists the document says 250.
	sv := waitSuggestions(t, ts.URL, v.ID, func(sv suggestionsView) bool { return sv.Live && sv.Open >= 1 })
	first := sv.Suggestions[0]
	if first.Old != 250 || first.New != 220 {
		t.Fatalf("first proposal = %v -> %v, want 250 -> 220", first.Old, first.New)
	}
	if len(first.Evidence) == 0 {
		t.Error("suggestion carries no ground-constraint evidence")
	}
	// A stale seq must conflict, not decide.
	if st, _ := decide(t, ts.URL, v.ID, first.ID, map[string]any{"action": "accept", "seq": first.Seq + 7}); st != http.StatusConflict {
		t.Fatalf("stale-seq decision = %d, want 409", st)
	}
	st, rej := decide(t, ts.URL, v.ID, first.ID, map[string]any{
		"action": "reject", "seq": first.Seq, "by": "alice", "actual_value": 250})
	if st != http.StatusOK || rej.State != repair.StateRejected || rej.DecidedBy != "alice" || rej.DecidedAt == 0 {
		t.Fatalf("reject = %d %+v", st, rej)
	}

	// Iteration 2: with 250 pinned, the solver must repair both violated
	// constraints elsewhere — at least two fresh proposals.
	sv = waitSuggestions(t, ts.URL, v.ID, func(sv suggestionsView) bool { return sv.Live && sv.Open >= 2 })
	var open []repair.Suggestion
	for i := range sv.Suggestions {
		if sv.Suggestions[i].State == repair.StateProposed {
			open = append(open, sv.Suggestions[i])
		}
	}
	// Accept one, then change our mind: the revert must supersede the rest
	// of the open queue (they were computed under the now-withdrawn pin).
	st, acc := decide(t, ts.URL, v.ID, open[0].ID, map[string]any{"action": "accept", "seq": open[0].Seq, "by": "bob"})
	if st != http.StatusOK || acc.State != repair.StateAccepted || acc.DecidedBy != "bob" {
		t.Fatalf("accept = %d %+v", st, acc)
	}
	st, rev := decide(t, ts.URL, v.ID, acc.ID, map[string]any{"action": "revert", "seq": acc.Seq, "by": "bob"})
	if st != http.StatusOK || rev.State != repair.StateReverted || rev.RevertedBy != "bob" || rev.RevertedAt == 0 {
		t.Fatalf("revert = %d %+v", st, rev)
	}

	// Iteration 3 re-proposes fresh records for the same cells; accept
	// everything until the session completes.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("session did not complete")
		}
		sv = getSuggestions(t, ts.URL, v.ID)
		if !sv.Live {
			break
		}
		for i := range sv.Suggestions {
			if sg := sv.Suggestions[i]; sg.State == repair.StateProposed {
				decide(t, ts.URL, v.ID, sg.ID, map[string]any{"action": "accept", "seq": sg.Seq, "by": "carol"})
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	got := pollJob(t, ts.URL, v.ID)
	if got.State != StateSucceeded {
		t.Fatalf("state = %s, error = %q", got.State, got.Error)
	}
	if got.Result.Validation == nil {
		t.Fatal("validate job carries no validation report")
	}
	val := got.Result.Validation
	if val.Rejected != 1 || val.Reverted != 1 || val.Superseded == 0 || val.Accepted < 2 {
		t.Errorf("validation counters = %+v", val)
	}

	// Full audit history on the finished job: every decided record names its
	// decider, the reverted record its reverter, superseded ones their cause.
	fin := getSuggestions(t, ts.URL, v.ID)
	if fin.Live {
		t.Error("finished session still reports live")
	}
	for _, sg := range fin.Suggestions {
		switch sg.State {
		case repair.StateAccepted, repair.StateRejected:
			if sg.DecidedBy == "" || sg.DecidedAt == 0 {
				t.Errorf("decided record missing audit fields: %+v", sg)
			}
		case repair.StateReverted:
			if sg.RevertedBy != "bob" || sg.RevertedAt == 0 {
				t.Errorf("reverted record missing audit fields: %+v", sg)
			}
		case repair.StateSuperseded:
			if sg.SupersededBy == "" || sg.SupersededAt == 0 {
				t.Errorf("superseded record missing audit fields: %+v", sg)
			}
		}
	}

	// The stdin path with the same effective decisions: reject the first
	// proposal with 250, accept everything after. The revert detour cannot
	// change the outcome — the re-solve under the same pins re-proposes the
	// same updates — so the two final databases must be byte-identical.
	in := strings.NewReader("n\n250\n" + strings.Repeat("y\n", 50))
	out, err := (&validate.Session{
		DB:          runningex.AcquiredDatabase(),
		Constraints: runningex.Constraints(),
		Solver:      &core.MILPSolver{},
		Operator:    &validate.InteractiveOperator{In: in, Out: &strings.Builder{}},
	}).Run()
	if err != nil {
		t.Fatal(err)
	}
	wantDB, _ := json.Marshal(EncodeDatabase(out.Repaired))
	gotDB, _ := json.Marshal(got.Result.Repaired)
	if !bytes.Equal(gotDB, wantDB) {
		t.Errorf("HTTP session's repaired database diverged from the stdin path:\n http  %s\n stdin %s", gotDB, wantDB)
	}

	// The workbench page serves for any known job.
	wb, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/workbench")
	if err != nil {
		t.Fatal(err)
	}
	wb.Body.Close()
	if wb.StatusCode != http.StatusOK || !strings.HasPrefix(wb.Header.Get("Content-Type"), "text/html") {
		t.Errorf("workbench = %d %s", wb.StatusCode, wb.Header.Get("Content-Type"))
	}
}

// TestSuggestionEndpointErrors pins the failure surface: unknown jobs 404,
// decisions without a live session 409, malformed bodies 400.
func TestSuggestionEndpointErrors(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1})
	if resp, err := http.Get(ts.URL + "/v1/jobs/nope/suggestions"); err != nil || resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job suggestions = %v %v", resp.StatusCode, err)
	} else {
		resp.Body.Close()
	}

	// A non-validate job exists but never has a live session: decisions 409,
	// the (empty) suggestion list and workbench still serve.
	v, err := srv.Queue().Submit(JobSpec{Document: runningExampleErrorHTML(), Scenario: "cashbudget"})
	if err != nil {
		t.Fatal(err)
	}
	pollJob(t, ts.URL, v.ID)
	if st, _ := decide(t, ts.URL, v.ID, 1, map[string]any{"action": "accept", "seq": 1}); st != http.StatusConflict {
		t.Fatalf("decision without live session = %d, want 409", st)
	}
	if sv := getSuggestions(t, ts.URL, v.ID); sv.Live || sv.Count != 0 {
		t.Fatalf("non-validate job suggestions = %+v", sv)
	}
}

// TestValidationSessionCrashReplay is the kill -9 story for live sessions:
// decisions journal to the WAL as they land, so after an abrupt crash the
// restarted server rebuilds the identical suggestion queue and decision
// history — byte for byte — and the session finishes from where it stopped,
// never re-asking a decided suggestion.
func TestValidationSessionCrashReplay(t *testing.T) {
	dir := t.TempDir()
	st1, err := store.OpenWAL(dir, store.WALOptions{SyncEveryAppend: true})
	if err != nil {
		t.Fatal(err)
	}
	srv1, ts1 := newTestServerNoCleanup(t, Config{Workers: 1, Store: st1})
	srv1.Start()

	v, resp := postJob(t, ts1.URL, JobSpec{Document: runningExampleErrorHTML(), Scenario: "cashbudget", Validate: true})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	sv := waitSuggestions(t, ts1.URL, v.ID, func(sv suggestionsView) bool { return sv.Live && sv.Open >= 1 })
	first := sv.Suggestions[0]
	if st, _ := decide(t, ts1.URL, v.ID, first.ID, map[string]any{
		"action": "reject", "seq": first.Seq, "by": "alice", "actual_value": 250}); st != http.StatusOK {
		t.Fatalf("reject = %d", st)
	}
	// Iteration 2 under the pin: decide one of the fresh proposals, leave
	// the rest open — the crash lands mid-queue.
	sv = waitSuggestions(t, ts1.URL, v.ID, func(sv suggestionsView) bool { return sv.Live && sv.Open >= 2 })
	var open []repair.Suggestion
	for i := range sv.Suggestions {
		if sv.Suggestions[i].State == repair.StateProposed {
			open = append(open, sv.Suggestions[i])
		}
	}
	if st, _ := decide(t, ts1.URL, v.ID, open[0].ID, map[string]any{"action": "accept", "seq": open[0].Seq, "by": "bob"}); st != http.StatusOK {
		t.Fatalf("accept = %d", st)
	}
	pre := getSuggestions(t, ts1.URL, v.ID)
	if pre.Open == 0 {
		t.Fatal("queue drained before the crash; the test needs an undecided remainder")
	}

	// Crash: nothing after this reaches the store; the parked session is
	// force-cancelled by an expired drain deadline, exactly what kill -9
	// leaves behind.
	ts1.Close()
	srv1.Queue().detachStore()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	_ = srv1.Shutdown(ctx)
	cancel()
	st1.Close()

	// Restart: before any worker runs, the suggestion queue and decision
	// history replay byte-identically from the WAL.
	st2, err := store.OpenWAL(dir, store.WALOptions{SyncEveryAppend: true})
	if err != nil {
		t.Fatal(err)
	}
	srv2, ts2 := newTestServerNoCleanup(t, Config{Workers: 1, Store: st2})
	defer func() {
		ts2.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv2.Shutdown(ctx)
		st2.Close()
	}()
	if rs := srv2.Recovery(); rs == nil || rs.Requeued != 1 {
		t.Fatalf("recovery = %+v, want the session job requeued", rs)
	}
	post := getSuggestions(t, ts2.URL, v.ID)
	if !bytes.Equal(pre.raw.Suggestions, post.raw.Suggestions) {
		t.Errorf("suggestion history changed across the crash:\n pre  %s\n post %s", pre.raw.Suggestions, post.raw.Suggestions)
	}
	if !bytes.Equal(pre.Counters, post.Counters) {
		t.Errorf("counters changed across the crash:\n pre  %s\n post %s", pre.Counters, post.Counters)
	}

	// Resume: the restored session re-parks on the same open queue (the
	// idempotent re-propose mints no new records) and finishes from there.
	srv2.Start()
	sv = waitSuggestions(t, ts2.URL, v.ID, func(sv suggestionsView) bool { return sv.Live })
	if !bytes.Equal(pre.raw.Suggestions, sv.raw.Suggestions) {
		t.Errorf("resumed queue diverged from the pre-crash queue:\n pre    %s\n resume %s", pre.raw.Suggestions, sv.raw.Suggestions)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("resumed session did not complete")
		}
		sv = getSuggestions(t, ts2.URL, v.ID)
		if !sv.Live {
			break
		}
		for i := range sv.Suggestions {
			if sg := sv.Suggestions[i]; sg.State == repair.StateProposed {
				decide(t, ts2.URL, v.ID, sg.ID, map[string]any{"action": "accept", "seq": sg.Seq, "by": "carol"})
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	got := pollJob(t, ts2.URL, v.ID)
	if got.State != StateSucceeded {
		t.Fatalf("resumed session finished %s: %s", got.State, got.Error)
	}
	val := got.Result.Validation
	if val == nil || val.Rejected != 1 || val.Accepted < 2 {
		t.Fatalf("resumed session lost decisions: %+v", val)
	}
	// The pre-crash decisions kept their audit identity through the replay.
	fin := getSuggestions(t, ts2.URL, v.ID)
	var alice bool
	for _, sg := range fin.Suggestions {
		if sg.State == repair.StateRejected && sg.DecidedBy == "alice" {
			alice = true
		}
	}
	if !alice {
		t.Error("pre-crash rejection lost its audit identity across the replay")
	}
}

// newTestServerNoCleanup builds a server plus front end whose lifecycle the
// test manages itself (crash-simulation tests shut down mid-flight and must
// inspect recovered state before any worker starts); callers Start() it.
func newTestServerNoCleanup(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return srv, httptest.NewServer(srv.Handler())
}
