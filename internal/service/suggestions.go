package service

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"

	"dart"
	"dart/internal/obs"
	"dart/internal/repair"
)

// This file is the HTTP face of the auditable repair layer: jobs submitted
// with "validate": true run an interactive validation session whose
// suggestion ledger is worked through GET/POST /v1/jobs/{id}/suggestions
// (or the embedded workbench page) instead of a stdin operator. The worker
// parks on the ledger between re-solves; every decision is journaled to
// the job store as one RecRepair frame, so a killed server resumes the
// session with its queue, counters, and audit history intact.

// apiDecider parks the validation session until every open suggestion is
// decided over HTTP. Decisions happen concurrently through the job's
// published ledger; the decider itself never mutates anything.
type apiDecider struct{}

// Decide implements repair.Decider.
func (apiDecider) Decide(ctx context.Context, l *repair.Ledger, open []repair.Suggestion) error {
	return l.WaitNoOpen(ctx)
}

// runValidation processes one validate-mode job: acquisition as usual,
// then the repairing module driven by the HTTP suggestion queue. A re-run
// (process restart or in-process retry) restores the ledger from the
// job's durable event history, so already-made decisions are never asked
// twice.
func (s *Server) runValidation(ctx context.Context, job *Job) (*ResultJSON, error) {
	spec := job.Spec
	md, err := ResolveMetadata(spec)
	if err != nil {
		return nil, err
	}
	workers := spec.SolverWorkers
	if workers <= 0 {
		workers = s.solverWorkers
	}
	solver, err := resolveSolver(spec.Solver, workers)
	if err != nil {
		return nil, err
	}
	p := &dart.Pipeline{Metadata: md, Solver: solver, Observer: s.metrics}
	acq, err := p.AcquireContext(ctx, spec.Document)
	if err != nil {
		return nil, err
	}
	if acq.Consistent() {
		// Nothing to validate; identical to the automatic path.
		res, err := p.RepairContext(ctx, acq)
		if err != nil {
			return nil, err
		}
		return EncodeResult(res), nil
	}
	ledger := repair.Restore(s.queue.repairEventsOf(job))
	// The observer is bound after Restore: replayed events are already
	// durable and must not be re-journaled or re-counted.
	ledger.SetObserver(func(ev repair.Event) {
		s.queue.noteRepairEvent(job, ev)
		s.metrics.RepairEvent(ev)
		s.bus.Publish(obs.Event{
			Kind:  obs.KindLedger,
			Name:  string(ev.Kind),
			JobID: job.ID,
			Scope: "suggestion:" + strconv.Itoa(ev.Suggestion.ID),
			State: string(ev.Suggestion.State),
			Value: ev.Suggestion.Confidence,
		})
	})
	p.Decider = apiDecider{}
	p.Ledger = ledger
	s.queue.setLedger(job, ledger)
	defer func() {
		ledger.Close()
		s.queue.setLedger(job, nil)
	}()
	res, err := p.RepairContext(ctx, acq)
	if err != nil {
		if isIterLimit(err) {
			return nil, Transient(err)
		}
		return nil, err
	}
	return EncodeResult(res), nil
}

// suggestionDecision is the body of POST /v1/jobs/{id}/suggestions/{sid}.
type suggestionDecision struct {
	// Action is accept, reject, or revert.
	Action string `json:"action"`
	// Seq is the optimistic-concurrency token: the suggestion's seq as the
	// client last read it.
	Seq uint64 `json:"seq"`
	// By is the audit identity (default "operator").
	By string `json:"by,omitempty"`
	// ActualValue is the true source value; required for reject.
	ActualValue *float64 `json:"actual_value,omitempty"`
}

// handleSuggestions lists a job's suggestion records: the live ledger of a
// running session, or — for finished and crashed-but-not-yet-resumed jobs —
// a view restored from the durable event history. Either way the full
// who/when audit trail is served.
func (s *Server) handleSuggestions(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, ledger, ok := s.queue.sessionOf(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", id)
		return
	}
	live := ledger != nil
	if ledger == nil {
		ledger = repair.Restore(s.queue.repairEventsOf(job))
	}
	suggestions := ledger.List()
	writeJSON(w, http.StatusOK, map[string]any{
		"job_id":      id,
		"live":        live,
		"open":        ledger.OpenCount(),
		"count":       len(suggestions),
		"counters":    ledger.Counters(),
		"suggestions": suggestions,
	})
}

// handleSuggestionDecision applies one accept/reject/revert to a running
// session's ledger. Conflicts — a stale seq, a decision on an already
// decided suggestion, a session that just closed — answer 409 so clients
// re-read and retry deliberately rather than racing.
func (s *Server) handleSuggestionDecision(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, ledger, ok := s.queue.sessionOf(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", id)
		return
	}
	_ = job
	if ledger == nil {
		writeError(w, http.StatusConflict, "job %q has no live validation session", id)
		return
	}
	sid, err := strconv.Atoi(r.PathValue("sid"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "suggestion id must be an integer, got %q", r.PathValue("sid"))
		return
	}
	var dec suggestionDecision
	d := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	d.DisallowUnknownFields()
	if err := d.Decode(&dec); err != nil {
		writeError(w, http.StatusBadRequest, "malformed decision: %v", err)
		return
	}
	var sg repair.Suggestion
	switch dec.Action {
	case "accept":
		sg, err = ledger.Accept(sid, dec.By, dec.Seq)
	case "reject":
		if dec.ActualValue == nil {
			writeError(w, http.StatusBadRequest, "reject needs actual_value (the true source value)")
			return
		}
		sg, err = ledger.Reject(sid, *dec.ActualValue, dec.By, dec.Seq)
	case "revert":
		sg, err = ledger.Revert(sid, dec.By, dec.Seq)
	default:
		writeError(w, http.StatusBadRequest, "unknown action %q (want accept, reject or revert)", dec.Action)
		return
	}
	switch {
	case errors.Is(err, repair.ErrNotFound):
		writeError(w, http.StatusNotFound, "%v", err)
		return
	case errors.Is(err, repair.ErrSeqConflict), errors.Is(err, repair.ErrState), errors.Is(err, repair.ErrClosed):
		writeError(w, http.StatusConflict, "%v", err)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if s.logger != nil {
		s.logger.Info("suggestion decided", "job_id", id,
			"suggestion", sg.ID, "action", dec.Action, "state", string(sg.State))
	}
	writeJSON(w, http.StatusOK, sg)
}

// handleWorkbench serves the embedded single-page operator workbench: a
// zero-dependency HTML view over the suggestions API for working a job's
// queue from a browser.
func (s *Server) handleWorkbench(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.queue.Get(id); !ok {
		writeError(w, http.StatusNotFound, "no job %q", id)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte(workbenchHTML))
}

// workbenchHTML is the embedded operator workbench. It derives the job ID
// from its own URL, polls the suggestions endpoint, and posts decisions
// with the seq each row was rendered from, so stale tabs get a visible
// conflict instead of silently overwriting fresher decisions.
const workbenchHTML = `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>DART repair workbench</title>
<style>
body { font-family: ui-monospace, SFMono-Regular, Menlo, monospace; margin: 2rem; background: #fafafa; color: #222; }
h1 { font-size: 1.2rem; }
table { border-collapse: collapse; width: 100%; background: #fff; }
th, td { border: 1px solid #ddd; padding: 0.4rem 0.6rem; text-align: left; font-size: 0.85rem; }
th { background: #f0f0f0; }
tr.proposed { background: #fffbe6; }
tr.accepted { background: #eaffea; }
tr.rejected { background: #ffecec; }
tr.reverted, tr.superseded { color: #888; }
button { margin-right: 0.3rem; }
#status { margin: 0.6rem 0; color: #555; }
input.actual { width: 6rem; }
</style>
</head>
<body>
<h1>DART repair workbench <span id="job"></span></h1>
<div id="status">loading&hellip;</div>
<table>
<thead><tr><th>id</th><th>cell</th><th>old</th><th>new</th><th>occ</th><th>conf</th><th>state</th><th>decided by</th><th>evidence</th><th>actions</th></tr></thead>
<tbody id="rows"></tbody>
</table>
<script>
"use strict";
const jobID = window.location.pathname.split("/")[3];
document.getElementById("job").textContent = jobID;
const base = "/v1/jobs/" + jobID + "/suggestions";
async function decide(id, seq, action, actual) {
  const body = { action: action, seq: seq };
  if (action === "reject") body.actual_value = parseFloat(actual);
  const resp = await fetch(base + "/" + id, { method: "POST",
    headers: { "Content-Type": "application/json" }, body: JSON.stringify(body) });
  if (!resp.ok) {
    const err = await resp.json().catch(() => ({}));
    document.getElementById("status").textContent = "error: " + (err.error || resp.status);
  }
  refresh();
}
function cell(s) { return s.relation + "[" + s.tuple + "]." + s.attr; }
function render(data) {
  document.getElementById("status").textContent =
    (data.live ? "session live" : "session finished") + " — " + data.open + " open of " + data.count;
  const rows = document.getElementById("rows");
  rows.textContent = "";
  for (const s of data.suggestions) {
    const tr = document.createElement("tr");
    tr.className = s.state;
    const actions = document.createElement("td");
    if (data.live && s.state === "proposed") {
      const acc = document.createElement("button");
      acc.textContent = "accept";
      acc.onclick = () => decide(s.id, s.seq, "accept");
      const actual = document.createElement("input");
      actual.className = "actual";
      actual.placeholder = "actual";
      actual.value = s.old;
      const rej = document.createElement("button");
      rej.textContent = "reject";
      rej.onclick = () => decide(s.id, s.seq, "reject", actual.value);
      actions.append(acc, rej, actual);
    } else if (data.live && s.state === "accepted") {
      const rev = document.createElement("button");
      rev.textContent = "revert";
      rev.onclick = () => decide(s.id, s.seq, "revert");
      actions.append(rev);
    }
    for (const v of [s.id, cell(s), s.old, s.new, s.occurrences,
                     s.confidence.toFixed(3), s.state, s.decided_by || "",
                     (s.evidence || []).join("; ")]) {
      const td = document.createElement("td");
      td.textContent = v;
      tr.append(td);
    }
    tr.append(actions);
    rows.append(tr);
  }
}
async function refresh() {
  try {
    const resp = await fetch(base);
    if (resp.ok) render(await resp.json());
  } catch (e) {
    document.getElementById("status").textContent = "fetch failed: " + e;
  }
}
refresh();
// Prefer push over poll: tail the job's live event stream and re-fetch on
// every ledger or job-state change. When the stream is unavailable (bus
// disabled, proxy strips SSE, old browser) fall back to 2s polling.
function poll() { setInterval(refresh, 2000); }
if (window.EventSource) {
  const es = new EventSource("/v1/jobs/" + jobID + "/events?kind=ledger,job");
  es.addEventListener("ledger", refresh);
  es.addEventListener("job", refresh);
  es.onerror = () => { es.close(); poll(); };
} else {
  poll();
}
</script>
</body>
</html>
`
