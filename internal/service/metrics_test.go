package service

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dart/internal/repair"
)

// TestHistogramBucketsStayCumulative is the regression test for the
// exposition format after the per-bucket storage change: observe stores each
// observation in exactly one bucket, yet the written le-series must be
// cumulative (monotone non-decreasing, ending at the total count), exactly
// what Prometheus's histogram_quantile expects.
func TestHistogramBucketsStayCumulative(t *testing.T) {
	h := newHistogram()
	obsv := []float64{0.0001, 0.0005, 0.0007, 0.004, 0.004, 3, 999}
	for _, v := range obsv {
		h.observe(v)
	}

	// Internal storage is per-bucket: the sum over all slots is the count.
	var stored uint64
	for _, c := range h.counts {
		stored += c
	}
	if stored != uint64(len(obsv)) {
		t.Fatalf("per-bucket counts sum to %d, want %d (one slot per observation)", stored, len(obsv))
	}
	// An observation equal to an upper bound lands in that bucket (le
	// semantics), and an overflow lands in the +Inf slot.
	if h.counts[0] != 2 { // 0.0001 and 0.0005 <= 0.0005
		t.Errorf("bucket le=0.0005 stored %d, want 2", h.counts[0])
	}
	if h.counts[len(histBuckets)] != 1 { // 999 > 60
		t.Errorf("+Inf overflow stored %d, want 1", h.counts[len(histBuckets)])
	}

	var sb strings.Builder
	h.write(&sb, "x_seconds", "")
	var prev uint64
	var lines int
	for _, line := range strings.Split(sb.String(), "\n") {
		if !strings.HasPrefix(line, "x_seconds_bucket") {
			continue
		}
		lines++
		var cum uint64
		if _, err := fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%d", &cum); err != nil {
			t.Fatalf("unparseable bucket line %q: %v", line, err)
		}
		if cum < prev {
			t.Errorf("bucket series not cumulative: %q after %d", line, prev)
		}
		prev = cum
	}
	if lines != len(histBuckets)+1 {
		t.Fatalf("wrote %d bucket lines, want %d (+Inf included)", lines, len(histBuckets)+1)
	}
	if prev != uint64(len(obsv)) {
		t.Errorf("+Inf bucket is %d, want the total count %d", prev, len(obsv))
	}
}

// TestMetricsGoldenExposition pins the full /metrics output for a registry
// with deterministic runtime hooks: ordering, label escaping, and every
// family this PR added (build info, uptime, runtime gauges, queue wait) are
// all covered. Regenerate with UPDATE_GOLDEN=1 go test -run
// TestMetricsGoldenExposition ./internal/service.
var updateGolden = os.Getenv("UPDATE_GOLDEN") != ""

func TestMetricsGoldenExposition(t *testing.T) {
	m := NewMetrics()
	base := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	m.start = base
	m.now = func() time.Time { return base.Add(90 * time.Second) }
	m.goroutines = func() int { return 12 }
	m.heapBytes = func() uint64 { return 4 << 20 }

	m.JobSubmitted()
	m.JobSubmitted()
	m.JobFinished(StateSucceeded, 250*time.Millisecond, nil)
	m.JobFinished(StateFailed, 2*time.Second, nil)
	m.Retry()
	m.QueueWait(3 * time.Millisecond)
	m.QueueWait(40 * time.Millisecond)
	m.ObserveStage(`odd"stage`, 10*time.Millisecond) // label escaping
	m.ObserveStage("solver", 100*time.Millisecond)
	m.ObserveStage("prepare", 5*time.Millisecond)
	m.ObserveStage("resolve", 7*time.Millisecond)
	m.Components(3, 1)
	m.BBNodes(17)
	m.SpecRejected()
	m.CacheHit()
	m.CacheMiss()
	m.RepairEvent(repair.Event{Kind: repair.KindProposed}) // not a decision: no counter, no latency
	m.RepairEvent(repair.Event{Kind: repair.KindAccepted,
		Suggestion: repair.Suggestion{ProposedAt: 0, DecidedAt: int64(1200 * time.Millisecond)}})
	m.RepairEvent(repair.Event{Kind: repair.KindRejected,
		Suggestion: repair.Suggestion{ProposedAt: 0, DecidedAt: int64(30 * time.Millisecond)}})
	m.RepairEvent(repair.Event{Kind: repair.KindReverted})
	m.RepairEvent(repair.Event{Kind: repair.KindSuperseded})
	m.Bind(func() int { return 4 }, 8, 2)
	m.BindSuggestions(func() int { return 3 })
	m.BindTracer(func() uint64 { return 2 })
	m.BindBus(func() map[string]uint64 { return map[string]uint64{"job": 1, "firehose": 5} })

	var buf bytes.Buffer
	m.WritePrometheus(&buf)

	golden := filepath.Join("testdata", "metrics.golden")
	if updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (set UPDATE_GOLDEN=1 to generate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition drifted from %s (set UPDATE_GOLDEN=1 to regenerate)\ngot:\n%s", golden, buf.String())
	}
}

// TestQueueWaitHistogramFedOncePerJob drives one retrying job through a pool
// and checks the queue-wait histogram saw exactly one observation even
// though setRunning fired once per attempt.
func TestQueueWaitHistogramFedOncePerJob(t *testing.T) {
	attempts := 0
	q, p, m := startPool(t, 1, func(p *Pool) { p.Backoff = time.Millisecond },
		func(_ context.Context, _ JobSpec) (*ResultJSON, error) {
			attempts++
			if attempts < 3 {
				return nil, Transient(fmt.Errorf("flaky"))
			}
			return &ResultJSON{}, nil
		})
	if _, err := q.Submit(JobSpec{Document: "x"}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := p.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.queueWait.count != 1 {
		t.Fatalf("queue-wait observations = %d after 3 attempts, want 1", m.queueWait.count)
	}
}
