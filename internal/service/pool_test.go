package service

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// startPool builds and starts a pool over a fresh queue with a test runner.
func startPool(t *testing.T, workers int, cfg func(*Pool), run Runner) (*Queue, *Pool, *Metrics) {
	t.Helper()
	q := NewQueue(256)
	m := NewMetrics()
	p := &Pool{Queue: q, Workers: workers, Run: run, Metrics: m}
	if cfg != nil {
		cfg(p)
	}
	p.Start()
	return q, p, m
}

// waitTerminal polls until the identified job reaches a terminal state.
func waitTerminal(t *testing.T, q *Queue, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		v, ok := q.Get(id)
		if !ok {
			t.Fatalf("job %s disappeared", id)
		}
		if v.State.Terminal() {
			return v
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return JobView{}
}

// TestPoolRunsJobs drives a handful of jobs through a trivial runner.
func TestPoolRunsJobs(t *testing.T) {
	q, p, _ := startPool(t, 4, nil, func(ctx context.Context, spec JobSpec) (*ResultJSON, error) {
		return &ResultJSON{}, nil
	})
	defer p.Shutdown(context.Background())
	var ids []string
	for i := 0; i < 20; i++ {
		v, err := q.Submit(JobSpec{Document: "x"})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, v.ID)
	}
	for _, id := range ids {
		v := waitTerminal(t, q, id)
		if v.State != StateSucceeded || v.Attempts != 1 {
			t.Errorf("job %s: state=%s attempts=%d", id, v.State, v.Attempts)
		}
	}
}

// TestPoolDeadlineCancelsSlowJob submits a deliberately slow job with a
// short per-job deadline: the worker must not hang, and the job must end
// deadline_exceeded with a "deadline exceeded" error.
func TestPoolDeadlineCancelsSlowJob(t *testing.T) {
	q, p, _ := startPool(t, 1, nil, func(ctx context.Context, spec JobSpec) (*ResultJSON, error) {
		if spec.Scenario == "slow" {
			<-ctx.Done() // a slow solve: blocks until cancelled
			return nil, ctx.Err()
		}
		return &ResultJSON{}, nil
	})
	defer p.Shutdown(context.Background())
	v, err := q.Submit(JobSpec{Document: "x", Scenario: "slow", TimeoutMS: 40})
	if err != nil {
		t.Fatal(err)
	}
	got := waitTerminal(t, q, v.ID)
	if got.State != StateDeadlineExceeded {
		t.Fatalf("state = %s, want %s", got.State, StateDeadlineExceeded)
	}
	if !strings.Contains(got.Error, "deadline exceeded") {
		t.Errorf("error = %q, want deadline exceeded", got.Error)
	}
	// The worker must be free again: a fast job completes.
	v2, err := q.Submit(JobSpec{Document: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if got := waitTerminal(t, q, v2.ID); got.State != StateSucceeded {
		t.Errorf("second job state = %s, want succeeded (worker must not hang)", got.State)
	}
}

// TestPoolRetriesTransientFailures checks both recovery after transient
// failures and exhaustion of the attempt budget.
func TestPoolRetriesTransientFailures(t *testing.T) {
	var calls atomic.Int64
	q, p, m := startPool(t, 1, func(p *Pool) {
		p.MaxAttempts = 3
		p.Backoff = time.Millisecond
	}, func(ctx context.Context, spec JobSpec) (*ResultJSON, error) {
		if calls.Add(1) < 3 {
			return nil, Transient(errors.New("solver hiccup"))
		}
		return &ResultJSON{}, nil
	})
	defer p.Shutdown(context.Background())
	v, err := q.Submit(JobSpec{Document: "x"})
	if err != nil {
		t.Fatal(err)
	}
	got := waitTerminal(t, q, v.ID)
	if got.State != StateSucceeded || got.Attempts != 3 {
		t.Errorf("state=%s attempts=%d, want succeeded after 3", got.State, got.Attempts)
	}
	if _, fin := m.Snapshot(); fin[StateSucceeded] != 1 {
		t.Errorf("metrics finished = %v", fin)
	}
}

// TestPoolRetryExhaustion: a permanently transient failure fails after
// MaxAttempts runs and counts MaxAttempts-1 retries.
func TestPoolRetryExhaustion(t *testing.T) {
	var calls atomic.Int64
	q, p, _ := startPool(t, 1, func(p *Pool) {
		p.MaxAttempts = 2
		p.Backoff = time.Millisecond
	}, func(ctx context.Context, spec JobSpec) (*ResultJSON, error) {
		calls.Add(1)
		return nil, Transient(errors.New("always down"))
	})
	defer p.Shutdown(context.Background())
	v, err := q.Submit(JobSpec{Document: "x"})
	if err != nil {
		t.Fatal(err)
	}
	got := waitTerminal(t, q, v.ID)
	if got.State != StateFailed || got.Attempts != 2 || calls.Load() != 2 {
		t.Errorf("state=%s attempts=%d calls=%d, want failed/2/2", got.State, got.Attempts, calls.Load())
	}
	if !strings.Contains(got.Error, "always down") {
		t.Errorf("error = %q", got.Error)
	}
}

// TestPoolPermanentErrorNotRetried: unmarked errors fail on the first run.
func TestPoolPermanentErrorNotRetried(t *testing.T) {
	var calls atomic.Int64
	q, p, _ := startPool(t, 1, nil, func(ctx context.Context, spec JobSpec) (*ResultJSON, error) {
		calls.Add(1)
		return nil, errors.New("bad metadata")
	})
	defer p.Shutdown(context.Background())
	v, err := q.Submit(JobSpec{Document: "x"})
	if err != nil {
		t.Fatal(err)
	}
	got := waitTerminal(t, q, v.ID)
	if got.State != StateFailed || calls.Load() != 1 {
		t.Errorf("state=%s calls=%d, want failed after 1", got.State, calls.Load())
	}
}

// TestPoolGracefulDrain: shutdown finishes queued and in-flight jobs,
// rejects new submissions, and returns once workers exit.
func TestPoolGracefulDrain(t *testing.T) {
	var done atomic.Int64
	q, p, _ := startPool(t, 2, nil, func(ctx context.Context, spec JobSpec) (*ResultJSON, error) {
		if !sleepCtx(ctx, 10*time.Millisecond) {
			return nil, ctx.Err()
		}
		done.Add(1)
		return &ResultJSON{}, nil
	})
	const n = 12
	var ids []string
	for i := 0; i < n; i++ {
		v, err := q.Submit(JobSpec{Document: "x"})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, v.ID)
	}
	if err := p.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if done.Load() != n {
		t.Errorf("completed = %d, want %d (drain must finish the backlog)", done.Load(), n)
	}
	for _, id := range ids {
		if v, _ := q.Get(id); v.State != StateSucceeded {
			t.Errorf("job %s state = %s after drain", id, v.State)
		}
	}
	if _, err := q.Submit(JobSpec{Document: "x"}); !errors.Is(err, ErrDraining) {
		t.Errorf("submit after drain = %v, want ErrDraining", err)
	}
}

// TestPoolForcedShutdown: an expired drain context cancels in-flight jobs
// instead of hanging.
func TestPoolForcedShutdown(t *testing.T) {
	q, p, _ := startPool(t, 1, nil, func(ctx context.Context, spec JobSpec) (*ResultJSON, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	})
	v, err := q.Submit(JobSpec{Document: "x", TimeoutMS: 60_000})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := p.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("shutdown = %v, want deadline exceeded", err)
	}
	got, _ := q.Get(v.ID)
	if !got.State.Terminal() {
		t.Errorf("in-flight job state = %s, want terminal after forced shutdown", got.State)
	}
}

// TestQueueFull: submissions beyond capacity fail with ErrQueueFull.
func TestQueueFull(t *testing.T) {
	q := NewQueue(2)
	for i := 0; i < 2; i++ {
		if _, err := q.Submit(JobSpec{Document: "x"}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := q.Submit(JobSpec{Document: "x"}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
}
