package service

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"strings"
	"sync"
	"time"

	"dart"
	"dart/internal/core"
	"dart/internal/metadata"
	"dart/internal/obs"
	"dart/internal/scenario"
)

// Runner processes one job spec to a wire result. The default is
// PipelineRunner; tests inject slow or flaky runners.
type Runner func(ctx context.Context, spec JobSpec) (*ResultJSON, error)

// transientError marks an error worth retrying (a failure the pool may
// recover from by re-running the attempt).
type transientError struct{ err error }

func (e *transientError) Error() string { return e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

// Transient wraps err so the pool retries it (with backoff, up to the
// attempt bound).
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// IsTransient reports whether err is marked retryable.
func IsTransient(err error) bool {
	var te *transientError
	return errors.As(err, &te)
}

// Pool runs jobs from a Queue over a fixed set of workers. Each job gets a
// per-job context deadline, bounded retries with exponential backoff for
// transient failures, and a terminal state recorded in the queue's store.
type Pool struct {
	// Queue supplies the jobs (required).
	Queue *Queue
	// Workers is the worker count; 0 scales with GOMAXPROCS.
	Workers int
	// Run processes one job (default PipelineRunner(Metrics)).
	Run Runner
	// RunJob, when non-nil, overrides Run with a job-aware processor; the
	// server routes validation-session jobs through it (they need the Job
	// handle to publish their suggestion ledger). Plain jobs still flow
	// through Run.
	RunJob func(ctx context.Context, job *Job) (*ResultJSON, error)
	// Metrics receives counters and latencies (optional).
	Metrics *Metrics
	// JobTimeout is the default per-job deadline (default 60s); a job's
	// TimeoutMS overrides it.
	JobTimeout time.Duration
	// MaxAttempts bounds runs per job including the first (default 3).
	MaxAttempts int
	// Backoff is the first retry delay, doubled per attempt (default 50ms).
	Backoff time.Duration
	// Tracer, when non-nil, records one trace per job: a root "job" span
	// with every pipeline stage, solved component, and validation iteration
	// beneath it. Nil disables tracing at zero cost.
	Tracer *obs.Tracer
	// Bus, when non-nil (and with a Tracer configured), binds each job's
	// trace to the live telemetry bus, so solver search progress, component
	// aggregation, and span completions stream while the job runs.
	Bus *obs.Bus
	// Logger, when non-nil, emits one structured line per finished job,
	// keyed by job and trace IDs.
	Logger *slog.Logger

	wg      sync.WaitGroup
	ctx     context.Context
	cancel  context.CancelFunc
	started bool
}

// workerCount resolves the configured worker count.
func (p *Pool) workerCount() int {
	if p.Workers > 0 {
		return p.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Start launches the workers. It must be called once.
func (p *Pool) Start() {
	if p.started {
		panic("service: pool started twice")
	}
	p.started = true
	if p.Run == nil {
		p.Run = PipelineRunner(p.Metrics)
	}
	p.ctx, p.cancel = context.WithCancel(context.Background())
	for i := 0; i < p.workerCount(); i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			//dartvet:allow ctxloop -- worker drains until the queue channel closes; per-job cancellation lives in runJob
			for job := range p.Queue.ch {
				p.runJob(job)
			}
		}()
	}
}

// Shutdown drains gracefully: the queue stops accepting submissions,
// workers finish the backlog, and Shutdown returns when they exit. If ctx
// expires first, in-flight job contexts are cancelled and Shutdown returns
// ctx.Err() once the workers wind down.
func (p *Pool) Shutdown(ctx context.Context) error {
	p.Queue.Close()
	done := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		p.cancel()
		// Workers are gone; flush the job store so a clean drain never
		// depends on replaying unsynced frames after the next boot.
		if err := p.Queue.SyncStore(); err != nil {
			return fmt.Errorf("service: syncing job store on drain: %w", err)
		}
		return nil
	case <-ctx.Done():
		p.cancel() // abort in-flight solves
		<-done
		if err := p.Queue.SyncStore(); err != nil {
			return errors.Join(ctx.Err(), err)
		}
		return ctx.Err()
	}
}

// jobTimeout resolves the deadline for one spec.
func (p *Pool) jobTimeout(spec JobSpec) time.Duration {
	if spec.TimeoutMS > 0 {
		return time.Duration(spec.TimeoutMS) * time.Millisecond
	}
	if p.JobTimeout > 0 {
		return p.JobTimeout
	}
	return 60 * time.Second
}

// runJob drives one job to a terminal state.
func (p *Pool) runJob(job *Job) {
	ctx, cancel := context.WithTimeout(p.ctx, p.jobTimeout(job.Spec))
	defer cancel()

	// Root span of the job's trace: every pipeline stage, component solve,
	// and validation iteration nests beneath it via the job context.
	span := p.Tracer.StartTrace("job")
	if span != nil {
		span.SetStr("job_id", job.ID)
		span.SetStr("scenario", job.Spec.Scenario)
		span.SetStr("solver", job.Spec.Solver)
		span.Live(p.Bus, job.ID)
		ctx = obs.ContextWithSpan(ctx, span)
		p.Queue.setTrace(job, span.TraceID())
	}

	maxAttempts := p.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = 3
	}
	backoff := p.Backoff
	if backoff <= 0 {
		backoff = 50 * time.Millisecond
	}

	start := time.Now()
	var res *ResultJSON
	var err error
	attempts := 0
	for attempt := 1; ; attempt++ {
		attempts = attempt
		if wait, first := p.Queue.setRunning(job); first && p.Metrics != nil {
			p.Metrics.QueueWait(wait)
		}
		if p.RunJob != nil {
			res, err = p.RunJob(ctx, job)
		} else {
			res, err = p.Run(ctx, job.Spec)
		}
		if err == nil || !IsTransient(err) || attempt >= maxAttempts || ctx.Err() != nil {
			break
		}
		if p.Metrics != nil {
			p.Metrics.Retry()
		}
		span.Event("retry")
		if !sleepCtx(ctx, backoff) {
			break
		}
		backoff *= 2
	}

	state := StateSucceeded
	switch {
	case err == nil:
	case errors.Is(err, context.DeadlineExceeded), ctx.Err() == context.DeadlineExceeded:
		state = StateDeadlineExceeded
	case errors.Is(err, context.Canceled) && p.ctx.Err() != nil:
		// Forced shutdown cancelled the in-flight solve.
		state = StateFailed
		err = fmt.Errorf("service: shutdown aborted job: %w", err)
	default:
		state = StateFailed
	}
	p.Queue.finish(job, state, res, err)
	if p.Metrics != nil {
		p.Metrics.JobFinished(state, time.Since(start), res)
	}
	span.SetStr("state", string(state))
	span.SetInt("attempts", attempts)
	if err != nil {
		span.SetStr("error", err.Error())
	}
	span.End()
	if span != nil && p.Tracer != nil {
		// Audit frame correlating the durable history with trace output.
		if tr, ok := p.Tracer.Trace(span.TraceID()); ok {
			p.Queue.noteSpansFlushed(job, span.TraceID(), len(tr.Spans))
		}
	}
	if p.Logger != nil {
		l := p.Logger.With("job_id", job.ID, "state", string(state),
			"attempts", attempts, "duration_ms", time.Since(start).Milliseconds())
		if span != nil {
			l = l.With("trace_id", span.TraceID())
		}
		if err != nil {
			l.Error("job finished", "error", err.Error())
		} else {
			l.Info("job finished")
		}
	}
}

// sleepCtx sleeps for d or until ctx is done; it reports whether the full
// sleep elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// ResolveMetadata turns a job spec into parsed designer metadata: inline
// metadata wins, otherwise the named built-in scenario.
func ResolveMetadata(spec JobSpec) (*metadata.Metadata, error) {
	if spec.Metadata != "" {
		return metadata.Parse(spec.Metadata)
	}
	switch spec.Scenario {
	case "", "cashbudget":
		return scenario.CashBudget()
	case "catalog":
		return scenario.Catalog()
	case "balancesheet":
		return scenario.BalanceSheet()
	default:
		return nil, fmt.Errorf("service: unknown scenario %q (want cashbudget, catalog or balancesheet)", spec.Scenario)
	}
}

// resolveSolver maps a spec's solver name to an implementation.
// solverWorkers is the branch-and-bound worker budget handed to MILP
// solvers (0 = GOMAXPROCS); the other solvers ignore it.
func resolveSolver(name string, solverWorkers int) (core.Solver, error) {
	switch name {
	case "", "milp":
		return &core.MILPSolver{Formulation: core.FormulationReduced, SolverWorkers: solverWorkers}, nil
	case "milp-literal":
		return &core.MILPSolver{Formulation: core.FormulationLiteral, SolverWorkers: solverWorkers}, nil
	case "cardsearch":
		return &core.CardinalitySearchSolver{}, nil
	case "greedy-aggregate":
		return &core.GreedyAggregateSolver{}, nil
	case "greedy-local":
		return &core.GreedyLocalSolver{}, nil
	default:
		return nil, fmt.Errorf("service: unknown solver %q", name)
	}
}

// PipelineRunner returns the production Runner: it resolves the spec's
// metadata and solver, runs Acquire→Repair under the job context, and
// encodes the result for the wire. Solver iteration-limit failures are
// marked transient — centralizing the retry classification here lets later
// PRs escalate node budgets per attempt; everything else — parse errors,
// infeasibility, context expiry — is permanent.
func PipelineRunner(m *Metrics) Runner { return PipelineRunnerWorkers(m, 0) }

// PipelineRunnerWorkers is PipelineRunner with a default branch-and-bound
// worker budget, applied when a job spec does not set solver_workers.
func PipelineRunnerWorkers(m *Metrics, solverWorkers int) Runner {
	return func(ctx context.Context, spec JobSpec) (*ResultJSON, error) {
		md, err := ResolveMetadata(spec)
		if err != nil {
			return nil, err
		}
		workers := spec.SolverWorkers
		if workers <= 0 {
			workers = solverWorkers
		}
		solver, err := resolveSolver(spec.Solver, workers)
		if err != nil {
			return nil, err
		}
		p := &dart.Pipeline{Metadata: md, Solver: solver}
		if m != nil {
			p.Observer = m
		}
		res, err := p.ProcessContext(ctx, spec.Document)
		if err != nil {
			if isIterLimit(err) {
				return nil, Transient(err)
			}
			return nil, err
		}
		if m != nil {
			m.Components(res.ComponentsSolved, res.ComponentsReused)
			m.BBNodes(res.SolverNodes)
		}
		return EncodeResult(res), nil
	}
}

// isIterLimit detects the solver's node/iteration budget exhaustion, the
// one failure mode re-running can plausibly fix.
func isIterLimit(err error) bool {
	return strings.Contains(err.Error(), "iteration-limit")
}
