package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"dart/internal/store"
)

// recoveryResult is the deterministic payload the crash-recovery runners
// produce; its JSON must round-trip byte-identically through the store.
func recoveryResult() *ResultJSON {
	return &ResultJSON{
		Repair: &RepairJSON{Card: 1, Updates: []UpdateJSON{{
			Item: ItemJSON{Relation: "CashFlow", Tuple: 3, Attr: "Value"},
			Old:  ValueJSON{Domain: "Z", Value: 250},
			New:  ValueJSON{Domain: "Z", Value: 220},
		}}},
	}
}

// waitJob polls one job until pred holds.
func waitJob(t *testing.T, q *Queue, id string, pred func(JobView) bool) JobView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if v, ok := q.Get(id); ok && pred(v) {
			return v
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached the expected state", id)
	return JobView{}
}

// TestCrashRecovery is the kill -9 simulation, table-driven over both
// store backends: a completed job, a running job, and a queued job go
// through an abrupt store detach (no appends from then on, exactly the
// history a dead process leaves). After "restart" the completed job's
// JobView must replay byte-identical without re-solving, and the other
// two must re-run to completion.
func TestCrashRecovery(t *testing.T) {
	mem := store.NewMem()
	backends := []struct {
		name string
		open func(t *testing.T, dir string) store.JobStore
	}{
		{"wal", func(t *testing.T, dir string) store.JobStore {
			w, err := store.OpenWAL(dir, store.WALOptions{SyncEveryAppend: true})
			if err != nil {
				t.Fatal(err)
			}
			return w
		}},
		// The in-memory backend survives "restarts" as the same object; the
		// detach still freezes its history at the crash point.
		{"mem", func(t *testing.T, dir string) store.JobStore { return mem }},
	}

	for _, bk := range backends {
		t.Run(bk.name, func(t *testing.T) {
			dir := t.TempDir()

			// --- incarnation 1: run one job to completion, crash mid-flight ---
			st1 := bk.open(t, dir)
			gate := make(chan struct{})
			runner1 := func(ctx context.Context, spec JobSpec) (*ResultJSON, error) {
				if spec.Document == "block" {
					select {
					case <-gate:
					case <-ctx.Done():
						return nil, ctx.Err()
					}
				}
				return recoveryResult(), nil
			}
			// SnapshotEvery 4 puts the completed job into a snapshot and the
			// in-flight ones into the log, covering both replay sources.
			srv1, err := New(Config{Workers: 1, Runner: runner1, Store: st1, StoreSnapshotEvery: 4})
			if err != nil {
				t.Fatal(err)
			}
			srv1.Start()

			a, err := srv1.Queue().Submit(JobSpec{Document: "fast-a", Scenario: "cashbudget"})
			if err != nil {
				t.Fatal(err)
			}
			waitJob(t, srv1.Queue(), a.ID, func(v JobView) bool { return v.State.Terminal() })
			preView, _ := srv1.Queue().Get(a.ID)
			preJSON, err := json.Marshal(preView)
			if err != nil {
				t.Fatal(err)
			}
			if preView.State != StateSucceeded || preView.Result == nil {
				t.Fatalf("job a = %s (result %v), want succeeded with result", preView.State, preView.Result)
			}

			b, err := srv1.Queue().Submit(JobSpec{Document: "block"})
			if err != nil {
				t.Fatal(err)
			}
			waitJob(t, srv1.Queue(), b.ID, func(v JobView) bool { return v.State == StateRunning })
			c, err := srv1.Queue().Submit(JobSpec{Document: "fast-c"})
			if err != nil {
				t.Fatal(err)
			}

			// Crash: the store stops hearing from the process mid-job. The
			// blocked runner is then released so the goroutines wind down,
			// but nothing after the detach reaches the store.
			srv1.Queue().detachStore()
			close(gate)
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			if err := srv1.Shutdown(ctx); err != nil {
				t.Fatal(err)
			}
			cancel()
			if w, ok := st1.(*store.WAL); ok {
				w.Close()
			}

			// --- incarnation 2: replay, re-run the interrupted jobs ---
			st2 := bk.open(t, dir)
			var mu sync.Mutex
			runs := map[string]int{}
			runner2 := func(ctx context.Context, spec JobSpec) (*ResultJSON, error) {
				mu.Lock()
				runs[spec.Document]++
				mu.Unlock()
				return recoveryResult(), nil
			}
			srv2, err := New(Config{Workers: 1, Runner: runner2, Store: st2, StoreSnapshotEvery: 4})
			if err != nil {
				t.Fatal(err)
			}
			rs := srv2.Recovery()
			if rs == nil {
				t.Fatal("no recovery stats with a configured store")
			}
			if rs.Completed != 1 || rs.Requeued != 2 || rs.Dropped != 0 || rs.Orphans != 0 {
				t.Fatalf("recovery = %+v, want 1 completed, 2 requeued, 0 dropped/orphans", rs)
			}

			// The completed job replays byte-identically, before any worker runs.
			postView, ok := srv2.Queue().Get(a.ID)
			if !ok {
				t.Fatalf("job %s lost across restart", a.ID)
			}
			postJSON, err := json.Marshal(postView)
			if err != nil {
				t.Fatal(err)
			}
			if string(preJSON) != string(postJSON) {
				t.Errorf("job %s changed across restart:\n pre  %s\n post %s", a.ID, preJSON, postJSON)
			}

			srv2.Start()
			bv := waitJob(t, srv2.Queue(), b.ID, func(v JobView) bool { return v.State.Terminal() })
			cv := waitJob(t, srv2.Queue(), c.ID, func(v JobView) bool { return v.State.Terminal() })
			if bv.State != StateSucceeded || cv.State != StateSucceeded {
				t.Fatalf("recovered jobs finished %s/%s, want succeeded", bv.State, cv.State)
			}
			mu.Lock()
			if runs["fast-a"] != 0 {
				t.Errorf("completed job re-solved %d times after restart", runs["fast-a"])
			}
			if runs["block"] != 1 || runs["fast-c"] != 1 {
				t.Errorf("recovered jobs ran %d/%d times, want 1/1", runs["block"], runs["fast-c"])
			}
			mu.Unlock()
			ctx, cancel = context.WithTimeout(context.Background(), 10*time.Second)
			if err := srv2.Shutdown(ctx); err != nil {
				t.Fatal(err)
			}
			cancel()
			if w, ok := st2.(*store.WAL); ok {
				w.Close()
			}

			// --- incarnation 3: everything is terminal, nothing re-runs ---
			st3 := bk.open(t, dir)
			runner3 := func(ctx context.Context, spec JobSpec) (*ResultJSON, error) {
				t.Errorf("runner invoked for %q after full recovery", spec.Document)
				return recoveryResult(), nil
			}
			srv3, err := New(Config{Workers: 1, Runner: runner3, Store: st3, StoreSnapshotEvery: 4})
			if err != nil {
				t.Fatal(err)
			}
			if rs := srv3.Recovery(); rs.Completed != 3 || rs.Requeued != 0 {
				t.Fatalf("third boot recovery = %+v, want 3 completed, 0 requeued", rs)
			}
			for _, id := range []string{a.ID, b.ID, c.ID} {
				v, ok := srv3.Queue().Get(id)
				if !ok || v.Result == nil {
					t.Errorf("job %s missing its result after final restart (found %v)", id, ok)
				}
			}
			srv3.Start()
			ctx, cancel = context.WithTimeout(context.Background(), 10*time.Second)
			if err := srv3.Shutdown(ctx); err != nil {
				t.Fatal(err)
			}
			cancel()
			if w, ok := st3.(*store.WAL); ok {
				w.Close()
			}
		})
	}
}

// TestRecoveredIDsDoNotCollide: submissions after a restart must continue
// the ID sequence, not reuse IDs of replayed jobs.
func TestRecoveredIDsDoNotCollide(t *testing.T) {
	dir := t.TempDir()
	st, err := store.OpenWAL(dir, store.WALOptions{SyncEveryAppend: true})
	if err != nil {
		t.Fatal(err)
	}
	q := NewQueue(8)
	q.store = st
	v1, err := q.Submit(JobSpec{Document: "one"})
	if err != nil {
		t.Fatal(err)
	}
	st.Close()

	st2, err := store.OpenWAL(dir, store.WALOptions{SyncEveryAppend: true})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	q2, _, err := RecoverQueue(8, st2, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := q2.Submit(JobSpec{Document: "two"})
	if err != nil {
		t.Fatal(err)
	}
	if v2.ID == v1.ID {
		t.Fatalf("post-restart submission reused ID %s", v1.ID)
	}
	if v2.ID != "job-000002" {
		t.Fatalf("post-restart submission got %s, want job-000002", v2.ID)
	}
}

// fakeStore counts interface calls; the drain test uses it to pin the
// shutdown-flush contract without touching disk.
type fakeStore struct {
	mu      sync.Mutex
	seq     uint64
	appends int
	syncs   int
}

func (f *fakeStore) Append(rec *store.Record) (uint64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.seq++
	f.appends++
	return f.seq, nil
}

func (f *fakeStore) Replay(fn func(*store.Record) error) ([]byte, error) { return nil, nil }
func (f *fakeStore) WriteSnapshot(state []byte) error                    { return nil }

func (f *fakeStore) AppendsSinceSnapshot() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.appends
}

func (f *fakeStore) Sync() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.syncs++
	return nil
}

func (f *fakeStore) counts() (appends, syncs int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.appends, f.syncs
}

func (f *fakeStore) Stats() store.Stats { return store.Stats{} }
func (f *fakeStore) Close() error       { return nil }

// TestDrainSyncsStore: a graceful drain must flush the store after the
// workers exit, on both the clean path and the deadline-expired path.
func TestDrainSyncsStore(t *testing.T) {
	t.Run("clean", func(t *testing.T) {
		fs := &fakeStore{}
		runner := func(ctx context.Context, spec JobSpec) (*ResultJSON, error) {
			return recoveryResult(), nil
		}
		srv, err := New(Config{Workers: 1, Runner: runner, Store: fs, StoreSnapshotEvery: -1})
		if err != nil {
			t.Fatal(err)
		}
		srv.Start()
		v, err := srv.Queue().Submit(JobSpec{Document: "d"})
		if err != nil {
			t.Fatal(err)
		}
		waitJob(t, srv.Queue(), v.ID, func(v JobView) bool { return v.State.Terminal() })
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Fatal(err)
		}
		appends, syncs := fs.counts()
		if appends == 0 {
			t.Error("no records reached the store")
		}
		if syncs == 0 {
			t.Error("graceful drain did not sync the store")
		}
	})

	t.Run("forced", func(t *testing.T) {
		fs := &fakeStore{}
		runner := func(ctx context.Context, spec JobSpec) (*ResultJSON, error) {
			<-ctx.Done() // holds the worker until the forced drain cancels it
			return nil, ctx.Err()
		}
		srv, err := New(Config{Workers: 1, Runner: runner, Store: fs, StoreSnapshotEvery: -1, MaxAttempts: 1})
		if err != nil {
			t.Fatal(err)
		}
		srv.Start()
		if _, err := srv.Queue().Submit(JobSpec{Document: "d"}); err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
		defer cancel()
		if err := srv.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("forced drain returned %v, want deadline exceeded", err)
		}
		if _, syncs := fs.counts(); syncs == 0 {
			t.Error("forced drain did not sync the store")
		}
	})
}

// TestListPagination covers the GET /v1/jobs query surface: page walking
// via cursors, the state filter, and the rejection paths.
func TestListPagination(t *testing.T) {
	runner := func(ctx context.Context, spec JobSpec) (*ResultJSON, error) {
		if spec.Document == "fail" {
			return nil, errors.New("boom")
		}
		return recoveryResult(), nil
	}
	srv, ts := newTestServer(t, Config{Workers: 2, Runner: runner, MaxAttempts: 1})

	ids := make([]string, 0, 5)
	for i := 0; i < 5; i++ {
		doc := fmt.Sprintf("doc-%d", i)
		if i == 3 {
			doc = "fail"
		}
		v, err := srv.Queue().Submit(JobSpec{Document: doc})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, v.ID)
	}
	for _, id := range ids {
		waitJob(t, srv.Queue(), id, func(v JobView) bool { return v.State.Terminal() })
	}

	type listResp struct {
		Jobs       []JobView `json:"jobs"`
		Count      int       `json:"count"`
		NextCursor string    `json:"next_cursor"`
	}
	list := func(t *testing.T, query string, wantStatus int) listResp {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/jobs" + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != wantStatus {
			t.Fatalf("GET /v1/jobs%s = %d, want %d", query, resp.StatusCode, wantStatus)
		}
		var lr listResp
		if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
			t.Fatal(err)
		}
		return lr
	}
	jobIDs := func(lr listResp) []string {
		out := make([]string, 0, len(lr.Jobs))
		for _, j := range lr.Jobs {
			out = append(out, j.ID)
		}
		return out
	}

	// No parameters: the whole backlog, unchanged backward-compat shape.
	all := list(t, "", http.StatusOK)
	if all.Count != 5 || len(all.Jobs) != 5 || all.NextCursor != "" {
		t.Fatalf("unpaginated list = count %d, %d jobs, cursor %q", all.Count, len(all.Jobs), all.NextCursor)
	}

	// Cursor walk in pages of two: 2 + 2 + 1, submission order preserved.
	var walked []string
	query := "?limit=2"
	for pages := 0; ; pages++ {
		if pages > 3 {
			t.Fatal("cursor walk did not terminate")
		}
		lr := list(t, query, http.StatusOK)
		walked = append(walked, jobIDs(lr)...)
		if lr.NextCursor == "" {
			break
		}
		if lr.NextCursor != lr.Jobs[len(lr.Jobs)-1].ID {
			t.Fatalf("next_cursor %q is not the page's last job %q", lr.NextCursor, lr.Jobs[len(lr.Jobs)-1].ID)
		}
		query = "?limit=2&cursor=" + lr.NextCursor
	}
	if fmt.Sprint(walked) != fmt.Sprint(ids) {
		t.Fatalf("cursor walk visited %v, want %v", walked, ids)
	}

	// State filter: exactly the one failed job.
	failed := list(t, "?state=failed", http.StatusOK)
	if len(failed.Jobs) != 1 || failed.Jobs[0].ID != ids[3] {
		t.Fatalf("state=failed returned %v, want [%s]", jobIDs(failed), ids[3])
	}
	succeeded := list(t, "?state=succeeded&limit=3", http.StatusOK)
	if len(succeeded.Jobs) != 3 || succeeded.NextCursor == "" {
		t.Fatalf("state=succeeded&limit=3 returned %d jobs, cursor %q", len(succeeded.Jobs), succeeded.NextCursor)
	}
	rest := list(t, "?state=succeeded&cursor="+succeeded.NextCursor, http.StatusOK)
	if len(rest.Jobs) != 1 || rest.NextCursor != "" {
		t.Fatalf("succeeded tail = %d jobs, cursor %q, want 1 job and no cursor", len(rest.Jobs), rest.NextCursor)
	}

	// Rejection paths.
	list(t, "?state=bogus", http.StatusBadRequest)
	list(t, "?limit=x", http.StatusBadRequest)
	list(t, "?limit=-1", http.StatusBadRequest)
	list(t, "?cursor=job-999999", http.StatusBadRequest)
}
