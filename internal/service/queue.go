package service

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"dart/internal/obs"
	"dart/internal/repair"
	"dart/internal/store"
)

// JobState is the lifecycle state of one submitted job.
type JobState string

const (
	// StateQueued means the job is waiting for a worker.
	StateQueued JobState = "queued"
	// StateRunning means a worker is processing the job.
	StateRunning JobState = "running"
	// StateSucceeded means the job finished with a result.
	StateSucceeded JobState = "succeeded"
	// StateFailed means the job exhausted its attempts with an error.
	StateFailed JobState = "failed"
	// StateDeadlineExceeded means the per-job deadline cancelled the run.
	StateDeadlineExceeded JobState = "deadline_exceeded"
)

// JobStates lists every state in lifecycle order; metrics iterate it so
// zero-valued counters are still exposed.
var JobStates = []JobState{StateQueued, StateRunning, StateSucceeded, StateFailed, StateDeadlineExceeded}

// JobSpec is the submission payload of POST /v1/jobs.
type JobSpec struct {
	// Document is the input document (HTML or scan text; required).
	Document string `json:"document"`
	// Scenario names a built-in metadata bundle (cashbudget, catalog,
	// balancesheet). Ignored when Metadata is set.
	Scenario string `json:"scenario,omitempty"`
	// Metadata is an inline designer metadata file.
	Metadata string `json:"metadata,omitempty"`
	// Solver selects the repair solver (default milp).
	Solver string `json:"solver,omitempty"`
	// SolverWorkers overrides the server's branch-and-bound worker budget
	// for this job (MILP solvers only; 0 = server default). Worker counts
	// never change the computed repair.
	SolverWorkers int `json:"solver_workers,omitempty"`
	// TimeoutMS overrides the server's per-job deadline, in milliseconds.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Validate runs the job as an interactive validation session: the
	// computed repair becomes a suggestion queue the operator works through
	// GET/POST /v1/jobs/{id}/suggestions (or the workbench page), and the
	// job only finishes once every suggestion is decided.
	Validate bool `json:"validate,omitempty"`
}

// Job is one unit of acquisition-and-repair work. All fields are guarded by
// the owning Queue's mutex; read them through views.
type Job struct {
	ID          string
	Spec        JobSpec
	State       JobState
	Attempts    int
	SubmittedAt time.Time
	StartedAt   time.Time
	FinishedAt  time.Time
	Error       string
	Result      *ResultJSON
	// TraceID links the job to its trace (empty when tracing is off).
	TraceID string
	// Ledger is the live suggestion ledger of a running validation session
	// (nil otherwise); suggestion handlers decide against it.
	Ledger *repair.Ledger
	// RepairEvents is the job's durable suggestion-event history, replayed
	// from the store on recovery and appended to as the session runs. A
	// resumed session restores its ledger from this slice.
	RepairEvents []repair.Event
}

// JobView is a consistent JSON snapshot of one job.
type JobView struct {
	ID          string      `json:"id"`
	State       JobState    `json:"state"`
	Scenario    string      `json:"scenario,omitempty"`
	Solver      string      `json:"solver,omitempty"`
	Attempts    int         `json:"attempts"`
	SubmittedAt time.Time   `json:"submitted_at"`
	StartedAt   *time.Time  `json:"started_at,omitempty"`
	FinishedAt  *time.Time  `json:"finished_at,omitempty"`
	Error       string      `json:"error,omitempty"`
	Result      *ResultJSON `json:"result,omitempty"`
	TraceID     string      `json:"trace_id,omitempty"`
}

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == StateSucceeded || s == StateFailed || s == StateDeadlineExceeded
}

var (
	// ErrDraining rejects submissions after shutdown began (HTTP 503).
	ErrDraining = errors.New("service: server is draining")
	// ErrQueueFull rejects submissions exceeding the queue bound (HTTP 503).
	ErrQueueFull = errors.New("service: job queue is full")
)

// Queue is the bounded job queue plus the job store: submissions append to
// a buffered channel workers consume, and every job (pending or finished)
// stays in the store for polling. Closing the queue rejects further
// submissions but leaves already-queued jobs for the drain to finish.
type Queue struct {
	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string
	ch     chan *Job
	closed bool
	nextID int
	// store, when non-nil, receives one record per queue mutation; all
	// appends happen under mu, so the store sees a serialized history.
	store store.JobStore
	// snapshotEvery bounds log growth: a snapshot absorbs the log after
	// this many appends (0 disables automatic snapshots).
	snapshotEvery int
	// onStoreError observes non-fatal persistence failures; it runs under
	// mu and must not call back into the queue.
	onStoreError func(error)
	// bus, when non-nil, receives one job-state event per lifecycle
	// transition plus queue-depth events. Publishes happen under mu on
	// purpose: the bus-visible event order then matches the transition
	// order exactly, and Bus.Publish never blocks (slow subscribers drop),
	// so holding mu across it is safe.
	bus *obs.Bus
}

// NewQueue creates a queue holding at most capacity pending jobs
// (default 1024).
func NewQueue(capacity int) *Queue {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Queue{
		jobs: make(map[string]*Job),
		ch:   make(chan *Job, capacity),
	}
}

// Submit registers a new queued job. It fails with ErrDraining after Close
// and ErrQueueFull when the pending bound is reached.
func (q *Queue) Submit(spec JobSpec) (JobView, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return JobView{}, ErrDraining
	}
	// Capacity check before the durable append: every sender holds mu and
	// workers only drain, so len < cap guarantees the later send cannot
	// block. The job must be durable before it is visible anywhere.
	if len(q.ch) == cap(q.ch) {
		return JobView{}, ErrQueueFull
	}
	q.nextID++
	job := &Job{
		ID:          fmt.Sprintf("job-%06d", q.nextID),
		Spec:        spec,
		State:       StateQueued,
		SubmittedAt: time.Now(),
	}
	if err := q.appendSubmitLocked(job); err != nil {
		q.nextID--
		return JobView{}, fmt.Errorf("service: persisting submission: %w", err)
	}
	q.ch <- job
	q.jobs[job.ID] = job
	q.order = append(q.order, job.ID)
	q.publishJobLocked(job)
	return viewLocked(job, false), nil
}

// Get returns a snapshot of the identified job, including its result.
func (q *Queue) Get(id string) (JobView, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	job, ok := q.jobs[id]
	if !ok {
		return JobView{}, false
	}
	return viewLocked(job, true), true
}

// List returns snapshots of every job in submission order, without result
// payloads (poll GET /v1/jobs/{id} for those).
func (q *Queue) List() []JobView {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]JobView, 0, len(q.order))
	for _, id := range q.order {
		out = append(out, viewLocked(q.jobs[id], false))
	}
	return out
}

// ErrBadCursor rejects a pagination cursor naming an unknown job.
var ErrBadCursor = errors.New("service: unknown pagination cursor")

// ListPage returns up to limit job snapshots in submission order,
// starting after the job named by cursor ("" starts from the beginning)
// and keeping only jobs in the given state ("" keeps all). next is the
// cursor for the following page, or "" when this page reaches the end.
// A limit of 0 or less returns every matching job. State filtering is a
// point-in-time view: a job may change state between pages.
func (q *Queue) ListPage(state JobState, cursor string, limit int) (page []JobView, next string, err error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	start := 0
	if cursor != "" {
		if _, ok := q.jobs[cursor]; !ok {
			return nil, "", ErrBadCursor
		}
		for i, id := range q.order {
			if id == cursor {
				start = i + 1
				break
			}
		}
	}
	page = []JobView{}
	for i := start; i < len(q.order); i++ {
		job := q.jobs[q.order[i]]
		if state != "" && job.State != state {
			continue
		}
		if limit > 0 && len(page) == limit {
			// One more match exists beyond the full page, so the page's
			// last job becomes the resume point.
			next = page[len(page)-1].ID
			break
		}
		page = append(page, viewLocked(job, false))
	}
	return page, next, nil
}

// Depth returns the number of jobs waiting for a worker; len on a
// channel is an atomic runtime query lockcheck exempts.
func (q *Queue) Depth() int { return len(q.ch) }

// Accepting reports whether a submission right now could be admitted:
// the queue is open and has pending capacity left. It feeds /readyz.
func (q *Queue) Accepting() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return !q.closed && len(q.ch) < cap(q.ch)
}

// publishJobLocked emits one job lifecycle event plus the current queue
// depth; the caller holds q.mu.
func (q *Queue) publishJobLocked(job *Job) {
	if q.bus == nil {
		return
	}
	q.bus.Publish(obs.Event{
		Kind:    obs.KindJob,
		Name:    "state",
		JobID:   job.ID,
		TraceID: job.TraceID,
		State:   string(job.State),
		Done:    job.Attempts,
	})
	q.bus.Publish(obs.Event{Kind: obs.KindQueue, Name: "depth", Depth: len(q.ch)})
}

// CountByState tallies jobs per state.
func (q *Queue) CountByState() map[JobState]int {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make(map[JobState]int, len(JobStates))
	for _, job := range q.jobs {
		out[job.State]++
	}
	return out
}

// Close stops accepting submissions and closes the worker channel so the
// pool drains the backlog and exits. Idempotent.
func (q *Queue) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	q.closed = true
	close(q.ch)
}

// setRunning transitions a job to running (one more attempt started). It
// returns how long the job sat in the queue and whether this is the job's
// first attempt (the pair feeds the queue-wait histogram exactly once per
// job).
func (q *Queue) setRunning(job *Job) (wait time.Duration, first bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	now := time.Now()
	if job.State == StateQueued && job.StartedAt.IsZero() {
		job.StartedAt = now
		wait, first = job.StartedAt.Sub(job.SubmittedAt), true
	}
	job.State = StateRunning
	job.Attempts++
	q.appendTransitionLocked(job, now)
	q.publishJobLocked(job)
	return wait, first
}

// setTrace records the job's trace ID so API clients can fetch its span
// tree once the job finishes.
func (q *Queue) setTrace(job *Job, traceID string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	job.TraceID = traceID
}

// setLedger publishes (or, with nil, retires) a validation session's live
// ledger so suggestion handlers can decide against it.
func (q *Queue) setLedger(job *Job, l *repair.Ledger) {
	q.mu.Lock()
	defer q.mu.Unlock()
	job.Ledger = l
}

// sessionOf returns the job plus its live ledger (nil when no validation
// session is running). Callers use the ledger after the lock is released:
// the ledger has its own mutex and a retired ledger fails decisions with
// ErrClosed, so no queue state is touched through it.
func (q *Queue) sessionOf(id string) (job *Job, ledger *repair.Ledger, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	job, ok = q.jobs[id]
	if !ok {
		return nil, nil, false
	}
	return job, job.Ledger, true
}

// repairEventsOf snapshots a job's durable suggestion-event history.
func (q *Queue) repairEventsOf(job *Job) []repair.Event {
	q.mu.Lock()
	defer q.mu.Unlock()
	return append([]repair.Event(nil), job.RepairEvents...)
}

// OpenSuggestions totals the open suggestions across every live validation
// session; metrics expose it as dart_suggestions_open. Ledger open counts
// are atomics, so sampling them under q.mu cannot contend with a ledger's
// own lock.
func (q *Queue) OpenSuggestions() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	total := 0
	for _, job := range q.jobs {
		if job.Ledger != nil {
			total += job.Ledger.OpenCount()
		}
	}
	return total
}

// finish records a job's terminal state. The result record is appended
// before the terminal transition: a crash between the two leaves the job
// non-terminal so recovery re-runs it instead of trusting partial state.
func (q *Queue) finish(job *Job, state JobState, result *ResultJSON, err error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	job.State = state
	job.FinishedAt = time.Now()
	job.Result = result
	if err != nil {
		job.Error = err.Error()
	}
	q.appendResultLocked(job)
	q.appendTransitionLocked(job, job.FinishedAt)
	q.publishJobLocked(job)
}

// detachStore severs the queue from its store without syncing, leaving
// the on-disk state exactly as a process crash would. Test-only: the
// crash-recovery test uses it to simulate kill -9 in-process.
func (q *Queue) detachStore() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.store = nil
}

// viewLocked snapshots a job; the caller holds q.mu.
func viewLocked(job *Job, includeResult bool) JobView {
	v := JobView{
		ID:          job.ID,
		State:       job.State,
		Scenario:    job.Spec.Scenario,
		Solver:      job.Spec.Solver,
		Attempts:    job.Attempts,
		SubmittedAt: job.SubmittedAt,
		Error:       job.Error,
		TraceID:     job.TraceID,
	}
	if !job.StartedAt.IsZero() {
		t := job.StartedAt
		v.StartedAt = &t
	}
	if !job.FinishedAt.IsZero() {
		t := job.FinishedAt
		v.FinishedAt = &t
	}
	if includeResult {
		v.Result = job.Result
	}
	return v
}
