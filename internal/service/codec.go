// Package service turns the one-shot dart.Pipeline into a long-running,
// concurrent document-repair server: a bounded job queue fans submitted
// documents out over a worker pool, each job runs Acquire→Repair under a
// per-job deadline with bounded retries, and an HTTP API exposes
// submission, polling, listing, health, and Prometheus-format metrics.
// Everything is stdlib-only, matching the repository's zero-dependency
// constraint.
package service

import (
	"fmt"
	"math"

	"dart"
	"dart/internal/relational"
	"dart/internal/repair"
)

// ValueJSON is the wire form of one typed relational value: the domain tag
// plus a JSON number (Z, R) or string (S).
type ValueJSON struct {
	Domain string `json:"domain"`
	Value  any    `json:"value"`
}

// encodeValue converts a relational value to its wire form.
func encodeValue(v relational.Value) ValueJSON {
	switch v.Kind() {
	case relational.DomainInt:
		return ValueJSON{Domain: "Z", Value: v.AsInt()}
	case relational.DomainReal:
		return ValueJSON{Domain: "R", Value: v.AsFloat()}
	default:
		return ValueJSON{Domain: "S", Value: v.AsString()}
	}
}

// decodeValue parses a wire value back into a typed relational value.
func decodeValue(v ValueJSON) (relational.Value, error) {
	dom, err := relational.ParseDomain(v.Domain)
	if err != nil {
		return relational.Value{}, err
	}
	switch dom {
	case relational.DomainString:
		s, ok := v.Value.(string)
		if !ok {
			return relational.Value{}, fmt.Errorf("service: S value is %T, want string", v.Value)
		}
		return relational.String(s), nil
	default:
		f, err := asFloat(v.Value)
		if err != nil {
			return relational.Value{}, err
		}
		return relational.FromFloat(f, dom)
	}
}

// asFloat accepts the numeric types encoding/json produces.
func asFloat(v any) (float64, error) {
	switch n := v.(type) {
	case float64:
		return n, nil
	case int64:
		return float64(n), nil
	case int:
		return float64(n), nil
	default:
		return 0, fmt.Errorf("service: numeric value is %T", v)
	}
}

// AttributeJSON is one attribute of a relational scheme.
type AttributeJSON struct {
	Name   string `json:"name"`
	Domain string `json:"domain"`
}

// RelationJSON is the wire form of one relation: its scheme plus the tuples
// in insertion order. TupleIDs carries the relation-local identifiers the
// repair machinery addresses, parallel to Tuples.
type RelationJSON struct {
	Name       string          `json:"name"`
	Attributes []AttributeJSON `json:"attributes"`
	TupleIDs   []int           `json:"tuple_ids,omitempty"`
	Tuples     [][]ValueJSON   `json:"tuples,omitempty"`
}

// DatabaseJSON is the wire form of a database instance. Measures lists the
// designated measure attributes as "Relation.Attribute".
type DatabaseJSON struct {
	Relations []RelationJSON `json:"relations"`
	Measures  []string       `json:"measures,omitempty"`
}

// EncodeDatabase converts a database instance to its wire form.
func EncodeDatabase(db *relational.Database) *DatabaseJSON {
	if db == nil {
		return nil
	}
	out := &DatabaseJSON{}
	for _, name := range db.RelationNames() {
		rel := db.Relation(name)
		rj := RelationJSON{Name: name}
		for _, a := range rel.Schema().Attributes() {
			rj.Attributes = append(rj.Attributes, AttributeJSON{Name: a.Name, Domain: a.Domain.String()})
		}
		for _, t := range rel.Tuples() {
			row := make([]ValueJSON, 0, rel.Schema().Arity())
			for i := 0; i < rel.Schema().Arity(); i++ {
				row = append(row, encodeValue(t.At(i)))
			}
			rj.TupleIDs = append(rj.TupleIDs, t.ID())
			rj.Tuples = append(rj.Tuples, row)
		}
		out.Relations = append(out.Relations, rj)
	}
	for _, m := range db.Measures() {
		out.Measures = append(out.Measures, m.Relation+"."+m.Attribute)
	}
	return out
}

// DecodeDatabase reconstructs a database instance from its wire form. The
// tuple identifiers of the wire form must match insertion order (they
// always do for databases this package encoded).
func DecodeDatabase(dj *DatabaseJSON) (*relational.Database, error) {
	if dj == nil {
		return nil, nil
	}
	db := relational.NewDatabase()
	for _, rj := range dj.Relations {
		attrs := make([]relational.Attribute, 0, len(rj.Attributes))
		for _, a := range rj.Attributes {
			dom, err := relational.ParseDomain(a.Domain)
			if err != nil {
				return nil, err
			}
			attrs = append(attrs, relational.Attribute{Name: a.Name, Domain: dom})
		}
		schema, err := relational.NewSchema(rj.Name, attrs...)
		if err != nil {
			return nil, err
		}
		rel, err := db.AddRelation(schema)
		if err != nil {
			return nil, err
		}
		for ti, row := range rj.Tuples {
			vals := make([]relational.Value, 0, len(row))
			for _, vj := range row {
				v, err := decodeValue(vj)
				if err != nil {
					return nil, fmt.Errorf("service: relation %s tuple %d: %w", rj.Name, ti, err)
				}
				vals = append(vals, v)
			}
			t, err := rel.Insert(vals...)
			if err != nil {
				return nil, err
			}
			if ti < len(rj.TupleIDs) && rj.TupleIDs[ti] != t.ID() {
				return nil, fmt.Errorf("service: relation %s tuple %d has wire id %d, insertion assigned %d",
					rj.Name, ti, rj.TupleIDs[ti], t.ID())
			}
		}
	}
	for _, m := range dj.Measures {
		i := lastDot(m)
		if i < 0 {
			return nil, fmt.Errorf("service: bad measure ref %q (want Relation.Attribute)", m)
		}
		if err := db.DesignateMeasure(m[:i], m[i+1:]); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// lastDot returns the index of the final '.' in s, or -1.
func lastDot(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '.' {
			return i
		}
	}
	return -1
}

// ItemJSON addresses one database value on the wire.
type ItemJSON struct {
	Relation string `json:"relation"`
	Tuple    int    `json:"tuple"`
	Attr     string `json:"attr"`
}

// UpdateJSON is one atomic value update on the wire.
type UpdateJSON struct {
	Item ItemJSON  `json:"item"`
	Old  ValueJSON `json:"old"`
	New  ValueJSON `json:"new"`
}

// RepairJSON is the wire form of a repair.
type RepairJSON struct {
	Card    int          `json:"card"`
	Updates []UpdateJSON `json:"updates,omitempty"`
}

// EncodeRepair converts a repair to its wire form.
func EncodeRepair(r *dart.Repair) *RepairJSON {
	if r == nil {
		return nil
	}
	out := &RepairJSON{Card: r.Card()}
	for _, u := range r.Updates {
		out.Updates = append(out.Updates, UpdateJSON{
			Item: ItemJSON{Relation: u.Item.Relation, Tuple: u.Item.TupleID, Attr: u.Item.Attr},
			Old:  encodeValue(u.Old),
			New:  encodeValue(u.New),
		})
	}
	return out
}

// DecodeRepair reconstructs a repair from its wire form.
func DecodeRepair(rj *RepairJSON) (*dart.Repair, error) {
	if rj == nil {
		return nil, nil
	}
	out := &dart.Repair{}
	for _, uj := range rj.Updates {
		oldV, err := decodeValue(uj.Old)
		if err != nil {
			return nil, err
		}
		newV, err := decodeValue(uj.New)
		if err != nil {
			return nil, err
		}
		out.Updates = append(out.Updates, dart.Update{
			Item: dart.Item{Relation: uj.Item.Relation, TupleID: uj.Item.Tuple, Attr: uj.Item.Attr},
			Old:  oldV,
			New:  newV,
		})
	}
	return out, nil
}

// ViolationJSON is one unsatisfied ground constraint on the wire: the
// rendered ground constraint plus its left-hand-side value.
type ViolationJSON struct {
	Ground string  `json:"ground"`
	LHS    float64 `json:"lhs"`
}

// EncodeViolations converts violations to their wire form. NaN and ±Inf
// left-hand sides (which encoding/json rejects) are clamped to 0 with the
// ground text left authoritative.
func EncodeViolations(vs []dart.Violation) []ViolationJSON {
	out := make([]ViolationJSON, 0, len(vs))
	for _, v := range vs {
		lhs := v.LHS
		if math.IsNaN(lhs) || math.IsInf(lhs, 0) {
			lhs = 0
		}
		out = append(out, ViolationJSON{Ground: v.Ground.String(), LHS: lhs})
	}
	return out
}

// SkippedJSON is one unmatched document row on the wire.
type SkippedJSON struct {
	Table     int     `json:"table"`
	Row       int     `json:"row"`
	BestScore float64 `json:"best_score"`
	Text      string  `json:"text"`
}

// StringRepairJSON is one wrapper-level dictionary correction on the wire.
type StringRepairJSON struct {
	Table int     `json:"table"`
	Row   int     `json:"row"`
	From  string  `json:"from"`
	To    string  `json:"to"`
	Score float64 `json:"score"`
}

// AcquisitionJSON is the wire form of an acquisition module outcome.
type AcquisitionJSON struct {
	Instances     int                `json:"instances"`
	Consistent    bool               `json:"consistent"`
	SkippedRows   []SkippedJSON      `json:"skipped_rows,omitempty"`
	RowErrors     []string           `json:"row_errors,omitempty"`
	StringRepairs []StringRepairJSON `json:"string_repairs,omitempty"`
	Violations    []ViolationJSON    `json:"violations,omitempty"`
	Database      *DatabaseJSON      `json:"database,omitempty"`
}

// EncodeAcquisition converts an acquisition to its wire form.
func EncodeAcquisition(a *dart.Acquisition) *AcquisitionJSON {
	if a == nil {
		return nil
	}
	out := &AcquisitionJSON{
		Instances:  len(a.Instances),
		Consistent: a.Consistent(),
		Violations: EncodeViolations(a.Violations),
		Database:   EncodeDatabase(a.Database),
	}
	for _, s := range a.SkippedRows {
		out.SkippedRows = append(out.SkippedRows, SkippedJSON{
			Table: s.Table, Row: s.Row, BestScore: s.BestScore, Text: s.Text,
		})
	}
	for _, e := range a.RowErrors {
		out.RowErrors = append(out.RowErrors, e.Error())
	}
	for _, c := range a.StringRepairs {
		out.StringRepairs = append(out.StringRepairs, StringRepairJSON{
			Table: c.Table, Row: c.Row, From: c.From, To: c.To, Score: c.Score,
		})
	}
	return out
}

// ValidationJSON is the wire form of a finished validation session: the
// ledger counters plus every suggestion record with its full who/when
// audit history.
type ValidationJSON struct {
	Iterations   int                 `json:"iterations"`
	Examined     int                 `json:"examined"`
	Accepted     int                 `json:"accepted"`
	Rejected     int                 `json:"rejected"`
	AutoAccepted int                 `json:"auto_accepted"`
	Reverted     int                 `json:"reverted"`
	Superseded   int                 `json:"superseded"`
	Suggestions  []repair.Suggestion `json:"suggestions,omitempty"`
}

// ResultJSON is the wire form of a completed pipeline run.
type ResultJSON struct {
	Acquisition *AcquisitionJSON `json:"acquisition,omitempty"`
	Repair      *RepairJSON      `json:"repair,omitempty"`
	Repaired    *DatabaseJSON    `json:"repaired,omitempty"`
	Validation  *ValidationJSON  `json:"validation,omitempty"`
}

// EncodeResult converts a pipeline result to its wire form.
func EncodeResult(r *dart.Result) *ResultJSON {
	if r == nil {
		return nil
	}
	out := &ResultJSON{
		Acquisition: EncodeAcquisition(r.Acquisition),
		Repair:      EncodeRepair(r.Repair),
		Repaired:    EncodeDatabase(r.Repaired),
	}
	if v := r.Validation; v != nil {
		vj := &ValidationJSON{
			Iterations:   v.Iterations,
			Examined:     v.Examined,
			Accepted:     v.Accepted,
			Rejected:     v.Rejected,
			AutoAccepted: v.AutoAccepted,
			Suggestions:  v.Suggestions,
		}
		if v.Ledger != nil {
			c := v.Ledger.Counters()
			vj.Reverted = c.Reverted
			vj.Superseded = c.Superseded
		}
		out.Validation = vj
	}
	return out
}
