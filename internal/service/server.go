package service

import (
	"context"
	"log/slog"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"dart/internal/obs"
	"dart/internal/store"
)

// Config tunes a Server. The zero value gets sensible defaults: GOMAXPROCS
// workers, a 1024-job queue, a 60s per-job deadline, 3 attempts.
type Config struct {
	// Workers is the worker-pool size (0 = GOMAXPROCS).
	Workers int
	// SolverWorkers is the default branch-and-bound worker budget per job
	// (0 = GOMAXPROCS); a job's solver_workers overrides it. Worker counts
	// never change the computed repair.
	SolverWorkers int
	// QueueCapacity bounds pending jobs (0 = 1024).
	QueueCapacity int
	// JobTimeout is the default per-job deadline (0 = 60s).
	JobTimeout time.Duration
	// MaxAttempts bounds runs per job (0 = 3).
	MaxAttempts int
	// Backoff is the first retry delay (0 = 50ms).
	Backoff time.Duration
	// Runner overrides the job processor (tests; default PipelineRunner).
	Runner Runner
	// ResultCacheSize, when positive, serves repeated submissions of the
	// same (document, metadata, solver) triple from a bounded LRU of that
	// many finished results, with hit/miss counters in /metrics. 0
	// disables caching (every submission runs the pipeline).
	ResultCacheSize int
	// Tracer, when non-nil, records one span tree per job and serves it on
	// GET /v1/jobs/{id}/trace and GET /debug/traces. Nil disables tracing.
	Tracer *obs.Tracer
	// Bus, when non-nil, is the live telemetry bus: job lifecycle,
	// queue-depth, span-completion, ledger and solver search-progress
	// events stream from it over GET /v1/events and
	// GET /v1/jobs/{id}/events, with per-job aggregates on
	// GET /v1/jobs/{id}/progress. Solver and span events additionally
	// require a Tracer — the job's trace is the conduit that carries them
	// onto the bus. Nil disables live events at zero cost.
	Bus *obs.Bus
	// Logger, when non-nil, emits structured request and job logs.
	Logger *slog.Logger
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool
	// Store, when non-nil, persists every job state transition and is
	// replayed at construction: jobs pending or running at crash time are
	// re-enqueued, completed results are served without re-solving. Nil
	// keeps the queue memory-only.
	Store store.JobStore
	// StoreSnapshotEvery bounds log growth: after this many appends a
	// snapshot absorbs and truncates the log (0 = 256, negative disables
	// automatic snapshots). Ignored without Store.
	StoreSnapshotEvery int
}

// Server is the dartd service: queue + pool + metrics behind an HTTP API.
//
//	POST /v1/jobs                        submit a document (202, JobView)
//	GET  /v1/jobs                        list jobs (results omitted)
//	GET  /v1/jobs/{id}                   one job, result included when terminal
//	GET  /v1/jobs/{id}/trace             the job's finished span tree (tracing only)
//	GET  /v1/jobs/{id}/events            SSE: the job's events, replay then live (bus only)
//	GET  /v1/jobs/{id}/progress          live per-job progress aggregate (bus only)
//	GET  /v1/jobs/{id}/suggestions       suggestion records of a validation session
//	POST /v1/jobs/{id}/suggestions/{sid} accept/reject/revert one suggestion
//	GET  /v1/jobs/{id}/workbench         embedded operator workbench page
//	GET  /v1/events                      SSE firehose with kind filters (bus only)
//	GET  /debug/traces                   the N slowest recent traces (tracing only)
//	GET  /debug/pprof/                   runtime profiles (Config.EnablePprof only)
//	GET  /healthz                        liveness; 503 while draining
//	GET  /readyz                         readiness: replay done, pool started, queue accepting
//	GET  /metrics                        Prometheus text format
type Server struct {
	queue         *Queue
	pool          *Pool
	metrics       *Metrics
	tracer        *obs.Tracer
	bus           *obs.Bus
	logger        *slog.Logger
	enablePprof   bool
	mux           *http.ServeMux
	draining      atomic.Bool
	started       atomic.Bool
	recovery      *RecoveryStats
	solverWorkers int
}

// New wires a stopped server; call Start before serving. With a
// configured store it replays the durable history first, so New fails if
// the store cannot be read.
func New(cfg Config) (*Server, error) {
	s := &Server{
		metrics:       NewMetrics(),
		tracer:        cfg.Tracer,
		bus:           cfg.Bus,
		logger:        cfg.Logger,
		enablePprof:   cfg.EnablePprof,
		mux:           http.NewServeMux(),
		solverWorkers: cfg.SolverWorkers,
	}
	if cfg.Store == nil {
		s.queue = NewQueue(cfg.QueueCapacity)
	} else {
		snapEvery := cfg.StoreSnapshotEvery
		if snapEvery == 0 {
			snapEvery = 256
		}
		onStoreError := func(err error) {
			s.metrics.StoreError()
			if s.logger != nil {
				s.logger.Error("job store append failed", "error", err.Error())
			}
		}
		span := cfg.Tracer.StartTrace("store.replay")
		queue, rs, err := RecoverQueue(cfg.QueueCapacity, cfg.Store, snapEvery, onStoreError)
		if err != nil {
			if span != nil {
				span.SetStr("error", err.Error())
				span.End()
			}
			return nil, err
		}
		span.SetInt("records", rs.Records)
		span.SetInt("snapshot_jobs", rs.SnapshotJobs)
		span.SetInt("requeued", rs.Requeued)
		span.SetInt("completed", rs.Completed)
		span.End()
		s.queue = queue
		s.recovery = rs
		s.metrics.BindStore(cfg.Store.Stats)
		s.metrics.Recovered(rs.Requeued, rs.Completed, rs.Dropped)
		if cfg.Logger != nil {
			cfg.Logger.Info("job store recovered",
				"records", rs.Records, "snapshot_jobs", rs.SnapshotJobs,
				"requeued", rs.Requeued, "completed", rs.Completed,
				"dropped", rs.Dropped, "orphans", rs.Orphans,
				"duration_ms", rs.Duration.Milliseconds())
		}
	}
	run := cfg.Runner
	if run == nil {
		run = PipelineRunnerWorkers(s.metrics, cfg.SolverWorkers)
	}
	if cfg.ResultCacheSize > 0 {
		run = CachingRunner(run, cfg.ResultCacheSize, s.metrics)
	}
	// The queue publishes job-state and depth events; the pool binds each
	// job's trace to the bus so solver/component/span events flow too.
	s.queue.bus = cfg.Bus
	s.pool = &Pool{
		Queue:   s.queue,
		Workers: cfg.Workers,
		Run:     run,
		Bus:     cfg.Bus,
		// Validation-session jobs need the Job handle (to publish their
		// ledger) and must bypass the result cache: their outcome depends
		// on live operator decisions, not the spec alone.
		RunJob: func(ctx context.Context, job *Job) (*ResultJSON, error) {
			if job.Spec.Validate {
				return s.runValidation(ctx, job)
			}
			return run(ctx, job.Spec)
		},
		Metrics:     s.metrics,
		JobTimeout:  cfg.JobTimeout,
		MaxAttempts: cfg.MaxAttempts,
		Backoff:     cfg.Backoff,
		Tracer:      cfg.Tracer,
		Logger:      cfg.Logger,
	}
	bb := cfg.SolverWorkers
	if bb <= 0 {
		bb = runtime.GOMAXPROCS(0)
	}
	s.metrics.Bind(s.queue.Depth, s.pool.workerCount(), bb)
	s.metrics.BindSuggestions(s.queue.OpenSuggestions)
	if cfg.Tracer != nil {
		s.metrics.BindTracer(cfg.Tracer.DroppedSpans)
	}
	if cfg.Bus != nil {
		s.metrics.BindBus(cfg.Bus.DroppedByName)
	}
	s.routes()
	return s, nil
}

// Start launches the worker pool.
func (s *Server) Start() {
	s.pool.Start()
	s.started.Store(true)
}

// Ready reports readiness: construction finished (store replay included),
// the pool is started, shutdown has not begun, and the queue can admit a
// submission.
func (s *Server) Ready() bool {
	return s.started.Load() && !s.draining.Load() && s.queue.Accepting()
}

// Handler returns the HTTP API.
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics exposes the registry (benchmarks and tests).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Queue exposes the job store (benchmarks and tests).
func (s *Server) Queue() *Queue { return s.queue }

// Tracer exposes the span recorder, nil when tracing is off (tests).
func (s *Server) Tracer() *obs.Tracer { return s.tracer }

// Bus exposes the live telemetry bus, nil when live events are off (tests).
func (s *Server) Bus() *obs.Bus { return s.bus }

// Recovery reports the boot-time store replay, nil without a store.
func (s *Server) Recovery() *RecoveryStats { return s.recovery }

// Shutdown drains gracefully: new submissions get 503 immediately, queued
// and in-flight jobs finish, workers exit. If ctx expires first, in-flight
// solves are cancelled and ctx.Err() is returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	return s.pool.Shutdown(ctx)
}

// Draining reports whether shutdown has begun.
func (s *Server) Draining() bool { return s.draining.Load() }
