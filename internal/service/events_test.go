package service

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"dart/internal/obs"
	"dart/internal/sse"
)

// sseGet opens one SSE stream and fails the test on a non-200 answer.
func sseGet(t *testing.T, url string) (*sse.Reader, func()) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("GET %s: %d %s", url, resp.StatusCode, body)
	}
	return sse.NewReader(resp.Body), func() { resp.Body.Close() }
}

// TestJobEventStreamMidJob is the stream lifecycle test: subscribe while
// the job is running, see the snapshot frame and the replayed submitted →
// running transitions, then the live terminal event, then a clean close.
func TestJobEventStreamMidJob(t *testing.T) {
	started := make(chan string, 1)
	release := make(chan struct{})
	runner := func(ctx context.Context, spec JobSpec) (*ResultJSON, error) {
		select {
		case started <- spec.Scenario:
		default:
		}
		select {
		case <-release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return &ResultJSON{}, nil
	}
	_, ts := newTestServer(t, Config{
		Workers: 1,
		Runner:  runner,
		Bus:     obs.NewBus(obs.BusConfig{}),
	})

	view, resp := postJob(t, ts.URL, JobSpec{Document: "<html></html>"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("job never started")
	}

	// Subscribe mid-job: the submitted and running transitions are already
	// in the replay ring.
	r, closeStream := sseGet(t, ts.URL+"/v1/jobs/"+view.ID+"/events")
	defer closeStream()

	ev, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if ev.Name != "snapshot" {
		t.Fatalf("first frame = %q, want snapshot", ev.Name)
	}
	var snap obs.JobProgress
	if err := json.Unmarshal([]byte(ev.Data), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.JobID != view.ID {
		t.Errorf("snapshot job_id = %q, want %q", snap.JobID, view.ID)
	}

	// Replay: expect job-state events reaching "running" before any live
	// terminal event. Collect states until the terminal one arrives live.
	sawRunning := false
	var states []string
	done := make(chan error, 1)
	go func() {
		for {
			ev, err := r.Next()
			if err != nil {
				done <- err
				return
			}
			if ev.Name != string(obs.KindJob) {
				continue
			}
			var payload obs.Event
			if err := json.Unmarshal([]byte(ev.Data), &payload); err != nil {
				done <- err
				return
			}
			states = append(states, payload.State)
			if payload.State == string(StateRunning) {
				sawRunning = true
				// Only finish the job once the replay is provably consumed.
				close(release)
			}
		}
	}()

	select {
	case err := <-done:
		// The stream must close cleanly (io.EOF) right after the terminal
		// job event — not hang, not error.
		if err != io.EOF {
			t.Fatalf("stream ended with %v, want EOF", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("stream never closed after job completion")
	}
	if !sawRunning {
		t.Fatalf("never saw running state in replay; states = %v", states)
	}
	if last := states[len(states)-1]; last != string(StateSucceeded) {
		t.Fatalf("last streamed state = %q, want %q (all: %v)", last, StateSucceeded, states)
	}

	// A fresh subscription to the now-terminal job replays and closes
	// immediately — no tail, no hang.
	r2, close2 := sseGet(t, ts.URL+"/v1/jobs/"+view.ID+"/events")
	defer close2()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("terminal-job stream did not close")
		}
		if _, err := r2.Next(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
	}
}

// TestFirehoseSolverEvents runs a real traced job and checks the firehose
// replay carries its solver telemetry: at least one solver event, gaps
// within [0,1] and non-increasing per scope, and a terminal "done" frame
// per searched component. This is the same probe the CI smoke makes with
// curl.
func TestFirehoseSolverEvents(t *testing.T) {
	bus := obs.NewBus(obs.BusConfig{})
	_, ts := newTestServer(t, Config{
		Workers: 1,
		Tracer:  obs.New(obs.Config{Capacity: 8}),
		Bus:     bus,
	})
	view, _ := postJob(t, ts.URL, JobSpec{Document: runningExampleErrorHTML(), Scenario: "cashbudget"})
	if done := pollJob(t, ts.URL, view.ID); done.State != StateSucceeded {
		t.Fatalf("job ended %s: %s", done.State, done.Error)
	}

	r, closeStream := sseGet(t, ts.URL+"/v1/events?kind=solver&replay=only")
	defer closeStream()
	solverEvents := 0
	lastGap := map[string]float64{}
	doneScopes := map[string]bool{}
	for {
		ev, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if ev.Name != string(obs.KindSolver) {
			t.Fatalf("kind filter leaked a %q event", ev.Name)
		}
		var payload obs.Event
		if err := json.Unmarshal([]byte(ev.Data), &payload); err != nil {
			t.Fatal(err)
		}
		solverEvents++
		if payload.JobID != view.ID {
			t.Errorf("solver event without job binding: %+v", payload)
		}
		if payload.Gap < 0 || payload.Gap > 1 {
			t.Errorf("gap %v out of [0,1]", payload.Gap)
		}
		if prev, ok := lastGap[payload.Scope]; ok && payload.Gap > prev+1e-12 {
			t.Errorf("scope %s gap increased %v -> %v", payload.Scope, prev, payload.Gap)
		}
		lastGap[payload.Scope] = payload.Gap
		if payload.Name == "done" {
			doneScopes[payload.Scope] = true
		}
	}
	if solverEvents == 0 {
		t.Fatal("firehose replay carried no solver events")
	}
	for scope := range lastGap {
		if !doneScopes[scope] {
			t.Errorf("scope %s never published its done event", scope)
		}
	}

	// The progress aggregate of the finished job: terminal state, all
	// components done, gap settled at 0 (every search proved optimal).
	resp, err := http.Get(ts.URL + "/v1/jobs/" + view.ID + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("progress status = %d", resp.StatusCode)
	}
	var prog obs.JobProgress
	if err := json.NewDecoder(resp.Body).Decode(&prog); err != nil {
		t.Fatal(err)
	}
	if prog.State != string(StateSucceeded) {
		t.Errorf("progress state = %q", prog.State)
	}
	if prog.ComponentsTotal == 0 || prog.ComponentsDone != prog.ComponentsTotal {
		t.Errorf("components %d/%d, want all done and nonzero",
			prog.ComponentsDone, prog.ComponentsTotal)
	}
	if prog.WorstGap != 0 {
		t.Errorf("worst_gap = %v after all searches closed", prog.WorstGap)
	}
	if prog.Nodes == 0 {
		t.Error("progress aggregate saw no solver nodes")
	}
}

// TestEventEndpointErrors pins the failure modes: 501 without a bus, 404
// for unknown jobs, 400 for bad filters.
func TestEventEndpointErrors(t *testing.T) {
	_, plain := newTestServer(t, Config{Workers: 1})
	for _, path := range []string{"/v1/events", "/v1/jobs/nope/events", "/v1/jobs/nope/progress"} {
		resp, err := http.Get(plain.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotImplemented {
			t.Errorf("GET %s without bus = %d, want 501", path, resp.StatusCode)
		}
	}

	_, ts := newTestServer(t, Config{Workers: 1, Bus: obs.NewBus(obs.BusConfig{})})
	cases := map[string]int{
		"/v1/jobs/nope/events":         http.StatusNotFound,
		"/v1/jobs/nope/progress":       http.StatusNotFound,
		"/v1/events?kind=bogus":        http.StatusBadRequest,
		"/v1/events?after_seq=minus-1": http.StatusBadRequest,
	}
	for path, want := range cases {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("GET %s = %d, want %d", path, resp.StatusCode, want)
		}
	}
}

// TestReadyz pins the readiness lifecycle: 503 before Start, 200 while
// serving, 503 again once draining. Liveness (/healthz) stays 200 until
// the drain begins.
func TestReadyz(t *testing.T) {
	srv, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	get := func(path string) (int, map[string]any) {
		t.Helper()
		req := httptest.NewRequest(http.MethodGet, path, nil)
		rec := httptest.NewRecorder()
		srv.Handler().ServeHTTP(rec, req)
		var body map[string]any
		_ = json.Unmarshal(rec.Body.Bytes(), &body)
		return rec.Code, body
	}

	if code, body := get("/readyz"); code != http.StatusServiceUnavailable || body["started"] != false {
		t.Fatalf("pre-start readyz = %d %v, want 503 started=false", code, body)
	}
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Fatalf("pre-start healthz = %d, want 200 (liveness, not readiness)", code)
	}

	srv.Start()
	if code, body := get("/readyz"); code != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("running readyz = %d %v, want 200 ok", code, body)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if code, body := get("/readyz"); code != http.StatusServiceUnavailable || body["draining"] != true {
		t.Fatalf("draining readyz = %d %v, want 503 draining=true", code, body)
	}
	if code, _ := get("/healthz"); code != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz = %d, want 503", code)
	}
}
