package service

import (
	"encoding/json"
	"io"
	"net/http"
	"testing"

	"dart/internal/obs"
)

// collectNames flattens a span tree into a name multiset.
func collectNames(node *obs.SpanNode, into map[string]int) {
	if node == nil {
		return
	}
	into[node.Name]++
	for _, c := range node.Children {
		collectNames(c, into)
	}
}

// TestJobTraceEndpoint runs one real pipeline job with tracing on and
// checks GET /v1/jobs/{id}/trace returns a span tree covering every
// pipeline stage plus at least one solved MILP component.
func TestJobTraceEndpoint(t *testing.T) {
	tracer := obs.New(obs.Config{Capacity: 8})
	_, ts := newTestServer(t, Config{Workers: 1, Tracer: tracer})

	view, _ := postJob(t, ts.URL, JobSpec{Document: runningExampleErrorHTML()})
	done := pollJob(t, ts.URL, view.ID)
	if done.State != StateSucceeded {
		t.Fatalf("job ended %s: %s", done.State, done.Error)
	}
	if done.TraceID == "" {
		t.Fatal("finished job has no trace_id")
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/" + view.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("trace endpoint: %d %s", resp.StatusCode, body)
	}
	var payload struct {
		TraceID string        `json:"trace_id"`
		Spans   int           `json:"spans"`
		Tree    *obs.SpanNode `json:"tree"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		t.Fatal(err)
	}
	if payload.TraceID != done.TraceID {
		t.Errorf("trace endpoint returned trace %s, job points at %s", payload.TraceID, done.TraceID)
	}

	names := map[string]int{}
	collectNames(payload.Tree, names)
	for _, want := range []string{
		"job", "stage.convert", "stage.wrapper", "stage.dbgen", "stage.check",
		"stage.solver", "stage.prepare", "stage.resolve", "repair.component",
	} {
		if names[want] == 0 {
			t.Errorf("span tree misses %q (got %v)", want, names)
		}
	}
	if payload.Tree.Attrs["job_id"] != view.ID {
		t.Errorf("root span job_id = %v, want %s", payload.Tree.Attrs["job_id"], view.ID)
	}
}

// TestDebugTracesEndpoint checks the slowest-traces listing after a couple
// of jobs, plus the disabled-tracing responses.
func TestDebugTracesEndpoint(t *testing.T) {
	tracer := obs.New(obs.Config{Capacity: 8})
	_, ts := newTestServer(t, Config{Workers: 1, Tracer: tracer})
	for i := 0; i < 2; i++ {
		view, _ := postJob(t, ts.URL, JobSpec{Document: runningExampleErrorHTML()})
		pollJob(t, ts.URL, view.ID)
	}

	resp, err := http.Get(ts.URL + "/debug/traces?n=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var payload struct {
		Count  int `json:"count"`
		Traces []struct {
			TraceID    string  `json:"trace_id"`
			JobID      string  `json:"job_id"`
			DurationMS float64 `json:"duration_ms"`
			Spans      int     `json:"spans"`
		} `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		t.Fatal(err)
	}
	if payload.Count != 1 || len(payload.Traces) != 1 {
		t.Fatalf("asked for n=1, got %d traces", len(payload.Traces))
	}
	row := payload.Traces[0]
	if row.TraceID == "" || row.JobID == "" || row.Spans == 0 {
		t.Errorf("summary row incomplete: %+v", row)
	}

	// Bad n is a 400.
	resp400, err := http.Get(ts.URL + "/debug/traces?n=zero")
	if err != nil {
		t.Fatal(err)
	}
	resp400.Body.Close()
	if resp400.StatusCode != http.StatusBadRequest {
		t.Errorf("n=zero: status %d, want 400", resp400.StatusCode)
	}
}

// TestTraceEndpointsWithoutTracer checks both trace endpoints answer 501
// when the server runs without a tracer, and that job views carry no
// trace_id.
func TestTraceEndpointsWithoutTracer(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	view, _ := postJob(t, ts.URL, JobSpec{Document: runningExampleErrorHTML()})
	done := pollJob(t, ts.URL, view.ID)
	if done.TraceID != "" {
		t.Errorf("tracing off, yet job has trace_id %q", done.TraceID)
	}
	for _, path := range []string{"/v1/jobs/" + view.ID + "/trace", "/debug/traces"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotImplemented {
			t.Errorf("GET %s: status %d, want 501", path, resp.StatusCode)
		}
	}
}

// TestPprofGated checks /debug/pprof/ is a 404 by default and serves the
// index when enabled.
func TestPprofGated(t *testing.T) {
	_, tsOff := newTestServer(t, Config{Workers: 1})
	resp, err := http.Get(tsOff.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof off: status %d, want 404", resp.StatusCode)
	}

	_, tsOn := newTestServer(t, Config{Workers: 1, EnablePprof: true})
	resp, err = http.Get(tsOn.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof on: status %d, want 200", resp.StatusCode)
	}
}
