package service

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"time"

	"dart/internal/obs"
	"dart/internal/sse"
)

// This file is the streaming face of the live telemetry bus: the
// /v1/events firehose, the per-job /v1/jobs/{id}/events stream, and the
// /v1/jobs/{id}/progress aggregate. Both streams speak Server-Sent Events
// and follow the same contract: replay the bus's retained ring first
// (filtered), then tail live events, each frame carrying the bus sequence
// number as its SSE id — so a consumer that reconnects with after_seq (or
// the standard Last-Event-ID header) resumes gaplessly as long as the gap
// still fits the ring.

// sseHeartbeat is the keep-alive comment interval of live streams; proxies
// that idle-close quiet connections see a frame at least this often.
const sseHeartbeat = 15 * time.Second

// eventFilter selects the subset of bus events one stream serves.
type eventFilter struct {
	kinds    map[obs.EventKind]bool // nil keeps every kind
	jobID    string                 // "" keeps every job
	afterSeq uint64                 // keep only events with Seq > afterSeq
}

func (f eventFilter) keep(ev obs.Event) bool {
	if ev.Seq <= f.afterSeq {
		return false
	}
	if f.jobID != "" && ev.JobID != f.jobID {
		return false
	}
	if f.kinds != nil && !f.kinds[ev.Kind] {
		return false
	}
	return true
}

// parseEventFilter reads the shared stream query parameters: kind (comma
// list of event kinds), after_seq (resume point; the Last-Event-ID header
// is the spec-standard fallback), and replay=only (serve the ring and
// close — the scripting/CI mode).
func parseEventFilter(r *http.Request) (f eventFilter, replayOnly bool, errMsg string) {
	q := r.URL.Query()
	if raw := q.Get("kind"); raw != "" {
		f.kinds = make(map[obs.EventKind]bool)
		for _, k := range strings.Split(raw, ",") {
			kind := obs.EventKind(strings.TrimSpace(k))
			known := false
			for _, ek := range obs.EventKinds {
				if ek == kind {
					known = true
					break
				}
			}
			if !known {
				return f, false, "unknown event kind " + strconv.Quote(string(kind))
			}
			f.kinds[kind] = true
		}
	}
	seqStr := q.Get("after_seq")
	if seqStr == "" {
		seqStr = r.Header.Get("Last-Event-ID")
	}
	if seqStr != "" {
		seq, err := strconv.ParseUint(seqStr, 10, 64)
		if err != nil {
			return f, false, "after_seq must be a non-negative integer, got " + strconv.Quote(seqStr)
		}
		f.afterSeq = seq
	}
	return f, q.Get("replay") == "only", ""
}

// handleEvents is the firehose: every bus event (optionally filtered by
// kind and job), replayed from the ring then tailed live.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	if s.bus == nil {
		writeError(w, http.StatusNotImplemented, "live events are disabled (start dartd with -event-buffer > 0)")
		return
	}
	f, replayOnly, errMsg := parseEventFilter(r)
	if errMsg != "" {
		writeError(w, http.StatusBadRequest, "%s", errMsg)
		return
	}
	f.jobID = r.URL.Query().Get("job")
	s.streamEvents(w, r, "firehose", f, replayOnly, false)
}

// handleJobEvents streams one job's events: a "snapshot" frame with the
// current progress aggregate, the job's retained ring events, then the
// live tail — closed cleanly once the job reaches a terminal state.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	if s.bus == nil {
		writeError(w, http.StatusNotImplemented, "live events are disabled (start dartd with -event-buffer > 0)")
		return
	}
	id := r.PathValue("id")
	if _, ok := s.queue.Get(id); !ok {
		writeError(w, http.StatusNotFound, "no job %q", id)
		return
	}
	f, replayOnly, errMsg := parseEventFilter(r)
	if errMsg != "" {
		writeError(w, http.StatusBadRequest, "%s", errMsg)
		return
	}
	f.jobID = id
	s.streamEvents(w, r, "job", f, replayOnly, true)
}

// streamEvents serves one SSE stream: subscribe (atomically snapshotting
// the replay ring), emit the snapshot frame (job streams), replay, then
// tail live until the client disconnects, the job terminates (job
// streams), or the server shuts the stream's context down.
func (s *Server) streamEvents(w http.ResponseWriter, r *http.Request, subName string, f eventFilter, replayOnly, jobStream bool) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "response writer cannot stream")
		return
	}
	sub, replay := s.bus.Subscribe(subName, 0)
	defer sub.Close()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	if jobStream {
		// Orientation frame: where the job stands before any replay.
		prog, ok := s.bus.Progress(f.jobID)
		if !ok {
			prog = obs.JobProgress{JobID: f.jobID, Gap: 1, WorstGap: 1}
			if view, vok := s.queue.Get(f.jobID); vok {
				prog.State = string(view.State)
			}
		}
		data, _ := json.Marshal(prog)
		if sse.WriteEvent(w, "", "snapshot", data) != nil {
			return
		}
	}
	terminal := false
	for _, ev := range replay {
		if !f.keep(ev) {
			continue
		}
		if writeBusEvent(w, ev) != nil {
			return
		}
		if jobStream && isTerminalJobEvent(ev) {
			terminal = true
		}
	}
	flusher.Flush()
	if replayOnly {
		return
	}
	if jobStream && !terminal {
		// The terminal transition may predate the replay ring (long-dead
		// job): the queue is the authority.
		if view, ok := s.queue.Get(f.jobID); ok && view.State.Terminal() {
			terminal = true
		}
	}
	if jobStream && terminal {
		return
	}

	hb := time.NewTicker(sseHeartbeat)
	defer hb.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-hb.C:
			if sse.WriteComment(w, "hb") != nil {
				return
			}
			flusher.Flush()
		case ev, ok := <-sub.C():
			if !ok {
				return
			}
			if !f.keep(ev) {
				continue
			}
			if writeBusEvent(w, ev) != nil {
				return
			}
			// Drain whatever else is already buffered before flushing, so a
			// solver burst costs one flush, not one per event.
			drained := false
			//dartvet:allow ctxloop -- bounded by the subscriber buffer: every pass either consumes a buffered event or exits via default
			for !drained {
				select {
				case next, more := <-sub.C():
					if !more {
						drained = true
						break
					}
					if f.keep(next) {
						if writeBusEvent(w, next) != nil {
							return
						}
						if jobStream && isTerminalJobEvent(next) {
							ev = next
						}
					}
				default:
					drained = true
				}
			}
			flusher.Flush()
			if jobStream && isTerminalJobEvent(ev) {
				return // clean close: the job is done
			}
		}
	}
}

// writeBusEvent emits one bus event as an SSE frame named by its kind,
// with the bus sequence number as the frame id.
func writeBusEvent(w http.ResponseWriter, ev obs.Event) error {
	data, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	return sse.WriteEvent(w, strconv.FormatUint(ev.Seq, 10), string(ev.Kind), data)
}

// isTerminalJobEvent reports whether ev announces a terminal job state.
func isTerminalJobEvent(ev obs.Event) bool {
	return ev.Kind == obs.KindJob && ev.Name == "state" && JobState(ev.State).Terminal()
}

// handleJobProgress serves the live per-job aggregate the bus folds at
// publish time. A known job without any published events answers with a
// state-only aggregate, so pollers need no special case.
func (s *Server) handleJobProgress(w http.ResponseWriter, r *http.Request) {
	if s.bus == nil {
		writeError(w, http.StatusNotImplemented, "live events are disabled (start dartd with -event-buffer > 0)")
		return
	}
	id := r.PathValue("id")
	view, ok := s.queue.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", id)
		return
	}
	prog, ok := s.bus.Progress(id)
	if !ok {
		prog = obs.JobProgress{JobID: id, State: string(view.State), Gap: 1, WorstGap: 1}
	}
	writeJSON(w, http.StatusOK, prog)
}

// handleReadyz reports readiness: the store replay finished (construction
// would have failed otherwise), the worker pool is started, shutdown has
// not begun, and the queue can admit a submission. Liveness stays on
// /healthz.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	status := map[string]any{
		"started":   s.started.Load(),
		"draining":  s.Draining(),
		"accepting": s.queue.Accepting(),
	}
	if !s.Ready() {
		status["status"] = "unavailable"
		writeJSON(w, http.StatusServiceUnavailable, status)
		return
	}
	status["status"] = "ok"
	writeJSON(w, http.StatusOK, status)
}
