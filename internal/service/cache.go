package service

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"sync"
)

// resultCache is a bounded LRU of finished job results keyed by the
// content hash of the (document, metadata, solver) triple. Identical
// submissions — the common case for a fleet re-acquiring the same
// published documents — are served without re-running the pipeline.
type resultCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used; values are *cacheEntry
	items map[[sha256.Size]byte]*list.Element
}

type cacheEntry struct {
	key [sha256.Size]byte
	res *ResultJSON
}

// newResultCache creates a cache holding at most capacity entries
// (capacity must be positive).
func newResultCache(capacity int) *resultCache {
	return &resultCache{
		cap:   capacity,
		order: list.New(),
		items: make(map[[sha256.Size]byte]*list.Element, capacity),
	}
}

// cacheKey hashes the inputs that determine a job's result. Each field is
// length-prefixed so distinct triples can never collide by concatenation
// (e.g. metadata "a" + document "bc" vs metadata "ab" + document "c").
// TimeoutMS is deliberately excluded: it bounds the computation but does
// not change a successful result.
func cacheKey(spec JobSpec) [sha256.Size]byte {
	h := sha256.New()
	var lenBuf [8]byte
	field := func(s string) {
		binary.BigEndian.PutUint64(lenBuf[:], uint64(len(s)))
		h.Write(lenBuf[:])
		h.Write([]byte(s))
	}
	field(spec.Solver)
	field(spec.Scenario)
	field(spec.Metadata)
	field(spec.Document)
	var key [sha256.Size]byte
	h.Sum(key[:0])
	return key
}

// get returns the cached result for key, refreshing its recency.
func (c *resultCache) get(key [sha256.Size]byte) (*ResultJSON, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// put inserts or refreshes a result, evicting the least recently used
// entry beyond capacity.
func (c *resultCache) put(key [sha256.Size]byte, res *ResultJSON) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&cacheEntry{key: key, res: res})
	//dartvet:allow ctxloop -- eviction removes one entry per iteration, bounded by c.cap
	for c.order.Len() > c.cap {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.items, last.Value.(*cacheEntry).key)
	}
}

// len reports the current entry count.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// CachingRunner wraps a Runner with a bounded LRU over the (document,
// metadata, solver) triple: repeated submissions are answered from the
// cache, counted as hits in the metrics; only successful results are
// cached (failures stay retryable). Cached results are shared pointers
// and must be treated as immutable by consumers — the wire encoder only
// ever serializes them.
func CachingRunner(next Runner, capacity int, m *Metrics) Runner {
	cache := newResultCache(capacity)
	return func(ctx context.Context, spec JobSpec) (*ResultJSON, error) {
		key := cacheKey(spec)
		if res, ok := cache.get(key); ok {
			if m != nil {
				m.CacheHit()
			}
			return res, nil
		}
		if m != nil {
			m.CacheMiss()
		}
		res, err := next(ctx, spec)
		if err != nil {
			return nil, err
		}
		cache.put(key, res)
		return res, nil
	}
}
