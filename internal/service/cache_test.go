package service

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestCacheKeyLengthPrefixing(t *testing.T) {
	// Field boundaries must matter: shifting a byte between adjacent fields
	// has to produce a different key.
	a := cacheKey(JobSpec{Metadata: "a", Document: "bc"})
	b := cacheKey(JobSpec{Metadata: "ab", Document: "c"})
	if a == b {
		t.Error("metadata/document boundary shift collided")
	}
	c := cacheKey(JobSpec{Solver: "m", Scenario: "ilp"})
	d := cacheKey(JobSpec{Solver: "mi", Scenario: "lp"})
	if c == d {
		t.Error("solver/scenario boundary shift collided")
	}
	// TimeoutMS must not participate: it bounds the computation, not the
	// result.
	e := cacheKey(JobSpec{Document: "doc", TimeoutMS: 5})
	f := cacheKey(JobSpec{Document: "doc", TimeoutMS: 5000})
	if e != f {
		t.Error("TimeoutMS changed the cache key")
	}
}

func TestResultCacheLRUEviction(t *testing.T) {
	c := newResultCache(2)
	k1 := cacheKey(JobSpec{Document: "1"})
	k2 := cacheKey(JobSpec{Document: "2"})
	k3 := cacheKey(JobSpec{Document: "3"})
	r1, r2, r3 := &ResultJSON{}, &ResultJSON{}, &ResultJSON{}
	c.put(k1, r1)
	c.put(k2, r2)
	if _, ok := c.get(k1); !ok { // refresh k1: k2 becomes LRU
		t.Fatal("k1 missing before eviction")
	}
	c.put(k3, r3)
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
	if _, ok := c.get(k2); ok {
		t.Error("k2 survived eviction despite being LRU")
	}
	if got, ok := c.get(k1); !ok || got != r1 {
		t.Error("k1 evicted or replaced")
	}
	if got, ok := c.get(k3); !ok || got != r3 {
		t.Error("k3 missing")
	}
}

func TestCachingRunnerServesRepeatsAndCounts(t *testing.T) {
	m := NewMetrics()
	calls := 0
	next := func(ctx context.Context, spec JobSpec) (*ResultJSON, error) {
		calls++
		return &ResultJSON{}, nil
	}
	run := CachingRunner(next, 4, m)
	spec := JobSpec{Document: "doc", Scenario: "cashbudget"}
	first, err := run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	second, err := run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Errorf("inner runner ran %d times, want 1", calls)
	}
	if first != second {
		t.Error("repeat submission not served from cache")
	}
	if _, err := run(context.Background(), JobSpec{Document: "other"}); err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Errorf("distinct submission did not run: calls = %d", calls)
	}
	var sb strings.Builder
	m.WritePrometheus(&sb)
	for _, want := range []string{
		"dartd_result_cache_hits_total 1",
		"dartd_result_cache_misses_total 2",
	} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestCachingRunnerDoesNotCacheFailures(t *testing.T) {
	calls := 0
	next := func(ctx context.Context, spec JobSpec) (*ResultJSON, error) {
		calls++
		if calls == 1 {
			return nil, errors.New("transient")
		}
		return &ResultJSON{}, nil
	}
	run := CachingRunner(next, 4, nil)
	spec := JobSpec{Document: "doc"}
	if _, err := run(context.Background(), spec); err == nil {
		t.Fatal("first run should fail")
	}
	if _, err := run(context.Background(), spec); err != nil {
		t.Fatalf("retry not re-run: %v", err)
	}
	if calls != 2 {
		t.Errorf("calls = %d, want 2 (failure must not be cached)", calls)
	}
}

// TestServiceResultCacheEndToEnd submits the same document twice against a
// cache-enabled server and checks the second job is a metrics-visible hit.
func TestServiceResultCacheEndToEnd(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 2, ResultCacheSize: 8})
	doc := runningExampleErrorHTML()
	var results []JobView
	for i := 0; i < 2; i++ {
		v, resp := postJob(t, ts.URL, JobSpec{Document: doc, Scenario: "cashbudget"})
		if resp.StatusCode != 202 {
			t.Fatalf("submit %d: status %d", i, resp.StatusCode)
		}
		results = append(results, pollJob(t, ts.URL, v.ID))
	}
	for i, v := range results {
		if v.State != StateSucceeded || v.Result == nil || v.Result.Repair == nil {
			t.Fatalf("job %d: state %v", i, v.State)
		}
	}
	if fmt.Sprint(results[0].Result.Repair.Updates) != fmt.Sprint(results[1].Result.Repair.Updates) {
		t.Errorf("cached result differs:\n%v\nvs\n%v",
			results[0].Result.Repair.Updates, results[1].Result.Repair.Updates)
	}
	var sb strings.Builder
	srv.metrics.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), "dartd_result_cache_hits_total 1") {
		t.Errorf("expected exactly one cache hit; metrics:\n%s", grepLines(sb.String(), "cache"))
	}
	if !strings.Contains(sb.String(), "dartd_result_cache_misses_total 1") {
		t.Errorf("expected exactly one cache miss; metrics:\n%s", grepLines(sb.String(), "cache"))
	}
}

func grepLines(s, substr string) string {
	var out []string
	for _, l := range strings.Split(s, "\n") {
		if strings.Contains(l, substr) {
			out = append(out, l)
		}
	}
	return strings.Join(out, "\n")
}
