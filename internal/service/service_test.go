package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"dart/internal/docgen"
)

// runningExampleErrorHTML renders Fig. 1 with the paper's acquisition
// error (total cash receipts 2003 misread as 250; true value 220).
func runningExampleErrorHTML() string {
	doc := docgen.RunningExampleDocument()
	doc.Tables[0].Rows[3][1].Text = "250"
	return doc.HTML()
}

// newTestServer starts a service plus an httptest front end.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	return srv, ts
}

// postJob submits a spec and decodes the response envelope.
func postJob(t *testing.T, base string, spec JobSpec) (JobView, *http.Response) {
	t.Helper()
	raw, _ := json.Marshal(spec)
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v JobView
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
	}
	return v, resp
}

// pollJob fetches one job until it reaches a terminal state.
func pollJob(t *testing.T, base, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var v JobView
		err = json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if v.State.Terminal() {
			return v
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return JobView{}
}

// TestSubmitPollLifecycle drives one running-example job through the HTTP
// API and oracle-checks the repair (250 -> 220).
func TestSubmitPollLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	v, resp := postJob(t, ts.URL, JobSpec{Document: runningExampleErrorHTML(), Scenario: "cashbudget"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/jobs/"+v.ID {
		t.Errorf("Location = %q", loc)
	}
	got := pollJob(t, ts.URL, v.ID)
	if got.State != StateSucceeded {
		t.Fatalf("state = %s, error = %q", got.State, got.Error)
	}
	if got.Result == nil || got.Result.Repair == nil {
		t.Fatal("terminal job has no result")
	}
	if got.Result.Repair.Card != 1 {
		t.Fatalf("repair card = %d, want 1", got.Result.Repair.Card)
	}
	u := got.Result.Repair.Updates[0]
	if fmt.Sprint(u.Old.Value) != "250" || fmt.Sprint(u.New.Value) != "220" {
		t.Errorf("update = %+v, want 250 -> 220", u)
	}
	if len(got.Result.Acquisition.Violations) != 2 {
		t.Errorf("violations = %d, want 2", len(got.Result.Acquisition.Violations))
	}

	// The list endpoint carries the job without the result payload.
	resp2, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var list struct {
		Jobs  []JobView `json:"jobs"`
		Count int       `json:"count"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if list.Count != 1 || list.Jobs[0].ID != v.ID || list.Jobs[0].Result != nil {
		t.Errorf("list = %+v", list)
	}
}

// TestSubmitValidation exercises the 4xx paths.
func TestSubmitValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	cases := []struct {
		name string
		body string
		want int
	}{
		{"malformed JSON", "{nope", http.StatusBadRequest},
		{"unknown field", `{"document": "x", "bogus": 1}`, http.StatusBadRequest},
		{"missing document", `{"scenario": "cashbudget"}`, http.StatusBadRequest},
		{"unknown scenario", `{"document": "x", "scenario": "nope"}`, http.StatusBadRequest},
		{"unknown solver", `{"document": "x", "solver": "nope"}`, http.StatusBadRequest},
		{"bad inline metadata", `{"document": "x", "metadata": "bogus"}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Errorf("status = %d, want %d", resp.StatusCode, tc.want)
			}
			var env map[string]string
			if err := json.NewDecoder(resp.Body).Decode(&env); err != nil || env["error"] == "" {
				t.Errorf("error envelope missing: %v %v", env, err)
			}
		})
	}
}

// vetFailingMetadata parses fine but fails spec vetting: the constraint's
// WHERE clause touches the measure attribute, so it is not steady.
const vetFailingMetadata = `title vet reject fixture
domain D: 'a', 'b'

pattern P:
  cell K: domain D
  cell V: Integer

relation R(K: S, Kind: S, V: Z)
measure R.V

map K from cell K
map V from cell V

classify Kind from K:
  'a' -> 'x'
  'b' -> 'y'

constraints:
  func f(p) := SELECT sum(V) FROM R WHERE V = p
  constraint C: R(_, _, v) ==> f(v) <= 10
end
`

// TestSubmitSpecVetRejection covers the 422 admission path: a parseable but
// vet-failing spec is rejected with machine-readable diagnostics and counts
// toward dart_spec_rejections_total.
func TestSubmitSpecVetRejection(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	raw, _ := json.Marshal(JobSpec{Document: "x", Metadata: vetFailingMetadata})
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, want 422", resp.StatusCode)
	}
	var env struct {
		Error       string `json:"error"`
		Diagnostics []struct {
			Class      string   `json:"class"`
			Constraint string   `json:"constraint"`
			Message    string   `json:"message"`
			Refs       []string `json:"refs"`
		} `json:"diagnostics"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if env.Error == "" || len(env.Diagnostics) == 0 {
		t.Fatalf("rejection envelope incomplete: %+v", env)
	}
	d := env.Diagnostics[0]
	if d.Class != "non-steady" || d.Constraint != "C" {
		t.Errorf("diagnostic = %+v, want class non-steady for constraint C", d)
	}
	if len(d.Refs) == 0 || d.Refs[0] != "R.V" {
		t.Errorf("diagnostic refs = %v, want [R.V]", d.Refs)
	}

	metrics, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer metrics.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(metrics.Body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "dart_spec_rejections_total 1") {
		t.Errorf("/metrics does not count the rejection:\n%s", buf.String())
	}
}

// TestJobNotFoundAnd405 covers the remaining error routes.
func TestJobNotFoundAnd405(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, err := http.Get(ts.URL + "/v1/jobs/job-999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("get status = %d, want 404", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs", nil)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("delete status = %d, want 405", resp2.StatusCode)
	}
}

// TestHealthzAndDrain503: a draining server answers 503 on healthz and on
// new submissions while finishing the backlog.
func TestHealthzAndDrain503(t *testing.T) {
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	srv, ts := newTestServer(t, Config{Workers: 1, Runner: func(ctx context.Context, spec JobSpec) (*ResultJSON, error) {
		select {
		case started <- struct{}{}:
		default:
		}
		select {
		case <-release:
			return &ResultJSON{}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d before drain", resp.StatusCode)
	}

	v, sub := postJob(t, ts.URL, JobSpec{Document: "x"})
	if sub.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d", sub.StatusCode)
	}
	<-started // the worker holds the job

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drained <- srv.Shutdown(ctx)
	}()
	// Wait for the drain flag to flip.
	for i := 0; srv.Draining() == false && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}

	resp2, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining = %d, want 503", resp2.StatusCode)
	}
	if _, sub := postJob(t, ts.URL, JobSpec{Document: "y"}); sub.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit while draining = %d, want 503", sub.StatusCode)
	}

	close(release) // let the in-flight job finish
	if err := <-drained; err != nil {
		t.Fatalf("drain = %v", err)
	}
	if got, _ := srv.Queue().Get(v.ID); got.State != StateSucceeded {
		t.Errorf("in-flight job state = %s, want succeeded (drain must finish it)", got.State)
	}
}

// metricValue extracts one sample value from Prometheus text output.
func metricValue(t *testing.T, text, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, name+" ") {
			f, err := strconv.ParseFloat(strings.TrimSpace(strings.TrimPrefix(line, name)), 64)
			if err != nil {
				t.Fatalf("parsing %q: %v", line, err)
			}
			return f
		}
	}
	t.Fatalf("metric %s not found", name)
	return 0
}

// TestStressConcurrentJobs drives 100+ concurrent jobs across the three
// built-in scenarios through the HTTP API, oracle-checks every
// running-example repair, and cross-checks /metrics afterwards. Run under
// -race this doubles as the pool's data-race stress test.
func TestStressConcurrentJobs(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cashDoc := runningExampleErrorHTML()
	catalogDoc := docgen.OrdersDocument(docgen.RandomOrders(rng, 4)).HTML()
	balanceDoc := docgen.BalanceSheetDocument(docgen.RandomBalanceSheet(rng, 2001, 1)).HTML()

	specs := []JobSpec{
		{Document: cashDoc, Scenario: "cashbudget"},
		{Document: catalogDoc, Scenario: "catalog"},
		{Document: balanceDoc, Scenario: "balancesheet"},
	}
	const n = 120
	_, ts := newTestServer(t, Config{Workers: 8, QueueCapacity: n})

	ids := make([]string, n)
	scenarios := make([]string, n)
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			spec := specs[i%len(specs)]
			raw, _ := json.Marshal(spec)
			resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(raw))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted {
				errs <- fmt.Errorf("job %d: status %d", i, resp.StatusCode)
				return
			}
			var v JobView
			if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
				errs <- err
				return
			}
			ids[i] = v.ID
			scenarios[i] = spec.Scenario
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	succeeded := 0
	for i, id := range ids {
		v := pollJob(t, ts.URL, id)
		if v.State != StateSucceeded {
			t.Fatalf("job %s (%s): state=%s error=%q", id, scenarios[i], v.State, v.Error)
		}
		succeeded++
		switch scenarios[i] {
		case "cashbudget":
			// Oracle check: the one card-minimal repair is 250 -> 220.
			if v.Result.Repair.Card != 1 {
				t.Fatalf("job %s: repair card = %d, want 1", id, v.Result.Repair.Card)
			}
			u := v.Result.Repair.Updates[0]
			if fmt.Sprint(u.Old.Value) != "250" || fmt.Sprint(u.New.Value) != "220" {
				t.Errorf("job %s: update = %+v, want 250 -> 220", id, u)
			}
		default:
			// Clean documents must come back consistent with empty repairs.
			if !v.Result.Acquisition.Consistent || v.Result.Repair.Card != 0 {
				t.Errorf("job %s (%s): consistent=%v card=%d", id, scenarios[i],
					v.Result.Acquisition.Consistent, v.Result.Repair.Card)
			}
		}
	}

	// The metrics must agree with what we observed.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	resp.Body.Close()
	text := buf.String()
	if got := metricValue(t, text, "dartd_jobs_submitted_total"); got != n {
		t.Errorf("submitted = %v, want %d", got, n)
	}
	if got := metricValue(t, text, `dartd_jobs_total{state="succeeded"}`); got != float64(succeeded) {
		t.Errorf("succeeded = %v, want %d", got, succeeded)
	}
	if got := metricValue(t, text, "dartd_job_seconds_count"); got != n {
		t.Errorf("job_seconds_count = %v, want %d", got, n)
	}
	// 40 of the 120 jobs were inconsistent cashbudget documents with 2
	// violations and a card-1 repair each.
	if got := metricValue(t, text, "dartd_violations_found_total"); got != 80 {
		t.Errorf("violations = %v, want 80", got)
	}
	if got := metricValue(t, text, "dartd_repair_updates_total"); got != 40 {
		t.Errorf("repair updates = %v, want 40", got)
	}
	// The solver histogram saw exactly the inconsistent jobs.
	if got := metricValue(t, text, `dartd_stage_seconds_count{stage="solver"}`); got != 40 {
		t.Errorf("solver observations = %v, want 40", got)
	}
	if got := metricValue(t, text, `dartd_stage_seconds_count{stage="wrapper"}`); got != n {
		t.Errorf("wrapper observations = %v, want %d", got, n)
	}
	if got := metricValue(t, text, "dartd_queue_depth"); got != 0 {
		t.Errorf("queue depth = %v, want 0", got)
	}
}

// TestPipelineRunnerDeadline: an expired context aborts the production
// runner with a deadline error before and during the solve.
func TestPipelineRunnerDeadline(t *testing.T) {
	run := PipelineRunner(nil)
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond)
	_, err := run(ctx, JobSpec{Document: runningExampleErrorHTML(), Scenario: "cashbudget"})
	if err == nil || !strings.Contains(err.Error(), "deadline exceeded") {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
}
