package service

import (
	"encoding/json"
	"fmt"
	"time"

	"dart/internal/repair"
	"dart/internal/store"
)

// This file is the bridge between the in-memory queue and the durable
// job store: every queue mutation appends one record (submit, state
// transition, result, spans-flushed), periodic snapshots absorb the log,
// and RecoverQueue replays snapshot + log back into a live queue at boot.
//
// Append ordering is the crash-safety argument: a job's result record is
// written before its terminal transition, so a crash between the two
// leaves the job non-terminal and recovery re-runs it instead of serving
// a half-recorded state; the submit record is written before the job is
// exposed to workers, so no job can run without a durable spec.

// persistedJob is the snapshot form of one job. Timestamps are UnixNano
// so replayed JobViews re-encode byte-identically to the originals.
type persistedJob struct {
	ID          string          `json:"id"`
	Spec        JobSpec         `json:"spec"`
	State       JobState        `json:"state"`
	Attempts    int             `json:"attempts"`
	SubmittedAt int64           `json:"submitted_at"`
	StartedAt   int64           `json:"started_at,omitempty"`
	FinishedAt  int64           `json:"finished_at,omitempty"`
	Error       string          `json:"error,omitempty"`
	TraceID     string          `json:"trace_id,omitempty"`
	Result      json.RawMessage `json:"result,omitempty"`
	// RepairEvents is the job's suggestion-event history (validation
	// sessions only): the full ledger journal, so a snapshot alone can
	// restore an interrupted session's queue and audit trail.
	RepairEvents []repair.Event `json:"repair_events,omitempty"`
}

// storeState is the snapshot blob handed to JobStore.WriteSnapshot: the
// whole queue, in submission order.
type storeState struct {
	NextID int            `json:"next_id"`
	Jobs   []persistedJob `json:"jobs"`
}

// nanoTime converts a persisted UnixNano back to a wall-clock time; 0 is
// the zero time.
func nanoTime(n int64) time.Time {
	if n == 0 {
		return time.Time{}
	}
	return time.Unix(0, n)
}

// unixNano converts a possibly-zero time to its persisted form.
func unixNano(t time.Time) int64 {
	if t.IsZero() {
		return 0
	}
	return t.UnixNano()
}

// reportStoreErrorLocked routes a non-fatal persistence failure (a
// transition or result append on a job already accepted) to the bound
// observer; the job still completes in memory.
func (q *Queue) reportStoreErrorLocked(err error) {
	if q.onStoreError != nil {
		q.onStoreError(err)
	}
}

// persistLocked appends one record best-effort and schedules a snapshot
// when the log has grown past the configured bound.
func (q *Queue) persistLocked(rec *store.Record) {
	if q.store == nil {
		return
	}
	if _, err := q.store.Append(rec); err != nil {
		q.reportStoreErrorLocked(err)
		return
	}
	q.maybeSnapshotLocked()
}

// appendSubmitLocked durably records a new job before it is exposed to
// workers; unlike the other appends, failure here is fatal to the
// submission (the caller rolls back).
func (q *Queue) appendSubmitLocked(job *Job) error {
	if q.store == nil {
		return nil
	}
	spec, err := json.Marshal(job.Spec)
	if err != nil {
		return err
	}
	if _, err := q.store.Append(&store.Record{
		Type:     store.RecSubmit,
		UnixNano: job.SubmittedAt.UnixNano(),
		JobID:    job.ID,
		State:    string(StateQueued),
		Blob:     spec,
	}); err != nil {
		return err
	}
	q.maybeSnapshotLocked()
	return nil
}

// appendTransitionLocked records the job's current state.
func (q *Queue) appendTransitionLocked(job *Job, at time.Time) {
	q.persistLocked(&store.Record{
		Type:     store.RecTransition,
		UnixNano: at.UnixNano(),
		JobID:    job.ID,
		State:    string(job.State),
		Attempts: job.Attempts,
		TraceID:  job.TraceID,
		Error:    job.Error,
	})
}

// appendResultLocked records the job's terminal result payload.
func (q *Queue) appendResultLocked(job *Job) {
	if q.store == nil || job.Result == nil {
		return
	}
	blob, err := json.Marshal(job.Result)
	if err != nil {
		q.reportStoreErrorLocked(err)
		return
	}
	q.persistLocked(&store.Record{
		Type:     store.RecResult,
		UnixNano: job.FinishedAt.UnixNano(),
		JobID:    job.ID,
		Blob:     blob,
	})
}

// noteSpansFlushed records that a job's trace spans reached the exporter;
// an audit-only frame correlating the WAL with trace output.
func (q *Queue) noteSpansFlushed(job *Job, traceID string, spans int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.store == nil {
		return
	}
	q.persistLocked(&store.Record{
		Type:     store.RecSpans,
		UnixNano: time.Now().UnixNano(),
		JobID:    job.ID,
		TraceID:  traceID,
		Blob:     []byte(fmt.Sprintf(`{"spans":%d}`, spans)),
	})
}

// noteRepairEvent folds one suggestion-ledger event into the job's
// durable history: appended to the in-memory slice (snapshots carry it)
// and journaled as one RecRepair frame. It is the ledger observer's
// landing point, called from session goroutines while the ledger's own
// lock is held — safe because no queue path ever takes a ledger mutex
// under q.mu.
func (q *Queue) noteRepairEvent(job *Job, ev repair.Event) {
	q.mu.Lock()
	defer q.mu.Unlock()
	job.RepairEvents = append(job.RepairEvents, ev)
	if q.store == nil {
		return
	}
	blob, err := json.Marshal(ev)
	if err != nil {
		q.reportStoreErrorLocked(err)
		return
	}
	q.persistLocked(&store.Record{
		Type:     store.RecRepair,
		UnixNano: ev.At,
		JobID:    job.ID,
		State:    string(ev.Kind),
		Blob:     blob,
	})
}

// maybeSnapshotLocked writes a snapshot (absorbing and truncating the
// log) once the configured number of appends has accumulated.
func (q *Queue) maybeSnapshotLocked() {
	if q.store == nil || q.snapshotEvery <= 0 {
		return
	}
	if q.store.AppendsSinceSnapshot() < q.snapshotEvery {
		return
	}
	state, err := json.Marshal(q.stateLocked())
	if err != nil {
		q.reportStoreErrorLocked(err)
		return
	}
	if err := q.store.WriteSnapshot(state); err != nil {
		q.reportStoreErrorLocked(err)
	}
}

// stateLocked serializes the whole queue for a snapshot.
func (q *Queue) stateLocked() storeState {
	st := storeState{NextID: q.nextID, Jobs: make([]persistedJob, 0, len(q.order))}
	for _, id := range q.order {
		job := q.jobs[id]
		pj := persistedJob{
			ID:          job.ID,
			Spec:        job.Spec,
			State:       job.State,
			Attempts:    job.Attempts,
			SubmittedAt: job.SubmittedAt.UnixNano(),
			StartedAt:   unixNano(job.StartedAt),
			FinishedAt:  unixNano(job.FinishedAt),
			Error:       job.Error,
			TraceID:     job.TraceID,
		}
		if len(job.RepairEvents) > 0 {
			pj.RepairEvents = append([]repair.Event(nil), job.RepairEvents...)
		}
		if job.Result != nil {
			if raw, err := json.Marshal(job.Result); err == nil {
				pj.Result = raw
			}
		}
		st.Jobs = append(st.Jobs, pj)
	}
	return st
}

// SyncStore flushes the attached store to stable storage; graceful drain
// calls it so a clean shutdown never depends on replaying unsynced
// frames. A queue without a store reports success.
func (q *Queue) SyncStore() error {
	q.mu.Lock()
	st := q.store
	q.mu.Unlock()
	if st == nil {
		return nil
	}
	return st.Sync()
}

// RecoveryStats summarizes one boot-time replay.
type RecoveryStats struct {
	// SnapshotJobs counts jobs restored from the snapshot blob.
	SnapshotJobs int
	// Records counts log records applied on top of the snapshot.
	Records int
	// Requeued counts jobs that were queued or running at crash time and
	// were re-enqueued for workers.
	Requeued int
	// Completed counts terminal jobs restored with their results intact.
	Completed int
	// Dropped counts non-terminal jobs that could not be re-enqueued
	// (recovered backlog exceeded the queue capacity); they are marked
	// failed rather than silently lost.
	Dropped int
	// Orphans counts records referencing unknown jobs (should be zero;
	// tracked defensively).
	Orphans int
	// Duration is the wall-clock replay time.
	Duration time.Duration
}

// RecoverQueue rebuilds a queue from a job store: snapshot first, then
// every log record, then re-enqueueing of each job that was pending or
// running at crash time (completed jobs keep their results and are never
// re-solved). The returned queue persists through st from then on.
func RecoverQueue(capacity int, st store.JobStore, snapshotEvery int, onStoreError func(error)) (*Queue, *RecoveryStats, error) {
	q := NewQueue(capacity)
	q.snapshotEvery = snapshotEvery
	q.onStoreError = onStoreError
	stats := &RecoveryStats{}
	start := time.Now()

	// Collect records first: the snapshot blob arrives at the end of
	// Replay but must be applied before the records layered on top of it.
	var recs []*store.Record
	snap, err := st.Replay(func(rec *store.Record) error {
		recs = append(recs, rec)
		return nil
	})
	if err != nil {
		return nil, nil, fmt.Errorf("service: store replay: %w", err)
	}

	q.mu.Lock()
	defer q.mu.Unlock()
	if snap != nil {
		var state storeState
		if err := json.Unmarshal(snap, &state); err != nil {
			return nil, nil, fmt.Errorf("service: decoding store snapshot: %w", err)
		}
		q.nextID = state.NextID
		for i := range state.Jobs {
			pj := &state.Jobs[i]
			job := &Job{
				ID:          pj.ID,
				Spec:        pj.Spec,
				State:       pj.State,
				Attempts:    pj.Attempts,
				SubmittedAt: nanoTime(pj.SubmittedAt),
				StartedAt:   nanoTime(pj.StartedAt),
				FinishedAt:  nanoTime(pj.FinishedAt),
				Error:       pj.Error,
				TraceID:     pj.TraceID,
			}
			if len(pj.RepairEvents) > 0 {
				job.RepairEvents = append([]repair.Event(nil), pj.RepairEvents...)
			}
			if len(pj.Result) > 0 {
				var res ResultJSON
				if err := json.Unmarshal(pj.Result, &res); err == nil {
					job.Result = &res
				}
			}
			q.jobs[job.ID] = job //dartvet:allow walorder -- snapshot replay: the record set being made visible is already durable
			q.order = append(q.order, job.ID)
		}
		stats.SnapshotJobs = len(state.Jobs)
	}
	for _, rec := range recs {
		q.applyRecordLocked(rec, stats)
	}
	stats.Records = len(recs)

	// Re-enqueue everything non-terminal: those jobs were queued or
	// running when the previous process died.
	now := time.Now()
	var requeued []*Job
	for _, id := range q.order {
		job := q.jobs[id]
		switch {
		case job.State.Terminal():
			stats.Completed++
		case len(q.ch) < cap(q.ch):
			job.State = StateQueued
			job.StartedAt = time.Time{}
			job.FinishedAt = time.Time{}
			job.Error = ""
			job.Result = nil
			q.ch <- job //dartvet:allow walorder -- recovery requeue: the job was replayed from the durable log, not newly accepted
			requeued = append(requeued, job)
			stats.Requeued++
		default:
			job.State = StateFailed
			job.FinishedAt = now
			job.Error = "service: recovered backlog exceeded queue capacity"
			stats.Dropped++
		}
	}

	// Only now attach the store: replay itself must not append, but the
	// requeue decisions become part of the durable history.
	q.store = st
	for _, job := range requeued {
		q.appendTransitionLocked(job, now)
	}
	stats.Duration = time.Since(start)
	return q, stats, nil
}

// applyRecordLocked folds one replayed record into the queue state.
func (q *Queue) applyRecordLocked(rec *store.Record, stats *RecoveryStats) {
	switch rec.Type {
	case store.RecSubmit:
		var spec JobSpec
		if err := json.Unmarshal(rec.Blob, &spec); err != nil {
			stats.Orphans++
			return
		}
		job := &Job{
			ID:          rec.JobID,
			Spec:        spec,
			State:       StateQueued,
			SubmittedAt: rec.Time(),
		}
		q.jobs[job.ID] = job //dartvet:allow walorder -- applying a replayed record: it is already in the durable log
		q.order = append(q.order, job.ID)
		// Keep ID allocation ahead of every replayed job.
		var n int
		if _, err := fmt.Sscanf(rec.JobID, "job-%d", &n); err == nil && n > q.nextID {
			q.nextID = n
		}
	case store.RecTransition:
		job, ok := q.jobs[rec.JobID]
		if !ok {
			stats.Orphans++
			return
		}
		job.State = JobState(rec.State)
		job.Attempts = rec.Attempts
		switch {
		case job.State == StateQueued:
			// A recovery requeue from a previous incarnation: runtime
			// fields reset with it.
			job.StartedAt = time.Time{}
			job.FinishedAt = time.Time{}
			job.Error = ""
			job.Result = nil
		case job.State == StateRunning:
			if job.StartedAt.IsZero() {
				job.StartedAt = rec.Time()
			}
			if rec.TraceID != "" {
				job.TraceID = rec.TraceID
			}
		case job.State.Terminal():
			job.FinishedAt = rec.Time()
			job.Error = rec.Error
		}
	case store.RecResult:
		job, ok := q.jobs[rec.JobID]
		if !ok {
			stats.Orphans++
			return
		}
		var res ResultJSON
		if err := json.Unmarshal(rec.Blob, &res); err != nil {
			stats.Orphans++
			return
		}
		job.Result = &res
	case store.RecSpans:
		// Audit-only: spans were flushed to the exporter; nothing to fold
		// into queue state.
	case store.RecRepair:
		job, ok := q.jobs[rec.JobID]
		if !ok {
			stats.Orphans++
			return
		}
		var ev repair.Event
		if err := json.Unmarshal(rec.Blob, &ev); err != nil {
			stats.Orphans++
			return
		}
		// The event history survives requeues: a re-run validation session
		// restores its ledger from it instead of starting over.
		job.RepairEvents = append(job.RepairEvents, ev)
	}
}
