package milp

import (
	"math"
	"sync"
)

// csrMatrix is the model's constraint matrix in compressed sparse row form,
// row-equilibrated exactly like the dense tableau build used to be: each
// row is divided by its largest structural coefficient magnitude, and the
// scaled right-hand side rides along. It is built once per Solve and shared
// read-only by every branch-and-bound worker, so node solves scatter rows
// from it instead of re-walking the model's term lists.
type csrMatrix struct {
	m, nv    int
	rowStart []int // len m+1; nonzeros of row i are cols/vals[rowStart[i]:rowStart[i+1]]
	cols     []int
	vals     []float64 // equilibrated structural coefficients
	rhs      []float64 // equilibrated right-hand sides
	rel      []Rel
}

// buildCSR converts the model's rows into equilibrated CSR form. Duplicate
// variables within a row are merged additively (matching the dense
// scatter's += semantics) and coefficients that cancel to zero are dropped,
// which is exact: a zero entry contributes nothing to any simplex loop.
func buildCSR(mdl *Model) *csrMatrix {
	m := mdl.NumConstraints()
	nv := mdl.NumVars()
	cs := &csrMatrix{
		m:        m,
		nv:       nv,
		rowStart: make([]int, m+1),
		rhs:      make([]float64, m),
		rel:      make([]Rel, m),
	}
	nnz := 0
	for _, row := range mdl.rows {
		nnz += len(row.Terms)
	}
	cs.cols = make([]int, 0, nnz)
	cs.vals = make([]float64, 0, nnz)

	tmp := make([]float64, nv)
	touched := make([]int, 0, 16)
	for i, row := range mdl.rows {
		touched = touched[:0]
		for _, t := range row.Terms {
			j := int(t.Var)
			if tmp[j] == 0 {
				touched = append(touched, j)
			}
			tmp[j] += t.Coeff
		}
		// Ascending column order keeps every scatter and dot product in the
		// same order the dense build used, so arithmetic is reproducible.
		insertionSort(touched)
		scale := 0.0
		for _, j := range touched {
			if av := math.Abs(tmp[j]); av > scale {
				scale = av
			}
		}
		rhs := row.RHS
		if scale > 0 {
			inv := 1 / scale
			for _, j := range touched {
				tmp[j] *= inv
			}
			rhs *= inv
		}
		for _, j := range touched {
			if tmp[j] != 0 {
				cs.cols = append(cs.cols, j)
				cs.vals = append(cs.vals, tmp[j])
			}
			tmp[j] = 0
		}
		cs.rowStart[i+1] = len(cs.cols)
		cs.rhs[i] = rhs
		cs.rel[i] = row.Rel
	}
	return cs
}

// insertionSort sorts a small int slice in place; rows touch a handful of
// variables, so this beats sort.Ints and allocates nothing.
func insertionSort(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// simplexPool recycles simplex working states. A branch-and-bound worker
// checks one out for its whole lifetime, so steady-state node solves reuse
// the same flat tableau, bound, and cost arrays and allocate nothing; the
// one-shot LP entry points borrow one per call.
var simplexPool = sync.Pool{New: func() any { return new(simplex) }}

func acquireSimplex() *simplex  { return simplexPool.Get().(*simplex) }
func releaseSimplex(s *simplex) { simplexPool.Put(s) }

// growF returns a float slice of length n, reusing b's backing array when
// it is large enough. Contents are unspecified; callers overwrite fully.
func growF(b []float64, n int) []float64 {
	if cap(b) < n {
		return make([]float64, n)
	}
	return b[:n]
}

// growI is growF for int slices.
func growI(b []int, n int) []int {
	if cap(b) < n {
		return make([]int, n)
	}
	return b[:n]
}

// growRows is growF for the tableau's row-header slice.
func growRows(b [][]float64, n int) [][]float64 {
	if cap(b) < n {
		return make([][]float64, n)
	}
	return b[:n]
}

// growS is growF for column-status slices.
func growS(b []colStatus, n int) []colStatus {
	if cap(b) < n {
		return make([]colStatus, n)
	}
	return b[:n]
}
