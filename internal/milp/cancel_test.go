package milp

import (
	"errors"
	"testing"
)

// cancelModel builds a small binary program whose branch-and-bound explores
// more than one node.
func cancelModel(t *testing.T) *Model {
	t.Helper()
	m := NewModel()
	x := make([]Var, 6)
	for i := range x {
		x[i] = m.AddVar("x"+string(rune('0'+i)), 0, 1, Binary, 1)
	}
	// Knapsack-style rows forcing fractional relaxations.
	m.MustAddConstraint("r1", []Term{{x[0], 2}, {x[1], 3}, {x[2], 5}, {x[3], 7}}, GE, 8)
	m.MustAddConstraint("r2", []Term{{x[2], 2}, {x[3], 3}, {x[4], 5}, {x[5], 7}}, GE, 8)
	return m
}

// TestSolveCancelImmediate: a pre-failed Cancel aborts before any work.
func TestSolveCancelImmediate(t *testing.T) {
	sentinel := errors.New("cancelled")
	_, err := Solve(cancelModel(t), MILPOptions{Cancel: func() error { return sentinel }})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
}

// TestSolveCancelMidSearch: cancellation raised after the first node stops
// the search at the next node boundary.
func TestSolveCancelMidSearch(t *testing.T) {
	sentinel := errors.New("stop now")
	calls := 0
	_, err := Solve(cancelModel(t), MILPOptions{Cancel: func() error {
		calls++
		if calls > 2 {
			return sentinel
		}
		return nil
	}})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel after %d polls", err, calls)
	}
}

// TestSolveNoCancelStillOptimal: the hook's absence changes nothing.
func TestSolveNoCancelStillOptimal(t *testing.T) {
	res, err := Solve(cancelModel(t), MILPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusOptimal {
		t.Fatalf("status = %v", res.Status)
	}
}
