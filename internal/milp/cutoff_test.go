package milp

import (
	"math"
	"math/rand"
	"testing"
)

// TestCutoffObjectivePreservesOptimum checks the exactness guarantee of the
// warm-start cutoff: declaring the known optimum as CutoffObjective must
// return the same optimum a cold solve finds, with no more nodes.
func TestCutoffObjectivePreservesOptimum(t *testing.T) {
	build := func() *Model {
		m := NewModel()
		a := m.AddVar("a", 0, 1, Binary, -8)
		b := m.AddVar("b", 0, 1, Binary, -11)
		c := m.AddVar("c", 0, 1, Binary, -6)
		d := m.AddVar("d", 0, 1, Binary, -4)
		m.MustAddConstraint("w", []Term{{a, 5}, {b, 7}, {c, 4}, {d, 3}}, LE, 14)
		return m
	}
	// Workers pinned to 1: node counts are schedule-dependent under the
	// parallel frontier, and this test asserts an exact count relation.
	cold, err := Solve(build(), MILPOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if cold.Status != StatusOptimal {
		t.Fatalf("cold status %v", cold.Status)
	}
	cutoff := cold.Objective
	warm, err := Solve(build(), MILPOptions{CutoffObjective: &cutoff, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Status != StatusOptimal {
		t.Fatalf("warm status %v", warm.Status)
	}
	if math.Abs(warm.Objective-cold.Objective) > 1e-9 {
		t.Errorf("warm objective %v, cold %v", warm.Objective, cold.Objective)
	}
	if warm.Nodes > cold.Nodes {
		t.Errorf("cutoff explored more nodes (%d) than cold solve (%d)", warm.Nodes, cold.Nodes)
	}
	if err := CheckFeasible(build(), warm.X, 1e-6); err != nil {
		t.Error(err)
	}
}

// TestCutoffObjectiveRandomAgreement re-runs the brute-force property test
// with the cold optimum fed back as the cutoff: on every random integer
// program, the cutoff solve must reproduce the optimal objective exactly.
func TestCutoffObjectiveRandomAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 40; trial++ {
		build := func(src int64) *Model {
			r := rand.New(rand.NewSource(src))
			m := NewModel()
			nv := 2 + r.Intn(3)
			for j := 0; j < nv; j++ {
				m.AddVar("x", 0, float64(2+r.Intn(3)), Integer, float64(r.Intn(11)-5))
			}
			nc := 1 + r.Intn(3)
			for i := 0; i < nc; i++ {
				terms := make([]Term, nv)
				for j := 0; j < nv; j++ {
					terms[j] = Term{Var(j), float64(r.Intn(7) - 3)}
				}
				rel := []Rel{LE, GE, EQ}[r.Intn(3)]
				m.MustAddConstraint("c", terms, rel, float64(r.Intn(15)-5))
			}
			return m
		}
		src := rng.Int63()
		cold, err := Solve(build(src), MILPOptions{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if cold.Status != StatusOptimal {
			continue // infeasible/unbounded instances have no cutoff to test
		}
		cutoff := cold.Objective
		warm, err := Solve(build(src), MILPOptions{CutoffObjective: &cutoff})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if warm.Status != StatusOptimal {
			t.Errorf("trial %d: warm status %v, cold optimal %v", trial, warm.Status, cold.Objective)
			continue
		}
		if math.Abs(warm.Objective-cold.Objective) > 1e-6 {
			t.Errorf("trial %d: warm objective %v, cold %v", trial, warm.Objective, cold.Objective)
		}
		if err := CheckFeasible(build(src), warm.X, 1e-6); err != nil {
			t.Errorf("trial %d: %v", trial, err)
		}
	}
}

// TestCutoffIgnoredForNonIntegralObjective guards the integrality gate: on a
// model whose objective is not provably integral, even an aggressive (wrong)
// cutoff must not change the optimum, because it is ignored.
func TestCutoffIgnoredForNonIntegralObjective(t *testing.T) {
	build := func() *Model {
		m := NewModel()
		x := m.AddVar("x", 0, 4, Integer, -1.5) // fractional coefficient
		y := m.AddVar("y", 0, 4, Integer, -1)
		m.MustAddConstraint("c", []Term{{x, 1}, {y, 1}}, LE, 5)
		return m
	}
	cold, err := Solve(build(), MILPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if cold.Status != StatusOptimal {
		t.Fatalf("cold status %v", cold.Status)
	}
	// A cutoff far below the optimum would prune the whole tree if applied.
	bogus := cold.Objective - 100
	warm, err := Solve(build(), MILPOptions{CutoffObjective: &bogus})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Status != StatusOptimal || math.Abs(warm.Objective-cold.Objective) > 1e-9 {
		t.Errorf("non-integral objective: warm %v/%v, cold %v/%v",
			warm.Status, warm.Objective, cold.Status, cold.Objective)
	}
}
