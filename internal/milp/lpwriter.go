package milp

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// WriteLP serializes the model in CPLEX LP format, so instances can be
// inspected or cross-checked with external solvers. Variable names are
// sanitized to the LP identifier alphabet; duplicate or empty names get a
// positional suffix.
func (m *Model) WriteLP(w io.Writer) error {
	names := lpNames(m)
	var b strings.Builder

	b.WriteString("Minimize\n obj:")
	wrote := false
	for j, c := range m.obj {
		if c == 0 {
			continue
		}
		writeLPCoeff(&b, c, names[j], !wrote)
		wrote = true
	}
	if !wrote {
		b.WriteString(" 0 " + names[0])
	}
	b.WriteString("\nSubject To\n")
	for i, r := range m.rows {
		fmt.Fprintf(&b, " c%d:", i+1)
		first := true
		for _, t := range r.Terms {
			writeLPCoeff(&b, t.Coeff, names[t.Var], first)
			first = false
		}
		if first {
			b.WriteString(" 0 " + names[0])
		}
		switch r.Rel {
		case LE:
			fmt.Fprintf(&b, " <= %g\n", r.RHS)
		case GE:
			fmt.Fprintf(&b, " >= %g\n", r.RHS)
		default:
			fmt.Fprintf(&b, " = %g\n", r.RHS)
		}
	}
	b.WriteString("Bounds\n")
	for j := range m.names {
		lb, ub := m.lb[j], m.ub[j]
		switch {
		case math.IsInf(lb, -1) && math.IsInf(ub, 1):
			fmt.Fprintf(&b, " %s free\n", names[j])
		case math.IsInf(lb, -1):
			fmt.Fprintf(&b, " -inf <= %s <= %g\n", names[j], ub)
		case math.IsInf(ub, 1):
			fmt.Fprintf(&b, " %s >= %g\n", names[j], lb)
		default:
			fmt.Fprintf(&b, " %g <= %s <= %g\n", lb, names[j], ub)
		}
	}
	var generals, binaries []string
	for j, vt := range m.vtype {
		switch vt {
		case Integer:
			generals = append(generals, names[j])
		case Binary:
			binaries = append(binaries, names[j])
		}
	}
	if len(generals) > 0 {
		b.WriteString("Generals\n " + strings.Join(generals, " ") + "\n")
	}
	if len(binaries) > 0 {
		b.WriteString("Binaries\n " + strings.Join(binaries, " ") + "\n")
	}
	b.WriteString("End\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func writeLPCoeff(b *strings.Builder, c float64, name string, first bool) {
	switch {
	case c == 1:
		if first {
			fmt.Fprintf(b, " %s", name)
		} else {
			fmt.Fprintf(b, " + %s", name)
		}
	case c == -1:
		fmt.Fprintf(b, " - %s", name)
	case c < 0:
		fmt.Fprintf(b, " - %g %s", -c, name)
	default:
		if first {
			fmt.Fprintf(b, " %g %s", c, name)
		} else {
			fmt.Fprintf(b, " + %g %s", c, name)
		}
	}
}

// lpNames sanitizes variable names to LP-safe identifiers, de-duplicating.
func lpNames(m *Model) []string {
	out := make([]string, len(m.names))
	seen := map[string]bool{}
	for j, n := range m.names {
		clean := strings.Map(func(r rune) rune {
			switch {
			case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
				return r
			default:
				return '_'
			}
		}, n)
		if clean == "" || (clean[0] >= '0' && clean[0] <= '9') {
			clean = "x" + clean
		}
		if seen[clean] {
			clean = fmt.Sprintf("%s_%d", clean, j)
		}
		seen[clean] = true
		out[j] = clean
	}
	return out
}
