package milp

import (
	"math"
	"strings"
	"testing"
)

func approx(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v (tol %v)", what, got, want, tol)
	}
}

// A classic 2-variable LP with a unique vertex optimum.
//
//	max 3x + 5y  s.t. x <= 4; 2y <= 12; 3x + 2y <= 18; x,y >= 0
//	optimum x=2, y=6, obj=36 (here minimized as -36).
func TestSimplexTextbookLP(t *testing.T) {
	m := NewModel()
	x := m.AddVar("x", 0, math.Inf(1), Continuous, -3)
	y := m.AddVar("y", 0, math.Inf(1), Continuous, -5)
	m.MustAddConstraint("c1", []Term{{x, 1}}, LE, 4)
	m.MustAddConstraint("c2", []Term{{y, 2}}, LE, 12)
	m.MustAddConstraint("c3", []Term{{x, 3}, {y, 2}}, LE, 18)
	res, err := SolveLP(m, SimplexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusOptimal {
		t.Fatalf("status %v", res.Status)
	}
	approx(t, res.Objective, -36, 1e-7, "objective")
	approx(t, res.X[x], 2, 1e-7, "x")
	approx(t, res.X[y], 6, 1e-7, "y")
}

func TestSimplexEqualityAndGE(t *testing.T) {
	// min x + y  s.t. x + y = 10, x >= 3, y >= 2 -> obj 10.
	m := NewModel()
	x := m.AddVar("x", 3, math.Inf(1), Continuous, 1)
	y := m.AddVar("y", 2, math.Inf(1), Continuous, 1)
	m.MustAddConstraint("sum", []Term{{x, 1}, {y, 1}}, EQ, 10)
	res, err := SolveLP(m, SimplexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusOptimal {
		t.Fatalf("status %v", res.Status)
	}
	approx(t, res.Objective, 10, 1e-7, "objective")
	approx(t, res.X[x]+res.X[y], 10, 1e-7, "x+y")

	// min x  s.t. x >= 7 via GE row.
	m2 := NewModel()
	x2 := m2.AddVar("x", math.Inf(-1), math.Inf(1), Continuous, 1)
	m2.MustAddConstraint("ge", []Term{{x2, 1}}, GE, 7)
	res2, err := SolveLP(m2, SimplexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Status != StatusOptimal {
		t.Fatalf("status %v", res2.Status)
	}
	approx(t, res2.Objective, 7, 1e-7, "objective")
}

func TestSimplexFreeVariables(t *testing.T) {
	// min x - 2y  s.t. x + y = 0, -5 <= y <= 5, x free -> x=-5? no:
	// x = -y; obj = -y - 2y = -3y minimized at y=5 -> obj=-15, x=-5.
	m := NewModel()
	x := m.AddVar("x", math.Inf(-1), math.Inf(1), Continuous, 1)
	y := m.AddVar("y", -5, 5, Continuous, -2)
	m.MustAddConstraint("bal", []Term{{x, 1}, {y, 1}}, EQ, 0)
	res, err := SolveLP(m, SimplexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusOptimal {
		t.Fatalf("status %v", res.Status)
	}
	approx(t, res.Objective, -15, 1e-7, "objective")
	approx(t, res.X[x], -5, 1e-7, "x")
	approx(t, res.X[y], 5, 1e-7, "y")
}

func TestSimplexInfeasible(t *testing.T) {
	// x <= 1 and x >= 3.
	m := NewModel()
	x := m.AddVar("x", 0, math.Inf(1), Continuous, 1)
	m.MustAddConstraint("lo", []Term{{x, 1}}, GE, 3)
	m.MustAddConstraint("hi", []Term{{x, 1}}, LE, 1)
	res, err := SolveLP(m, SimplexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusInfeasible {
		t.Fatalf("status %v, want infeasible", res.Status)
	}
}

func TestSimplexInfeasibleEqualities(t *testing.T) {
	// x + y = 1; x + y = 2.
	m := NewModel()
	x := m.AddVar("x", math.Inf(-1), math.Inf(1), Continuous, 0)
	y := m.AddVar("y", math.Inf(-1), math.Inf(1), Continuous, 0)
	m.MustAddConstraint("a", []Term{{x, 1}, {y, 1}}, EQ, 1)
	m.MustAddConstraint("b", []Term{{x, 1}, {y, 1}}, EQ, 2)
	res, err := SolveLP(m, SimplexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusInfeasible {
		t.Fatalf("status %v, want infeasible", res.Status)
	}
}

func TestSimplexUnbounded(t *testing.T) {
	// min -x, x >= 0, no upper limit.
	m := NewModel()
	x := m.AddVar("x", 0, math.Inf(1), Continuous, -1)
	m.MustAddConstraint("weak", []Term{{x, -1}}, LE, 0) // -x <= 0, always true
	res, err := SolveLP(m, SimplexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusUnbounded {
		t.Fatalf("status %v, want unbounded", res.Status)
	}
}

func TestSimplexBoundFlipOnly(t *testing.T) {
	// min -x with 0 <= x <= 9 and a vacuous row: solved by a bound flip.
	m := NewModel()
	x := m.AddVar("x", 0, 9, Continuous, -1)
	y := m.AddVar("y", 0, 1, Continuous, 0)
	m.MustAddConstraint("vac", []Term{{y, 1}}, LE, 5)
	res, err := SolveLP(m, SimplexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusOptimal {
		t.Fatalf("status %v", res.Status)
	}
	approx(t, res.X[x], 9, 1e-7, "x")
}

func TestSimplexNoConstraints(t *testing.T) {
	m := NewModel()
	x := m.AddVar("x", -3, 8, Continuous, 1)
	res, err := SolveLP(m, SimplexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusOptimal {
		t.Fatalf("status %v", res.Status)
	}
	approx(t, res.X[x], -3, 1e-9, "x")
	approx(t, res.Objective, -3, 1e-9, "obj")
}

func TestSimplexDegenerate(t *testing.T) {
	// Beale's classic cycling example (with Dantzig's rule it can cycle
	// without anti-cycling safeguards).
	m := NewModel()
	inf := math.Inf(1)
	x1 := m.AddVar("x1", 0, inf, Continuous, -0.75)
	x2 := m.AddVar("x2", 0, inf, Continuous, 150)
	x3 := m.AddVar("x3", 0, inf, Continuous, -0.02)
	x4 := m.AddVar("x4", 0, inf, Continuous, 6)
	m.MustAddConstraint("r1", []Term{{x1, 0.25}, {x2, -60}, {x3, -0.04}, {x4, 9}}, LE, 0)
	m.MustAddConstraint("r2", []Term{{x1, 0.5}, {x2, -90}, {x3, -0.02}, {x4, 3}}, LE, 0)
	m.MustAddConstraint("r3", []Term{{x3, 1}}, LE, 1)
	res, err := SolveLP(m, SimplexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusOptimal {
		t.Fatalf("status %v", res.Status)
	}
	approx(t, res.Objective, -0.05, 1e-7, "objective")
}

func TestSimplexEqualityWithNegativeRHS(t *testing.T) {
	// Rows with negative RHS exercise phase-1 with basics above upper bound.
	m := NewModel()
	x := m.AddVar("x", 0, 100, Continuous, 1)
	y := m.AddVar("y", 0, 100, Continuous, 1)
	m.MustAddConstraint("neg", []Term{{x, -1}, {y, -1}}, EQ, -10)
	res, err := SolveLP(m, SimplexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusOptimal {
		t.Fatalf("status %v", res.Status)
	}
	approx(t, res.Objective, 10, 1e-7, "objective")
}

func TestSimplexSolutionAlwaysFeasible(t *testing.T) {
	// Every optimal solution reported must pass CheckFeasible.
	models := []*Model{}
	{
		m := NewModel()
		a := m.AddVar("a", 0, 10, Continuous, 2)
		b := m.AddVar("b", -4, 4, Continuous, -3)
		c := m.AddVar("c", math.Inf(-1), math.Inf(1), Continuous, 1)
		m.MustAddConstraint("r1", []Term{{a, 1}, {b, 2}, {c, -1}}, LE, 7)
		m.MustAddConstraint("r2", []Term{{a, -2}, {b, 1}, {c, 3}}, GE, -5)
		m.MustAddConstraint("r3", []Term{{a, 1}, {b, 1}, {c, 1}}, EQ, 3)
		models = append(models, m)
	}
	for i, m := range models {
		res, err := SolveLP(m, SimplexOptions{})
		if err != nil {
			t.Fatalf("model %d: %v", i, err)
		}
		if res.Status != StatusOptimal {
			t.Fatalf("model %d: status %v", i, res.Status)
		}
		if err := CheckFeasible(m, res.X, 1e-6); err != nil {
			t.Errorf("model %d: %v", i, err)
		}
	}
}

func TestModelValidate(t *testing.T) {
	m := NewModel()
	x := m.AddVar("x", 1, 0, Continuous, 0) // reversed
	if err := m.Validate(); err == nil {
		t.Error("reversed bounds should fail validation")
	}
	m.SetBounds(x, 0, 1)
	if err := m.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if err := m.AddConstraint("bad", []Term{{Var(99), 1}}, LE, 0); err == nil {
		t.Error("unknown variable should fail")
	}
	m.MustAddConstraint("nan", []Term{{x, math.NaN()}}, LE, 0)
	if err := m.Validate(); err == nil {
		t.Error("NaN coefficient should fail validation")
	}
}

func TestModelTermMergingAndString(t *testing.T) {
	m := NewModel()
	x := m.AddVar("x", 0, 1, Continuous, 1)
	y := m.AddVar("y", 0, 1, Continuous, -1)
	m.MustAddConstraint("merge", []Term{{x, 1}, {x, 2}, {y, 1}, {y, -1}}, LE, 5)
	c := m.Constraint(0)
	if len(c.Terms) != 1 || c.Terms[0].Var != x || c.Terms[0].Coeff != 3 {
		t.Errorf("merged terms = %+v", c.Terms)
	}
	s := m.String()
	if s == "" {
		t.Error("String() empty")
	}
}

func TestBinaryBoundsClamped(t *testing.T) {
	m := NewModel()
	b := m.AddVar("b", -5, 5, Binary, 1)
	lo, hi := m.Bounds(b)
	if lo != 0 || hi != 1 {
		t.Errorf("binary bounds = [%v, %v], want [0, 1]", lo, hi)
	}
	if m.Type(b) != Binary || m.Name(b) != "b" {
		t.Error("type/name accessors wrong")
	}
}

func TestWriteLP(t *testing.T) {
	m := NewModel()
	x := m.AddVar("x 1", 0, 4, Continuous, -3)
	y := m.AddVar("y", math.Inf(-1), math.Inf(1), Integer, 5)
	b := m.AddVar("", 0, 1, Binary, 1)
	m.MustAddConstraint("c", []Term{{x, 1}, {y, 2}, {b, -1}}, LE, 10)
	m.MustAddConstraint("e", []Term{{y, 1}}, EQ, 3)
	m.MustAddConstraint("g", []Term{{x, -0.5}}, GE, -2)
	var sb strings.Builder
	if err := m.WriteLP(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"Minimize", "Subject To", "Bounds", "Generals", "Binaries", "End",
		"x_1", "y free", "<= 10", "= 3", ">= -2", "0 <= x_1 <= 4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteLP missing %q:\n%s", want, out)
		}
	}
}

func TestWriteLPNameCollisions(t *testing.T) {
	m := NewModel()
	m.AddVar("a!", 0, 1, Continuous, 1)
	m.AddVar("a?", 0, 1, Continuous, 1)
	m.AddVar("9lives", 0, 1, Continuous, 0)
	var sb strings.Builder
	if err := m.WriteLP(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "a_") || !strings.Contains(out, "a__1") || !strings.Contains(out, "x9lives") {
		t.Errorf("sanitized names wrong:\n%s", out)
	}
}
