package milp

import (
	"container/heap"
	"fmt"
	"math"
)

// MILPOptions tunes the branch-and-bound search. The zero value selects
// defaults.
type MILPOptions struct {
	// Simplex options used for every LP relaxation.
	Simplex SimplexOptions
	// MaxNodes bounds the number of explored nodes; 0 means 200000.
	MaxNodes int
	// IntTol is the integrality tolerance (default 1e-6).
	IntTol float64
	// DisableRounding turns off the LP-rounding incumbent heuristic.
	DisableRounding bool
	// Cancel, when non-nil, is polled once per branch-and-bound node (and
	// once before a pure-LP dispatch); a non-nil return aborts the solve
	// with that error. Callers plumb context cancellation through it as
	// ctx.Err, so deadline and cancellation semantics survive unwrapped.
	Cancel func() error
	// CutoffObjective, when non-nil, declares that a feasible solution with
	// this objective value is already known (a warm start from a previous
	// solve). Branch and bound then prunes every subtree whose LP bound
	// proves it can only hold strictly worse solutions. The cutoff is
	// exactness-preserving: subtrees that could contain a solution of value
	// <= CutoffObjective are never pruned by it, so the search returns the
	// same incumbent a cold solve finds, just with less work. It is applied
	// only to models with a provably integral objective (all nonzero
	// objective coefficients integral on integer variables) — the
	// card-minimal repair objective is one — and ignored otherwise.
	CutoffObjective *float64
}

func (o MILPOptions) withDefaults() MILPOptions {
	if o.MaxNodes == 0 {
		o.MaxNodes = 200000
	}
	if o.IntTol == 0 {
		o.IntTol = 1e-6
	}
	return o
}

// MILPResult is the outcome of a mixed-integer solve.
type MILPResult struct {
	Status    Status
	Objective float64
	X         []float64
	// Nodes is the number of branch-and-bound nodes explored.
	Nodes int
	// Iterations is the total simplex pivot count across all nodes.
	Iterations int
}

// bbNode is one branch-and-bound subproblem: the model with tightened
// variable bounds, ordered by its parent's LP bound.
type bbNode struct {
	lb, ub []float64
	bound  float64
	depth  int
}

type nodeQueue []*bbNode

func (q nodeQueue) Len() int      { return len(q) }
func (q nodeQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q nodeQueue) Less(i, j int) bool {
	//dartvet:allow floatcmp -- heap ordering needs a total order; fuzzy ties would break the heap invariant
	if q[i].bound != q[j].bound {
		return q[i].bound < q[j].bound
	}
	return q[i].depth > q[j].depth // deeper first among equal bounds
}
func (q *nodeQueue) Push(x any) { *q = append(*q, x.(*bbNode)) }
func (q *nodeQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return it
}

// Solve minimizes the model. Pure LPs are dispatched straight to the
// simplex; models with integer variables go through branch and bound.
func Solve(m *Model, opt MILPOptions) (*MILPResult, error) {
	opt = opt.withDefaults()
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if opt.Cancel != nil {
		if err := opt.Cancel(); err != nil {
			return nil, err
		}
	}
	if !m.HasIntegers() {
		lp, err := SolveLP(m, opt.Simplex)
		if err != nil {
			return nil, err
		}
		return &MILPResult{
			Status: lp.Status, Objective: lp.Objective, X: lp.X,
			Nodes: 1, Iterations: lp.Iterations,
		}, nil
	}
	return branchAndBound(m, opt)
}

// objIsIntegral reports whether every feasible integral assignment yields an
// integral objective: all nonzero objective coefficients are integers and
// sit on integer/binary variables.
func objIsIntegral(m *Model) bool {
	for j, c := range m.obj {
		if c == 0 {
			continue
		}
		//dartvet:allow floatcmp -- exact integrality gates a safe-only bound tightening; false negatives just skip it
		if m.vtype[j] == Continuous || c != math.Trunc(c) {
			return false
		}
	}
	return true
}

func branchAndBound(m *Model, opt MILPOptions) (*MILPResult, error) {
	nv := m.NumVars()
	integral := objIsIntegral(m)

	rootLB := make([]float64, nv)
	rootUB := make([]float64, nv)
	copy(rootLB, m.lb)
	copy(rootUB, m.ub)
	// Tighten integer variable bounds to integral values up front.
	for j := 0; j < nv; j++ {
		if m.vtype[j] != Continuous {
			if !math.IsInf(rootLB[j], -1) {
				rootLB[j] = math.Ceil(rootLB[j] - opt.IntTol)
			}
			if !math.IsInf(rootUB[j], 1) {
				rootUB[j] = math.Floor(rootUB[j] + opt.IntTol)
			}
		}
	}

	res := &MILPResult{Status: StatusInfeasible}
	incumbent := math.Inf(1)
	var incumbentX []float64

	strengthen := func(b float64) float64 {
		if integral {
			return math.Ceil(b - 1e-6)
		}
		return b
	}

	// A known-feasible objective value lets us discard subtrees that can only
	// contain solutions of value >= cutoff+1; subtrees that may still hold a
	// solution of value <= cutoff survive, keeping the search exact.
	cutoff := math.Inf(1)
	if opt.CutoffObjective != nil && integral {
		cutoff = *opt.CutoffObjective + 1
	}
	pruned := func(b float64) bool {
		sb := strengthen(b)
		return sb >= incumbent-1e-9 || sb >= cutoff-1e-9
	}

	queue := &nodeQueue{{lb: rootLB, ub: rootUB, bound: math.Inf(-1)}}
	heap.Init(queue)

	for queue.Len() > 0 {
		if opt.Cancel != nil {
			if err := opt.Cancel(); err != nil {
				return nil, err
			}
		}
		if res.Nodes >= opt.MaxNodes {
			res.Status = StatusIterLimit
			break
		}
		node := heap.Pop(queue).(*bbNode)
		if pruned(node.bound) {
			continue // pruned by a bound discovered after the node was queued
		}
		res.Nodes++
		lp, err := solveLPWithBounds(m, opt.Simplex, node.lb, node.ub)
		if err != nil {
			return nil, err
		}
		res.Iterations += lp.Iterations
		switch lp.Status {
		case StatusInfeasible:
			continue
		case StatusUnbounded:
			if node.depth == 0 && math.IsInf(incumbent, 1) {
				// The relaxation is unbounded at the root: report it.
				return &MILPResult{Status: StatusUnbounded, Nodes: res.Nodes, Iterations: res.Iterations}, nil
			}
			continue
		case StatusIterLimit:
			res.Status = StatusIterLimit
			continue
		}
		if pruned(lp.Objective) {
			continue
		}
		frac := mostFractional(m, lp.X, opt.IntTol)
		if frac < 0 {
			// Integral within tolerance. Guard against the big-M pathology:
			// an indicator variable can sit at |y|/M below the tolerance,
			// making the rounded point infeasible. Accept the incumbent only
			// when its rounding verifies; otherwise branch on the largest
			// sub-tolerance deviation (an exact split: its floor and ceil
			// differ, so both children genuinely restrict the variable).
			cand := roundIntegers(m, lp.X, opt.IntTol)
			if CheckFeasible(m, cand, opt.IntTol*10) == nil {
				if lp.Objective < incumbent-1e-9 {
					incumbent = lp.Objective
					incumbentX = cand
				}
				continue
			}
			frac = mostFractional(m, lp.X, 1e-15)
			if frac < 0 {
				// Exactly integral yet rounding-infeasible cannot happen;
				// treat defensively as a numerical dead end.
				continue
			}
		}
		if !opt.DisableRounding && math.IsInf(incumbent, 1) && node.depth == 0 {
			if obj, x, ok := roundingHeuristic(m, opt, lp.X, node.lb, node.ub); ok && obj < incumbent-1e-9 {
				incumbent = obj
				incumbentX = x
			}
		}
		// Branch on the fractional variable.
		xv := lp.X[frac]
		down := &bbNode{lb: node.lb, ub: cloneWith(node.ub, frac, math.Floor(xv)), bound: lp.Objective, depth: node.depth + 1}
		up := &bbNode{lb: cloneWith(node.lb, frac, math.Ceil(xv)), ub: node.ub, bound: lp.Objective, depth: node.depth + 1}
		if down.ub[frac] >= down.lb[frac]-1e-12 {
			heap.Push(queue, down)
		}
		if up.lb[frac] <= up.ub[frac]+1e-12 {
			heap.Push(queue, up)
		}
	}

	if incumbentX != nil {
		if res.Status != StatusIterLimit {
			res.Status = StatusOptimal
		}
		res.Objective = incumbent
		res.X = incumbentX
	}
	return res, nil
}

// cloneWith copies bounds and sets index i to v.
func cloneWith(b []float64, i int, v float64) []float64 {
	c := make([]float64, len(b))
	copy(c, b)
	c[i] = v
	return c
}

// mostFractional returns the integer variable whose LP value is farthest
// from integral (closest to x.5), or -1 when all are integral within tol.
func mostFractional(m *Model, x []float64, tol float64) int {
	best, bestDist := -1, tol
	for j := range x {
		if m.vtype[j] == Continuous {
			continue
		}
		//dartvet:allow floatcmp -- bestDist is seeded with the integrality tolerance, so the comparison is already fuzzed
		if d := math.Abs(x[j] - math.Round(x[j])); d > bestDist {
			best, bestDist = j, d
		}
	}
	return best
}

// roundIntegers snaps near-integral integer variables exactly.
func roundIntegers(m *Model, x []float64, tol float64) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	for j := range out {
		if m.vtype[j] != Continuous {
			r := math.Round(out[j])
			if math.Abs(out[j]-r) <= tol*10 {
				out[j] = r
			}
		}
	}
	return out
}

// roundingHeuristic fixes every integer variable to the rounding of its LP
// value (clamped into the node bounds) and re-solves the continuous
// remainder, producing an early incumbent when the fixing stays feasible.
func roundingHeuristic(m *Model, opt MILPOptions, x []float64, lb, ub []float64) (float64, []float64, bool) {
	hlb := make([]float64, len(lb))
	hub := make([]float64, len(ub))
	copy(hlb, lb)
	copy(hub, ub)
	for j := range x {
		if m.vtype[j] == Continuous {
			continue
		}
		v := math.Round(x[j])
		// Round indicator-style variables up rather than to nearest: for
		// big-M formulations the LP drives them artificially low.
		//dartvet:allow floatcmp -- v < x[j] tests the rounding direction, not a magnitude
		if x[j] > opt.IntTol*100 && v < x[j] {
			v = math.Ceil(x[j] - opt.IntTol)
		}
		v = math.Max(v, hlb[j])
		v = math.Min(v, hub[j])
		hlb[j], hub[j] = v, v
	}
	lp, err := solveLPWithBounds(m, opt.Simplex, hlb, hub)
	if err != nil || lp.Status != StatusOptimal {
		return 0, nil, false
	}
	return lp.Objective, roundIntegers(m, lp.X, opt.IntTol), true
}

// CheckFeasible verifies that x satisfies every constraint and bound of the
// model within tol, returning a descriptive error for the first violation.
// It is used by tests and by the repair module as a safety net.
func CheckFeasible(m *Model, x []float64, tol float64) error {
	if len(x) != m.NumVars() {
		return fmt.Errorf("milp: solution has %d values, model has %d variables", len(x), m.NumVars())
	}
	for j := range x {
		if x[j] < m.lb[j]-tol || x[j] > m.ub[j]+tol {
			return fmt.Errorf("milp: variable %s = %v outside bounds [%v, %v]",
				m.names[j], x[j], m.lb[j], m.ub[j])
		}
		if m.vtype[j] != Continuous {
			if math.Abs(x[j]-math.Round(x[j])) > tol {
				return fmt.Errorf("milp: variable %s = %v is not integral", m.names[j], x[j])
			}
		}
	}
	for _, r := range m.rows {
		act := 0.0
		for _, t := range r.Terms {
			act += t.Coeff * x[t.Var]
		}
		scale := 1.0 + math.Abs(r.RHS)
		switch r.Rel {
		case LE:
			if act > r.RHS+tol*scale {
				return fmt.Errorf("milp: constraint %q violated: %v > %v", r.Name, act, r.RHS)
			}
		case GE:
			if act < r.RHS-tol*scale {
				return fmt.Errorf("milp: constraint %q violated: %v < %v", r.Name, act, r.RHS)
			}
		case EQ:
			if math.Abs(act-r.RHS) > tol*scale {
				return fmt.Errorf("milp: constraint %q violated: %v != %v", r.Name, act, r.RHS)
			}
		}
	}
	return nil
}
