package milp

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"dart/internal/obs"
)

// MILPOptions tunes the branch-and-bound search. The zero value selects
// defaults.
type MILPOptions struct {
	// Simplex options used for every LP relaxation.
	Simplex SimplexOptions
	// MaxNodes bounds the number of explored nodes; 0 means 200000.
	MaxNodes int
	// IntTol is the integrality tolerance (default 1e-6).
	IntTol float64
	// DisableRounding turns off the LP-rounding incumbent heuristic.
	DisableRounding bool
	// Workers is the number of branch-and-bound workers pulling nodes from
	// the shared best-first frontier; 0 means GOMAXPROCS, 1 solves
	// sequentially (inline, no goroutines). Worker count never changes the
	// result of a completed search: incumbent ties resolve by a
	// deterministic node-sequence rule, so parallel and sequential solves
	// return the same status, objective, and solution (see parallel.go for
	// the argument; node and iteration COUNTS do vary with scheduling).
	Workers int
	// Cancel, when non-nil, is polled once per branch-and-bound node (and
	// once before a pure-LP dispatch); a non-nil return aborts the solve
	// with that error. Callers plumb context cancellation through it as
	// ctx.Err, so deadline and cancellation semantics survive unwrapped.
	// With more than one worker the hook is called concurrently and must be
	// goroutine-safe (ctx.Err is).
	Cancel func() error
	// CutoffObjective, when non-nil, declares that a feasible solution with
	// this objective value is already known (a warm start from a previous
	// solve). Branch and bound then prunes every subtree whose LP bound
	// proves it can only hold strictly worse solutions. The cutoff is
	// exactness-preserving: subtrees that could contain a solution of value
	// <= CutoffObjective are never pruned by it, so the search returns the
	// same incumbent a cold solve finds, just with less work. It is applied
	// only to models with a provably integral objective (all nonzero
	// objective coefficients integral on integer variables) — the
	// card-minimal repair objective is one — and ignored otherwise.
	CutoffObjective *float64
	// Trace, when non-nil, is the parent span the search attaches its
	// observability to: one "milp.worker" child span per worker (node and
	// LP-iteration counts) plus "incumbent" events on every incumbent
	// replacement and a "cutoff" event when a warm-start cutoff is armed.
	// When the span's trace is additionally bound to a live telemetry bus
	// (obs.Span.Live), the search publishes a solver event timeline —
	// incumbent / periodic progress / done, each with the bound, a monotone
	// non-increasing optimality gap, and node throughput (see progress.go).
	// Purely observational — it never changes results and never enters
	// solver fingerprints; a nil Trace costs only nil checks.
	Trace *obs.Span
}

func (o MILPOptions) withDefaults() MILPOptions {
	if o.MaxNodes == 0 {
		o.MaxNodes = 200000
	}
	if o.IntTol == 0 {
		o.IntTol = 1e-6
	}
	return o
}

// workerCount resolves the configured worker count.
func (o MILPOptions) workerCount() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// MILPResult is the outcome of a mixed-integer solve.
type MILPResult struct {
	Status    Status
	Objective float64
	X         []float64
	// Nodes is the number of branch-and-bound nodes explored. Under
	// parallel search the count depends on scheduling (stale incumbents
	// under-prune), so it is reproducible only with Workers == 1.
	Nodes int
	// Iterations is the total simplex pivot count across all nodes; like
	// Nodes it is schedule-dependent when solving in parallel.
	Iterations int
}

// bbNode is one branch-and-bound subproblem. Instead of cloning full bound
// vectors, a node records the single bound its branch tightened; effective
// bounds are materialized by walking the parent chain root-to-leaf into
// worker-local arrays (deeper deltas override shallower ones).
//
// seq is the node's position in the branch tree, independent of exploration
// order: "" for the root, parent.seq+"0" for the down child, parent.seq+"1"
// for the up child. The tree itself is a function of (model, options) only
// — every node's LP relaxation and branching variable are deterministic —
// so lexicographic order on seq ranks nodes identically in every schedule.
// That rank breaks incumbent ties, which is what makes parallel solves
// return the same answer as sequential ones.
type bbNode struct {
	parent    *bbNode
	branchVar int
	branchVal float64
	branchUB  bool // the delta tightens the upper bound (down branch)
	bound     float64
	depth     int
	seq       string
}

// bbNodePool recycles leaf nodes: a node popped as pruned, or expanded
// without pushing children, is referenced by nobody (children hold the only
// parent references) and goes back to the pool.
var bbNodePool = sync.Pool{New: func() any { return new(bbNode) }}

func newNode(parent *bbNode, branchVar int, branchVal float64, branchUB bool, bound float64, seq string) *bbNode {
	n := bbNodePool.Get().(*bbNode)
	*n = bbNode{
		parent: parent, branchVar: branchVar, branchVal: branchVal, branchUB: branchUB,
		bound: bound, depth: parent.depth + 1, seq: seq,
	}
	return n
}

func releaseNode(n *bbNode) {
	*n = bbNode{} // drop the parent-chain and seq references for the GC
	bbNodePool.Put(n)
}

type nodeQueue []*bbNode

func (q nodeQueue) Len() int      { return len(q) }
func (q nodeQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q nodeQueue) Less(i, j int) bool {
	//dartvet:allow floatcmp -- heap ordering needs a total order; fuzzy ties would break the heap invariant
	if q[i].bound != q[j].bound {
		return q[i].bound < q[j].bound
	}
	if q[i].depth != q[j].depth {
		return q[i].depth > q[j].depth // deeper first among equal bounds
	}
	return q[i].seq < q[j].seq // schedule-independent total order
}
func (q *nodeQueue) Push(x any) { *q = append(*q, x.(*bbNode)) }
func (q *nodeQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return it
}

// Solve minimizes the model. Pure LPs are dispatched straight to the
// simplex; models with integer variables go through branch and bound.
func Solve(m *Model, opt MILPOptions) (*MILPResult, error) {
	opt = opt.withDefaults()
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if opt.Cancel != nil {
		if err := opt.Cancel(); err != nil {
			return nil, err
		}
	}
	if !m.HasIntegers() {
		lp, err := SolveLP(m, opt.Simplex)
		if err != nil {
			return nil, err
		}
		return &MILPResult{
			Status: lp.Status, Objective: lp.Objective, X: lp.X,
			Nodes: 1, Iterations: lp.Iterations,
		}, nil
	}
	return branchAndBound(m, opt)
}

// objIsIntegral reports whether every feasible integral assignment yields an
// integral objective: all nonzero objective coefficients are integers and
// sit on integer/binary variables.
func objIsIntegral(m *Model) bool {
	for j, c := range m.obj {
		if c == 0 {
			continue
		}
		//dartvet:allow floatcmp -- exact integrality gates a safe-only bound tightening; false negatives just skip it
		if m.vtype[j] == Continuous || c != math.Trunc(c) {
			return false
		}
	}
	return true
}

// branchAndBound runs the (possibly parallel) best-first search: it builds
// the shared read-only problem description plus the mutex-guarded search
// state, seeds the frontier with the root, and lets Workers workers drain
// it. Workers == 1 runs the same worker loop inline.
func branchAndBound(m *Model, opt MILPOptions) (*MILPResult, error) {
	nv := m.NumVars()

	rootLB := make([]float64, nv)
	rootUB := make([]float64, nv)
	copy(rootLB, m.lb)
	copy(rootUB, m.ub)
	// Tighten integer variable bounds to integral values up front.
	for j := 0; j < nv; j++ {
		if m.vtype[j] != Continuous {
			if !math.IsInf(rootLB[j], -1) {
				rootLB[j] = math.Ceil(rootLB[j] - opt.IntTol)
			}
			if !math.IsInf(rootUB[j], 1) {
				rootUB[j] = math.Floor(rootUB[j] + opt.IntTol)
			}
		}
	}

	integral := objIsIntegral(m)
	// A known-feasible objective value lets us discard subtrees that can only
	// contain solutions of value >= cutoff+1; subtrees that may still hold a
	// solution of value <= cutoff survive, keeping the search exact.
	cutoff := math.Inf(1)
	if opt.CutoffObjective != nil && integral {
		cutoff = *opt.CutoffObjective + 1
		opt.Trace.EventFloat("cutoff", "objective", *opt.CutoffObjective)
	}

	p := &bbProblem{
		m:        m,
		cs:       buildCSR(m),
		opt:      opt,
		integral: integral,
		cutoff:   cutoff,
		rootLB:   rootLB,
		rootUB:   rootUB,
	}
	sh := newBBShared(&bbNode{bound: math.Inf(-1)})
	nw := opt.workerCount()
	if opt.Trace.IsLive() {
		// Live telemetry is armed once per solve; a solve whose trace is
		// not bus-bound leaves sh.prog nil and pays nothing per node.
		sh.prog = newBBSearchProgress(opt.Trace, nw)
	}

	if nw <= 1 {
		p.runWorker(sh, 0)
	} else {
		var wg sync.WaitGroup
		for w := 0; w < nw; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				p.runWorker(sh, w)
			}(w)
		}
		wg.Wait()
	}
	res, err := sh.result()
	if sh.prog != nil && err == nil {
		sh.publishDone(p, res)
	}
	return res, err
}

// candidateObjective is the objective value committed for a feasible
// integral candidate. With a provably integral objective it is recomputed
// exactly from the candidate point and rounded to the nearest integer,
// which makes it schedule-independent: every worker that reaches an optimal
// candidate commits the identical float, so incumbent ties are exact and
// the deterministic sequence tie-break decides. Otherwise the LP objective
// is used as before.
func candidateObjective(m *Model, x []float64, lpObj float64, integral bool) float64 {
	if !integral {
		return lpObj
	}
	z := 0.0
	for j, c := range m.obj {
		if c != 0 {
			z += c * x[j]
		}
	}
	return math.Round(z)
}

// mostFractional returns the integer variable whose LP value is farthest
// from integral (closest to x.5), or -1 when all are integral within tol.
func mostFractional(m *Model, x []float64, tol float64) int {
	best, bestDist := -1, tol
	for j := range x {
		if m.vtype[j] == Continuous {
			continue
		}
		//dartvet:allow floatcmp -- bestDist is seeded with the integrality tolerance, so the comparison is already fuzzed
		if d := math.Abs(x[j] - math.Round(x[j])); d > bestDist {
			best, bestDist = j, d
		}
	}
	return best
}

// roundIntegersInto snaps near-integral integer variables exactly, writing
// the result into dst (len(dst) == len(x)) without allocating.
func roundIntegersInto(dst []float64, m *Model, x []float64, tol float64) {
	copy(dst, x)
	for j := range dst {
		if m.vtype[j] != Continuous {
			r := math.Round(dst[j])
			if math.Abs(dst[j]-r) <= tol*10 {
				dst[j] = r
			}
		}
	}
}

// roundIntegers snaps near-integral integer variables exactly.
func roundIntegers(m *Model, x []float64, tol float64) []float64 {
	out := make([]float64, len(x))
	roundIntegersInto(out, m, x, tol)
	return out
}

// roundingHeuristic fixes every integer variable to the rounding of its LP
// value (clamped into the node bounds) and re-solves the continuous
// remainder, producing an early incumbent when the fixing stays feasible.
func roundingHeuristic(m *Model, opt MILPOptions, x []float64, lb, ub []float64) (float64, []float64, bool) {
	hlb := make([]float64, len(lb))
	hub := make([]float64, len(ub))
	copy(hlb, lb)
	copy(hub, ub)
	for j := range x {
		if m.vtype[j] == Continuous {
			continue
		}
		v := math.Round(x[j])
		// Round indicator-style variables up rather than to nearest: for
		// big-M formulations the LP drives them artificially low.
		//dartvet:allow floatcmp -- v < x[j] tests the rounding direction, not a magnitude
		if x[j] > opt.IntTol*100 && v < x[j] {
			v = math.Ceil(x[j] - opt.IntTol)
		}
		v = math.Max(v, hlb[j])
		v = math.Min(v, hub[j])
		hlb[j], hub[j] = v, v
	}
	lp, err := solveLPWithBounds(m, opt.Simplex, hlb, hub)
	if err != nil || lp.Status != StatusOptimal {
		return 0, nil, false
	}
	return lp.Objective, roundIntegers(m, lp.X, opt.IntTol), true
}

// CheckFeasible verifies that x satisfies every constraint and bound of the
// model within tol, returning a descriptive error for the first violation.
// It is used by tests and by the repair module as a safety net.
func CheckFeasible(m *Model, x []float64, tol float64) error {
	if len(x) != m.NumVars() {
		return fmt.Errorf("milp: solution has %d values, model has %d variables", len(x), m.NumVars())
	}
	for j := range x {
		if x[j] < m.lb[j]-tol || x[j] > m.ub[j]+tol {
			return fmt.Errorf("milp: variable %s = %v outside bounds [%v, %v]",
				m.names[j], x[j], m.lb[j], m.ub[j])
		}
		if m.vtype[j] != Continuous {
			if math.Abs(x[j]-math.Round(x[j])) > tol {
				return fmt.Errorf("milp: variable %s = %v is not integral", m.names[j], x[j])
			}
		}
	}
	for _, r := range m.rows {
		act := 0.0
		for _, t := range r.Terms {
			act += t.Coeff * x[t.Var]
		}
		scale := 1.0 + math.Abs(r.RHS)
		switch r.Rel {
		case LE:
			if act > r.RHS+tol*scale {
				return fmt.Errorf("milp: constraint %q violated: %v > %v", r.Name, act, r.RHS)
			}
		case GE:
			if act < r.RHS-tol*scale {
				return fmt.Errorf("milp: constraint %q violated: %v < %v", r.Name, act, r.RHS)
			}
		case EQ:
			if math.Abs(act-r.RHS) > tol*scale {
				return fmt.Errorf("milp: constraint %q violated: %v != %v", r.Name, act, r.RHS)
			}
		}
	}
	return nil
}
