package milp

import (
	"math"
	"math/rand"
	"testing"
)

func TestMILPKnapsack(t *testing.T) {
	// max 8a + 11b + 6c + 4d  s.t. 5a + 7b + 4c + 3d <= 14, binary.
	// Optimum: a=b=c=1 (weight 16? no: 5+7+4=16 > 14). Recheck:
	// feasible best is b+c+d = 11+6+4 = 21 at weight 14.
	m := NewModel()
	a := m.AddVar("a", 0, 1, Binary, -8)
	b := m.AddVar("b", 0, 1, Binary, -11)
	c := m.AddVar("c", 0, 1, Binary, -6)
	d := m.AddVar("d", 0, 1, Binary, -4)
	m.MustAddConstraint("w", []Term{{a, 5}, {b, 7}, {c, 4}, {d, 3}}, LE, 14)
	res, err := Solve(m, MILPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusOptimal {
		t.Fatalf("status %v", res.Status)
	}
	approx(t, res.Objective, -21, 1e-6, "objective")
	approx(t, res.X[b], 1, 1e-6, "b")
	approx(t, res.X[c], 1, 1e-6, "c")
	approx(t, res.X[d], 1, 1e-6, "d")
	approx(t, res.X[a], 0, 1e-6, "a")
}

func TestMILPIntegerRounding(t *testing.T) {
	// max x + y s.t. 2x + 3y <= 12, 3x + 2y <= 12, x,y integer >= 0.
	// LP optimum (2.4, 2.4); ILP optimum 4 at e.g. (2,2) (value 4) or (3,1)?
	// (3,1): 2*3+3=9 ok, 3*3+2=11 ok, sum 4. (2,2): 10,10 ok sum 4. ILP obj 4.
	m := NewModel()
	x := m.AddVar("x", 0, math.Inf(1), Integer, -1)
	y := m.AddVar("y", 0, math.Inf(1), Integer, -1)
	m.MustAddConstraint("c1", []Term{{x, 2}, {y, 3}}, LE, 12)
	m.MustAddConstraint("c2", []Term{{x, 3}, {y, 2}}, LE, 12)
	res, err := Solve(m, MILPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusOptimal {
		t.Fatalf("status %v", res.Status)
	}
	approx(t, res.Objective, -4, 1e-6, "objective")
	if err := CheckFeasible(m, res.X, 1e-6); err != nil {
		t.Error(err)
	}
}

func TestMILPInfeasible(t *testing.T) {
	// 2x = 1 with x integer is infeasible.
	m := NewModel()
	x := m.AddVar("x", -10, 10, Integer, 0)
	m.MustAddConstraint("odd", []Term{{x, 2}}, EQ, 1)
	res, err := Solve(m, MILPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusInfeasible {
		t.Fatalf("status %v, want infeasible", res.Status)
	}
}

func TestMILPPureLPDispatch(t *testing.T) {
	m := NewModel()
	x := m.AddVar("x", 0, 5, Continuous, -1)
	res, err := Solve(m, MILPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusOptimal || res.Nodes != 1 {
		t.Fatalf("status %v nodes %d", res.Status, res.Nodes)
	}
	approx(t, res.X[x], 5, 1e-9, "x")
}

func TestMILPMixed(t *testing.T) {
	// min y s.t. y >= x - 2.5, y >= 2.5 - x, x integer in [0,5], y real.
	// Best integer x is 2 or 3 -> y = 0.5.
	m := NewModel()
	x := m.AddVar("x", 0, 5, Integer, 0)
	y := m.AddVar("y", 0, math.Inf(1), Continuous, 1)
	m.MustAddConstraint("a", []Term{{y, 1}, {x, -1}}, GE, -2.5)
	m.MustAddConstraint("b", []Term{{y, 1}, {x, 1}}, GE, 2.5)
	res, err := Solve(m, MILPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusOptimal {
		t.Fatalf("status %v", res.Status)
	}
	approx(t, res.Objective, 0.5, 1e-6, "objective")
}

func TestMILPBigMIndicator(t *testing.T) {
	// The shape of the paper's S*(AC): minimize number of deltas subject to
	// y constrained by big-M indicator rows. One equality forces y1+y2 = 30,
	// so at least one delta must be 1.
	const M = 1e6
	m := NewModel()
	y1 := m.AddVar("y1", -M, M, Continuous, 0)
	y2 := m.AddVar("y2", -M, M, Continuous, 0)
	d1 := m.AddVar("d1", 0, 1, Binary, 1)
	d2 := m.AddVar("d2", 0, 1, Binary, 1)
	m.MustAddConstraint("eq", []Term{{y1, 1}, {y2, 1}}, EQ, 30)
	m.MustAddConstraint("u1", []Term{{y1, 1}, {d1, -M}}, LE, 0)
	m.MustAddConstraint("l1", []Term{{y1, -1}, {d1, -M}}, LE, 0)
	m.MustAddConstraint("u2", []Term{{y2, 1}, {d2, -M}}, LE, 0)
	m.MustAddConstraint("l2", []Term{{y2, -1}, {d2, -M}}, LE, 0)
	res, err := Solve(m, MILPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusOptimal {
		t.Fatalf("status %v", res.Status)
	}
	approx(t, res.Objective, 1, 1e-5, "objective")
}

func TestMILPUnboundedRoot(t *testing.T) {
	m := NewModel()
	x := m.AddVar("x", 0, math.Inf(1), Integer, -1)
	m.MustAddConstraint("weak", []Term{{x, -1}}, LE, 0)
	res, err := Solve(m, MILPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusUnbounded {
		t.Fatalf("status %v, want unbounded", res.Status)
	}
}

// bruteForceILP enumerates all integral assignments of a small model whose
// integer variables have finite bounds, returning the best objective or
// +Inf when infeasible.
func bruteForceILP(m *Model, tol float64) float64 {
	n := m.NumVars()
	x := make([]float64, n)
	best := math.Inf(1)
	var rec func(j int)
	rec = func(j int) {
		if j == n {
			if CheckFeasible(m, x, tol) == nil {
				obj := 0.0
				for i := range x {
					obj += m.obj[i] * x[i]
				}
				if obj < best {
					best = obj
				}
			}
			return
		}
		lo, hi := int(m.lb[j]), int(m.ub[j])
		for v := lo; v <= hi; v++ {
			x[j] = float64(v)
			rec(j + 1)
		}
	}
	rec(0)
	return best
}

func TestMILPMatchesBruteForceRandom(t *testing.T) {
	// Property: on random small pure-integer programs, branch and bound
	// agrees with exhaustive enumeration.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		m := NewModel()
		nv := 2 + rng.Intn(3)
		for j := 0; j < nv; j++ {
			m.AddVar("x", 0, float64(2+rng.Intn(3)), Integer, float64(rng.Intn(11)-5))
		}
		nc := 1 + rng.Intn(3)
		for i := 0; i < nc; i++ {
			terms := make([]Term, nv)
			for j := 0; j < nv; j++ {
				terms[j] = Term{Var(j), float64(rng.Intn(7) - 3)}
			}
			rel := []Rel{LE, GE, EQ}[rng.Intn(3)]
			rhs := float64(rng.Intn(15) - 5)
			m.MustAddConstraint("c", terms, rel, rhs)
		}
		want := bruteForceILP(m, 1e-9)
		res, err := Solve(m, MILPOptions{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if math.IsInf(want, 1) {
			if res.Status != StatusInfeasible {
				t.Errorf("trial %d: solver says %v (obj %v), brute force says infeasible\n%s",
					trial, res.Status, res.Objective, m)
			}
			continue
		}
		if res.Status != StatusOptimal {
			t.Errorf("trial %d: solver says %v, brute force optimum %v\n%s", trial, res.Status, want, m)
			continue
		}
		if math.Abs(res.Objective-want) > 1e-6 {
			t.Errorf("trial %d: solver obj %v, brute force %v\n%s", trial, res.Objective, want, m)
		}
		if err := CheckFeasible(m, res.X, 1e-6); err != nil {
			t.Errorf("trial %d: reported solution infeasible: %v", trial, err)
		}
	}
}

func TestLPFeasibleRegionSamplingProperty(t *testing.T) {
	// Property: for random LPs that have a feasible sampled point, the
	// simplex must not report infeasible, and its optimum must not exceed
	// the sampled point's objective.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 80; trial++ {
		m := NewModel()
		nv := 2 + rng.Intn(4)
		sample := make([]float64, nv)
		for j := 0; j < nv; j++ {
			lo := float64(rng.Intn(5) - 6)
			hi := lo + float64(1+rng.Intn(10))
			m.AddVar("x", lo, hi, Continuous, rng.NormFloat64())
			sample[j] = lo + rng.Float64()*(hi-lo)
		}
		// Build constraints that the sampled point satisfies by construction.
		for i := 0; i < 1+rng.Intn(4); i++ {
			terms := make([]Term, nv)
			act := 0.0
			for j := 0; j < nv; j++ {
				c := rng.NormFloat64()
				terms[j] = Term{Var(j), c}
				act += c * sample[j]
			}
			if rng.Intn(2) == 0 {
				m.MustAddConstraint("le", terms, LE, act+rng.Float64())
			} else {
				m.MustAddConstraint("ge", terms, GE, act-rng.Float64())
			}
		}
		res, err := SolveLP(m, SimplexOptions{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.Status != StatusOptimal {
			t.Errorf("trial %d: status %v for a feasible LP", trial, res.Status)
			continue
		}
		sampleObj := 0.0
		for j := range sample {
			sampleObj += m.obj[j] * sample[j]
		}
		if res.Objective > sampleObj+1e-6 {
			t.Errorf("trial %d: optimum %v worse than known feasible %v", trial, res.Objective, sampleObj)
		}
		if err := CheckFeasible(m, res.X, 1e-6); err != nil {
			t.Errorf("trial %d: %v", trial, err)
		}
	}
}

func TestCheckFeasibleReportsViolations(t *testing.T) {
	m := NewModel()
	x := m.AddVar("x", 0, 1, Integer, 0)
	m.MustAddConstraint("eq", []Term{{x, 1}}, EQ, 1)
	if err := CheckFeasible(m, []float64{0}, 1e-9); err == nil {
		t.Error("violated equality not reported")
	}
	if err := CheckFeasible(m, []float64{0.5}, 1e-9); err == nil {
		t.Error("fractional integer not reported")
	}
	if err := CheckFeasible(m, []float64{2}, 1e-9); err == nil {
		t.Error("bound violation not reported")
	}
	if err := CheckFeasible(m, []float64{1, 2}, 1e-9); err == nil {
		t.Error("length mismatch not reported")
	}
	if err := CheckFeasible(m, []float64{1}, 1e-9); err != nil {
		t.Errorf("feasible point rejected: %v", err)
	}
}

func TestStatusAndTypeStrings(t *testing.T) {
	for s, want := range map[Status]string{
		StatusOptimal: "optimal", StatusInfeasible: "infeasible",
		StatusUnbounded: "unbounded", StatusIterLimit: "iteration-limit",
	} {
		if s.String() != want {
			t.Errorf("Status %d String = %q", s, s.String())
		}
	}
	for v, want := range map[VarType]string{
		Continuous: "continuous", Integer: "integer", Binary: "binary",
	} {
		if v.String() != want {
			t.Errorf("VarType %d String = %q", v, v.String())
		}
	}
	for r, want := range map[Rel]string{LE: "<=", GE: ">=", EQ: "="} {
		if r.String() != want {
			t.Errorf("Rel %d String = %q", r, r.String())
		}
	}
}

// bruteForceMixed enumerates all integral assignments of the integer
// variables (finite bounds required) and solves the continuous remainder
// as an LP, returning the best objective or +Inf.
func bruteForceMixed(t *testing.T, m *Model) float64 {
	t.Helper()
	var intVars []Var
	for j := 0; j < m.NumVars(); j++ {
		if m.Type(Var(j)) != Continuous {
			intVars = append(intVars, Var(j))
		}
	}
	best := math.Inf(1)
	lb := make([]float64, m.NumVars())
	ub := make([]float64, m.NumVars())
	for j := range lb {
		lb[j], ub[j] = m.Bounds(Var(j))
	}
	var rec func(k int)
	rec = func(k int) {
		if k == len(intVars) {
			lp, err := solveLPWithBounds(m, SimplexOptions{}, lb, ub)
			if err != nil {
				t.Fatal(err)
			}
			if lp.Status == StatusOptimal && lp.Objective < best {
				best = lp.Objective
			}
			return
		}
		v := intVars[k]
		l, u := m.Bounds(v)
		for x := int(math.Ceil(l)); x <= int(math.Floor(u)); x++ {
			lb[v], ub[v] = float64(x), float64(x)
			rec(k + 1)
		}
		lb[v], ub[v] = l, u
	}
	rec(0)
	return best
}

func TestMILPMixedMatchesBruteForce(t *testing.T) {
	// Random mixed-integer programs: branch and bound must match exhaustive
	// enumeration of the integer lattice with LP subsolves.
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 40; trial++ {
		m := NewModel()
		nInt := 1 + rng.Intn(2)
		nCont := 1 + rng.Intn(2)
		for j := 0; j < nInt; j++ {
			m.AddVar("i", 0, float64(2+rng.Intn(2)), Integer, float64(rng.Intn(9)-4))
		}
		for j := 0; j < nCont; j++ {
			m.AddVar("c", -3, 5, Continuous, float64(rng.Intn(9)-4)/2)
		}
		for i := 0; i < 1+rng.Intn(3); i++ {
			terms := make([]Term, m.NumVars())
			for j := range terms {
				terms[j] = Term{Var(j), float64(rng.Intn(7) - 3)}
			}
			rel := []Rel{LE, GE, EQ}[rng.Intn(3)]
			m.MustAddConstraint("c", terms, rel, float64(rng.Intn(13)-4))
		}
		want := bruteForceMixed(t, m)
		res, err := Solve(m, MILPOptions{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if math.IsInf(want, 1) {
			if res.Status != StatusInfeasible {
				t.Errorf("trial %d: got %v (obj %v), brute force infeasible\n%s", trial, res.Status, res.Objective, m)
			}
			continue
		}
		if res.Status != StatusOptimal {
			t.Errorf("trial %d: status %v, brute force %v\n%s", trial, res.Status, want, m)
			continue
		}
		if math.Abs(res.Objective-want) > 1e-5 {
			t.Errorf("trial %d: obj %v, brute force %v\n%s", trial, res.Objective, want, m)
		}
	}
}
