package milp

import (
	"math/rand"
	"testing"

	"dart/internal/obs"
)

// liveSolve runs one solve with its trace bound to a fresh bus and returns
// every solver event published during the search, in sequence order.
func liveSolve(t *testing.T, m *Model, opt MILPOptions) (*MILPResult, []obs.Event) {
	t.Helper()
	bus := obs.NewBus(obs.BusConfig{Ring: 4096, Buffer: 4096})
	tr := obs.New(obs.Config{})
	root := tr.StartTrace("job")
	root.Live(bus, "job-test")
	root.PublishScope("component:0")
	sub, _ := bus.Subscribe("test", 4096)
	opt.Trace = root
	res, err := Solve(m, opt)
	if err != nil {
		t.Fatal(err)
	}
	root.End()
	sub.Close()
	if sub.Dropped() > 0 {
		t.Fatalf("test subscriber dropped %d events; grow the buffer", sub.Dropped())
	}
	var events []obs.Event
	for ev := range sub.C() {
		if ev.Kind == obs.KindSolver {
			events = append(events, ev)
		}
	}
	return res, events
}

// TestLiveSolveEventTimeline: a bus-bound solve publishes a solver event
// timeline whose gap never increases and which terminates in exactly one
// "done" event reporting the solve's status — the acceptance criterion for
// SSE consumers watching convergence.
func TestLiveSolveEventTimeline(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	sawIncumbent := false
	for trial := 0; trial < 20; trial++ {
		m := randomIntegerModel(rng.Int63())
		res, events := liveSolve(t, m, MILPOptions{Workers: 4})
		if len(events) == 0 {
			t.Fatalf("trial %d: live solve published no solver events", trial)
		}
		last := events[len(events)-1]
		if last.Name != "done" {
			t.Fatalf("trial %d: final solver event is %q, want done", trial, last.Name)
		}
		if last.State != res.Status.String() {
			t.Fatalf("trial %d: done state %q, want %q", trial, last.State, res.Status)
		}
		prevGap := 1.0
		for i, ev := range events {
			if ev.Gap < 0 || ev.Gap > 1 {
				t.Fatalf("trial %d event %d: gap %v outside [0,1]", trial, i, ev.Gap)
			}
			if ev.Gap > prevGap+1e-12 {
				t.Fatalf("trial %d event %d (%s): gap %v increased from %v",
					trial, i, ev.Name, ev.Gap, prevGap)
			}
			prevGap = ev.Gap
			if ev.Name == "done" && i != len(events)-1 {
				t.Fatalf("trial %d: done event %d is not last of %d", trial, i, len(events))
			}
			if ev.Scope != "component:0" || ev.JobID != "job-test" {
				t.Fatalf("trial %d event %d: stamped %q/%q", trial, i, ev.Scope, ev.JobID)
			}
			if ev.Name == "incumbent" {
				sawIncumbent = true
			}
		}
		if res.Status == StatusOptimal {
			if last.Gap != 0 {
				t.Fatalf("trial %d: optimal solve finished with gap %v, want 0", trial, last.Gap)
			}
			//dartvet:allow floatcmp -- the done event must report the committed incumbent bit-exactly
			if last.Incumbent != res.Objective {
				t.Fatalf("trial %d: done incumbent %v, want objective %v", trial, last.Incumbent, res.Objective)
			}
		}
		if last.Nodes != int64(res.Nodes) {
			t.Fatalf("trial %d: done nodes %d, want %d", trial, last.Nodes, res.Nodes)
		}
	}
	if !sawIncumbent {
		t.Fatal("no trial published an incumbent event")
	}
}

// TestLiveSolveMatchesSilentSolve: telemetry is purely observational — a
// bus-bound solve returns the bit-identical result of an unbound one.
func TestLiveSolveMatchesSilentSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(271))
	for trial := 0; trial < 15; trial++ {
		src := rng.Int63()
		silent, err := Solve(randomIntegerModel(src), MILPOptions{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		live, _ := liveSolve(t, randomIntegerModel(src), MILPOptions{Workers: 4})
		sameResult(t, "live-vs-silent", silent, live)
	}
}

// TestUnboundTraceSkipsTelemetry: a trace that is recorded but never bound
// to a bus must leave the progress subsystem disarmed (sh.prog nil ⇒ no
// per-node telemetry work) and publish nothing.
func TestUnboundTraceSkipsTelemetry(t *testing.T) {
	tr := obs.New(obs.Config{})
	root := tr.StartTrace("job")
	defer root.End()
	if root.IsLive() {
		t.Fatal("unbound trace reports live")
	}
	res, err := Solve(randomIntegerModel(555), MILPOptions{Workers: 2, Trace: root})
	if err != nil {
		t.Fatal(err)
	}
	if res == nil {
		t.Fatal("no result")
	}
}

// TestProgressEventCadence: a node-limited solve long enough to cross the
// periodic threshold publishes interior progress checkpoints, not only the
// terminal event.
func TestProgressEventCadence(t *testing.T) {
	// A model the search cannot finish instantly: max independent-set-like
	// packing with many symmetric binaries.
	m := NewModel()
	n := 14
	for j := 0; j < n; j++ {
		m.AddVar("x", 0, 1, Binary, -1)
	}
	for j := 0; j+2 < n; j++ {
		m.MustAddConstraint("pair", []Term{{Var(j), 1}, {Var(j + 1), 1}, {Var(j + 2), 1}}, LE, 2)
	}
	res, events := liveSolve(t, m, MILPOptions{Workers: 2, DisableRounding: true})
	if res.Nodes < bbProgressEvery {
		t.Skipf("search too easy to exercise cadence: %d nodes", res.Nodes)
	}
	interior := 0
	for _, ev := range events {
		if ev.Name == "progress" {
			interior++
			if ev.NodesPerSec <= 0 {
				t.Fatalf("progress event without throughput: %+v", ev)
			}
		}
	}
	if interior == 0 {
		t.Fatalf("%d-node solve published no periodic progress events", res.Nodes)
	}
}
