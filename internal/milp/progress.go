// Live search-progress telemetry.
//
// When the solve's Trace span is bound to a telemetry bus (obs.Span.Live),
// branch and bound publishes a timeline of solver events through it:
//
//	incumbent  a new best integral solution was committed
//	progress   periodic checkpoint (every bbProgressEvery nodes)
//	done       the search finished, with its terminal status
//
// Each event carries the incumbent objective, the global lower bound, the
// relative optimality gap, the node count, and the node throughput. The
// published gap is monotone non-increasing over the event stream: the
// lower bound counts both the frontier AND the nodes workers are currently
// expanding (activeBound) — best-first order alone makes the frontier
// minimum non-monotone the moment its best node is popped for expansion —
// and the gap is additionally clamped against the last published value,
// since an improving incumbent shrinks the normalizing denominator.
//
// The whole subsystem is gated on one IsLive check at solve start: a
// solve without a live trace allocates nothing here and pays zero
// per-node cost (sh.prog stays nil).
package milp

import (
	"math"
	"time"

	"dart/internal/obs"
)

// bbProgressEvery is the node interval between periodic progress events.
const bbProgressEvery = 64

// bbSearchProgress is the telemetry state of one live solve. activeBound
// and the scalars are guarded by bbShared.mu.
type bbSearchProgress struct {
	span  *obs.Span
	start time.Time
	// activeBound[w] is the LP bound of the node worker w is currently
	// expanding, +Inf while idle. It keeps the published lower bound
	// monotone: the frontier minimum alone jumps upward whenever the best
	// node is popped.
	activeBound []float64
	lastGap     float64 // last published gap; later events never exceed it
	lastNodes   int     // node count at the last periodic publish
}

// newBBSearchProgress arms telemetry for one solve.
func newBBSearchProgress(span *obs.Span, workers int) *bbSearchProgress {
	ab := make([]float64, workers)
	for i := range ab {
		ab[i] = math.Inf(1)
	}
	return &bbSearchProgress{span: span, start: time.Now(), activeBound: ab, lastGap: 1}
}

// progressSnapshot is one solver event captured under bbShared.mu and
// published after the lock is released.
type progressSnapshot struct {
	ok        bool
	name      string // "incumbent" or "progress"
	hasInc    bool
	incumbent float64
	bound     float64
	gap       float64
	nodes     int
	rate      float64
}

// lowerBoundLocked is the strengthened global lower bound: the minimum
// over the frontier and every node currently being expanded. +Inf means
// the search space is exhausted.
func (sh *bbShared) lowerBoundLocked(p *bbProblem) float64 {
	lb := math.Inf(1)
	if len(sh.frontier) > 0 {
		lb = sh.frontier[0].bound // heap root = minimum bound
	}
	for _, b := range sh.prog.activeBound {
		//dartvet:allow floatcmp -- exact min over bounds; a tolerance would only bias the reported gap
		if b < lb {
			lb = b
		}
	}
	return p.strengthen(lb)
}

// progressLocked captures one solver event. The gap is relative —
// (incumbent − lb) / max(|incumbent|, 1) — clamped into [0, 1] and against
// the last published value, so consumers see a monotone non-increasing
// convergence signal.
func (sh *bbShared) progressLocked(p *bbProblem, name string) progressSnapshot {
	snap := progressSnapshot{ok: true, name: name, nodes: sh.nodes}
	lb := sh.lowerBoundLocked(p)
	gap := 1.0
	if sh.inc.ok {
		snap.hasInc = true
		snap.incumbent = sh.inc.obj
		//dartvet:allow floatcmp -- telemetry clamp, not a pruning decision; exactness only affects the displayed gap
		if math.IsInf(lb, 1) || lb > sh.inc.obj {
			// Exhausted (or only worse subtrees remain): the incumbent is
			// the proven optimum.
			lb = sh.inc.obj
		}
		gap = (sh.inc.obj - lb) / math.Max(math.Abs(sh.inc.obj), 1)
	}
	if !math.IsInf(lb, 0) {
		snap.bound = lb
	}
	if gap < 0 {
		gap = 0
	}
	//dartvet:allow floatcmp -- monotonicity clamp against the last published gap; fuzzing would let the gap tick upward
	if gap > sh.prog.lastGap {
		gap = sh.prog.lastGap
	}
	sh.prog.lastGap = gap
	snap.gap = gap
	if el := time.Since(sh.prog.start).Seconds(); el > 0 {
		snap.rate = float64(sh.nodes) / el
	}
	sh.prog.lastNodes = sh.nodes
	return snap
}

// publishSnapshot emits one captured event through the solve's trace
// binding; called without sh.mu held.
func (p *bbProblem) publishSnapshot(snap progressSnapshot) {
	if !snap.ok {
		return
	}
	ev := obs.Event{
		Kind:        obs.KindSolver,
		Name:        snap.name,
		Bound:       snap.bound,
		Gap:         snap.gap,
		Nodes:       int64(snap.nodes),
		NodesPerSec: snap.rate,
	}
	if snap.hasInc {
		ev.Incumbent = snap.incumbent
	}
	p.opt.Trace.Publish(ev)
}

// publishDone emits the terminal solver event after every worker exited.
// A proven-optimal or infeasible search reports gap 0; an interrupted one
// (node/iteration limit, cancellation) reports the last clamped gap.
func (sh *bbShared) publishDone(p *bbProblem, res *MILPResult) {
	sh.mu.Lock()
	gap := sh.prog.lastGap
	rate := 0.0
	if el := time.Since(sh.prog.start).Seconds(); el > 0 {
		rate = float64(sh.nodes) / el
	}
	inc := sh.inc
	sh.mu.Unlock()
	if res.Status == StatusOptimal || res.Status == StatusInfeasible || res.Status == StatusUnbounded {
		gap = 0
	}
	ev := obs.Event{
		Kind:        obs.KindSolver,
		Name:        "done",
		State:       res.Status.String(),
		Gap:         gap,
		Nodes:       int64(res.Nodes),
		NodesPerSec: rate,
	}
	if inc.ok {
		ev.Incumbent = inc.obj
		ev.Bound = inc.obj - gap*math.Max(math.Abs(inc.obj), 1)
	}
	p.opt.Trace.Publish(ev)
}
