// Parallel branch and bound.
//
// The search is split into an immutable problem description (bbProblem) and
// one mutex-guarded shared state (bbShared). Workers loop: pop the best
// frontier node, solve its LP relaxation on a worker-local reusable simplex
// state, then publish everything the node produced — children, an accepted
// or heuristic candidate, a limit flag — under a single lock acquisition.
//
// Exactness under parallelism is free: a stale incumbent only under-prunes,
// so no optimal subtree is ever discarded. Determinism needs one more idea.
// The branch TREE is schedule-independent (each node's LP relaxation and
// branching variable depend only on the node's bounds), so every node has a
// fixed sequence rank (bbNode.seq); what varies between schedules is which
// tree nodes get visited before pruning kicks in. The incumbent rule makes
// the outcome independent of that order:
//
//   - a candidate replaces the incumbent if its objective is strictly
//     better; on ties, LP-verified ("accepted") candidates beat rounding-
//     heuristic ones, and among equals the smaller seq wins;
//   - a node is pruned when its strengthened bound is strictly worse than
//     the incumbent; a TIED node is pruned only against an accepted
//     incumbent with smaller seq, never against a heuristic one.
//
// Let W be the accepted candidate with the minimum (objective, seq) over
// the whole tree. No ancestor a of W is ever pruned: a's strengthened bound
// is at most W's objective (its subtree contains W, and with an integral
// objective the strengthening stays below the attainable optimum), so a
// could only be tie-pruned by an accepted incumbent with seq smaller than
// a.seq <= W.seq — but then that incumbent, not W, would be the minimum.
// Hence W is always discovered and, being the minimum of the replacement
// order, always wins: every completed solve returns W regardless of worker
// count or scheduling. (Searches cut short by MaxNodes or an LP iteration
// limit report StatusIterLimit and stay schedule-dependent; with an exactly
// non-integral objective two distinct optima within the LP tolerance can
// likewise tie unreproducibly — DART's cardinality objectives are integral,
// so the repair path always gets the deterministic case.)
package milp

import (
	"container/heap"
	"math"
	"sync"

	"dart/internal/obs"
)

// bbProblem is the read-only half of a branch-and-bound search, shared by
// all workers without locking: the model, its CSR constraint matrix, the
// resolved options, and the root bounds.
type bbProblem struct {
	m        *Model
	cs       *csrMatrix
	opt      MILPOptions
	integral bool
	cutoff   float64
	rootLB   []float64
	rootUB   []float64
}

// strengthen rounds a subtree's LP bound up to the next attainable
// objective value when the objective is provably integral.
func (p *bbProblem) strengthen(b float64) float64 {
	if p.integral {
		return math.Ceil(b - 1e-6)
	}
	return b
}

// bbIncumbent is the best feasible integral solution published so far.
// accepted distinguishes LP-verified candidates from rounding-heuristic
// ones; see the package comment for how the flag steers tie-breaking.
type bbIncumbent struct {
	ok       bool
	accepted bool
	obj      float64
	seq      string
	x        []float64
}

// bbShared is the mutable half of a search: the best-first frontier, the
// published incumbent, work counters, and termination state. Workers block
// on cond while the frontier is empty but siblings may still publish
// children.
type bbShared struct {
	mu        sync.Mutex
	cond      *sync.Cond
	frontier  nodeQueue
	inc       bbIncumbent
	nodes     int
	iters     int
	active    int  // workers currently expanding a node
	stopped   bool // terminal: exhausted, node limit, cancelled, or failed
	hitLimit  bool // MaxNodes exhausted or an LP hit its iteration limit
	unbounded bool // root relaxation unbounded
	err       error
	prog      *bbSearchProgress // live telemetry; nil unless the trace is bus-bound
}

func newBBShared(root *bbNode) *bbShared {
	sh := &bbShared{frontier: nodeQueue{root}}
	sh.cond = sync.NewCond(&sh.mu)
	return sh
}

// bbWorker is one worker's private scratch: a reusable simplex state plus
// the materialized-bound, solution, and candidate arrays. Everything is
// allocated once per worker, so steady-state node expansion allocates
// nothing beyond the two child nodes (pool-recycled) and their seq strings.
type bbWorker struct {
	s     *simplex
	lb    []float64
	ub    []float64
	x     []float64 // LP solution of the current node
	cand  []float64 // rounded-candidate scratch
	chain []*bbNode // parent-chain scratch for materialize
	span  *obs.Span // per-worker trace span (nil when tracing is off)
	idx   int       // worker index (activeBound slot for live telemetry)
	nodes int       // nodes this worker expanded (trace attribute)
	iters int       // LP pivots this worker performed (trace attribute)
}

// runWorker drains the shared frontier until the search stops. The loop
// polls opt.Cancel once per dequeue (inside next), so cancellation is
// honored at node granularity exactly like the sequential solver.
func (p *bbProblem) runWorker(sh *bbShared, idx int) {
	nv := p.m.NumVars()
	w := &bbWorker{
		s:    acquireSimplex(),
		lb:   make([]float64, nv),
		ub:   make([]float64, nv),
		x:    make([]float64, nv),
		cand: make([]float64, nv),
		span: p.opt.Trace.StartChild("milp.worker"),
		idx:  idx,
	}
	defer releaseSimplex(w.s)
	if w.span != nil {
		w.span.SetInt("worker", idx)
		defer func() {
			w.span.SetInt("nodes", w.nodes)
			w.span.SetInt("lp_iterations", w.iters)
			w.span.End()
		}()
	}
	first := true
	for {
		node, noInc := sh.next(p, w.idx)
		if node == nil {
			return
		}
		// Try the rounding heuristic at the root and on this worker's first
		// node while no incumbent exists: late-joining workers seed an early
		// bound for their subtree instead of waiting for the root's.
		tryHeur := !p.opt.DisableRounding && (node.depth == 0 || (first && noInc))
		first = false
		w.nodes++
		p.expand(sh, w, node, tryHeur)
	}
}

// publish commits one node outcome to the shared state and records an
// "incumbent" event on the worker's span when the outcome replaced the
// incumbent. Kept out of complete so the span work — and any live
// telemetry event captured under the lock — happens outside sh.mu.
func (p *bbProblem) publish(sh *bbShared, w *bbWorker, out nodeOutcome) {
	w.iters += out.iters
	out.worker = w.idx
	obj, improved, snap := sh.complete(p, out)
	if improved && w.span != nil {
		w.span.EventFloat("incumbent", "objective", obj)
	}
	p.publishSnapshot(snap)
}

// materialize reconstructs node's effective bounds into the worker arrays
// by replaying branch deltas root-to-leaf (deeper deltas tighten shallower
// ones).
func (p *bbProblem) materialize(node *bbNode, w *bbWorker) {
	copy(w.lb, p.rootLB)
	copy(w.ub, p.rootUB)
	w.chain = w.chain[:0]
	for n := node; n.parent != nil; n = n.parent {
		w.chain = append(w.chain, n)
	}
	for i := len(w.chain) - 1; i >= 0; i-- {
		n := w.chain[i]
		if n.branchUB {
			w.ub[n.branchVar] = n.branchVal
		} else {
			w.lb[n.branchVar] = n.branchVal
		}
	}
}

// nodeOutcome is everything one node expansion wants to publish, applied
// under a single lock acquisition in bbShared.complete.
type nodeOutcome struct {
	iters     int
	worker    int // publishing worker's activeBound slot
	node      *bbNode
	down, up  *bbNode // children to enqueue (nil = none)
	cand      bool    // accepted candidate present
	candObj   float64
	candX     []float64 // worker scratch; copied under the lock on acceptance
	heur      bool      // heuristic candidate present
	heurObj   float64
	heurX     []float64 // heuristic-owned allocation; stored directly
	iterLimit bool
	unbounded bool
	err       error
}

// expand solves one node's LP relaxation and publishes the outcome.
func (p *bbProblem) expand(sh *bbShared, w *bbWorker, node *bbNode, tryHeur bool) {
	p.materialize(node, w)
	w.s.reset(p.m, p.cs, p.opt.Simplex, w.lb, w.ub)
	st, err := w.s.run()
	out := nodeOutcome{iters: w.s.iters, node: node, err: err}
	if err != nil {
		p.publish(sh, w, out)
		return
	}
	switch st {
	case StatusInfeasible:
		p.publish(sh, w, out)
		return
	case StatusUnbounded:
		// Unbounded below a bounded root cannot happen; at the root it
		// decides the whole solve. Deeper nodes die defensively.
		out.unbounded = node.depth == 0
		p.publish(sh, w, out)
		return
	case StatusIterLimit:
		out.iterLimit = true
		p.publish(sh, w, out)
		return
	}
	obj := w.s.objective()
	w.s.fillSolution(w.x)

	frac := mostFractional(p.m, w.x, p.opt.IntTol)
	if frac < 0 {
		// Integral within tolerance. Guard against the big-M pathology:
		// an indicator variable can sit at |y|/M below the tolerance,
		// making the rounded point infeasible. Commit the candidate only
		// when its rounding verifies; otherwise branch on the largest
		// sub-tolerance deviation (an exact split: its floor and ceil
		// differ, so both children genuinely restrict the variable).
		roundIntegersInto(w.cand, p.m, w.x, p.opt.IntTol)
		if CheckFeasible(p.m, w.cand, p.opt.IntTol*10) == nil {
			out.cand = true
			out.candObj = candidateObjective(p.m, w.cand, obj, p.integral)
			out.candX = w.cand
			p.publish(sh, w, out)
			return
		}
		frac = mostFractional(p.m, w.x, 1e-15)
		if frac < 0 {
			// Exactly integral yet rounding-infeasible cannot happen;
			// treat defensively as a numerical dead end.
			p.publish(sh, w, out)
			return
		}
	}

	if tryHeur {
		if hobj, hx, ok := roundingHeuristic(p.m, p.opt, w.x, w.lb, w.ub); ok {
			out.heur = true
			out.heurObj = candidateObjective(p.m, hx, hobj, p.integral)
			out.heurX = hx
		}
	}

	// Branch on the fractional variable; a child whose tightened bound
	// empties the variable's domain is dropped outright.
	xv := w.x[frac]
	if down := math.Floor(xv); down >= w.lb[frac]-1e-12 {
		out.down = newNode(node, frac, down, true, obj, node.seq+"0")
	}
	if up := math.Ceil(xv); up <= w.ub[frac]+1e-12 {
		out.up = newNode(node, frac, up, false, obj, node.seq+"1")
	}
	p.publish(sh, w, out)
}

// next blocks until a frontier node is available or the search is over. It
// returns the popped node plus whether no incumbent existed at pop time
// (the trigger for a worker's first-node heuristic attempt); a nil node
// tells the worker to exit. Pops re-check pruning against the newest
// incumbent, count the node, and mark the worker active so idle siblings
// keep waiting for the children it may publish.
func (sh *bbShared) next(p *bbProblem, idx int) (node *bbNode, noIncumbent bool) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for {
		if sh.stopped {
			return nil, false
		}
		if p.opt.Cancel != nil {
			if err := p.opt.Cancel(); err != nil {
				sh.err = err
				sh.stopLocked()
				return nil, false
			}
		}
		if len(sh.frontier) > 0 {
			if sh.nodes >= p.opt.MaxNodes {
				sh.hitLimit = true
				sh.stopLocked()
				return nil, false
			}
			n := heap.Pop(&sh.frontier).(*bbNode)
			if sh.prunedLocked(p, n.bound, n.seq) {
				releaseNode(n) // pruned before expansion: nobody references it
				continue
			}
			sh.nodes++
			sh.active++
			if sh.prog != nil {
				// The node leaves the frontier but its bound must keep
				// holding the global lower bound down until it completes.
				sh.prog.activeBound[idx] = n.bound
			}
			return n, !sh.inc.ok
		}
		if sh.active == 0 {
			sh.stopLocked()
			return nil, false
		}
		sh.cond.Wait()
	}
}

// stopLocked marks the search terminal and wakes every waiting worker.
func (sh *bbShared) stopLocked() {
	sh.stopped = true
	sh.cond.Broadcast()
}

// prunedLocked reports whether a subtree with LP bound b and sequence rank
// seq can be discarded. Strictly worse strengthened bounds always prune
// (against the incumbent and the warm-start cutoff). A TIED bound prunes
// only against an accepted incumbent with a smaller rank: pruning a tied
// node with a smaller rank could hide the deterministic winner, and
// heuristic incumbents never tie-prune because the accepted solution they
// would suppress is exactly the one the tie rule must find. A stale (not
// yet published) incumbent only under-prunes: cost, never exactness.
func (sh *bbShared) prunedLocked(p *bbProblem, b float64, seq string) bool {
	sb := p.strengthen(b)
	if sb >= p.cutoff-1e-9 {
		return true
	}
	if !sh.inc.ok {
		return false
	}
	if sb > sh.inc.obj+1e-9 {
		return true
	}
	if sb < sh.inc.obj-1e-9 {
		return false
	}
	return sh.inc.accepted && seq > sh.inc.seq
}

// betterLocked reports whether a candidate (obj, accepted, seq) replaces
// the current incumbent: strictly better objective wins; on ties an
// accepted candidate beats a heuristic one, and among equals the smaller
// sequence rank wins. The rule is a total order, so the final incumbent is
// the minimum over every candidate ever published — independent of
// publication order, hence of the worker schedule.
func (sh *bbShared) betterLocked(obj float64, accepted bool, seq string) bool {
	if !sh.inc.ok {
		return true
	}
	if obj < sh.inc.obj-1e-9 {
		return true
	}
	if obj > sh.inc.obj+1e-9 {
		return false
	}
	if accepted != sh.inc.accepted {
		return accepted
	}
	return seq < sh.inc.seq
}

// complete publishes one expanded node's outcome: accumulate counters,
// offer candidates to the incumbent, enqueue surviving children, recycle
// dead nodes, and update termination state — one lock acquisition per node.
// It reports whether the outcome replaced the incumbent, and with what
// objective, so publish can record the event without holding sh.mu; on a
// live solve it also captures the telemetry snapshot publish emits after
// releasing the lock.
func (sh *bbShared) complete(p *bbProblem, out nodeOutcome) (incObj float64, improved bool, snap progressSnapshot) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.iters += out.iters
	sh.active--
	defer sh.cond.Broadcast()

	if out.err != nil {
		if sh.err == nil {
			sh.err = out.err
		}
		sh.stopped = true
		return 0, false, snap
	}
	if out.unbounded && !sh.inc.ok {
		sh.unbounded = true
		sh.stopped = true
		return 0, false, snap
	}
	if out.iterLimit {
		sh.hitLimit = true
	}
	if out.cand && sh.betterLocked(out.candObj, true, out.node.seq) {
		// Copy out of the worker's scratch; reuse the previous incumbent's
		// array when one exists.
		sh.inc = bbIncumbent{
			ok: true, accepted: true, obj: out.candObj, seq: out.node.seq,
			x: append(sh.inc.x[:0], out.candX...),
		}
		incObj, improved = out.candObj, true
	}
	if out.heur && sh.betterLocked(out.heurObj, false, out.node.seq) {
		sh.inc = bbIncumbent{ok: true, accepted: false, obj: out.heurObj, seq: out.node.seq, x: out.heurX}
		incObj, improved = out.heurObj, true
	}
	childKept := false
	for _, child := range [2]*bbNode{out.down, out.up} {
		if child == nil {
			continue
		}
		// Pruning here is an optimization only (pops re-check): pruning is
		// monotone in the incumbent order, so a child pruned now would also
		// be pruned at pop time.
		if sh.prunedLocked(p, child.bound, child.seq) {
			releaseNode(child)
			continue
		}
		heap.Push(&sh.frontier, child)
		childKept = true
	}
	if !childKept && out.down == nil && out.up == nil {
		// A true leaf: no surviving child ever held a parent reference, so
		// the node can be pooled. (When children were created but pruned at
		// push, they are already released; the node itself is still safe to
		// recycle only if none of them was pushed — covered by childKept —
		// but a released child has dropped its parent pointer, so recycling
		// is safe in that case too.)
		releaseNode(out.node)
	} else if !childKept {
		releaseNode(out.node)
	}
	if sh.active == 0 && len(sh.frontier) == 0 {
		sh.stopped = true
	}
	if sh.prog != nil {
		// This worker's node is fully accounted: its surviving children are
		// on the frontier, so its bound no longer holds the lower bound.
		sh.prog.activeBound[out.worker] = math.Inf(1)
		switch {
		case improved:
			snap = sh.progressLocked(p, "incumbent")
		case sh.nodes-sh.prog.lastNodes >= bbProgressEvery:
			snap = sh.progressLocked(p, "progress")
		}
	}
	return incObj, improved, snap
}

// result assembles the MILPResult after every worker has exited, matching
// the sequential solver's status semantics exactly.
func (sh *bbShared) result() (*MILPResult, error) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.err != nil {
		return nil, sh.err
	}
	res := &MILPResult{Nodes: sh.nodes, Iterations: sh.iters}
	if sh.unbounded {
		res.Status = StatusUnbounded
		return res, nil
	}
	res.Status = StatusInfeasible
	if sh.hitLimit {
		res.Status = StatusIterLimit
	}
	if sh.inc.ok {
		if !sh.hitLimit {
			res.Status = StatusOptimal
		}
		res.Objective = sh.inc.obj
		res.X = append([]float64(nil), sh.inc.x...)
	}
	return res, nil
}
