package milp

import (
	"errors"
	"math"
	"math/rand"
	"sync/atomic"
	"testing"
)

// randomIntegerModel builds a reproducible random integer program with
// integral objective coefficients (the deterministic-parallelism case).
func randomIntegerModel(src int64) *Model {
	r := rand.New(rand.NewSource(src))
	m := NewModel()
	nv := 3 + r.Intn(4)
	for j := 0; j < nv; j++ {
		m.AddVar("x", 0, float64(1+r.Intn(4)), Integer, float64(r.Intn(13)-6))
	}
	nc := 2 + r.Intn(3)
	for i := 0; i < nc; i++ {
		terms := make([]Term, nv)
		for j := 0; j < nv; j++ {
			terms[j] = Term{Var(j), float64(r.Intn(9) - 4)}
		}
		rel := []Rel{LE, GE, EQ}[r.Intn(3)]
		m.MustAddConstraint("c", terms, rel, float64(r.Intn(19)-6))
	}
	return m
}

func sameResult(t *testing.T, label string, a, b *MILPResult) {
	t.Helper()
	if a.Status != b.Status {
		t.Errorf("%s: status %v vs %v", label, a.Status, b.Status)
		return
	}
	if a.Status != StatusOptimal {
		return
	}
	//dartvet:allow floatcmp -- the determinism guarantee is bit-identical objectives, so the test compares exactly
	if a.Objective != b.Objective {
		t.Errorf("%s: objective %v vs %v", label, a.Objective, b.Objective)
	}
	if len(a.X) != len(b.X) {
		t.Fatalf("%s: len(X) %d vs %d", label, len(a.X), len(b.X))
	}
	for j := range a.X {
		//dartvet:allow floatcmp -- the determinism guarantee is bit-identical solutions, so the test compares exactly
		if a.X[j] != b.X[j] {
			t.Errorf("%s: X[%d] = %v vs %v", label, j, a.X[j], b.X[j])
		}
	}
}

// TestParallelMatchesSequentialRandom is the kernel-level differential test:
// on random integer programs with integral objectives, a 4-worker solve must
// return bit-identical status/objective/X to the sequential solve.
func TestParallelMatchesSequentialRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	for trial := 0; trial < 60; trial++ {
		src := rng.Int63()
		seqRes, err := Solve(randomIntegerModel(src), MILPOptions{Workers: 1})
		if err != nil {
			t.Fatalf("trial %d seq: %v", trial, err)
		}
		parRes, err := Solve(randomIntegerModel(src), MILPOptions{Workers: 4})
		if err != nil {
			t.Fatalf("trial %d par: %v", trial, err)
		}
		sameResult(t, "trial", seqRes, parRes)
	}
}

// TestParallelRepeatedStable re-runs the same parallel solve many times:
// every run must commit the identical incumbent despite different worker
// interleavings.
func TestParallelRepeatedStable(t *testing.T) {
	build := func() *Model { return randomIntegerModel(991) }
	first, err := Solve(build(), MILPOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		again, err := Solve(build(), MILPOptions{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, "rerun", first, again)
	}
}

// TestParallelCutoffAgreement checks that the warm-start cutoff composes
// with parallel search: feeding the sequential optimum back as the cutoff
// of a 4-worker solve reproduces the same solution.
func TestParallelCutoffAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 25; trial++ {
		src := rng.Int63()
		cold, err := Solve(randomIntegerModel(src), MILPOptions{Workers: 1})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if cold.Status != StatusOptimal {
			continue
		}
		cutoff := cold.Objective
		warm, err := Solve(randomIntegerModel(src), MILPOptions{Workers: 4, CutoffObjective: &cutoff})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		sameResult(t, "cutoff", cold, warm)
	}
}

// TestParallelCancel: cancellation raised mid-search with concurrent workers
// stops the solve and surfaces the error. The hook must be goroutine-safe,
// hence the atomic counter.
func TestParallelCancel(t *testing.T) {
	sentinel := errors.New("stop now")
	var calls atomic.Int64
	_, err := Solve(cancelModel(t), MILPOptions{Workers: 4, Cancel: func() error {
		if calls.Add(1) > 2 {
			return sentinel
		}
		return nil
	}})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel after %d polls", err, calls.Load())
	}
}

// TestParallelUnboundedAndInfeasible: non-optimal statuses survive the
// parallel path unchanged.
func TestParallelUnboundedAndInfeasible(t *testing.T) {
	unb := NewModel()
	x := unb.AddVar("x", 0, math.Inf(1), Integer, -1)
	y := unb.AddVar("y", 0, 1, Binary, 0)
	unb.MustAddConstraint("c", []Term{{x, -1}, {y, 1}}, LE, 0)
	res, err := Solve(unb, MILPOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusUnbounded {
		t.Errorf("unbounded model: status %v", res.Status)
	}

	inf := NewModel()
	a := inf.AddVar("a", 0, 1, Binary, 1)
	b := inf.AddVar("b", 0, 1, Binary, 1)
	inf.MustAddConstraint("c", []Term{{a, 1}, {b, 1}}, GE, 3)
	res, err = Solve(inf, MILPOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusInfeasible {
		t.Errorf("infeasible model: status %v", res.Status)
	}
}

// TestNodeSolveAllocs is the allocation regression test for the reusable
// kernel: once a worker's simplex state has warmed up, a steady-state node
// solve (reset + run + read the solution) performs zero heap allocations.
func TestNodeSolveAllocs(t *testing.T) {
	m := randomIntegerModel(2024)
	cs := buildCSR(m)
	s := new(simplex)
	x := make([]float64, m.NumVars())
	solveOnce := func() {
		s.reset(m, cs, SimplexOptions{}, nil, nil)
		if st, err := s.run(); err == nil && st == StatusOptimal {
			s.fillSolution(x)
		}
	}
	solveOnce() // warm up the backing arrays
	if allocs := testing.AllocsPerRun(200, solveOnce); allocs > 0 {
		t.Errorf("steady-state node solve allocates %.1f objects/op, want 0", allocs)
	}
}

// BenchmarkNodeSolve measures a steady-state node relaxation on the
// reusable kernel (the inner loop of branch and bound).
func BenchmarkNodeSolve(b *testing.B) {
	m := randomIntegerModel(2024)
	cs := buildCSR(m)
	s := new(simplex)
	x := make([]float64, m.NumVars())
	s.reset(m, cs, SimplexOptions{}, nil, nil)
	if _, err := s.run(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.reset(m, cs, SimplexOptions{}, nil, nil)
		if _, err := s.run(); err != nil {
			b.Fatal(err)
		}
		s.fillSolution(x)
	}
}

// BenchmarkParallelSolve solves a batch of independent integer programs at
// different worker counts. On multi-core hardware Workers=4 should finish
// the batch at least 2x faster than Workers=1; on a single-core machine the
// counts coincide, but the benchmark still pins the parallel path's
// overhead.
func BenchmarkParallelSolve(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(map[int]string{1: "seq", 4: "par4"}[workers], func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := Solve(randomIntegerModel(7331), MILPOptions{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				_ = res
			}
		})
	}
}
