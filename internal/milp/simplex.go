package milp

import (
	"fmt"
	"math"
)

// Status reports the outcome of a solve.
type Status int

const (
	// StatusOptimal means an optimal (for MILP: proven optimal integral)
	// solution was found.
	StatusOptimal Status = iota
	// StatusInfeasible means the problem has no feasible solution.
	StatusInfeasible
	// StatusUnbounded means the objective is unbounded below.
	StatusUnbounded
	// StatusIterLimit means the iteration or node limit was exhausted.
	StatusIterLimit
)

// String returns a short name for the status.
func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "optimal"
	case StatusInfeasible:
		return "infeasible"
	case StatusUnbounded:
		return "unbounded"
	case StatusIterLimit:
		return "iteration-limit"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// LPResult is the outcome of solving a linear relaxation.
type LPResult struct {
	Status    Status
	Objective float64
	// X holds one value per model variable (slacks excluded).
	X []float64
	// Iterations is the number of simplex pivots performed.
	Iterations int
}

// SimplexOptions tunes the simplex method. The zero value selects defaults.
type SimplexOptions struct {
	// MaxIters bounds pivot count; 0 means 200*(m+n)+10000.
	MaxIters int
	// FeasTol is the bound-violation tolerance (default 1e-7).
	FeasTol float64
	// OptTol is the reduced-cost optimality tolerance (default 1e-7).
	OptTol float64
	// PivotTol is the minimum acceptable pivot magnitude (default 1e-9).
	PivotTol float64
}

func (o SimplexOptions) withDefaults(m, n int) SimplexOptions {
	if o.MaxIters == 0 {
		o.MaxIters = 200*(m+n) + 10000
	}
	if o.FeasTol == 0 {
		o.FeasTol = 1e-7
	}
	if o.OptTol == 0 {
		o.OptTol = 1e-7
	}
	if o.PivotTol == 0 {
		o.PivotTol = 1e-9
	}
	return o
}

// column status in the simplex working arrays.
type colStatus int8

const (
	csBasic colStatus = iota
	csAtLower
	csAtUpper
	csFree // nonbasic free variable resting at value 0
)

// simplex is the working state of a bounded-variable primal simplex solve.
// Columns 0..nv-1 are the model's structural variables; columns nv..nv+m-1
// are row slacks (a·x + s = b, with slack bounds encoding the relation).
//
// The state is reusable: reset re-initializes it for a model/bounds pair
// from a prebuilt CSR matrix without allocating once the backing arrays
// have grown to size, which is what makes steady-state branch-and-bound
// node solves allocation-free. Instances are recycled via simplexPool.
type simplex struct {
	opt SimplexOptions

	m, n int // rows, total columns (structural + slacks)
	nv   int // structural columns

	buf   []float64   // flat m*n backing array of the tableau
	tab   [][]float64 // m x n dense tableau rows into buf, equals B^{-1} * A_full
	rhs   []float64   // B^{-1} b (unadjusted for nonbasic bound values)
	lb    []float64   // per-column lower bounds (incl. slacks)
	ub    []float64   // per-column upper bounds
	obj   []float64   // per-column objective (slacks: 0)
	basis []int       // basis[i] = column basic in row i
	inRow []int       // inRow[j] = row where column j is basic, or -1
	stat  []colStatus
	xB    []float64 // current values of basic variables per row
	d     []float64 // reduced costs (valid during phase 2)
	g     []float64 // phase-1 infeasibility gradient scratch

	iters int
	bland bool // anti-cycling rule active
	degen int  // consecutive degenerate pivots
}

// reset re-initializes the working state for model mdl with the prebuilt
// CSR form cs, with bounds optionally overridden (overrideLB/overrideUB may
// be nil to use the model's own). Backing arrays are reused when large
// enough, so repeated resets against same-shaped models allocate nothing.
func (s *simplex) reset(mdl *Model, cs *csrMatrix, opt SimplexOptions, overrideLB, overrideUB []float64) {
	m := cs.m
	nv := cs.nv
	n := nv + m
	s.opt = opt.withDefaults(m, n)
	s.m, s.n, s.nv = m, n, nv
	s.iters, s.degen, s.bland = 0, 0, false

	s.buf = growF(s.buf, m*n)
	for i := range s.buf {
		s.buf[i] = 0
	}
	s.tab = growRows(s.tab, m)
	s.rhs = growF(s.rhs, m)
	s.lb = growF(s.lb, n)
	s.ub = growF(s.ub, n)
	s.obj = growF(s.obj, n)
	s.basis = growI(s.basis, m)
	s.inRow = growI(s.inRow, n)
	s.stat = growS(s.stat, n)
	s.xB = growF(s.xB, m)
	s.d = growF(s.d, n)
	s.g = growF(s.g, n)

	for j := 0; j < nv; j++ {
		if overrideLB != nil {
			s.lb[j] = overrideLB[j]
		} else {
			s.lb[j] = mdl.lb[j]
		}
		if overrideUB != nil {
			s.ub[j] = overrideUB[j]
		} else {
			s.ub[j] = mdl.ub[j]
		}
		s.obj[j] = mdl.obj[j]
		s.inRow[j] = -1
	}
	// Scatter the equilibrated CSR rows into the dense tableau. The CSR
	// build already applied row equilibration (divide each row by its
	// largest coefficient magnitude), which big-M indicator rows need to
	// stay inside the solver's absolute tolerances.
	for i := 0; i < m; i++ {
		t := s.buf[i*n : (i+1)*n]
		s.tab[i] = t
		for k := cs.rowStart[i]; k < cs.rowStart[i+1]; k++ {
			t[cs.cols[k]] = cs.vals[k]
		}
		sc := nv + i // slack column
		t[sc] = 1
		s.rhs[i] = cs.rhs[i]
		s.obj[sc] = 0
		switch cs.rel[i] {
		case LE:
			s.lb[sc], s.ub[sc] = 0, math.Inf(1)
		case GE:
			s.lb[sc], s.ub[sc] = math.Inf(-1), 0
		case EQ:
			s.lb[sc], s.ub[sc] = 0, 0
		}
		s.inRow[sc] = -1
	}
	// Initial point: structural variables at a finite bound (prefer the one
	// with smaller magnitude; free variables rest at 0); slacks basic.
	for j := 0; j < nv; j++ {
		lbF, ubF := !math.IsInf(s.lb[j], -1), !math.IsInf(s.ub[j], 1)
		switch {
		case lbF && ubF:
			if math.Abs(s.lb[j]) <= math.Abs(s.ub[j]) {
				s.stat[j] = csAtLower
			} else {
				s.stat[j] = csAtUpper
			}
		case lbF:
			s.stat[j] = csAtLower
		case ubF:
			s.stat[j] = csAtUpper
		default:
			s.stat[j] = csFree
		}
	}
	for i := 0; i < m; i++ {
		sc := nv + i
		s.basis[i] = sc
		s.inRow[sc] = i
		s.stat[sc] = csBasic
	}
	// xB[i] = rhs_i - sum over nonbasic structural columns of coeff*value,
	// accumulated over the row's nonzeros only (zero coefficients contribute
	// nothing, so skipping them is exact).
	for i := 0; i < m; i++ {
		v := s.rhs[i]
		for k := cs.rowStart[i]; k < cs.rowStart[i+1]; k++ {
			if x := s.nbValue(cs.cols[k]); x != 0 {
				v -= cs.vals[k] * x
			}
		}
		s.xB[i] = v
	}
}

// nbValue returns the resting value of a nonbasic column.
func (s *simplex) nbValue(j int) float64 {
	switch s.stat[j] {
	case csAtLower:
		return s.lb[j]
	case csAtUpper:
		return s.ub[j]
	default:
		return 0
	}
}

// value returns the current value of any column.
func (s *simplex) value(j int) float64 {
	if s.stat[j] == csBasic {
		return s.xB[s.inRow[j]]
	}
	return s.nbValue(j)
}

// infeasibility returns the total bound violation of the basic variables.
func (s *simplex) infeasibility() float64 {
	tol := s.opt.FeasTol
	sum := 0.0
	for i := 0; i < s.m; i++ {
		k := s.basis[i]
		if v := s.lb[k] - s.xB[i]; v > tol {
			sum += v
		} else if v := s.xB[i] - s.ub[k]; v > tol {
			sum += v
		}
	}
	return sum
}

// phase1Costs computes the infeasibility gradient g_j for every nonbasic
// column: g_j = sum over below-lb rows of tab[i][j] minus sum over above-ub
// rows. Moving x_j in direction dir changes total infeasibility at rate
// dir*g_j.
func (s *simplex) phase1Costs(g []float64) (anyInfeasible bool) {
	tol := s.opt.FeasTol
	for j := range g {
		g[j] = 0
	}
	for i := 0; i < s.m; i++ {
		k := s.basis[i]
		var w float64
		if s.lb[k]-s.xB[i] > tol {
			w = 1
		} else if s.xB[i]-s.ub[k] > tol {
			w = -1
		} else {
			continue
		}
		anyInfeasible = true
		row := s.tab[i]
		for j := 0; j < s.n; j++ {
			// Skipping zero tableau entries is exact and, on the sparse
			// ground systems this solver sees, skips most of the row.
			if v := row[j]; v != 0 && s.stat[j] != csBasic {
				g[j] += w * v
			}
		}
	}
	return anyInfeasible
}

// computeReducedCosts fills s.d with d_j = c_j - c_B' * tab[:,j].
func (s *simplex) computeReducedCosts() {
	copy(s.d, s.obj)
	for i := 0; i < s.m; i++ {
		cb := s.obj[s.basis[i]]
		if cb == 0 {
			continue
		}
		row := s.tab[i]
		for j := 0; j < s.n; j++ {
			if v := row[j]; v != 0 {
				s.d[j] -= cb * v
			}
		}
	}
	for i := 0; i < s.m; i++ {
		s.d[s.basis[i]] = 0
	}
}

// chooseEntering picks an entering column and direction given per-column
// costs c (phase-1 gradient or phase-2 reduced costs). It returns (-1, 0)
// at optimality. Under Bland's rule the lowest-index eligible column wins;
// otherwise the most negative directional cost wins.
func (s *simplex) chooseEntering(c []float64) (enter int, dir float64) {
	tol := s.opt.OptTol
	best := -tol
	enter, dir = -1, 0
	for j := 0; j < s.n; j++ {
		var dj float64
		var dj2 float64 // directional derivative if moving dir
		var dd float64
		switch s.stat[j] {
		case csAtLower:
			dj = c[j]
			if dj < -tol {
				dj2, dd = dj, 1
			} else {
				continue
			}
		case csAtUpper:
			dj = c[j]
			if dj > tol {
				dj2, dd = -dj, -1
			} else {
				continue
			}
		case csFree:
			dj = c[j]
			if dj < -tol {
				dj2, dd = dj, 1
			} else if dj > tol {
				dj2, dd = -dj, -1
			} else {
				continue
			}
		default:
			continue
		}
		if s.bland {
			return j, dd
		}
		//dartvet:allow floatcmp -- pricing pick; best is seeded with the pricing tolerance
		if dj2 < best {
			best, enter, dir = dj2, j, dd
		}
	}
	return enter, dir
}

// ratioResult describes the blocking event of a ratio test.
type ratioResult struct {
	t        float64 // step length
	row      int     // blocking row, or -1 for an entering-variable bound flip
	hitLower bool    // blocking basic leaves at its lower bound
}

// ratioTest finds how far the entering column can move in direction dir.
// phase1 permits infeasible basics to travel to (and block at) the bound
// they currently violate. Returns t = +Inf when unblocked.
func (s *simplex) ratioTest(enter int, dir float64, phase1 bool) ratioResult {
	tol := s.opt.FeasTol
	ptol := s.opt.PivotTol
	res := ratioResult{t: math.Inf(1), row: -1}
	// The entering variable's own span (bound flip).
	if span := s.ub[enter] - s.lb[enter]; !math.IsInf(span, 1) {
		res.t = span
	}
	bestAlpha := 0.0
	for i := 0; i < s.m; i++ {
		alpha := s.tab[i][enter]
		if alpha > -ptol && alpha < ptol {
			continue
		}
		k := s.basis[i]
		rate := -alpha * dir // change rate of xB[i] per unit step
		var t float64
		var hitLower bool
		belowLB := s.lb[k]-s.xB[i] > tol
		aboveUB := s.xB[i]-s.ub[k] > tol
		switch {
		case phase1 && belowLB:
			if rate <= ptol {
				continue // moving away or parallel: no block from this row
			}
			t = (s.lb[k] - s.xB[i]) / rate
			hitLower = true
		case phase1 && aboveUB:
			if rate >= -ptol {
				continue
			}
			t = (s.xB[i] - s.ub[k]) / (-rate)
			hitLower = false
		case rate > ptol:
			if math.IsInf(s.ub[k], 1) {
				continue
			}
			t = (s.ub[k] - s.xB[i]) / rate
			hitLower = false
		case rate < -ptol:
			if math.IsInf(s.lb[k], -1) {
				continue
			}
			t = (s.xB[i] - s.lb[k]) / (-rate)
			hitLower = true
		default:
			continue
		}
		if t < 0 {
			t = 0
		}
		// Prefer strictly smaller steps; among (near-)ties prefer the larger
		// pivot magnitude for numerical stability, or the lowest basis index
		// under Bland's rule.
		const tieTol = 1e-10
		switch {
		case t < res.t-tieTol:
			res = ratioResult{t: t, row: i, hitLower: hitLower}
			bestAlpha = math.Abs(alpha)
		case t <= res.t+tieTol && res.row >= 0:
			if s.bland {
				if s.basis[i] < s.basis[res.row] {
					res = ratioResult{t: t, row: i, hitLower: hitLower}
					bestAlpha = math.Abs(alpha)
				}
			} else if math.Abs(alpha) > bestAlpha {
				res = ratioResult{t: t, row: i, hitLower: hitLower}
				bestAlpha = math.Abs(alpha)
			}
		}
	}
	return res
}

// step applies the chosen entering move: either a bound flip of the entering
// column or a basis change with tableau pivot. updateD says whether the
// reduced-cost vector s.d should be pivoted along (phase 2 only).
func (s *simplex) step(enter int, dir float64, r ratioResult, updateD bool) {
	if r.row < 0 {
		// Bound flip across the entering variable's whole span.
		delta := dir * r.t
		for i := 0; i < s.m; i++ {
			if a := s.tab[i][enter]; a != 0 {
				s.xB[i] -= a * delta
			}
		}
		if s.stat[enter] == csAtLower {
			s.stat[enter] = csAtUpper
		} else {
			s.stat[enter] = csAtLower
		}
		return
	}
	// Basis change: entering moves by dir*t, blocking basic leaves.
	newVal := s.value(enter) + dir*r.t
	for i := 0; i < s.m; i++ {
		if a := s.tab[i][enter]; a != 0 {
			s.xB[i] -= a * dir * r.t
		}
	}
	row, leave := r.row, s.basis[r.row]
	// Snap the leaving variable exactly onto its bound.
	if r.hitLower {
		s.stat[leave] = csAtLower
		s.xB[row] = s.lb[leave]
	} else {
		s.stat[leave] = csAtUpper
		s.xB[row] = s.ub[leave]
	}
	s.inRow[leave] = -1

	piv := s.tab[row][enter]
	trow := s.tab[row]
	inv := 1 / piv
	for j := 0; j < s.n; j++ {
		if trow[j] != 0 {
			trow[j] *= inv
		}
	}
	trow[enter] = 1 // exact
	s.rhs[row] *= inv
	for i := 0; i < s.m; i++ {
		if i == row {
			continue
		}
		f := s.tab[i][enter]
		if f == 0 {
			continue
		}
		ti := s.tab[i]
		// The pivot row stays sparse until fill-in accumulates; skipping
		// its zeros is exact and dominates the elimination cost.
		for j := 0; j < s.n; j++ {
			if v := trow[j]; v != 0 {
				ti[j] -= f * v
			}
		}
		ti[enter] = 0 // exact
		s.rhs[i] -= f * s.rhs[row]
	}
	if updateD {
		f := s.d[enter]
		if f != 0 {
			for j := 0; j < s.n; j++ {
				if v := trow[j]; v != 0 {
					s.d[j] -= f * v
				}
			}
		}
		s.d[enter] = 0
	}
	s.basis[row] = enter
	s.inRow[enter] = row
	s.stat[enter] = csBasic
	s.xB[row] = newVal

	if r.t <= s.opt.FeasTol {
		s.degen++
	} else {
		s.degen = 0
		s.bland = false
	}
	if s.degen > 2*(s.m+s.n)+50 {
		s.bland = true
	}
}

// phase1 restores primal feasibility of the basis. It returns false if the
// LP is infeasible, and an error on iteration exhaustion.
func (s *simplex) phase1() (feasible bool, err error) {
	g := s.g
	//dartvet:allow ctxloop -- bounded by the opt.MaxIters check on entry; milp.Solve polls Cancel between LP solves
	for {
		if s.iters >= s.opt.MaxIters {
			return false, fmt.Errorf("milp: simplex phase 1 exceeded %d iterations", s.opt.MaxIters)
		}
		if !s.phase1Costs(g) {
			return true, nil
		}
		enter, dir := s.chooseEntering(g)
		if enter < 0 {
			return false, nil // locally optimal with positive infeasibility
		}
		r := s.ratioTest(enter, dir, true)
		if math.IsInf(r.t, 1) {
			// The infeasibility can be reduced without ever blocking, which
			// cannot happen for a bounded-below objective unless tolerances
			// misfire; treat as infeasible rather than looping.
			return false, fmt.Errorf("milp: phase 1 unbounded descent (numerical trouble)")
		}
		s.iters++
		s.step(enter, dir, r, false)
	}
}

// phase2 optimizes the objective from a feasible basis.
func (s *simplex) phase2() (Status, error) {
	s.computeReducedCosts()
	recompute := 0
	//dartvet:allow ctxloop -- bounded by the opt.MaxIters check on entry; milp.Solve polls Cancel between LP solves
	for {
		if s.iters >= s.opt.MaxIters {
			return StatusIterLimit, nil
		}
		enter, dir := s.chooseEntering(s.d)
		if enter < 0 {
			return StatusOptimal, nil
		}
		r := s.ratioTest(enter, dir, false)
		if math.IsInf(r.t, 1) {
			return StatusUnbounded, nil
		}
		s.iters++
		s.step(enter, dir, r, true)
		// Periodically recompute reduced costs to shed accumulated error.
		recompute++
		if recompute >= 256 {
			s.computeReducedCosts()
			recompute = 0
		}
	}
}

// objective returns the current objective value.
func (s *simplex) objective() float64 {
	z := 0.0
	for j := 0; j < s.nv; j++ {
		if s.obj[j] != 0 {
			z += s.obj[j] * s.value(j)
		}
	}
	return z
}

// solution extracts structural variable values.
func (s *simplex) solution() []float64 {
	x := make([]float64, s.nv)
	s.fillSolution(x)
	return x
}

// fillSolution writes the structural variable values into dst (len >= nv)
// without allocating.
func (s *simplex) fillSolution(dst []float64) {
	for j := 0; j < s.nv; j++ {
		dst[j] = s.value(j)
	}
}

// run executes both phases, leaving the optimum in the working state. It
// allocates nothing; branch-and-bound workers read the objective and
// solution straight out of the state.
func (s *simplex) run() (Status, error) {
	// Trivial infeasibility: reversed bounds after overrides.
	for j := 0; j < s.n; j++ {
		if s.lb[j] > s.ub[j]+s.opt.FeasTol {
			return StatusInfeasible, nil
		}
	}
	feasible, err := s.phase1()
	if err != nil {
		return StatusInfeasible, err
	}
	if !feasible {
		return StatusInfeasible, nil
	}
	return s.phase2()
}

// solveLP runs both phases and packages the result.
func (s *simplex) solveLP() (*LPResult, error) {
	st, err := s.run()
	if err != nil {
		return nil, err
	}
	res := &LPResult{Status: st, Iterations: s.iters}
	if st == StatusOptimal || st == StatusIterLimit {
		res.Objective = s.objective()
		res.X = s.solution()
	}
	return res, nil
}

// SolveLP solves the linear relaxation of the model (integrality ignored)
// with the given options.
func SolveLP(m *Model, opt SimplexOptions) (*LPResult, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	s := acquireSimplex()
	defer releaseSimplex(s)
	s.reset(m, buildCSR(m), opt, nil, nil)
	return s.solveLP()
}

// solveLPWithBounds solves the relaxation with per-variable bound overrides
// (used by the branch-and-bound rounding heuristic and one-shot callers; the
// node loop keeps a worker-local state and calls reset/run directly).
func solveLPWithBounds(m *Model, opt SimplexOptions, lb, ub []float64) (*LPResult, error) {
	s := acquireSimplex()
	defer releaseSimplex(s)
	s.reset(m, buildCSR(m), opt, lb, ub)
	return s.solveLP()
}
