// Package milp implements a self-contained mixed-integer linear programming
// solver: linear models with per-variable bounds and integrality
// requirements, a bounded-variable primal simplex method for the LP
// relaxation, and a best-first branch-and-bound search for integer optima.
//
// The paper solves its repair MILP instances with the proprietary LINDO API;
// this package is the open substitute. It is exact up to floating-point
// tolerances and is deliberately dependency-free (stdlib only).
package milp

import (
	"fmt"
	"math"
	"strings"
)

// VarType describes the integrality requirement of a variable.
type VarType int

const (
	// Continuous variables range over the reals within their bounds.
	Continuous VarType = iota
	// Integer variables must take integral values within their bounds.
	Integer
	// Binary variables are integer variables with implied bounds {0,1}.
	Binary
)

// String returns a short name for the variable type.
func (v VarType) String() string {
	switch v {
	case Continuous:
		return "continuous"
	case Integer:
		return "integer"
	case Binary:
		return "binary"
	default:
		return fmt.Sprintf("VarType(%d)", int(v))
	}
}

// Rel is the relational operator of a linear constraint.
type Rel int

const (
	// LE constrains the row activity to be at most the right-hand side.
	LE Rel = iota
	// GE constrains the row activity to be at least the right-hand side.
	GE
	// EQ constrains the row activity to equal the right-hand side.
	EQ
)

// String returns the operator symbol.
func (r Rel) String() string {
	switch r {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	default:
		return fmt.Sprintf("Rel(%d)", int(r))
	}
}

// Var identifies a variable within a Model.
type Var int

// Term is one coefficient*variable summand of a linear expression.
type Term struct {
	Var   Var
	Coeff float64
}

// Constraint is a linear constraint sum(terms) Rel RHS.
type Constraint struct {
	Name  string
	Terms []Term
	Rel   Rel
	RHS   float64
}

// Model is a linear program with optional integrality requirements:
//
//	minimize  c'x
//	subject to  each constraint row
//	            lb <= x <= ub, x_i integral for integer/binary i
//
// Models are built incrementally with AddVar/AddConstraint and solved with
// a Solver.
type Model struct {
	names []string
	lb    []float64
	ub    []float64
	vtype []VarType
	obj   []float64
	rows  []Constraint
}

// NewModel returns an empty minimization model.
func NewModel() *Model { return &Model{} }

// NumVars returns the number of variables.
func (m *Model) NumVars() int { return len(m.names) }

// NumConstraints returns the number of constraint rows.
func (m *Model) NumConstraints() int { return len(m.rows) }

// AddVar adds a variable with the given name, bounds, type and objective
// coefficient, returning its identifier. Use math.Inf for free bounds.
// Binary variables have their bounds intersected with [0,1].
func (m *Model) AddVar(name string, lb, ub float64, vt VarType, obj float64) Var {
	if vt == Binary {
		lb = math.Max(lb, 0)
		ub = math.Min(ub, 1)
	}
	m.names = append(m.names, name)
	m.lb = append(m.lb, lb)
	m.ub = append(m.ub, ub)
	m.vtype = append(m.vtype, vt)
	m.obj = append(m.obj, obj)
	return Var(len(m.names) - 1)
}

// SetObjective replaces the objective coefficient of v.
func (m *Model) SetObjective(v Var, coeff float64) { m.obj[v] = coeff }

// SetBounds replaces the bounds of v.
func (m *Model) SetBounds(v Var, lb, ub float64) {
	m.lb[v] = lb
	m.ub[v] = ub
}

// Bounds returns the bounds of v.
func (m *Model) Bounds(v Var) (lb, ub float64) { return m.lb[v], m.ub[v] }

// Type returns the variable type of v.
func (m *Model) Type(v Var) VarType { return m.vtype[v] }

// Name returns the name of v.
func (m *Model) Name(v Var) string { return m.names[v] }

// AddConstraint appends a linear constraint row. Terms mentioning the same
// variable are merged. Referencing an unknown variable is an error.
func (m *Model) AddConstraint(name string, terms []Term, rel Rel, rhs float64) error {
	merged := make(map[Var]float64, len(terms))
	order := make([]Var, 0, len(terms))
	for _, t := range terms {
		if int(t.Var) < 0 || int(t.Var) >= len(m.names) {
			return fmt.Errorf("milp: constraint %q references unknown variable %d", name, t.Var)
		}
		if _, seen := merged[t.Var]; !seen {
			order = append(order, t.Var)
		}
		merged[t.Var] += t.Coeff
	}
	out := make([]Term, 0, len(order))
	for _, v := range order {
		if c := merged[v]; c != 0 {
			out = append(out, Term{v, c})
		}
	}
	m.rows = append(m.rows, Constraint{Name: name, Terms: out, Rel: rel, RHS: rhs})
	return nil
}

// MustAddConstraint is AddConstraint that panics on error; for rows whose
// variables are known valid by construction.
func (m *Model) MustAddConstraint(name string, terms []Term, rel Rel, rhs float64) {
	if err := m.AddConstraint(name, terms, rel, rhs); err != nil {
		panic(err)
	}
}

// Constraint returns the i-th constraint row.
func (m *Model) Constraint(i int) Constraint { return m.rows[i] }

// Validate checks the model for structural problems: reversed or NaN
// bounds, NaN coefficients, and empty rows with unsatisfiable relations.
func (m *Model) Validate() error {
	for i := range m.names {
		if math.IsNaN(m.lb[i]) || math.IsNaN(m.ub[i]) {
			return fmt.Errorf("milp: variable %s has NaN bound", m.names[i])
		}
		//dartvet:allow floatcmp -- bound validation is exact by design; any inversion is a modeling bug
		if m.lb[i] > m.ub[i] {
			return fmt.Errorf("milp: variable %s has reversed bounds [%v, %v]", m.names[i], m.lb[i], m.ub[i])
		}
		if math.IsNaN(m.obj[i]) {
			return fmt.Errorf("milp: variable %s has NaN objective coefficient", m.names[i])
		}
	}
	for _, r := range m.rows {
		if math.IsNaN(r.RHS) {
			return fmt.Errorf("milp: constraint %q has NaN right-hand side", r.Name)
		}
		for _, t := range r.Terms {
			if math.IsNaN(t.Coeff) || math.IsInf(t.Coeff, 0) {
				return fmt.Errorf("milp: constraint %q has invalid coefficient for %s",
					r.Name, m.names[t.Var])
			}
		}
	}
	return nil
}

// HasIntegers reports whether the model contains any integer or binary
// variables.
func (m *Model) HasIntegers() bool {
	for _, vt := range m.vtype {
		if vt != Continuous {
			return true
		}
	}
	return false
}

// String renders the model in a readable LP-like format, used by tests and
// by the Fig. 4 reproduction printer in the repair package.
func (m *Model) String() string {
	var b strings.Builder
	b.WriteString("min ")
	first := true
	for i, c := range m.obj {
		if c == 0 {
			continue
		}
		writeTerm(&b, &first, c, m.names[i])
	}
	if first {
		b.WriteString("0")
	}
	b.WriteString("\nsubject to\n")
	for _, r := range m.rows {
		b.WriteString("  ")
		rf := true
		for _, t := range r.Terms {
			writeTerm(&b, &rf, t.Coeff, m.names[t.Var])
		}
		if rf {
			b.WriteString("0")
		}
		fmt.Fprintf(&b, " %s %g\n", r.Rel, r.RHS)
	}
	return b.String()
}

func writeTerm(b *strings.Builder, first *bool, c float64, name string) {
	switch {
	case *first && c == 1:
		b.WriteString(name)
	case *first && c == -1:
		b.WriteString("-" + name)
	case *first:
		fmt.Fprintf(b, "%g %s", c, name)
	case c == 1:
		b.WriteString(" + " + name)
	case c == -1:
		b.WriteString(" - " + name)
	case c < 0:
		fmt.Fprintf(b, " - %g %s", -c, name)
	default:
		fmt.Fprintf(b, " + %g %s", c, name)
	}
	*first = false
}
