package sse

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

func TestReaderRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteEvent(&buf, "7", "solver", []byte(`{"gap":0.5}`)); err != nil {
		t.Fatal(err)
	}
	if err := WriteComment(&buf, "hb"); err != nil {
		t.Fatal(err)
	}
	if err := WriteEvent(&buf, "", "", []byte("line1\nline2")); err != nil {
		t.Fatal(err)
	}

	r := NewReader(&buf)
	ev, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if ev.ID != "7" || ev.Name != "solver" || ev.Data != `{"gap":0.5}` {
		t.Fatalf("first event = %+v", ev)
	}
	ev, err = r.Next() // heartbeat skipped transparently
	if err != nil {
		t.Fatal(err)
	}
	if ev.Name != "message" || ev.Data != "line1\nline2" {
		t.Fatalf("second event = %+v", ev)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("err = %v, want EOF", err)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("repeated read err = %v, want EOF", err)
	}
}

func TestReaderSpecQuirks(t *testing.T) {
	stream := "" +
		": leading comment\n\n" +
		"id:12\nevent:job\ndata:no-space-value\n\n" +
		"event: dataless-frame-skipped\n\n" +
		"retry: 1000\ndata: after-retry\n\n"
	r := NewReader(strings.NewReader(stream))
	ev, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if ev.ID != "12" || ev.Name != "job" || ev.Data != "no-space-value" {
		t.Fatalf("event = %+v", ev)
	}
	ev, err = r.Next()
	if err != nil {
		t.Fatal(err)
	}
	// The dataless frame is skipped; the retry field is ignored.
	if ev.Name != "message" || ev.Data != "after-retry" {
		t.Fatalf("event = %+v", ev)
	}
}
