// Package sse implements the client side of the Server-Sent Events wire
// format (the text/event-stream frames dartd emits on /v1/events and
// /v1/jobs/{id}/events): a streaming frame reader plus the frame writer
// helpers the service handlers use. Only the subset of the WHATWG
// EventSource grammar the repo needs is implemented — id/event/data
// fields, comment lines, and blank-line dispatch; retry hints are parsed
// and exposed but nothing reconnects automatically.
package sse

import (
	"bufio"
	"bytes"
	"io"
	"strings"
)

// Event is one dispatched server-sent event.
type Event struct {
	// ID is the frame's last "id:" field (the bus sequence number in
	// dartd's streams), empty when absent.
	ID string
	// Name is the frame's "event:" field; dartd uses the event kind
	// (job, queue, solver, component, span, ledger) plus "snapshot".
	// Defaults to "message" per the EventSource spec.
	Name string
	// Data joins the frame's "data:" lines with newlines.
	Data string
}

// Reader incrementally decodes an event stream.
type Reader struct {
	sc  *bufio.Scanner
	err error
}

// NewReader decodes events from r. Frames larger than 4 MiB fail the
// stream.
func NewReader(r io.Reader) *Reader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4<<20)
	return &Reader{sc: sc}
}

// Next blocks until one full event is dispatched, the stream ends
// (io.EOF), or reading fails. Comment lines and frames without data are
// skipped, per the spec.
func (r *Reader) Next() (Event, error) {
	if r.err != nil {
		return Event{}, r.err
	}
	ev := Event{Name: "message"}
	dispatch := false
	var data []string
	for r.sc.Scan() {
		line := r.sc.Text()
		if line == "" {
			// Blank line dispatches the pending frame — unless it held no
			// data (e.g. a heartbeat comment), in which case keep reading.
			if dispatch {
				ev.Data = strings.Join(data, "\n")
				return ev, nil
			}
			ev = Event{Name: "message"}
			data = data[:0]
			continue
		}
		if strings.HasPrefix(line, ":") {
			continue // comment / heartbeat
		}
		field, value, _ := strings.Cut(line, ":")
		value = strings.TrimPrefix(value, " ")
		switch field {
		case "id":
			ev.ID = value
		case "event":
			ev.Name = value
		case "data":
			data = append(data, value)
			dispatch = true
		}
		// Unknown fields (incl. "retry") are ignored.
	}
	if err := r.sc.Err(); err != nil {
		r.err = err
	} else {
		r.err = io.EOF
	}
	return Event{}, r.err
}

// WriteEvent emits one frame: optional id and event name, one data line
// per newline-separated chunk, and the dispatching blank line. The caller
// flushes.
func WriteEvent(w io.Writer, id, name string, data []byte) error {
	var b bytes.Buffer
	if id != "" {
		b.WriteString("id: ")
		b.WriteString(id)
		b.WriteByte('\n')
	}
	if name != "" {
		b.WriteString("event: ")
		b.WriteString(name)
		b.WriteByte('\n')
	}
	for _, line := range bytes.Split(data, []byte("\n")) {
		b.WriteString("data: ")
		b.Write(line)
		b.WriteByte('\n')
	}
	b.WriteByte('\n')
	_, err := w.Write(b.Bytes())
	return err
}

// WriteComment emits one comment line (a keep-alive heartbeat).
func WriteComment(w io.Writer, text string) error {
	_, err := io.WriteString(w, ": "+text+"\n\n")
	return err
}
