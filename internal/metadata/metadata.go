// Package metadata models the acquisition designer's metadata (Section 2,
// Section 6): domain descriptions, hierarchical relationships, row
// patterns, the database scheme with its measure attributes, the scheme
// mapping and classification information for the database generator, and
// the steady aggregate constraints — together with a text format so a
// designer can author all of it in one file.
package metadata

import (
	"fmt"
	"strconv"
	"strings"

	"dart/internal/aggrcons"
	"dart/internal/consparse"
	"dart/internal/dbgen"
	"dart/internal/lexicon"
	"dart/internal/relational"
	"dart/internal/wrapper"
)

// Metadata is the complete designer configuration for one document class.
type Metadata struct {
	Title     string
	Domains   map[string]*lexicon.Domain
	Hierarchy *lexicon.Hierarchy
	Patterns  []*wrapper.RowPattern
	TNorm     lexicon.TNorm
	MinScore  float64

	Schema          *relational.Schema
	Measures        []string
	CellOf          map[string]string
	Classifications map[string]*dbgen.Classification

	Catalog *consparse.Catalog
}

// NewWrapper builds the extraction wrapper configured by the metadata.
func (m *Metadata) NewWrapper() *wrapper.Wrapper {
	return &wrapper.Wrapper{
		Patterns:  m.Patterns,
		Hierarchy: m.Hierarchy,
		TNorm:     m.TNorm,
		MinScore:  m.MinScore,
	}
}

// NewGenerator builds the database generator configured by the metadata.
func (m *Metadata) NewGenerator() *dbgen.Generator {
	return &dbgen.Generator{
		Schema:       m.Schema,
		Measures:     m.Measures,
		CellOf:       m.CellOf,
		ClassifiedBy: m.Classifications,
	}
}

// Constraints returns the steady aggregate constraints of the metadata.
func (m *Metadata) Constraints() []*aggrcons.Constraint {
	if m.Catalog == nil {
		return nil
	}
	return m.Catalog.Constraints
}

// Validate cross-checks the assembled metadata.
func (m *Metadata) Validate() error {
	if m.Schema == nil {
		return fmt.Errorf("metadata: no relation declared")
	}
	if len(m.Patterns) == 0 {
		return fmt.Errorf("metadata: no row patterns declared")
	}
	for _, p := range m.Patterns {
		if err := p.Validate(); err != nil {
			return err
		}
	}
	g := m.NewGenerator()
	return g.Validate()
}

// Parse reads the metadata text format. See the package tests and the
// example metadata files for the grammar by example; the format is
// line-oriented with three block constructs (pattern, classify,
// constraints ... end).
func Parse(src string) (*Metadata, error) {
	m := &Metadata{
		Domains:         map[string]*lexicon.Domain{},
		Hierarchy:       lexicon.NewHierarchy(),
		MinScore:        0.5,
		CellOf:          map[string]string{},
		Classifications: map[string]*dbgen.Classification{},
	}
	lines := strings.Split(src, "\n")
	var curPattern *wrapper.RowPattern
	var curClassify *dbgen.Classification

	for ln := 0; ln < len(lines); ln++ {
		line := stripComment(lines[ln])
		if line == "" {
			continue
		}
		word, rest := splitWord(line)
		// Block-opening keywords may carry the colon on the keyword itself
		// ("constraints:").
		switch strings.TrimSuffix(strings.ToLower(word), ":") {
		case "title":
			m.Title = rest
		case "domain":
			name, items, err := parseDomainLine(rest)
			if err != nil {
				return nil, lineErr(ln, err)
			}
			d, ok := m.Domains[name]
			if !ok {
				d = lexicon.NewDomain(name)
				m.Domains[name] = d
			}
			for _, it := range items {
				d.Add(it)
			}
		case "hierarchy":
			child, parent, err := parseHierarchyLine(rest)
			if err != nil {
				return nil, lineErr(ln, err)
			}
			m.Hierarchy.AddSpecialization(child, parent)
		case "pattern":
			name := strings.TrimSuffix(rest, ":")
			if name == "" {
				return nil, lineErr(ln, fmt.Errorf("pattern needs a name"))
			}
			curPattern = &wrapper.RowPattern{Name: name}
			m.Patterns = append(m.Patterns, curPattern)
			curClassify = nil
		case "cell":
			if curPattern == nil {
				return nil, lineErr(ln, fmt.Errorf("cell outside a pattern block"))
			}
			pc, err := m.parseCellLine(rest, curPattern)
			if err != nil {
				return nil, lineErr(ln, err)
			}
			curPattern.Cells = append(curPattern.Cells, pc)
		case "tnorm":
			switch strings.ToLower(rest) {
			case "min":
				m.TNorm = lexicon.TNormMin
			case "product":
				m.TNorm = lexicon.TNormProduct
			case "lukasiewicz":
				m.TNorm = lexicon.TNormLukasiewicz
			default:
				return nil, lineErr(ln, fmt.Errorf("unknown t-norm %q", rest))
			}
		case "minscore":
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil || v < 0 || v > 1 {
				return nil, lineErr(ln, fmt.Errorf("bad minscore %q", rest))
			}
			m.MinScore = v
		case "relation":
			s, err := parseRelationLine(rest)
			if err != nil {
				return nil, lineErr(ln, err)
			}
			if m.Schema != nil {
				return nil, lineErr(ln, fmt.Errorf("duplicate relation declaration"))
			}
			m.Schema = s
		case "measure":
			parts := strings.SplitN(rest, ".", 2)
			if len(parts) != 2 {
				return nil, lineErr(ln, fmt.Errorf("measure needs Relation.Attribute, got %q", rest))
			}
			m.Measures = append(m.Measures, strings.TrimSpace(parts[1]))
		case "map":
			// map ATTR from cell HEADLINE
			f := strings.Fields(rest)
			if len(f) != 4 || !strings.EqualFold(f[1], "from") || !strings.EqualFold(f[2], "cell") {
				return nil, lineErr(ln, fmt.Errorf("map syntax: map ATTR from cell HEADLINE"))
			}
			m.CellOf[f[0]] = f[3]
			curPattern, curClassify = nil, nil
		case "classify":
			// classify ATTR from HEADLINE:
			f := strings.Fields(strings.TrimSuffix(rest, ":"))
			if len(f) != 3 || !strings.EqualFold(f[1], "from") {
				return nil, lineErr(ln, fmt.Errorf("classify syntax: classify ATTR from HEADLINE:"))
			}
			curClassify = &dbgen.Classification{FromHeadline: f[2], Classes: map[string]string{}}
			m.Classifications[f[0]] = curClassify
			curPattern = nil
		case "constraints":
			var block []string
			ln++
			for ; ln < len(lines); ln++ {
				if strings.TrimSpace(lines[ln]) == "end" {
					break
				}
				block = append(block, lines[ln])
			}
			if ln >= len(lines) {
				return nil, fmt.Errorf("metadata: unterminated constraints block")
			}
			cat, err := consparse.Parse(strings.Join(block, "\n"))
			if err != nil {
				return nil, err
			}
			m.Catalog = cat
		default:
			// Inside a classify block, lines are 'ITEM' -> 'CLASS'.
			if curClassify != nil && strings.Contains(line, "->") {
				item, class, err := parseArrowLine(line)
				if err != nil {
					return nil, lineErr(ln, err)
				}
				curClassify.Classes[lexicon.Normalize(item)] = class
				continue
			}
			return nil, lineErr(ln, fmt.Errorf("unknown directive %q", word))
		}
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

func lineErr(ln int, err error) error {
	return fmt.Errorf("metadata: line %d: %w", ln+1, err)
}

func stripComment(line string) string {
	if i := strings.IndexByte(line, '#'); i >= 0 {
		// Keep '#' inside quotes.
		inQuote := false
		for j := 0; j < len(line); j++ {
			if line[j] == '\'' {
				inQuote = !inQuote
			}
			if line[j] == '#' && !inQuote {
				line = line[:j]
				break
			}
		}
	}
	return strings.TrimSpace(line)
}

func splitWord(line string) (string, string) {
	i := strings.IndexAny(line, " \t")
	if i < 0 {
		return line, ""
	}
	return line[:i], strings.TrimSpace(line[i+1:])
}

// parseDomainLine parses: NAME: 'item', 'item', ...
func parseDomainLine(rest string) (string, []string, error) {
	i := strings.IndexByte(rest, ':')
	if i < 0 {
		return "", nil, fmt.Errorf("domain syntax: domain NAME: 'item', ...")
	}
	name := strings.TrimSpace(rest[:i])
	if name == "" {
		return "", nil, fmt.Errorf("domain needs a name")
	}
	items, err := parseQuotedList(rest[i+1:])
	if err != nil {
		return "", nil, err
	}
	return name, items, nil
}

// parseHierarchyLine parses: 'child' -> 'parent'.
func parseHierarchyLine(rest string) (string, string, error) {
	return parseArrowLine(rest)
}

func parseArrowLine(line string) (string, string, error) {
	parts := strings.SplitN(line, "->", 2)
	if len(parts) != 2 {
		return "", "", fmt.Errorf("expected 'a' -> 'b', got %q", line)
	}
	a, err := parseQuoted(strings.TrimSpace(parts[0]))
	if err != nil {
		return "", "", err
	}
	b, err := parseQuoted(strings.TrimSpace(parts[1]))
	if err != nil {
		return "", "", err
	}
	return a, b, nil
}

func parseQuoted(s string) (string, error) {
	if len(s) < 2 || s[0] != '\'' || s[len(s)-1] != '\'' {
		return "", fmt.Errorf("expected quoted string, got %q", s)
	}
	return s[1 : len(s)-1], nil
}

func parseQuotedList(s string) ([]string, error) {
	var out []string
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		q, err := parseQuoted(part)
		if err != nil {
			return nil, err
		}
		out = append(out, q)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty item list")
	}
	return out, nil
}

// parseCellLine parses: HEADLINE: Integer | Real | String | domain NAME
// [specializes HEADLINE]
func (m *Metadata) parseCellLine(rest string, p *wrapper.RowPattern) (wrapper.PatternCell, error) {
	pc := wrapper.PatternCell{SpecializationOf: -1}
	i := strings.IndexByte(rest, ':')
	if i < 0 {
		return pc, fmt.Errorf("cell syntax: cell HEADLINE: KIND [specializes HEADLINE]")
	}
	pc.Headline = strings.TrimSpace(rest[:i])
	spec := ""
	kind := strings.TrimSpace(rest[i+1:])
	if j := strings.Index(strings.ToLower(kind), "specializes"); j >= 0 {
		spec = strings.TrimSpace(kind[j+len("specializes"):])
		kind = strings.TrimSpace(kind[:j])
	}
	f := strings.Fields(kind)
	switch {
	case len(f) == 1 && strings.EqualFold(f[0], "integer"):
		pc.Kind = wrapper.KindInteger
	case len(f) == 1 && strings.EqualFold(f[0], "real"):
		pc.Kind = wrapper.KindReal
	case len(f) == 1 && strings.EqualFold(f[0], "string"):
		pc.Kind = wrapper.KindString
	case len(f) == 2 && strings.EqualFold(f[0], "domain"):
		d, ok := m.Domains[f[1]]
		if !ok {
			return pc, fmt.Errorf("unknown domain %q", f[1])
		}
		pc.Kind = wrapper.KindDomain
		pc.Domain = d
	default:
		return pc, fmt.Errorf("unknown cell kind %q", kind)
	}
	if spec != "" {
		found := -1
		for idx, c := range p.Cells {
			if c.Headline == spec {
				found = idx
			}
		}
		if found < 0 {
			return pc, fmt.Errorf("specializes references unknown earlier cell %q", spec)
		}
		pc.SpecializationOf = found
	}
	return pc, nil
}

// parseRelationLine parses: NAME(Attr: Z, Attr: S, ...)
func parseRelationLine(rest string) (*relational.Schema, error) {
	open := strings.IndexByte(rest, '(')
	close := strings.LastIndexByte(rest, ')')
	if open < 0 || close < open {
		return nil, fmt.Errorf("relation syntax: relation NAME(Attr: Z, ...)")
	}
	name := strings.TrimSpace(rest[:open])
	var attrs []relational.Attribute
	for _, part := range strings.Split(rest[open+1:close], ",") {
		kv := strings.SplitN(part, ":", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("attribute syntax: Name: Domain, got %q", part)
		}
		dom, err := relational.ParseDomain(kv[1])
		if err != nil {
			return nil, err
		}
		attrs = append(attrs, relational.Attribute{Name: strings.TrimSpace(kv[0]), Domain: dom})
	}
	return relational.NewSchema(name, attrs...)
}
