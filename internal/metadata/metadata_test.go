package metadata_test

import (
	"math/rand"
	"strings"
	"testing"

	"dart/internal/aggrcons"
	"dart/internal/docgen"
	"dart/internal/lexicon"
	"dart/internal/metadata"
	"dart/internal/runningex"
	"dart/internal/scenario"
)

func TestParseCashBudgetScenario(t *testing.T) {
	md, err := scenario.CashBudget()
	if err != nil {
		t.Fatal(err)
	}
	if md.Title != "Cash budget acquisition" {
		t.Errorf("title = %q", md.Title)
	}
	if len(md.Domains) != 2 {
		t.Errorf("domains = %d", len(md.Domains))
	}
	if got := len(md.Domains["Subsection"].Items()); got != 10 {
		t.Errorf("subsection items = %d", got)
	}
	if !md.Hierarchy.IsSpecializationOf("cash sales", "Receipts") {
		t.Error("hierarchy missing")
	}
	if len(md.Patterns) != 1 || len(md.Patterns[0].Cells) != 4 {
		t.Fatalf("patterns = %+v", md.Patterns)
	}
	if md.Patterns[0].Cells[2].SpecializationOf != 1 {
		t.Errorf("Subsection cell should specialize cell 1, got %d", md.Patterns[0].Cells[2].SpecializationOf)
	}
	if md.TNorm != lexicon.TNormMin || md.MinScore != 0.5 {
		t.Errorf("tnorm/minscore = %v/%v", md.TNorm, md.MinScore)
	}
	if md.Schema.String() != runningex.Schema().String() {
		t.Errorf("schema = %s", md.Schema)
	}
	if len(md.Measures) != 1 || md.Measures[0] != "Value" {
		t.Errorf("measures = %v", md.Measures)
	}
	if md.CellOf["Year"] != "Year" || md.CellOf["Value"] != "Value" {
		t.Errorf("cellOf = %v", md.CellOf)
	}
	cl := md.Classifications["Type"]
	if cl == nil || cl.FromHeadline != "Subsection" {
		t.Fatalf("classification = %+v", cl)
	}
	if c, ok := cl.Classify("Total Cash Receipts"); !ok || c != "aggr" {
		t.Errorf("Classify(total cash receipts) = %q, %v", c, ok)
	}
	if len(md.Constraints()) != 3 {
		t.Errorf("constraints = %d", len(md.Constraints()))
	}
}

func TestParsedConstraintsEquivalentToFixtures(t *testing.T) {
	md, err := scenario.CashBudget()
	if err != nil {
		t.Fatal(err)
	}
	db := runningex.AcquiredDatabase()
	viols, err := aggrcons.Check(db, md.Constraints(), 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if len(viols) != 2 {
		t.Errorf("violations = %d, want 2", len(viols))
	}
	for _, k := range md.Constraints() {
		if !k.IsSteady(db) {
			t.Errorf("%s not steady", k.Name)
		}
	}
}

func TestParseCatalogScenario(t *testing.T) {
	md, err := scenario.Catalog()
	if err != nil {
		t.Fatal(err)
	}
	if md.Schema.Name() != "Orders" {
		t.Errorf("schema = %s", md.Schema)
	}
	if len(md.Constraints()) != 1 {
		t.Errorf("constraints = %d", len(md.Constraints()))
	}
	db := docgen.OrdersDatabase(docgen.RandomOrders(newRand(), 5))
	viols, err := aggrcons.Check(db, md.Constraints(), 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if len(viols) != 0 {
		t.Errorf("consistent orders reported violations: %v", viols)
	}
}

func TestMetadataParseErrors(t *testing.T) {
	base := "relation R(A: Z)\nmeasure R.A\nmap A from cell A\npattern p:\n  cell A: Integer\n"
	cases := []struct {
		name, src, wantErr string
	}{
		{"unknown directive", "bogus x\n" + base, "unknown directive"},
		{"bad domain", "domain : 'a'\n" + base, "domain"},
		{"bad unquoted domain item", "domain D: a, b\n" + base, "quoted"},
		{"bad hierarchy", "hierarchy 'a' 'b'\n" + base, "expected 'a' -> 'b'"},
		{"cell outside pattern", "cell X: Integer\n" + base, "outside a pattern"},
		{"unknown domain ref", base + "pattern q:\n  cell B: domain Nope\n", "unknown domain"},
		{"bad cell kind", base + "pattern q:\n  cell B: Complex\n", "unknown cell kind"},
		{"unknown specializes", base + "pattern q:\n  cell B: Integer specializes Zed\n", "unknown earlier cell"},
		{"bad tnorm", "tnorm banana\n" + base, "unknown t-norm"},
		{"bad minscore", "minscore 7\n" + base, "bad minscore"},
		{"dup relation", base + "relation S(B: Z)\n", "duplicate relation"},
		{"bad measure", "measure R\n" + base, "Relation.Attribute"},
		{"bad map", "map A cell B\n" + base, "map syntax"},
		{"bad classify", "classify A of B:\n" + base, "classify syntax"},
		{"unterminated constraints", base + "constraints:\nfunc f() := SELECT sum(A) FROM R\n", "unterminated"},
		{"bad relation syntax", "relation R A: Z\npattern p:\n  cell A: Integer\nmap A from cell A\n", "relation syntax"},
		{"no relation", "pattern p:\n  cell A: Integer\n", "no relation"},
		{"no pattern", "relation R(A: Z)\nmap A from cell A\n", "no row patterns"},
		{"attr no source", "relation R(A: Z, B: Z)\nmap A from cell A\npattern p:\n  cell A: Integer\n", "no source"},
	}
	for _, tc := range cases {
		_, err := metadata.Parse(tc.src)
		if err == nil {
			t.Errorf("%s: want error containing %q, got nil", tc.name, tc.wantErr)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q missing %q", tc.name, err, tc.wantErr)
		}
	}
}

func TestMetadataCommentsAndQuotedHash(t *testing.T) {
	src := `
# full line comment
relation R(A: Z, Note: S)  # trailing comment
measure R.A
domain D: 'item # with hash', 'other'
pattern p:
  cell A: Integer
  cell Note: domain D
map A from cell A
map Note from cell Note
`
	md, err := metadata.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if !md.Domains["D"].Contains("item # with hash") {
		t.Errorf("quoted hash mishandled: %v", md.Domains["D"].Items())
	}
}

func TestMetadataTNormVariants(t *testing.T) {
	for name, want := range map[string]lexicon.TNorm{
		"min": lexicon.TNormMin, "product": lexicon.TNormProduct, "lukasiewicz": lexicon.TNormLukasiewicz,
	} {
		src := "tnorm " + name + "\nrelation R(A: Z)\nmap A from cell A\npattern p:\n  cell A: Integer\n"
		md, err := metadata.Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if md.TNorm != want {
			t.Errorf("%s parsed as %v", name, md.TNorm)
		}
	}
}

func newRand() *rand.Rand { return rand.New(rand.NewSource(99)) }
