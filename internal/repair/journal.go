package repair

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// WriteJournal exports the ledger's event journal as JSONL, one event per
// line — the format cmd/dart's -decisions flag writes and -replay reads.
func (l *Ledger) WriteJournal(w io.Writer) error {
	for _, ev := range l.Journal() {
		line, err := json.Marshal(ev)
		if err != nil {
			return fmt.Errorf("repair: encoding journal event %d: %w", ev.Seq, err)
		}
		if _, err := w.Write(append(line, '\n')); err != nil {
			return err
		}
	}
	return nil
}

// ReadJournal parses a JSONL event journal; blank lines are skipped.
func ReadJournal(r io.Reader) ([]Event, error) {
	var events []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 8<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(raw, &ev); err != nil {
			return nil, fmt.Errorf("repair: journal line %d: %w", line, err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("repair: reading journal: %w", err)
	}
	return events, nil
}
