package repair

import (
	"context"
	"fmt"
)

// Decider decides the open suggestions of one validation round. The loop
// calls Decide with the open queue in review order; implementations mutate
// the ledger (Accept/Reject/Revert) and return when the round is worked —
// they need not decide everything (undecided suggestions come back next
// round; the loop re-solves once the queue drains or a round ends).
//
// The stdin operator, the dartd HTTP workbench, and non-interactive
// journal replay are all Deciders over the same ledger.
type Decider interface {
	Decide(ctx context.Context, l *Ledger, open []Suggestion) error
}

// DeciderFunc adapts a function to the Decider interface.
type DeciderFunc func(ctx context.Context, l *Ledger, open []Suggestion) error

// Decide implements Decider.
func (f DeciderFunc) Decide(ctx context.Context, l *Ledger, open []Suggestion) error {
	return f(ctx, l, open)
}

// RequireDecided is the decider of non-interactive journal replays: every
// decision the session needs must already be in the restored journal, so
// being consulted at all — the loop only calls Decide with a non-empty
// open queue — means the journal does not cover this run.
type RequireDecided struct{}

// Decide implements Decider by failing with a description of what is
// missing.
func (RequireDecided) Decide(_ context.Context, _ *Ledger, open []Suggestion) error {
	if len(open) == 0 {
		return nil
	}
	return fmt.Errorf("repair: replay journal leaves %d suggestion(s) undecided (first: %s); was the journal recorded on a different document, solver, or decision sequence?", len(open), &open[0])
}
