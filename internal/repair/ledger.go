package repair

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dart/internal/core"
)

var (
	// ErrNotFound reports a decision addressed to an unknown suggestion.
	ErrNotFound = errors.New("repair: no such suggestion")
	// ErrSeqConflict reports an optimistic-concurrency failure: the caller
	// decided on a stale view of the suggestion (its Seq moved on).
	ErrSeqConflict = errors.New("repair: suggestion changed since it was read")
	// ErrState reports a transition the state machine forbids (accepting a
	// rejected suggestion, reverting an open one, ...).
	ErrState = errors.New("repair: invalid suggestion state transition")
	// ErrClosed rejects mutations after the session ended.
	ErrClosed = errors.New("repair: ledger is closed")
)

// Ledger collects the suggestions of one validation session: the live
// suggestion set, the append-only event journal, the derived pin set, and a
// wait primitive deciders park on. All mutations append one Event to the
// journal and feed it to the bound observer, so restoring a ledger from its
// journal reproduces the exact pre-crash state.
type Ledger struct {
	mu      sync.Mutex
	cond    *sync.Cond
	byID    map[int]*Suggestion
	order   []int
	byItem  map[core.Item]int // live (proposed/accepted/rejected) suggestion per item
	journal []Event
	nextID  int
	nextSeq uint64
	ctrs    Counters
	closed  bool
	// observer receives every event while mu is held (appends stay ordered);
	// it must not call back into the ledger.
	observer func(Event)
	// now is the transition clock; tests override it for determinism.
	now func() time.Time

	open atomic.Int64
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger {
	l := &Ledger{
		byID:   make(map[int]*Suggestion),
		byItem: make(map[core.Item]int),
		now:    time.Now,
	}
	l.cond = sync.NewCond(&l.mu)
	return l
}

// Restore rebuilds a ledger from an event journal (the crash-recovery and
// replay path). IDs, sequences, and audit timestamps come back exactly as
// journaled, so a session resumed on a restored ledger re-proposes its open
// suggestions idempotently instead of minting fresh records.
func Restore(events []Event) *Ledger {
	l := NewLedger()
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, ev := range events {
		snap := ev.Suggestion
		snap.Evidence = append([]string(nil), ev.Suggestion.Evidence...)
		if _, seen := l.byID[snap.ID]; !seen {
			l.order = append(l.order, snap.ID)
		}
		l.byID[snap.ID] = &snap
		switch ev.Kind {
		case KindProposed:
			l.byItem[snap.Item()] = snap.ID
			l.ctrs.Proposed++
		case KindAccepted:
			if autoDecided(snap.DecidedBy) {
				l.ctrs.AutoAccepted++
			} else {
				l.ctrs.Accepted++
				l.ctrs.Examined++
			}
		case KindRejected:
			l.ctrs.Rejected++
			l.ctrs.Examined++
		case KindReverted:
			l.ctrs.Reverted++
			if l.byItem[snap.Item()] == snap.ID {
				delete(l.byItem, snap.Item())
			}
		case KindSuperseded:
			l.ctrs.Superseded++
			if l.byItem[snap.Item()] == snap.ID {
				delete(l.byItem, snap.Item())
			}
		}
		if ev.Seq > l.nextSeq {
			l.nextSeq = ev.Seq
		}
		if snap.ID > l.nextID {
			l.nextID = snap.ID
		}
		l.journal = append(l.journal, ev)
	}
	var open int64
	for _, s := range l.byID {
		if s.Open() {
			open++
		}
	}
	l.open.Store(open)
	return l
}

// SetObserver binds the event observer; every subsequent transition is
// delivered under the ledger lock, in journal order. Bind before the
// session starts.
func (l *Ledger) SetObserver(fn func(Event)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.observer = fn
}

// SetNow overrides the transition clock (tests).
func (l *Ledger) SetNow(now func() time.Time) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.now = now
}

// appendEventLocked journals one transition: it advances the event
// sequence, stamps it onto the suggestion (the next concurrency token),
// records the post-transition snapshot, and feeds the observer.
func (l *Ledger) appendEventLocked(kind Kind, s *Suggestion, at time.Time) {
	l.nextSeq++
	s.Seq = l.nextSeq
	snap := *s
	snap.Evidence = append([]string(nil), s.Evidence...)
	ev := Event{Seq: l.nextSeq, Kind: kind, At: at.UnixNano(), Suggestion: snap}
	l.journal = append(l.journal, ev)
	if l.observer != nil {
		l.observer(ev)
	}
}

// SyncRound reconciles the ledger with one re-solve's candidate updates:
// open proposals the solver no longer suggests are superseded, proposals
// already open (same cell, same value) are kept as-is — a resumed session
// re-proposes its restored queue without new events — and genuinely new
// proposals enter as fresh suggestions. It returns the open queue in
// review order: occurrences descending (the paper's heuristic), then
// confidence ascending (least-confident first, where operator attention
// pays most), then ID.
func (l *Ledger) SyncRound(iteration int, props []Proposal) []Suggestion {
	l.mu.Lock()
	defer l.mu.Unlock()
	at := l.now()
	want := make(map[core.Item]float64, len(props))
	for _, p := range props {
		want[p.Item] = p.New
	}
	for _, id := range l.order {
		s := l.byID[id]
		if !s.Open() {
			continue
		}
		if v, ok := want[s.Item()]; ok && v == s.New {
			continue
		}
		l.supersedeLocked(s, "solver", at)
	}
	for _, p := range props {
		if id, ok := l.byItem[p.Item]; ok {
			if s := l.byID[id]; s.Open() || s.Decided() {
				// Already open with the same value (stale-value proposals
				// were superseded above, clearing byItem), or decided —
				// nothing to propose.
				continue
			}
		}
		l.nextID++
		s := &Suggestion{
			ID:          l.nextID,
			Relation:    p.Item.Relation,
			Tuple:       p.Item.TupleID,
			Attr:        p.Item.Attr,
			Domain:      p.Domain,
			Old:         p.Old,
			New:         p.New,
			Occurrences: p.Occurrences,
			Confidence:  p.Confidence,
			Evidence:    append([]string(nil), p.Evidence...),
			State:       StateProposed,
			Iteration:   iteration,
			ProposedAt:  at.UnixNano(),
		}
		l.byID[s.ID] = s
		l.order = append(l.order, s.ID)
		l.byItem[p.Item] = s.ID
		l.ctrs.Proposed++
		l.open.Add(1)
		l.appendEventLocked(KindProposed, s, at)
	}
	return l.openLocked()
}

// supersedeLocked invalidates one open proposal.
func (l *Ledger) supersedeLocked(s *Suggestion, by string, at time.Time) {
	s.State = StateSuperseded
	s.SupersededAt = at.UnixNano()
	s.SupersededBy = by
	if l.byItem[s.Item()] == s.ID {
		delete(l.byItem, s.Item())
	}
	l.ctrs.Superseded++
	l.open.Add(-1)
	l.appendEventLocked(KindSuperseded, s, at)
}

// openLocked returns the open queue in review order.
func (l *Ledger) openLocked() []Suggestion {
	var out []Suggestion
	for _, id := range l.order {
		if s := l.byID[id]; s.Open() {
			snap := *s
			snap.Evidence = append([]string(nil), s.Evidence...)
			out = append(out, snap)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Occurrences != out[j].Occurrences {
			return out[i].Occurrences > out[j].Occurrences
		}
		if out[i].Confidence != out[j].Confidence {
			return out[i].Confidence < out[j].Confidence
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Open returns the open suggestion queue in review order.
func (l *Ledger) Open() []Suggestion {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.openLocked()
}

// List returns every suggestion in ID order — the full audit history.
func (l *Ledger) List() []Suggestion {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Suggestion, 0, len(l.order))
	for _, id := range l.order {
		s := l.byID[id]
		snap := *s
		snap.Evidence = append([]string(nil), s.Evidence...)
		out = append(out, snap)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Get returns one suggestion by ID.
func (l *Ledger) Get(id int) (Suggestion, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	s, ok := l.byID[id]
	if !ok {
		return Suggestion{}, false
	}
	snap := *s
	snap.Evidence = append([]string(nil), s.Evidence...)
	return snap, true
}

// decidableLocked validates the common decision preconditions.
func (l *Ledger) decidableLocked(id int, seq uint64) (*Suggestion, error) {
	if l.closed {
		return nil, ErrClosed
	}
	s, ok := l.byID[id]
	if !ok {
		return nil, fmt.Errorf("%w: id %d", ErrNotFound, id)
	}
	if s.Seq != seq {
		return nil, fmt.Errorf("%w: %s is at seq %d, decision read seq %d", ErrSeqConflict, s, s.Seq, seq)
	}
	return s, nil
}

// Accept confirms the suggested value: proposed → accepted, pinning New.
// seq must match the suggestion's current Seq (optimistic concurrency).
func (l *Ledger) Accept(id int, by string, seq uint64) (Suggestion, error) {
	return l.decide(id, by, seq, StateAccepted, 0)
}

// Reject pins the actual source value instead: proposed → rejected.
func (l *Ledger) Reject(id int, actual float64, by string, seq uint64) (Suggestion, error) {
	return l.decide(id, by, seq, StateRejected, actual)
}

// decide applies one accept/reject transition.
func (l *Ledger) decide(id int, by string, seq uint64, to State, actual float64) (Suggestion, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	s, err := l.decidableLocked(id, seq)
	if err != nil {
		return Suggestion{}, err
	}
	if !s.Open() {
		return Suggestion{}, fmt.Errorf("%w: cannot %s %s", ErrState, to, s)
	}
	if by == "" {
		by = "operator"
	}
	at := l.now()
	s.State = to
	s.DecidedAt = at.UnixNano()
	s.DecidedBy = by
	kind := KindAccepted
	if to == StateAccepted {
		s.DecidedValue = s.New
		if autoDecided(by) {
			l.ctrs.AutoAccepted++
		} else {
			l.ctrs.Accepted++
			l.ctrs.Examined++
		}
	} else {
		kind = KindRejected
		s.DecidedValue = actual
		l.ctrs.Rejected++
		l.ctrs.Examined++
	}
	l.open.Add(-1)
	l.appendEventLocked(kind, s, at)
	l.cond.Broadcast()
	return *s, nil
}

// Revert rolls back an accepted decision: accepted → reverted, the pin is
// removed, and — because every open proposal was computed by a re-solve
// that assumed the pin — all open proposals are superseded. The next
// re-solve re-proposes whatever still holds without it.
func (l *Ledger) Revert(id int, by string, seq uint64) (Suggestion, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	s, err := l.decidableLocked(id, seq)
	if err != nil {
		return Suggestion{}, err
	}
	if s.State != StateAccepted {
		return Suggestion{}, fmt.Errorf("%w: cannot revert %s (only accepted decisions revert)", ErrState, s)
	}
	if by == "" {
		by = "operator"
	}
	at := l.now()
	s.State = StateReverted
	s.RevertedAt = at.UnixNano()
	s.RevertedBy = by
	if l.byItem[s.Item()] == s.ID {
		delete(l.byItem, s.Item())
	}
	l.ctrs.Reverted++
	l.appendEventLocked(KindReverted, s, at)
	for _, oid := range l.order {
		if dep := l.byID[oid]; dep.Open() {
			l.supersedeLocked(dep, fmt.Sprintf("revert:%d", id), at)
		}
	}
	l.cond.Broadcast()
	return *s, nil
}

// Pins returns the forced-value set the solver must honor: accepted
// suggestions pin their suggested value, rejected ones the operator's
// actual source value. Reverted and superseded suggestions pin nothing.
func (l *Ledger) Pins() map[core.Item]float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[core.Item]float64)
	for _, id := range l.byItem {
		if s := l.byID[id]; s.Decided() {
			out[s.Item()] = s.DecidedValue
		}
	}
	return out
}

// DecidedItems returns the cells carrying a live decision.
func (l *Ledger) DecidedItems() map[core.Item]bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[core.Item]bool)
	for it, id := range l.byItem {
		if l.byID[id].Decided() {
			out[it] = true
		}
	}
	return out
}

// OpenCount reports the number of suggestions awaiting a decision. The
// counter is atomic, which lockcheck recognizes as self-guarding.
func (l *Ledger) OpenCount() int { return int(l.open.Load()) }

// Counters returns the ledger's activity tallies.
func (l *Ledger) Counters() Counters {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.ctrs
}

// JournalLen reports the number of journaled events.
func (l *Ledger) JournalLen() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.journal)
}

// JournalSince returns a copy of the events journaled at index n onward.
func (l *Ledger) JournalSince(n int) []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	if n < 0 || n > len(l.journal) {
		n = len(l.journal)
	}
	return append([]Event(nil), l.journal[n:]...)
}

// Journal returns a copy of the full event journal.
func (l *Ledger) Journal() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Event(nil), l.journal...)
}

// MaxIteration reports the highest round number that proposed a
// suggestion; a session resuming on a restored ledger continues its
// iteration count from there.
func (l *Ledger) MaxIteration() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	max := 0
	for _, s := range l.byID {
		if s.Iteration > max {
			max = s.Iteration
		}
	}
	return max
}

// WaitNoOpen parks until every open suggestion is decided (or superseded),
// the ledger closes, or ctx is done. The dartd decider parks here while
// operators work the queue over HTTP.
func (l *Ledger) WaitNoOpen(ctx context.Context) error {
	// Wake the cond wait when the context fires; without this a cancelled
	// session would park forever on a queue nobody will decide.
	stop := context.AfterFunc(ctx, func() {
		l.mu.Lock()
		l.cond.Broadcast()
		l.mu.Unlock()
	})
	defer stop()
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if l.closed {
			return ErrClosed
		}
		if l.open.Load() == 0 {
			return nil
		}
		l.cond.Wait()
	}
}

// Close ends the session: further mutations fail with ErrClosed and parked
// waiters wake. Reads (List, Journal, ...) keep working — a finished
// session's audit history stays queryable. Idempotent.
func (l *Ledger) Close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.closed = true
	l.cond.Broadcast()
}
