package repair

import (
	"fmt"

	"dart/internal/core"
	"dart/internal/relational"
)

// Overlay resolves reads through a ledger's decided set without mutating
// the base database: the acquired instance stays immutable for the whole
// session, and the final repaired database is materialized from base +
// pins in a single clone at the end.
type Overlay struct {
	base   *relational.Database
	ledger *Ledger
}

// NewOverlay wraps a base database and the session's ledger.
func NewOverlay(base *relational.Database, ledger *Ledger) *Overlay {
	return &Overlay{base: base, ledger: ledger}
}

// Base returns the immutable acquired database.
func (o *Overlay) Base() *relational.Database { return o.base }

// Pins returns the ledger's current forced-value set.
func (o *Overlay) Pins() map[core.Item]float64 { return o.ledger.Pins() }

// Value resolves one cell: the pinned decided value when a live decision
// covers the cell, the base value otherwise. ok is false when the cell
// does not exist in the base database.
func (o *Overlay) Value(it core.Item) (v float64, pinned, ok bool) {
	if pin, has := o.ledger.Pins()[it]; has {
		return pin, true, true
	}
	rel := o.base.Relation(it.Relation)
	if rel == nil {
		return 0, false, false
	}
	t := rel.TupleByID(it.TupleID)
	if t == nil {
		return 0, false, false
	}
	return t.Get(it.Attr).AsFloat(), false, true
}

// Materialize produces the repaired database: one clone of the base with
// every pinned decided value written through, domains respected. The base
// is never touched.
func (o *Overlay) Materialize() (*relational.Database, error) {
	out := o.base.Clone()
	for it, v := range o.ledger.Pins() {
		rel := out.Relation(it.Relation)
		if rel == nil {
			return nil, fmt.Errorf("repair: pinned cell names unknown relation %q", it.Relation)
		}
		dom, err := rel.Schema().DomainOf(it.Attr)
		if err != nil {
			return nil, fmt.Errorf("repair: pinned cell %v: %w", it, err)
		}
		val, err := relational.FromFloat(v, dom)
		if err != nil {
			return nil, fmt.Errorf("repair: pinned cell %v: %w", it, err)
		}
		if err := rel.SetValue(it.TupleID, it.Attr, val); err != nil {
			return nil, fmt.Errorf("repair: applying pin %v: %w", it, err)
		}
	}
	return out, nil
}
