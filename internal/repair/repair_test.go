package repair

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"testing"
	"time"

	"dart/internal/core"
	"dart/internal/relational"
)

// fakeClock hands out strictly increasing instants so every event carries a
// distinct, deterministic timestamp.
func fakeClock() func() time.Time {
	t := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	return func() time.Time {
		t = t.Add(time.Second)
		return t
	}
}

func item(tuple int) core.Item {
	return core.Item{Relation: "cashbudget", TupleID: tuple, Attr: "value"}
}

func prop(tuple int, old, new float64, occ int) Proposal {
	return Proposal{
		Item:        item(tuple),
		Domain:      "Z",
		Old:         old,
		New:         new,
		Occurrences: occ,
		Confidence:  Confidence(old, new),
		Evidence:    []string{"sec1: sum(value) = total"},
	}
}

func TestLedgerLifecycleAndPins(t *testing.T) {
	l := NewLedger()
	l.SetNow(fakeClock())
	open := l.SyncRound(1, []Proposal{prop(1, 250, 220, 3), prop(2, 10, 15, 1)})
	if len(open) != 2 {
		t.Fatalf("open after sync = %d, want 2", len(open))
	}
	// Review order: occurrences descending.
	if open[0].Item() != item(1) {
		t.Fatalf("review order puts %v first, want tuple 1 (occ 3)", open[0].Item())
	}
	if got := l.OpenCount(); got != 2 {
		t.Fatalf("OpenCount = %d, want 2", got)
	}

	acc, err := l.Accept(open[0].ID, "alice", open[0].Seq)
	if err != nil {
		t.Fatal(err)
	}
	if acc.State != StateAccepted || acc.DecidedBy != "alice" || acc.DecidedValue != 220 {
		t.Fatalf("accepted suggestion = %+v", acc)
	}
	rej, err := l.Reject(open[1].ID, 12, "bob", open[1].Seq)
	if err != nil {
		t.Fatal(err)
	}
	if rej.State != StateRejected || rej.DecidedValue != 12 {
		t.Fatalf("rejected suggestion = %+v", rej)
	}
	pins := l.Pins()
	if pins[item(1)] != 220 || pins[item(2)] != 12 {
		t.Fatalf("pins = %v, want tuple1=220 tuple2=12", pins)
	}
	c := l.Counters()
	if c.Proposed != 2 || c.Accepted != 1 || c.Rejected != 1 || c.Examined != 2 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestLedgerSeqConflictAndStateErrors(t *testing.T) {
	l := NewLedger()
	l.SetNow(fakeClock())
	open := l.SyncRound(1, []Proposal{prop(1, 250, 220, 1)})
	sg := open[0]
	if _, err := l.Accept(sg.ID, "", sg.Seq+41); !errors.Is(err, ErrSeqConflict) {
		t.Fatalf("stale-seq accept error = %v, want ErrSeqConflict", err)
	}
	if _, err := l.Revert(sg.ID, "", sg.Seq); !errors.Is(err, ErrState) {
		t.Fatalf("revert of open suggestion = %v, want ErrState", err)
	}
	acc, err := l.Accept(sg.ID, "", sg.Seq)
	if err != nil {
		t.Fatal(err)
	}
	// The decision advanced the seq: deciding again on the old token
	// conflicts; on the fresh token it violates the state machine.
	if _, err := l.Accept(sg.ID, "", sg.Seq); !errors.Is(err, ErrSeqConflict) {
		t.Fatalf("re-accept on stale seq = %v, want ErrSeqConflict", err)
	}
	if _, err := l.Reject(sg.ID, 0, "", acc.Seq); !errors.Is(err, ErrState) {
		t.Fatalf("reject of accepted suggestion = %v, want ErrState", err)
	}
	if _, err := l.Accept(99, "", 1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("accept of unknown id = %v, want ErrNotFound", err)
	}
	l.Close()
	if _, err := l.Revert(sg.ID, "", acc.Seq); !errors.Is(err, ErrClosed) {
		t.Fatalf("mutation after Close = %v, want ErrClosed", err)
	}
}

func TestRevertInvalidatesOpenProposals(t *testing.T) {
	l := NewLedger()
	l.SetNow(fakeClock())
	open := l.SyncRound(1, []Proposal{prop(1, 250, 220, 3), prop(2, 10, 15, 1)})
	acc, err := l.Accept(open[0].ID, "", open[0].Seq)
	if err != nil {
		t.Fatal(err)
	}
	rev, err := l.Revert(acc.ID, "carol", acc.Seq)
	if err != nil {
		t.Fatal(err)
	}
	if rev.State != StateReverted || rev.RevertedBy != "carol" {
		t.Fatalf("reverted suggestion = %+v", rev)
	}
	// The revert removed the pin AND superseded the dependent open proposal.
	if n := l.OpenCount(); n != 0 {
		t.Fatalf("open after revert = %d, want 0 (dependents superseded)", n)
	}
	dep, _ := l.Get(open[1].ID)
	if dep.State != StateSuperseded || dep.SupersededBy != "revert:"+itoa(acc.ID) {
		t.Fatalf("dependent = %+v, want superseded by revert:%d", dep, acc.ID)
	}
	if len(l.Pins()) != 0 {
		t.Fatalf("pins after revert = %v, want none", l.Pins())
	}
	// The next round re-proposes as fresh records.
	open2 := l.SyncRound(2, []Proposal{prop(1, 250, 220, 3), prop(2, 10, 15, 1)})
	if len(open2) != 2 || open2[0].ID == open[0].ID {
		t.Fatalf("re-sync after revert: open=%v", open2)
	}
	c := l.Counters()
	if c.Reverted != 1 || c.Superseded != 1 || c.Proposed != 4 {
		t.Fatalf("counters = %+v", c)
	}
}

func itoa(n int) string {
	b, _ := json.Marshal(n)
	return string(b)
}

func TestSyncRoundIsIdempotentAndSupersedesStale(t *testing.T) {
	l := NewLedger()
	l.SetNow(fakeClock())
	open := l.SyncRound(1, []Proposal{prop(1, 250, 220, 3)})
	events := l.JournalLen()
	// Same proposal again: no new suggestion, no new event.
	again := l.SyncRound(2, []Proposal{prop(1, 250, 220, 3)})
	if len(again) != 1 || again[0].ID != open[0].ID || l.JournalLen() != events {
		t.Fatalf("idempotent re-sync minted events: open=%v journal %d -> %d", again, events, l.JournalLen())
	}
	// A different value for the same cell supersedes and re-proposes.
	changed := l.SyncRound(3, []Proposal{prop(1, 250, 230, 3)})
	if len(changed) != 1 || changed[0].ID == open[0].ID || changed[0].New != 230 {
		t.Fatalf("value change not re-proposed: %v", changed)
	}
	old, _ := l.Get(open[0].ID)
	if old.State != StateSuperseded || old.SupersededBy != "solver" {
		t.Fatalf("stale proposal = %+v, want superseded by solver", old)
	}
}

func TestAutoAcceptCountsSeparately(t *testing.T) {
	l := NewLedger()
	l.SetNow(fakeClock())
	open := l.SyncRound(1, []Proposal{prop(1, 250, 220, 1)})
	if _, err := l.Accept(open[0].ID, "auto:reliable", open[0].Seq); err != nil {
		t.Fatal(err)
	}
	c := l.Counters()
	if c.AutoAccepted != 1 || c.Accepted != 0 || c.Examined != 0 {
		t.Fatalf("auto-accept counters = %+v, want AutoAccepted=1 Examined=0", c)
	}
}

func TestJournalRoundTripAndRestore(t *testing.T) {
	l := NewLedger()
	l.SetNow(fakeClock())
	open := l.SyncRound(1, []Proposal{prop(1, 250, 220, 3), prop(2, 10, 15, 1)})
	if _, err := l.Accept(open[0].ID, "alice", open[0].Seq); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Reject(open[1].ID, 12, "bob", open[1].Seq); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := l.WriteJournal(&buf); err != nil {
		t.Fatal(err)
	}
	events, err := ReadJournal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	restored := Restore(events)

	// Byte-identical audit state: suggestions, counters, pins, journal.
	want, _ := json.Marshal(l.List())
	got, _ := json.Marshal(restored.List())
	if !bytes.Equal(want, got) {
		t.Fatalf("restored suggestions differ:\n%s\n%s", want, got)
	}
	if l.Counters() != restored.Counters() {
		t.Fatalf("restored counters %+v, want %+v", restored.Counters(), l.Counters())
	}
	var rebuf bytes.Buffer
	if err := restored.WriteJournal(&rebuf); err != nil {
		t.Fatal(err)
	}
	var orig bytes.Buffer
	if err := l.WriteJournal(&orig); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(orig.Bytes(), rebuf.Bytes()) {
		t.Fatal("re-exported journal is not byte-identical")
	}

	// A restored ledger keeps numbering: new suggestions get fresh IDs/seqs.
	restored.SetNow(fakeClock())
	open2 := restored.SyncRound(2, []Proposal{prop(3, 1, 2, 1)})
	if len(open2) != 1 || open2[0].ID != 3 {
		t.Fatalf("post-restore proposal = %v, want ID 3", open2)
	}
	if restored.MaxIteration() != 2 {
		t.Fatalf("MaxIteration = %d, want 2", restored.MaxIteration())
	}
}

func TestWaitNoOpenWakesOnLastDecisionAndCancel(t *testing.T) {
	l := NewLedger()
	l.SetNow(fakeClock())
	open := l.SyncRound(1, []Proposal{prop(1, 250, 220, 1)})

	done := make(chan error, 1)
	go func() { done <- l.WaitNoOpen(context.Background()) }()
	time.Sleep(10 * time.Millisecond)
	if _, err := l.Accept(open[0].ID, "", open[0].Seq); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("WaitNoOpen = %v after last decision", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("WaitNoOpen did not wake after the last decision")
	}

	// Cancellation wakes a parked waiter.
	l.SyncRound(2, []Proposal{prop(2, 1, 2, 1)})
	ctx, cancel := context.WithCancel(context.Background())
	go func() { done <- l.WaitNoOpen(ctx) }()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled WaitNoOpen = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("WaitNoOpen did not wake on cancellation")
	}
}

func TestOverlayMaterializeLeavesBaseUntouched(t *testing.T) {
	db := relational.NewDatabase()
	schema, err := relational.NewSchema("cashbudget",
		relational.Attribute{Name: "sec", Domain: relational.DomainString},
		relational.Attribute{Name: "value", Domain: relational.DomainInt})
	if err != nil {
		t.Fatal(err)
	}
	rel, err := db.AddRelation(schema)
	if err != nil {
		t.Fatal(err)
	}
	t1, err := rel.Insert(relational.String("a"), relational.Int(250))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.DesignateMeasure("cashbudget", "value"); err != nil {
		t.Fatal(err)
	}

	l := NewLedger()
	l.SetNow(fakeClock())
	open := l.SyncRound(1, []Proposal{{
		Item:   core.Item{Relation: "cashbudget", TupleID: t1.ID(), Attr: "value"},
		Domain: "Z", Old: 250, New: 220, Confidence: 1,
	}})
	if _, err := l.Accept(open[0].ID, "", open[0].Seq); err != nil {
		t.Fatal(err)
	}

	ov := NewOverlay(db, l)
	if v, pinned, ok := ov.Value(open[0].Item()); !ok || !pinned || v != 220 {
		t.Fatalf("overlay value = (%v, pinned=%v, ok=%v), want (220, true, true)", v, pinned, ok)
	}
	repaired, err := ov.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if got := repaired.Relation("cashbudget").TupleByID(t1.ID()).Get("value").AsInt(); got != 220 {
		t.Fatalf("materialized value = %d, want 220", got)
	}
	// The base database is untouched.
	if got := rel.TupleByID(t1.ID()).Get("value").AsInt(); got != 250 {
		t.Fatalf("base database mutated to %d, want 250", got)
	}
}

func TestRequireDecidedRefusesOpenQueue(t *testing.T) {
	l := NewLedger()
	l.SetNow(fakeClock())
	open := l.SyncRound(1, []Proposal{prop(1, 250, 220, 1)})
	if err := (RequireDecided{}).Decide(context.Background(), l, open); err == nil {
		t.Fatal("RequireDecided accepted an undecided queue")
	}
	if _, err := l.Accept(open[0].ID, "", open[0].Seq); err != nil {
		t.Fatal(err)
	}
	if err := (RequireDecided{}).Decide(context.Background(), l, nil); err != nil {
		t.Fatalf("RequireDecided on drained queue = %v", err)
	}
}
