// Package repair makes repairs first-class, auditable records. The acquired
// database stays immutable: every change the validation loop wants to make
// becomes a Suggestion — target cell, old/new value, the paper's
// ground-constraint participation count, a confidence score, and evidence
// summaries — that moves through an explicit state machine
//
//	PROPOSED ──accept──▶ ACCEPTED ──revert──▶ REVERTED
//	    │                    (reverting supersedes every open proposal)
//	    ├──reject──▶ REJECTED
//	    └──(stale re-solve / revert)──▶ SUPERSEDED
//
// with who/when audit fields on every transition. A Ledger collects the
// suggestions of one validation session, journals every transition as an
// Event (the durable, replayable decision history), and derives the pin set
// the solver re-solves under. An Overlay resolves reads through the decided
// set without ever mutating the base database; Materialize produces the
// final repaired instance from base + pins in one clone.
//
// Deciders are the generic operator interface: the stdin operator, the
// dartd HTTP workbench, and non-interactive journal replay are all just
// Decider implementations over the same ledger.
package repair

import (
	"fmt"
	"math"
	"strings"

	"dart/internal/core"
)

// State is the lifecycle state of one suggestion.
type State string

const (
	// StateProposed means the suggestion awaits a decision.
	StateProposed State = "proposed"
	// StateAccepted means an operator confirmed the suggested value.
	StateAccepted State = "accepted"
	// StateRejected means an operator supplied the actual source value
	// instead (the decided value pins that actual value).
	StateRejected State = "rejected"
	// StateReverted means an accepted decision was rolled back; the pin is
	// removed and every open proposal computed under it is superseded.
	StateReverted State = "reverted"
	// StateSuperseded means the proposal was invalidated before a decision:
	// a re-solve stopped suggesting it, or a revert removed a pin it was
	// computed under. Superseded suggestions stay in the ledger for audit;
	// a later re-solve proposing the same change gets a fresh record.
	StateSuperseded State = "superseded"
)

// States lists every state in lifecycle order.
var States = []State{StateProposed, StateAccepted, StateRejected, StateReverted, StateSuperseded}

// Suggestion is one auditable repair record. Timestamps are UnixNano so
// journal round-trips re-encode byte-identically. Seq is the ledger event
// sequence of the suggestion's latest transition: clients echo it back as
// the optimistic-concurrency token, so a decision based on a stale view
// fails with ErrSeqConflict instead of silently racing.
type Suggestion struct {
	ID  int    `json:"id"`
	Seq uint64 `json:"seq"`

	// Target cell plus its domain tag ("Z" or "R"; measures are numeric).
	Relation string `json:"relation"`
	Tuple    int    `json:"tuple"`
	Attr     string `json:"attr"`
	Domain   string `json:"domain"`

	// Old is the acquired value, New the solver's proposed replacement.
	Old float64 `json:"old"`
	New float64 `json:"new"`

	// Occurrences is the item's ground-constraint participation count
	// (Section 6.3's display-ordering heuristic); Confidence scores the
	// proposed change in (0, 1]; Evidence renders the ground constraints
	// the item participates in.
	Occurrences int      `json:"occurrences"`
	Confidence  float64  `json:"confidence"`
	Evidence    []string `json:"evidence,omitempty"`

	State State `json:"state"`
	// Iteration is the validation-loop round that proposed the suggestion.
	Iteration int `json:"iteration"`

	ProposedAt int64 `json:"proposed_at"`

	// Decision audit: who decided, when, and the pinned value (New for an
	// accept, the operator's actual source value for a reject).
	DecidedAt    int64   `json:"decided_at,omitempty"`
	DecidedBy    string  `json:"decided_by,omitempty"`
	DecidedValue float64 `json:"decided_value,omitempty"`

	// Revert / supersede audit.
	RevertedAt   int64  `json:"reverted_at,omitempty"`
	RevertedBy   string `json:"reverted_by,omitempty"`
	SupersededAt int64  `json:"superseded_at,omitempty"`
	SupersededBy string `json:"superseded_by,omitempty"`
}

// Item addresses the suggestion's target cell.
func (s *Suggestion) Item() core.Item {
	return core.Item{Relation: s.Relation, TupleID: s.Tuple, Attr: s.Attr}
}

// Open reports whether the suggestion still awaits a decision.
func (s *Suggestion) Open() bool { return s.State == StateProposed }

// Decided reports whether the suggestion carries a live decision (its
// decided value is pinned for subsequent re-solves).
func (s *Suggestion) Decided() bool { return s.State == StateAccepted || s.State == StateRejected }

// String renders the suggestion for logs and error messages.
func (s *Suggestion) String() string {
	return fmt.Sprintf("#%d %s[%d].%s: %v -> %v (%s)", s.ID, s.Relation, s.Tuple, s.Attr, s.Old, s.New, s.State)
}

// Kind tags one ledger event.
type Kind string

const (
	// KindProposed records a new suggestion entering the ledger.
	KindProposed Kind = "proposed"
	// KindAccepted records an operator accepting the suggested value.
	KindAccepted Kind = "accepted"
	// KindRejected records an operator pinning the actual source value.
	KindRejected Kind = "rejected"
	// KindReverted records an accepted decision being rolled back.
	KindReverted Kind = "reverted"
	// KindSuperseded records a proposal invalidated before a decision.
	KindSuperseded Kind = "superseded"
)

// Event is one journaled ledger transition: the event sequence, the kind,
// the transition time, and the full post-transition suggestion snapshot.
// Restoring a ledger from its event journal reproduces every suggestion —
// IDs, sequences, and audit timestamps included — byte-identically.
type Event struct {
	Seq        uint64     `json:"seq"`
	Kind       Kind       `json:"kind"`
	At         int64      `json:"at"`
	Suggestion Suggestion `json:"suggestion"`
}

// Proposal is one candidate update the validation loop syncs into the
// ledger each round.
type Proposal struct {
	Item        core.Item
	Domain      string
	Old, New    float64
	Occurrences int
	Confidence  float64
	Evidence    []string
}

// Counters tallies ledger activity. Examined counts operator decisions
// (accepts plus rejects, the paper's human-effort metric); auto-accepted
// suggestions (DecidedBy prefixed "auto:") are counted separately.
type Counters struct {
	Proposed     int `json:"proposed"`
	Examined     int `json:"examined"`
	Accepted     int `json:"accepted"`
	Rejected     int `json:"rejected"`
	AutoAccepted int `json:"auto_accepted"`
	Reverted     int `json:"reverted"`
	Superseded   int `json:"superseded"`
}

// autoDecided reports whether a decision was made without an operator
// (reliability auto-accepts use by = "auto:reliable").
func autoDecided(by string) bool { return strings.HasPrefix(by, "auto:") }

// Confidence scores a proposed update in (0, 1]: the smaller the change
// relative to the old magnitude, the likelier it is a genuine acquisition
// slip (a misread digit) rather than a structural disagreement, so small
// relative deltas score high. 1 means old == new.
func Confidence(old, new float64) float64 {
	return 1 / (1 + math.Abs(new-old)/(1+math.Abs(old)))
}
