package obs

import (
	"context"
	"fmt"
	"testing"
	"time"
)

// fakeClock hands out strictly increasing instants one millisecond apart.
func fakeClock() func() time.Time {
	t := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	return func() time.Time {
		t = t.Add(time.Millisecond)
		return t
	}
}

func TestSpanLifecycle(t *testing.T) {
	tr := New(Config{Now: fakeClock()})
	root := tr.StartTrace("job")
	root.SetStr("job_id", "job-000001")
	if root.TraceID() == "" || root.SpanID() == "" {
		t.Fatal("root span has empty IDs")
	}

	child := root.StartChild("stage.convert")
	child.SetInt("bytes", 42)
	child.SetFloat("score", 0.5)
	child.SetBool("ok", true)
	child.Event("started")
	child.EventInt("rows", "count", 7)
	child.End()
	child.SetInt("after_end", 1) // must be dropped
	child.End()                  // idempotent

	grand := child.StartChild("late") // children of an ended span still record
	grand.End()

	if tr.Len() != 0 {
		t.Fatalf("trace finished before root ended: Len = %d", tr.Len())
	}
	root.End()
	if tr.Len() != 1 {
		t.Fatalf("Len = %d after root end, want 1", tr.Len())
	}

	got, ok := tr.Trace(root.TraceID())
	if !ok {
		t.Fatalf("Trace(%q) not found", root.TraceID())
	}
	if len(got.Spans) != 3 {
		t.Fatalf("trace has %d spans, want 3", len(got.Spans))
	}
	if got.Name != "job" || got.DurationNS <= 0 {
		t.Errorf("trace = {Name: %q, DurationNS: %d}, want job with positive duration", got.Name, got.DurationNS)
	}

	byName := map[string]*SpanRecord{}
	for _, s := range got.Spans {
		byName[s.Name] = s
	}
	conv := byName["stage.convert"]
	if conv == nil {
		t.Fatal("stage.convert span missing")
	}
	if conv.ParentID != root.SpanID() {
		t.Errorf("stage.convert parent = %q, want root %q", conv.ParentID, root.SpanID())
	}
	if conv.Attrs["bytes"] != int64(42) || conv.Attrs["score"] != 0.5 || conv.Attrs["ok"] != true {
		t.Errorf("attrs = %v, want bytes=42 score=0.5 ok=true", conv.Attrs)
	}
	if _, ok := conv.Attrs["after_end"]; ok {
		t.Error("attribute set after End was recorded")
	}
	if len(conv.Events) != 2 || conv.Events[1].Attrs["count"] != int64(7) {
		t.Errorf("events = %+v, want started + rows{count: 7}", conv.Events)
	}
	if conv.Events[1].OffsetNS < 0 {
		t.Errorf("event offset %d is negative", conv.Events[1].OffsetNS)
	}

	tree := got.Tree()
	if tree == nil || tree.Name != "job" || len(tree.Children) != 1 {
		t.Fatalf("tree root = %+v, want job with 1 child", tree)
	}
	if tree.Children[0].Name != "stage.convert" || len(tree.Children[0].Children) != 1 {
		t.Errorf("tree child = %q with %d children, want stage.convert with 1",
			tree.Children[0].Name, len(tree.Children[0].Children))
	}
}

func TestRingBufferEviction(t *testing.T) {
	tr := New(Config{Capacity: 2, Now: fakeClock()})
	var ids []string
	for i := 0; i < 3; i++ {
		root := tr.StartTrace(fmt.Sprintf("t%d", i))
		ids = append(ids, root.TraceID())
		root.End()
	}
	if tr.Len() != 2 {
		t.Fatalf("Len = %d, want capacity 2", tr.Len())
	}
	if _, ok := tr.Trace(ids[0]); ok {
		t.Error("oldest trace survived eviction")
	}
	for _, id := range ids[1:] {
		if _, ok := tr.Trace(id); !ok {
			t.Errorf("trace %s evicted, want retained", id)
		}
	}
	recent := tr.Recent()
	if len(recent) != 2 || recent[0].Name != "t1" || recent[1].Name != "t2" {
		t.Errorf("Recent = %v, want [t1 t2]", recent)
	}
}

func TestSlowest(t *testing.T) {
	clock := fakeClock()
	tr := New(Config{Now: clock})
	// t0 spans 1 tick, t1 spans 3 ticks, t2 spans 1 tick.
	for i, extra := range []int{0, 2, 0} {
		root := tr.StartTrace(fmt.Sprintf("t%d", i))
		for j := 0; j < extra; j++ {
			clock()
		}
		root.End()
	}
	slow := tr.Slowest(2)
	if len(slow) != 2 || slow[0].Name != "t1" {
		t.Fatalf("Slowest(2) = %v, want t1 first", slow)
	}
	if got := tr.Slowest(10); len(got) != 3 {
		t.Errorf("Slowest(10) returned %d traces, want all 3", len(got))
	}
}

// TestNoopZeroAllocs is the contract the hot paths rely on: with no tracer
// installed, the full instrumentation surface — context lookup, child
// start, attributes, events, end, context install — allocates nothing.
func TestNoopZeroAllocs(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(200, func() {
		sp := FromContext(ctx)
		child := sp.StartChild("stage.convert")
		child.SetInt("vars", 12)
		child.SetStr("solver", "milp")
		child.SetFloat("big_m", 1e6)
		child.SetBool("memo_hit", false)
		child.Event("incumbent")
		child.EventInt("incumbent", "objective", 3)
		child.EventFloat("cutoff", "objective", 2)
		if c2 := ContextWithSpan(ctx, child); c2 != ctx {
			t.Fatal("ContextWithSpan(nil span) must return ctx unchanged")
		}
		child.End()
		if child.TraceID() != "" || child.SpanID() != "" {
			t.Fatal("nil span must have empty IDs")
		}
	})
	if allocs > 0 {
		t.Errorf("no-op instrumentation allocates %.1f objects/op, want 0", allocs)
	}
}

func TestContextPropagation(t *testing.T) {
	tr := New(Config{Now: fakeClock()})
	root := tr.StartTrace("job")
	ctx := ContextWithSpan(context.Background(), root)
	if FromContext(ctx) != root {
		t.Fatal("FromContext did not return the installed span")
	}
	if FromContext(context.Background()) != nil {
		t.Fatal("FromContext on a bare context must return nil")
	}
	child := FromContext(ctx).StartChild("inner")
	if child.TraceID() != root.TraceID() {
		t.Errorf("child trace %q, want %q", child.TraceID(), root.TraceID())
	}
	child.End()
	root.End()
}
