// Package obs is the observability layer of the DART reproduction: a
// context-propagated span tracer plus a slog-based structured logger, both
// stdlib-only. One trace is the span tree of one unit of work (a dartd job,
// a CLI run); spans cover pipeline stages, repair-problem components,
// branch-and-bound workers, and validation-loop iterations, so a single
// slow or misbehaving job can be inspected per decision instead of only
// through fleet-wide histograms.
//
// The tracer is built to cost nothing when it is off. Every method of
// *Span is nil-receiver safe, FromContext returns nil when no span was
// installed, and ContextWithSpan returns the context unchanged for a nil
// span — so an uninstrumented call path (no tracer configured) performs no
// allocations and no locked operations, only nil checks. The attribute and
// event setters are deliberately typed and fixed-arity (SetInt, EventFloat,
// ...) rather than variadic: variadic any arguments would box and allocate
// at the call site even when the receiver is nil.
//
// Finished traces land in a bounded ring buffer (for the dartd debug
// endpoints) and, optionally, in a JSONL exporter (one span per line; see
// export.go), the artifact format shared by dartd -trace-export and
// dart -trace.
package obs

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Config tunes a Tracer.
type Config struct {
	// Capacity bounds the finished traces retained for inspection
	// (default 128); the oldest trace is evicted first.
	Capacity int
	// Export, when non-nil, receives every finished trace's spans as JSONL
	// (one span record per line), written at trace completion.
	Export io.Writer
	// Now overrides the clock (tests only; default time.Now).
	Now func() time.Time
}

// Tracer creates traces and retains the most recent finished ones.
type Tracer struct {
	mu        sync.Mutex
	capacity  int
	export    io.Writer
	exportErr error
	traces    map[string]*Trace
	order     []string // finished-trace IDs, oldest first
	rng       *rand.Rand
	now       func() time.Time
	dropped   atomic.Uint64 // spans lost to ring eviction or post-seal ends
}

// New creates a tracer.
func New(cfg Config) *Tracer {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 128
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	return &Tracer{
		capacity: cfg.Capacity,
		export:   cfg.Export,
		traces:   make(map[string]*Trace),
		rng:      rand.New(rand.NewSource(now().UnixNano())),
		now:      now,
	}
}

// newID returns a fresh nonzero 64-bit identifier rendered as 16 hex
// digits.
func (t *Tracer) newID() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	id := t.rng.Uint64()
	for id == 0 {
		id = t.rng.Uint64()
	}
	return fmt.Sprintf("%016x", id)
}

// StartTrace begins a new trace and returns its root span. The trace is
// finished — retained in the ring buffer and exported — when the root span
// ends. A nil tracer returns a nil span, which no-ops everywhere.
func (t *Tracer) StartTrace(name string) *Span {
	if t == nil {
		return nil
	}
	s := &Span{
		tracer: t,
		trace:  &activeTrace{id: t.newID()},
		id:     t.newID(),
		name:   name,
		start:  t.now(),
	}
	s.trace.root = s
	return s
}

// Trace returns the finished trace with the given ID, if it is still
// retained.
func (t *Tracer) Trace(id string) (*Trace, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	tr, ok := t.traces[id]
	return tr, ok
}

// Recent returns the retained finished traces, oldest first.
func (t *Tracer) Recent() []*Trace {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Trace, 0, len(t.order))
	for _, id := range t.order {
		out = append(out, t.traces[id])
	}
	return out
}

// Slowest returns up to n retained traces ordered by descending duration
// (ties broken oldest first).
func (t *Tracer) Slowest(n int) []*Trace {
	all := t.Recent()
	sort.SliceStable(all, func(i, j int) bool {
		return all[i].DurationNS > all[j].DurationNS
	})
	if n >= 0 && n < len(all) {
		all = all[:n]
	}
	return all
}

// Len returns the number of retained finished traces.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.order)
}

// ExportErr returns the first error the JSONL exporter hit, if any.
func (t *Tracer) ExportErr() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.exportErr
}

// finish retains a completed trace, evicting the oldest beyond capacity,
// and exports its spans as JSONL.
func (t *Tracer) finish(tr *Trace) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.traces[tr.TraceID] = tr
	t.order = append(t.order, tr.TraceID)
	for len(t.order) > t.capacity {
		evicted := t.traces[t.order[0]]
		if evicted != nil {
			t.dropped.Add(uint64(len(evicted.Spans)))
		}
		delete(t.traces, t.order[0])
		t.order = t.order[1:]
	}
	if t.export != nil && t.exportErr == nil {
		t.exportErr = writeSpans(t.export, tr.Spans)
	}
}

// DroppedSpans returns how many span records the tracer has discarded —
// spans of traces evicted from the ring buffer plus spans that ended
// after their trace was sealed. Exposed as dart_trace_spans_dropped_total.
func (t *Tracer) DroppedSpans() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// activeTrace is a trace still being recorded: finished spans accumulate
// until the root span ends.
type activeTrace struct {
	id   string
	root *Span

	// live, when set, routes Publish calls from any span of this trace
	// onto a telemetry bus, stamped with the bound job ID. It is an atomic
	// pointer so hot-path publish sites pay one load to discover the bus
	// is absent.
	live atomic.Pointer[liveBinding]

	mu    sync.Mutex
	spans []*SpanRecord
	done  bool
}

// liveBinding ties an in-flight trace to a telemetry bus and the job it
// belongs to.
type liveBinding struct {
	bus   *Bus
	jobID string
}

// add appends one finished span. Spans ending after the root (which
// should not happen with disciplined instrumentation) are dropped: the
// trace has already been published.
func (at *activeTrace) add(rec *SpanRecord) bool {
	at.mu.Lock()
	defer at.mu.Unlock()
	if at.done {
		return false
	}
	at.spans = append(at.spans, rec)
	return true
}

// seal marks the trace complete and returns its spans ordered by start
// time (ties broken by span ID) with the root last among equals.
func (at *activeTrace) seal() []*SpanRecord {
	at.mu.Lock()
	defer at.mu.Unlock()
	at.done = true
	spans := at.spans
	sort.SliceStable(spans, func(i, j int) bool {
		if !spans[i].Start.Equal(spans[j].Start) {
			return spans[i].Start.Before(spans[j].Start)
		}
		return spans[i].SpanID < spans[j].SpanID
	})
	return spans
}

// Span is one timed operation within a trace. The zero of usefulness is a
// nil *Span: every method no-ops (and allocates nothing) on a nil
// receiver, so instrumented code needs no "is tracing on" branches beyond
// the nil checks it writes anyway to skip attribute computation.
type Span struct {
	tracer *Tracer
	trace  *activeTrace
	id     string
	parent string
	name   string
	start  time.Time

	mu     sync.Mutex
	attrs  []Attr
	events []EventRecord
	ended  bool
	scope  string // stamped onto live events published through this span
}

// Attr is one key/value annotation of a span or event.
type Attr struct {
	Key   string
	Value any
}

// StartChild begins a child span. On a nil receiver it returns nil. The
// child inherits the parent's publish scope.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	scope := s.scope
	s.mu.Unlock()
	return &Span{
		tracer: s.tracer,
		trace:  s.trace,
		id:     s.tracer.newID(),
		parent: s.id,
		name:   name,
		start:  s.tracer.now(),
		scope:  scope,
	}
}

// Live binds the span's trace to a telemetry bus under the given job ID:
// from now on, Publish calls on any span of this trace (and span
// completions) flow onto bus stamped with the trace and job IDs. A nil
// span or nil bus leaves the trace unbound.
func (s *Span) Live(bus *Bus, jobID string) {
	if s == nil || bus == nil {
		return
	}
	s.trace.live.Store(&liveBinding{bus: bus, jobID: jobID})
}

// IsLive reports whether live events published through this span reach a
// bus. Hot paths gate their telemetry computation on it: on a nil span or
// an unbound trace it costs a nil check plus one atomic load and never
// allocates.
func (s *Span) IsLive() bool {
	return s != nil && s.trace.live.Load() != nil
}

// PublishScope tags the span: live events published through it (and
// through children started afterwards) carry this Scope, locating them
// within the job — e.g. "component:2".
func (s *Span) PublishScope(scope string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.scope = scope
	s.mu.Unlock()
}

// Publish emits a live event through the span's trace binding, stamping
// the trace ID, bound job ID, and the span's publish scope (each only if
// the event does not already carry one). Without a binding — nil span,
// no tracer, or a trace never marked Live — it is a no-op that allocates
// nothing.
func (s *Span) Publish(ev Event) {
	if s == nil {
		return
	}
	lb := s.trace.live.Load()
	if lb == nil {
		return
	}
	if ev.TraceID == "" {
		ev.TraceID = s.trace.id
	}
	if ev.JobID == "" {
		ev.JobID = lb.jobID
	}
	if ev.Scope == "" {
		s.mu.Lock()
		ev.Scope = s.scope
		s.mu.Unlock()
	}
	lb.bus.Publish(ev)
}

// TraceID returns the span's trace identifier ("" on a nil receiver).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.trace.id
}

// SpanID returns the span's identifier ("" on a nil receiver).
func (s *Span) SpanID() string {
	if s == nil {
		return ""
	}
	return s.id
}

// setAttr appends one annotation (last write wins at record-build time).
func (s *Span) setAttr(key string, v any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ended {
		s.attrs = append(s.attrs, Attr{Key: key, Value: v})
	}
}

// SetStr annotates the span with a string value.
func (s *Span) SetStr(key, v string) {
	if s != nil {
		s.setAttr(key, v)
	}
}

// SetInt annotates the span with an integer value.
func (s *Span) SetInt(key string, v int) {
	if s != nil {
		s.setAttr(key, int64(v))
	}
}

// SetFloat annotates the span with a float value.
func (s *Span) SetFloat(key string, v float64) {
	if s != nil {
		s.setAttr(key, v)
	}
}

// SetBool annotates the span with a boolean value.
func (s *Span) SetBool(key string, v bool) {
	if s != nil {
		s.setAttr(key, v)
	}
}

// event appends one timestamped event.
func (s *Span) event(name string, attrs map[string]any) {
	now := s.tracer.now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return
	}
	s.events = append(s.events, EventRecord{
		Name:     name,
		OffsetNS: now.Sub(s.start).Nanoseconds(),
		Attrs:    attrs,
	})
}

// Event records a named point-in-time occurrence on the span.
func (s *Span) Event(name string) {
	if s != nil {
		s.event(name, nil)
	}
}

// EventInt records an event carrying one integer attribute.
func (s *Span) EventInt(name, key string, v int) {
	if s != nil {
		s.event(name, map[string]any{key: int64(v)})
	}
}

// EventFloat records an event carrying one float attribute.
func (s *Span) EventFloat(name, key string, v float64) {
	if s != nil {
		s.event(name, map[string]any{key: v})
	}
}

// End finishes the span, committing its record to the trace. Ending the
// root span completes the whole trace: it becomes visible through the
// tracer's ring buffer and is exported. End is idempotent; on a nil
// receiver it no-ops.
func (s *Span) End() {
	if s == nil {
		return
	}
	end := s.tracer.now()
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	rec := &SpanRecord{
		TraceID:    s.trace.id,
		SpanID:     s.id,
		ParentID:   s.parent,
		Name:       s.name,
		Start:      s.start.UTC(),
		DurationNS: end.Sub(s.start).Nanoseconds(),
		Events:     s.events,
	}
	if len(s.attrs) > 0 {
		rec.Attrs = make(map[string]any, len(s.attrs))
		for _, a := range s.attrs {
			rec.Attrs[a.Key] = a.Value
		}
	}
	scope := s.scope
	s.mu.Unlock()
	if !s.trace.add(rec) {
		s.tracer.dropped.Add(1)
	}
	if lb := s.trace.live.Load(); lb != nil {
		lb.bus.Publish(Event{
			Kind:    KindSpan,
			Name:    s.name,
			JobID:   lb.jobID,
			TraceID: s.trace.id,
			Scope:   scope,
			Value:   float64(rec.DurationNS) / 1e6,
		})
	}
	if s == s.trace.root {
		spans := s.trace.seal()
		s.tracer.finish(&Trace{
			TraceID:    s.trace.id,
			Name:       s.name,
			Start:      rec.Start,
			DurationNS: rec.DurationNS,
			Spans:      spans,
		})
	}
}

// spanKey carries the active span through a context.
type spanKey struct{}

// ContextWithSpan installs a span into a context. A nil span returns ctx
// unchanged, so untraced paths allocate nothing.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, s)
}

// FromContext returns the context's active span, or nil when tracing is
// off for this call path.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}
