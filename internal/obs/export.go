package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// SpanRecord is the immutable wire/storage form of one finished span: the
// JSONL exporter writes one record per line, and the dartd debug endpoints
// serve trees built from them.
type SpanRecord struct {
	TraceID    string         `json:"trace_id"`
	SpanID     string         `json:"span_id"`
	ParentID   string         `json:"parent_id,omitempty"`
	Name       string         `json:"name"`
	Start      time.Time      `json:"start"`
	DurationNS int64          `json:"duration_ns"`
	Attrs      map[string]any `json:"attrs,omitempty"`
	Events     []EventRecord  `json:"events,omitempty"`
}

// EventRecord is one point-in-time occurrence within a span, offset from
// the span's start.
type EventRecord struct {
	Name     string         `json:"name"`
	OffsetNS int64          `json:"offset_ns"`
	Attrs    map[string]any `json:"attrs,omitempty"`
}

// Trace is one finished trace: the root span's identity and timing plus
// every span recorded under it, ordered by start time.
type Trace struct {
	TraceID    string        `json:"trace_id"`
	Name       string        `json:"name"`
	Start      time.Time     `json:"start"`
	DurationNS int64         `json:"duration_ns"`
	Spans      []*SpanRecord `json:"spans"`
}

// Duration returns the trace's wall-clock duration.
func (tr *Trace) Duration() time.Duration { return time.Duration(tr.DurationNS) }

// SpanNode is one node of a rendered span tree.
type SpanNode struct {
	*SpanRecord
	Children []*SpanNode `json:"children,omitempty"`
}

// Tree assembles the trace's spans into their parent-link tree, children
// ordered by start time. Spans whose parent is missing (which only happens
// for artificially truncated traces) attach to the root.
func (tr *Trace) Tree() *SpanNode {
	nodes := make(map[string]*SpanNode, len(tr.Spans))
	var root *SpanNode
	for _, s := range tr.Spans {
		nodes[s.SpanID] = &SpanNode{SpanRecord: s}
	}
	for _, s := range tr.Spans {
		if s.ParentID == "" {
			root = nodes[s.SpanID]
		}
	}
	if root == nil {
		return nil
	}
	for _, s := range tr.Spans {
		n := nodes[s.SpanID]
		if n == root {
			continue
		}
		parent, ok := nodes[s.ParentID]
		if !ok {
			parent = root
		}
		parent.Children = append(parent.Children, n)
	}
	return root
}

// writeSpans emits one JSON object per span per line.
func writeSpans(w io.Writer, spans []*SpanRecord) error {
	enc := json.NewEncoder(w) // Encode appends the newline JSONL needs
	enc.SetEscapeHTML(false)
	for _, s := range spans {
		if err := enc.Encode(s); err != nil {
			return err
		}
	}
	return nil
}

// ReadSpans parses a JSONL span stream (the dartd -trace-export / dart
// -trace artifact) back into records, skipping blank lines.
func ReadSpans(r io.Reader) ([]*SpanRecord, error) {
	var out []*SpanRecord
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		rec := new(SpanRecord)
		if err := json.Unmarshal(sc.Bytes(), rec); err != nil {
			return nil, fmt.Errorf("obs: span line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// AssembleTraces groups span records by trace ID into finished traces,
// ordered by each trace's start time. The root span (empty parent) supplies
// the trace's name and timing; traces without a root are dropped.
func AssembleTraces(spans []*SpanRecord) []*Trace {
	byTrace := make(map[string][]*SpanRecord)
	var ids []string
	for _, s := range spans {
		if _, ok := byTrace[s.TraceID]; !ok {
			ids = append(ids, s.TraceID)
		}
		byTrace[s.TraceID] = append(byTrace[s.TraceID], s)
	}
	var out []*Trace
	for _, id := range ids {
		group := byTrace[id]
		sort.SliceStable(group, func(i, j int) bool {
			if !group[i].Start.Equal(group[j].Start) {
				return group[i].Start.Before(group[j].Start)
			}
			return group[i].SpanID < group[j].SpanID
		})
		var root *SpanRecord
		for _, s := range group {
			if s.ParentID == "" {
				root = s
				break
			}
		}
		if root == nil {
			continue
		}
		out = append(out, &Trace{
			TraceID:    id,
			Name:       root.Name,
			Start:      root.Start,
			DurationNS: root.DurationNS,
			Spans:      group,
		})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}
