package obs

import (
	"fmt"
	"sync"
	"testing"
)

func newTestBus(ring, buffer int) *Bus {
	return NewBus(BusConfig{Ring: ring, Buffer: buffer, Now: fakeClock()})
}

func TestBusPublishSubscribe(t *testing.T) {
	b := newTestBus(16, 8)
	sub, replay := b.Subscribe("test", 8)
	if len(replay) != 0 {
		t.Fatalf("fresh bus replay = %d events, want 0", len(replay))
	}
	b.Publish(Event{Kind: KindJob, Name: "state", JobID: "job-1", State: "running"})
	b.Publish(Event{Kind: KindQueue, Name: "depth", Depth: 3})

	ev := <-sub.C()
	if ev.Seq != 1 || ev.Kind != KindJob || ev.State != "running" {
		t.Fatalf("first event = %+v", ev)
	}
	if ev.UnixNano == 0 {
		t.Fatal("event not timestamped")
	}
	ev = <-sub.C()
	if ev.Seq != 2 || ev.Kind != KindQueue || ev.Depth != 3 {
		t.Fatalf("second event = %+v", ev)
	}
	sub.Close()
	if _, ok := <-sub.C(); ok {
		t.Fatal("channel still open after Close")
	}
	sub.Close() // idempotent
}

func TestBusReplayThenLiveIsGapless(t *testing.T) {
	b := newTestBus(8, 8)
	for i := 0; i < 12; i++ { // overflow the ring: oldest 4 evicted
		b.Publish(Event{Kind: KindSolver, Name: "progress", JobID: "job-1", Nodes: int64(i)})
	}
	sub, replay := b.Subscribe("test", 8)
	defer sub.Close()
	if len(replay) != 8 {
		t.Fatalf("replay = %d events, want ring size 8", len(replay))
	}
	if replay[0].Seq != 5 || replay[7].Seq != 12 {
		t.Fatalf("replay seq range [%d,%d], want [5,12]", replay[0].Seq, replay[7].Seq)
	}
	b.Publish(Event{Kind: KindSolver, Name: "done", JobID: "job-1"})
	live := <-sub.C()
	if live.Seq != replay[len(replay)-1].Seq+1 {
		t.Fatalf("live seq %d does not continue replay seq %d", live.Seq, replay[len(replay)-1].Seq)
	}
}

func TestBusSlowSubscriberDrops(t *testing.T) {
	b := newTestBus(64, 4)
	slow, _ := b.Subscribe("slow", 2)
	fast, _ := b.Subscribe("fast", 64)
	defer slow.Close()
	defer fast.Close()

	// Publish concurrently without draining "slow": beyond its buffer of 2
	// every event must be dropped, never blocking the publishers.
	const n = 40
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < n/4; i++ {
				b.Publish(Event{Kind: KindSolver, Name: "progress", JobID: fmt.Sprintf("job-%d", w)})
			}
		}(w)
	}
	wg.Wait()

	if got := slow.Dropped(); got != n-2 {
		t.Fatalf("slow.Dropped() = %d, want %d", got, n-2)
	}
	if got := fast.Dropped(); got != 0 {
		t.Fatalf("fast.Dropped() = %d, want 0", got)
	}
	drops := b.DroppedByName()
	if drops["slow"] != n-2 || drops["fast"] != 0 {
		t.Fatalf("DroppedByName() = %v", drops)
	}
	// The fast subscriber saw every event exactly once, in seq order.
	seen := 0
	var last uint64
	for len(fast.C()) > 0 {
		ev := <-fast.C()
		if ev.Seq <= last {
			t.Fatalf("out-of-order seq %d after %d", ev.Seq, last)
		}
		last = ev.Seq
		seen++
	}
	if seen != n {
		t.Fatalf("fast subscriber saw %d events, want %d", seen, n)
	}
}

func TestBusProgressAggregation(t *testing.T) {
	b := newTestBus(64, 8)
	pub := func(ev Event) { ev.JobID = "job-1"; b.Publish(ev) }

	pub(Event{Kind: KindJob, Name: "state", State: "running"})
	pub(Event{Kind: KindComponent, Name: "plan", Total: 2})
	pub(Event{Kind: KindSolver, Name: "progress", Scope: "component:0", Incumbent: 10, Bound: 2, Gap: 0.8, Nodes: 100, NodesPerSec: 50})
	pub(Event{Kind: KindSolver, Name: "progress", Scope: "component:1", Incumbent: 5, Bound: 4, Gap: 0.2, Nodes: 40, NodesPerSec: 20})

	p, ok := b.Progress("job-1")
	if !ok {
		t.Fatal("no progress for job-1")
	}
	if p.State != "running" || p.ComponentsTotal != 2 || p.ComponentsDone != 0 {
		t.Fatalf("progress = %+v", p)
	}
	if p.WorstGap != 0.8 {
		t.Fatalf("WorstGap = %v, want 0.8 (the worse of the two open components)", p.WorstGap)
	}
	if p.Nodes != 140 {
		t.Fatalf("Nodes = %d, want 140 (summed across scopes)", p.Nodes)
	}
	if p.Gap != 0.2 || p.Incumbent != 5 {
		t.Fatalf("freshest solver fields not reflected: %+v", p)
	}

	// Component 0 finishes: its gap leaves the worst-gap pool.
	pub(Event{Kind: KindSolver, Name: "done", Scope: "component:0", Incumbent: 3, Bound: 3, Gap: 0, Nodes: 200})
	pub(Event{Kind: KindComponent, Name: "done", Done: 1, Total: 2})
	p, _ = b.Progress("job-1")
	if p.WorstGap != 0.2 {
		t.Fatalf("WorstGap after component 0 done = %v, want 0.2", p.WorstGap)
	}
	if p.ComponentsDone != 1 || p.Nodes != 240 {
		t.Fatalf("progress after done = %+v", p)
	}

	// Terminal job state clears the open-search pool.
	pub(Event{Kind: KindJob, Name: "state", State: "succeeded"})
	p, _ = b.Progress("job-1")
	if p.State != "succeeded" || p.WorstGap != 0 {
		t.Fatalf("terminal progress = %+v", p)
	}
	if p.LastSeq != b.Seq() {
		t.Fatalf("LastSeq = %d, want %d", p.LastSeq, b.Seq())
	}

	all := b.AllProgress()
	if len(all) != 1 || all[0].JobID != "job-1" {
		t.Fatalf("AllProgress() = %+v", all)
	}
	if _, ok := b.Progress("job-2"); ok {
		t.Fatal("progress reported for unknown job")
	}
}

func TestBusProgressEviction(t *testing.T) {
	b := newTestBus(8, 8)
	for i := 0; i < progressCap+10; i++ {
		id := fmt.Sprintf("job-%04d", i)
		b.Publish(Event{Kind: KindJob, Name: "state", JobID: id, State: "running"})
		if i < 20 {
			b.Publish(Event{Kind: KindJob, Name: "state", JobID: id, State: "succeeded"})
		}
	}
	if got := len(b.AllProgress()); got != progressCap {
		t.Fatalf("retained %d progress aggregates, want %d", got, progressCap)
	}
	// Terminal jobs are evicted before running ones.
	if _, ok := b.Progress("job-0000"); ok {
		t.Fatal("oldest terminal job should have been evicted")
	}
	if _, ok := b.Progress("job-0025"); !ok {
		t.Fatal("running job evicted while terminal jobs remained")
	}
}

func TestSpanLivePublish(t *testing.T) {
	b := newTestBus(32, 8)
	tr := New(Config{Now: fakeClock()})
	sub, _ := b.Subscribe("test", 32)
	defer sub.Close()

	root := tr.StartTrace("job")
	if root.IsLive() {
		t.Fatal("unbound span reports IsLive")
	}
	root.Live(b, "job-7")
	if !root.IsLive() {
		t.Fatal("bound span does not report IsLive")
	}

	comp := root.StartChild("repair.component")
	comp.PublishScope("component:3")
	if !comp.IsLive() {
		t.Fatal("child of a live trace must be live")
	}
	comp.Publish(Event{Kind: KindSolver, Name: "incumbent", Incumbent: 4, Gap: 0.5})

	ev := <-sub.C()
	if ev.JobID != "job-7" || ev.TraceID != root.TraceID() || ev.Scope != "component:3" {
		t.Fatalf("stamped event = %+v", ev)
	}
	if ev.Kind != KindSolver || ev.Incumbent != 4 {
		t.Fatalf("payload lost: %+v", ev)
	}

	// Grandchildren inherit the scope; completion events carry it too.
	worker := comp.StartChild("bb.worker")
	worker.End()
	ev = <-sub.C()
	if ev.Kind != KindSpan || ev.Name != "bb.worker" || ev.Scope != "component:3" {
		t.Fatalf("span completion event = %+v", ev)
	}
	if ev.Value <= 0 {
		t.Fatalf("span completion duration = %v ms, want > 0", ev.Value)
	}
	comp.End()
	root.End()
	// job span + component span completions follow.
	for _, want := range []string{"repair.component", "job"} {
		ev = <-sub.C()
		if ev.Kind != KindSpan || ev.Name != want {
			t.Fatalf("completion event = %+v, want span %q", ev, want)
		}
	}
	if p, ok := b.Progress("job-7"); !ok || p.Gap != 0.5 {
		t.Fatalf("progress from span publish = %+v ok=%v", p, ok)
	}
}

func TestTracerDroppedSpans(t *testing.T) {
	tr := New(Config{Capacity: 2, Now: fakeClock()})
	if tr.DroppedSpans() != 0 {
		t.Fatal("fresh tracer reports drops")
	}
	// Three one-span traces through a capacity-2 ring: one trace evicted.
	for i := 0; i < 3; i++ {
		tr.StartTrace("job").End()
	}
	if got := tr.DroppedSpans(); got != 1 {
		t.Fatalf("DroppedSpans after eviction = %d, want 1", got)
	}
	// A child ending after its root sealed the trace is a post-seal drop.
	root := tr.StartTrace("job")
	late := root.StartChild("straggler")
	root.End()
	late.End()
	if got := tr.DroppedSpans(); got != 3 {
		// 1 eviction + 2 spans of the now-evicted oldest retained trace...
		// Capacity 2: finishing the 4th trace evicts the 2nd (1 span), and
		// the straggler adds 1: total 1+1+1 = 3.
		t.Fatalf("DroppedSpans after straggler = %d, want 3", got)
	}
}

// TestBusDisabledZeroAllocs is the bus analogue of TestNoopZeroAllocs:
// with no bus bound — nil *Bus, nil span, or a traced span never marked
// Live — every publish-side call must allocate nothing, so instrumented
// hot paths cost only nil checks when telemetry is off.
func TestBusDisabledZeroAllocs(t *testing.T) {
	var nilBus *Bus
	var nilSpan *Span
	tr := New(Config{Now: fakeClock()})
	unbound := tr.StartTrace("job") // traced but not live
	defer unbound.End()

	allocs := testing.AllocsPerRun(200, func() {
		nilBus.Publish(Event{Kind: KindSolver, Name: "progress", Gap: 0.5})
		if nilBus.Seq() != 0 {
			t.Fatal("nil bus has a sequence")
		}
		if sub, replay := nilBus.Subscribe("x", 4); sub != nil || replay != nil {
			t.Fatal("nil bus returned a subscriber")
		}
		if nilBus.Replay() != nil || nilBus.DroppedByName() != nil || nilBus.AllProgress() != nil {
			t.Fatal("nil bus returned data")
		}
		if _, ok := nilBus.Progress("job-1"); ok {
			t.Fatal("nil bus has progress")
		}
		nilSpan.Live(nilBus, "job-1")
		nilSpan.PublishScope("component:0")
		nilSpan.Publish(Event{Kind: KindSolver, Name: "incumbent"})
		if nilSpan.IsLive() {
			t.Fatal("nil span is live")
		}
		if unbound.IsLive() {
			t.Fatal("unbound span is live")
		}
		unbound.Publish(Event{Kind: KindSolver, Name: "incumbent"})
		var nilSub *Subscriber
		if nilSub.C() != nil || nilSub.Dropped() != 0 {
			t.Fatal("nil subscriber has state")
		}
		nilSub.Close()
	})
	if allocs > 0 {
		t.Fatalf("disabled bus path allocates %v allocs/op, want 0", allocs)
	}
}

func BenchmarkEventBusPublish(b *testing.B) {
	bus := NewBus(BusConfig{Ring: 1024, Buffer: 256})
	sub, _ := bus.Subscribe("bench", 256)
	done := make(chan struct{})
	go func() { // drain so the subscriber path is exercised, drops allowed
		for range sub.C() {
		}
		close(done)
	}()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bus.Publish(Event{Kind: KindSolver, Name: "progress", JobID: "job-1",
			Scope: "component:0", Incumbent: 12, Bound: 8, Gap: 0.33, Nodes: int64(i)})
	}
	b.StopTimer()
	sub.Close()
	<-done
}

func BenchmarkEventBusPublishDisabled(b *testing.B) {
	var bus *Bus
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bus.Publish(Event{Kind: KindSolver, Name: "progress", Nodes: int64(i)})
	}
}
