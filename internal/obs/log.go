package obs

import (
	"io"
	"log/slog"
)

// NewLogger returns a structured logger writing to w in the given format
// ("json" for one JSON object per line, anything else for logfmt-style
// text). dartd logs job lifecycle events through it, keyed by job and
// trace IDs so log lines join against the trace artifact.
func NewLogger(w io.Writer, format string) *slog.Logger {
	var h slog.Handler
	if format == "json" {
		h = slog.NewJSONHandler(w, nil)
	} else {
		h = slog.NewTextHandler(w, nil)
	}
	return slog.New(h)
}

// WithSpan annotates a logger with a span's trace and span IDs, so every
// line it emits can be joined against the exported trace. A nil span (or
// logger) passes the logger through unchanged.
func WithSpan(l *slog.Logger, s *Span) *slog.Logger {
	if l == nil || s == nil {
		return l
	}
	return l.With("trace_id", s.TraceID(), "span_id", s.SpanID())
}
