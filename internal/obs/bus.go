// Live telemetry bus.
//
// The span tracer (obs.go) records what happened after it happened: a
// trace becomes visible only when its root span ends. The Bus is the
// complementary live channel — a bounded publish/subscribe fan-out of
// small, flat, typed events (job state changes, queue depth, solver
// incumbent/bound/gap timelines, component aggregation, span completions,
// ledger decisions) that dartd streams over SSE while a job is still
// grinding through branch and bound.
//
// Three properties shape the design:
//
//   - Publish never blocks and the publisher never waits for a reader. A
//     subscriber that cannot keep up loses events against its drop
//     counter (exposed as dart_events_dropped_total{subscriber}); the
//     solver is never slowed by a stalled SSE connection.
//   - The disabled path costs nothing. Event is a flat value struct (no
//     maps, no pointers), every Publish entry point is nil-receiver safe,
//     and a Span without a live binding drops the event after two nil
//     checks — so instrumented hot paths stay 0 allocs/op when the bus is
//     off, exactly like the tracer (TestBusDisabledZeroAllocs).
//   - Replay then live. The bus retains a bounded ring of recent events;
//     Subscribe atomically snapshots the ring and registers the live
//     channel, so a consumer sees a gapless, strictly seq-ordered stream:
//     ring replay first, then live events with larger sequence numbers
//     (minus any it was too slow for, which are counted, never silent).
//
// The bus also folds every event into a per-job progress aggregate
// (JobProgress) at publish time, so GET /v1/jobs/{id}/progress is a map
// lookup, not a replay.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// EventKind classifies bus events; SSE consumers filter on it.
type EventKind string

const (
	// KindJob marks job lifecycle transitions (Name "state").
	KindJob EventKind = "job"
	// KindQueue marks queue-depth changes (Name "depth").
	KindQueue EventKind = "queue"
	// KindSolver marks branch-and-bound search telemetry: Name
	// "incumbent" (a new best solution), "progress" (periodic
	// bound/gap/node-rate), "done" (search finished).
	KindSolver EventKind = "solver"
	// KindComponent marks per-job component aggregation from the repair
	// layer: Name "plan" (total violated components) and "done" (running
	// solved count).
	KindComponent EventKind = "component"
	// KindSpan marks span completions (Name is the span name, Value its
	// duration in milliseconds).
	KindSpan EventKind = "span"
	// KindLedger marks suggestion-ledger transitions of validation
	// sessions (Name is the transition kind, State the post-transition
	// suggestion state).
	KindLedger EventKind = "ledger"
)

// EventKinds lists every kind, in a stable order.
var EventKinds = []EventKind{KindJob, KindQueue, KindSolver, KindComponent, KindSpan, KindLedger}

// Event is one telemetry event. It is deliberately a flat value struct —
// no maps, slices or pointers — so constructing and publishing one
// allocates nothing: a publish is a stack literal, one lock, and value
// copies into the ring and subscriber channels.
//
// Seq and UnixNano are stamped by the bus at publish time; Seq is a
// strictly increasing total order over all events, which is what makes
// ring-replay-then-live-tail gapless and deduplicatable. The remaining
// fields are payload; which are meaningful depends on (Kind, Name). Gap
// is serialized unconditionally because 0 is a meaningful value (a
// proven-optimal search); the other numerics omit their zero values.
type Event struct {
	Seq      uint64    `json:"seq"`
	UnixNano int64     `json:"unix_nano"`
	Kind     EventKind `json:"kind"`
	Name     string    `json:"name"`
	// JobID and TraceID are stamped by Span.Publish from the trace's live
	// binding; service-layer publishers set JobID directly.
	JobID   string `json:"job_id,omitempty"`
	TraceID string `json:"trace_id,omitempty"`
	// Scope locates the event within the job, e.g. "component:2" for
	// solver telemetry of one connected component or "suggestion:7" for a
	// ledger decision.
	Scope string `json:"scope,omitempty"`
	// State is a lifecycle or outcome state (job state, solver status,
	// suggestion state).
	State string `json:"state,omitempty"`
	// Value is a generic numeric payload (span duration in ms, suggestion
	// confidence, ...), per the event's Name.
	Value float64 `json:"value,omitempty"`
	// Solver search telemetry.
	Incumbent   float64 `json:"incumbent,omitempty"`
	Bound       float64 `json:"bound,omitempty"`
	Gap         float64 `json:"gap"`
	Nodes       int64   `json:"nodes,omitempty"`
	NodesPerSec float64 `json:"nodes_per_sec,omitempty"`
	// Component / generic progress counters.
	Done  int `json:"done,omitempty"`
	Total int `json:"total,omitempty"`
	// Depth is the pending-job queue depth at publish time.
	Depth int `json:"depth,omitempty"`
}

// BusConfig tunes a Bus.
type BusConfig struct {
	// Ring bounds the replay ring (default 1024 events); the oldest event
	// is evicted first.
	Ring int
	// Buffer is the default per-subscriber channel capacity (default 256).
	Buffer int
	// Now overrides the clock (tests only; default time.Now).
	Now func() time.Time
}

// Bus is the live telemetry fan-out. A nil *Bus no-ops everywhere, so the
// disabled path needs no branches beyond nil checks.
type Bus struct {
	mu     sync.Mutex
	ring   []Event // circular replay buffer
	head   int     // next write slot
	size   int     // events currently retained
	seq    uint64
	subs   map[*Subscriber]struct{}
	drops  map[string]uint64 // cumulative drops per subscriber name
	buffer int
	now    func() time.Time
	prog   map[string]*jobProgress // per-job live aggregate
	order  []string                // progress job IDs, oldest first (eviction)
}

// progressCap bounds the per-job progress aggregates the bus retains;
// beyond it, the oldest terminal job is evicted first.
const progressCap = 512

// NewBus creates a bus.
func NewBus(cfg BusConfig) *Bus {
	if cfg.Ring <= 0 {
		cfg.Ring = 1024
	}
	if cfg.Buffer <= 0 {
		cfg.Buffer = 256
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	return &Bus{
		ring:   make([]Event, cfg.Ring),
		subs:   make(map[*Subscriber]struct{}),
		drops:  make(map[string]uint64),
		buffer: cfg.Buffer,
		now:    now,
		prog:   make(map[string]*jobProgress),
	}
}

// Publish stamps ev with the next sequence number and the current time,
// retains it in the replay ring, folds it into the per-job progress
// aggregate, and offers it to every subscriber without blocking: a full
// subscriber channel drops the event against that subscriber's counter.
// Publish on a nil bus is a no-op and allocates nothing.
func (b *Bus) Publish(ev Event) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.seq++
	ev.Seq = b.seq
	ev.UnixNano = b.now().UnixNano()
	b.ring[b.head] = ev
	b.head = (b.head + 1) % len(b.ring)
	if b.size < len(b.ring) {
		b.size++
	}
	b.foldLocked(ev)
	for sub := range b.subs {
		select {
		case sub.ch <- ev:
		default:
			b.drops[sub.name]++
			sub.dropped.Add(1)
		}
	}
	b.mu.Unlock()
}

// Seq returns the sequence number of the most recently published event.
func (b *Bus) Seq() uint64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.seq
}

// replayLocked appends the retained ring events, oldest first, to dst.
func (b *Bus) replayLocked(dst []Event) []Event {
	start := b.head - b.size
	if start < 0 {
		start += len(b.ring)
	}
	for i := 0; i < b.size; i++ {
		dst = append(dst, b.ring[(start+i)%len(b.ring)])
	}
	return dst
}

// Replay returns a copy of the retained events, oldest first.
func (b *Bus) Replay() []Event {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.replayLocked(make([]Event, 0, b.size))
}

// Subscriber is one registered consumer: a bounded channel the bus offers
// events to without ever blocking.
type Subscriber struct {
	name    string
	ch      chan Event
	bus     *Bus
	dropped atomic.Uint64
	closed  bool
}

// Subscribe atomically snapshots the replay ring and registers a live
// subscriber: every event with a larger sequence number than the last
// replayed one is delivered on C (or counted as dropped), so replay+live
// is gapless. name labels the subscriber's drop counter in /metrics and
// must come from a small fixed set ("firehose", "job", ...); buffer <= 0
// selects the bus default.
func (b *Bus) Subscribe(name string, buffer int) (*Subscriber, []Event) {
	if b == nil {
		return nil, nil
	}
	if buffer <= 0 {
		buffer = b.buffer
	}
	sub := &Subscriber{name: name, ch: make(chan Event, buffer), bus: b}
	b.mu.Lock()
	defer b.mu.Unlock()
	replay := b.replayLocked(make([]Event, 0, b.size))
	b.subs[sub] = struct{}{}
	if _, ok := b.drops[name]; !ok {
		b.drops[name] = 0
	}
	return sub, replay
}

// C is the subscriber's live event channel. It is closed by Close.
func (s *Subscriber) C() <-chan Event {
	if s == nil {
		return nil
	}
	return s.ch
}

// Dropped returns how many events this subscriber was too slow for.
func (s *Subscriber) Dropped() uint64 {
	if s == nil {
		return 0
	}
	return s.dropped.Load()
}

// Close unregisters the subscriber and closes its channel. Buffered
// events remain readable; Close is idempotent.
func (s *Subscriber) Close() {
	if s == nil {
		return
	}
	s.bus.mu.Lock()
	defer s.bus.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	delete(s.bus.subs, s)
	// Publish sends only under bus.mu, so closing here cannot race a send.
	close(s.ch)
}

// DroppedByName returns the cumulative per-subscriber-name drop counters
// (spanning closed subscribers), for dart_events_dropped_total.
func (b *Bus) DroppedByName() map[string]uint64 {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[string]uint64, len(b.drops))
	for k, v := range b.drops {
		out[k] = v
	}
	return out
}

// JobProgress is the live aggregate of one job's telemetry: what the
// progress endpoint serves and dartstat renders. WorstGap is the largest
// optimality gap across the job's components still being searched; Gap,
// Incumbent, Bound and NodesPerSec reflect the freshest solver event.
type JobProgress struct {
	JobID           string  `json:"job_id"`
	State           string  `json:"state,omitempty"`
	ComponentsTotal int     `json:"components_total,omitempty"`
	ComponentsDone  int     `json:"components_done,omitempty"`
	Nodes           int64   `json:"nodes,omitempty"`
	NodesPerSec     float64 `json:"nodes_per_sec,omitempty"`
	Incumbent       float64 `json:"incumbent,omitempty"`
	Bound           float64 `json:"bound,omitempty"`
	Gap             float64 `json:"gap"`
	WorstGap        float64 `json:"worst_gap"`
	LastSeq         uint64  `json:"last_seq"`
	UpdatedUnixNano int64   `json:"updated_unix_nano"`
}

// jobProgress is the internal fold state behind one JobProgress.
type jobProgress struct {
	JobProgress
	terminal   bool
	scopeGaps  map[string]float64 // open searches only; keyed by event scope
	scopeNodes map[string]int64   // cumulative nodes per search scope
}

// foldLocked folds one published event into the per-job aggregate; the
// caller holds b.mu.
func (b *Bus) foldLocked(ev Event) {
	if ev.JobID == "" {
		return
	}
	jp := b.prog[ev.JobID]
	if jp == nil {
		jp = &jobProgress{JobProgress: JobProgress{JobID: ev.JobID, Gap: 1, WorstGap: 1}}
		b.prog[ev.JobID] = jp
		b.order = append(b.order, ev.JobID)
		b.evictProgressLocked()
	}
	jp.LastSeq = ev.Seq
	jp.UpdatedUnixNano = ev.UnixNano
	switch ev.Kind {
	case KindJob:
		if ev.Name == "state" {
			jp.State = ev.State
			jp.terminal = ev.State == "succeeded" || ev.State == "failed" || ev.State == "deadline_exceeded"
			if jp.terminal {
				// The search is over; no component is "still solving".
				jp.scopeGaps = nil
				jp.WorstGap = 0
			}
		}
	case KindComponent:
		switch ev.Name {
		case "plan":
			jp.ComponentsTotal = ev.Total
			jp.ComponentsDone = ev.Done
		case "done":
			jp.ComponentsDone = ev.Done
			if ev.Total > jp.ComponentsTotal {
				jp.ComponentsTotal = ev.Total
			}
		}
	case KindSolver:
		jp.Incumbent = ev.Incumbent
		jp.Bound = ev.Bound
		jp.Gap = ev.Gap
		jp.NodesPerSec = ev.NodesPerSec
		if jp.scopeNodes == nil {
			jp.scopeNodes = make(map[string]int64)
		}
		jp.scopeNodes[ev.Scope] = ev.Nodes
		var nodes int64
		for _, n := range jp.scopeNodes {
			nodes += n
		}
		jp.Nodes = nodes
		if ev.Name == "done" {
			delete(jp.scopeGaps, ev.Scope)
		} else {
			if jp.scopeGaps == nil {
				jp.scopeGaps = make(map[string]float64)
			}
			jp.scopeGaps[ev.Scope] = ev.Gap
		}
		worst := 0.0
		for _, g := range jp.scopeGaps {
			if g > worst {
				worst = g
			}
		}
		jp.WorstGap = worst
	}
}

// evictProgressLocked bounds the progress map: beyond progressCap the
// oldest terminal aggregate goes first; with none terminal, the oldest.
func (b *Bus) evictProgressLocked() {
	for len(b.prog) > progressCap {
		victim := -1
		for i, id := range b.order {
			if b.prog[id].terminal {
				victim = i
				break
			}
		}
		if victim < 0 {
			victim = 0
		}
		delete(b.prog, b.order[victim])
		b.order = append(b.order[:victim], b.order[victim+1:]...)
	}
}

// Progress returns the live aggregate of one job, if any event for it has
// been published.
func (b *Bus) Progress(jobID string) (JobProgress, bool) {
	if b == nil {
		return JobProgress{}, false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	jp, ok := b.prog[jobID]
	if !ok {
		return JobProgress{}, false
	}
	return jp.JobProgress, true
}

// AllProgress returns the retained per-job aggregates in job-ID order.
func (b *Bus) AllProgress() []JobProgress {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]JobProgress, 0, len(b.prog))
	for _, jp := range b.prog {
		out = append(out, jp.JobProgress)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].JobID < out[j].JobID })
	return out
}
