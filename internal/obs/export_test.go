package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// buildSample records two traces (with attributes, events, and nesting)
// into a tracer exporting to buf, and returns the tracer.
func buildSample(buf *bytes.Buffer) *Tracer {
	tr := New(Config{Export: buf, Now: fakeClock()})
	for _, name := range []string{"job-a", "job-b"} {
		root := tr.StartTrace(name)
		root.SetStr("job_id", name)
		stage := root.StartChild("stage.solver")
		comp := stage.StartChild("repair.component")
		comp.SetInt("vars", 4)
		comp.EventFloat("incumbent", "objective", 2)
		comp.End()
		stage.End()
		root.End()
	}
	return tr
}

// TestJSONLRoundTrip exports two traces as JSONL, reads them back, and
// checks the reassembled traces are byte-identical (as JSON) to the ones
// the tracer retained.
func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := buildSample(&buf)
	if err := tr.ExportErr(); err != nil {
		t.Fatalf("export error: %v", err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 6 {
		t.Fatalf("exported %d JSONL lines, want 6 (2 traces x 3 spans)", lines)
	}

	spans, err := ReadSpans(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadSpans: %v", err)
	}
	if len(spans) != 6 {
		t.Fatalf("read %d spans, want 6", len(spans))
	}

	got := AssembleTraces(spans)
	want := tr.Recent()
	if len(got) != len(want) {
		t.Fatalf("assembled %d traces, want %d", len(got), len(want))
	}
	for i := range want {
		gj, err := json.Marshal(got[i])
		if err != nil {
			t.Fatal(err)
		}
		wj, err := json.Marshal(want[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gj, wj) {
			t.Errorf("trace %d round-trip mismatch:\n got: %s\nwant: %s", i, gj, wj)
		}
	}

	// The reassembled trace must still render a well-formed tree.
	tree := got[0].Tree()
	if tree == nil || tree.Name != "job-a" ||
		len(tree.Children) != 1 || tree.Children[0].Name != "stage.solver" ||
		len(tree.Children[0].Children) != 1 {
		t.Errorf("round-tripped tree malformed: %+v", tree)
	}
}

func TestReadSpansSkipsBlankAndReportsBadLines(t *testing.T) {
	spans, err := ReadSpans(strings.NewReader("\n{\"trace_id\":\"t\",\"span_id\":\"s\",\"name\":\"n\",\"start\":\"2026-08-06T12:00:00Z\",\"duration_ns\":1}\n\n"))
	if err != nil || len(spans) != 1 {
		t.Fatalf("ReadSpans = (%d, %v), want 1 span", len(spans), err)
	}
	if _, err := ReadSpans(strings.NewReader("not json\n")); err == nil {
		t.Fatal("ReadSpans accepted a malformed line")
	}
}

func TestExporterErrorSticks(t *testing.T) {
	tr := New(Config{Export: failWriter{}, Now: fakeClock()})
	root := tr.StartTrace("t")
	root.End()
	if tr.ExportErr() == nil {
		t.Fatal("exporter error not surfaced")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errWrite }

var errWrite = &json.UnsupportedValueError{Str: "sink failed"}
