package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// File names inside a WAL directory.
const (
	walName     = "jobs.wal"     // uvarint-length-prefixed CRC32 frames
	idxName     = "jobs.idx"     // fixed-stride frame offsets, 8 bytes LE each
	snapName    = "snapshot.bin" // seq(8 LE) | crc32(blob)(4 LE) | blob
	snapTmpName = "snapshot.tmp"
)

// idxStride is the fixed width of one index entry: the little-endian byte
// offset of frame i in jobs.wal lives at i*idxStride in jobs.idx, so point
// lookup is one seek into the index and one seek into the log.
const idxStride = 8

// WALOptions tunes a write-ahead-log store.
type WALOptions struct {
	// SyncEveryAppend fsyncs the log after every append (the -store fsync
	// mode). When false (async), frames reach the OS immediately but
	// stable storage only on Sync, snapshot, and Close.
	SyncEveryAppend bool
}

// WAL is the file-backed JobStore: an append-only frame log plus a
// fixed-stride offset index and an atomically replaced snapshot. All
// fields are guarded by mu.
type WAL struct {
	mu         sync.Mutex
	dir        string
	fsyncEvery bool

	wal     *os.File
	idx     *os.File
	tail    int64   // next append offset in jobs.wal
	offsets []int64 // frame start offsets, mirror of jobs.idx
	nextSeq uint64

	snapSeq   uint64 // last sequence the snapshot absorbs (0 = none)
	snapBlob  []byte
	sinceSnap int

	appends       uint64
	appendBytes   uint64
	fsyncs        uint64
	snapshots     uint64
	replaySeconds float64
	replayRecords uint64

	buf []byte // reusable frame-encoding buffer
}

// OpenWAL opens (creating if needed) the WAL store rooted at dir. Opening
// validates the log tail: a torn final frame — truncated mid-write by a
// crash — is detected by its length prefix or CRC and cut off, and the
// offset index is rebuilt whenever it disagrees with the log.
func OpenWAL(dir string, opts WALOptions) (*WAL, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating %s: %w", dir, err)
	}
	w := &WAL{dir: dir, fsyncEvery: opts.SyncEveryAppend, nextSeq: 1}
	if err := w.loadSnapshotLocked(); err != nil {
		return nil, err
	}
	var err error
	w.wal, err = os.OpenFile(filepath.Join(dir, walName), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: opening %s: %w", walName, err)
	}
	w.idx, err = os.OpenFile(filepath.Join(dir, idxName), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		_ = w.wal.Close()
		return nil, fmt.Errorf("store: opening %s: %w", idxName, err)
	}
	if err := w.recoverTailLocked(); err != nil {
		_ = w.wal.Close()
		_ = w.idx.Close()
		return nil, err
	}
	return w, nil
}

// loadSnapshotLocked runs during open, before the WAL is shared: it
// reads snapshot.bin if present and structurally valid. A corrupt
// snapshot (torn rename never happens — writes go through a tmp file —
// but disks lie) is ignored rather than fatal: the log may still hold a
// usable suffix.
func (w *WAL) loadSnapshotLocked() error {
	raw, err := os.ReadFile(filepath.Join(w.dir, snapName))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: reading snapshot: %w", err)
	}
	if len(raw) < 12 {
		return nil // torn or empty snapshot: ignore
	}
	seq := binary.LittleEndian.Uint64(raw[:8])
	want := binary.LittleEndian.Uint32(raw[8:12])
	blob := raw[12:]
	if crc32.ChecksumIEEE(blob) != want {
		return nil // corrupt snapshot: ignore
	}
	w.snapSeq = seq
	w.snapBlob = blob
	if seq >= w.nextSeq {
		w.nextSeq = seq + 1
	}
	return nil
}

// recoverTailLocked scans the log sequentially, records every valid
// frame offset, truncates a torn tail, and rewrites the offset index
// when it disagrees with the scan. Called from OpenWAL before the store
// is shared, but takes the lock anyway so the helpers below stay *Locked.
func (w *WAL) recoverTailLocked() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	data, err := io.ReadAll(w.wal)
	if err != nil {
		return fmt.Errorf("store: scanning %s: %w", walName, err)
	}
	off := 0
	for off < len(data) {
		rec, n, err := decodeFrame(data[off:])
		if err != nil {
			break // torn or corrupt tail: the log ends at the last valid frame
		}
		w.offsets = append(w.offsets, int64(off))
		if rec.Seq >= w.nextSeq {
			w.nextSeq = rec.Seq + 1
		}
		if rec.Seq > w.snapSeq {
			w.sinceSnap++
		}
		off += n
	}
	w.tail = int64(off)
	if off < len(data) {
		if err := w.wal.Truncate(w.tail); err != nil {
			return fmt.Errorf("store: truncating torn tail: %w", err)
		}
	}
	return w.rewriteIdxLocked()
}

// rewriteIdxLocked makes jobs.idx agree with the in-memory offsets,
// rewriting it only when the on-disk bytes differ.
func (w *WAL) rewriteIdxLocked() error {
	want := make([]byte, 0, len(w.offsets)*idxStride)
	for _, off := range w.offsets {
		want = binary.LittleEndian.AppendUint64(want, uint64(off))
	}
	if _, err := w.idx.Seek(0, io.SeekStart); err != nil {
		return err
	}
	have, err := io.ReadAll(w.idx)
	if err != nil {
		return fmt.Errorf("store: reading %s: %w", idxName, err)
	}
	if string(have) == string(want) {
		return nil
	}
	if err := w.idx.Truncate(0); err != nil {
		return err
	}
	if _, err := w.idx.WriteAt(want, 0); err != nil {
		return fmt.Errorf("store: rebuilding %s: %w", idxName, err)
	}
	return nil
}

// Append implements JobStore: it assigns the record's sequence number,
// writes one frame plus its index entry, and (in fsync mode) flushes the
// log before returning.
func (w *WAL) Append(rec *Record) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	rec.Seq = w.nextSeq
	w.buf = encodeFrame(w.buf[:0], rec)
	if _, err := w.wal.WriteAt(w.buf, w.tail); err != nil {
		return 0, fmt.Errorf("store: appending frame: %w", err)
	}
	var entry [idxStride]byte
	binary.LittleEndian.PutUint64(entry[:], uint64(w.tail))
	if _, err := w.idx.WriteAt(entry[:], int64(len(w.offsets))*idxStride); err != nil {
		return 0, fmt.Errorf("store: appending index entry: %w", err)
	}
	if w.fsyncEvery {
		if err := w.wal.Sync(); err != nil {
			return 0, fmt.Errorf("store: fsync: %w", err)
		}
		w.fsyncs++
	}
	w.offsets = append(w.offsets, w.tail)
	w.tail += int64(len(w.buf))
	w.nextSeq++
	w.appends++
	w.appendBytes += uint64(len(w.buf))
	w.sinceSnap++
	return rec.Seq, nil
}

// Replay implements JobStore: one sequential read of the live log,
// decoding each frame and delivering every record the snapshot does not
// already absorb. The callback must not call back into the store.
func (w *WAL) Replay(fn func(*Record) error) ([]byte, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	start := time.Now()
	w.replayRecords = 0
	data := make([]byte, w.tail)
	if _, err := w.wal.ReadAt(data, 0); err != nil && w.tail > 0 {
		return nil, fmt.Errorf("store: reading log: %w", err)
	}
	off := 0
	for off < len(data) {
		rec, n, err := decodeFrame(data[off:])
		if err != nil {
			// recoverTailLocked already cut the torn tail; reaching here means
			// the log was corrupted after open. Stop at the last valid
			// frame, mirroring open-time behavior.
			break
		}
		off += n
		if rec.Seq <= w.snapSeq {
			continue
		}
		if err := fn(rec); err != nil {
			return nil, err
		}
		w.replayRecords++
	}
	w.replaySeconds = time.Since(start).Seconds()
	if w.snapBlob == nil {
		return nil, nil
	}
	return append([]byte(nil), w.snapBlob...), nil
}

// WriteSnapshot implements JobStore: state is written to a tmp file,
// fsynced, atomically renamed over snapshot.bin, and the log prefix it
// absorbs is truncated. A crash between rename and truncate is safe: the
// leftover frames carry sequence numbers the snapshot covers, and replay
// skips them.
func (w *WAL) WriteSnapshot(state []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	seq := w.nextSeq - 1
	buf := make([]byte, 0, 12+len(state))
	buf = binary.LittleEndian.AppendUint64(buf, seq)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(state))
	buf = append(buf, state...)

	tmp := filepath.Join(w.dir, snapTmpName)
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: snapshot tmp: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		_ = f.Close()
		return fmt.Errorf("store: writing snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return fmt.Errorf("store: syncing snapshot: %w", err)
	}
	w.fsyncs++
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(w.dir, snapName)); err != nil {
		return fmt.Errorf("store: installing snapshot: %w", err)
	}
	if err := w.syncDirLocked(); err != nil {
		// The rename is not known durable: a crash could resurrect the old
		// snapshot, so the log must keep every frame. Truncating here would
		// risk losing both the snapshot and the records it absorbed.
		return err
	}

	// The snapshot absorbs every appended frame: truncate the log and
	// index so disk usage stays bounded by one snapshot plus the records
	// appended since.
	if err := w.wal.Truncate(0); err != nil {
		return fmt.Errorf("store: truncating log: %w", err)
	}
	if err := w.idx.Truncate(0); err != nil {
		return fmt.Errorf("store: truncating index: %w", err)
	}
	w.tail = 0
	w.offsets = w.offsets[:0]
	w.snapSeq = seq
	w.snapBlob = append(w.snapBlob[:0], state...)
	w.sinceSnap = 0
	w.snapshots++
	return nil
}

// syncDir flushes a directory entry so a completed rename inside it is
// durable. A package variable so store tests can inject directory-sync
// failures, which are otherwise nearly impossible to provoke.
var syncDir = func(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	return errors.Join(d.Sync(), d.Close())
}

// syncDirLocked flushes the WAL directory after the snapshot rename so
// the new snapshot name is durable. Failure is fatal to the snapshot:
// the caller must leave the log untruncated, because without a durable
// directory entry a crash could lose the rename and the truncated
// frames at once.
func (w *WAL) syncDirLocked() error {
	if err := syncDir(w.dir); err != nil {
		return fmt.Errorf("store: syncing %s: %w", w.dir, err)
	}
	w.fsyncs++
	return nil
}

// AppendsSinceSnapshot implements JobStore.
func (w *WAL) AppendsSinceSnapshot() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.sinceSnap
}

// Sync implements JobStore: flush the log and index to stable storage.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.wal.Sync(); err != nil {
		return fmt.Errorf("store: fsync: %w", err)
	}
	if err := w.idx.Sync(); err != nil {
		return fmt.Errorf("store: fsync index: %w", err)
	}
	w.fsyncs += 2
	return nil
}

// Frames reports the number of live frames in the log.
func (w *WAL) Frames() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.offsets)
}

// ReadFrame returns frame i via the offset index: one ReadAt into
// jobs.idx for the offset, one ReadAt into jobs.wal for the frame — the
// point-lookup path the fixed-stride index exists for.
func (w *WAL) ReadFrame(i int) (*Record, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if i < 0 || i >= len(w.offsets) {
		return nil, fmt.Errorf("store: frame %d out of range [0,%d)", i, len(w.offsets))
	}
	var entry [idxStride]byte
	if _, err := w.idx.ReadAt(entry[:], int64(i)*idxStride); err != nil {
		return nil, fmt.Errorf("store: index read: %w", err)
	}
	start := int64(binary.LittleEndian.Uint64(entry[:]))
	end := w.tail
	if i+1 < len(w.offsets) {
		end = w.offsets[i+1]
	}
	buf := make([]byte, end-start)
	if _, err := w.wal.ReadAt(buf, start); err != nil {
		return nil, fmt.Errorf("store: frame read: %w", err)
	}
	rec, _, err := decodeFrame(buf)
	return rec, err
}

// Stats implements JobStore.
func (w *WAL) Stats() Stats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return Stats{
		Appends:       w.appends,
		AppendBytes:   w.appendBytes,
		Fsyncs:        w.fsyncs,
		Snapshots:     w.snapshots,
		WALBytes:      w.tail,
		SnapshotBytes: int64(len(w.snapBlob)),
		ReplaySeconds: w.replaySeconds,
		ReplayRecords: w.replayRecords,
	}
}

// Close flushes both files and closes them; every error is reported,
// joined, so a failed final sync cannot hide behind a clean close.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return errors.Join(w.wal.Sync(), w.idx.Sync(), w.wal.Close(), w.idx.Close())
}
