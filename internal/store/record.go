package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Binary layout of one record body (all integers uvarint, strings and the
// blob uvarint-length-prefixed):
//
//	type | seq | unixnano (zig-zag) | jobID | state | attempts | traceID | error | blob
//
// On disk a body becomes one frame:
//
//	uvarint(len(body)) | body | crc32-IEEE(body), 4 bytes little-endian
//
// The CRC covers the body only; a torn or corrupted tail fails either the
// length bound or the CRC and replay stops at the previous frame.

var (
	// errCorrupt reports a frame that fails structural decoding; replay
	// treats it as the end of the valid log.
	errCorrupt = errors.New("store: corrupt frame")
)

// maxFrameBody bounds a single record body (64 MiB): a length prefix
// beyond it is treated as corruption, not an allocation request.
const maxFrameBody = 64 << 20

// appendUvarint/appendString are small wrappers over encoding/binary's
// append API keeping encodeBody readable.
func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// encodeBody serializes the record body (no frame envelope).
func encodeBody(buf []byte, r *Record) []byte {
	buf = append(buf, byte(r.Type))
	buf = binary.AppendUvarint(buf, r.Seq)
	buf = binary.AppendVarint(buf, r.UnixNano)
	buf = appendString(buf, r.JobID)
	buf = appendString(buf, r.State)
	buf = binary.AppendUvarint(buf, uint64(r.Attempts))
	buf = appendString(buf, r.TraceID)
	buf = appendString(buf, r.Error)
	buf = binary.AppendUvarint(buf, uint64(len(r.Blob)))
	return append(buf, r.Blob...)
}

// encodeFrame wraps a record into its on-disk frame.
func encodeFrame(buf []byte, r *Record) []byte {
	body := encodeBody(nil, r)
	buf = binary.AppendUvarint(buf, uint64(len(body)))
	buf = append(buf, body...)
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(body))
}

// cursor walks a byte slice with bounds-checked reads.
type cursor struct {
	buf []byte
	off int
}

func (c *cursor) uvarint() (uint64, error) {
	v, n := binary.Uvarint(c.buf[c.off:])
	if n <= 0 {
		return 0, errCorrupt
	}
	c.off += n
	return v, nil
}

func (c *cursor) varint() (int64, error) {
	v, n := binary.Varint(c.buf[c.off:])
	if n <= 0 {
		return 0, errCorrupt
	}
	c.off += n
	return v, nil
}

func (c *cursor) bytes() ([]byte, error) {
	n, err := c.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(c.buf)-c.off) {
		return nil, errCorrupt
	}
	out := c.buf[c.off : c.off+int(n)]
	c.off += int(n)
	return out, nil
}

func (c *cursor) string() (string, error) {
	b, err := c.bytes()
	return string(b), err
}

// decodeBody parses one record body. The returned record owns copies of
// its strings; Blob is copied so callers may retain it past the caller's
// buffer reuse.
func decodeBody(body []byte) (*Record, error) {
	c := &cursor{buf: body}
	if len(body) == 0 {
		return nil, errCorrupt
	}
	r := &Record{Type: RecordType(body[0])}
	c.off = 1
	if r.Type < RecSubmit || r.Type > RecRepair {
		return nil, fmt.Errorf("%w: unknown record type %d", errCorrupt, body[0])
	}
	var err error
	if r.Seq, err = c.uvarint(); err != nil {
		return nil, err
	}
	if r.UnixNano, err = c.varint(); err != nil {
		return nil, err
	}
	if r.JobID, err = c.string(); err != nil {
		return nil, err
	}
	if r.State, err = c.string(); err != nil {
		return nil, err
	}
	att, err := c.uvarint()
	if err != nil {
		return nil, err
	}
	r.Attempts = int(att)
	if r.TraceID, err = c.string(); err != nil {
		return nil, err
	}
	if r.Error, err = c.string(); err != nil {
		return nil, err
	}
	blob, err := c.bytes()
	if err != nil {
		return nil, err
	}
	if len(blob) > 0 {
		r.Blob = append([]byte(nil), blob...)
	}
	if c.off != len(body) {
		return nil, fmt.Errorf("%w: %d trailing bytes", errCorrupt, len(body)-c.off)
	}
	return r, nil
}

// decodeFrame parses one frame starting at buf[0]. It returns the decoded
// record and the total frame length consumed. Any structural problem —
// truncated length prefix, body extending past the buffer, CRC mismatch —
// returns errCorrupt so the caller treats the offset as the end of the
// valid log.
func decodeFrame(buf []byte) (*Record, int, error) {
	bodyLen, n := binary.Uvarint(buf)
	if n <= 0 || bodyLen > maxFrameBody {
		return nil, 0, errCorrupt
	}
	total := n + int(bodyLen) + crcSize
	if total > len(buf) {
		return nil, 0, errCorrupt
	}
	body := buf[n : n+int(bodyLen)]
	want := binary.LittleEndian.Uint32(buf[n+int(bodyLen):])
	if crc32.ChecksumIEEE(body) != want {
		return nil, 0, fmt.Errorf("%w: crc mismatch", errCorrupt)
	}
	rec, err := decodeBody(body)
	if err != nil {
		return nil, 0, err
	}
	return rec, total, nil
}

// crcSize is the trailing checksum width of every frame.
const crcSize = 4
