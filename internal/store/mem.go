package store

import (
	"sync"
	"time"
)

// Mem is the in-memory JobStore: the same append/replay/snapshot contract
// as the WAL with no files behind it. It mirrors the service's
// pre-persistence behavior (state dies with the process) while letting
// differential tests drive both backends with identical record sequences
// and compare replays, and letting unit tests exercise recovery without a
// disk. All fields are guarded by mu.
type Mem struct {
	mu      sync.Mutex
	records []*Record
	nextSeq uint64

	snapSeq  uint64
	snapBlob []byte

	appends       uint64
	appendBytes   uint64
	syncs         uint64
	snapshots     uint64
	replaySeconds float64
	replayRecords uint64
}

// NewMem creates an empty in-memory store.
func NewMem() *Mem { return &Mem{nextSeq: 1} }

// Append implements JobStore.
func (m *Mem) Append(rec *Record) (uint64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rec.Seq = m.nextSeq
	m.nextSeq++
	cp := *rec
	if rec.Blob != nil {
		cp.Blob = append([]byte(nil), rec.Blob...)
	}
	m.records = append(m.records, &cp)
	m.appends++
	// Count the same bytes the WAL would write so stats are comparable.
	m.appendBytes += uint64(len(encodeFrame(nil, &cp)))
	return rec.Seq, nil
}

// Replay implements JobStore.
func (m *Mem) Replay(fn func(*Record) error) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	start := time.Now()
	m.replayRecords = 0
	for _, rec := range m.records {
		if rec.Seq <= m.snapSeq {
			continue
		}
		cp := *rec
		if err := fn(&cp); err != nil {
			return nil, err
		}
		m.replayRecords++
	}
	m.replaySeconds = time.Since(start).Seconds()
	if m.snapBlob == nil {
		return nil, nil
	}
	return append([]byte(nil), m.snapBlob...), nil
}

// WriteSnapshot implements JobStore: the snapshot absorbs every record
// appended so far, which are dropped.
func (m *Mem) WriteSnapshot(state []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.snapSeq = m.nextSeq - 1
	m.snapBlob = append(m.snapBlob[:0], state...)
	m.records = m.records[:0]
	m.snapshots++
	return nil
}

// AppendsSinceSnapshot implements JobStore.
func (m *Mem) AppendsSinceSnapshot() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.records)
}

// Sync implements JobStore (a no-op beyond counting, for drain tests).
func (m *Mem) Sync() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.syncs++
	return nil
}

// Stats implements JobStore.
func (m *Mem) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	var walBytes int64
	for _, rec := range m.records {
		walBytes += int64(len(encodeFrame(nil, rec)))
	}
	return Stats{
		Appends:       m.appends,
		AppendBytes:   m.appendBytes,
		Fsyncs:        m.syncs,
		Snapshots:     m.snapshots,
		WALBytes:      walBytes,
		SnapshotBytes: int64(len(m.snapBlob)),
		ReplaySeconds: m.replaySeconds,
		ReplayRecords: m.replayRecords,
	}
}

// Close implements JobStore.
func (m *Mem) Close() error { return nil }
