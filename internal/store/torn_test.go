package store

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestWALTornWriteHardening is the exhaustive torn-tail sweep: with N
// whole frames on disk, the log is truncated at every byte offset inside
// the final frame (and one past the previous frame boundary). Every cut
// must open cleanly, replay exactly the first N-1 records, repair the file
// to the last valid frame, and accept new appends afterwards.
func TestWALTornWriteHardening(t *testing.T) {
	const n = 6
	master := t.TempDir()
	w, err := OpenWAL(master, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := appendN(t, w, n)
	w.Close()

	raw, err := os.ReadFile(filepath.Join(master, walName))
	if err != nil {
		t.Fatal(err)
	}
	idxRaw, err := os.ReadFile(filepath.Join(master, idxName))
	if err != nil {
		t.Fatal(err)
	}
	// Start offset of the final frame, straight from the index.
	lastStart := int64(0)
	for i := 0; i < idxStride; i++ {
		lastStart |= int64(idxRaw[(n-1)*idxStride+i]) << (8 * i)
	}

	for cut := int(lastStart); cut < len(raw); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, walName), raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		// The stale full-length index rides along: recovery must distrust it.
		if err := os.WriteFile(filepath.Join(dir, idxName), idxRaw, 0o644); err != nil {
			t.Fatal(err)
		}

		tw, err := OpenWAL(dir, WALOptions{})
		if err != nil {
			t.Fatalf("cut %d: open: %v", cut, err)
		}
		_, got := replayAll(t, tw)
		if len(got) != n-1 {
			t.Fatalf("cut %d: replayed %d records, want %d", cut, len(got), n-1)
		}
		for i := range got {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Fatalf("cut %d: record %d = %+v, want %+v", cut, i, got[i], want[i])
			}
		}
		// The torn tail is physically repaired…
		if fi, _ := os.Stat(filepath.Join(dir, walName)); fi.Size() != lastStart {
			t.Fatalf("cut %d: repaired log size = %d, want %d", cut, fi.Size(), lastStart)
		}
		// …the index shrank to match…
		if fi, _ := os.Stat(filepath.Join(dir, idxName)); fi.Size() != (n-1)*idxStride {
			t.Fatalf("cut %d: index size = %d, want %d", cut, fi.Size(), (n-1)*idxStride)
		}
		// …and the store stays writable: the lost record can be re-appended.
		if seq, err := tw.Append(testRecord(n - 1)); err != nil || seq != uint64(n) {
			t.Fatalf("cut %d: append after repair seq=%d err=%v, want seq=%d", cut, seq, err, n)
		}
		_, got = replayAll(t, tw)
		if len(got) != n {
			t.Fatalf("cut %d: post-repair replay = %d records, want %d", cut, len(got), n)
		}
		tw.Close()
	}
}

// TestWALCorruptMidFrame: a bit flip inside an interior frame ends the
// valid log at the previous frame — replay stops cleanly rather than
// delivering corrupt state.
func TestWALCorruptMidFrame(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 5)
	third := w.offsets[3]
	w.Close()

	path := filepath.Join(dir, walName)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[third+2] ^= 0xFF // corrupt frame 3's body
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	w2, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatalf("open over corruption: %v", err)
	}
	defer w2.Close()
	_, got := replayAll(t, w2)
	if len(got) != 3 {
		t.Errorf("replayed %d records past corruption, want 3", len(got))
	}
}

// TestWALCorruptSnapshotIgnored: a snapshot failing its CRC is dropped at
// open instead of poisoning recovery.
func TestWALCorruptSnapshotIgnored(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 3)
	if err := w.WriteSnapshot([]byte(`{"jobs":3}`)); err != nil {
		t.Fatal(err)
	}
	w.Close()

	path := filepath.Join(dir, snapName)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	w2, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatalf("open over corrupt snapshot: %v", err)
	}
	defer w2.Close()
	snap, got := replayAll(t, w2)
	if snap != nil || len(got) != 0 {
		t.Errorf("snap=%q records=%d, want nil snapshot and 0 records (log was truncated by the snapshot)", snap, len(got))
	}
	// The store still accepts appends with a fresh-but-continuing sequence.
	if _, err := w2.Append(testRecord(0)); err != nil {
		t.Fatal(err)
	}
}
