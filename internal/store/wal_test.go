package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

// testRecord builds a deterministic record for index i.
func testRecord(i int) *Record {
	return &Record{
		Type:     RecordType(1 + i%4),
		UnixNano: time.Date(2026, 8, 7, 0, 0, 0, 1234+i, time.UTC).UnixNano(),
		JobID:    fmt.Sprintf("job-%06d", i+1),
		State:    "running",
		Attempts: i % 3,
		TraceID:  fmt.Sprintf("t%08x", i),
		Error:    map[bool]string{true: "boom", false: ""}[i%5 == 0],
		Blob:     []byte(fmt.Sprintf(`{"i":%d}`, i)),
	}
}

// appendN appends n deterministic records.
func appendN(t *testing.T, s JobStore, n int) []*Record {
	t.Helper()
	recs := make([]*Record, 0, n)
	for i := 0; i < n; i++ {
		rec := testRecord(i)
		if _, err := s.Append(rec); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		recs = append(recs, rec)
	}
	return recs
}

// replayAll collects every replayed record plus the snapshot blob.
func replayAll(t *testing.T, s JobStore) ([]byte, []*Record) {
	t.Helper()
	var out []*Record
	snap, err := s.Replay(func(r *Record) error {
		out = append(out, r)
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return snap, out
}

// TestWALRoundTrip: records written to a WAL replay identically after a
// reopen, sequence numbers keep increasing, and field fidelity is exact.
func TestWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{SyncEveryAppend: true})
	if err != nil {
		t.Fatal(err)
	}
	want := appendN(t, w, 25)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	snap, got := replayAll(t, w2)
	if snap != nil {
		t.Fatalf("unexpected snapshot %q", snap)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("record %d:\n got %+v\nwant %+v", i, got[i], want[i])
		}
	}
	// Appends continue the sequence, not restart it.
	rec := testRecord(99)
	seq, err := w2.Append(rec)
	if err != nil {
		t.Fatal(err)
	}
	if seq != uint64(len(want))+1 {
		t.Errorf("next seq = %d, want %d", seq, len(want)+1)
	}
}

// TestWALPointLookup: the fixed-stride index serves random frame access.
func TestWALPointLookup(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	want := appendN(t, w, 40)
	if w.Frames() != 40 {
		t.Fatalf("frames = %d, want 40", w.Frames())
	}
	for _, i := range []int{0, 7, 13, 39} {
		got, err := w.ReadFrame(i)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want[i]) {
			t.Errorf("frame %d:\n got %+v\nwant %+v", i, got, want[i])
		}
	}
	if _, err := w.ReadFrame(40); err == nil {
		t.Error("out-of-range lookup did not error")
	}
	// The index is exactly fixed-stride.
	fi, err := os.Stat(filepath.Join(dir, idxName))
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != 40*idxStride {
		t.Errorf("index size = %d, want %d", fi.Size(), 40*idxStride)
	}
}

// TestWALIndexRebuild: a deleted or mangled index file is rebuilt from the
// log at open, and lookups still work.
func TestWALIndexRebuild(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := appendN(t, w, 10)
	w.Close()

	for name, mangle := range map[string]func(string) error{
		"deleted": os.Remove,
		"garbage": func(p string) error { return os.WriteFile(p, []byte("junk"), 0o644) },
	} {
		t.Run(name, func(t *testing.T) {
			if err := mangle(filepath.Join(dir, idxName)); err != nil {
				t.Fatal(err)
			}
			w2, err := OpenWAL(dir, WALOptions{})
			if err != nil {
				t.Fatal(err)
			}
			defer w2.Close()
			got, err := w2.ReadFrame(9)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want[9]) {
				t.Errorf("frame 9 after rebuild = %+v, want %+v", got, want[9])
			}
		})
	}
}

// TestWALSnapshotTruncation: a snapshot bounds the log — the data file is
// truncated, replay returns the snapshot plus only post-snapshot records,
// and all of it survives a reopen.
func TestWALSnapshotTruncation(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 20)
	state := []byte(`{"jobs":20}`)
	if err := w.WriteSnapshot(state); err != nil {
		t.Fatal(err)
	}
	if got := w.AppendsSinceSnapshot(); got != 0 {
		t.Errorf("appends since snapshot = %d, want 0", got)
	}
	if fi, _ := os.Stat(filepath.Join(dir, walName)); fi.Size() != 0 {
		t.Errorf("log size after snapshot = %d, want 0", fi.Size())
	}

	// Two more records land after the snapshot.
	post := []*Record{testRecord(100), testRecord(101)}
	for _, r := range post {
		if _, err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()

	w2, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	snap, got := replayAll(t, w2)
	if !bytes.Equal(snap, state) {
		t.Errorf("snapshot = %q, want %q", snap, state)
	}
	if len(got) != 2 || !reflect.DeepEqual(got[0], post[0]) || !reflect.DeepEqual(got[1], post[1]) {
		t.Errorf("post-snapshot replay = %+v, want %+v", got, post)
	}
	// Sequence numbering continues past the snapshot across reopen.
	if seq, err := w2.Append(testRecord(5)); err != nil || seq != 23 {
		t.Errorf("seq after snapshot reopen = %d (%v), want 23", seq, err)
	}
	st := w2.Stats()
	if st.SnapshotBytes != int64(len(state)) {
		t.Errorf("snapshot bytes = %d, want %d", st.SnapshotBytes, len(state))
	}
}

// TestWALStaleFramesSkipped simulates a crash between snapshot rename and
// log truncation: frames whose sequence the snapshot absorbs must be
// skipped at replay, not double-applied.
func TestWALStaleFramesSkipped(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 5)
	walRaw, err := os.ReadFile(filepath.Join(dir, walName))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteSnapshot([]byte("S")); err != nil {
		t.Fatal(err)
	}
	w.Close()
	// Put the absorbed frames back, as if truncate never ran.
	if err := os.WriteFile(filepath.Join(dir, walName), walRaw, 0o644); err != nil {
		t.Fatal(err)
	}

	w2, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	snap, got := replayAll(t, w2)
	if string(snap) != "S" {
		t.Errorf("snapshot = %q", snap)
	}
	if len(got) != 0 {
		t.Errorf("replayed %d stale records, want 0", len(got))
	}
}

// TestWALStats: counters move with appends, fsyncs, and snapshots.
func TestWALStats(t *testing.T) {
	w, err := OpenWAL(t.TempDir(), WALOptions{SyncEveryAppend: true})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	appendN(t, w, 3)
	st := w.Stats()
	if st.Appends != 3 || st.Fsyncs < 3 || st.WALBytes <= 0 || st.AppendBytes != uint64(st.WALBytes) {
		t.Errorf("stats = %+v", st)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := w.Stats().Fsyncs; got < 5 {
		t.Errorf("fsyncs after Sync = %d, want >= 5", got)
	}
	if err := w.WriteSnapshot([]byte("x")); err != nil {
		t.Fatal(err)
	}
	st = w.Stats()
	if st.Snapshots != 1 || st.WALBytes != 0 {
		t.Errorf("post-snapshot stats = %+v", st)
	}
}

// TestWALSnapshotDirSyncFailure injects a directory-sync failure into
// WriteSnapshot: the snapshot must report the error and must NOT truncate
// the log, because without a durable directory entry a crash could lose
// the renamed snapshot and the truncated frames at once.
func TestWALSnapshotDirSyncFailure(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	recs := appendN(t, w, 8)

	realSyncDir := syncDir
	syncDir = func(string) error { return fmt.Errorf("injected dir-sync failure") }
	defer func() { syncDir = realSyncDir }()

	if err := w.WriteSnapshot([]byte(`{"jobs":8}`)); err == nil {
		t.Fatal("WriteSnapshot succeeded despite dir-sync failure")
	}
	if got := w.Frames(); got != len(recs) {
		t.Fatalf("frames after failed snapshot = %d, want %d (log must not be truncated)", got, len(recs))
	}
	if got := w.AppendsSinceSnapshot(); got != len(recs) {
		t.Errorf("appends since snapshot = %d, want %d", got, len(recs))
	}
	// Every record must still replay from the intact log.
	_, got := replayAll(t, w)
	if len(got) != len(recs) {
		t.Fatalf("replay after failed snapshot = %d records, want %d", len(got), len(recs))
	}

	// With the failure cleared the same snapshot goes through and the log
	// truncates as usual.
	syncDir = realSyncDir
	if err := w.WriteSnapshot([]byte(`{"jobs":8}`)); err != nil {
		t.Fatal(err)
	}
	if got := w.Frames(); got != 0 {
		t.Errorf("frames after successful snapshot = %d, want 0", got)
	}
}

// TestWALCloseReportsSyncFailure: Close must surface sync/close errors
// instead of dropping them — a failed final flush is a durability event.
func TestWALCloseReportsSyncFailure(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 2)
	if err := w.Close(); err != nil {
		t.Fatalf("first close: %v", err)
	}
	// The files are already closed: a second Close must report the failed
	// sync/close rather than returning nil.
	if err := w.Close(); err == nil {
		t.Fatal("second Close returned nil, want error from closed files")
	}
}
