package store

import (
	"fmt"
	"testing"
	"time"
)

// benchRecord is a realistically sized record: a transition plus a small
// result blob, the common case on dartd's append path.
func benchRecord(i int) *Record {
	return &Record{
		Type:     RecTransition,
		UnixNano: time.Date(2026, 8, 7, 0, 0, 0, i, time.UTC).UnixNano(),
		JobID:    fmt.Sprintf("job-%06d", i),
		State:    "running",
		Attempts: 1,
		TraceID:  "0123456789abcdef",
		Blob:     []byte(`{"repair":{"card":1,"updates":[{"item":{"relation":"R","tuple":3,"attr":"V"},"old":{"domain":"Z","value":250},"new":{"domain":"Z","value":220}}]}}`),
	}
}

// BenchmarkWALAppend measures one async-mode append (frame encode + two
// positioned writes); fsync-mode cost is the device's sync latency and is
// not a useful CI number.
func BenchmarkWALAppend(b *testing.B) {
	w, err := OpenWAL(b.TempDir(), WALOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Append(benchRecord(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReplay measures a full sequential replay of a 1000-record log,
// the cold-boot recovery path.
func BenchmarkReplay(b *testing.B) {
	w, err := OpenWAL(b.TempDir(), WALOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	const n = 1000
	for i := 0; i < n; i++ {
		if _, err := w.Append(benchRecord(i)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		count := 0
		if _, err := w.Replay(func(*Record) error { count++; return nil }); err != nil {
			b.Fatal(err)
		}
		if count != n {
			b.Fatalf("replayed %d, want %d", count, n)
		}
	}
}
