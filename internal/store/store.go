// Package store is dartd's durable job store: everything the in-memory
// queue knows — submitted specs, state transitions, terminal results,
// span-flush markers — is persisted as an append-only sequence of records
// so a restarted server can replay its way back to the exact pre-crash
// state.
//
// The flagship backend is a file-backed write-ahead log (WAL): records are
// uvarint-length-prefixed binary frames, each carrying a CRC32, appended
// to jobs.wal; a fixed-stride offset index (jobs.idx, 8 bytes per frame)
// makes point lookup a single seek; periodic snapshots plus log truncation
// bound disk usage. Recovery is one sequential replay: snapshot first,
// then every frame with a sequence number past the snapshot. A torn tail
// (partial final frame from a crash mid-write) is detected by the length
// and CRC checks and cleanly truncated — replay never errors on it.
//
// A second, in-memory backend (Mem) implements the same interface,
// mirroring the pre-persistence behavior of the service; differential
// tests drive both backends with identical record sequences and assert
// identical replays.
package store

import "time"

// RecordType tags one WAL frame.
type RecordType uint8

const (
	// RecSubmit records a newly accepted job: JobID, submission time, and
	// the job spec JSON in Blob.
	RecSubmit RecordType = iota + 1
	// RecTransition records a job state change: State, Attempts, the
	// transition time, and (entering running) the TraceID. Terminal
	// transitions carry the error text.
	RecTransition
	// RecResult records a terminal result: the wire-form result JSON in
	// Blob. It is appended before the terminal transition so a crash
	// between the two re-runs the job instead of serving a half-state.
	RecResult
	// RecSpans marks that a job's trace spans were flushed to the span
	// exporter; Blob carries a small JSON summary. Replay treats it as an
	// audit-only frame.
	RecSpans
	// RecRepair records one suggestion-ledger event of a validation
	// session: State carries the event kind (proposed, accepted, rejected,
	// reverted, superseded), Blob the event JSON with the full suggestion
	// snapshot. Replay folds these into the job's durable decision history
	// so an interrupted session resumes with its queue and audit trail
	// intact.
	RecRepair
)

// String names the record type for logs and tests.
func (t RecordType) String() string {
	switch t {
	case RecSubmit:
		return "submit"
	case RecTransition:
		return "transition"
	case RecResult:
		return "result"
	case RecSpans:
		return "spans"
	case RecRepair:
		return "repair"
	default:
		return "unknown"
	}
}

// Record is one durable job event. Seq is assigned by the store on append,
// strictly increasing across the store's lifetime (snapshots remember the
// last sequence they cover, so replay skips frames a snapshot already
// absorbed). UnixNano is the event time with full nanosecond fidelity —
// replayed timestamps must be byte-identical to the originals when
// re-encoded as JSON.
type Record struct {
	Type     RecordType
	Seq      uint64
	UnixNano int64
	JobID    string
	State    string
	Attempts int
	TraceID  string
	Error    string
	Blob     []byte
}

// Time converts the record's event time back to a wall-clock time.
func (r *Record) Time() time.Time { return time.Unix(0, r.UnixNano) }

// Stats is a point-in-time snapshot of a store's counters; the service
// exposes them as dart_store_* metrics.
type Stats struct {
	// Appends counts records appended over the store's lifetime.
	Appends uint64
	// AppendBytes counts frame bytes written by appends.
	AppendBytes uint64
	// Fsyncs counts explicit flushes to stable storage.
	Fsyncs uint64
	// Snapshots counts snapshot+truncate cycles.
	Snapshots uint64
	// WALBytes is the current size of the live log.
	WALBytes int64
	// SnapshotBytes is the size of the current snapshot (0 when none).
	SnapshotBytes int64
	// ReplaySeconds is the duration of the last Replay call.
	ReplaySeconds float64
	// ReplayRecords counts records delivered by the last Replay call.
	ReplayRecords uint64
}

// JobStore is the pluggable persistence interface the service writes
// through. Implementations must be safe for concurrent use.
//
// The contract: Append durably adds one record and returns its assigned
// sequence number. Replay delivers the current snapshot blob (nil when
// none) and then every live record in append order; the callback must not
// call back into the store. WriteSnapshot atomically replaces the
// snapshot with state (a caller-defined serialization of everything the
// log expresses) and truncates the absorbed log prefix.
type JobStore interface {
	// Append persists one record and returns its sequence number.
	Append(rec *Record) (uint64, error)
	// Replay returns the snapshot blob and streams every record appended
	// after it, in order.
	Replay(fn func(*Record) error) ([]byte, error)
	// WriteSnapshot replaces the snapshot with state and truncates the
	// log records it absorbs.
	WriteSnapshot(state []byte) error
	// AppendsSinceSnapshot reports log records not yet absorbed by a
	// snapshot; callers use it to schedule WriteSnapshot.
	AppendsSinceSnapshot() int
	// Sync flushes buffered frames to stable storage (graceful drain
	// calls it so a clean shutdown never depends on replaying unsynced
	// frames).
	Sync() error
	// Stats returns the store's counters.
	Stats() Stats
	// Close releases resources; the store is unusable afterwards.
	Close() error
}
