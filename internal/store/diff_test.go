package store

import (
	"bytes"
	"reflect"
	"testing"
)

// drive applies the same scripted operation sequence to any backend.
func drive(t *testing.T, s JobStore) {
	t.Helper()
	for i := 0; i < 12; i++ {
		if _, err := s.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.WriteSnapshot([]byte(`{"state":"mid"}`)); err != nil {
		t.Fatal(err)
	}
	for i := 12; i < 17; i++ {
		if _, err := s.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
}

// TestBackendsReplayIdentically is the store-level differential test: the
// WAL and the in-memory backend, fed the same operation sequence, must
// replay byte-identical snapshots and structurally identical records with
// the same sequence numbers.
func TestBackendsReplayIdentically(t *testing.T) {
	wal, err := OpenWAL(t.TempDir(), WALOptions{SyncEveryAppend: true})
	if err != nil {
		t.Fatal(err)
	}
	defer wal.Close()
	mem := NewMem()
	drive(t, wal)
	drive(t, mem)

	walSnap, walRecs := replayAll(t, wal)
	memSnap, memRecs := replayAll(t, mem)
	if !bytes.Equal(walSnap, memSnap) {
		t.Errorf("snapshots differ: wal=%q mem=%q", walSnap, memSnap)
	}
	if len(walRecs) != len(memRecs) {
		t.Fatalf("record counts differ: wal=%d mem=%d", len(walRecs), len(memRecs))
	}
	for i := range walRecs {
		if !reflect.DeepEqual(walRecs[i], memRecs[i]) {
			t.Errorf("record %d differs:\n wal %+v\n mem %+v", i, walRecs[i], memRecs[i])
		}
	}
	ws, ms := wal.Stats(), mem.Stats()
	if ws.Appends != ms.Appends || ws.AppendBytes != ms.AppendBytes ||
		ws.Snapshots != ms.Snapshots || ws.ReplayRecords != ms.ReplayRecords {
		t.Errorf("stats diverge:\n wal %+v\n mem %+v", ws, ms)
	}
	if walSince, memSince := wal.AppendsSinceSnapshot(), mem.AppendsSinceSnapshot(); walSince != memSince {
		t.Errorf("appends since snapshot: wal=%d mem=%d", walSince, memSince)
	}
}
