package experiments

import (
	"dart/internal/aggrcons"
	"dart/internal/core"
	"dart/internal/relational"
	"dart/internal/runningex"
	"dart/internal/scenario"
	"dart/internal/validate"
)

// constraintsRE returns the cash-budget constraints from the parsed
// scenario metadata (panicking on fixture breakage, which tests rule out).
func constraintsRE() []*aggrcons.Constraint {
	md, err := scenario.CashBudget()
	if err != nil {
		panic(err)
	}
	return md.Constraints()
}

// runningAcquired returns the Fig. 3 acquired instance.
func runningAcquired() *relational.Database { return runningex.AcquiredDatabase() }

// runValidation drives one oracle-supervised validation loop.
func runValidation(db, truth *relational.Database, acs []*aggrcons.Constraint) (*validate.Outcome, error) {
	s := &validate.Session{
		DB:          db,
		Constraints: acs,
		Solver:      &core.MILPSolver{},
		Operator:    &validate.OracleOperator{Truth: truth},
	}
	return s.Run()
}
