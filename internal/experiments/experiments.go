// Package experiments implements the evaluation the paper's conclusion
// promises ("a more extensive experimental evaluation ... on larger data
// sets"): ten experiments E1-E10 indexed in DESIGN.md, each regenerating
// one table of EXPERIMENTS.md. The same functions back cmd/dartbench and
// the root-level testing.B benchmarks.
package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"dart/internal/core"
	"dart/internal/docgen"
	"dart/internal/milp"
	"dart/internal/relational"
)

// Table is one experiment's result: a titled grid of rows.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Add appends a row, formatting each cell with %v.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case time.Duration:
			row[i] = v.Round(time.Microsecond).String()
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	total := 2 * (len(widths) - 1)
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// corruptValues perturbs k distinct Value cells of a CashBudget database
// with OCR-style digit damage, returning the original values of the
// damaged items (the ground truth for precision/recall measurement).
func corruptValues(db *relational.Database, relName, attr string, k int, rng *rand.Rand) map[core.Item]float64 {
	r := db.Relation(relName)
	tuples := r.Tuples()
	truth := map[core.Item]float64{}
	if k > len(tuples) {
		k = len(tuples)
	}
	for _, pi := range rng.Perm(len(tuples))[:k] {
		tp := tuples[pi]
		old := tp.Get(attr).AsInt()
		nw := perturbInt(old, rng)
		if err := r.SetValue(tp.ID(), attr, relational.Int(nw)); err != nil {
			panic(err)
		}
		truth[core.Item{Relation: relName, TupleID: tp.ID(), Attr: attr}] = float64(old)
	}
	return truth
}

// perturbInt applies a digit-level misread that changes the value.
func perturbInt(v int64, rng *rand.Rand) int64 {
	s := []byte(fmt.Sprint(v))
	digits := make([]int, 0, len(s))
	for i := range s {
		if s[i] >= '0' && s[i] <= '9' {
			digits = append(digits, i)
		}
	}
	for {
		i := digits[rng.Intn(len(digits))]
		d := byte('0' + rng.Intn(10))
		if d == s[i] {
			continue
		}
		out := append([]byte(nil), s...)
		out[i] = d
		var nv int64
		fmt.Sscan(string(out), &nv)
		if nv != v {
			return nv
		}
	}
}

// repairAccuracy compares a repair against injected ground truth: exact
// means the repaired values at the damaged items equal the truth and no
// undamaged item was touched.
type repairAccuracy struct {
	exact          bool
	truePositives  int
	falsePositives int
	missed         int
	wrongValue     int
}

func scoreRepair(rep *core.Repair, truth map[core.Item]float64) repairAccuracy {
	acc := repairAccuracy{exact: true}
	seen := map[core.Item]bool{}
	for _, u := range rep.Updates {
		seen[u.Item] = true
		want, isErr := truth[u.Item]
		switch {
		case !isErr:
			acc.falsePositives++
			acc.exact = false
		case u.New.AsFloat() == want:
			acc.truePositives++
		default:
			acc.wrongValue++
			acc.exact = false
		}
	}
	for it := range truth {
		if !seen[it] {
			acc.missed++
			acc.exact = false
		}
	}
	return acc
}

// budgetWithErrors builds a consistent budget database of the given number
// of years, then injects k value errors. Returns db and truth values.
func budgetWithErrors(years, k int, rng *rand.Rand) (*relational.Database, map[core.Item]float64) {
	b := docgen.RandomBudget(rng, 2000, years)
	db := docgen.BudgetDatabase(b)
	truth := corruptValues(db, "CashBudget", "Value", k, rng)
	return db, truth
}

// E1RunningExample reproduces the paper's worked example end to end:
// Fig. 3's instance, the Fig. 4 MILP shape, and Example 11's optimum.
func E1RunningExample() (*Table, error) {
	t := &Table{ID: "E1", Title: "Running example fidelity (Fig. 3/4, Examples 10-11)",
		Header: []string{"check", "expected", "measured", "ok"}}
	db := runningAcquired()
	prob, err := core.Prepare(db, constraintsRE())
	if err != nil {
		return nil, err
	}
	sys := prob.System()
	add := func(name string, want, got any) {
		t.Add(name, want, got, fmt.Sprint(want) == fmt.Sprint(got))
	}
	add("involved values N", 20, sys.N())
	add("translated rows", 8, len(sys.Rows))
	logM, _ := sys.TheoreticalMLog10()
	t.Add("paper M = 20*(28*250)^57 (log10)", "~224", fmt.Sprintf("%.1f", logM), logM > 200 && logM < 260)

	solver := &core.MILPSolver{}
	res, err := solver.SolveProblem(context.Background(), prob, nil)
	if err != nil {
		return nil, err
	}
	add("MILP optimum (repair card)", 1, res.Card)
	if res.Card == 1 {
		u := res.Repair.Updates[0]
		add("repaired value (tcr 2003)", "220", u.New.String())
		add("displacement y4", -30, int(u.New.AsFloat()-u.Old.AsFloat()))
	}
	cs, err := (&core.CardinalitySearchSolver{}).SolveProblem(context.Background(), prob, nil)
	if err != nil {
		return nil, err
	}
	add("cardinality-search agrees", 1, cs.Card)
	return t, nil
}

// E2RepairQuality measures unsupervised repair quality against injected
// errors: how often the card-minimal repair is exactly the true correction.
func E2RepairQuality(docsPerPoint int, seed int64) (*Table, error) {
	t := &Table{ID: "E2", Title: "Unsupervised repair quality vs injected errors (3-year budgets)",
		Header: []string{"errors/doc", "docs", "avg card", "exact-fix rate", "value precision", "value recall"}}
	acs := constraintsRE()
	for _, errs := range []int{1, 2, 3, 4, 5, 6} {
		rng := rand.New(rand.NewSource(seed + int64(errs)))
		var cards, exact, tp, fp, missed, wrong int
		for d := 0; d < docsPerPoint; d++ {
			db, truth := budgetWithErrors(3, errs, rng)
			res, err := (&core.MILPSolver{}).FindRepair(db, acs, nil)
			if err != nil {
				return nil, err
			}
			if res.Status != milp.StatusOptimal {
				return nil, fmt.Errorf("E2: status %v", res.Status)
			}
			cards += res.Card
			acc := scoreRepair(res.Repair, truth)
			if acc.exact {
				exact++
			}
			tp += acc.truePositives
			fp += acc.falsePositives + acc.wrongValue
			missed += acc.missed
			wrong += acc.wrongValue
		}
		prec := ratio(tp, tp+fp)
		rec := ratio(tp, tp+missed+wrong)
		t.Add(errs, docsPerPoint, float64(cards)/float64(docsPerPoint),
			ratio(exact, docsPerPoint), prec, rec)
	}
	t.Notes = append(t.Notes,
		"exact-fix = repair identical to the injected corruption (no operator needed)",
		"precision/recall over (item,value) corrections; ambiguity grows with error count")
	return t, nil
}

// E3Scaling measures translate+solve time against database size, with and
// without component decomposition.
func E3Scaling(errs int, seed int64) (*Table, error) {
	t := &Table{ID: "E3", Title: fmt.Sprintf("Repair time vs database size (%d errors/doc)", errs),
		Header: []string{"years", "N values", "rows", "decomposed time", "monolithic time", "nodes(dec)", "simplex iters(dec)"}}
	acs := constraintsRE()
	for _, years := range []int{2, 5, 10, 20, 50, 100} {
		rng := rand.New(rand.NewSource(seed + int64(years)))
		db, _ := budgetWithErrors(years, errs, rng)
		start := time.Now()
		prob, err := core.Prepare(db, acs)
		if err != nil {
			return nil, err
		}
		res, err := (&core.MILPSolver{}).SolveProblem(context.Background(), prob, nil)
		if err != nil {
			return nil, err
		}
		decTime := time.Since(start)
		sys := prob.System()
		mono := time.Duration(0)
		if years <= 20 { // the monolithic solve becomes impractical beyond this
			start = time.Now()
			if _, err := (&core.MILPSolver{DisableDecomposition: true}).FindRepair(db, acs, nil); err != nil {
				return nil, err
			}
			mono = time.Since(start)
		}
		monoStr := "(skipped)"
		if mono > 0 {
			monoStr = mono.Round(time.Microsecond).String()
		}
		t.Add(years, sys.N(), len(sys.Rows), decTime, monoStr, res.Nodes, res.Iterations)
	}
	t.Notes = append(t.Notes, "monolithic = single MILP over all components (paper's literal reading); decomposition exploits the block structure")
	return t, nil
}

// E4OperatorLoop measures the paper's human-effort claim: validation
// iterations and examined values until the oracle accepts.
func E4OperatorLoop(docsPerPoint int, seed int64) (*Table, error) {
	t := &Table{ID: "E4", Title: "Operator effort with oracle validation (3-year budgets)",
		Header: []string{"errors/doc", "docs", "avg iterations", "avg examined", "avg rejected", "truth recovered"}}
	acs := constraintsRE()
	for _, errs := range []int{1, 2, 3, 4, 5, 6} {
		rng := rand.New(rand.NewSource(seed + 100*int64(errs)))
		var iters, examined, rejected, recovered int
		for d := 0; d < docsPerPoint; d++ {
			b := docgen.RandomBudget(rng, 2000, 3)
			truthDB := docgen.BudgetDatabase(b)
			db := docgen.BudgetDatabase(b)
			corruptValues(db, "CashBudget", "Value", errs, rng)
			out, err := runValidation(db, truthDB, acs)
			if err != nil {
				return nil, err
			}
			iters += out.Iterations
			examined += out.Examined
			rejected += out.Rejected
			if sameDB(out.Repaired, truthDB) {
				recovered++
			}
		}
		t.Add(errs, docsPerPoint,
			float64(iters)/float64(docsPerPoint),
			float64(examined)/float64(docsPerPoint),
			float64(rejected)/float64(docsPerPoint),
			ratio(recovered, docsPerPoint))
	}
	t.Notes = append(t.Notes,
		`the paper reports "the correct repair ... in a few iterations in most cases"`,
		"recovery < 1.0 at high error counts stems from error sets that cancel into a constraint-consistent state, which no constraint-based repairer can detect")
	return t, nil
}

func ratio(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

func sameDB(a, b *relational.Database) bool {
	ra, rb := a.Relation("CashBudget"), b.Relation("CashBudget")
	if ra == nil || rb == nil || ra.Len() != rb.Len() {
		return false
	}
	for i, tp := range ra.Tuples() {
		if tp.String() != rb.Tuples()[i].String() {
			return false
		}
	}
	return true
}
