package experiments

import (
	"math/rand"

	"dart/internal/aggrcons"

	"dart/internal/core"
	"dart/internal/docgen"
	"dart/internal/relational"
	"dart/internal/scenario"
	"dart/internal/validate"
)

// E13ErrorDepth studies how the depth of an error in the balance-sheet
// constraint hierarchy affects diagnosability: leaf details participate in
// one constraint (ambiguous with their siblings), category subtotals in
// two, and the top-level totals in two including the accounting equation.
// More constraint participation means fewer card-minimal repairs and less
// operator effort — the quantitative version of the ordering heuristic's
// intuition in Section 6.3.
func E13ErrorDepth(docsPerPoint int, seed int64) (*Table, error) {
	t := &Table{ID: "E13", Title: "Error depth vs diagnosability (balance sheets, 1 error/doc)",
		Header: []string{"error depth", "docs", "avg violations", "avg minimal repairs", "avg operator decisions", "truth recovered"}}
	md, err := scenario.BalanceSheet()
	if err != nil {
		return nil, err
	}
	acs := md.Constraints()

	// Items per depth class.
	byKind := map[string][]string{}
	for _, item := range docgen.BalanceItems {
		k := docgen.BalanceKindOf[item]
		byKind[k] = append(byKind[k], item)
	}
	depths := []struct{ label, kind string }{
		{"leaf (det)", "det"},
		{"subtotal (sub)", "sub"},
		{"top-level (drv)", "drv"},
	}
	for _, d := range depths {
		rng := rand.New(rand.NewSource(seed + int64(len(d.kind))))
		var viols, repairs, decisions, recovered int
		for doc := 0; doc < docsPerPoint; doc++ {
			years := docgen.RandomBalanceSheet(rng, 2000, 1)
			truth := docgen.BalanceSheetDatabase(years)
			db := docgen.BalanceSheetDatabase(years)
			item := byKind[d.kind][rng.Intn(len(byKind[d.kind]))]
			r := db.Relation("BalanceSheet")
			for _, tp := range r.Tuples() {
				if tp.Get("Item") == relational.String(item) {
					nv := perturbInt(tp.Get("Amount").AsInt(), rng)
					if err := r.SetValue(tp.ID(), "Amount", relational.Int(nv)); err != nil {
						return nil, err
					}
				}
			}
			prob, err := core.Prepare(db, acs)
			if err != nil {
				return nil, err
			}
			viols += len(violatedSystemRows(prob.System()))
			reps, err := prob.EnumerateMinimalRepairs(core.EnumerateOptions{Limit: 64})
			if err != nil {
				return nil, err
			}
			repairs += len(reps)
			s := &validate.Session{
				DB: db, Constraints: acs,
				Problem:  prob,
				Solver:   &core.MILPSolver{},
				Operator: &validate.OracleOperator{Truth: truth},
			}
			out, err := s.Run()
			if err != nil {
				return nil, err
			}
			decisions += out.Examined
			if sameSheet(out.Repaired, truth) {
				recovered++
			}
		}
		t.Add(d.label, docsPerPoint,
			float64(viols)/float64(docsPerPoint),
			float64(repairs)/float64(docsPerPoint),
			float64(decisions)/float64(docsPerPoint),
			ratio(recovered, docsPerPoint))
	}
	t.Notes = append(t.Notes,
		"items participating in more ground constraints are pinned down faster — the basis of the paper's update-ordering heuristic")
	return t, nil
}

// violatedSystemRows evaluates a system at its own values.
func violatedSystemRows(sys *core.System) []int {
	var out []int
	for ri, row := range sys.Rows {
		lhs := 0.0
		for idx, c := range row.Coeffs {
			lhs += c * sys.V[idx]
		}
		d := lhs - row.RHS
		ok := false
		switch row.Rel {
		case aggrcons.LE:
			ok = d <= 1e-6
		case aggrcons.GE:
			ok = d >= -1e-6
		default:
			ok = d <= 1e-6 && d >= -1e-6
		}
		if !ok {
			out = append(out, ri)
		}
	}
	return out
}

func sameSheet(a, b *relational.Database) bool {
	ra, rb := a.Relation("BalanceSheet"), b.Relation("BalanceSheet")
	if ra == nil || rb == nil || ra.Len() != rb.Len() {
		return false
	}
	for i, tp := range ra.Tuples() {
		if tp.String() != rb.Tuples()[i].String() {
			return false
		}
	}
	return true
}
