package experiments

import (
	"math/rand"
	"strconv"
	"strings"
	"testing"
)

func mustTable(t *testing.T, f func() (*Table, error)) *Table {
	t.Helper()
	tab, err := f()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Fatalf("%s: empty table", tab.ID)
	}
	s := tab.Format()
	if !strings.Contains(s, tab.ID) {
		t.Errorf("Format missing ID:\n%s", s)
	}
	return tab
}

func cell(t *testing.T, tab *Table, row, col int) string {
	t.Helper()
	if row >= len(tab.Rows) || col >= len(tab.Rows[row]) {
		t.Fatalf("%s: no cell (%d,%d)", tab.ID, row, col)
	}
	return tab.Rows[row][col]
}

func cellFloat(t *testing.T, tab *Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(cell(t, tab, row, col), 64)
	if err != nil {
		t.Fatalf("%s: cell (%d,%d) = %q not a number", tab.ID, row, col, cell(t, tab, row, col))
	}
	return v
}

func TestE1AllChecksPass(t *testing.T) {
	tab := mustTable(t, func() (*Table, error) { return E1RunningExample() })
	for _, row := range tab.Rows {
		if row[len(row)-1] != "true" {
			t.Errorf("E1 check failed: %v", row)
		}
	}
}

func TestE2ShapeClaims(t *testing.T) {
	tab := mustTable(t, func() (*Table, error) { return E2RepairQuality(8, 7) })
	// Shape: with 1 error the repair is almost always the exact fix; the
	// exact-fix rate decays with error count.
	first := cellFloat(t, tab, 0, 3)
	last := cellFloat(t, tab, len(tab.Rows)-1, 3)
	if first < 0.7 {
		t.Errorf("exact-fix rate at 1 error = %v, want high", first)
	}
	if last > first {
		t.Errorf("exact-fix rate should not grow with errors: first %v, last %v", first, last)
	}
	// Cardinality never exceeds the number of injected errors.
	for i := range tab.Rows {
		errs := cellFloat(t, tab, i, 0)
		card := cellFloat(t, tab, i, 2)
		if card > errs+1e-9 {
			t.Errorf("row %d: avg card %v > errors %v (card-minimality violated)", i, card, errs)
		}
	}
}

func TestE3ProducesAllSizes(t *testing.T) {
	tab := mustTable(t, func() (*Table, error) { return E3Scaling(2, 3) })
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if cell(t, tab, 5, 1) != "1000" {
		t.Errorf("largest N = %s", cell(t, tab, 5, 1))
	}
}

func TestE4OperatorEffortSmall(t *testing.T) {
	tab := mustTable(t, func() (*Table, error) { return E4OperatorLoop(5, 11) })
	// A single error is always detectable (every value participates in at
	// least one ground constraint) so the loop must recover the truth.
	if got := cellFloat(t, tab, 0, 5); got != 1 {
		t.Errorf("truth recovered at 1 error = %v, want 1.0", got)
	}
	// Larger error sets can cancel into a constraint-consistent state —
	// invisible to any constraint-based repairer — so recovery may drop,
	// but not collapse.
	for i := range tab.Rows {
		if got := cellFloat(t, tab, i, 5); got < 0.6 {
			t.Errorf("row %d: truth recovered = %v, want >= 0.6", i, got)
		}
	}
	// A single error settles within a couple of iterations (one extra when
	// the ambiguous card-1 proposal blames the wrong cell first).
	if got := cellFloat(t, tab, 0, 2); got > 3 {
		t.Errorf("avg iterations at 1 error = %v", got)
	}
}

func TestE5WrapperAccuracyDecaysWithNoise(t *testing.T) {
	tab := mustTable(t, func() (*Table, error) { return E5Wrapper(2, 5) })
	// Zero-noise rows must be perfectly extracted for every t-norm.
	for i := 0; i < 3; i++ {
		if got := cellFloat(t, tab, i, 2); got != 1 {
			t.Errorf("t-norm row %d: zero-noise accuracy = %v", i, got)
		}
	}
	// Accuracy at the highest noise must not exceed zero-noise accuracy.
	lastMin := cellFloat(t, tab, len(tab.Rows)-3, 2)
	if lastMin > 1 {
		t.Errorf("accuracy > 1: %v", lastMin)
	}
}

func TestE6MILPNeverBeatenOnCardinality(t *testing.T) {
	tab := mustTable(t, func() (*Table, error) { return E6Baselines(6, 13) })
	var milpCard float64 = -1
	for _, row := range tab.Rows {
		if row[0] == "milp-reduced" {
			milpCard = mustFloat(t, row[2])
			if got := mustFloat(t, row[3]); got != 1 {
				t.Errorf("milp-reduced card-minimal rate = %v", got)
			}
		}
	}
	if milpCard < 0 {
		t.Fatal("no milp-reduced row")
	}
	for _, row := range tab.Rows {
		if strings.HasPrefix(row[0], "greedy") && row[1] != "0/6" {
			if got := mustFloat(t, row[2]); got+1e-9 < milpCard {
				t.Errorf("%s avg card %v beat the optimum %v", row[0], got, milpCard)
			}
		}
	}
}

func mustFloat(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("not a number: %q", s)
	}
	return v
}

func TestE7AndE8Ablations(t *testing.T) {
	tab7 := mustTable(t, func() (*Table, error) { return E7BigM(17) })
	if !strings.Contains(cell(t, tab7, 0, 1), "10^") {
		t.Errorf("theoretical M row = %v", tab7.Rows[0])
	}
	// All solved rows agree on the optimum.
	base := cell(t, tab7, 1, 5)
	for i := 2; i < len(tab7.Rows); i++ {
		if cell(t, tab7, i, 5) != base {
			t.Errorf("M choice changed the optimum: %v vs %v", cell(t, tab7, i, 5), base)
		}
	}
	tab8 := mustTable(t, func() (*Table, error) { return E8Formulation(19) })
	if len(tab8.Rows) != 4 {
		t.Fatalf("E8 rows = %d", len(tab8.Rows))
	}
	// The reduced formulation has fewer variables and rows than literal.
	litVars := mustFloat(t, tab8.Rows[0][2])
	redVars := mustFloat(t, tab8.Rows[2][2])
	if redVars >= litVars {
		t.Errorf("reduced vars %v >= literal vars %v", redVars, litVars)
	}
}

func TestE9SteadinessMatchesExpectations(t *testing.T) {
	tab := mustTable(t, func() (*Table, error) { return E9Steadiness() })
	for _, row := range tab.Rows {
		if row[3] != row[4] {
			t.Errorf("%s: steady=%s expected=%s", row[0], row[3], row[4])
		}
	}
}

func TestE10EndToEndRecoversTruth(t *testing.T) {
	tab := mustTable(t, func() (*Table, error) { return E10EndToEnd(3, 23) })
	for i := range tab.Rows {
		if got := cellFloat(t, tab, i, 2); got != 1 {
			t.Errorf("row %d: truth recovered = %v, want 1.0", i, got)
		}
	}
}

func TestPerturbIntAlwaysChanges(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		v := int64(rng.Intn(2000))
		if perturbInt(v, rng) == v {
			t.Fatalf("perturbInt(%d) returned the input", v)
		}
	}
}

func TestE11ReliabilityShape(t *testing.T) {
	tab := mustTable(t, func() (*Table, error) { return E11Reliability(3, 31) })
	for i := range tab.Rows {
		// At least one minimal repair per doc, and reliable consensus
		// values must overwhelmingly match ground truth.
		if got := cellFloat(t, tab, i, 2); got < 1 {
			t.Errorf("row %d: avg minimal repairs = %v", i, got)
		}
		if got := cellFloat(t, tab, i, 3); got <= 0 || got > 1 {
			t.Errorf("row %d: reliable fraction = %v", i, got)
		}
		if got := cellFloat(t, tab, i, 4); got < 0.9 {
			t.Errorf("row %d: reliable & correct = %v, want >= 0.9", i, got)
		}
	}
}

func TestE12AutoAcceptSavesDecisions(t *testing.T) {
	tab := mustTable(t, func() (*Table, error) { return E12ReliabilityGuidedValidation(3, 37) })
	if len(tab.Rows)%2 != 0 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for i := 0; i < len(tab.Rows); i += 2 {
		plain := cellFloat(t, tab, i, 2)
		auto := cellFloat(t, tab, i+1, 2)
		if auto > plain {
			t.Errorf("errors=%s: auto-accept examined %v > plain %v", cell(t, tab, i, 0), auto, plain)
		}
	}
}

func TestE13DepthImprovesDiagnosability(t *testing.T) {
	tab := mustTable(t, func() (*Table, error) { return E13ErrorDepth(5, 71) })
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Top-level (drv) errors participate in more constraints than leaves,
	// so they admit at most as many minimal repairs on average.
	leafRepairs := cellFloat(t, tab, 0, 3)
	drvRepairs := cellFloat(t, tab, 2, 3)
	if drvRepairs > leafRepairs {
		t.Errorf("drv repairs %v > leaf repairs %v", drvRepairs, leafRepairs)
	}
	for i := range tab.Rows {
		if got := cellFloat(t, tab, i, 5); got != 1 {
			t.Errorf("row %d: truth recovered = %v", i, got)
		}
	}
}
