package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"dart"
	"dart/internal/aggrcons"
	"dart/internal/core"
	"dart/internal/docgen"
	"dart/internal/lexicon"
	"dart/internal/milp"
	"dart/internal/ocr"
	"dart/internal/relational"
	"dart/internal/runningex"
	"dart/internal/scenario"
	"dart/internal/validate"
)

// E5Wrapper measures wrapper extraction accuracy against string noise, per
// t-norm: the fraction of document rows whose extracted (Section,
// Subsection, Value) triple matches the ground truth.
func E5Wrapper(docsPerPoint int, seed int64) (*Table, error) {
	t := &Table{ID: "E5", Title: "Wrapper extraction accuracy vs string noise (t-norm ablation)",
		Header: []string{"string noise", "t-norm", "row accuracy", "rows skipped", "cell score avg"}}
	md, err := scenario.CashBudget()
	if err != nil {
		return nil, err
	}
	for _, rate := range []float64{0.0, 0.1, 0.2, 0.4, 0.6} {
		for _, tn := range []lexicon.TNorm{lexicon.TNormMin, lexicon.TNormProduct, lexicon.TNormLukasiewicz} {
			rng := rand.New(rand.NewSource(seed + int64(rate*100)))
			var okRows, totalRows, skippedRows int
			var scoreSum float64
			var scoreN int
			for d := 0; d < docsPerPoint; d++ {
				years := docgen.RandomBudget(rng, 2000, 2)
				doc := docgen.BudgetDocument(years)
				noisy, _ := ocr.Corrupt(doc, ocr.Options{StringRate: rate}, rng)
				w := md.NewWrapper()
				w.TNorm = tn
				instances, skipped, err := w.Extract(noisy.HTML())
				if err != nil {
					return nil, err
				}
				skippedRows += len(skipped)
				// Ground truth row r of table t is subsection r with its
				// section and value.
				for _, in := range instances {
					totalRows++
					scoreSum += in.Score
					scoreN++
					y := years[in.Table]
					sub := runningex.Subsections[in.Row]
					gotSec, _ := in.Get("Section")
					gotSub, _ := in.Get("Subsection")
					gotVal, _ := in.Get("Value")
					if gotSec == runningex.SectionOf[sub] && gotSub == sub &&
						gotVal == fmt.Sprint(y.Values[in.Row]) {
						okRows++
					}
				}
				totalRows += len(skipped) // skipped rows count as failures
			}
			t.Add(fmt.Sprintf("%.0f%%", rate*100), tn.String(),
				ratio(okRows, totalRows), skippedRows, scoreSum/float64(max(scoreN, 1)))
		}
	}
	t.Notes = append(t.Notes, "numeric cells are left clean here; noise hits section/subsection strings only")
	return t, nil
}

// E6Baselines compares the four solvers on identical corrupted corpora.
func E6Baselines(docsPerPoint int, seed int64) (*Table, error) {
	t := &Table{ID: "E6", Title: "Solver comparison: cardinality and ground-truth accuracy (3 errors/doc)",
		Header: []string{"solver", "solved", "avg card", "card-minimal rate", "exact-fix rate", "avg time"}}
	acs := constraintsRE()
	solvers := []core.Solver{
		&core.MILPSolver{Formulation: core.FormulationReduced},
		&core.MILPSolver{Formulation: core.FormulationLiteral},
		&core.CardinalitySearchSolver{},
		&core.GreedyAggregateSolver{},
		&core.GreedyLocalSolver{},
	}
	type caseData struct {
		db    func() *dbT
		truth map[core.Item]float64
	}
	// Pre-generate the corpus so every solver sees identical inputs.
	var cases []caseData
	rng := rand.New(rand.NewSource(seed))
	for d := 0; d < docsPerPoint; d++ {
		b := docgen.RandomBudget(rng, 2000, 3)
		db := docgen.BudgetDatabase(b)
		truth := corruptValues(db, "CashBudget", "Value", 3, rng)
		cases = append(cases, caseData{db: func() *dbT { return db.Clone() }, truth: truth})
	}
	// Reference optima from the MILP solver.
	optima := make([]int, len(cases))
	for i, c := range cases {
		res, err := (&core.MILPSolver{}).FindRepair(c.db(), acs, nil)
		if err != nil {
			return nil, err
		}
		optima[i] = res.Card
	}
	for _, s := range solvers {
		var solved, cards, minimal, exact int
		var elapsed time.Duration
		for i, c := range cases {
			db := c.db()
			start := time.Now()
			res, err := s.FindRepair(db, acs, nil)
			if err != nil {
				return nil, err
			}
			elapsed += time.Since(start)
			if res.Status != milp.StatusOptimal || res.Repair == nil {
				continue
			}
			solved++
			cards += res.Card
			if res.Card == optima[i] {
				minimal++
			}
			if scoreRepair(res.Repair, c.truth).exact {
				exact++
			}
		}
		avgCard := 0.0
		if solved > 0 {
			avgCard = float64(cards) / float64(solved)
		}
		t.Add(s.Name(), fmt.Sprintf("%d/%d", solved, len(cases)), avgCard,
			ratio(minimal, len(cases)), ratio(exact, len(cases)),
			elapsed/time.Duration(max(len(cases), 1)))
	}
	t.Notes = append(t.Notes,
		"card-minimal rate = solver's repair cardinality equals the MILP optimum",
		"greedy heuristics carry no minimality guarantee; failures count against all rates")
	return t, nil
}

type dbT = dart.Database

// E7BigM quantifies the big-M choice: the paper's theoretical bound in
// log10 (unusable directly) against the practical data-derived bound and
// inflated variants.
func E7BigM(seed int64) (*Table, error) {
	t := &Table{ID: "E7", Title: "Big-M ablation (3-year budgets, 2 errors)",
		Header: []string{"M choice", "M value", "nodes", "simplex iters", "time", "card"}}
	acs := constraintsRE()
	rng := rand.New(rand.NewSource(seed))
	db, _ := budgetWithErrors(3, 2, rng)
	sys, err := core.BuildSystem(db, acs)
	if err != nil {
		return nil, err
	}
	logM, representable := sys.TheoreticalMLog10()
	t.Add("paper theoretical n*(ma)^(2m+1)", fmt.Sprintf("10^%.0f (representable=%v)", logM, representable),
		"-", "-", "-", "-")
	practical := sys.PracticalM()
	for _, mc := range []struct {
		name string
		m    float64
	}{
		{"practical (data-derived)", practical},
		{"practical x 1e3", practical * 1e3},
		{"practical x 1e6", practical * 1e6},
	} {
		start := time.Now()
		res, err := (&core.MILPSolver{BigM: mc.m}).FindRepair(db.Clone(), acs, nil)
		if err != nil {
			return nil, err
		}
		t.Add(mc.name, fmt.Sprintf("%.3g", mc.m), res.Nodes, res.Iterations, time.Since(start), res.Card)
	}
	t.Notes = append(t.Notes,
		"the theoretical bound guarantees completeness but overwhelms float64 arithmetic long before real corpora",
		"oversized M weakens the LP relaxation and inflates branch-and-bound work")
	return t, nil
}

// E8Formulation compares the literal Eq.-(8) layout against the reduced
// substitution, with cover cuts on and off.
func E8Formulation(seed int64) (*Table, error) {
	t := &Table{ID: "E8", Title: "Formulation ablation (10-year budgets, 3 errors, monolithic solve)",
		Header: []string{"formulation", "cover cuts", "vars", "rows", "nodes", "simplex iters", "time", "card"}}
	acs := constraintsRE()
	rng := rand.New(rand.NewSource(seed))
	db, _ := budgetWithErrors(10, 3, rng)
	sys, err := core.BuildSystem(db, acs)
	if err != nil {
		return nil, err
	}
	for _, form := range []core.Formulation{core.FormulationLiteral, core.FormulationReduced} {
		for _, noCuts := range []bool{false, true} {
			comp, err := core.Compile(sys, core.CompileOptions{Formulation: form, DisableCoverCuts: noCuts})
			if err != nil {
				return nil, err
			}
			solver := &core.MILPSolver{
				Formulation:          form,
				DisableCoverCuts:     noCuts,
				DisableDecomposition: true,
				Options:              milp.MILPOptions{MaxNodes: 4000},
			}
			start := time.Now()
			res, err := solver.FindRepair(db.Clone(), acs, nil)
			if err != nil {
				return nil, err
			}
			card := "-"
			if res.Repair != nil {
				card = fmt.Sprint(res.Card)
			}
			t.Add(form.String(), !noCuts, comp.Model.NumVars(), comp.Model.NumConstraints(),
				res.Nodes, res.Iterations, time.Since(start), card)
		}
	}
	t.Notes = append(t.Notes, "without cover cuts the big-M LP bound is ~0 and branch-and-bound may hit the node limit")
	return t, nil
}

// E9Steadiness exercises the Definition 6 classifier on a constraint corpus.
func E9Steadiness() (*Table, error) {
	t := &Table{ID: "E9", Title: "Steadiness analysis (Definition 6) over a constraint corpus",
		Header: []string{"constraint", "A(k)", "J(k)", "steady", "expected"}}
	db := runningAcquired()
	for _, k := range constraintsRE() {
		t.Add(k.Name, refs(k.ASet(db)), refs(k.JSet(db)), k.IsSteady(db), true)
	}
	// Example 9's non-steady constraint.
	db9, kappa := example9()
	t.Add(kappa.Name, refs(kappa.ASet(db9)), refs(kappa.JSet(db9)), kappa.IsSteady(db9), false)
	// A WHERE clause over the measure attribute (non-steady via A(k)).
	chiBad := &aggrcons.AggFunc{
		Name: "chiBad", Relation: "CashBudget", Params: []string{"x"},
		Expr:  aggrcons.AttrTerm("Value"),
		Where: aggrcons.Cmp{L: aggrcons.OpAttr("Value"), Op: aggrcons.CmpGE, R: aggrcons.OpParam(0)},
	}
	bad := &aggrcons.Constraint{
		Name: "measure-in-where",
		Body: []aggrcons.Atom{{Relation: "CashBudget", Args: []aggrcons.ArgTerm{
			aggrcons.VarArg("x"), aggrcons.Wildcard(), aggrcons.Wildcard(), aggrcons.Wildcard(), aggrcons.Wildcard()}}},
		Calls: []aggrcons.AggCall{{Coeff: 1, Func: chiBad, Args: []aggrcons.ArgTerm{aggrcons.VarArg("x")}}},
		Rel:   aggrcons.LE, K: 1e6,
	}
	t.Add(bad.Name, refs(bad.ASet(db)), refs(bad.JSet(db)), bad.IsSteady(db), false)
	// The catalog constraint.
	md, err := scenario.Catalog()
	if err != nil {
		return nil, err
	}
	odb := docgen.OrdersDatabase(docgen.RandomOrders(rand.New(rand.NewSource(1)), 2))
	for _, k := range md.Constraints() {
		t.Add(k.Name, refs(k.ASet(odb)), refs(k.JSet(odb)), k.IsSteady(odb), true)
	}
	return t, nil
}

// refs renders an attribute-reference set compactly.
func refs(rs []relational.AttrRef) string {
	if len(rs) == 0 {
		return "{}"
	}
	parts := make([]string, len(rs))
	for i, r := range rs {
		parts[i] = r.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// E10EndToEnd measures full-pipeline throughput and accuracy: document
// rendering, OCR noise, conversion, wrapping, generation, repair, oracle
// validation.
func E10EndToEnd(docs int, seed int64) (*Table, error) {
	t := &Table{ID: "E10", Title: "End-to-end pipeline (2-year budgets, 1 numeric + light string noise)",
		Header: []string{"path", "docs", "truth recovered", "avg operator decisions", "docs/sec"}}
	md, err := scenario.CashBudget()
	if err != nil {
		return nil, err
	}
	for _, path := range []string{"html", "scantext"} {
		rng := rand.New(rand.NewSource(seed))
		var recovered, decisions int
		start := time.Now()
		for d := 0; d < docs; d++ {
			years := docgen.RandomBudget(rng, 2000, 2)
			truth := docgen.BudgetDatabase(years)
			doc := docgen.BudgetDocument(years)
			noisy, _ := ocr.Corrupt(doc, ocr.Options{
				NumericErrors: 1,
				StringRate:    0.05,
				EligibleNumeric: func(table, row, col int, text string) bool {
					return !(row == 0 && col == 0)
				},
			}, rng)
			src := noisy.HTML()
			if path == "scantext" {
				src = noisy.ScanText()
			}
			p := &dart.Pipeline{Metadata: md, Operator: &validate.OracleOperator{Truth: truth}}
			res, err := p.Process(src)
			if err != nil {
				return nil, err
			}
			if res.Validation != nil {
				decisions += res.Validation.Examined
			}
			if sameDB(res.Repaired, truth) {
				recovered++
			}
		}
		elapsed := time.Since(start)
		t.Add(path, docs, ratio(recovered, docs),
			float64(decisions)/float64(max(docs, 1)),
			float64(docs)/elapsed.Seconds())
	}
	return t, nil
}

// example9 builds the paper's Example 9 schema and constraint: R1(A1,A2,A3)
// and R2(A4,A5,A6) with measures {A2, A4}, and kappa joining them with an
// aggregation whose WHERE involves both a measure-corresponding variable
// and a join over a measure attribute.
func example9() (*relational.Database, *aggrcons.Constraint) {
	db := relational.NewDatabase()
	db.MustAddRelation(relational.MustSchema("R1",
		relational.Attribute{Name: "A1", Domain: relational.DomainInt},
		relational.Attribute{Name: "A2", Domain: relational.DomainInt},
		relational.Attribute{Name: "A3", Domain: relational.DomainInt},
	))
	db.MustAddRelation(relational.MustSchema("R2",
		relational.Attribute{Name: "A4", Domain: relational.DomainInt},
		relational.Attribute{Name: "A5", Domain: relational.DomainInt},
		relational.Attribute{Name: "A6", Domain: relational.DomainInt},
	))
	if err := db.DesignateMeasure("R1", "A2"); err != nil {
		panic(err)
	}
	if err := db.DesignateMeasure("R2", "A4"); err != nil {
		panic(err)
	}
	chi := &aggrcons.AggFunc{
		Name: "chi", Relation: "R2", Params: []string{"x"},
		Expr:  aggrcons.AttrTerm("A6"),
		Where: aggrcons.Cmp{L: aggrcons.OpAttr("A5"), Op: aggrcons.CmpEQ, R: aggrcons.OpParam(0)},
	}
	kappa := &aggrcons.Constraint{
		Name: "example9-kappa",
		Body: []aggrcons.Atom{
			{Relation: "R1", Args: []aggrcons.ArgTerm{aggrcons.VarArg("x1"), aggrcons.VarArg("x2"), aggrcons.VarArg("x3")}},
			{Relation: "R2", Args: []aggrcons.ArgTerm{aggrcons.VarArg("x3"), aggrcons.VarArg("x4"), aggrcons.VarArg("x5")}},
		},
		Calls: []aggrcons.AggCall{{Coeff: 1, Func: chi, Args: []aggrcons.ArgTerm{aggrcons.VarArg("x2")}}},
		Rel:   aggrcons.LE, K: 10,
	}
	return db, kappa
}
