package experiments

import (
	"math/rand"
	"time"

	"dart/internal/core"
	"dart/internal/docgen"
	"dart/internal/validate"
)

// E11Reliability measures repair ambiguity: how many card-minimal repairs
// a corrupted document admits, and what fraction of its values are
// reliable (identical across all of them) — the consistent-query-answer
// layer of [16] that explains why unsupervised exact-fix rates (E2) sit
// well below 1 while supervised recovery (E4) reaches 1.
func E11Reliability(docsPerPoint int, seed int64) (*Table, error) {
	t := &Table{ID: "E11", Title: "Repair ambiguity and value reliability (3-year budgets)",
		Header: []string{"errors/doc", "docs", "avg minimal repairs", "reliable values", "reliable & correct", "avg time"}}
	acs := constraintsRE()
	for _, errs := range []int{1, 2, 3, 4} {
		rng := rand.New(rand.NewSource(seed + 1000*int64(errs)))
		var repairs, items, reliable, reliableCorrect int
		var elapsed time.Duration
		for d := 0; d < docsPerPoint; d++ {
			b := docgen.RandomBudget(rng, 2000, 3)
			truthDB := docgen.BudgetDatabase(b)
			db := docgen.BudgetDatabase(b)
			corruptValues(db, "CashBudget", "Value", errs, rng)
			start := time.Now()
			prob, err := core.Prepare(db, acs)
			if err != nil {
				return nil, err
			}
			reps, err := prob.EnumerateMinimalRepairs(core.EnumerateOptions{Limit: 128})
			if err != nil {
				return nil, err
			}
			rel, err := prob.ReliableValues(core.EnumerateOptions{Limit: 128})
			if err != nil {
				return nil, err
			}
			elapsed += time.Since(start)
			repairs += len(reps)
			for _, r := range rel {
				items++
				if !r.Reliable {
					continue
				}
				reliable++
				truth := truthDB.Relation(r.Item.Relation).TupleByID(r.Item.TupleID).Get(r.Item.Attr).AsFloat()
				if r.Values[0] == truth {
					reliableCorrect++
				}
			}
		}
		t.Add(errs, docsPerPoint,
			float64(repairs)/float64(docsPerPoint),
			ratio(reliable, items),
			ratio(reliableCorrect, max(reliable, 1)),
			elapsed/time.Duration(max(docsPerPoint, 1)))
	}
	t.Notes = append(t.Notes,
		"reliable = the value is identical in every card-minimal repair (the card-minimal consistent answer)",
		"'reliable & correct' tracks how often that consensus value matches ground truth")
	return t, nil
}

// E12ReliabilityGuidedValidation compares the plain Section 6.3 loop
// against a reliability-guided variant that auto-accepts updates whose
// item is reliable across all card-minimal repairs — an extension beyond
// the paper quantifying how much operator attention the CQA layer saves
// and what it costs in recovery.
func E12ReliabilityGuidedValidation(docsPerPoint int, seed int64) (*Table, error) {
	t := &Table{ID: "E12", Title: "Reliability-guided validation vs plain Section 6.3 loop (3-year budgets)",
		Header: []string{"errors/doc", "mode", "avg examined", "avg auto-accepted", "truth recovered"}}
	acs := constraintsRE()
	for _, errs := range []int{1, 2, 3, 4} {
		for _, auto := range []bool{false, true} {
			rng := rand.New(rand.NewSource(seed + 11*int64(errs)))
			var examined, autoAccepted, recovered int
			for d := 0; d < docsPerPoint; d++ {
				b := docgen.RandomBudget(rng, 2000, 3)
				truthDB := docgen.BudgetDatabase(b)
				db := docgen.BudgetDatabase(b)
				corruptValues(db, "CashBudget", "Value", errs, rng)
				s := &validate.Session{
					DB: db, Constraints: acs,
					Solver:             &core.MILPSolver{},
					Operator:           &validate.OracleOperator{Truth: truthDB},
					AutoAcceptReliable: auto,
				}
				out, err := s.Run()
				if err != nil {
					return nil, err
				}
				examined += out.Examined
				autoAccepted += out.AutoAccepted
				if sameDB(out.Repaired, truthDB) {
					recovered++
				}
			}
			mode := "plain"
			if auto {
				mode = "auto-accept reliable"
			}
			t.Add(errs, mode,
				float64(examined)/float64(docsPerPoint),
				float64(autoAccepted)/float64(docsPerPoint),
				ratio(recovered, docsPerPoint))
		}
	}
	t.Notes = append(t.Notes,
		"auto-accepting reliable updates trades operator decisions for a small recovery risk: a reliable value is only guaranteed correct when the true correction is card-minimal")
	return t, nil
}
