// Package lexicon implements the linguistic metadata of Section 6.2: domain
// descriptions (sets of lexical items), hierarchical relationships between
// items of different domains (Fig. 6), string similarity scoring for the
// wrapper's cell matching, t-norms for combining cell scores into row
// scores, and dictionary-based spelling correction of non-numerical strings
// damaged during acquisition.
package lexicon

import (
	"fmt"
	"sort"
	"strings"
)

// Levenshtein computes the edit distance between two strings (unit-cost
// insertions, deletions, substitutions), operating on bytes: the OCR
// confusions DART repairs are single-symbol slips, for which byte distance
// coincides with rune distance on the ASCII documents targeted.
func Levenshtein(a, b string) int {
	if a == b {
		return 0
	}
	la, lb := len(a), len(b)
	if la == 0 {
		return lb
	}
	if lb == 0 {
		return la
	}
	prev := make([]int, lb+1)
	cur := make([]int, lb+1)
	for j := 0; j <= lb; j++ {
		prev[j] = j
	}
	for i := 1; i <= la; i++ {
		cur[0] = i
		for j := 1; j <= lb; j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[lb]
}

// DamerauLevenshtein additionally counts adjacent transpositions as one
// edit (the restricted variant).
func DamerauLevenshtein(a, b string) int {
	la, lb := len(a), len(b)
	if la == 0 {
		return lb
	}
	if lb == 0 {
		return la
	}
	rows := make([][]int, la+1)
	for i := range rows {
		rows[i] = make([]int, lb+1)
		rows[i][0] = i
	}
	for j := 0; j <= lb; j++ {
		rows[0][j] = j
	}
	for i := 1; i <= la; i++ {
		for j := 1; j <= lb; j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			d := min3(rows[i-1][j]+1, rows[i][j-1]+1, rows[i-1][j-1]+cost)
			if i > 1 && j > 1 && a[i-1] == b[j-2] && a[i-2] == b[j-1] {
				if t := rows[i-2][j-2] + 1; t < d {
					d = t
				}
			}
			rows[i][j] = d
		}
	}
	return rows[la][lb]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// Similarity maps edit distance into [0, 1]: 1 for identical strings,
// falling linearly with distance relative to the longer string. Comparison
// is case-insensitive with surrounding whitespace ignored, matching how the
// wrapper normalizes cell text.
func Similarity(a, b string) float64 {
	a = Normalize(a)
	b = Normalize(b)
	if a == b {
		return 1
	}
	la, lb := len(a), len(b)
	m := la
	if lb > m {
		m = lb
	}
	if m == 0 {
		return 1
	}
	d := Levenshtein(a, b)
	s := 1 - float64(d)/float64(m)
	if s < 0 {
		return 0
	}
	return s
}

// Normalize lower-cases and collapses internal whitespace.
func Normalize(s string) string {
	return strings.Join(strings.Fields(strings.ToLower(s)), " ")
}

// Domain is a named set of lexical items (a domain description).
type Domain struct {
	Name  string
	items []string
	set   map[string]bool
}

// NewDomain creates a domain with the given items. Items are kept verbatim
// for output but matched in normalized form.
func NewDomain(name string, items ...string) *Domain {
	d := &Domain{Name: name, set: map[string]bool{}}
	for _, it := range items {
		d.Add(it)
	}
	return d
}

// Add inserts an item (idempotent under normalization).
func (d *Domain) Add(item string) {
	key := Normalize(item)
	if !d.set[key] {
		d.set[key] = true
		d.items = append(d.items, item)
	}
}

// Items returns the items in insertion order.
func (d *Domain) Items() []string { return append([]string(nil), d.items...) }

// Contains reports whether the string is an item of the domain (normalized
// comparison).
func (d *Domain) Contains(s string) bool { return d.set[Normalize(s)] }

// Match is the result of matching a string against a domain.
type Match struct {
	Item  string
	Score float64
}

// BestMatch returns the most similar lexical item (msi in the paper's
// wrapper description) together with its similarity score. ok is false for
// an empty domain.
func (d *Domain) BestMatch(s string) (Match, bool) {
	if len(d.items) == 0 {
		return Match{}, false
	}
	best := Match{Score: -1}
	for _, it := range d.items {
		sc := Similarity(s, it)
		if sc > best.Score {
			best = Match{Item: it, Score: sc}
		}
	}
	return best, true
}

// Hierarchy stores the hierarchical relationships of Fig. 6: item a of one
// domain is a specialization of item b of another. Keys are normalized.
type Hierarchy struct {
	parents map[string]map[string]bool
}

// NewHierarchy creates an empty hierarchy.
func NewHierarchy() *Hierarchy {
	return &Hierarchy{parents: map[string]map[string]bool{}}
}

// AddSpecialization records that child is a specialization of parent.
func (h *Hierarchy) AddSpecialization(child, parent string) {
	c := Normalize(child)
	if h.parents[c] == nil {
		h.parents[c] = map[string]bool{}
	}
	h.parents[c][Normalize(parent)] = true
}

// IsSpecializationOf reports whether child is a (direct or transitive)
// specialization of parent.
func (h *Hierarchy) IsSpecializationOf(child, parent string) bool {
	c, p := Normalize(child), Normalize(parent)
	if c == p {
		return false
	}
	seen := map[string]bool{}
	var walk func(string) bool
	walk = func(cur string) bool {
		if seen[cur] {
			return false
		}
		seen[cur] = true
		for up := range h.parents[cur] {
			if up == p || walk(up) {
				return true
			}
		}
		return false
	}
	return walk(c)
}

// Parents returns the direct generalizations of an item, sorted.
func (h *Hierarchy) Parents(child string) []string {
	var out []string
	for p := range h.parents[Normalize(child)] {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// TNorm is a triangular norm used to combine per-cell matching scores into
// a row-pattern-instance score (Section 6.2: "a suitable t-norm").
type TNorm int

const (
	// TNormMin is the Gödel t-norm: min(a, b).
	TNormMin TNorm = iota
	// TNormProduct is the product t-norm: a*b.
	TNormProduct
	// TNormLukasiewicz is max(0, a+b-1).
	TNormLukasiewicz
)

// String names the t-norm.
func (t TNorm) String() string {
	switch t {
	case TNormMin:
		return "min"
	case TNormProduct:
		return "product"
	case TNormLukasiewicz:
		return "lukasiewicz"
	default:
		return fmt.Sprintf("TNorm(%d)", int(t))
	}
}

// Combine folds the t-norm over the scores; the empty combination is 1
// (the t-norm identity).
func (t TNorm) Combine(scores []float64) float64 {
	acc := 1.0
	for _, s := range scores {
		switch t {
		case TNormMin:
			if s < acc {
				acc = s
			}
		case TNormProduct:
			acc *= s
		case TNormLukasiewicz:
			acc = acc + s - 1
			if acc < 0 {
				acc = 0
			}
		}
	}
	return acc
}

// Corrector performs dictionary-based spelling correction against a domain:
// strings whose best match reaches MinScore are replaced by the matched
// lexical item (the wrapper's repair of non-numerical strings).
type Corrector struct {
	Domain   *Domain
	MinScore float64
}

// Correct returns the corrected string, its match score, and whether the
// correction (or exact match) succeeded. Inputs already in the domain
// return themselves with score 1.
func (c *Corrector) Correct(s string) (string, float64, bool) {
	m, ok := c.Domain.BestMatch(s)
	if !ok {
		return s, 0, false
	}
	if m.Score >= c.MinScore {
		return m.Item, m.Score, true
	}
	return s, m.Score, false
}
