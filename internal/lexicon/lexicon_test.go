package lexicon

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLevenshtein(t *testing.T) {
	tests := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "abc", 0},
		{"abc", "", 3},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"beginning cash", "bgnning cesh", 3}, // the paper's Example 13 slip
	}
	for _, tc := range tests {
		if got := Levenshtein(tc.a, tc.b); got != tc.want {
			t.Errorf("Levenshtein(%q, %q) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestDamerauLevenshtein(t *testing.T) {
	tests := []struct {
		a, b string
		want int
	}{
		{"abcd", "abdc", 1}, // one transposition
		{"abcd", "abcd", 0},
		{"ca", "abc", 3}, // restricted Damerau classic
		{"receipts", "reciepts", 1},
		{"", "ab", 2},
	}
	for _, tc := range tests {
		if got := DamerauLevenshtein(tc.a, tc.b); got != tc.want {
			t.Errorf("DamerauLevenshtein(%q, %q) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestLevenshteinProperties(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}
	symmetric := func(a, b string) bool { return Levenshtein(a, b) == Levenshtein(b, a) }
	if err := quick.Check(symmetric, cfg); err != nil {
		t.Error("symmetry:", err)
	}
	identity := func(a string) bool { return Levenshtein(a, a) == 0 }
	if err := quick.Check(identity, cfg); err != nil {
		t.Error("identity:", err)
	}
	triangle := func(a, b, c string) bool {
		return Levenshtein(a, c) <= Levenshtein(a, b)+Levenshtein(b, c)
	}
	if err := quick.Check(triangle, cfg); err != nil {
		t.Error("triangle inequality:", err)
	}
	damerauLeq := func(a, b string) bool { return DamerauLevenshtein(a, b) <= Levenshtein(a, b) }
	if err := quick.Check(damerauLeq, cfg); err != nil {
		t.Error("Damerau <= Levenshtein:", err)
	}
}

func TestSimilarity(t *testing.T) {
	if s := Similarity("beginning cash", "Beginning   Cash"); s != 1 {
		t.Errorf("normalized identical strings: %v", s)
	}
	if s := Similarity("", ""); s != 1 {
		t.Errorf("empty strings: %v", s)
	}
	s := Similarity("bgnning cesh", "beginning cash")
	if s <= 0.7 || s >= 1 {
		t.Errorf("Similarity(bgnning cesh, beginning cash) = %v, want in (0.7, 1)", s)
	}
	if s := Similarity("abc", "xyz"); s != 0 {
		t.Errorf("disjoint strings: %v", s)
	}
	prop := func(a, b string) bool {
		s := Similarity(a, b)
		return s >= 0 && s <= 1 && math.Abs(s-Similarity(b, a)) < 1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Error(err)
	}
}

func TestDomainBestMatch(t *testing.T) {
	d := NewDomain("Subsection",
		"beginning cash", "cash sales", "receivables", "total cash receipts")
	if !d.Contains("Beginning Cash") {
		t.Error("Contains should normalize")
	}
	if d.Contains("nope") {
		t.Error("Contains(nope)")
	}
	m, ok := d.BestMatch("bgnning cesh")
	if !ok || m.Item != "beginning cash" {
		t.Errorf("BestMatch = %+v, %v", m, ok)
	}
	if m.Score <= 0.7 {
		t.Errorf("score = %v", m.Score)
	}
	m, _ = d.BestMatch("cash sales")
	if m.Score != 1 {
		t.Errorf("exact match score = %v", m.Score)
	}
	if _, ok := NewDomain("empty").BestMatch("x"); ok {
		t.Error("empty domain should report no match")
	}
	// Add is idempotent under normalization.
	d.Add("CASH SALES")
	if len(d.Items()) != 4 {
		t.Errorf("Items = %v", d.Items())
	}
}

func TestHierarchy(t *testing.T) {
	h := NewHierarchy()
	h.AddSpecialization("beginning cash", "Receipts")
	h.AddSpecialization("cash sales", "Receipts")
	h.AddSpecialization("Receipts", "CashBudgetEntry")
	if !h.IsSpecializationOf("beginning cash", "Receipts") {
		t.Error("direct specialization")
	}
	if !h.IsSpecializationOf("beginning cash", "CashBudgetEntry") {
		t.Error("transitive specialization")
	}
	if h.IsSpecializationOf("Receipts", "beginning cash") {
		t.Error("reverse direction must fail")
	}
	if h.IsSpecializationOf("Receipts", "Receipts") {
		t.Error("an item is not a specialization of itself")
	}
	if got := h.Parents("beginning cash"); len(got) != 1 || got[0] != "receipts" {
		t.Errorf("Parents = %v", got)
	}
	// Cycles must not loop forever.
	h.AddSpecialization("a", "b")
	h.AddSpecialization("b", "a")
	if h.IsSpecializationOf("a", "zzz") {
		t.Error("cycle should not reach zzz")
	}
}

func TestTNorms(t *testing.T) {
	scores := []float64{0.9, 1.0, 0.8}
	tests := []struct {
		tn   TNorm
		want float64
	}{
		{TNormMin, 0.8},
		{TNormProduct, 0.72},
		{TNormLukasiewicz, 0.7},
	}
	for _, tc := range tests {
		if got := tc.tn.Combine(scores); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("%s.Combine = %v, want %v", tc.tn, got, tc.want)
		}
	}
	for _, tn := range []TNorm{TNormMin, TNormProduct, TNormLukasiewicz} {
		if got := tn.Combine(nil); got != 1 {
			t.Errorf("%s.Combine(nil) = %v, want 1 (identity)", tn, got)
		}
	}
	// t-norm axioms on sampled values: bounded by min, monotone, identity 1.
	prop := func(a, b uint8) bool {
		x, y := float64(a)/255, float64(b)/255
		for _, tn := range []TNorm{TNormMin, TNormProduct, TNormLukasiewicz} {
			v := tn.Combine([]float64{x, y})
			if v < 0 || v > math.Min(x, y)+1e-12 {
				return false
			}
			if one := tn.Combine([]float64{x, 1}); math.Abs(one-x) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Error(err)
	}
}

func TestCorrector(t *testing.T) {
	d := NewDomain("Subsection", "beginning cash", "cash sales", "receivables")
	c := &Corrector{Domain: d, MinScore: 0.7}
	got, score, ok := c.Correct("bgnning cesh")
	if !ok || got != "beginning cash" || score <= 0.7 {
		t.Errorf("Correct = %q, %v, %v", got, score, ok)
	}
	got, score, ok = c.Correct("cash sales")
	if !ok || got != "cash sales" || score != 1 {
		t.Errorf("exact Correct = %q, %v, %v", got, score, ok)
	}
	got, _, ok = c.Correct("totally unrelated text")
	if ok || got != "totally unrelated text" {
		t.Errorf("low-score Correct = %q, %v", got, ok)
	}
	empty := &Corrector{Domain: NewDomain("empty"), MinScore: 0.5}
	if _, _, ok := empty.Correct("x"); ok {
		t.Error("empty domain cannot correct")
	}
}

func TestTNormString(t *testing.T) {
	if TNormMin.String() != "min" || TNormProduct.String() != "product" || TNormLukasiewicz.String() != "lukasiewicz" {
		t.Error("TNorm names")
	}
}
