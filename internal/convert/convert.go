// Package convert is the acquisition module's format-conversion stage
// (Section 6.1): input documents that are not already HTML are normalized
// into HTML before extraction. The paper's implementation shells out to
// PDF/MSWord/RTF converters and an OCR tool; this package handles the two
// formats the simulated pipeline produces — HTML itself and the plain
// "scan text" layer that stands in for OCR output of paper documents.
package convert

import (
	"fmt"
	"strings"

	"dart/internal/htmlx"
)

// Format identifies an input document format.
type Format int

const (
	// FormatHTML is an HTML document, passed through unchanged.
	FormatHTML Format = iota
	// FormatScanText is the pipe-separated text layer produced by the OCR
	// simulation for paper documents.
	FormatScanText
)

// String names the format.
func (f Format) String() string {
	switch f {
	case FormatHTML:
		return "html"
	case FormatScanText:
		return "scantext"
	default:
		return fmt.Sprintf("Format(%d)", int(f))
	}
}

// Detect guesses the format of a source document: anything starting with an
// HTML construct is HTML, otherwise scan text.
func Detect(src string) Format {
	s := strings.TrimSpace(src)
	low := strings.ToLower(s)
	if strings.HasPrefix(low, "<!doctype") || strings.HasPrefix(low, "<html") || strings.HasPrefix(low, "<table") {
		return FormatHTML
	}
	return FormatScanText
}

// ToHTML converts a source document of the given format into HTML.
func ToHTML(src string, f Format) (string, error) {
	switch f {
	case FormatHTML:
		return src, nil
	case FormatScanText:
		return ScanTextToHTML(src), nil
	default:
		return "", fmt.Errorf("convert: unsupported format %v", f)
	}
}

// ScanTextToHTML rebuilds an HTML document from a scan-text layer: lines of
// pipe-separated cells become table rows; "== title ==" lines become the
// document title; "-- caption --" lines become table captions; blank lines
// separate tables. Spans are not reconstructed — the scanner saw repeated
// values, and the wrapper's matching works on the repeated form just as it
// does on the rowspan form.
func ScanTextToHTML(text string) string {
	var b strings.Builder
	title := "Converted document"
	type table struct {
		caption string
		rows    [][]string
	}
	var tables []*table
	var cur *table
	flush := func() {
		if cur != nil && len(cur.rows) > 0 {
			tables = append(tables, cur)
		}
		cur = nil
	}
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		switch {
		case line == "":
			flush()
		case strings.HasPrefix(line, "== ") && strings.HasSuffix(line, " =="):
			title = strings.TrimSpace(strings.TrimSuffix(strings.TrimPrefix(line, "== "), " =="))
			flush()
		case strings.HasPrefix(line, "-- ") && strings.HasSuffix(line, " --"):
			flush()
			cur = &table{caption: strings.TrimSpace(strings.TrimSuffix(strings.TrimPrefix(line, "-- "), " --"))}
		default:
			if cur == nil {
				cur = &table{}
			}
			cells := strings.Split(line, "|")
			for i := range cells {
				cells[i] = strings.TrimSpace(cells[i])
			}
			cur.rows = append(cur.rows, cells)
		}
	}
	flush()

	b.WriteString("<!DOCTYPE html>\n<html><head><title>")
	b.WriteString(htmlx.EscapeText(title))
	b.WriteString("</title></head>\n<body>\n")
	for _, t := range tables {
		if t.caption != "" {
			fmt.Fprintf(&b, "<h2>%s</h2>\n", htmlx.EscapeText(t.caption))
		}
		b.WriteString("<table>\n")
		for _, row := range t.rows {
			b.WriteString("  <tr>")
			for _, c := range row {
				b.WriteString("<td>")
				b.WriteString(htmlx.EscapeText(c))
				b.WriteString("</td>")
			}
			b.WriteString("</tr>\n")
		}
		b.WriteString("</table>\n")
	}
	b.WriteString("</body></html>\n")
	return b.String()
}
