package convert

import (
	"strings"
	"testing"

	"dart/internal/docgen"
	"dart/internal/htmlx"
)

func TestDetect(t *testing.T) {
	tests := []struct {
		src  string
		want Format
	}{
		{"<!DOCTYPE html><html></html>", FormatHTML},
		{"  <html>", FormatHTML},
		{"<table><tr></tr></table>", FormatHTML},
		{"== Title ==\n2003 | x | 1", FormatScanText},
		{"plain text", FormatScanText},
	}
	for _, tc := range tests {
		if got := Detect(tc.src); got != tc.want {
			t.Errorf("Detect(%.20q) = %v, want %v", tc.src, got, tc.want)
		}
	}
}

func TestToHTMLPassthrough(t *testing.T) {
	src := "<html><body><table></table></body></html>"
	out, err := ToHTML(src, FormatHTML)
	if err != nil || out != src {
		t.Errorf("passthrough = %q, %v", out, err)
	}
	if _, err := ToHTML("x", Format(99)); err == nil {
		t.Error("unknown format should fail")
	}
}

func TestScanTextRoundTrip(t *testing.T) {
	doc := docgen.RunningExampleDocument()
	txt := doc.ScanText()
	html, err := ToHTML(txt, FormatScanText)
	if err != nil {
		t.Fatal(err)
	}
	tables := htmlx.ParseTables(html)
	if len(tables) != 2 {
		t.Fatalf("tables = %d, want 2", len(tables))
	}
	// Every converted table is 10 rows x 4 columns of repeated values.
	for ti, tb := range tables {
		grid := tb.Grid()
		if len(grid) != 10 || len(grid[0]) != 4 {
			t.Fatalf("table %d grid = %dx%d", ti, len(grid), len(grid[0]))
		}
	}
	if got := tables[0].Grid()[3][3].Text; got != "220" {
		t.Errorf("tcr value = %q", got)
	}
	if got := tables[1].Grid()[0][0].Text; got != "2004" {
		t.Errorf("second table year = %q", got)
	}
	if !strings.Contains(html, "<title>Cash budgets</title>") {
		t.Error("title lost in conversion")
	}
}

func TestScanTextCaptions(t *testing.T) {
	txt := "== Doc ==\n-- Budget A --\n1 | 2\n\n-- Budget B --\n3 | 4\n"
	html := ScanTextToHTML(txt)
	if !strings.Contains(html, "<h2>Budget A</h2>") || !strings.Contains(html, "<h2>Budget B</h2>") {
		t.Errorf("captions lost:\n%s", html)
	}
	tables := htmlx.ParseTables(html)
	if len(tables) != 2 {
		t.Fatalf("tables = %d", len(tables))
	}
}

func TestScanTextEscaping(t *testing.T) {
	txt := "a & b | <c>\n"
	html := ScanTextToHTML(txt)
	if !strings.Contains(html, "a &amp; b") || !strings.Contains(html, "&lt;c&gt;") {
		t.Errorf("escaping missing:\n%s", html)
	}
	cells := htmlx.ParseTables(html)[0].Rows[0]
	if cells[0].Text != "a & b" || cells[1].Text != "<c>" {
		t.Errorf("round trip = %+v", cells)
	}
}

func TestScanTextEmptyInput(t *testing.T) {
	html := ScanTextToHTML("")
	if len(htmlx.ParseTables(html)) != 0 {
		t.Error("empty input should produce no tables")
	}
}

func TestFormatString(t *testing.T) {
	if FormatHTML.String() != "html" || FormatScanText.String() != "scantext" {
		t.Error("format names")
	}
}
