// Package docgen provides the input-document substrate: a small document
// model (tables of cells with row/column spans), renderers to HTML and to a
// plain "scan text" layer (the simulated OCR output of a paper document),
// and synthetic generators for the two application scenarios the paper
// motivates — cash budgets (Example 1/Fig. 1) and web product catalogs —
// each with exact ground truth for evaluating the repairing pipeline.
package docgen

import (
	"fmt"
	"strings"

	"dart/internal/htmlx"
)

// Cell is one document-table cell.
type Cell struct {
	Text    string
	RowSpan int
	ColSpan int
}

// C is shorthand for an unspanned cell.
func C(text string) Cell { return Cell{Text: text, RowSpan: 1, ColSpan: 1} }

// RS is shorthand for a cell spanning n rows.
func RS(text string, n int) Cell { return Cell{Text: text, RowSpan: n, ColSpan: 1} }

// Table is one tabular region of a document.
type Table struct {
	Caption string
	Rows    [][]Cell
}

// Document is an input document: a titled sequence of tables. This is the
// ground-truth form; the acquisition module only ever sees a rendering of
// it (HTML for electronic documents, scan text for paper ones).
type Document struct {
	Title  string
	Tables []*Table
}

// HTML renders the document as the HTML the acquisition module's format
// converter would produce.
func (d *Document) HTML() string {
	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html><head><title>")
	b.WriteString(htmlx.EscapeText(d.Title))
	b.WriteString("</title></head>\n<body>\n")
	for _, t := range d.Tables {
		if t.Caption != "" {
			fmt.Fprintf(&b, "<h2>%s</h2>\n", htmlx.EscapeText(t.Caption))
		}
		b.WriteString("<table>\n")
		for _, row := range t.Rows {
			b.WriteString("  <tr>")
			for _, c := range row {
				b.WriteString("<td")
				if c.RowSpan > 1 {
					fmt.Fprintf(&b, ` rowspan="%d"`, c.RowSpan)
				}
				if c.ColSpan > 1 {
					fmt.Fprintf(&b, ` colspan="%d"`, c.ColSpan)
				}
				b.WriteString(">")
				b.WriteString(htmlx.EscapeText(c.Text))
				b.WriteString("</td>")
			}
			b.WriteString("</tr>\n")
		}
		b.WriteString("</table>\n")
	}
	b.WriteString("</body></html>\n")
	return b.String()
}

// ScanText renders the document as the plain-text layer an OCR tool yields
// for a paper document: pipe-separated cells, one line per table row, with
// spanning cells repeated on each covered line (what a scanner sees), and
// tables separated by blank lines. The format converter turns this back
// into HTML (package convert).
func (d *Document) ScanText() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", d.Title)
	for ti, t := range d.Tables {
		if ti > 0 {
			b.WriteByte('\n')
		}
		if t.Caption != "" {
			fmt.Fprintf(&b, "-- %s --\n", t.Caption)
		}
		grid := expandForScan(t)
		for _, row := range grid {
			b.WriteString(strings.Join(row, " | "))
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// expandForScan expands spans into repeated text, mirroring Table.Grid but
// on the document model.
func expandForScan(t *Table) [][]string {
	type hang struct {
		rows, cols int
		text       string
	}
	pending := map[int]*hang{}
	var out [][]string
	for _, srcRow := range t.Rows {
		var row []string
		col := 0
		srcIdx := 0
		for srcIdx < len(srcRow) || (pending[col] != nil && pending[col].rows > 0) {
			if h := pending[col]; h != nil && h.rows > 0 {
				for k := 0; k < h.cols; k++ {
					row = append(row, h.text)
				}
				h.rows--
				start := col
				col += h.cols
				if h.rows == 0 {
					delete(pending, start)
				}
				continue
			}
			c := srcRow[srcIdx]
			srcIdx++
			start := col
			span := c.ColSpan
			if span < 1 {
				span = 1
			}
			for k := 0; k < span; k++ {
				row = append(row, c.Text)
				col++
			}
			if c.RowSpan > 1 {
				pending[start] = &hang{rows: c.RowSpan - 1, cols: span, text: c.Text}
			}
		}
		out = append(out, row)
	}
	return out
}

// Clone returns a deep copy of the document (for noise injection).
func (d *Document) Clone() *Document {
	c := &Document{Title: d.Title}
	for _, t := range d.Tables {
		nt := &Table{Caption: t.Caption, Rows: make([][]Cell, len(t.Rows))}
		for i, row := range t.Rows {
			nt.Rows[i] = append([]Cell(nil), row...)
		}
		c.Tables = append(c.Tables, nt)
	}
	return c
}

// Cells iterates over every cell of every table, invoking f with table,
// row and cell indexes; f may mutate the cell through the pointer.
func (d *Document) Cells(f func(table, row, col int, c *Cell)) {
	for ti, t := range d.Tables {
		for ri := range t.Rows {
			for ci := range t.Rows[ri] {
				f(ti, ri, ci, &t.Rows[ri][ci])
			}
		}
	}
}
