package docgen

import (
	"fmt"
	"math/rand"

	"dart/internal/relational"
	"dart/internal/runningex"
)

// BudgetYear holds the ten cash-budget values of one year, in
// runningex.Subsections order.
type BudgetYear struct {
	Year   int64
	Values [10]int64
}

// indices into BudgetYear.Values, following runningex.Subsections.
const (
	idxBeginningCash = iota
	idxCashSales
	idxReceivables
	idxTotalCashReceipts
	idxPaymentOfAccounts
	idxCapitalExpenditure
	idxLongTermFinancing
	idxTotalDisbursements
	idxNetCashInflow
	idxEndingCashBalance
)

// Consistent reports whether the year's values satisfy the four constraints
// of Example 1.
func (b BudgetYear) Consistent() bool {
	v := b.Values
	return v[idxCashSales]+v[idxReceivables] == v[idxTotalCashReceipts] &&
		v[idxPaymentOfAccounts]+v[idxCapitalExpenditure]+v[idxLongTermFinancing] == v[idxTotalDisbursements] &&
		v[idxTotalCashReceipts]-v[idxTotalDisbursements] == v[idxNetCashInflow] &&
		v[idxBeginningCash]+v[idxNetCashInflow] == v[idxEndingCashBalance]
}

// RandomBudget generates a consistent multi-year cash budget: detail values
// are drawn from rng, aggregates and derived values are computed, and the
// ending cash balance of each year carries over as the next year's
// beginning cash (as in Fig. 1's 2003 -> 2004 chain).
func RandomBudget(rng *rand.Rand, startYear int64, years int) []BudgetYear {
	out := make([]BudgetYear, years)
	beginning := int64(rng.Intn(200)) * 10
	for i := range out {
		var v [10]int64
		v[idxBeginningCash] = beginning
		v[idxCashSales] = int64(rng.Intn(50)) * 10
		v[idxReceivables] = int64(rng.Intn(50)) * 10
		v[idxTotalCashReceipts] = v[idxCashSales] + v[idxReceivables]
		v[idxPaymentOfAccounts] = int64(rng.Intn(40)) * 10
		v[idxCapitalExpenditure] = int64(rng.Intn(20)) * 10
		v[idxLongTermFinancing] = int64(rng.Intn(20)) * 10
		v[idxTotalDisbursements] = v[idxPaymentOfAccounts] + v[idxCapitalExpenditure] + v[idxLongTermFinancing]
		v[idxNetCashInflow] = v[idxTotalCashReceipts] - v[idxTotalDisbursements]
		v[idxEndingCashBalance] = v[idxBeginningCash] + v[idxNetCashInflow]
		out[i] = BudgetYear{Year: startYear + int64(i), Values: v}
		beginning = v[idxEndingCashBalance]
	}
	return out
}

// BudgetDocument renders the budget years as a Fig. 1-style document: one
// table per year with a year cell spanning all ten rows and section cells
// spanning their subsection rows.
func BudgetDocument(years []BudgetYear) *Document {
	d := &Document{Title: "Cash budgets"}
	for _, y := range years {
		t := &Table{}
		subs := runningex.Subsections
		for i, sub := range subs {
			var row []Cell
			if i == 0 {
				row = append(row, RS(fmt.Sprint(y.Year), len(subs)))
			}
			switch i {
			case 0:
				row = append(row, RS("Receipts", 4))
			case 4:
				row = append(row, RS("Disbursements", 4))
			case 8:
				row = append(row, RS("Balance", 2))
			}
			row = append(row, C(sub), C(fmt.Sprint(y.Values[i])))
			t.Rows = append(t.Rows, row)
		}
		d.Tables = append(d.Tables, t)
	}
	return d
}

// BudgetDatabase builds the ground-truth relational instance for the
// budget years (the output a perfect acquisition would produce).
func BudgetDatabase(years []BudgetYear) *relational.Database {
	db := relational.NewDatabase()
	r := db.MustAddRelation(runningex.Schema())
	for _, y := range years {
		for i, sub := range runningex.Subsections {
			r.MustInsert(
				relational.Int(y.Year),
				relational.String(runningex.SectionOf[sub]),
				relational.String(sub),
				relational.String(runningex.TypeOf[sub]),
				relational.Int(y.Values[i]),
			)
		}
	}
	if err := db.DesignateMeasure("CashBudget", "Value"); err != nil {
		panic(err)
	}
	return db
}

// RunningExampleBudget returns the exact two years of Fig. 1.
func RunningExampleBudget() []BudgetYear {
	return []BudgetYear{
		{Year: 2003, Values: [10]int64{20, 100, 120, 220, 120, 0, 40, 160, 60, 80}},
		{Year: 2004, Values: [10]int64{80, 100, 100, 200, 130, 40, 20, 190, 10, 90}},
	}
}

// RunningExampleDocument returns the Fig. 1 document.
func RunningExampleDocument() *Document {
	return BudgetDocument(RunningExampleBudget())
}
