package docgen

import (
	"math/rand"
	"strings"
	"testing"

	"dart/internal/htmlx"
	"dart/internal/runningex"
)

func TestRunningExampleDocumentMatchesFig1(t *testing.T) {
	d := RunningExampleDocument()
	if len(d.Tables) != 2 {
		t.Fatalf("tables = %d, want 2 (one per year)", len(d.Tables))
	}
	html := d.HTML()
	for _, want := range []string{
		`rowspan="10">2003`, `rowspan="10">2004`,
		`rowspan="4">Receipts`, `rowspan="4">Disbursements`, `rowspan="2">Balance`,
		"beginning cash", "total cash receipts", "<td>220</td>", "<td>90</td>",
	} {
		if !strings.Contains(html, want) {
			t.Errorf("HTML missing %q", want)
		}
	}
	// The grid expansion of the rendered HTML recovers 10 rows x 4 cols per
	// table with the year visible in every row.
	tables := htmlx.ParseTables(html)
	if len(tables) != 2 {
		t.Fatalf("parsed tables = %d", len(tables))
	}
	grid := tables[0].Grid()
	if len(grid) != 10 || len(grid[0]) != 4 {
		t.Fatalf("grid = %dx%d, want 10x4", len(grid), len(grid[0]))
	}
	for r := range grid {
		if grid[r][0].Text != "2003" {
			t.Errorf("row %d year = %q", r, grid[r][0].Text)
		}
	}
	if grid[3][2].Text != "total cash receipts" || grid[3][3].Text != "220" {
		t.Errorf("row 3 = %q/%q", grid[3][2].Text, grid[3][3].Text)
	}
}

func TestRunningExampleBudgetIsConsistent(t *testing.T) {
	for _, y := range RunningExampleBudget() {
		if !y.Consistent() {
			t.Errorf("year %d inconsistent", y.Year)
		}
	}
}

func TestRandomBudgetConsistencyAndChaining(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	years := RandomBudget(rng, 2000, 8)
	if len(years) != 8 {
		t.Fatalf("years = %d", len(years))
	}
	for i, y := range years {
		if !y.Consistent() {
			t.Errorf("year %d inconsistent: %+v", y.Year, y.Values)
		}
		if i > 0 && y.Values[idxBeginningCash] != years[i-1].Values[idxEndingCashBalance] {
			t.Errorf("year %d beginning cash %d != previous ending %d",
				y.Year, y.Values[idxBeginningCash], years[i-1].Values[idxEndingCashBalance])
		}
	}
	// Determinism under the same seed.
	again := RandomBudget(rand.New(rand.NewSource(11)), 2000, 8)
	for i := range years {
		if years[i] != again[i] {
			t.Fatal("RandomBudget is not deterministic for a fixed seed")
		}
	}
}

func TestBudgetDatabaseMatchesRunningExampleFixture(t *testing.T) {
	db := BudgetDatabase(RunningExampleBudget())
	want := runningex.CorrectDatabase()
	got := db.Relation("CashBudget")
	wantRel := want.Relation("CashBudget")
	if got.Len() != wantRel.Len() {
		t.Fatalf("tuples = %d, want %d", got.Len(), wantRel.Len())
	}
	for i, tp := range got.Tuples() {
		if tp.String() != wantRel.Tuples()[i].String() {
			t.Errorf("tuple %d: %s != %s", i, tp, wantRel.Tuples()[i])
		}
	}
	if !db.IsMeasure("CashBudget", "Value") {
		t.Error("Value not designated as measure")
	}
}

func TestScanTextRendersSpansRepeated(t *testing.T) {
	d := RunningExampleDocument()
	txt := d.ScanText()
	lines := strings.Split(strings.TrimSpace(txt), "\n")
	// Title + 10 data rows + blank separator + 10 data rows.
	if len(lines) != 22 {
		t.Fatalf("lines = %d:\n%s", len(lines), txt)
	}
	if !strings.HasPrefix(lines[0], "== Cash budgets") {
		t.Errorf("title line = %q", lines[0])
	}
	// Every data row repeats the year and section.
	if !strings.HasPrefix(lines[1], "2003 | Receipts | beginning cash | 20") {
		t.Errorf("first data line = %q", lines[1])
	}
	if !strings.HasPrefix(lines[10], "2003 | Balance | ending cash balance | 80") {
		t.Errorf("line 10 = %q", lines[10])
	}
}

func TestDocumentCloneIsDeep(t *testing.T) {
	d := RunningExampleDocument()
	c := d.Clone()
	c.Tables[0].Rows[0][0].Text = "9999"
	if d.Tables[0].Rows[0][0].Text == "9999" {
		t.Error("Clone is shallow")
	}
}

func TestCellsIteration(t *testing.T) {
	d := RunningExampleDocument()
	count := 0
	d.Cells(func(_, _, _ int, c *Cell) { count++ })
	// Per year table: 10 rows; row 0 has 4 cells (year, section, sub, value),
	// rows 4 and 8 have 3, others 2: 4 + 3*2 + 2*7 = 24 per table.
	if count != 48 {
		t.Errorf("cells = %d, want 48", count)
	}
}

func TestRandomOrdersConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	orders := RandomOrders(rng, 20)
	if len(orders) != 20 {
		t.Fatal("order count")
	}
	for _, o := range orders {
		total := int64(0)
		var declared int64
		seen := map[string]bool{}
		for _, l := range o.Lines {
			switch l.Kind {
			case "line":
				total += l.Amount
				if seen[l.Product] {
					t.Errorf("%s: duplicate product %s", o.ID, l.Product)
				}
				seen[l.Product] = true
			case "total":
				declared = l.Amount
			}
		}
		if total != declared {
			t.Errorf("%s: lines sum %d, total %d", o.ID, total, declared)
		}
	}
}

func TestOrdersDocumentAndDatabase(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	orders := RandomOrders(rng, 3)
	doc := OrdersDocument(orders)
	html := doc.HTML()
	if !strings.Contains(html, "PO-0001") || !strings.Contains(html, "order total") {
		t.Error("orders HTML incomplete")
	}
	tables := htmlx.ParseTables(html)
	if len(tables) != 1 {
		t.Fatal("table count")
	}
	grid := tables[0].Grid()
	totalLines := 0
	for _, o := range orders {
		totalLines += len(o.Lines)
	}
	if len(grid) != totalLines {
		t.Errorf("grid rows = %d, want %d", len(grid), totalLines)
	}
	db := OrdersDatabase(orders)
	if db.Relation("Orders").Len() != totalLines {
		t.Errorf("tuples = %d, want %d", db.Relation("Orders").Len(), totalLines)
	}
	if !db.IsMeasure("Orders", "Amount") {
		t.Error("Amount not a measure")
	}
}
