package docgen

import (
	"fmt"
	"math/rand"

	"dart/internal/relational"
)

// OrderLine is one line of a purchase order: a product line ('line') or the
// order's total line ('total').
type OrderLine struct {
	Product string
	Kind    string // "line" or "total"
	Amount  int64
}

// Order is one purchase order of the catalog scenario (the web product
// catalog / e-procurement motivation of the paper's introduction).
type Order struct {
	ID    string
	Lines []OrderLine
}

// catalogProducts is the product lexicon of the scenario.
var catalogProducts = []string{
	"laser printer", "ink cartridge", "office chair", "standing desk",
	"usb cable", "wireless mouse", "mechanical keyboard", "lcd monitor",
	"paper shredder", "desk lamp",
}

// CatalogProducts returns the product lexical items of the scenario.
func CatalogProducts() []string { return append([]string(nil), catalogProducts...) }

// RandomOrders generates consistent purchase orders: each order has 2-5
// distinct product lines plus a total line summing them.
func RandomOrders(rng *rand.Rand, n int) []Order {
	out := make([]Order, n)
	for i := range out {
		o := Order{ID: fmt.Sprintf("PO-%04d", i+1)}
		k := 2 + rng.Intn(4)
		perm := rng.Perm(len(catalogProducts))[:k]
		total := int64(0)
		for _, pi := range perm {
			amt := int64(1+rng.Intn(99)) * 5
			o.Lines = append(o.Lines, OrderLine{Product: catalogProducts[pi], Kind: "line", Amount: amt})
			total += amt
		}
		o.Lines = append(o.Lines, OrderLine{Product: "order total", Kind: "total", Amount: total})
		out[i] = o
	}
	return out
}

// OrdersDocument renders orders as a single table whose order-ID cells span
// the order's lines — the same variable structure as the cash budgets.
func OrdersDocument(orders []Order) *Document {
	d := &Document{Title: "Purchase orders"}
	t := &Table{Caption: "Orders"}
	for _, o := range orders {
		for li, l := range o.Lines {
			var row []Cell
			if li == 0 {
				row = append(row, RS(o.ID, len(o.Lines)))
			}
			row = append(row, C(l.Product), C(fmt.Sprint(l.Amount)))
			t.Rows = append(t.Rows, row)
		}
	}
	d.Tables = append(d.Tables, t)
	return d
}

// OrdersSchema returns the Orders(OrderID, Product, Kind, Amount) scheme.
func OrdersSchema() *relational.Schema {
	return relational.MustSchema("Orders",
		relational.Attribute{Name: "OrderID", Domain: relational.DomainString},
		relational.Attribute{Name: "Product", Domain: relational.DomainString},
		relational.Attribute{Name: "Kind", Domain: relational.DomainString},
		relational.Attribute{Name: "Amount", Domain: relational.DomainInt},
	)
}

// OrdersDatabase builds the ground-truth instance for the orders.
func OrdersDatabase(orders []Order) *relational.Database {
	db := relational.NewDatabase()
	r := db.MustAddRelation(OrdersSchema())
	for _, o := range orders {
		for _, l := range o.Lines {
			r.MustInsert(
				relational.String(o.ID),
				relational.String(l.Product),
				relational.String(l.Kind),
				relational.Int(l.Amount),
			)
		}
	}
	if err := db.DesignateMeasure("Orders", "Amount"); err != nil {
		panic(err)
	}
	return db
}

// OrdersConstraintSource is the catalog scenario's constraint in the DSL:
// per order, line amounts must sum to the order total.
const OrdersConstraintSource = `
func lineSum(o)  := SELECT sum(Amount) FROM Orders WHERE OrderID = o AND Kind = 'line'
func totalSum(o) := SELECT sum(Amount) FROM Orders WHERE OrderID = o AND Kind = 'total'
constraint OrderBalance:
    Orders(o, _, _, _) ==> lineSum(o) - totalSum(o) = 0
`
