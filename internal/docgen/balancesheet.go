package docgen

import (
	"fmt"
	"math/rand"

	"dart/internal/relational"
)

// The balance-sheet scenario: the financial statement the paper's
// introduction actually motivates ("The balance sheet is a financial
// statement of a company providing information on what the company owns
// (its assets), what it owes (its liabilities), and the value of the
// business to its stockholders"). Unlike the running example's cash
// budget, its constraint structure is three levels deep — leaf items roll
// up into category subtotals, subtotals into the two sides of the
// accounting equation, and the equation ties the sides together — so a
// single leaf error can violate a chain of constraints.

// BalanceItems lists the sheet's line items in document order.
var BalanceItems = []string{
	"cash",
	"accounts receivable",
	"inventory",
	"total current assets",
	"land",
	"equipment",
	"total fixed assets",
	"total assets",
	"accounts payable",
	"short-term debt",
	"total current liabilities",
	"long-term debt",
	"total long-term liabilities",
	"common stock",
	"retained earnings",
	"total equity",
	"total liabilities and equity",
}

// BalanceCategoryOf maps each item to its category.
var BalanceCategoryOf = map[string]string{
	"cash":                         "Current Assets",
	"accounts receivable":          "Current Assets",
	"inventory":                    "Current Assets",
	"total current assets":         "Current Assets",
	"land":                         "Fixed Assets",
	"equipment":                    "Fixed Assets",
	"total fixed assets":           "Fixed Assets",
	"total assets":                 "Assets",
	"accounts payable":             "Current Liabilities",
	"short-term debt":              "Current Liabilities",
	"total current liabilities":    "Current Liabilities",
	"long-term debt":               "Long-Term Liabilities",
	"total long-term liabilities":  "Long-Term Liabilities",
	"common stock":                 "Equity",
	"retained earnings":            "Equity",
	"total equity":                 "Equity",
	"total liabilities and equity": "Liabilities and Equity",
}

// BalanceKindOf classifies items as leaf details ('det'), category
// subtotals ('sub'), or top-level derived values ('drv').
var BalanceKindOf = map[string]string{
	"cash":                         "det",
	"accounts receivable":          "det",
	"inventory":                    "det",
	"total current assets":         "sub",
	"land":                         "det",
	"equipment":                    "det",
	"total fixed assets":           "sub",
	"total assets":                 "drv",
	"accounts payable":             "det",
	"short-term debt":              "det",
	"total current liabilities":    "sub",
	"long-term debt":               "det",
	"total long-term liabilities":  "sub",
	"common stock":                 "det",
	"retained earnings":            "det",
	"total equity":                 "sub",
	"total liabilities and equity": "drv",
}

// BalanceSheetYear holds one year's amounts, in BalanceItems order.
type BalanceSheetYear struct {
	Year    int64
	Amounts [17]int64
}

// item indexes into Amounts.
const (
	bsCash = iota
	bsAccountsReceivable
	bsInventory
	bsTotalCurrentAssets
	bsLand
	bsEquipment
	bsTotalFixedAssets
	bsTotalAssets
	bsAccountsPayable
	bsShortTermDebt
	bsTotalCurrentLiab
	bsLongTermDebt
	bsTotalLongTermLiab
	bsCommonStock
	bsRetainedEarnings
	bsTotalEquity
	bsTotalLiabEquity
)

// Consistent reports whether the year satisfies all seven balance-sheet
// constraints, including the accounting equation.
func (b BalanceSheetYear) Consistent() bool {
	a := b.Amounts
	return a[bsCash]+a[bsAccountsReceivable]+a[bsInventory] == a[bsTotalCurrentAssets] &&
		a[bsLand]+a[bsEquipment] == a[bsTotalFixedAssets] &&
		a[bsTotalCurrentAssets]+a[bsTotalFixedAssets] == a[bsTotalAssets] &&
		a[bsAccountsPayable]+a[bsShortTermDebt] == a[bsTotalCurrentLiab] &&
		a[bsLongTermDebt] == a[bsTotalLongTermLiab] &&
		a[bsCommonStock]+a[bsRetainedEarnings] == a[bsTotalEquity] &&
		a[bsTotalCurrentLiab]+a[bsTotalLongTermLiab]+a[bsTotalEquity] == a[bsTotalLiabEquity] &&
		a[bsTotalAssets] == a[bsTotalLiabEquity]
}

// RandomBalanceSheet generates consistent balance-sheet years: asset and
// liability leaves are drawn from rng and retained earnings balances the
// accounting equation.
func RandomBalanceSheet(rng *rand.Rand, startYear int64, years int) []BalanceSheetYear {
	out := make([]BalanceSheetYear, years)
	for i := range out {
		var a [17]int64
		a[bsCash] = int64(rng.Intn(90)+10) * 10
		a[bsAccountsReceivable] = int64(rng.Intn(60)) * 10
		a[bsInventory] = int64(rng.Intn(80)) * 10
		a[bsTotalCurrentAssets] = a[bsCash] + a[bsAccountsReceivable] + a[bsInventory]
		a[bsLand] = int64(rng.Intn(50)) * 100
		a[bsEquipment] = int64(rng.Intn(40)) * 100
		a[bsTotalFixedAssets] = a[bsLand] + a[bsEquipment]
		a[bsTotalAssets] = a[bsTotalCurrentAssets] + a[bsTotalFixedAssets]
		a[bsAccountsPayable] = int64(rng.Intn(50)) * 10
		a[bsShortTermDebt] = int64(rng.Intn(30)) * 10
		a[bsTotalCurrentLiab] = a[bsAccountsPayable] + a[bsShortTermDebt]
		a[bsLongTermDebt] = int64(rng.Intn(30)) * 100
		a[bsTotalLongTermLiab] = a[bsLongTermDebt]
		a[bsCommonStock] = int64(rng.Intn(20)+1) * 100
		a[bsTotalEquity] = a[bsTotalAssets] - a[bsTotalCurrentLiab] - a[bsTotalLongTermLiab]
		a[bsRetainedEarnings] = a[bsTotalEquity] - a[bsCommonStock]
		a[bsTotalLiabEquity] = a[bsTotalAssets]
		out[i] = BalanceSheetYear{Year: startYear + int64(i), Amounts: a}
	}
	return out
}

// BalanceSheetDocument renders the years as one table per year with the
// year spanning all rows and each category spanning its item rows.
func BalanceSheetDocument(years []BalanceSheetYear) *Document {
	d := &Document{Title: "Balance sheets"}
	for _, y := range years {
		t := &Table{}
		// Count category block sizes in document order.
		var blocks []struct {
			cat  string
			size int
		}
		for _, item := range BalanceItems {
			cat := BalanceCategoryOf[item]
			if len(blocks) == 0 || blocks[len(blocks)-1].cat != cat {
				blocks = append(blocks, struct {
					cat  string
					size int
				}{cat, 0})
			}
			blocks[len(blocks)-1].size++
		}
		bi, used := 0, 0
		for i, item := range BalanceItems {
			var row []Cell
			if i == 0 {
				row = append(row, RS(fmt.Sprint(y.Year), len(BalanceItems)))
			}
			if used == 0 {
				row = append(row, RS(blocks[bi].cat, blocks[bi].size))
			}
			row = append(row, C(item), C(fmt.Sprint(y.Amounts[i])))
			used++
			if used == blocks[bi].size {
				bi++
				used = 0
			}
			t.Rows = append(t.Rows, row)
		}
		d.Tables = append(d.Tables, t)
	}
	return d
}

// BalanceSheetSchema returns the scheme of the scenario.
func BalanceSheetSchema() *relational.Schema {
	return relational.MustSchema("BalanceSheet",
		relational.Attribute{Name: "Year", Domain: relational.DomainInt},
		relational.Attribute{Name: "Category", Domain: relational.DomainString},
		relational.Attribute{Name: "Item", Domain: relational.DomainString},
		relational.Attribute{Name: "Kind", Domain: relational.DomainString},
		relational.Attribute{Name: "Amount", Domain: relational.DomainInt},
	)
}

// BalanceSheetDatabase builds the ground-truth instance.
func BalanceSheetDatabase(years []BalanceSheetYear) *relational.Database {
	db := relational.NewDatabase()
	r := db.MustAddRelation(BalanceSheetSchema())
	for _, y := range years {
		for i, item := range BalanceItems {
			r.MustInsert(
				relational.Int(y.Year),
				relational.String(BalanceCategoryOf[item]),
				relational.String(item),
				relational.String(BalanceKindOf[item]),
				relational.Int(y.Amounts[i]),
			)
		}
	}
	if err := db.DesignateMeasure("BalanceSheet", "Amount"); err != nil {
		panic(err)
	}
	return db
}
