// Package cfg builds per-function control-flow graphs over go/ast.
//
// The builder is stdlib-only and intentionally small: it covers the
// statement forms that appear in this repository (if/for/range/switch/
// select/goto/labeled break+continue/return/defer) and produces basic
// blocks suitable for forward dataflow. Function literals are NOT
// descended into: a *ast.FuncLit appearing inside a statement is part
// of that statement's node, and its body must be analyzed as a separate
// function via Functions.
package cfg

import (
	"go/ast"
	"go/token"
)

// Block is a basic block: a maximal straight-line sequence of AST nodes
// with control transfers only at the end.
type Block struct {
	Index int
	Kind  string // debug label: entry, exit, if.then, for.head, ...

	// Nodes are the statements and inline expressions executed in order.
	// For branching blocks the condition expression is the last node.
	Nodes []ast.Node

	// Cond, when non-nil, is a boolean branch condition: Succs[0] is the
	// edge taken when Cond is true, Succs[1] when it is false. Blocks
	// without Cond (switch heads, range heads, select heads, plain
	// fallthrough blocks) treat all successors alike.
	Cond ast.Expr

	Succs []*Block
	Preds []*Block
}

// Graph is the CFG of one function body.
type Graph struct {
	Entry  *Block
	Exit   *Block
	Blocks []*Block // creation order; Entry first, Exit last

	// Defers lists every defer statement in the body, in source order.
	// Deferred work runs after Exit on every path that executed the
	// defer; passes that model deferred cleanup read this list.
	Defers []*ast.DeferStmt
}

// New builds the CFG for one function body.
func New(body *ast.BlockStmt) *Graph {
	b := &builder{g: &Graph{}}
	b.g.Entry = b.newBlock("entry")
	b.g.Exit = &Block{Kind: "exit"}
	b.cur = b.g.Entry
	b.labels = map[string]*labelInfo{}
	b.stmt(body)
	b.jump(b.g.Exit)
	b.g.Exit.Index = len(b.g.Blocks)
	b.g.Blocks = append(b.g.Blocks, b.g.Exit)
	return b.g
}

// FuncInfo names one analyzable function body in a file: a declared
// function/method or a function literal.
type FuncInfo struct {
	Name string // declared name, or "func literal"
	Decl *ast.FuncDecl
	Lit  *ast.FuncLit
	Body *ast.BlockStmt
	Pos  token.Pos
}

// Functions returns every function body in the file, including nested
// function literals, each of which must be analyzed on its own graph.
func Functions(file *ast.File) []FuncInfo {
	var out []FuncInfo
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		out = append(out, FuncInfo{Name: fd.Name.Name, Decl: fd, Body: fd.Body, Pos: fd.Pos()})
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				out = append(out, FuncInfo{Name: "func literal", Decl: fd, Lit: lit, Body: lit.Body, Pos: lit.Pos()})
			}
			return true
		})
	}
	return out
}

type labelInfo struct {
	target     *Block // goto / label entry block
	breakTo    *Block // labeled break target (loops, switch, select)
	continueTo *Block
}

type builder struct {
	g   *Graph
	cur *Block

	breaks    []*Block // innermost-last break targets
	continues []*Block // innermost-last continue targets
	fallNext  *Block   // fallthrough target inside a switch clause

	labels       map[string]*labelInfo
	pendingLabel string // label naming the next loop/switch/select
}

func (b *builder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.g.Blocks), Kind: kind}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) add(n ast.Node) {
	if n != nil {
		b.cur.Nodes = append(b.cur.Nodes, n)
	}
}

func edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// jump terminates the current block with an edge to target and leaves
// the builder in target-less limbo; callers set cur afterwards.
func (b *builder) jump(target *Block) {
	edge(b.cur, target)
}

// terminate ends the current block (after return/break/continue/goto)
// and starts a fresh unreachable block for any trailing dead code.
func (b *builder) terminate() {
	b.cur = b.newBlock("unreachable")
}

func (b *builder) label(name string) *labelInfo {
	li := b.labels[name]
	if li == nil {
		li = &labelInfo{}
		b.labels[name] = li
	}
	return li
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, st := range s.List {
			b.stmt(st)
		}

	case *ast.LabeledStmt:
		li := b.label(s.Label.Name)
		if li.target == nil {
			li.target = b.newBlock("label." + s.Label.Name)
		}
		b.jump(li.target)
		b.cur = li.target
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		condBlk := b.cur
		condBlk.Cond = s.Cond
		then := b.newBlock("if.then")
		done := b.newBlock("if.done")
		edge(condBlk, then) // Succs[0]: true
		b.cur = then
		b.stmt(s.Body)
		b.jump(done)
		if s.Else != nil {
			els := b.newBlock("if.else")
			edge(condBlk, els) // Succs[1]: false
			b.cur = els
			b.stmt(s.Else)
			b.jump(done)
		} else {
			edge(condBlk, done) // Succs[1]: false
		}
		b.cur = done

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		head := b.newBlock("for.head")
		body := b.newBlock("for.body")
		done := b.newBlock("for.done")
		b.jump(head)
		b.cur = head
		if s.Cond != nil {
			b.add(s.Cond)
			head.Cond = s.Cond
			edge(head, body) // true
			edge(head, done) // false
		} else {
			edge(head, body)
		}
		contTo := head
		var post *Block
		if s.Post != nil {
			post = b.newBlock("for.post")
			contTo = post
		}
		b.setLabelTargets(label, done, contTo)
		b.pushLoop(done, contTo)
		b.cur = body
		b.stmt(s.Body)
		b.popLoop()
		b.jump(contTo)
		if post != nil {
			b.cur = post
			b.add(s.Post)
			b.jump(head)
		}
		b.cur = done

	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.newBlock("range.head")
		body := b.newBlock("range.body")
		done := b.newBlock("range.done")
		b.jump(head)
		head.Nodes = append(head.Nodes, s) // key/value assignment + X eval
		edge(head, body)
		edge(head, done)
		b.setLabelTargets(label, done, head)
		b.pushLoop(done, head)
		b.cur = body
		b.stmt(s.Body)
		b.popLoop()
		b.jump(head)
		b.cur = done

	case *ast.SwitchStmt:
		b.switchLike(s.Init, s.Tag, s.Body, true)

	case *ast.TypeSwitchStmt:
		b.switchLike(s.Init, s.Assign, s.Body, true)

	case *ast.SelectStmt:
		b.switchLike(nil, nil, s.Body, false)

	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.g.Exit)
		b.terminate()

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			var target *Block
			if s.Label != nil {
				target = b.label(s.Label.Name).breakTo
			} else if len(b.breaks) > 0 {
				target = b.breaks[len(b.breaks)-1]
			}
			if target != nil {
				b.jump(target)
			}
			b.terminate()
		case token.CONTINUE:
			var target *Block
			if s.Label != nil {
				target = b.label(s.Label.Name).continueTo
			} else if len(b.continues) > 0 {
				target = b.continues[len(b.continues)-1]
			}
			if target != nil {
				b.jump(target)
			}
			b.terminate()
		case token.GOTO:
			li := b.label(s.Label.Name)
			if li.target == nil {
				li.target = b.newBlock("label." + s.Label.Name)
			}
			b.jump(li.target)
			b.terminate()
		case token.FALLTHROUGH:
			if b.fallNext != nil {
				b.jump(b.fallNext)
			}
			b.terminate()
		}

	case *ast.DeferStmt:
		b.g.Defers = append(b.g.Defers, s)
		b.add(s)

	case *ast.EmptyStmt:
		// nothing

	default:
		// Go, Expr, Send, Assign, IncDec, Decl statements: straight-line.
		b.add(s)
	}
}

// switchLike builds switch, type-switch, and select bodies. For
// switches, header is the init statement and tag/assign; clauses are
// CaseClause (with fallthrough support). For select, clauses are
// CommClause whose comm statement executes first in the clause block.
func (b *builder) switchLike(init ast.Stmt, header ast.Node, body *ast.BlockStmt, isSwitch bool) {
	label := b.takeLabel()
	if init != nil {
		b.add(init)
	}
	if header != nil {
		b.add(header)
	}
	head := b.cur
	done := b.newBlock("switch.done")
	b.setLabelTargets(label, done, nil)

	// Pre-create clause blocks so fallthrough can target the next one.
	clauseBlocks := make([]*Block, 0, len(body.List))
	hasDefault := false
	for range body.List {
		clauseBlocks = append(clauseBlocks, b.newBlock("case"))
	}
	for i, cl := range body.List {
		edge(head, clauseBlocks[i])
		var caseBody []ast.Stmt
		b.cur = clauseBlocks[i]
		switch cl := cl.(type) {
		case *ast.CaseClause:
			if cl.List == nil {
				hasDefault = true
			}
			for _, e := range cl.List {
				b.add(e)
			}
			caseBody = cl.Body
		case *ast.CommClause:
			if cl.Comm == nil {
				hasDefault = true
			} else {
				b.stmt(cl.Comm)
			}
			caseBody = cl.Body
		}
		if isSwitch && i+1 < len(clauseBlocks) {
			b.fallNext = clauseBlocks[i+1]
		} else {
			b.fallNext = nil
		}
		b.breaks = append(b.breaks, done)
		for _, st := range caseBody {
			b.stmt(st)
		}
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.fallNext = nil
		b.jump(done)
	}
	if !hasDefault || len(body.List) == 0 {
		// No default: the switch/select can fall through with no clause
		// taken (for select without default this models "no case ready
		// yet" conservatively as an extra path only when empty).
		if isSwitch || len(body.List) == 0 {
			edge(head, done)
		}
	}
	b.cur = done
}

func (b *builder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *builder) setLabelTargets(label string, breakTo, continueTo *Block) {
	if label == "" {
		return
	}
	li := b.label(label)
	li.breakTo = breakTo
	li.continueTo = continueTo
}

func (b *builder) pushLoop(breakTo, continueTo *Block) {
	b.breaks = append(b.breaks, breakTo)
	b.continues = append(b.continues, continueTo)
}

func (b *builder) popLoop() {
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
}
