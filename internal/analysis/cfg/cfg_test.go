package cfg

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"sort"
	"strconv"
	"testing"
)

// The differential oracle: both the CFG and a brute-force execution
// enumerator compute the set of ordered pairs (a, b) such that marker
// step(b) can execute immediately after step(a) on some path, plus
// START->x and x->END pairs. Loops are witnessed with 0, 1, and 2
// iterations, which is enough to expose every back-edge pair.

const start = -1
const end = -2

type pair struct{ from, to int }

func pairSet(ps []pair) map[pair]bool {
	m := map[pair]bool{}
	for _, p := range ps {
		m[p] = true
	}
	return m
}

// stepOf returns the marker number if n is a step(k) call statement.
func stepOf(n ast.Node) (int, bool) {
	es, ok := n.(*ast.ExprStmt)
	if !ok {
		return 0, false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return 0, false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "step" || len(call.Args) != 1 {
		return 0, false
	}
	lit, ok := call.Args[0].(*ast.BasicLit)
	if !ok || lit.Kind != token.INT {
		return 0, false
	}
	v, err := strconv.Atoi(lit.Value)
	if err != nil {
		return 0, false
	}
	return v, true
}

// cfgPairs computes the may-follow relation from the graph: for each
// marker occurrence, every marker reachable without passing another
// marker. Empty/unmarked blocks are traversed transparently.
func cfgPairs(g *Graph) map[pair]bool {
	out := map[pair]bool{}

	// firstMarkers(b, i): set of first markers reachable starting at
	// node index i of block b (END if exit reachable marker-free).
	type key struct {
		b *Block
		i int
	}
	memo := map[key][]int{}
	var first func(b *Block, i int, seen map[*Block]bool) []int
	first = func(b *Block, i int, seen map[*Block]bool) []int {
		k := key{b, i}
		if v, ok := memo[k]; ok {
			return v
		}
		var res []int
		for ; i < len(b.Nodes); i++ {
			if v, ok := stepOf(b.Nodes[i]); ok {
				res = []int{v}
				memo[k] = res
				return res
			}
		}
		if b == nil || len(b.Succs) == 0 {
			if b.Kind == "exit" {
				res = append(res, end)
			}
		}
		if seen[b] {
			return nil // cycle with no marker
		}
		seen[b] = true
		set := map[int]bool{}
		for _, v := range res {
			set[v] = true
		}
		if b.Kind == "exit" {
			set[end] = true
		}
		for _, s := range b.Succs {
			for _, v := range first(s, 0, seen) {
				set[v] = true
			}
		}
		delete(seen, b)
		res = res[:0]
		for v := range set {
			res = append(res, v)
		}
		sort.Ints(res)
		// Memoizing under an active `seen` set can bake in a partial
		// answer; only memoize top-level calls (seen empty on entry is
		// not knowable here), so skip memoization for correctness.
		return res
	}

	// START pairs.
	for _, v := range first(g.Entry, 0, map[*Block]bool{}) {
		out[pair{start, v}] = true
	}
	// Pairs from each marker occurrence.
	for _, b := range g.Blocks {
		for i, n := range b.Nodes {
			if v, ok := stepOf(n); ok {
				for _, nxt := range first(b, i+1, map[*Block]bool{}) {
					out[pair{v, nxt}] = true
				}
			}
		}
	}
	return out
}

// --- Brute-force enumerator -------------------------------------------

type signal int

const (
	sigNone signal = iota
	sigReturn
	sigBreak
	sigContinue
)

type exec struct {
	trace []int
	sig   signal
}

func clone(t []int) []int {
	out := make([]int, len(t))
	copy(out, t)
	return out
}

// runStmts enumerates all executions of a statement list. Loops are
// executed 0, 1, or 2 times.
func runStmts(stmts []ast.Stmt, in exec) []exec {
	states := []exec{in}
	for _, s := range stmts {
		var next []exec
		for _, st := range states {
			if st.sig != sigNone {
				next = append(next, st)
				continue
			}
			next = append(next, runStmt(s, st)...)
		}
		states = next
	}
	return states
}

func runStmt(s ast.Stmt, in exec) []exec {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return runStmts(s.List, in)
	case *ast.ExprStmt:
		if v, ok := stepOf(s); ok {
			out := exec{trace: append(clone(in.trace), v)}
			return []exec{out}
		}
		return []exec{in}
	case *ast.IfStmt:
		thenOut := runStmts(s.Body.List, exec{trace: clone(in.trace)})
		var elseOut []exec
		if s.Else != nil {
			switch e := s.Else.(type) {
			case *ast.BlockStmt:
				elseOut = runStmts(e.List, exec{trace: clone(in.trace)})
			case *ast.IfStmt:
				elseOut = runStmt(e, exec{trace: clone(in.trace)})
			}
		} else {
			elseOut = []exec{{trace: clone(in.trace)}}
		}
		return append(thenOut, elseOut...)
	case *ast.ForStmt:
		// iterations 0..2; cond treated as nondeterministic unless absent
		results := []exec{}
		if s.Cond != nil {
			results = append(results, exec{trace: clone(in.trace)}) // 0 iterations
		}
		states := []exec{{trace: clone(in.trace)}}
		for iter := 0; iter < 2; iter++ {
			var after []exec
			for _, st := range states {
				for _, body := range runStmts(s.Body.List, exec{trace: clone(st.trace)}) {
					switch body.sig {
					case sigReturn:
						results = append(results, body)
					case sigBreak:
						results = append(results, exec{trace: body.trace})
					default: // none or continue: next iteration, or exit when cond may fail
						if s.Cond != nil {
							results = append(results, exec{trace: clone(body.trace)})
						}
						after = append(after, exec{trace: body.trace})
					}
				}
			}
			states = after
		}
		// Leftover states are executions still inside the loop after the
		// iteration cap; their pairs are already witnessed, drop them.
		return results
	case *ast.ReturnStmt:
		return []exec{{trace: in.trace, sig: sigReturn}}
	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			return []exec{{trace: in.trace, sig: sigBreak}}
		case token.CONTINUE:
			return []exec{{trace: in.trace, sig: sigContinue}}
		}
		return []exec{in}
	case *ast.SwitchStmt:
		var out []exec
		hasDefault := false
		for _, cl := range s.Body.List {
			cc := cl.(*ast.CaseClause)
			if cc.List == nil {
				hasDefault = true
			}
			for _, e := range runStmts(cc.Body, exec{trace: clone(in.trace)}) {
				if e.sig == sigBreak {
					e.sig = sigNone
				}
				out = append(out, e)
			}
		}
		if !hasDefault {
			out = append(out, exec{trace: clone(in.trace)})
		}
		return out
	default:
		return []exec{in}
	}
}

func execPairs(body *ast.BlockStmt) map[pair]bool {
	out := map[pair]bool{}
	for _, e := range runStmts(body.List, exec{}) {
		prev := start
		for _, v := range e.trace {
			out[pair{prev, v}] = true
			prev = v
		}
		out[pair{prev, end}] = true
	}
	return out
}

// --- Fixtures ----------------------------------------------------------

var differentialFixtures = []struct {
	name string
	body string
}{
	{"straightline", `
		step(1)
		step(2)
		step(3)
	`},
	{"ifElse", `
		step(1)
		if cond {
			step(2)
		} else {
			step(3)
		}
		step(4)
	`},
	{"ifNoElse", `
		if cond {
			step(1)
		}
		step(2)
	`},
	{"ifEarlyReturn", `
		step(1)
		if cond {
			step(2)
			return
		}
		step(3)
	`},
	{"nestedIf", `
		if cond {
			if cond2 {
				step(1)
			}
			step(2)
		}
		step(3)
	`},
	{"loop", `
		step(1)
		for cond {
			step(2)
		}
		step(3)
	`},
	{"loopBreakContinue", `
		for cond {
			step(1)
			if cond2 {
				break
			}
			if cond3 {
				continue
			}
			step(2)
		}
		step(3)
	`},
	{"loopReturn", `
		for cond {
			step(1)
			if cond2 {
				return
			}
		}
		step(2)
	`},
	{"switchCases", `
		step(1)
		switch x {
		case 1:
			step(2)
		case 2:
			step(3)
			return
		}
		step(4)
	`},
	{"switchDefault", `
		switch x {
		case 1:
			step(1)
		default:
			step(2)
		}
		step(3)
	`},
	{"infiniteLoopBreak", `
		for {
			step(1)
			if cond {
				break
			}
		}
		step(2)
	`},
}

func parseBody(t *testing.T, body string) *ast.BlockStmt {
	t.Helper()
	src := fmt.Sprintf(`package p
var cond, cond2, cond3 bool
var x int
func step(int) {}
func f() {
%s
}`, body)
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "fix.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "f" {
			return fd.Body
		}
	}
	t.Fatal("no func f")
	return nil
}

func fmtPairs(m map[pair]bool) string {
	var ps []pair
	for p := range m {
		ps = append(ps, p)
	}
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].from != ps[j].from {
			return ps[i].from < ps[j].from
		}
		return ps[i].to < ps[j].to
	})
	s := ""
	name := func(v int) string {
		switch v {
		case start:
			return "START"
		case end:
			return "END"
		}
		return strconv.Itoa(v)
	}
	for _, p := range ps {
		s += fmt.Sprintf("%s->%s ", name(p.from), name(p.to))
	}
	return s
}

func TestCFGDifferential(t *testing.T) {
	for _, fx := range differentialFixtures {
		t.Run(fx.name, func(t *testing.T) {
			body := parseBody(t, fx.body)
			g := New(body)
			got := cfgPairs(g)
			want := execPairs(body)
			if fmtPairs(got) != fmtPairs(want) {
				t.Errorf("may-follow mismatch\n cfg:  %s\n exec: %s", fmtPairs(got), fmtPairs(want))
			}
		})
	}
}

// Direct structural checks for forms the brute-force enumerator does
// not model: goto, select, defer collection, range.
func TestCFGStructure(t *testing.T) {
	t.Run("deferCollected", func(t *testing.T) {
		body := parseBody(t, `
			defer step(1)
			if cond {
				defer step(2)
			}
		`)
		g := New(body)
		if len(g.Defers) != 2 {
			t.Fatalf("got %d defers, want 2", len(g.Defers))
		}
	})

	t.Run("gotoEdges", func(t *testing.T) {
		body := parseBody(t, `
			step(1)
			goto done
			step(2)
		done:
			step(3)
		`)
		g := New(body)
		got := cfgPairs(g)
		// step(2) is dead: 1 -> 3 via goto, never 1 -> 2.
		if !got[pair{1, 3}] {
			t.Errorf("missing 1->3 via goto: %s", fmtPairs(got))
		}
		if got[pair{1, 2}] {
			t.Errorf("unexpected 1->2 through goto: %s", fmtPairs(got))
		}
	})

	t.Run("selectEdges", func(t *testing.T) {
		src := `package p
func step(int) {}
func f(a, b chan int) {
	step(1)
	select {
	case <-a:
		step(2)
	case <-b:
		step(3)
	}
	step(4)
}`
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, "fix.go", src, 0)
		if err != nil {
			t.Fatal(err)
		}
		var body *ast.BlockStmt
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "f" {
				body = fd.Body
			}
		}
		g := New(body)
		got := cfgPairs(g)
		for _, want := range []pair{{1, 2}, {1, 3}, {2, 4}, {3, 4}} {
			if !got[want] {
				t.Errorf("missing %d->%d: %s", want.from, want.to, fmtPairs(got))
			}
		}
		// No default: the select blocks until a clause is ready.
		if got[pair{1, 4}] {
			t.Errorf("unexpected 1->4 skipping select clauses: %s", fmtPairs(got))
		}
	})

	t.Run("rangeEdges", func(t *testing.T) {
		src := `package p
func step(int) {}
func f(xs []int) {
	step(1)
	for range xs {
		step(2)
	}
	step(3)
}`
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, "fix.go", src, 0)
		if err != nil {
			t.Fatal(err)
		}
		var body *ast.BlockStmt
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "f" {
				body = fd.Body
			}
		}
		g := New(body)
		got := cfgPairs(g)
		for _, want := range []pair{{1, 2}, {1, 3}, {2, 2}, {2, 3}} {
			if !got[want] {
				t.Errorf("missing %d->%d: %s", want.from, want.to, fmtPairs(got))
			}
		}
	})

	t.Run("funcLitOpaque", func(t *testing.T) {
		body := parseBody(t, `
			step(1)
			go func() {
				step(2)
			}()
			step(3)
		`)
		g := New(body)
		got := cfgPairs(g)
		if got[pair{1, 2}] || got[pair{2, 3}] {
			t.Errorf("builder descended into func literal: %s", fmtPairs(got))
		}
	})
}
