package spanleak_test

import (
	"testing"

	"dart/internal/analysis/analysistest"
	"dart/internal/analysis/spanleak"
)

func TestSpanleak(t *testing.T) {
	analysistest.Run(t, spanleak.Analyzer, "testdata/src/sp")
}
