// Package spanleak verifies span lifetimes: a value obtained from an
// obs-style Start* call (StartTrace, StartChild — any Start* returning
// *Span) must reach End() on every path out of the function. Without
// this, the trace tree silently drops the span and all its children.
//
// The pass is flow-sensitive on the dataflow driver. A span becomes
// safe when:
//
//   - x.End() is called on the path,
//   - defer x.End() runs (including End calls inside deferred closures,
//     the `defer func() { ...; sp.End() }()` idiom),
//   - the path is refined by a nil check (`if sp == nil` / `sp != nil`
//     branches: the nil side has nothing to end),
//   - the span escapes the function: returned, stored into a struct,
//     or passed to any call other than obs.ContextWithSpan — ownership
//     moves with it.
//
// Passing a span to ContextWithSpan does NOT end responsibility: the
// starter still owns the End.
package spanleak

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"dart/internal/analysis"
	"dart/internal/analysis/cfg"
	"dart/internal/analysis/dataflow"
)

// Analyzer is the spanleak pass.
var Analyzer = &analysis.Analyzer{
	Name: "spanleak",
	Doc:  "a span returned by *.Start* must reach End() on every path (defer sp.End() counts)",
	Run:  run,
}

// Lattice per span object; larger is worse, joins are max.
const (
	none = 0 // not a tracked span on this path
	safe = 1 // ended, escaped, or proven nil
	live = 2 // started and still awaiting End
)

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, fn := range cfg.Functions(f) {
			checkFunc(pass, fn)
		}
	}
	return nil
}

type tracker struct {
	pass *analysis.Pass
	// origin records where each tracked span was started, for reporting.
	origin map[types.Object]*ast.CallExpr
}

func checkFunc(pass *analysis.Pass, fn cfg.FuncInfo) {
	tr := &tracker{pass: pass, origin: map[types.Object]*ast.CallExpr{}}
	g := cfg.New(fn.Body)

	prob := dataflow.FactsProblem(dataflow.Facts{}, true) // may-join: live dominates
	prob.Transfer = tr.transfer
	prob.Branch = tr.branch
	res := dataflow.Forward(g, prob)

	// A start whose result is discarded outright can never be ended.
	dataflow.ForEachNode(g, prob, res, func(n ast.Node, _ dataflow.Facts) {
		if es, ok := n.(*ast.ExprStmt); ok {
			if call, ok := es.X.(*ast.CallExpr); ok && tr.isSpanStart(call) {
				pass.Reportf(call.Pos(), "span from %s is discarded and can never be ended (assign it and call End)",
					dataflow.CalleeName(call))
			}
		}
	})

	exit, ok := dataflow.ExitFact(g, res)
	if !ok {
		return // exit unreachable
	}
	for obj, v := range exit {
		if v != live {
			continue
		}
		call := tr.origin[obj]
		pass.Reportf(call.Pos(), "span %s from %s is not ended on every path (add defer %s.End() or End it before each return)",
			obj.Name(), dataflow.CalleeName(call), obj.Name())
	}
}

// isSpanStart matches calls named Start* whose result is a *Span.
func (tr *tracker) isSpanStart(call *ast.CallExpr) bool {
	name := dataflow.CalleeName(call)
	if !strings.HasPrefix(name, "Start") {
		return false
	}
	t := tr.pass.TypeOf(call)
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	return ok && named.Obj() != nil && named.Obj().Name() == "Span"
}

func (tr *tracker) transfer(n ast.Node, in dataflow.Facts) dataflow.Facts {
	info := tr.pass.TypesInfo

	// Deferred End: defer sp.End() or defer func() { sp.End() }().
	if def, ok := n.(*ast.DeferStmt); ok {
		ast.Inspect(def, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok || dataflow.CalleeName(call) != "End" {
				return true
			}
			if obj := dataflow.LocalObject(info, dataflow.Receiver(call)); obj != nil {
				if _, tracked := tr.origin[obj]; tracked {
					in[obj] = safe
				}
			}
			return true
		})
		return in
	}

	// New spans: x := t.Start*(...) in pairwise assignment position.
	if as, ok := n.(*ast.AssignStmt); ok && len(as.Lhs) == len(as.Rhs) {
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || !tr.isSpanStart(call) {
				continue
			}
			obj := dataflow.LocalObject(info, as.Lhs[i])
			if obj == nil {
				continue
			}
			tr.origin[obj] = call
			defer func(o types.Object) { in[o] = live }(obj)
		}
	}

	// Direct End calls and escapes.
	benign := tr.benignUses(n)
	dataflow.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.CallExpr:
			if dataflow.CalleeName(m) == "End" {
				if obj := dataflow.LocalObject(info, dataflow.Receiver(m)); obj != nil && in[obj] == live {
					in[obj] = safe
				}
			}
		case *ast.Ident:
			obj := info.Uses[m]
			if obj == nil || benign[m] {
				return true
			}
			if _, tracked := tr.origin[obj]; tracked && in[obj] == live {
				in[obj] = safe // escaped: returned, stored, or passed along
			}
		}
		return true
	})
	return in
}

// benignUses collects identifier occurrences that neither end nor leak
// a span: method-call receivers (sp.End(), sp.SetStr(...)), assignment
// targets, nil-comparison operands, and ContextWithSpan arguments.
func (tr *tracker) benignUses(n ast.Node) map[*ast.Ident]bool {
	out := map[*ast.Ident]bool{}
	mark := func(e ast.Expr) {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			out[id] = true
		}
	}
	dataflow.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.SelectorExpr:
			mark(m.X)
		case *ast.AssignStmt:
			for _, lhs := range m.Lhs {
				mark(lhs)
			}
		case *ast.BinaryExpr:
			if m.Op == token.EQL || m.Op == token.NEQ {
				mark(m.X)
				mark(m.Y)
			}
		case *ast.CallExpr:
			if dataflow.CalleeName(m) == "ContextWithSpan" {
				for _, arg := range m.Args {
					mark(arg)
				}
			}
		}
		return true
	})
	return out
}

// branch refines facts along nil-check edges: on the side where the
// span is proven nil there is nothing to end.
func (tr *tracker) branch(cond ast.Expr, branch bool, in dataflow.Facts) dataflow.Facts {
	x, eq, ok := dataflow.NilCompare(cond)
	if !ok {
		return in
	}
	obj := dataflow.LocalObject(tr.pass.TypesInfo, x)
	if obj == nil {
		return in
	}
	if _, tracked := tr.origin[obj]; !tracked {
		return in
	}
	// eq: true edge means x == nil; !eq: false edge means x == nil.
	if eq == branch {
		in[obj] = safe
	}
	return in
}
