// Package sp exercises the spanleak pass: spans from Start* calls must
// reach End() on every path.
package sp

// Span mirrors the obs.Span shape the pass recognizes by type name.
type Span struct{ name string }

func (s *Span) End() {}

func (s *Span) SetStr(k, v string) {}

func (s *Span) StartChild(name string) *Span { return &Span{name: name} }

// Tracer mirrors obs.Tracer.
type Tracer struct{}

func (t *Tracer) StartTrace(name string) *Span { return &Span{name: name} }

// ContextWithSpan mirrors obs.ContextWithSpan: spans passed here are
// still owned by the starter.
func ContextWithSpan(ctx int, s *Span) int { return ctx }

func sink(s *Span) {}

func work() {}

// --- leaks ------------------------------------------------------------

func leakOnEarlyReturn(t *Tracer, cond bool) {
	sp := t.StartTrace("job") // want "span sp from StartTrace is not ended on every path"
	if cond {
		return
	}
	sp.End()
}

func leakOneBranch(t *Tracer, cond bool) {
	sp := t.StartTrace("job") // want "span sp from StartTrace is not ended on every path"
	if cond {
		sp.End()
	}
}

func leakViaContext(t *Tracer, ctx int, cond bool) {
	sp := t.StartTrace("job") // want "span sp from StartTrace is not ended on every path"
	ctx = ContextWithSpan(ctx, sp)
	if cond {
		return
	}
	sp.End()
	_ = ctx
}

func leakInLoop(t *Tracer, n int) {
	root := t.StartTrace("job")
	defer root.End()
	for i := 0; i < n; i++ {
		c := root.StartChild("iter") // want "span c from StartChild is not ended on every path"
		if i == 2 {
			continue
		}
		c.End()
	}
}

func discarded(t *Tracer) {
	t.StartTrace("job") // want "span from StartTrace is discarded"
}

// --- clean ------------------------------------------------------------

func endedBothBranches(t *Tracer, cond bool) {
	sp := t.StartTrace("job")
	if cond {
		sp.SetStr("mode", "fast")
		sp.End()
		return
	}
	sp.End()
}

func deferEnd(t *Tracer) {
	sp := t.StartTrace("job")
	defer sp.End()
	work()
}

func deferClosureEnd(t *Tracer, cond bool) {
	sp := t.StartTrace("job")
	defer func() {
		if cond {
			sp.SetStr("late", "true")
		}
		sp.End()
	}()
	if cond {
		return
	}
	work()
}

func nilGuardedLateEnd(t *Tracer, on bool) {
	var sp *Span
	if on {
		sp = t.StartTrace("job")
	}
	work()
	if sp != nil {
		sp.End()
	}
}

func ifInitNilCheck(t *Tracer) {
	if sp := t.StartTrace("job"); sp != nil {
		defer sp.End()
		work()
	}
}

func nilCheckEarlyReturn(t *Tracer) {
	sp := t.StartTrace("job")
	if sp == nil {
		return
	}
	sp.End()
}

func escapesToCaller(t *Tracer) *Span {
	sp := t.StartTrace("job")
	sp.SetStr("owner", "caller")
	return sp
}

func escapesToSink(t *Tracer) {
	sp := t.StartTrace("job")
	sink(sp)
}

type holder struct{ span *Span }

func escapesToField(t *Tracer, h *holder) {
	sp := t.StartTrace("job")
	h.span = sp
}

func endInLoopEveryPath(t *Tracer, n int) {
	for i := 0; i < n; i++ {
		c := t.StartTrace("iter")
		if i%2 == 0 {
			c.SetStr("parity", "even")
		}
		c.End()
	}
}

func allowed(t *Tracer, cond bool) {
	//dartvet:allow spanleak -- fixture: intentional leak kept for the directive test
	sp := t.StartTrace("job")
	if cond {
		return
	}
	sp.End()
}
