// Package passes is the registry of dartvet's code analyzers: the one
// place that lists every pass and the package scope each runs on, shared
// by cmd/dartvet (the multichecker) and cmd/dartbench (the vet
// benchmark) so the two can never drift.
package passes

import (
	"strings"

	"dart/internal/analysis"
	"dart/internal/analysis/ctxloop"
	"dart/internal/analysis/errsink"
	"dart/internal/analysis/floatcmp"
	"dart/internal/analysis/lockcheck"
	"dart/internal/analysis/lockhold"
	"dart/internal/analysis/retshim"
	"dart/internal/analysis/spanleak"
	"dart/internal/analysis/walorder"
)

// Scopes maps each analyzer to the import-path suffixes it runs on. A
// pass runs on a package when the package's import path ends in one of
// the suffixes; a "/..." suffix also matches everything below that
// prefix, and an empty list means every loaded package.
var Scopes = map[string][]string{
	ctxloop.Analyzer.Name: {
		"internal/core", "internal/milp", "internal/service",
		"internal/analysis/...",
	},
	floatcmp.Analyzer.Name: {"internal/core", "internal/milp"},
	lockcheck.Analyzer.Name: {
		"internal/milp", "internal/repair", "internal/service", "internal/store",
	},
	retshim.Analyzer.Name: {"internal/core"},
	spanleak.Analyzer.Name: {
		"internal/core", "internal/milp", "internal/obs", "internal/service",
		"internal/store", "internal/validate", "cmd/dart", "cmd/dartd",
	},
	walorder.Analyzer.Name: {"internal/service"},
	errsink.Analyzer.Name: {
		"internal/store", "internal/service", "internal/analysis/...",
	},
	lockhold.Analyzer.Name: {
		"internal/obs", "internal/service", "internal/repair", "internal/store",
	},
}

// All returns every registered code analyzer in a stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		ctxloop.Analyzer,
		errsink.Analyzer,
		floatcmp.Analyzer,
		lockcheck.Analyzer,
		lockhold.Analyzer,
		retshim.Analyzer,
		spanleak.Analyzer,
		walorder.Analyzer,
	}
}

// Active returns the analyzers whose scope covers importPath.
func Active(importPath string) []*analysis.Analyzer {
	var out []*analysis.Analyzer
	for _, a := range All() {
		if InScope(importPath, Scopes[a.Name]) {
			out = append(out, a)
		}
	}
	return out
}

// InScope reports whether importPath ends in one of the suffixes. A
// suffix ending in "/..." matches the named package and every package
// below it; an empty suffix list matches everything.
func InScope(importPath string, suffixes []string) bool {
	if len(suffixes) == 0 {
		return true
	}
	for _, s := range suffixes {
		if tree, ok := strings.CutSuffix(s, "/..."); ok {
			if importPath == tree || strings.HasSuffix(importPath, "/"+tree) ||
				strings.Contains(importPath, "/"+tree+"/") || strings.HasPrefix(importPath, tree+"/") {
				return true
			}
			continue
		}
		if importPath == s || strings.HasSuffix(importPath, "/"+s) {
			return true
		}
	}
	return false
}
