package passes

import "testing"

func TestInScope(t *testing.T) {
	cases := []struct {
		path     string
		suffixes []string
		want     bool
	}{
		{"dart/internal/core", []string{"internal/core"}, true},
		{"dart/internal/corex", []string{"internal/core"}, false},
		{"dart/internal/store", []string{"internal/core"}, false},
		{"dart/internal/anything", nil, true},
		// "/..." wildcard: the root and everything beneath it.
		{"dart/internal/analysis", []string{"internal/analysis/..."}, true},
		{"dart/internal/analysis/cfg", []string{"internal/analysis/..."}, true},
		{"dart/internal/analysis/lockcheck", []string{"internal/analysis/..."}, true},
		{"dart/internal/analysisx", []string{"internal/analysis/..."}, false},
		{"dart/cmd/dartd", []string{"cmd/dart"}, false},
		{"dart/cmd/dart", []string{"cmd/dart"}, true},
	}
	for _, c := range cases {
		if got := InScope(c.path, c.suffixes); got != c.want {
			t.Errorf("InScope(%q, %v) = %v, want %v", c.path, c.suffixes, got, c.want)
		}
	}
}

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 8 {
		t.Fatalf("registry has %d analyzers, want 8", len(all))
	}
	seen := map[string]bool{}
	for _, a := range all {
		if a.Name == "" || a.Run == nil {
			t.Errorf("analyzer %+v incomplete", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer %s", a.Name)
		}
		seen[a.Name] = true
		if _, ok := Scopes[a.Name]; !ok {
			t.Errorf("analyzer %s has no scope entry", a.Name)
		}
	}
	for name := range Scopes {
		if !seen[name] {
			t.Errorf("scope entry %s names no registered analyzer", name)
		}
	}
}

func TestActive(t *testing.T) {
	names := func(path string) map[string]bool {
		out := map[string]bool{}
		for _, a := range Active(path) {
			out[a.Name] = true
		}
		return out
	}
	svc := names("dart/internal/service")
	for _, want := range []string{"ctxloop", "lockcheck", "spanleak", "walorder", "errsink", "lockhold"} {
		if !svc[want] {
			t.Errorf("internal/service missing %s: %v", want, svc)
		}
	}
	if svc["floatcmp"] || svc["retshim"] {
		t.Errorf("internal/service has out-of-scope pass: %v", svc)
	}
	anl := names("dart/internal/analysis/dataflow")
	if !anl["ctxloop"] || !anl["errsink"] {
		t.Errorf("analysis subtree missing wildcard passes: %v", anl)
	}
}
