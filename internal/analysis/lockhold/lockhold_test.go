package lockhold_test

import (
	"testing"

	"dart/internal/analysis/analysistest"
	"dart/internal/analysis/lockhold"
)

func TestLockhold(t *testing.T) {
	analysistest.Run(t, lockhold.Analyzer, "testdata/src/lh")
}
