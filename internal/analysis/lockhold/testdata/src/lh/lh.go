// Package lh exercises the lockhold pass: no mutex held across a
// blocking call.
package lh

import "sync"

type decider struct{}

func (d *decider) Decide() (string, error) { return "", nil }

type ledger struct {
	mu   sync.Mutex
	aux  sync.Mutex
	cond *sync.Cond
	ch   chan int
	open int
}

func work() {}

// --- findings ---------------------------------------------------------

func (l *ledger) recvUnderLock() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return <-l.ch // want "blocking channel receive while holding l.mu"
}

func (l *ledger) recvUnderDeferredUnlock() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	work()
	v := <-l.ch // want "blocking channel receive while holding l.mu"
	return v
}

func (l *ledger) mayHoldOnOneBranch(fast bool) int {
	l.mu.Lock()
	if fast {
		l.mu.Unlock()
	}
	return <-l.ch // want "blocking channel receive while holding l.mu"
}

func (l *ledger) decideUnderLock(d *decider) {
	l.mu.Lock()
	defer l.mu.Unlock()
	_, _ = d.Decide() // want "blocking decider call while holding l.mu"
}

func (l *ledger) waitWithSecondLock() {
	l.mu.Lock()
	l.aux.Lock()
	l.cond.Wait() // want "cond.Wait with an unrelated mutex held"
	l.aux.Unlock()
	l.mu.Unlock()
}

func (l *ledger) foreignCondWait(other *ledger) {
	l.mu.Lock()
	defer l.mu.Unlock()
	other.cond.Wait() // want "cond.Wait with an unrelated mutex held"
}

func (l *ledger) rangeOverChannel() {
	l.mu.Lock()
	defer l.mu.Unlock()
	for v := range l.ch { // want "blocking range over channel while holding l.mu"
		_ = v
	}
}

func (l *ledger) lockInLoopRecvAfter(n int) {
	for i := 0; i < n; i++ {
		l.mu.Lock()
		l.open++
		l.mu.Unlock()
	}
	l.mu.Lock()
	<-l.ch // want "blocking channel receive while holding l.mu"
	l.mu.Unlock()
}

// --- clean ------------------------------------------------------------

func (l *ledger) recvAfterUnlock() int {
	l.mu.Lock()
	l.open++
	l.mu.Unlock()
	return <-l.ch
}

func (l *ledger) unlockedOnEveryBranch(fast bool) int {
	l.mu.Lock()
	if fast {
		l.open++
		l.mu.Unlock()
	} else {
		l.mu.Unlock()
	}
	return <-l.ch
}

func (l *ledger) ownCondWait() {
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.open > 0 {
		l.cond.Wait() // cond owns the single held mutex: legal
	}
}

func (l *ledger) decideThenLock(d *decider) {
	v, _ := d.Decide()
	l.mu.Lock()
	defer l.mu.Unlock()
	_ = v
	l.open++
}

func (l *ledger) nonBlockingSelect() {
	l.mu.Lock()
	defer l.mu.Unlock()
	select {
	case v := <-l.ch:
		l.open = v
	default:
	}
}

func (l *ledger) sendUnderLock(v int) {
	// Bounded sends under a lock are an accepted idiom: not flagged.
	l.mu.Lock()
	defer l.mu.Unlock()
	l.ch <- v
}

func (l *ledger) allowedWait() {
	l.mu.Lock()
	defer l.mu.Unlock()
	//dartvet:allow lockhold -- fixture: startup barrier, nothing else contends yet
	<-l.ch
}
