// Package lockhold flags blocking operations performed while a mutex
// may be held: channel receives (including range-over-channel),
// WaitGroup waits, cond.Wait on a cond that does not own the single
// held mutex, decider calls (Decide), HTTP round-trips, and time.Sleep.
// A queue or ledger mutex held across such a call stalls every other
// goroutine contending for it — the latency bug PR 7's decide-then-
// check fix removed, now machine-checked.
//
// Held-lock state is path-sensitive (may-analysis on the dataflow
// driver): a lock released on one branch but not another still counts
// as held at the join. `defer mu.Unlock()` keeps the lock held for the
// rest of the body, by design.
//
// cond.Wait is accepted only when the single held mutex belongs to the
// same root value as the cond (the `l.mu` / `l.cond` pairing); anything
// else — a second mutex, or a foreign cond — is reported. Channel sends
// are deliberately NOT flagged: bounded-capacity sends under a lock are
// an accepted idiom in the queue (capacity is reserved before the
// send).
package lockhold

import (
	"go/ast"
	"go/types"

	"dart/internal/analysis"
	"dart/internal/analysis/cfg"
	"dart/internal/analysis/dataflow"
)

// Analyzer is the lockhold pass.
var Analyzer = &analysis.Analyzer{
	Name: "lockhold",
	Doc:  "no mutex may be held across a blocking call (channel receive, foreign cond.Wait, decider/HTTP calls, sleeps)",
	Run:  run,
}

const held = 1

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		nonBlocking := nonBlockingComms(f)
		for _, fn := range cfg.Functions(f) {
			checkFunc(pass, fn, nonBlocking)
		}
	}
	return nil
}

// nonBlockingComms collects comm-clause statements of selects that have
// a default clause: those receives never block.
func nonBlockingComms(f *ast.File) map[ast.Stmt]bool {
	out := map[ast.Stmt]bool{}
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		hasDefault := false
		for _, cl := range sel.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			return true
		}
		for _, cl := range sel.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok && cc.Comm != nil {
				out[cc.Comm] = true
			}
		}
		return true
	})
	return out
}

type checker struct {
	pass *analysis.Pass
	// owners maps each held-mutex key to the root value it hangs off
	// (q.mu -> q); display renders the lock for diagnostics.
	owners  map[types.Object]types.Object
	display map[types.Object]string
	// nonBlocking marks select-with-default comm statements.
	nonBlocking map[ast.Stmt]bool
}

func checkFunc(pass *analysis.Pass, fn cfg.FuncInfo, nonBlocking map[ast.Stmt]bool) {
	c := &checker{
		pass:        pass,
		owners:      map[types.Object]types.Object{},
		display:     map[types.Object]string{},
		nonBlocking: nonBlocking,
	}
	g := cfg.New(fn.Body)

	prob := dataflow.FactsProblem(dataflow.Facts{}, true) // may-join: held dominates
	prob.Transfer = c.transfer
	res := dataflow.Forward(g, prob)

	reported := map[ast.Node]bool{}
	dataflow.ForEachNode(g, prob, res, func(n ast.Node, before dataflow.Facts) {
		c.checkBlocking(n, before, reported)
	})
}

// mutexKey resolves the receiver of a Lock/Unlock-family call to a
// stable object key plus its root owner. For q.mu.Lock() the key is the
// mu field object; for an embedded mutex (e.Lock()) or a local mutex
// the key is the value's own object.
func (c *checker) mutexKey(recv ast.Expr) (key, root types.Object, name string) {
	info := c.pass.TypesInfo
	switch x := ast.Unparen(recv).(type) {
	case *ast.SelectorExpr:
		field := info.Uses[x.Sel]
		if field == nil || !isSyncMutex(field.Type()) {
			return nil, nil, ""
		}
		return field, dataflow.RootIdentObject(info, x.X), render(x)
	case *ast.Ident:
		obj := info.Uses[x]
		if obj == nil {
			return nil, nil, ""
		}
		if isSyncMutex(obj.Type()) || hasEmbeddedMutex(obj.Type()) {
			return obj, obj, x.Name
		}
	}
	return nil, nil, ""
}

func isSyncMutex(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj() == nil || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "sync" &&
		(named.Obj().Name() == "Mutex" || named.Obj().Name() == "RWMutex")
}

func hasEmbeddedMutex(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Embedded() && isSyncMutex(f.Type()) {
			return true
		}
	}
	return false
}

func isNamed(t types.Type, pkg, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj() == nil {
		return false
	}
	if pkg == "" {
		return named.Obj().Name() == name
	}
	return named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == pkg && named.Obj().Name() == name
}

func render(sel *ast.SelectorExpr) string {
	if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
		return id.Name + "." + sel.Sel.Name
	}
	return sel.Sel.Name
}

// transfer applies Lock/Unlock effects. Defer statements are skipped:
// a deferred unlock releases at return, not here.
func (c *checker) transfer(n ast.Node, in dataflow.Facts) dataflow.Facts {
	if _, ok := n.(*ast.DeferStmt); ok {
		return in
	}
	dataflow.Calls(n, func(call *ast.CallExpr) {
		recv := dataflow.Receiver(call)
		if recv == nil {
			return
		}
		switch dataflow.CalleeName(call) {
		case "Lock", "RLock":
			if key, root, name := c.mutexKey(recv); key != nil {
				in[key] = held
				c.owners[key] = root
				c.display[key] = name
			}
		case "Unlock", "RUnlock":
			if key, _, _ := c.mutexKey(recv); key != nil {
				delete(in, key)
			}
		case "TryLock", "TryRLock":
			// Result-dependent; treated as may-held.
			if key, root, name := c.mutexKey(recv); key != nil {
				in[key] = held
				c.owners[key] = root
				c.display[key] = name
			}
		}
	})
	return in
}

// heldNames renders the held set for diagnostics, deterministically.
func (c *checker) heldNames(before dataflow.Facts) string {
	names := ""
	for key, v := range before {
		if v != held {
			continue
		}
		if names != "" {
			names += ", "
		}
		names += c.display[key]
	}
	return names
}

func (c *checker) anyHeld(before dataflow.Facts) bool {
	for _, v := range before {
		if v == held {
			return true
		}
	}
	return false
}

// checkBlocking reports blocking operations in n given the may-held set.
func (c *checker) checkBlocking(n ast.Node, before dataflow.Facts, reported map[ast.Node]bool) {
	if !c.anyHeld(before) {
		return
	}
	if _, ok := n.(*ast.DeferStmt); ok {
		return
	}
	if stmt, ok := n.(ast.Stmt); ok && c.nonBlocking[stmt] {
		return
	}
	report := func(at ast.Node, what string) {
		if reported[at] {
			return
		}
		reported[at] = true
		c.pass.Reportf(at.Pos(), "%s while holding %s (release the lock before blocking)", what, c.heldNames(before))
	}

	if rs, ok := n.(*ast.RangeStmt); ok {
		if t := c.pass.TypeOf(rs.X); t != nil {
			if _, isChan := t.Underlying().(*types.Chan); isChan {
				report(rs, "blocking range over channel")
			}
		}
		return
	}

	dataflow.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.UnaryExpr:
			if m.Op.String() == "<-" {
				report(m, "blocking channel receive")
			}
		case *ast.CallExpr:
			c.checkBlockingCall(m, before, report)
		}
		return true
	})
}

func (c *checker) checkBlockingCall(call *ast.CallExpr, before dataflow.Facts, report func(ast.Node, string)) {
	name := dataflow.CalleeName(call)
	recv := dataflow.Receiver(call)
	recvType := func() types.Type {
		if recv == nil {
			return nil
		}
		return c.pass.TypeOf(recv)
	}

	switch name {
	case "Wait":
		t := recvType()
		switch {
		case isNamed(t, "sync", "WaitGroup"):
			report(call, "WaitGroup.Wait")
		case isNamed(t, "sync", "Cond"):
			if !c.condOwnsHeld(recv, before) {
				report(call, "cond.Wait with an unrelated mutex held")
			}
		}
	case "Decide":
		report(call, "blocking decider call")
	case "Do", "Get", "Post", "PostForm", "Head":
		t := recvType()
		if isNamed(t, "net/http", "Client") || isHTTPPkg(c.pass, recv) {
			report(call, "HTTP round-trip")
		}
	case "Sleep":
		if isPkg(c.pass, recv, "time") {
			report(call, "time.Sleep")
		}
	}
}

// condOwnsHeld reports whether the held set is exactly the one mutex
// rooted at the same value as the cond — the legal cond.Wait shape.
func (c *checker) condOwnsHeld(condRecv ast.Expr, before dataflow.Facts) bool {
	condRoot := dataflow.RootIdentObject(c.pass.TypesInfo, condRecv)
	if condRoot == nil {
		return false
	}
	n := 0
	ownerOK := true
	for key, v := range before {
		if v != held {
			continue
		}
		n++
		if c.owners[key] != condRoot {
			ownerOK = false
		}
	}
	return n == 1 && ownerOK
}

func isPkg(pass *analysis.Pass, recv ast.Expr, path string) bool {
	id, ok := ast.Unparen(recv).(*ast.Ident)
	if !ok {
		return false
	}
	pkgName, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	return ok && pkgName.Imported().Path() == path
}

func isHTTPPkg(pass *analysis.Pass, recv ast.Expr) bool {
	return isPkg(pass, recv, "net/http")
}
