// Package analysistest is a miniature of golang.org/x/tools'
// go/analysis/analysistest: it runs one analyzer over a testdata package
// and checks its diagnostics against `// want "regexp"` comments placed on
// the expected lines. Directive suppression is active, so fixtures can
// also assert that //dartvet:allow comments silence a finding.
package analysistest

import (
	"fmt"
	"regexp"
	"strings"
	"testing"

	"dart/internal/analysis"
)

// wantRE extracts the quoted expectation patterns of a want comment.
var wantRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// expectation is one `// want` entry.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run loads the single package in dir, applies the analyzer, and compares
// findings against the fixture's want comments.
func Run(t *testing.T, a *analysis.Analyzer, dir string) {
	t.Helper()
	pkg, err := analysis.LoadDir(dir, ".")
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}

	var wants []*expectation
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				idx := strings.Index(text, "want ")
				if idx < 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, m := range wantRE.FindAllStringSubmatch(text[idx:], -1) {
					rx, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, m[1], err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, pattern: rx})
				}
			}
		}
	}

	findings, err := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}

	for _, f := range findings {
		if !claim(wants, f) {
			t.Errorf("unexpected finding: %v", f)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no finding matched want %q", w.file, w.line, w.pattern)
		}
	}
}

// claim marks the first unmatched expectation on the finding's line that
// matches its message.
func claim(wants []*expectation, f analysis.Finding) bool {
	for _, w := range wants {
		if w.matched || w.file != f.Position.Filename || w.line != f.Position.Line {
			continue
		}
		if w.pattern.MatchString(f.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

// Fprint is a debugging helper that renders findings; tests use it when a
// fixture mismatch needs context.
func Fprint(findings []analysis.Finding) string {
	var b strings.Builder
	for _, f := range findings {
		fmt.Fprintln(&b, f)
	}
	return b.String()
}
