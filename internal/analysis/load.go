package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Syntax     []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Error      *struct{ Err string }
}

// goList runs the go command in dir and decodes its JSON package stream.
func goList(dir string, args ...string) ([]*listedPackage, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	//dartvet:allow ctxloop -- decode loop over an in-memory buffer, bounded by go list output
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// loaderCache memoizes `go list -export` work for the life of the
// process: one dartvet run loads each package's export data exactly
// once no matter how many analyzers or fixture loads ask for it, and
// repeated Load calls (dartbench iterations) skip the go command
// entirely.
var loaderCache = struct {
	mu sync.Mutex
	// lists memoizes whole goList invocations by (dir, args).
	lists map[string][]*listedPackage
	// exports maps resolve-dir -> import path -> export-data file,
	// accumulated from every list that ran; LoadDir can often satisfy a
	// fixture's stdlib imports without a new go command.
	exports map[string]map[string]string
}{
	lists:   map[string][]*listedPackage{},
	exports: map[string]map[string]string{},
}

// goListCached is goList behind the process-wide memo.
func goListCached(dir string, args ...string) ([]*listedPackage, error) {
	key := dir + "\x00" + strings.Join(args, "\x00")
	loaderCache.mu.Lock()
	cached, ok := loaderCache.lists[key]
	loaderCache.mu.Unlock()
	if ok {
		return cached, nil
	}
	listed, err := goList(dir, args...)
	if err != nil {
		return nil, err
	}
	loaderCache.mu.Lock()
	loaderCache.lists[key] = listed
	rememberExportsLocked(dir, listed)
	loaderCache.mu.Unlock()
	return listed, nil
}

// rememberExportsLocked records export-data locations; the caller holds
// loaderCache.mu.
func rememberExportsLocked(dir string, listed []*listedPackage) {
	m := loaderCache.exports[dir]
	if m == nil {
		m = map[string]string{}
		loaderCache.exports[dir] = m
	}
	for _, p := range listed {
		if p.Error == nil && p.Export != "" {
			m[p.ImportPath] = p.Export
		}
	}
}

// cachedExports returns the full known export map for dir when every
// import in paths is already present, or nil when any is missing. The
// full map is returned (not just the requested entries) because export
// data resolution is transitive; entries only enter the cache from
// -deps listings, so the closure of anything present is present too.
func cachedExports(dir string, paths []string) map[string]string {
	loaderCache.mu.Lock()
	defer loaderCache.mu.Unlock()
	m := loaderCache.exports[dir]
	if m == nil {
		return nil
	}
	for _, p := range paths {
		if _, ok := m[p]; !ok {
			return nil
		}
	}
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// exportLookup builds the import resolver for the gc importer from the
// export-data paths go list reported.
func exportLookup(exports map[string]string) func(string) (io.ReadCloser, error) {
	return func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(file)
	}
}

// newInfo allocates a fully-populated types.Info.
func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// Load resolves the package patterns in dir with the go command, parses
// each matched package, and type-checks it against the export data of its
// dependencies. It needs no network access and no dependencies beyond the
// go toolchain: `go list -export` compiles export data into the local
// build cache and reports its location.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Export,Dir,GoFiles,DepOnly,Error",
	}, patterns...)
	listed, err := goListCached(dir, args...)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	var targets []*listedPackage
	for _, p := range listed {
		if p.Error != nil {
			return nil, fmt.Errorf("analysis: %s: %s", p.ImportPath, p.Error.Err)
		}
		exports[p.ImportPath] = p.Export
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", exportLookup(exports))
	var out []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		files := make([]string, len(t.GoFiles))
		for i, f := range t.GoFiles {
			files[i] = filepath.Join(t.Dir, f)
		}
		pkg, err := typeCheck(fset, imp, t.ImportPath, files)
		if err != nil {
			return nil, err
		}
		pkg.Dir = t.Dir
		out = append(out, pkg)
	}
	return out, nil
}

// LoadDir parses the single package in dir (testdata layouts, which the go
// command ignores) and type-checks it against export data resolved from
// resolveDir's module. Only standard-library imports are supported, which
// is all analyzer test fixtures need.
func LoadDir(dir, resolveDir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	sort.Strings(files)

	fset := token.NewFileSet()
	var syntax []*ast.File
	importSet := map[string]bool{}
	for _, f := range files {
		af, err := parser.ParseFile(fset, f, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		syntax = append(syntax, af)
		for _, spec := range af.Imports {
			importSet[strings.Trim(spec.Path.Value, `"`)] = true
		}
	}

	exports := map[string]string{}
	if len(importSet) > 0 {
		var paths []string
		for p := range importSet {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		if cached := cachedExports(resolveDir, paths); cached != nil {
			exports = cached
		} else {
			args := append([]string{"list", "-export", "-deps", "-json=ImportPath,Export,Error"}, paths...)
			listed, err := goListCached(resolveDir, args...)
			if err != nil {
				return nil, err
			}
			for _, p := range listed {
				if p.Error != nil {
					return nil, fmt.Errorf("analysis: %s: %s", p.ImportPath, p.Error.Err)
				}
				exports[p.ImportPath] = p.Export
			}
		}
	}
	imp := importer.ForCompiler(fset, "gc", exportLookup(exports))

	info := newInfo()
	conf := types.Config{Importer: imp}
	name := syntax[0].Name.Name
	tpkg, err := conf.Check(name, fset, syntax, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", dir, err)
	}
	return &Package{ImportPath: name, Dir: dir, Fset: fset, Syntax: syntax, Types: tpkg, TypesInfo: info}, nil
}

// typeCheck parses and checks one package's files.
func typeCheck(fset *token.FileSet, imp types.Importer, importPath string, files []string) (*Package, error) {
	var syntax []*ast.File
	for _, f := range files {
		af, err := parser.ParseFile(fset, f, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		syntax = append(syntax, af)
	}
	info := newInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, syntax, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", importPath, err)
	}
	return &Package{ImportPath: importPath, Fset: fset, Syntax: syntax, Types: tpkg, TypesInfo: info}, nil
}
