package dataflow

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"dart/internal/analysis/cfg"
)

func parseFunc(t *testing.T, src string) (*token.FileSet, *ast.FuncDecl, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "t.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Defs:  map[*ast.Ident]types.Object{},
		Uses:  map[*ast.Ident]types.Object{},
	}
	conf := types.Config{Importer: importer.Default()}
	if _, err := conf.Check("p", fset, []*ast.File{file}, info); err != nil {
		t.Fatal(err)
	}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "f" {
			return fset, fd, info
		}
	}
	t.Fatal("no func f")
	return nil, nil, nil
}

// Track whether local `x` is "set" (1) on a must (all-paths) basis.
func TestForwardMustJoin(t *testing.T) {
	_, fd, info := parseFunc(t, `package p
func mark() {}
func f(cond bool) {
	x := 0
	if cond {
		x = 1
	}
	_ = x
	mark()
}`)
	g := cfg.New(fd.Body)
	var xObj types.Object
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == "x" && info.Defs[id] != nil {
			xObj = info.Defs[id]
		}
		return true
	})
	if xObj == nil {
		t.Fatal("no x object")
	}

	p := FactsProblem(Facts{}, false) // must-join
	p.Transfer = func(n ast.Node, in Facts) Facts {
		if as, ok := n.(*ast.AssignStmt); ok {
			for _, lhs := range as.Lhs {
				if LocalObject(info, lhs) == xObj {
					if as.Tok == token.ASSIGN {
						in[xObj] = 1
					} else {
						in[xObj] = 0
					}
				}
			}
		}
		return in
	}
	r := Forward(g, p)
	exit, ok := ExitFact(g, r)
	if !ok {
		t.Fatal("exit unreachable")
	}
	// x = 1 only on the cond branch: must-join says not set at exit.
	if exit[xObj] != 0 {
		t.Errorf("must-join: got %d at exit, want 0", exit[xObj])
	}

	// Same program under may-join: set on some path.
	pm := FactsProblem(Facts{}, true)
	pm.Transfer = p.Transfer
	rm := Forward(g, pm)
	exitM, _ := ExitFact(g, rm)
	if exitM[xObj] != 1 {
		t.Errorf("may-join: got %d at exit, want 1", exitM[xObj])
	}
}

// Branch refinement: `if p == nil { return }` proves p non-nil after.
func TestForwardBranchRefinement(t *testing.T) {
	_, fd, info := parseFunc(t, `package p
func f(p *int) {
	if p == nil {
		return
	}
	_ = p
}`)
	g := cfg.New(fd.Body)
	var pObj types.Object
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == "p" && info.Uses[id] != nil {
			pObj = info.Uses[id]
		}
		return true
	})

	const maybeNil, notNil = 1, 2
	prob := FactsProblem(Facts{pObj: maybeNil}, false)
	prob.Transfer = func(n ast.Node, in Facts) Facts { return in }
	prob.Branch = func(cond ast.Expr, branch bool, in Facts) Facts {
		if x, eq, ok := NilCompare(cond); ok {
			if obj := LocalObject(info, x); obj == pObj {
				// eq==true: nil on true edge, non-nil on false edge.
				if eq != branch {
					in[pObj] = notNil
				}
			}
		}
		return in
	}
	r := Forward(g, prob)
	exit, ok := ExitFact(g, r)
	if !ok {
		t.Fatal("exit unreachable")
	}
	// The only fallthrough path has p refined to notNil; the return path
	// joins at exit with maybeNil, so the exit join is maybeNil (min).
	if exit[pObj] != maybeNil {
		t.Errorf("exit fact %d, want %d (join of both paths)", exit[pObj], maybeNil)
	}
	// But the _ = p node itself must see notNil.
	sawUse := false
	ForEachNode(g, prob, r, func(n ast.Node, before Facts) {
		if as, ok := n.(*ast.AssignStmt); ok {
			if len(as.Rhs) == 1 && LocalObject(info, as.Rhs[0]) == pObj {
				sawUse = true
				if before[pObj] != notNil {
					t.Errorf("at use: fact %d, want %d", before[pObj], notNil)
				}
			}
		}
	})
	if !sawUse {
		t.Error("never visited the _ = p node")
	}
}
