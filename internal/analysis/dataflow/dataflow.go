// Package dataflow runs forward dataflow problems to a fixpoint over a
// cfg.Graph. A pass supplies a Problem describing its lattice (join,
// equality) and transfer function; the driver owns the worklist and
// edge propagation, including branch-condition refinement for passes
// that learn facts from conditions (e.g. `sp != nil`).
package dataflow

import (
	"go/ast"
	"go/types"

	"dart/internal/analysis/cfg"
)

// Problem describes one forward dataflow analysis over fact type T.
// Facts flow block-entry -> transfer over each node -> successors.
type Problem[T any] struct {
	// Entry is the fact at function entry.
	Entry T

	// Transfer applies one CFG node to the incoming fact and returns the
	// outgoing fact. It may mutate and return `in`.
	Transfer func(n ast.Node, in T) T

	// Join combines a new incoming fact into an accumulated one and
	// returns the result. It may mutate and return `acc`.
	Join func(acc, in T) T

	// Equal reports whether two facts are equal (fixpoint detection).
	Equal func(a, b T) bool

	// Clone deep-copies a fact.
	Clone func(T) T

	// Branch, when non-nil, refines the fact flowing down one edge of a
	// conditional block: branch is true for the Succs[0] (condition
	// true) edge. It may mutate and return `in`.
	Branch func(cond ast.Expr, branch bool, in T) T
}

// Result holds the fixpoint facts at the entry of each reached block.
// Blocks never reached from entry have no fact.
type Result[T any] struct {
	In map[int]T // block index -> fact at block entry
}

// Forward runs the problem to a fixpoint and returns block-entry facts.
func Forward[T any](g *cfg.Graph, p Problem[T]) *Result[T] {
	in := map[int]T{g.Entry.Index: p.Clone(p.Entry)}
	work := []*cfg.Block{g.Entry}
	queued := map[int]bool{g.Entry.Index: true}

	//dartvet:allow ctxloop -- bounded fixpoint worklist, not an I/O retry loop
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b.Index] = false

		fact := p.Clone(in[b.Index])
		for _, n := range b.Nodes {
			fact = p.Transfer(n, fact)
		}
		for i, s := range b.Succs {
			edgeFact := fact
			if p.Branch != nil && b.Cond != nil && i < 2 {
				edgeFact = p.Branch(b.Cond, i == 0, p.Clone(fact))
			} else if len(b.Succs) > 1 {
				edgeFact = p.Clone(fact)
			}
			old, seen := in[s.Index]
			var next T
			if !seen {
				next = p.Clone(edgeFact)
			} else {
				next = p.Join(p.Clone(old), edgeFact)
			}
			if !seen || !p.Equal(next, old) {
				in[s.Index] = next
				if !queued[s.Index] {
					queued[s.Index] = true
					work = append(work, s)
				}
			}
		}
	}
	return &Result[T]{In: in}
}

// ForEachNode replays the transfer function over every reached block,
// calling visit with the fact in force immediately BEFORE each node.
// The fact passed to visit is shared with the replay; visit must not
// mutate it.
func ForEachNode[T any](g *cfg.Graph, p Problem[T], r *Result[T], visit func(n ast.Node, before T)) {
	for _, b := range g.Blocks {
		start, ok := r.In[b.Index]
		if !ok {
			continue // unreachable
		}
		fact := p.Clone(start)
		for _, n := range b.Nodes {
			visit(n, fact)
			fact = p.Transfer(n, fact)
		}
	}
}

// ExitFact returns the fact at function exit, or the zero fact and
// false when the exit block is unreachable (e.g. infinite loop).
func ExitFact[T any](g *cfg.Graph, r *Result[T]) (T, bool) {
	f, ok := r.In[g.Exit.Index]
	return f, ok
}

// --- Object fact maps ---------------------------------------------------

// Facts maps function-local objects (spans, errors, mutexes) to small
// integer lattice values. The zero value for a missing key is 0, which
// problems should treat as bottom/"untracked".
type Facts map[types.Object]int

// Clone deep-copies the map.
func (f Facts) Clone() Facts {
	out := make(Facts, len(f))
	for k, v := range f {
		out[k] = v
	}
	return out
}

// Equal reports value-equality treating missing keys as 0.
func (f Facts) Equal(other Facts) bool {
	for k, v := range f {
		if other[k] != v {
			return false
		}
	}
	for k, v := range other {
		if f[k] != v {
			return false
		}
	}
	return true
}

// JoinMax merges by per-key maximum (a "may" join when larger values
// are the dangerous ones). Mutates and returns f.
func (f Facts) JoinMax(other Facts) Facts {
	for k, v := range other {
		if v > f[k] {
			f[k] = v
		}
	}
	return f
}

// JoinMin merges by per-key minimum over the union of keys (a "must"
// join when larger values are the proven ones). Mutates and returns f.
func (f Facts) JoinMin(other Facts) Facts {
	for k := range f {
		if ov := other[k]; ov < f[k] {
			f[k] = ov
		}
	}
	for k := range other {
		if _, ok := f[k]; !ok {
			f[k] = 0
		}
	}
	return f
}

// FactsProblem returns a Problem over Facts with the given entry and
// join direction; callers fill in Transfer (and optionally Branch).
func FactsProblem(entry Facts, joinMax bool) Problem[Facts] {
	join := func(acc, in Facts) Facts { return acc.JoinMin(in) }
	if joinMax {
		join = func(acc, in Facts) Facts { return acc.JoinMax(in) }
	}
	return Problem[Facts]{
		Entry: entry,
		Join:  join,
		Equal: func(a, b Facts) bool { return a.Equal(b) },
		Clone: func(f Facts) Facts { return f.Clone() },
	}
}

// --- AST helpers shared by passes --------------------------------------

// Inspect walks n without descending into function literals, whose
// bodies execute on their own control flow. When n is a range statement
// (the CFG's loop-head node) only the range clause is walked: the loop
// body lives in other blocks.
func Inspect(n ast.Node, fn func(ast.Node) bool) {
	if rs, ok := n.(*ast.RangeStmt); ok {
		if !fn(rs) {
			return
		}
		for _, e := range []ast.Expr{rs.Key, rs.Value, rs.X} {
			if e != nil {
				Inspect(e, fn)
			}
		}
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok && m != n {
			return false
		}
		return fn(m)
	})
}

// Calls invokes fn for every call expression in n, skipping calls that
// only appear inside nested function literals.
func Calls(n ast.Node, fn func(*ast.CallExpr)) {
	Inspect(n, func(m ast.Node) bool {
		if call, ok := m.(*ast.CallExpr); ok {
			fn(call)
		}
		return true
	})
}

// LocalObject resolves e to the object of a plain identifier (local
// variable, parameter, or package-level var), or nil.
func LocalObject(info *types.Info, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

// NilCompare matches `x == nil` / `x != nil` conditions and returns the
// non-nil operand and the token: eq is true for ==.
func NilCompare(cond ast.Expr) (x ast.Expr, eq bool, ok bool) {
	be, isBin := ast.Unparen(cond).(*ast.BinaryExpr)
	if !isBin {
		return nil, false, false
	}
	op := be.Op.String()
	if op != "==" && op != "!=" {
		return nil, false, false
	}
	isNil := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && id.Name == "nil"
	}
	switch {
	case isNil(be.Y):
		return be.X, op == "==", true
	case isNil(be.X):
		return be.Y, op == "==", true
	}
	return nil, false, false
}

// CalleeName returns the bare name of the called function or method
// ("Append", "Lock", ...), or "".
func CalleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// Receiver returns the receiver expression of a method call (the X in
// x.M(...)), or nil for plain function calls.
func Receiver(call *ast.CallExpr) ast.Expr {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return sel.X
	}
	return nil
}

// RootIdentObject walks selector chains (a.b.c -> a) and returns the
// object of the root identifier, or nil.
func RootIdentObject(info *types.Info, e ast.Expr) types.Object {
	//dartvet:allow ctxloop -- descends a finite expression tree, bounded by selector depth
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return info.Uses[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.CallExpr:
			return nil
		default:
			return nil
		}
	}
}
