// Package errsink verifies that errors from durability-critical calls
// (WAL Append*, Sync*/Fsync, Close, Rename, Truncate, WriteSnapshot,
// WriteAt) reach a sink — a return, a condition, a log/metric call, any
// read at all — on every path. A dropped fsync error is silent data
// loss; this pass makes the drop loud.
//
// Two defect shapes are reported:
//
//  1. Discarded result: the call appears as a bare statement (or defer)
//     and its error result vanishes. Writing `_ = f.Close()` is an
//     audited discard and is accepted — the point is making the drop
//     visible in the source.
//  2. Unconsumed local: `err := w.Sync()` where some path reaches
//     function exit — or another assignment to err — without reading
//     err first.
//
// The second shape runs on the CFG/dataflow driver and is path
// sensitive: an error checked in one branch but ignored in another is
// still a finding.
package errsink

import (
	"go/ast"
	"go/types"
	"strings"

	"dart/internal/analysis"
	"dart/internal/analysis/cfg"
	"dart/internal/analysis/dataflow"
)

// Analyzer is the errsink pass.
var Analyzer = &analysis.Analyzer{
	Name: "errsink",
	Doc:  "errors from durability calls (Append*/Sync*/Close/Rename/Truncate/snapshot paths) must be consulted on every path",
	Run:  run,
}

// Lattice per error object; larger is worse, joins are max.
const (
	untracked  = 0
	consumed   = 1 // read at least once since assignment
	unconsumed = 2 // assigned from a durability call, not yet read
)

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, fn := range cfg.Functions(f) {
			checkFunc(pass, fn)
		}
	}
	return nil
}

// durabilityCall reports whether call is an error-returning call on the
// watchlist of durability operations.
func durabilityCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	name := dataflow.CalleeName(call)
	switch {
	case strings.HasPrefix(name, "Sync"), strings.HasPrefix(name, "Append"):
	case name == "Fsync", name == "Close", name == "Rename", name == "Truncate",
		name == "WriteSnapshot", name == "WriteAt":
	default:
		return false
	}
	return returnsError(pass.TypeOf(call))
}

// returnsError reports whether a call result type includes an error.
func returnsError(t types.Type) bool {
	isErr := func(t types.Type) bool {
		named, ok := t.(*types.Named)
		return ok && named.Obj() != nil && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
	}
	switch t := t.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErr(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return t != nil && isErr(t)
	}
}

type checker struct {
	pass *analysis.Pass
	// origin records the durability call each tracked error came from.
	origin map[types.Object]*ast.CallExpr
}

func checkFunc(pass *analysis.Pass, fn cfg.FuncInfo) {
	c := &checker{pass: pass, origin: map[types.Object]*ast.CallExpr{}}
	g := cfg.New(fn.Body)

	prob := dataflow.FactsProblem(dataflow.Facts{}, true) // may-join: unconsumed dominates
	prob.Transfer = func(n ast.Node, in dataflow.Facts) dataflow.Facts {
		return c.transfer(n, in, nil)
	}
	res := dataflow.Forward(g, prob)

	// Replay with reporting enabled: bare discards and overwrites.
	report := func(pos ast.Node, format string, args ...any) {
		pass.Reportf(pos.Pos(), format, args...)
	}
	repProb := prob
	repProb.Transfer = func(n ast.Node, in dataflow.Facts) dataflow.Facts {
		return c.transfer(n, in, report)
	}
	dataflow.ForEachNode(g, repProb, res, func(n ast.Node, before dataflow.Facts) {
		c.checkDiscard(n)
	})

	exit, ok := dataflow.ExitFact(g, res)
	if !ok {
		return
	}
	for obj, v := range exit {
		if v != unconsumed {
			continue
		}
		call := c.origin[obj]
		pass.Reportf(call.Pos(), "error from %s is never consulted on some path to return (check it, return it, or record it in a metric)",
			dataflow.CalleeName(call))
	}
}

// checkDiscard flags bare-statement and deferred durability calls whose
// error result is dropped on the floor.
func (c *checker) checkDiscard(n ast.Node) {
	var call *ast.CallExpr
	switch n := n.(type) {
	case *ast.ExprStmt:
		call, _ = ast.Unparen(n.X).(*ast.CallExpr)
	case *ast.DeferStmt:
		call = n.Call
	case *ast.GoStmt:
		call = n.Call
	}
	if call == nil || !durabilityCall(c.pass, call) {
		return
	}
	c.pass.Reportf(call.Pos(), "error from %s is discarded (check it, or assign to _ to make the drop explicit)",
		dataflow.CalleeName(call))
}

// transfer tracks error locals assigned from durability calls. When
// report is non-nil (the replay phase), overwrites of still-unconsumed
// errors are reported in place.
func (c *checker) transfer(n ast.Node, in dataflow.Facts, report func(pos ast.Node, format string, args ...any)) dataflow.Facts {
	info := c.pass.TypesInfo

	// Assignment targets this node writes; value is the durability call
	// when the error comes from one.
	assigned := map[*ast.Ident]*ast.CallExpr{}
	if as, ok := n.(*ast.AssignStmt); ok {
		c.collectErrAssigns(as, assigned)
	}
	if ds, ok := n.(*ast.DeclStmt); ok {
		if gd, ok := ds.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok && len(vs.Names) == len(vs.Values) {
					for i, name := range vs.Names {
						if call, ok := ast.Unparen(vs.Values[i]).(*ast.CallExpr); ok && durabilityCall(c.pass, call) {
							assigned[name] = call
						}
					}
				}
			}
		}
	}

	assignTargets := map[types.Object]bool{}
	for id := range assigned {
		if obj := info.Defs[id]; obj != nil {
			assignTargets[obj] = true
		} else if obj := info.Uses[id]; obj != nil {
			assignTargets[obj] = true
		}
	}

	// Any read of a tracked error consumes it (conditions, returns,
	// call arguments, wrapping — all sinks).
	dataflow.Inspect(n, func(m ast.Node) bool {
		id, ok := m.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		if obj == nil || assignTargets[obj] {
			return true
		}
		if _, tracked := c.origin[obj]; tracked && in[obj] == unconsumed {
			in[obj] = consumed
		}
		return true
	})

	// Then apply this node's assignments.
	for id, call := range assigned {
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj == nil {
			continue
		}
		if in[obj] == unconsumed && report != nil {
			prev := c.origin[obj]
			report(id, "error from %s is overwritten before being consulted (check it first)",
				dataflow.CalleeName(prev))
		}
		if call != nil {
			c.origin[obj] = call
			in[obj] = unconsumed
		} else {
			in[obj] = untracked
		}
	}
	return in
}

// collectErrAssigns maps assigned identifiers to the durability call
// producing them (nil for non-durability reassignment of a tracked
// local). Handles `err := call()`, `n, err := call()`, `err = call()`.
func (c *checker) collectErrAssigns(as *ast.AssignStmt, out map[*ast.Ident]*ast.CallExpr) {
	info := c.pass.TypesInfo
	rhsCall := func(e ast.Expr) *ast.CallExpr {
		call, _ := ast.Unparen(e).(*ast.CallExpr)
		return call
	}
	record := func(lhs ast.Expr, call *ast.CallExpr, errPos bool) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj == nil {
			return
		}
		switch {
		case call != nil && errPos:
			out[id] = call
		default:
			// Reassignment: only interesting for already-tracked locals.
			if _, tracked := c.origin[obj]; tracked {
				out[id] = nil
			}
		}
	}

	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		// n, err := call(): the error is the last result.
		call := rhsCall(as.Rhs[0])
		durable := call != nil && durabilityCall(c.pass, call)
		for i, lhs := range as.Lhs {
			isErrSlot := i == len(as.Lhs)-1
			if durable {
				record(lhs, call, isErrSlot)
			} else {
				record(lhs, nil, false)
			}
		}
		return
	}
	if len(as.Lhs) == len(as.Rhs) {
		for i, lhs := range as.Lhs {
			call := rhsCall(as.Rhs[i])
			if call != nil && durabilityCall(c.pass, call) {
				record(lhs, call, true)
			} else {
				record(lhs, nil, false)
			}
		}
	}
}
