package errsink_test

import (
	"testing"

	"dart/internal/analysis/analysistest"
	"dart/internal/analysis/errsink"
)

func TestErrsink(t *testing.T) {
	analysistest.Run(t, errsink.Analyzer, "testdata/src/es")
}
