// Package es exercises the errsink pass: errors from durability calls
// must be consulted on every path.
package es

import "os"

type wal struct {
	f   *os.File
	idx *os.File
	errs int
}

type record struct{ b []byte }

func (w *wal) Append(r *record) (uint64, error) { return 0, nil }

func logErr(err error) {}

// --- discarded results ------------------------------------------------

func (w *wal) discardSync() {
	w.f.Sync() // want "error from Sync is discarded"
}

func (w *wal) discardDeferredClose() {
	defer w.f.Close() // want "error from Close is discarded"
	w.f.Sync()        // want "error from Sync is discarded"
}

func (w *wal) auditedDiscard() {
	_ = w.f.Sync() // explicit blank assignment: accepted
}

// --- unconsumed locals ------------------------------------------------

func (w *wal) ignoredOnOnePath(fast bool) error {
	err := w.f.Sync() // want "error from Sync is never consulted on some path"
	if fast {
		return nil
	}
	return err
}

func (w *wal) overwrittenBeforeCheck() error {
	err := w.f.Sync() // the finding lands on the overwrite below
	err = w.idx.Sync() // want "error from Sync is overwritten before being consulted"
	return err
}

func (w *wal) overwrittenInLoop(n int) {
	var err error
	for i := 0; i < n; i++ {
		err = w.f.Sync() // want "error from Sync is overwritten before being consulted"
	}
	logErr(err)
}

// --- clean ------------------------------------------------------------

func (w *wal) checked() error {
	if err := w.f.Sync(); err != nil {
		return err
	}
	return nil
}

func (w *wal) checkedThenReused() error {
	err := w.f.Sync()
	if err != nil {
		return err
	}
	err = w.idx.Sync()
	return err
}

func (w *wal) countedInMetric() {
	if err := w.f.Sync(); err != nil {
		w.errs++
	}
}

func (w *wal) loggedOnAllPaths(fast bool) {
	err := w.f.Sync()
	if fast {
		logErr(err)
		return
	}
	logErr(err)
}

func (w *wal) tupleChecked(r *record) error {
	if _, err := w.Append(r); err != nil {
		return err
	}
	return nil
}

func (w *wal) returnedDirectly() error {
	return w.f.Sync()
}

func (w *wal) allowedDrop() {
	//dartvet:allow errsink -- fixture: best-effort sync, failure handled by replay
	w.f.Sync()
}
