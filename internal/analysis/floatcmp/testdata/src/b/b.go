package b

import "math"

const eps = 1e-9

func rawEq(a, b float64) bool {
	return a == b // want "raw float64 == between computed values"
}

func rawNeq(a, b float64) bool {
	return a != b // want "raw float64 != between computed values"
}

func sentinelZero(a float64) bool {
	return a == 0 // exact sentinel against a constant is legal
}

func sentinelConst(a float64) bool {
	return a != eps // constant operand is legal
}

func absWithinEps(a, b float64) bool {
	return math.Abs(a-b) <= eps
}

func rawLess(a, b float64) bool {
	return a < b // want "raw float64 < without a tolerance term"
}

func rawGreaterEq(a, b float64) bool {
	return a >= b // want "raw float64 >= without a tolerance term"
}

func literalAdjusted(a, b float64) bool {
	return a < b+1e-9 // folded float literal counts as a tolerance
}

func namedTolerance(a, b, tol float64) bool {
	return a < b+tol
}

func scaledCompare(lhs, rhs, scale float64) bool {
	return lhs <= rhs+scale
}

// approxLE is a blessed epsilon helper: raw comparisons are its job.
func approxLE(a, b float64) bool {
	return a <= b
}

func intCompare(a, b int) bool {
	return a == b // non-float comparisons are out of scope
}

func float32Eq(a, b float32) bool {
	return a == b // want "raw float64 == between computed values"
}

func allowedExact(a, b float64) bool {
	return a == b //dartvet:allow floatcmp -- bit-identical memo key comparison
}
