package floatcmp_test

import (
	"testing"

	"dart/internal/analysis/analysistest"
	"dart/internal/analysis/floatcmp"
)

func TestFloatcmp(t *testing.T) {
	analysistest.Run(t, floatcmp.Analyzer, "testdata/src/b")
}
