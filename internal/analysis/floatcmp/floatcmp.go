// Package floatcmp guards the exactness of the MILP translation: raw
// floating-point comparisons between computed values silently break the
// big-M/epsilon reasoning of S*(AC), so float64 comparisons in the solver
// packages must go through a tolerance.
//
// The pass flags a binary comparison when both operands are float-typed and
// the comparison is "raw":
//
//   - == and != between two non-constant float expressions are always
//     flagged — strict equality of computed floats is the classic silent
//     breakage. Comparing against a compile-time constant (x == 0,
//     c == 1) stays legal: exact sentinel checks on unmodified inputs are
//     idiomatic and intentional.
//   - <, <=, >, >= are flagged only when neither side carries a tolerance:
//     no float constant folded anywhere into either operand (x < y+1e-9 is
//     fine), no identifier mentioning tol/eps/scale/bound, and no
//     math.Abs/math.Inf call. Epsilon-adjusted orderings keep their idiom;
//     a bare `a < b` between two computed floats does not.
//
// Functions whose name marks them as epsilon helpers (containing "approx",
// "tol", or "eps", case-insensitively) are blessed wholesale: they exist
// to centralize the raw comparisons everything else must route through.
// Intentional exact comparisons elsewhere carry a
// //dartvet:allow floatcmp -- <why exactness is wanted> directive.
package floatcmp

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"dart/internal/analysis"
)

// Analyzer is the floatcmp pass.
var Analyzer = &analysis.Analyzer{
	Name: "floatcmp",
	Doc:  "float64 comparisons must be tolerance-adjusted or routed through a blessed epsilon helper",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if !ok {
				return true
			}
			if blessedHelper(fd.Name.Name) || fd.Body == nil {
				return false
			}
			checkBody(pass, fd.Body)
			return false
		})
	}
	return nil
}

func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		b, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch b.Op {
		case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
		default:
			return true
		}
		if !isFloat(pass.TypeOf(b.X)) || !isFloat(pass.TypeOf(b.Y)) {
			return true
		}
		if isConst(pass, b.X) || isConst(pass, b.Y) {
			return true
		}
		switch b.Op {
		case token.EQL, token.NEQ:
			pass.Reportf(b.OpPos, "raw float64 %s between computed values; compare within a tolerance or route through an epsilon helper", b.Op)
		default:
			if hasToleranceTerm(pass, b.X) || hasToleranceTerm(pass, b.Y) {
				return true
			}
			pass.Reportf(b.OpPos, "raw float64 %s without a tolerance term; adjust one side by an epsilon", b.Op)
		}
		return true
	})
}

// blessedHelper reports whether the enclosing function is an epsilon
// helper, identified by name.
func blessedHelper(name string) bool {
	lower := strings.ToLower(name)
	for _, marker := range []string{"approx", "tol", "eps"} {
		if strings.Contains(lower, marker) {
			return true
		}
	}
	return false
}

// isFloat reports whether t is a floating-point type.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}

// isConst reports whether e is a compile-time constant expression.
func isConst(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.Value != nil
}

// hasToleranceTerm reports whether the expression visibly incorporates a
// tolerance: a folded float constant, a tolerance-named identifier, or a
// math.Abs/math.Inf call.
func hasToleranceTerm(pass *analysis.Pass, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case ast.Expr:
			if tv, ok := pass.TypesInfo.Types[x]; ok && tv.Value != nil && isFloat(tv.Type) {
				found = true
				return false
			}
		}
		switch x := n.(type) {
		case *ast.Ident:
			if toleranceName(x.Name) {
				found = true
			}
		case *ast.SelectorExpr:
			if toleranceName(x.Sel.Name) {
				found = true
			}
			if id, ok := x.X.(*ast.Ident); ok && id.Name == "math" {
				switch x.Sel.Name {
				case "Abs", "Inf":
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// toleranceName reports whether an identifier names a tolerance quantity.
func toleranceName(name string) bool {
	lower := strings.ToLower(name)
	for _, marker := range []string{"tol", "eps", "scale", "bound"} {
		if strings.Contains(lower, marker) {
			return true
		}
	}
	return false
}
