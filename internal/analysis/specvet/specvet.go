// Package specvet statically vets designer metadata: the constraint catalog
// and scheme-mapping information are checked against the declared relation
// scheme before any document is acquired. It is the spec-mode counterpart of
// dartvet's code-mode passes, and dartd runs the same checks at job
// admission so a malformed spec is rejected with diagnostics instead of
// failing mid-repair.
//
// Four diagnostic classes are reported:
//
//   - non-steady: a constraint violates Definition 6 — some attribute of
//     A(κ) ∪ J(κ) is a measure, so the MILP translation of Section 5 does
//     not apply. Refs carries the offending measure attributes
//     (SteadyViolations provenance).
//   - dangling-attr: a constraint, aggregation function, measure, scheme
//     mapping or classification references an attribute, relation or
//     pattern cell that does not exist.
//   - classification-conflict: a WHERE clause compares a classified
//     attribute to a label the classification never produces, so the
//     aggregation ranges over a provably empty tuple set.
//   - infeasible-pair: two ground-free constraints bound the same aggregate
//     combination incompatibly (e.g. = 5 and = 7), so no database can
//     satisfy both.
package specvet

import (
	"fmt"
	"sort"
	"strings"

	"dart/internal/aggrcons"
	"dart/internal/metadata"
	"dart/internal/relational"
)

// The diagnostic classes.
const (
	ClassNonSteady      = "non-steady"
	ClassDanglingAttr   = "dangling-attr"
	ClassClassification = "classification-conflict"
	ClassInfeasiblePair = "infeasible-pair"
)

// Diagnostic is one spec-vetting finding, machine-readable so dartd can
// return it in a rejection body.
type Diagnostic struct {
	// Class is one of the Class* constants.
	Class string `json:"class"`
	// Constraint names the offending constraint, when one is implicated.
	Constraint string `json:"constraint,omitempty"`
	// Message explains the finding.
	Message string `json:"message"`
	// Refs lists implicated attributes or constraints, when structured
	// provenance exists (e.g. the measure attributes breaking steadiness).
	Refs []string `json:"refs,omitempty"`
}

// String renders the diagnostic in the dartvet output style.
func (d Diagnostic) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "[%s]", d.Class)
	if d.Constraint != "" {
		fmt.Fprintf(&b, " %s:", d.Constraint)
	}
	b.WriteByte(' ')
	b.WriteString(d.Message)
	if len(d.Refs) > 0 {
		fmt.Fprintf(&b, " (%s)", strings.Join(d.Refs, ", "))
	}
	return b.String()
}

// Vet checks the metadata and returns all diagnostics in deterministic
// order: spec-mapping findings first, then per-constraint findings in
// catalog order, then cross-constraint findings.
func Vet(md *metadata.Metadata) []Diagnostic {
	if md.Schema == nil {
		return []Diagnostic{{Class: ClassDanglingAttr, Message: "metadata declares no relation"}}
	}
	var out []Diagnostic
	db := relational.NewDatabase()
	if _, err := db.AddRelation(md.Schema); err != nil {
		return []Diagnostic{{Class: ClassDanglingAttr, Message: err.Error()}}
	}
	for _, attr := range md.Measures {
		if err := db.DesignateMeasure(md.Schema.Name(), attr); err != nil {
			out = append(out, Diagnostic{
				Class:   ClassDanglingAttr,
				Message: fmt.Sprintf("measure %s.%s is not an attribute of the relation", md.Schema.Name(), attr),
				Refs:    []string{md.Schema.Name() + "." + attr},
			})
		}
	}
	out = append(out, mappingDiagnostics(md)...)
	cons := md.Constraints()
	for _, k := range cons {
		out = append(out, constraintDiagnostics(md, db, k)...)
	}
	out = append(out, infeasiblePairs(cons)...)
	return out
}

// mappingDiagnostics checks the scheme mapping and classification blocks for
// dangling references.
func mappingDiagnostics(md *metadata.Metadata) []Diagnostic {
	var out []Diagnostic
	headlines := map[string]bool{}
	for _, p := range md.Patterns {
		for _, c := range p.Cells {
			headlines[c.Headline] = true
		}
	}
	for _, attr := range sortedKeys(md.CellOf) {
		cell := md.CellOf[attr]
		if !md.Schema.HasAttr(attr) {
			out = append(out, Diagnostic{
				Class:   ClassDanglingAttr,
				Message: fmt.Sprintf("scheme mapping maps unknown attribute %q from cell %q", attr, cell),
				Refs:    []string{md.Schema.Name() + "." + attr},
			})
		}
		if len(md.Patterns) > 0 && !headlines[cell] {
			out = append(out, Diagnostic{
				Class:   ClassDanglingAttr,
				Message: fmt.Sprintf("scheme mapping for attribute %q references unknown pattern cell %q", attr, cell),
				Refs:    []string{cell},
			})
		}
	}
	for _, attr := range sortedKeys(md.Classifications) {
		cls := md.Classifications[attr]
		if !md.Schema.HasAttr(attr) {
			out = append(out, Diagnostic{
				Class:   ClassDanglingAttr,
				Message: fmt.Sprintf("classification targets unknown attribute %q", attr),
				Refs:    []string{md.Schema.Name() + "." + attr},
			})
		}
		if cls != nil && cls.FromHeadline != "" && len(md.Patterns) > 0 && !headlines[cls.FromHeadline] {
			out = append(out, Diagnostic{
				Class:   ClassDanglingAttr,
				Message: fmt.Sprintf("classification of %q reads unknown pattern cell %q", attr, cls.FromHeadline),
				Refs:    []string{cls.FromHeadline},
			})
		}
	}
	return out
}

// constraintDiagnostics checks one constraint: structural validity, WHERE
// and sum-expression attribute references, steadiness, and classification
// conflicts.
func constraintDiagnostics(md *metadata.Metadata, db *relational.Database, k *aggrcons.Constraint) []Diagnostic {
	if err := k.Validate(db); err != nil {
		return []Diagnostic{{Class: ClassDanglingAttr, Constraint: k.Name, Message: err.Error()}}
	}
	var out []Diagnostic
	for _, call := range k.Calls {
		f := call.Func
		s := db.Relation(f.Relation).Schema()
		for _, a := range f.WhereAttrNames() {
			if !s.HasAttr(a) {
				out = append(out, Diagnostic{
					Class:      ClassDanglingAttr,
					Constraint: k.Name,
					Message:    fmt.Sprintf("WHERE of %s references unknown attribute %q of %s", f.Name, a, f.Relation),
					Refs:       []string{f.Relation + "." + a},
				})
			}
		}
		if f.Expr != nil {
			for _, a := range dedupe(f.Expr.Attrs(nil)) {
				if !s.HasAttr(a) {
					out = append(out, Diagnostic{
						Class:      ClassDanglingAttr,
						Constraint: k.Name,
						Message:    fmt.Sprintf("sum expression of %s references unknown attribute %q of %s", f.Name, a, f.Relation),
						Refs:       []string{f.Relation + "." + a},
					})
				}
			}
		}
	}
	if refs := k.SteadyViolations(db); len(refs) > 0 {
		strs := make([]string, len(refs))
		for i, r := range refs {
			strs[i] = r.Relation + "." + r.Attribute
		}
		out = append(out, Diagnostic{
			Class:      ClassNonSteady,
			Constraint: k.Name,
			Message:    "constraint is not steady (Definition 6): its WHERE clauses or join variables touch measure attributes, so the MILP translation does not apply",
			Refs:       strs,
		})
	}
	out = append(out, classificationConflicts(md, k)...)
	return out
}

// classificationConflicts flags WHERE comparisons of a classified attribute
// against a label its classification never produces. The label may be a
// WHERE constant or a parameter bound to a constant call argument.
func classificationConflicts(md *metadata.Metadata, k *aggrcons.Constraint) []Diagnostic {
	var out []Diagnostic
	for _, call := range k.Calls {
		f := call.Func
		aggrcons.WalkCmps(f.Where, func(c aggrcons.Cmp) {
			if c.Op != aggrcons.CmpEQ && c.Op != aggrcons.CmpNE {
				return
			}
			for _, side := range [][2]aggrcons.Operand{{c.L, c.R}, {c.R, c.L}} {
				attr, ok := side[0].IsAttr()
				if !ok {
					continue
				}
				cls := md.Classifications[attr]
				if cls == nil {
					continue
				}
				label, ok := resolveLabel(side[1], call)
				if !ok {
					continue
				}
				if classProduced(cls.Classes, label) {
					continue
				}
				out = append(out, Diagnostic{
					Class:      ClassClassification,
					Constraint: k.Name,
					Message: fmt.Sprintf("WHERE of %s compares classified attribute %q to label %q, which the classification of %q never produces — the aggregate is always empty",
						f.Name, attr, label, attr),
					Refs: []string{f.Relation + "." + attr, label},
				})
			}
		})
	}
	return out
}

// resolveLabel resolves an operand to a compile-time string label: a WHERE
// constant directly, or a parameter whose call argument is a constant.
func resolveLabel(o aggrcons.Operand, call aggrcons.AggCall) (string, bool) {
	if v, ok := o.IsConst(); ok {
		if v.Kind() == relational.DomainString {
			return v.AsString(), true
		}
		return "", false
	}
	if i, ok := o.IsParam(); ok && i >= 0 && i < len(call.Args) {
		if v, ok := call.Args[i].IsConst(); ok && v.Kind() == relational.DomainString {
			return v.AsString(), true
		}
	}
	return "", false
}

func classProduced(classes map[string]string, label string) bool {
	for _, c := range classes {
		if c == label {
			return true
		}
	}
	return false
}

// infeasiblePairs flags pairs of ground-free constraints (every call
// argument a constant) that bound the same aggregate combination
// incompatibly: no database can satisfy both, so the repair MILP is
// infeasible before any document is read.
func infeasiblePairs(cons []*aggrcons.Constraint) []Diagnostic {
	type entry struct {
		k   *aggrcons.Constraint
		sig string
	}
	bySig := map[string][]entry{}
	var sigs []string
	for _, k := range cons {
		sig, ok := groundFreeSignature(k)
		if !ok {
			continue
		}
		if _, seen := bySig[sig]; !seen {
			sigs = append(sigs, sig)
		}
		bySig[sig] = append(bySig[sig], entry{k, sig})
	}
	var out []Diagnostic
	for _, sig := range sigs {
		es := bySig[sig]
		for i := 0; i < len(es); i++ {
			for j := i + 1; j < len(es); j++ {
				a, b := es[i].k, es[j].k
				if reason, bad := incompatibleBounds(a.Rel, a.K, b.Rel, b.K); bad {
					out = append(out, Diagnostic{
						Class:      ClassInfeasiblePair,
						Constraint: a.Name,
						Message: fmt.Sprintf("constraints %s and %s bound the same aggregate combination incompatibly (%s)",
							a.Name, b.Name, reason),
						Refs: []string{a.Name, b.Name},
					})
				}
			}
		}
	}
	return out
}

// groundFreeSignature canonicalises the call sum of a constraint whose
// calls carry no variables: a sorted multiset of coeff|func(args) parts.
// Constraints with any variable or wildcard argument return ok=false.
func groundFreeSignature(k *aggrcons.Constraint) (string, bool) {
	if len(k.Calls) == 0 {
		return "", false
	}
	parts := make([]string, 0, len(k.Calls))
	for _, call := range k.Calls {
		var b strings.Builder
		fmt.Fprintf(&b, "%g|%s(", call.Coeff, call.Func.Name)
		for i, a := range call.Args {
			v, ok := a.IsConst()
			if !ok {
				return "", false
			}
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%s;%d", v.String(), int(v.Kind()))
		}
		b.WriteByte(')')
		parts = append(parts, b.String())
	}
	sort.Strings(parts)
	return strings.Join(parts, "+"), true
}

// incompatibleBounds decides whether two Rel/K bounds on the same quantity
// contradict each other. boundsTol absorbs float formatting noise in K.
const boundsTol = 1e-9

func incompatibleBounds(r1 aggrcons.Rel, k1 float64, r2 aggrcons.Rel, k2 float64) (string, bool) {
	// Normalise so EQ sorts first, then GE before LE.
	if rank(r1) > rank(r2) {
		r1, r2, k1, k2 = r2, r1, k2, k1
	}
	switch {
	case r1 == aggrcons.EQ && r2 == aggrcons.EQ:
		if k1-k2 > boundsTol || k2-k1 > boundsTol {
			return fmt.Sprintf("= %g vs = %g", k1, k2), true
		}
	case r1 == aggrcons.EQ && r2 == aggrcons.LE:
		if k1 > k2+boundsTol {
			return fmt.Sprintf("= %g vs <= %g", k1, k2), true
		}
	case r1 == aggrcons.EQ && r2 == aggrcons.GE:
		if k1 < k2-boundsTol {
			return fmt.Sprintf("= %g vs >= %g", k1, k2), true
		}
	case r1 == aggrcons.GE && r2 == aggrcons.LE:
		if k1 > k2+boundsTol {
			return fmt.Sprintf(">= %g vs <= %g", k1, k2), true
		}
	}
	return "", false
}

func rank(r aggrcons.Rel) int {
	switch r {
	case aggrcons.EQ:
		return 0
	case aggrcons.GE:
		return 1
	default:
		return 2
	}
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func dedupe(in []string) []string {
	seen := make(map[string]bool, len(in))
	out := in[:0]
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}
