package specvet_test

import (
	"strings"
	"testing"

	"dart/internal/analysis/specvet"
	"dart/internal/metadata"
	"dart/internal/scenario"
)

// parse builds metadata around a constraints block, using a small fixed
// scheme: R(K: S, Kind: S, V: Z) with measure V, Kind classified from K.
func parse(t *testing.T, constraints string) *metadata.Metadata {
	t.Helper()
	src := `title vet fixture
domain D: 'a', 'b'

pattern P:
  cell K: domain D
  cell V: Integer

relation R(K: S, Kind: S, V: Z)
measure R.V

map K from cell K
map V from cell V

classify Kind from K:
  'a' -> 'x'
  'b' -> 'y'

constraints:
` + constraints + `
end
`
	md, err := metadata.Parse(src)
	if err != nil {
		t.Fatalf("fixture metadata does not parse: %v", err)
	}
	return md
}

func TestVetDiagnosticClasses(t *testing.T) {
	cases := []struct {
		name        string
		constraints string
		wantClass   string // "" means expect no diagnostics
		wantSubstr  string
		wantRef     string
	}{
		{
			name: "clean",
			constraints: `
  func f(p) := SELECT sum(V) FROM R WHERE K = p
  constraint C: R(x, _, _) ==> f(x) >= 0`,
		},
		{
			name: "non-steady where touches measure",
			constraints: `
  func f(p) := SELECT sum(V) FROM R WHERE V = p
  constraint C: R(_, _, v) ==> f(v) <= 10`,
			wantClass:  specvet.ClassNonSteady,
			wantSubstr: "not steady",
			wantRef:    "R.V",
		},
		{
			name: "non-steady join variable on measure",
			constraints: `
  func f(p) := SELECT sum(V) FROM R WHERE K = p
  constraint C: R(x, _, y), R(_, x, y) ==> f(x) <= 10`,
			wantClass: specvet.ClassNonSteady,
			wantRef:   "R.V",
		},
		{
			name: "dangling attribute in WHERE",
			constraints: `
  func f(p) := SELECT sum(V) FROM R WHERE Missing = p
  constraint C: R(x, _, _) ==> f(x) = 0`,
			wantClass:  specvet.ClassDanglingAttr,
			wantSubstr: `unknown attribute "Missing"`,
			wantRef:    "R.Missing",
		},
		{
			name: "dangling attribute in sum expression",
			constraints: `
  func f(p) := SELECT sum(Ghost) FROM R WHERE K = p
  constraint C: R(x, _, _) ==> f(x) = 0`,
			wantClass:  specvet.ClassDanglingAttr,
			wantSubstr: "sum expression",
			wantRef:    "R.Ghost",
		},
		{
			name: "classification conflict via constant label",
			constraints: `
  func f(p) := SELECT sum(V) FROM R WHERE Kind = 'zzz' AND K = p
  constraint C: R(x, _, _) ==> f(x) = 0`,
			wantClass:  specvet.ClassClassification,
			wantSubstr: `label "zzz"`,
			wantRef:    "R.Kind",
		},
		{
			name: "classification conflict via parameter label",
			constraints: `
  func f(p) := SELECT sum(V) FROM R WHERE Kind = p
  constraint C: R(x, _, _) ==> f('nope') = 0`,
			wantClass:  specvet.ClassClassification,
			wantSubstr: `label "nope"`,
		},
		{
			name: "produced labels do not conflict",
			constraints: `
  func f(p) := SELECT sum(V) FROM R WHERE Kind = 'x' AND K = p
  constraint C: R(x, _, _) ==> f(x) = 0`,
		},
		{
			name: "infeasible equal pair",
			constraints: `
  func f(p) := SELECT sum(V) FROM R WHERE K = p
  constraint A: R(x, _, _) ==> f('a') = 5
  constraint B: R(x, _, _) ==> f('a') = 7`,
			wantClass:  specvet.ClassInfeasiblePair,
			wantSubstr: "= 5 vs = 7",
			wantRef:    "B",
		},
		{
			name: "infeasible bound pair",
			constraints: `
  func f(p) := SELECT sum(V) FROM R WHERE K = p
  constraint Low: R(x, _, _) ==> f('a') <= 3
  constraint High: R(x, _, _) ==> f('a') >= 8`,
			wantClass:  specvet.ClassInfeasiblePair,
			wantSubstr: ">= 8 vs <= 3",
		},
		{
			name: "compatible bound pair",
			constraints: `
  func f(p) := SELECT sum(V) FROM R WHERE K = p
  constraint Low: R(x, _, _) ==> f('a') >= 3
  constraint High: R(x, _, _) ==> f('a') <= 8`,
		},
		{
			name: "grounded constraints never pair",
			constraints: `
  func f(p) := SELECT sum(V) FROM R WHERE K = p
  constraint A: R(x, _, _) ==> f(x) = 5
  constraint B: R(x, _, _) ==> f(x) = 7`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			md := parse(t, tc.constraints)
			diags := specvet.Vet(md)
			if tc.wantClass == "" {
				if len(diags) != 0 {
					t.Fatalf("want no diagnostics, got %v", diags)
				}
				return
			}
			if len(diags) == 0 {
				t.Fatalf("want a %s diagnostic, got none", tc.wantClass)
			}
			var hit *specvet.Diagnostic
			for i := range diags {
				if diags[i].Class == tc.wantClass {
					hit = &diags[i]
					break
				}
			}
			if hit == nil {
				t.Fatalf("no %s diagnostic in %v", tc.wantClass, diags)
			}
			if tc.wantSubstr != "" && !strings.Contains(hit.String(), tc.wantSubstr) {
				t.Errorf("diagnostic %q does not mention %q", hit, tc.wantSubstr)
			}
			if tc.wantRef != "" {
				found := false
				for _, r := range hit.Refs {
					if r == tc.wantRef {
						found = true
					}
				}
				if !found {
					t.Errorf("diagnostic refs %v do not include %q", hit.Refs, tc.wantRef)
				}
			}
		})
	}
}

// Hand-assembled metadata exercises the dangling classes Parse would have
// rejected before Vet ever ran.
func TestVetDanglingMappings(t *testing.T) {
	md := parse(t, `
  func f(p) := SELECT sum(V) FROM R WHERE K = p
  constraint C: R(x, _, _) ==> f(x) >= 0`)

	md.Measures = append(md.Measures, "NoSuch")
	md.CellOf["Phantom"] = "NoCell"
	md.Classifications["Ghost"] = md.Classifications["Kind"]

	diags := specvet.Vet(md)
	want := map[string]bool{
		"measure R.NoSuch is not an attribute of the relation":                            false,
		`scheme mapping maps unknown attribute "Phantom" from cell "NoCell"`:              false,
		`scheme mapping for attribute "Phantom" references unknown pattern cell "NoCell"`: false,
		`classification targets unknown attribute "Ghost"`:                                false,
	}
	for _, d := range diags {
		if d.Class != specvet.ClassDanglingAttr {
			t.Errorf("unexpected class %s: %s", d.Class, d)
		}
		for w := range want {
			if strings.Contains(d.Message, w) {
				want[w] = true
			}
		}
	}
	for w, seen := range want {
		if !seen {
			t.Errorf("missing dangling diagnostic %q in %v", w, diags)
		}
	}
}

func TestVetNoRelation(t *testing.T) {
	diags := specvet.Vet(&metadata.Metadata{})
	if len(diags) != 1 || diags[0].Class != specvet.ClassDanglingAttr {
		t.Fatalf("want one dangling-attr diagnostic, got %v", diags)
	}
}

// The shipped scenarios are the calibration set: all of them must vet
// clean, or dartd would reject its own examples at admission.
func TestBuiltinScenariosVetClean(t *testing.T) {
	for _, tc := range []struct {
		name string
		get  func() (*metadata.Metadata, error)
	}{
		{"cashbudget", scenario.CashBudget},
		{"catalog", scenario.Catalog},
		{"balancesheet", scenario.BalanceSheet},
	} {
		t.Run(tc.name, func(t *testing.T) {
			md, err := tc.get()
			if err != nil {
				t.Fatal(err)
			}
			if diags := specvet.Vet(md); len(diags) != 0 {
				t.Errorf("scenario %s does not vet clean: %v", tc.name, diags)
			}
		})
	}
}
