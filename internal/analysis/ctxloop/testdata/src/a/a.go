package a

import "context"

// MILPOptions mirrors the solver options struct that carries the Cancel
// hook; passing it to a callee delegates the polling obligation.
type MILPOptions struct {
	Cancel func() error
}

func work()                             {}
func handle(ctx context.Context, v int) {}
func solve(opts MILPOptions) error      { _ = opts; return nil }

func infiniteNoPoll() {
	for { // want "potentially unbounded loop does not poll cancellation"
		work()
	}
}

func infinitePollsErr(ctx context.Context) {
	for {
		if ctx.Err() != nil {
			return
		}
		work()
	}
}

func infiniteSelectDone(ctx context.Context, ch chan int) {
	for {
		select {
		case <-ctx.Done():
			return
		case v := <-ch:
			_ = v
		}
	}
}

func whileNoPoll(n int) {
	for n > 0 { // want "potentially unbounded loop does not poll cancellation"
		n--
	}
}

func whileAllowed(n int) {
	//dartvet:allow ctxloop -- n strictly decreases every iteration
	for n > 0 {
		n--
	}
}

func boundedThreeClause() {
	for i := 0; i < 10; i++ {
		work()
	}
}

func noCondNoPoll(i int) {
	for ; ; i++ { // want "potentially unbounded loop does not poll cancellation"
		work()
	}
}

func rangeChanNoPoll(ch chan int) {
	for v := range ch { // want "range over a channel does not poll cancellation"
		_ = v
	}
}

func rangeChanDelegates(ctx context.Context, ch chan int) {
	for v := range ch {
		handle(ctx, v)
	}
}

func rangeSliceOK(xs []int) {
	for _, v := range xs {
		_ = v
	}
}

func cancelHook(o MILPOptions) {
	for {
		if err := o.Cancel(); err != nil {
			return
		}
		work()
	}
}

func delegatesOptions(o MILPOptions) {
	for {
		if err := solve(o); err != nil {
			return
		}
	}
}
