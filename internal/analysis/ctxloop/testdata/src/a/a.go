package a

import "context"

// MILPOptions mirrors the solver options struct that carries the Cancel
// hook; passing it to a callee delegates the polling obligation.
type MILPOptions struct {
	Cancel func() error
}

func work()                             {}
func handle(ctx context.Context, v int) {}
func solve(opts MILPOptions) error      { _ = opts; return nil }

func infiniteNoPoll() {
	for { // want "potentially unbounded loop does not poll cancellation"
		work()
	}
}

func infinitePollsErr(ctx context.Context) {
	for {
		if ctx.Err() != nil {
			return
		}
		work()
	}
}

func infiniteSelectDone(ctx context.Context, ch chan int) {
	for {
		select {
		case <-ctx.Done():
			return
		case v := <-ch:
			_ = v
		}
	}
}

func whileNoPoll(n int) {
	for n > 0 { // want "potentially unbounded loop does not poll cancellation"
		n--
	}
}

func whileAllowed(n int) {
	//dartvet:allow ctxloop -- n strictly decreases every iteration
	for n > 0 {
		n--
	}
}

func boundedThreeClause() {
	for i := 0; i < 10; i++ {
		work()
	}
}

func noCondNoPoll(i int) {
	for ; ; i++ { // want "potentially unbounded loop does not poll cancellation"
		work()
	}
}

func rangeChanNoPoll(ch chan int) {
	for v := range ch { // want "range over a channel does not poll cancellation"
		_ = v
	}
}

func rangeChanDelegates(ctx context.Context, ch chan int) {
	for v := range ch {
		handle(ctx, v)
	}
}

func rangeSliceOK(xs []int) {
	for _, v := range xs {
		_ = v
	}
}

func cancelHook(o MILPOptions) {
	for {
		if err := o.Cancel(); err != nil {
			return
		}
		work()
	}
}

func delegatesOptions(o MILPOptions) {
	for {
		if err := solve(o); err != nil {
			return
		}
	}
}

// problem mirrors the parallel branch-and-bound problem description: a
// wrapper struct carrying the options (and so the Cancel hook). Passing it
// to a callee delegates polling, exactly like passing the options directly.
type problem struct {
	opt MILPOptions
}

// frontier mirrors the shared work queue; next polls p.opt.Cancel under the
// queue lock before handing out a node.
type frontier struct{}

func (f *frontier) next(p *problem) *int { _ = p; return nil }

// workerFrontierLoop is the parallel solver's worker shape: an unbounded
// dequeue loop whose only cancellation participation is handing the
// problem wrapper to the frontier. Must pass.
func workerFrontierLoop(f *frontier, p *problem) {
	for {
		node := f.next(p)
		if node == nil {
			return
		}
		work()
	}
}

// plainWrapper has no Cancel hook and no options field: passing it
// delegates nothing, so the loop is still flagged.
type plainWrapper struct {
	n int
}

func consume(w *plainWrapper) {}

func wrapperWithoutHook(w *plainWrapper) {
	for { // want "potentially unbounded loop does not poll cancellation"
		consume(w)
	}
}

// hookWrapper carries a Cancel field directly (not via MILPOptions); the
// obligation composes the same way.
type hookWrapper struct {
	Cancel func() error
}

func drive(h *hookWrapper) error { return nil }

func wrapperWithHookField(h *hookWrapper) {
	for {
		if err := drive(h); err != nil {
			return
		}
	}
}
