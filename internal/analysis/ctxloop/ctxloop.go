// Package ctxloop enforces the PR 1 cancellation contract: any loop that
// can iterate unboundedly must poll the cooperative-cancellation machinery
// so a job deadline or server drain can stop it.
//
// A loop is considered potentially unbounded when it has no condition
// (`for { ... }`, `for i := 0; ; i++ { ... }`), when it is a bare
// while-loop (`for cond { ... }` with no init/post clause), or when it
// ranges over a channel. Such a loop passes the check when its body
// observably participates in cancellation by any of:
//
//   - calling Err or Done on a context.Context (ctx.Err() poll, select on
//     ctx.Done()),
//   - referencing a Cancel field or method (the MILPOptions.Cancel hook),
//   - passing a context.Context, a milp.MILPOptions value, or a struct
//     carrying one (a MILPOptions field or a Cancel hook field, like the
//     solver's shared problem description) to a callee, which delegates
//     the polling obligation downstream.
//
// Loops that are bounded for non-syntactic reasons carry a
// //dartvet:allow ctxloop -- <why it terminates> directive.
package ctxloop

import (
	"go/ast"
	"go/types"

	"dart/internal/analysis"
)

// Analyzer is the ctxloop pass.
var Analyzer = &analysis.Analyzer{
	Name: "ctxloop",
	Doc:  "potentially unbounded loops must poll ctx.Err()/Done(), a Cancel hook, or delegate a context to a callee",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch l := n.(type) {
			case *ast.ForStmt:
				if unboundedFor(l) && !polls(pass, l.Body) {
					pass.Reportf(l.For, "potentially unbounded loop does not poll cancellation (ctx.Err/Done, a Cancel hook, or a ctx-taking callee)")
				}
			case *ast.RangeStmt:
				if rangesOverChannel(pass, l) && !polls(pass, l.Body) {
					pass.Reportf(l.For, "range over a channel does not poll cancellation (ctx.Err/Done, a Cancel hook, or a ctx-taking callee)")
				}
			}
			return true
		})
	}
	return nil
}

// unboundedFor reports whether the for statement is syntactically
// unbounded: no condition at all, or a bare `for cond` while-loop whose
// progress is invisible to the compiler.
func unboundedFor(l *ast.ForStmt) bool {
	if l.Cond == nil {
		return true
	}
	return l.Init == nil && l.Post == nil
}

// rangesOverChannel reports whether the range statement iterates a channel
// (unbounded until the sender closes it).
func rangesOverChannel(pass *analysis.Pass, l *ast.RangeStmt) bool {
	t := pass.TypeOf(l.X)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// polls reports whether the loop body participates in cancellation.
func polls(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch e := n.(type) {
		case *ast.SelectorExpr:
			switch e.Sel.Name {
			case "Err", "Done":
				if isContext(pass.TypeOf(e.X)) {
					found = true
				}
			case "Cancel":
				// The MILPOptions.Cancel hook (or any analogous field):
				// reading, assigning, or invoking it all count.
				found = true
			}
		case *ast.CallExpr:
			for _, arg := range e.Args {
				if delegatesCancellation(pass.TypeOf(arg)) {
					found = true
					break
				}
			}
		}
		return !found
	})
	return found
}

// isContext reports whether t is context.Context.
func isContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// delegatesCancellation reports whether passing a value of type t hands the
// polling obligation to the callee: a context, the options struct that
// carries the Cancel hook, or a wrapper struct embedding either (the
// obligation composes — whoever holds the hook can poll it).
func delegatesCancellation(t types.Type) bool {
	if t == nil {
		return false
	}
	if isContext(t) {
		return true
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	if named.Obj() != nil && named.Obj().Name() == "MILPOptions" {
		return true
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() == "Cancel" {
			return true
		}
		if fn, ok := f.Type().(*types.Named); ok && fn.Obj() != nil && fn.Obj().Name() == "MILPOptions" {
			return true
		}
	}
	return false
}
