package ctxloop_test

import (
	"testing"

	"dart/internal/analysis/analysistest"
	"dart/internal/analysis/ctxloop"
)

func TestCtxloop(t *testing.T) {
	analysistest.Run(t, ctxloop.Analyzer, "testdata/src/a")
}
