package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

func TestLoadTypeChecksModulePackages(t *testing.T) {
	pkgs, err := Load("../..", "./internal/milp", "./internal/service")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("got %d packages, want 2", len(pkgs))
	}
	byPath := map[string]*Package{}
	for _, p := range pkgs {
		byPath[p.ImportPath] = p
	}
	milp := byPath["dart/internal/milp"]
	if milp == nil {
		t.Fatalf("dart/internal/milp not loaded; got %v", byPath)
	}
	if milp.Types.Scope().Lookup("Solve") == nil {
		t.Error("milp.Solve not in package scope")
	}
	// Type info must resolve expression types, including ones depending on
	// imported packages (the whole point of export-data loading).
	svc := byPath["dart/internal/service"]
	if svc == nil {
		t.Fatal("dart/internal/service not loaded")
	}
	typed := 0
	for _, f := range svc.Syntax {
		ast.Inspect(f, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok && svc.TypesInfo.Types[e].Type != nil {
				typed++
			}
			return true
		})
	}
	if typed == 0 {
		t.Error("no typed expressions recorded for dart/internal/service")
	}
}

func TestCollectDirectives(t *testing.T) {
	const src = `package p

//dartvet:allow ctxloop -- loop bounded by queue close
func a() {}

//dartvet:allow ctxloop, floatcmp -- two passes, one reason
func b() {}

//dartvet:allow lockcheck
func noReason() {}

//dartvet:allow floatcmp --
func emptyReason() {}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	allowed := collectDirectives(fset, []*ast.File{f})

	at := func(line int) map[string]bool {
		return allowed[token.Position{Filename: "x.go", Line: line}]
	}
	if !at(3)["ctxloop"] {
		t.Error("single-pass directive not recorded")
	}
	if !at(6)["ctxloop"] || !at(6)["floatcmp"] {
		t.Errorf("comma-separated directive not recorded: %v", at(6))
	}
	// Directives without a trailing reason after -- must be ignored: the
	// reason is the audit trail that makes a suppression reviewable.
	if at(9) != nil {
		t.Errorf("directive without -- reason should be ignored, got %v", at(9))
	}
	if at(12) != nil {
		t.Errorf("directive with empty reason should be ignored, got %v", at(12))
	}
}
