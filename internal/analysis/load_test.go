package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func TestLoadTypeChecksModulePackages(t *testing.T) {
	pkgs, err := Load("../..", "./internal/milp", "./internal/service")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("got %d packages, want 2", len(pkgs))
	}
	byPath := map[string]*Package{}
	for _, p := range pkgs {
		byPath[p.ImportPath] = p
	}
	milp := byPath["dart/internal/milp"]
	if milp == nil {
		t.Fatalf("dart/internal/milp not loaded; got %v", byPath)
	}
	if milp.Types.Scope().Lookup("Solve") == nil {
		t.Error("milp.Solve not in package scope")
	}
	// Type info must resolve expression types, including ones depending on
	// imported packages (the whole point of export-data loading).
	svc := byPath["dart/internal/service"]
	if svc == nil {
		t.Fatal("dart/internal/service not loaded")
	}
	typed := 0
	for _, f := range svc.Syntax {
		ast.Inspect(f, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok && svc.TypesInfo.Types[e].Type != nil {
				typed++
			}
			return true
		})
	}
	if typed == 0 {
		t.Error("no typed expressions recorded for dart/internal/service")
	}
}

func TestCollectDirectives(t *testing.T) {
	const src = `package p

//dartvet:allow ctxloop -- loop bounded by queue close
func a() {}

//dartvet:allow ctxloop, floatcmp -- two passes, one reason
func b() {}

//dartvet:allow lockcheck
func noReason() {}

//dartvet:allow floatcmp --
func emptyReason() {}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	allowed := collectDirectives(fset, []*ast.File{f})

	at := func(line int) map[string]bool {
		d := allowed[token.Position{Filename: "x.go", Line: line}]
		if d == nil {
			return nil
		}
		return d.names
	}
	if !at(3)["ctxloop"] {
		t.Error("single-pass directive not recorded")
	}
	if !at(6)["ctxloop"] || !at(6)["floatcmp"] {
		t.Errorf("comma-separated directive not recorded: %v", at(6))
	}
	// Directives without a trailing reason after -- must be ignored: the
	// reason is the audit trail that makes a suppression reviewable.
	if at(9) != nil {
		t.Errorf("directive without -- reason should be ignored, got %v", at(9))
	}
	if at(12) != nil {
		t.Errorf("directive with empty reason should be ignored, got %v", at(12))
	}
}

func TestStaleAllowAudit(t *testing.T) {
	const src = `package p

//dartvet:allow ctxloop -- justified: suppression exercised below
func used() {}

//dartvet:allow lockcheck -- obsolete since the path-sensitive rewrite
func unused() {}

//dartvet:allow notrun -- names an analyzer outside the run set
func otherPass() {}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	allowed := collectDirectives(fset, []*ast.File{f})

	var usedPos token.Pos
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "used" {
			usedPos = fd.Pos()
		}
	}
	if !allowed.allows(fset, "ctxloop", usedPos) {
		t.Fatal("directive on the line above did not suppress")
	}

	findings := allowed.stale(fset, map[string]bool{"ctxloop": true, "lockcheck": true})
	if len(findings) != 1 {
		t.Fatalf("got %d stale findings, want 1: %v", len(findings), findings)
	}
	got := findings[0]
	if got.Analyzer != StaleAllowName {
		t.Errorf("analyzer %q, want %q", got.Analyzer, StaleAllowName)
	}
	if got.Position.Line != 6 {
		t.Errorf("stale finding at line %d, want 6 (the unused directive)", got.Position.Line)
	}
	if want := "suppresses no lockcheck finding"; !strings.Contains(got.Message, want) {
		t.Errorf("message %q does not mention %q", got.Message, want)
	}
}
