// Package analysis is the repository's static-analysis layer: a minimal,
// stdlib-only mirror of the golang.org/x/tools/go/analysis framework plus
// the package loader and driver the dartvet multichecker runs on.
//
// The repository builds with the standard library only, so instead of
// depending on x/tools this package keeps the same Analyzer/Pass/Diagnostic
// shape (a pass receives parsed, type-checked syntax and reports positioned
// diagnostics) on top of go/ast, go/types and export data produced by the
// go command. Passes written against it read like x/tools passes and could
// be ported verbatim if the dependency ever becomes available.
//
// Suppression: a finding may be silenced with a directive comment on the
// flagged line or the line above it:
//
//	//dartvet:allow ctxloop -- eviction loop, bounded by c.cap
//
// Directives name one or more comma-separated passes and must carry a
// reason after "--"; a bare allow-all is deliberately not supported.
//
// Suppressions are audited: a directive entry naming an analyzer that
// ran on the package but suppressed nothing is itself reported under
// the pseudo-analyzer "staleallow" with a delete hint, so allows cannot
// quietly outlive the finding that justified them.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static-analysis pass.
type Analyzer struct {
	// Name identifies the pass in diagnostics and directives.
	Name string
	// Doc states the invariant the pass enforces.
	Doc string
	// Run applies the pass to one package.
	Run func(*Pass) error
}

// Pass is the interface between the driver and one analyzer run on one
// package: parsed files, type information, and a report sink.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// TypeOf returns the type of e, or nil when unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if tv, ok := p.TypesInfo.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// Diagnostic is one finding, positioned in the pass's file set.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Finding is a resolved diagnostic: the emitting analyzer plus a concrete
// file position, ready for printing or JSON encoding.
type Finding struct {
	Analyzer string         `json:"analyzer"`
	Position token.Position `json:"position"`
	Message  string         `json:"message"`
}

// String renders the finding in the go vet style.
func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Position, f.Analyzer, f.Message)
}

// directivePrefix opens a suppression comment.
const directivePrefix = "//dartvet:allow"

// StaleAllowName is the pseudo-analyzer under which unused suppression
// directives are reported.
const StaleAllowName = "staleallow"

// directive is one //dartvet:allow comment: its position, the analyzer
// names it lists, and which of those actually suppressed a finding.
type directive struct {
	pos   token.Pos
	names map[string]bool
	used  map[string]bool
}

// allowedLines maps (file, line) to the directive on that line. A
// directive suppresses findings on its own line and on the line
// directly below it.
type allowedLines map[token.Position]*directive

func (a allowedLines) allows(fset *token.FileSet, name string, pos token.Pos) bool {
	p := fset.Position(pos)
	for _, line := range []int{p.Line, p.Line - 1} {
		key := token.Position{Filename: p.Filename, Line: line}
		if d := a[key]; d != nil && d.names[name] {
			d.used[name] = true
			return true
		}
	}
	return false
}

// stale returns findings for directive entries that name an analyzer in
// ran but never suppressed one of its diagnostics.
func (a allowedLines) stale(fset *token.FileSet, ran map[string]bool) []Finding {
	var out []Finding
	for _, d := range a {
		var names []string
		for name := range d.names {
			if ran[name] && !d.used[name] {
				names = append(names, name)
			}
		}
		sort.Strings(names)
		for _, name := range names {
			out = append(out, Finding{
				Analyzer: StaleAllowName,
				Position: fset.Position(d.pos),
				Message:  fmt.Sprintf("directive suppresses no %s finding; delete it (or drop %s from its list)", name, name),
			})
		}
	}
	return out
}

// collectDirectives scans a file's comments for suppression directives.
func collectDirectives(fset *token.FileSet, files []*ast.File) allowedLines {
	out := allowedLines{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, directivePrefix) {
					continue
				}
				rest := strings.TrimPrefix(text, directivePrefix)
				// The reason after "--" is mandatory but not interpreted.
				names, reason, ok := strings.Cut(rest, "--")
				if !ok || strings.TrimSpace(reason) == "" {
					continue
				}
				p := fset.Position(c.Pos())
				key := token.Position{Filename: p.Filename, Line: p.Line}
				d := out[key]
				if d == nil {
					d = &directive{pos: c.Pos(), names: map[string]bool{}, used: map[string]bool{}}
					out[key] = d
				}
				for _, n := range strings.Split(names, ",") {
					if n = strings.TrimSpace(n); n != "" {
						d.names[n] = true
					}
				}
			}
		}
	}
	return out
}

// Run applies each analyzer to each package and returns the surviving
// findings sorted by position. Directive-suppressed diagnostics are
// dropped.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	var out []Finding
	for _, pkg := range pkgs {
		allowed := collectDirectives(pkg.Fset, pkg.Syntax)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Syntax,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
			}
			pass.Report = func(d Diagnostic) {
				if allowed.allows(pkg.Fset, a.Name, d.Pos) {
					return
				}
				out = append(out, Finding{
					Analyzer: a.Name,
					Position: pkg.Fset.Position(d.Pos),
					Message:  d.Message,
				})
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.ImportPath, err)
			}
		}
		ran := make(map[string]bool, len(analyzers))
		for _, a := range analyzers {
			ran[a.Name] = true
		}
		out = append(out, allowed.stale(pkg.Fset, ran)...)
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := out[i].Position, out[j].Position
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}
