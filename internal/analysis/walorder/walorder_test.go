package walorder_test

import (
	"testing"

	"dart/internal/analysis/analysistest"
	"dart/internal/analysis/walorder"
)

func TestWalorder(t *testing.T) {
	analysistest.Run(t, walorder.Analyzer, "testdata/src/wo")
}
