// Package wo exercises the walorder pass: worker-visible writes must be
// dominated by the durable store append.
package wo

import "sync"

// Record mirrors store.Record.
type Record struct{ Kind string }

// JobStore mirrors store.JobStore; the pass keys on the type name.
type JobStore interface {
	Append(*Record) (uint64, error)
	WriteSnapshot([]byte) error
}

type Job struct{ ID string }

// Queue carries a JobStore field, making it a walorder subject.
type Queue struct {
	mu    sync.Mutex
	store JobStore
	jobs  map[string]*Job
	ch    chan *Job
	cond  *sync.Cond
	order []string
}

func (q *Queue) appendSubmitLocked(j *Job) error {
	_, err := q.store.Append(&Record{Kind: "submit"})
	return err
}

// --- clean ------------------------------------------------------------

func (q *Queue) Submit(j *Job) error {
	if err := q.appendSubmitLocked(j); err != nil {
		return err
	}
	q.ch <- j
	q.jobs[j.ID] = j
	q.cond.Signal()
	return nil
}

func (q *Queue) SubmitDirect(j *Job) error {
	if _, err := q.store.Append(&Record{Kind: "submit"}); err != nil {
		return err
	}
	q.jobs[j.ID] = j
	return nil
}

func (q *Queue) NoVisibleWrite(j *Job) {
	// Slice appends are not worker-visible in the queue's protocol.
	q.order = append(q.order, j.ID)
}

func (q *Queue) AllowedReplay(j *Job) {
	//dartvet:allow walorder -- fixture: replayed records are already durable
	q.ch <- j
}

// --- findings ---------------------------------------------------------

func (q *Queue) SendBeforeAppend(j *Job) {
	q.ch <- j // want "worker-visible write \(send on q.ch\) may happen before the job is durably appended"
	_ = q.appendSubmitLocked(j)
}

func (q *Queue) AppendOnOneBranchOnly(j *Job, fast bool) {
	if !fast {
		_ = q.appendSubmitLocked(j)
	}
	q.ch <- j // want "worker-visible write \(send on q.ch\) may happen before the job is durably appended"
}

func (q *Queue) SignalWithoutAppend(j *Job) {
	q.jobs[j.ID] = j // want "worker-visible write \(insert into q.jobs\) may happen before the job is durably appended"
	q.cond.Signal()  // want "worker-visible write \(cond Signal\) may happen before the job is durably appended"
}

func (q *Queue) SendThenAppendInLoop(js []*Job) {
	for _, j := range js {
		q.ch <- j // want "worker-visible write \(send on q.ch\) may happen before the job is durably appended"
		_ = q.appendSubmitLocked(j)
	}
}

// RecoverStandalone mirrors RecoverQueue: a plain function whose local
// carries the store — still checked, keyed by the local.
func RecoverStandalone(st JobStore, js []*Job) *Queue {
	q := &Queue{jobs: map[string]*Job{}, ch: make(chan *Job, 8)}
	for _, j := range js {
		q.jobs[j.ID] = j // want "worker-visible write \(insert into q.jobs\) may happen before the job is durably appended"
	}
	q.store = st
	return q
}
