// Package walorder encodes the service package's durable-before-visible
// invariant (DESIGN §5): a write that makes a job visible to workers —
// a send on a queue channel field, a cond Signal/Broadcast, or an
// insert into a job map field — must be dominated by the matching
// durable append (a call on the JobStore field, or an append*/persist*
// ...Locked helper that performs one). Otherwise a crash between the
// two loses a job a worker already observed.
//
// The pass runs a must-analysis on the dataflow driver: a visible write
// is reported unless a durable append has happened on EVERY path
// reaching it. It applies to any function or method manipulating a
// struct that carries a JobStore-typed field, keyed by the root value
// (receiver, local, or parameter) being manipulated.
//
// Replay-time code that re-inserts already-durable records legitimately
// violates the textual ordering and carries reasoned
// //dartvet:allow walorder directives.
package walorder

import (
	"go/ast"
	"go/types"
	"strings"

	"dart/internal/analysis"
	"dart/internal/analysis/cfg"
	"dart/internal/analysis/dataflow"
)

// Analyzer is the walorder pass.
var Analyzer = &analysis.Analyzer{
	Name: "walorder",
	Doc:  "worker-visible writes (channel send, cond signal, job-map insert) must be dominated by the durable store append",
	Run:  run,
}

const appended = 1 // fact value: durable append has happened on every path

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, fn := range cfg.Functions(f) {
			checkFunc(pass, fn)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fn cfg.FuncInfo) {
	c := &checker{pass: pass}
	g := cfg.New(fn.Body)

	prob := dataflow.FactsProblem(dataflow.Facts{}, false) // must-join
	prob.Transfer = c.transfer
	res := dataflow.Forward(g, prob)

	dataflow.ForEachNode(g, prob, res, func(n ast.Node, before dataflow.Facts) {
		c.checkVisible(n, before)
	})
}

// typeUnder returns the underlying type of e, or nil when unknown.
func (c *checker) typeUnder(e ast.Expr) types.Type {
	t := c.pass.TypeOf(e)
	if t == nil {
		return nil
	}
	return t.Underlying()
}

type checker struct {
	pass *analysis.Pass
}

// storeCarrier reports whether e's root value is a struct (or pointer
// to one) carrying a JobStore-typed field, returning the root object.
func (c *checker) storeCarrier(e ast.Expr) types.Object {
	root := dataflow.RootIdentObject(c.pass.TypesInfo, e)
	if root == nil {
		return nil
	}
	st := structOf(root.Type())
	if st == nil {
		return nil
	}
	for i := 0; i < st.NumFields(); i++ {
		if typeName(st.Field(i).Type()) == "JobStore" {
			return root
		}
	}
	return nil
}

func structOf(t types.Type) *types.Struct {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	st, _ := t.Underlying().(*types.Struct)
	return st
}

func typeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok && named.Obj() != nil {
		return named.Obj().Name()
	}
	return ""
}

// transfer marks the root value appended when the node performs a
// durable write: a call on its JobStore field (Append*, WriteSnapshot)
// or a delegating append*Locked / persist*Locked helper.
func (c *checker) transfer(n ast.Node, in dataflow.Facts) dataflow.Facts {
	dataflow.Calls(n, func(call *ast.CallExpr) {
		recv := dataflow.Receiver(call)
		if recv == nil {
			return
		}
		name := dataflow.CalleeName(call)
		durable := false
		switch {
		case strings.HasPrefix(name, "Append"), name == "WriteSnapshot":
			// q.store.Append(...): the receiver is the JobStore field.
			if typeName(c.pass.TypeOf(recv)) == "JobStore" {
				durable = true
			}
		case strings.HasSuffix(name, "Locked") &&
			(strings.HasPrefix(name, "append") || strings.HasPrefix(name, "persist")):
			durable = true
		}
		if !durable {
			return
		}
		if root := c.storeCarrier(recv); root != nil {
			in[root] = appended
		}
	})
	return in
}

// checkVisible reports worker-visible writes happening while the fact
// says no durable append is guaranteed.
func (c *checker) checkVisible(n ast.Node, before dataflow.Facts) {
	report := func(root types.Object, pos ast.Node, what string) {
		if before[root] == appended {
			return
		}
		c.pass.Reportf(pos.Pos(), "worker-visible write (%s) may happen before the job is durably appended on this path (call the matching store.Append*/append*Locked first)", what)
	}

	dataflow.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.SendStmt:
			if sel, ok := ast.Unparen(m.Chan).(*ast.SelectorExpr); ok {
				if _, isChan := c.typeUnder(sel).(*types.Chan); isChan {
					if root := c.storeCarrier(sel); root != nil {
						report(root, m, "send on "+render(sel))
					}
				}
			}
		case *ast.CallExpr:
			name := dataflow.CalleeName(m)
			if name != "Signal" && name != "Broadcast" {
				return true
			}
			if recv := dataflow.Receiver(m); recv != nil && typeName(c.pass.TypeOf(recv)) == "Cond" {
				if root := c.storeCarrier(recv); root != nil {
					report(root, m, "cond "+name)
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range m.Lhs {
				ix, ok := ast.Unparen(lhs).(*ast.IndexExpr)
				if !ok {
					continue
				}
				sel, ok := ast.Unparen(ix.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if _, isMap := c.typeUnder(sel).(*types.Map); !isMap {
					continue
				}
				if root := c.storeCarrier(sel); root != nil {
					report(root, ix, "insert into "+render(sel))
				}
			}
		}
		return true
	})
}

// render prints a short x.f form for diagnostics.
func render(sel *ast.SelectorExpr) string {
	if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
		return id.Name + "." + sel.Sel.Name
	}
	return sel.Sel.Name
}
