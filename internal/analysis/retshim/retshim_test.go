package retshim_test

import (
	"testing"

	"dart/internal/analysis/analysistest"
	"dart/internal/analysis/retshim"
)

func TestRetshim(t *testing.T) {
	analysistest.Run(t, retshim.Analyzer, "testdata/src/d")
}
