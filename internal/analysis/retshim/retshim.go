// Package retshim protects the prepared-problem contract of PR 2: every
// Solver implementation must route its one-shot FindRepair entry point
// through the SolveProblem shim, so that grounding-once semantics, the
// component memo, and warm starts can never be silently bypassed by a
// solver that re-implements the solve from scratch.
//
// For each named type declaring both a FindRepair and a SolveProblem
// method in the package, the pass checks that FindRepair — directly or
// transitively through same-package functions and methods — reaches a call
// to SolveProblem or to the FindRepairCtx dispatcher. The reachability
// walk is syntactic and package-local, which matches how the shims are
// written (FindRepair is a thin prepare-then-dispatch wrapper).
package retshim

import (
	"go/ast"

	"dart/internal/analysis"
)

// Analyzer is the retshim pass.
var Analyzer = &analysis.Analyzer{
	Name: "retshim",
	Doc:  "FindRepair implementations must dispatch through the SolveProblem shim (directly or via FindRepairCtx)",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	funcs := map[string]*ast.FuncDecl{}              // package-level functions
	methods := map[string]map[string]*ast.FuncDecl{} // receiver type -> method name -> decl
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if fd.Recv == nil {
				funcs[fd.Name.Name] = fd
				continue
			}
			recv := receiverTypeName(fd)
			if recv == "" {
				continue
			}
			if methods[recv] == nil {
				methods[recv] = map[string]*ast.FuncDecl{}
			}
			methods[recv][fd.Name.Name] = fd
		}
	}

	for recv, ms := range methods {
		fr, hasFind := ms["FindRepair"]
		_, hasSolve := ms["SolveProblem"]
		if !hasFind || !hasSolve {
			continue
		}
		if !reachesSolveProblem(fr, funcs, ms) {
			pass.Reportf(fr.Name.Pos(), "%s.FindRepair does not route through SolveProblem (call SolveProblem or FindRepairCtx so prepared-problem reuse cannot be bypassed)", recv)
		}
	}
	return nil
}

// receiverTypeName extracts the base type name of a method receiver.
func receiverTypeName(fd *ast.FuncDecl) string {
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	switch x := t.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.IndexExpr: // generic receiver
		if id, ok := x.X.(*ast.Ident); ok {
			return id.Name
		}
	}
	return ""
}

// reachesSolveProblem walks the package-local call graph from start,
// looking for a call to SolveProblem or FindRepairCtx.
func reachesSolveProblem(start *ast.FuncDecl, funcs map[string]*ast.FuncDecl, methods map[string]*ast.FuncDecl) bool {
	queue := []*ast.FuncDecl{start}
	visited := map[*ast.FuncDecl]bool{start: true}
	//dartvet:allow ctxloop -- BFS over package decls, bounded by the visited set
	for len(queue) > 0 {
		fd := queue[0]
		queue = queue[1:]
		if fd.Body == nil {
			continue
		}
		found := false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if found {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name := calleeName(call)
			switch name {
			case "SolveProblem", "FindRepairCtx":
				found = true
				return false
			}
			// Same-receiver methods and package-level functions continue
			// the walk.
			if next, ok := methods[name]; ok && !visited[next] {
				visited[next] = true
				queue = append(queue, next)
			} else if next, ok := funcs[name]; ok && !visited[next] {
				visited[next] = true
				queue = append(queue, next)
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// calleeName extracts the called function or method name.
func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}
