package d

import "context"

type Problem struct{}
type Result struct{}

// FindRepairCtx mirrors core's dispatcher; calling it satisfies the shim
// contract because it routes to SolveProblem itself.
func FindRepairCtx(ctx context.Context, s interface {
	SolveProblem(context.Context, *Problem) (*Result, error)
}) (*Result, error) {
	return s.SolveProblem(ctx, &Problem{})
}

type Direct struct{}

func (s *Direct) SolveProblem(ctx context.Context, p *Problem) (*Result, error) {
	return &Result{}, nil
}

func (s *Direct) FindRepair() (*Result, error) {
	return s.SolveProblem(context.Background(), &Problem{})
}

type Indirect struct{}

func (s *Indirect) SolveProblem(ctx context.Context, p *Problem) (*Result, error) {
	return &Result{}, nil
}

func (s *Indirect) FindRepair() (*Result, error) {
	return s.helper()
}

func (s *Indirect) helper() (*Result, error) {
	return s.SolveProblem(context.Background(), nil)
}

type ViaDispatcher struct{}

func (s *ViaDispatcher) SolveProblem(ctx context.Context, p *Problem) (*Result, error) {
	return &Result{}, nil
}

func (s *ViaDispatcher) FindRepair() (*Result, error) {
	return FindRepairCtx(context.Background(), s)
}

type Bypass struct{}

func (s *Bypass) SolveProblem(ctx context.Context, p *Problem) (*Result, error) {
	return &Result{}, nil
}

func (s *Bypass) FindRepair() (*Result, error) { // want "Bypass.FindRepair does not route through SolveProblem"
	return &Result{}, nil
}

// NoShimPair has no SolveProblem method, so its FindRepair is out of scope.
type NoShimPair struct{}

func (s *NoShimPair) FindRepair() (*Result, error) {
	return &Result{}, nil
}
