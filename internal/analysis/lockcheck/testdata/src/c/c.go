package c

import (
	"sync"
	"sync/atomic"
)

type registry struct {
	mu       sync.Mutex
	count    uint64
	total    float64
	hits     uint64
	draining atomic.Bool
}

func (r *registry) Inc() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.count++
}

func (r *registry) Bad() uint64 {
	return r.count // want "r.count accessed in Bad without holding registry.mu"
}

func (r *registry) BadTwo() float64 {
	r.count++      // want "r.count accessed in BadTwo without holding registry.mu"
	return r.total // want "r.total accessed in BadTwo without holding registry.mu"
}

func (r *registry) ViaAtomic() uint64 {
	return atomic.LoadUint64(&r.hits)
}

func (r *registry) SelfGuarding() bool {
	return r.draining.Load()
}

func (r *registry) snapshotLocked() uint64 {
	return r.count
}

func (r *registry) Allowed() uint64 {
	return r.count //dartvet:allow lockcheck -- read before workers start
}

type rwRegistry struct {
	mu sync.RWMutex
	n  int
}

func (r *rwRegistry) Read() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.n
}

type embedded struct {
	sync.Mutex
	n int
}

func (e *embedded) Inc() {
	e.Lock()
	defer e.Unlock()
	e.n++
}

func (e *embedded) Bad() int {
	return e.n // want "e.n accessed in Bad without holding embedded.Mutex"
}

type plain struct{ n int }

func (p *plain) Get() int { return p.n }

// --- path-sensitive cases (flow-insensitive lockcheck got these wrong) --

func (r *registry) AccessAfterEarlyUnlock() uint64 {
	r.mu.Lock()
	n := r.count
	r.mu.Unlock()
	return n + r.count // want "r.count accessed in AccessAfterEarlyUnlock without holding registry.mu"
}

func (r *registry) LockOnOneBranchOnly(fast bool) uint64 {
	if fast {
		r.mu.Lock()
		defer r.mu.Unlock()
	}
	return r.count // want "r.count accessed in LockOnOneBranchOnly without holding registry.mu"
}

func (r *registry) AccessBeforeLock() {
	r.count++ // want "r.count accessed in AccessBeforeLock without holding registry.mu"
	r.mu.Lock()
	r.total++
	r.mu.Unlock()
}

func (r *registry) DeferredUnlockHoldsToReturn(fast bool) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if fast {
		return r.total
	}
	r.count++
	return r.total + float64(r.count)
}

func (r *registry) LockPerIteration(n int) {
	for i := 0; i < n; i++ {
		r.mu.Lock()
		r.count++
		r.mu.Unlock()
	}
}

func (r *registry) UnlockInsideLoopThenAccess(n int) {
	r.mu.Lock()
	for i := 0; i < n; i++ {
		r.mu.Unlock()
		r.count++ // want "r.count accessed in UnlockInsideLoopThenAccess without holding registry.mu"
		r.mu.Lock()
	}
	r.mu.Unlock()
}

func (r *registry) ClosureStartsUnlocked() func() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return func() uint64 {
		return r.count // want "r.count accessed in ClosureStartsUnlocked without holding registry.mu"
	}
}

func (r *registry) ClosureLocksItself() func() uint64 {
	return func() uint64 {
		r.mu.Lock()
		defer r.mu.Unlock()
		return r.count
	}
}

type queue struct {
	mu sync.Mutex
	ch chan int
	n  int
}

// Depth: len on a channel field is an atomic runtime query, exempt.
func (q *queue) Depth() int { return len(q.ch) }

func (q *queue) Cap() int { return cap(q.ch) }

func (q *queue) BadSend(v int) {
	q.ch <- v // want "q.ch accessed in BadSend without holding queue.mu"
}

// StaleDirective carries an allow that suppresses nothing: the access
// is already under the lock, so the stale audit reports the directive.
func (q *queue) StaleDirective() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	//dartvet:allow lockcheck -- stale: the lock above already guards this // want "suppresses no lockcheck finding"
	return q.n
}
