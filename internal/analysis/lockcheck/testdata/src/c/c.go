package c

import (
	"sync"
	"sync/atomic"
)

type registry struct {
	mu       sync.Mutex
	count    uint64
	total    float64
	hits     uint64
	draining atomic.Bool
}

func (r *registry) Inc() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.count++
}

func (r *registry) Bad() uint64 {
	return r.count // want "r.count accessed in Bad without holding registry.mu"
}

func (r *registry) BadTwo() float64 {
	r.count++      // want "r.count accessed in BadTwo without holding registry.mu"
	return r.total // want "r.total accessed in BadTwo without holding registry.mu"
}

func (r *registry) ViaAtomic() uint64 {
	return atomic.LoadUint64(&r.hits)
}

func (r *registry) SelfGuarding() bool {
	return r.draining.Load()
}

func (r *registry) snapshotLocked() uint64 {
	return r.count
}

func (r *registry) Allowed() uint64 {
	return r.count //dartvet:allow lockcheck -- read before workers start
}

type rwRegistry struct {
	mu sync.RWMutex
	n  int
}

func (r *rwRegistry) Read() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.n
}

type embedded struct {
	sync.Mutex
	n int
}

func (e *embedded) Inc() {
	e.Lock()
	defer e.Unlock()
	e.n++
}

func (e *embedded) Bad() int {
	return e.n // want "e.n accessed in Bad without holding embedded.Mutex"
}

type plain struct{ n int }

func (p *plain) Get() int { return p.n }
