package lockcheck_test

import (
	"testing"

	"dart/internal/analysis/analysistest"
	"dart/internal/analysis/lockcheck"
)

func TestLockcheck(t *testing.T) {
	analysistest.Run(t, lockcheck.Analyzer, "testdata/src/c")
}
