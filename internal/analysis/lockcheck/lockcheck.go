// Package lockcheck flags mutex-guarded struct fields accessed outside
// their mutex. It encodes the service package's concurrency convention:
// a struct with a sync.Mutex/sync.RWMutex field treats every other field
// as guarded, and each method either takes the lock before touching them,
// goes through sync/atomic, or is explicitly named as a caller-holds-lock
// helper.
//
// For every named struct type with a mutex field, a method of that type is
// checked when it accesses a guarded field through its receiver and none of
// the following hold:
//
//   - the method body calls Lock or RLock on the mutex field (flow
//     insensitivity is deliberate: taking the lock anywhere in the method
//     is accepted),
//   - the field's type lives in sync or sync/atomic (atomic.Bool and
//     friends guard themselves; nested mutexes are their own locks),
//   - the access is the &field argument of a sync/atomic call,
//   - the method's name ends in "Locked" (the convention for helpers whose
//     callers hold the lock).
//
// Remaining intentional unguarded accesses (e.g. fields frozen before the
// first goroutine starts) carry a //dartvet:allow lockcheck -- <why safe>
// directive.
package lockcheck

import (
	"go/ast"
	"go/types"
	"strings"

	"dart/internal/analysis"
)

// Analyzer is the lockcheck pass.
var Analyzer = &analysis.Analyzer{
	Name: "lockcheck",
	Doc:  "fields of mutex-carrying structs must be accessed under the mutex, via sync/atomic, or in *Locked helpers",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			checkMethod(pass, fd)
		}
	}
	return nil
}

// guardInfo describes the mutex discipline of one struct type.
type guardInfo struct {
	mutexField string          // name of the sync.Mutex/RWMutex field
	guarded    map[string]bool // fields the mutex protects
}

// structGuard inspects a struct type and returns its discipline, or nil
// when the struct carries no mutex.
func structGuard(st *types.Struct) *guardInfo {
	info := &guardInfo{guarded: map[string]bool{}}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		switch {
		case isSyncType(f.Type(), "Mutex"), isSyncType(f.Type(), "RWMutex"):
			if info.mutexField == "" {
				info.mutexField = f.Name()
			}
		case isSelfGuarding(f.Type()):
			// sync/atomic values and nested sync types guard themselves.
		default:
			info.guarded[f.Name()] = true
		}
	}
	if info.mutexField == "" {
		return nil
	}
	return info
}

// isSyncType reports whether t is the named sync type (or a pointer to it).
func isSyncType(t types.Type, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj() == nil || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == name
}

// isSelfGuarding reports whether a field of this type needs no external
// locking: anything from sync or sync/atomic.
func isSelfGuarding(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj() == nil || named.Obj().Pkg() == nil {
		return false
	}
	path := named.Obj().Pkg().Path()
	return path == "sync" || path == "sync/atomic"
}

// checkMethod verifies one method against its receiver struct's discipline.
func checkMethod(pass *analysis.Pass, fd *ast.FuncDecl) {
	if strings.HasSuffix(fd.Name.Name, "Locked") {
		return
	}
	recvField := fd.Recv.List[0]
	if len(recvField.Names) == 0 {
		return
	}
	recvName := recvField.Names[0].Name
	if recvName == "_" {
		return
	}
	recvType := pass.TypeOf(recvField.Type)
	if recvType == nil {
		return
	}
	if p, ok := recvType.(*types.Pointer); ok {
		recvType = p.Elem()
	}
	named, ok := recvType.(*types.Named)
	if !ok {
		return
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return
	}
	guard := structGuard(st)
	if guard == nil {
		return
	}
	if locksMutex(fd.Body, recvName, guard.mutexField) {
		return
	}
	atomicArgs := atomicCallArgs(pass, fd.Body)
	seen := map[string]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok || id.Name != recvName {
			return true
		}
		field := sel.Sel.Name
		if !guard.guarded[field] || seen[field] || atomicArgs[sel] {
			return true
		}
		seen[field] = true
		pass.Reportf(sel.Pos(), "%s.%s accessed in %s without holding %s.%s (lock it, use sync/atomic, or name the method *Locked)",
			recvName, field, fd.Name.Name, named.Obj().Name(), guard.mutexField)
		return true
	})
}

// locksMutex reports whether the body calls recv.mu.Lock/RLock (or, for an
// embedded mutex, recv.Lock/recv.RLock).
func locksMutex(body *ast.BlockStmt, recvName, mutexField string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		switch x := sel.X.(type) {
		case *ast.SelectorExpr: // recv.mu.Lock()
			if id, ok := x.X.(*ast.Ident); ok && id.Name == recvName && x.Sel.Name == mutexField {
				found = true
			}
		case *ast.Ident: // recv.Lock() via embedded mutex
			if x.Name == recvName && mutexField == "Mutex" || x.Name == recvName && mutexField == "RWMutex" {
				found = true
			}
		}
		return !found
	})
	return found
}

// atomicCallArgs collects the selector expressions that appear (behind &)
// as arguments of sync/atomic calls, which are exempt from the mutex rule.
func atomicCallArgs(pass *analysis.Pass, body *ast.BlockStmt) map[*ast.SelectorExpr]bool {
	out := map[*ast.SelectorExpr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isAtomicCall(pass, call) {
			return true
		}
		for _, arg := range call.Args {
			if u, ok := arg.(*ast.UnaryExpr); ok {
				arg = u.X
			}
			if sel, ok := arg.(*ast.SelectorExpr); ok {
				out[sel] = true
			}
		}
		return true
	})
	return out
}

// isAtomicCall reports whether the call's callee comes from sync/atomic.
func isAtomicCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.Uses[id]
	pkgName, ok := obj.(*types.PkgName)
	return ok && pkgName.Imported().Path() == "sync/atomic"
}
