// Package lockcheck flags mutex-guarded struct fields accessed outside
// their mutex. It encodes the service package's concurrency convention:
// a struct with a sync.Mutex/sync.RWMutex field treats every other field
// as guarded, and each method either holds the lock when touching them,
// goes through sync/atomic, or is explicitly named as a caller-holds-lock
// helper.
//
// Since the CFG/dataflow rework the pass is path-sensitive: held-lock
// state is a must-analysis over the method's control-flow graph, so a
// field access after an early Unlock, or on a branch that skipped the
// Lock, is reported even though the method "locks somewhere". A
// `defer mu.Unlock()` keeps the lock held for the whole body.
//
// For every named struct type with a mutex field, a method of that type
// is checked when it accesses a guarded field through its receiver at a
// point where the mutex is not provably held, unless:
//
//   - the field's type lives in sync or sync/atomic (atomic.Bool and
//     friends guard themselves; nested mutexes are their own locks),
//   - the access is the &field argument of a sync/atomic call,
//   - the access is len(ch)/cap(ch) on a channel field (channel length
//     is an atomic runtime query),
//   - the method's name ends in "Locked" (the convention for helpers
//     whose callers hold the lock).
//
// Function literals inside a method run on their own control flow and
// are analyzed separately, starting unlocked.
//
// Remaining intentional unguarded accesses (e.g. fields frozen before
// the first goroutine starts) carry a //dartvet:allow lockcheck --
// <why safe> directive.
package lockcheck

import (
	"go/ast"
	"go/types"
	"strings"

	"dart/internal/analysis"
	"dart/internal/analysis/cfg"
	"dart/internal/analysis/dataflow"
)

// Analyzer is the lockcheck pass.
var Analyzer = &analysis.Analyzer{
	Name: "lockcheck",
	Doc:  "fields of mutex-carrying structs must be accessed while the mutex is held, via sync/atomic, or in *Locked helpers",
	Run:  run,
}

const held = 1

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			checkMethod(pass, fd)
		}
	}
	return nil
}

// guardInfo describes the mutex discipline of one struct type.
type guardInfo struct {
	mutexField string          // name of the sync.Mutex/RWMutex field
	guarded    map[string]bool // fields the mutex protects
}

// structGuard inspects a struct type and returns its discipline, or nil
// when the struct carries no mutex.
func structGuard(st *types.Struct) *guardInfo {
	info := &guardInfo{guarded: map[string]bool{}}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		switch {
		case isSyncType(f.Type(), "Mutex"), isSyncType(f.Type(), "RWMutex"):
			if info.mutexField == "" {
				info.mutexField = f.Name()
			}
		case isSelfGuarding(f.Type()):
			// sync/atomic values and nested sync types guard themselves.
		default:
			info.guarded[f.Name()] = true
		}
	}
	if info.mutexField == "" {
		return nil
	}
	return info
}

// isSyncType reports whether t is the named sync type (or a pointer to it).
func isSyncType(t types.Type, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj() == nil || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == name
}

// isSelfGuarding reports whether a field of this type needs no external
// locking: anything from sync or sync/atomic.
func isSelfGuarding(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj() == nil || named.Obj().Pkg() == nil {
		return false
	}
	path := named.Obj().Pkg().Path()
	return path == "sync" || path == "sync/atomic"
}

// checkMethod verifies one method against its receiver struct's discipline.
func checkMethod(pass *analysis.Pass, fd *ast.FuncDecl) {
	if strings.HasSuffix(fd.Name.Name, "Locked") {
		return
	}
	recvField := fd.Recv.List[0]
	if len(recvField.Names) == 0 {
		return
	}
	recvName := recvField.Names[0].Name
	if recvName == "_" {
		return
	}
	recvType := pass.TypeOf(recvField.Type)
	if recvType == nil {
		return
	}
	if p, ok := recvType.(*types.Pointer); ok {
		recvType = p.Elem()
	}
	named, ok := recvType.(*types.Named)
	if !ok {
		return
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return
	}
	guard := structGuard(st)
	if guard == nil {
		return
	}

	c := &methodChecker{
		pass:      pass,
		fd:        fd,
		recvName:  recvName,
		typeName:  named.Obj().Name(),
		guard:     guard,
		atomicSel: atomicCallArgs(pass, fd.Body),
		chanQuery: chanLenCapArgs(pass, fd.Body),
		seen:      map[string]bool{},
	}
	// The method body, then each function literal in it: literals run on
	// their own control flow (often a different goroutine) and start
	// unlocked.
	c.checkBody(fd.Body)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			c.checkBody(lit.Body)
		}
		return true
	})
}

type methodChecker struct {
	pass      *analysis.Pass
	fd        *ast.FuncDecl
	recvName  string
	typeName  string
	guard     *guardInfo
	atomicSel map[*ast.SelectorExpr]bool
	chanQuery map[*ast.SelectorExpr]bool
	seen      map[string]bool // fields already reported in this method
}

func (c *methodChecker) checkBody(body *ast.BlockStmt) {
	g := cfg.New(body)
	prob := dataflow.FactsProblem(dataflow.Facts{}, false) // must-join
	prob.Transfer = c.transfer
	res := dataflow.Forward(g, prob)

	dataflow.ForEachNode(g, prob, res, func(n ast.Node, before dataflow.Facts) {
		c.checkAccesses(n, before)
	})
}

// key is the singleton fact key: whether the receiver's guard mutex is
// held. The receiver object differs between body and literals, so use a
// stable package-level sentinel keyed by nothing else.
var lockKey = types.NewParam(0, nil, "lockcheck.held", types.Typ[types.Bool])

// transfer applies recv.mu.Lock/Unlock effects (or recv.Lock for an
// embedded mutex). Defer statements are skipped: a deferred unlock
// releases at return, after every access in the body.
func (c *methodChecker) transfer(n ast.Node, in dataflow.Facts) dataflow.Facts {
	if _, ok := n.(*ast.DeferStmt); ok {
		return in
	}
	dataflow.Calls(n, func(call *ast.CallExpr) {
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return
		}
		locks := sel.Sel.Name == "Lock" || sel.Sel.Name == "RLock"
		unlocks := sel.Sel.Name == "Unlock" || sel.Sel.Name == "RUnlock"
		if !locks && !unlocks {
			return
		}
		if !c.isGuardMutex(sel.X) {
			return
		}
		if locks {
			in[lockKey] = held
		} else {
			delete(in, lockKey)
		}
	})
	return in
}

// isGuardMutex matches recv.mu (named mutex field) or recv itself (an
// embedded sync.Mutex/RWMutex promoted onto the receiver).
func (c *methodChecker) isGuardMutex(x ast.Expr) bool {
	switch x := ast.Unparen(x).(type) {
	case *ast.SelectorExpr: // recv.mu.Lock()
		id, ok := ast.Unparen(x.X).(*ast.Ident)
		return ok && id.Name == c.recvName && x.Sel.Name == c.guard.mutexField
	case *ast.Ident: // recv.Lock() via embedded mutex
		return x.Name == c.recvName &&
			(c.guard.mutexField == "Mutex" || c.guard.mutexField == "RWMutex")
	}
	return false
}

// checkAccesses reports guarded-field accesses in n when the mutex is
// not provably held at this point.
func (c *methodChecker) checkAccesses(n ast.Node, before dataflow.Facts) {
	if before[lockKey] == held {
		return
	}
	dataflow.Inspect(n, func(m ast.Node) bool {
		sel, ok := m.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok || id.Name != c.recvName {
			return true
		}
		field := sel.Sel.Name
		if !c.guard.guarded[field] || c.seen[field] || c.atomicSel[sel] || c.chanQuery[sel] {
			return true
		}
		c.seen[field] = true
		c.pass.Reportf(sel.Pos(), "%s.%s accessed in %s without holding %s.%s (lock it, use sync/atomic, or name the method *Locked)",
			c.recvName, field, c.fd.Name.Name, c.typeName, c.guard.mutexField)
		return true
	})
}

// atomicCallArgs collects the selector expressions that appear (behind &)
// as arguments of sync/atomic calls, which are exempt from the mutex rule.
func atomicCallArgs(pass *analysis.Pass, body *ast.BlockStmt) map[*ast.SelectorExpr]bool {
	out := map[*ast.SelectorExpr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isAtomicCall(pass, call) {
			return true
		}
		for _, arg := range call.Args {
			if u, ok := arg.(*ast.UnaryExpr); ok {
				arg = u.X
			}
			if sel, ok := arg.(*ast.SelectorExpr); ok {
				out[sel] = true
			}
		}
		return true
	})
	return out
}

// isAtomicCall reports whether the call's callee comes from sync/atomic.
func isAtomicCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.Uses[id]
	pkgName, ok := obj.(*types.PkgName)
	return ok && pkgName.Imported().Path() == "sync/atomic"
}

// chanLenCapArgs collects channel-typed selector arguments of len/cap
// calls: channel length/capacity reads are atomic runtime queries and
// need no lock.
func chanLenCapArgs(pass *analysis.Pass, body *ast.BlockStmt) map[*ast.SelectorExpr]bool {
	out := map[*ast.SelectorExpr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || (id.Name != "len" && id.Name != "cap") || len(call.Args) != 1 {
			return true
		}
		sel, ok := ast.Unparen(call.Args[0]).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if t := pass.TypeOf(sel); t != nil {
			if _, isChan := t.Underlying().(*types.Chan); isChan {
				out[sel] = true
			}
		}
		return true
	})
	return out
}
