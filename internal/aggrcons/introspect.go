package aggrcons

import "dart/internal/relational"

// Introspection accessors used by static analysis of constraint catalogs
// (dartvet's spec mode). They expose the operand and argument kinds without
// opening the representation for mutation.

// IsAttr reports whether the operand references an attribute, returning its
// name.
func (o Operand) IsAttr() (string, bool) { return o.attr, o.kind == opAttr }

// IsParam reports whether the operand references a function parameter,
// returning its index.
func (o Operand) IsParam() (int, bool) { return o.param, o.kind == opParam }

// IsConst reports whether the operand is a constant, returning its value.
func (o Operand) IsConst() (relational.Value, bool) { return o.cnst, o.kind == opConst }

// IsConst reports whether the term is a constant, returning its value.
func (a ArgTerm) IsConst() (relational.Value, bool) { return a.val, a.kind == argConst }

// IsWildcard reports whether the term is the '_' placeholder.
func (a ArgTerm) IsWildcard() bool { return a.kind == argWildcard }

// WalkCmps visits every atomic comparison of the formula in syntactic
// order.
func WalkCmps(e BoolExpr, fn func(Cmp)) {
	switch x := e.(type) {
	case Cmp:
		fn(x)
	case And:
		for _, f := range x {
			WalkCmps(f, fn)
		}
	case Or:
		for _, f := range x {
			WalkCmps(f, fn)
		}
	case Not:
		WalkCmps(x.F, fn)
	}
}
