package aggrcons

import (
	"fmt"
	"sort"
	"strings"

	"dart/internal/relational"
)

// Rel is the relation between the aggregate combination and the constant K.
// The paper's Definition 1 uses <=, and treats equality as sugar for a pair
// of inequalities; we represent =, <= and >= directly.
type Rel int

// The constraint relations.
const (
	LE Rel = iota
	GE
	EQ
)

// String returns the relation symbol.
func (r Rel) String() string {
	return [...]string{"<=", ">=", "="}[r]
}

// ArgTerm is an argument of a body atom or of an aggregation-function call:
// a constraint variable, a constant, or the '_' wildcard of the paper's
// shorthand notation (wildcards are only legal in body atoms).
type ArgTerm struct {
	kind argKind
	name string
	val  relational.Value
}

type argKind int

const (
	argVar argKind = iota
	argConst
	argWildcard
)

// VarArg is a constraint variable with the given name.
func VarArg(name string) ArgTerm { return ArgTerm{kind: argVar, name: name} }

// ConstArg is a constant argument.
func ConstArg(v relational.Value) ArgTerm { return ArgTerm{kind: argConst, val: v} }

// Wildcard is the '_' placeholder.
func Wildcard() ArgTerm { return ArgTerm{kind: argWildcard} }

// IsVar reports whether the term is a variable, returning its name.
func (a ArgTerm) IsVar() (string, bool) { return a.name, a.kind == argVar }

// String renders the term in the paper's shorthand notation.
func (a ArgTerm) String() string {
	switch a.kind {
	case argVar:
		return a.name
	case argWildcard:
		return "_"
	default:
		if a.val.Kind() == relational.DomainString {
			return "'" + a.val.String() + "'"
		}
		return a.val.String()
	}
}

// Atom is one conjunct R(a1, ..., an) of the body phi.
type Atom struct {
	Relation string
	Args     []ArgTerm
}

// String renders the atom.
func (a Atom) String() string {
	parts := make([]string, len(a.Args))
	for i, t := range a.Args {
		parts[i] = t.String()
	}
	return a.Relation + "(" + strings.Join(parts, ", ") + ")"
}

// AggCall is one summand c * chi(args) of a constraint's right-hand side.
type AggCall struct {
	Coeff float64
	Func  *AggFunc
	Args  []ArgTerm
}

// String renders the call (omitting a unit coefficient).
func (c AggCall) String() string {
	parts := make([]string, len(c.Args))
	for i, t := range c.Args {
		parts[i] = t.String()
	}
	call := fmt.Sprintf("%s(%s)", c.Func.Name, strings.Join(parts, ", "))
	switch c.Coeff {
	case 1:
		return call
	case -1:
		return "-" + call
	default:
		return fmt.Sprintf("%g*%s", c.Coeff, call)
	}
}

// Constraint is an aggregate constraint (Definition 1):
//
//	forall vars ( Body  =>  sum_i Calls_i  Rel  K )
type Constraint struct {
	Name  string
	Body  []Atom
	Calls []AggCall
	Rel   Rel
	K     float64
}

// Validate checks the constraint against the database's schemas: atom
// arities, aggregation-function arities, wildcard placement, and that every
// variable used in a call also occurs in the body (Definition 1 requires
// call variables to be a subset of the quantified variables).
func (k *Constraint) Validate(db *relational.Database) error {
	bodyVars := map[string]bool{}
	for _, atom := range k.Body {
		r := db.Relation(atom.Relation)
		if r == nil {
			return fmt.Errorf("aggrcons: constraint %s: unknown relation %q", k.Name, atom.Relation)
		}
		if len(atom.Args) != r.Schema().Arity() {
			return fmt.Errorf("aggrcons: constraint %s: atom %s has %d args, scheme has arity %d",
				k.Name, atom, len(atom.Args), r.Schema().Arity())
		}
		for _, a := range atom.Args {
			if name, ok := a.IsVar(); ok {
				bodyVars[name] = true
			}
		}
	}
	for _, call := range k.Calls {
		if call.Func == nil {
			return fmt.Errorf("aggrcons: constraint %s: nil aggregation function", k.Name)
		}
		if len(call.Args) != call.Func.Arity() {
			return fmt.Errorf("aggrcons: constraint %s: %s expects %d args, got %d",
				k.Name, call.Func.Name, call.Func.Arity(), len(call.Args))
		}
		if db.Relation(call.Func.Relation) == nil {
			return fmt.Errorf("aggrcons: constraint %s: %s aggregates over unknown relation %q",
				k.Name, call.Func.Name, call.Func.Relation)
		}
		for _, a := range call.Args {
			if a.kind == argWildcard {
				return fmt.Errorf("aggrcons: constraint %s: wildcard in aggregation call %s", k.Name, call.Func.Name)
			}
			if name, ok := a.IsVar(); ok && !bodyVars[name] {
				return fmt.Errorf("aggrcons: constraint %s: call variable %q does not occur in the body", k.Name, name)
			}
		}
	}
	return nil
}

// String renders the constraint in the paper's shorthand notation.
func (k *Constraint) String() string {
	bodyParts := make([]string, len(k.Body))
	for i, a := range k.Body {
		bodyParts[i] = a.String()
	}
	var rhs strings.Builder
	for i, c := range k.Calls {
		s := c.String()
		if i > 0 && !strings.HasPrefix(s, "-") {
			rhs.WriteString(" + ")
		} else if i > 0 {
			rhs.WriteString(" - ")
			s = s[1:]
		}
		rhs.WriteString(s)
	}
	return fmt.Sprintf("%s ==> %s %s %g", strings.Join(bodyParts, ", "), rhs.String(), k.Rel, k.K)
}

// Binding is a ground substitution theta restricted to the variables that
// matter for the constraint's calls.
type Binding map[string]relational.Value

// Ground is one ground instantiation of a constraint: the inequality
// sum_i Coeff_i * Func_i(Args_i) Rel K with all arguments ground.
type Ground struct {
	Source  *Constraint
	Binding Binding
	// Args holds the resolved argument values for each call, parallel to
	// Source.Calls.
	Args [][]relational.Value
}

// Key returns a canonical identity for deduplication of ground constraints.
func (g *Ground) Key() string {
	var b strings.Builder
	b.WriteString(g.Source.Name)
	for _, args := range g.Args {
		b.WriteByte('|')
		for _, v := range args {
			b.WriteString(v.String())
			b.WriteByte(';')
			b.WriteByte(byte('0' + int(v.Kind())))
		}
	}
	return b.String()
}

// LHS evaluates the left-hand side sum of the ground constraint on db.
func (g *Ground) LHS(db *relational.Database) (float64, error) {
	sum := 0.0
	for i, call := range g.Source.Calls {
		v, err := call.Func.Eval(db, g.Args[i])
		if err != nil {
			return 0, err
		}
		sum += call.Coeff * v
	}
	return sum, nil
}

// Holds checks whether the ground constraint is satisfied on db within eps.
func (g *Ground) Holds(db *relational.Database, eps float64) (bool, error) {
	lhs, err := g.LHS(db)
	if err != nil {
		return false, err
	}
	switch g.Source.Rel {
	case LE:
		return lhs <= g.Source.K+eps, nil
	case GE:
		return lhs >= g.Source.K-eps, nil
	default:
		d := lhs - g.Source.K
		return d <= eps && d >= -eps, nil
	}
}

// String renders the ground inequality.
func (g *Ground) String() string {
	parts := make([]string, 0, len(g.Source.Calls))
	for i, call := range g.Source.Calls {
		argStrs := make([]string, len(g.Args[i]))
		for j, v := range g.Args[i] {
			if v.Kind() == relational.DomainString {
				argStrs[j] = "'" + v.String() + "'"
			} else {
				argStrs[j] = v.String()
			}
		}
		s := fmt.Sprintf("%s(%s)", call.Func.Name, strings.Join(argStrs, ","))
		switch {
		case call.Coeff == 1:
		case call.Coeff == -1:
			s = "-" + s
		default:
			s = fmt.Sprintf("%g*%s", call.Coeff, s)
		}
		parts = append(parts, s)
	}
	lhs := parts[0]
	for _, p := range parts[1:] {
		if strings.HasPrefix(p, "-") {
			lhs += " - " + p[1:]
		} else {
			lhs += " + " + p
		}
	}
	return fmt.Sprintf("%s %s %g", lhs, g.Source.Rel, g.Source.K)
}

// GroundAll computes the distinct ground instantiations of the constraint on
// db: one Ground per ground substitution theta making the body true, with
// duplicates (substitutions agreeing on every call argument) merged.
func (k *Constraint) GroundAll(db *relational.Database) ([]*Ground, error) {
	if err := k.Validate(db); err != nil {
		return nil, err
	}
	var out []*Ground
	seen := map[string]bool{}
	binding := map[string]relational.Value{}

	// relevant variables: those appearing in some call.
	relevant := map[string]bool{}
	for _, call := range k.Calls {
		for _, a := range call.Args {
			if name, ok := a.IsVar(); ok {
				relevant[name] = true
			}
		}
	}

	emit := func() error {
		g := &Ground{Source: k, Binding: Binding{}, Args: make([][]relational.Value, len(k.Calls))}
		for name := range relevant {
			g.Binding[name] = binding[name]
		}
		for i, call := range k.Calls {
			args := make([]relational.Value, len(call.Args))
			for j, a := range call.Args {
				if name, ok := a.IsVar(); ok {
					args[j] = binding[name]
				} else {
					args[j] = a.val
				}
			}
			g.Args[i] = args
		}
		key := g.Key()
		if !seen[key] {
			seen[key] = true
			out = append(out, g)
		}
		return nil
	}

	var match func(atomIdx int) error
	match = func(atomIdx int) error {
		if atomIdx == len(k.Body) {
			return emit()
		}
		atom := k.Body[atomIdx]
		rel := db.Relation(atom.Relation)
		for _, t := range rel.Tuples() {
			var bound []string
			ok := true
			for i, a := range atom.Args {
				switch a.kind {
				case argWildcard:
					continue
				case argConst:
					if !a.val.Equal(t.At(i)) {
						ok = false
					}
				case argVar:
					if prev, has := binding[a.name]; has {
						if !prev.Equal(t.At(i)) {
							ok = false
						}
					} else {
						binding[a.name] = t.At(i)
						bound = append(bound, a.name)
					}
				}
				if !ok {
					break
				}
			}
			if ok {
				if err := match(atomIdx + 1); err != nil {
					return err
				}
			}
			for _, name := range bound {
				delete(binding, name)
			}
		}
		return nil
	}
	if err := match(0); err != nil {
		return nil, err
	}
	return out, nil
}

// Violation reports one ground constraint that does not hold, with the
// left-hand side value observed.
type Violation struct {
	Ground *Ground
	LHS    float64
}

// String renders the violation.
func (v Violation) String() string {
	return fmt.Sprintf("%s (lhs = %g)", v.Ground, v.LHS)
}

// Check evaluates every constraint on db and returns the violations
// (D |= AC iff the result is empty). eps is the numeric tolerance.
func Check(db *relational.Database, acs []*Constraint, eps float64) ([]Violation, error) {
	var out []Violation
	for _, k := range acs {
		grounds, err := k.GroundAll(db)
		if err != nil {
			return nil, err
		}
		for _, g := range grounds {
			lhs, err := g.LHS(db)
			if err != nil {
				return nil, err
			}
			ok, err := g.Holds(db, eps)
			if err != nil {
				return nil, err
			}
			if !ok {
				out = append(out, Violation{Ground: g, LHS: lhs})
			}
		}
	}
	// Deterministic order for reporting.
	sort.Slice(out, func(i, j int) bool { return out[i].Ground.Key() < out[j].Ground.Key() })
	return out, nil
}
