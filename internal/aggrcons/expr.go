// Package aggrcons implements the aggregate-constraint formalism of
// Sections 3-4 of the DART paper: attribute expressions, aggregation
// functions (SELECT sum(e) FROM R WHERE alpha), aggregate constraints of the
// form
//
//	forall x1..xk ( phi(x1..xk)  =>  sum_i c_i * chi_i(X_i)  <=  K )
//
// together with grounding, consistency checking (D |= AC), and the
// steadiness analysis of Definition 6 (the sets A(kappa) and J(kappa)).
package aggrcons

import (
	"fmt"
	"strconv"

	"dart/internal/relational"
)

// AttrExpr is an attribute expression on a relational scheme (Section 3.1):
// a numerical constant, an attribute, e1+e2, e1-e2, or c*(e).
type AttrExpr interface {
	// Eval computes the expression's value on a tuple.
	Eval(t *relational.Tuple) (float64, error)
	// Attrs appends the attribute names referenced by the expression.
	Attrs(dst []string) []string
	// String renders the expression.
	String() string
}

// ConstExpr is a numerical constant.
type ConstExpr float64

// Eval implements AttrExpr.
func (c ConstExpr) Eval(*relational.Tuple) (float64, error) { return float64(c), nil }

// Attrs implements AttrExpr.
func (c ConstExpr) Attrs(dst []string) []string { return dst }

// String implements AttrExpr.
func (c ConstExpr) String() string { return strconv.FormatFloat(float64(c), 'g', -1, 64) }

// AttrTerm references an attribute of the scheme by name. The attribute
// must be numerical for evaluation to succeed.
type AttrTerm string

// Eval implements AttrExpr.
func (a AttrTerm) Eval(t *relational.Tuple) (float64, error) {
	i := t.Schema().AttrIndex(string(a))
	if i < 0 {
		return 0, fmt.Errorf("aggrcons: %s has no attribute %q", t.Schema().Name(), string(a))
	}
	v := t.At(i)
	if !v.IsNumeric() {
		return 0, fmt.Errorf("aggrcons: attribute %s.%s is not numerical", t.Schema().Name(), string(a))
	}
	return v.AsFloat(), nil
}

// Attrs implements AttrExpr.
func (a AttrTerm) Attrs(dst []string) []string { return append(dst, string(a)) }

// String implements AttrExpr.
func (a AttrTerm) String() string { return string(a) }

// BinOp is + or -.
type BinOp byte

// The two arithmetic operators the paper permits between subexpressions.
const (
	OpAdd BinOp = '+'
	OpSub BinOp = '-'
)

// BinExpr is e1 + e2 or e1 - e2.
type BinExpr struct {
	Op   BinOp
	L, R AttrExpr
}

// Eval implements AttrExpr.
func (b BinExpr) Eval(t *relational.Tuple) (float64, error) {
	l, err := b.L.Eval(t)
	if err != nil {
		return 0, err
	}
	r, err := b.R.Eval(t)
	if err != nil {
		return 0, err
	}
	if b.Op == OpSub {
		return l - r, nil
	}
	return l + r, nil
}

// Attrs implements AttrExpr.
func (b BinExpr) Attrs(dst []string) []string { return b.R.Attrs(b.L.Attrs(dst)) }

// String implements AttrExpr.
func (b BinExpr) String() string {
	return fmt.Sprintf("(%s %c %s)", b.L, b.Op, b.R)
}

// ScaleExpr is c * (e).
type ScaleExpr struct {
	C float64
	E AttrExpr
}

// Eval implements AttrExpr.
func (s ScaleExpr) Eval(t *relational.Tuple) (float64, error) {
	v, err := s.E.Eval(t)
	if err != nil {
		return 0, err
	}
	return s.C * v, nil
}

// Attrs implements AttrExpr.
func (s ScaleExpr) Attrs(dst []string) []string { return s.E.Attrs(dst) }

// String implements AttrExpr.
func (s ScaleExpr) String() string {
	return fmt.Sprintf("%g*(%s)", s.C, s.E)
}

// LinearForm is an attribute expression reduced to sum(coeff_A * A) + Const.
// The MILP translation of Section 5 requires this form; every AttrExpr has
// one because the grammar only allows +, -, and scaling by constants.
type LinearForm struct {
	Coeffs map[string]float64
	Const  float64
}

// Linearize reduces an attribute expression to its LinearForm.
func Linearize(e AttrExpr) LinearForm {
	lf := LinearForm{Coeffs: map[string]float64{}}
	linearizeInto(e, 1, &lf)
	for a, c := range lf.Coeffs {
		if c == 0 {
			delete(lf.Coeffs, a)
		}
	}
	return lf
}

func linearizeInto(e AttrExpr, scale float64, lf *LinearForm) {
	switch x := e.(type) {
	case ConstExpr:
		lf.Const += scale * float64(x)
	case AttrTerm:
		lf.Coeffs[string(x)] += scale
	case BinExpr:
		linearizeInto(x.L, scale, lf)
		if x.Op == OpSub {
			linearizeInto(x.R, -scale, lf)
		} else {
			linearizeInto(x.R, scale, lf)
		}
	case ScaleExpr:
		linearizeInto(x.E, scale*x.C, lf)
	default:
		panic(fmt.Sprintf("aggrcons: unknown AttrExpr %T", e))
	}
}
