package aggrcons_test

import (
	"math"
	"strings"
	"testing"

	"dart/internal/aggrcons"
	"dart/internal/relational"
	"dart/internal/runningex"
)

// --- Example 2: aggregation function evaluation -------------------------

func TestChi1RunningExample(t *testing.T) {
	db := runningex.AcquiredDatabase()
	chi1 := runningex.Chi1()
	tests := []struct {
		section, typ string
		year         int64
		want         float64
	}{
		{"Receipts", "det", 2003, 220},       // 100 + 120 (paper Example 2)
		{"Disbursements", "aggr", 2003, 160}, // paper Example 2
		{"Receipts", "aggr", 2003, 250},      // the erroneous acquired value
		{"Disbursements", "det", 2004, 190},
		{"Nowhere", "det", 2003, 0}, // empty sum
	}
	for _, tc := range tests {
		got, err := chi1.Eval(db, []relational.Value{
			relational.String(tc.section), relational.Int(tc.year), relational.String(tc.typ),
		})
		if err != nil {
			t.Fatalf("chi1(%s,%d,%s): %v", tc.section, tc.year, tc.typ, err)
		}
		if got != tc.want {
			t.Errorf("chi1(%s,%d,%s) = %v, want %v", tc.section, tc.year, tc.typ, got, tc.want)
		}
	}
}

func TestChi2RunningExample(t *testing.T) {
	db := runningex.AcquiredDatabase()
	chi2 := runningex.Chi2()
	tests := []struct {
		year int64
		sub  string
		want float64
	}{
		{2003, "cash sales", 100},     // paper Example 2
		{2004, "net cash inflow", 10}, // paper Example 2
		{2003, "total cash receipts", 250},
	}
	for _, tc := range tests {
		got, err := chi2.Eval(db, []relational.Value{relational.Int(tc.year), relational.String(tc.sub)})
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Errorf("chi2(%d,%q) = %v, want %v", tc.year, tc.sub, got, tc.want)
		}
	}
}

func TestAggFuncArityAndRelationErrors(t *testing.T) {
	db := runningex.AcquiredDatabase()
	chi1 := runningex.Chi1()
	if _, err := chi1.Eval(db, []relational.Value{relational.Int(1)}); err == nil {
		t.Error("arity mismatch should fail")
	}
	bad := *chi1
	bad.Relation = "Nope"
	if _, err := bad.Eval(db, []relational.Value{relational.String("a"), relational.Int(1), relational.String("b")}); err == nil {
		t.Error("unknown relation should fail")
	}
}

// --- Attribute expressions ----------------------------------------------

func TestAttrExprEvalAndLinearize(t *testing.T) {
	db := runningex.CorrectDatabase()
	tp := db.Relation("CashBudget").Tuples()[1] // cash sales 2003, value 100

	e := aggrcons.BinExpr{
		Op: aggrcons.OpAdd,
		L:  aggrcons.ScaleExpr{C: 2, E: aggrcons.AttrTerm("Value")},
		R: aggrcons.BinExpr{
			Op: aggrcons.OpSub,
			L:  aggrcons.ConstExpr(7),
			R:  aggrcons.AttrTerm("Year"),
		},
	}
	got, err := e.Eval(tp)
	if err != nil {
		t.Fatal(err)
	}
	if want := 2*100.0 + 7 - 2003; got != want {
		t.Errorf("Eval = %v, want %v", got, want)
	}
	lf := aggrcons.Linearize(e)
	if lf.Const != 7 || lf.Coeffs["Value"] != 2 || lf.Coeffs["Year"] != -1 {
		t.Errorf("Linearize = %+v", lf)
	}
	if s := e.String(); !strings.Contains(s, "Value") || !strings.Contains(s, "Year") {
		t.Errorf("String = %q", s)
	}
}

func TestAttrExprErrors(t *testing.T) {
	db := runningex.CorrectDatabase()
	tp := db.Relation("CashBudget").Tuples()[0]
	if _, err := aggrcons.AttrTerm("Missing").Eval(tp); err == nil {
		t.Error("missing attribute should fail")
	}
	if _, err := aggrcons.AttrTerm("Section").Eval(tp); err == nil {
		t.Error("non-numerical attribute should fail")
	}
	// Errors propagate through composite expressions.
	bad := aggrcons.BinExpr{Op: aggrcons.OpAdd, L: aggrcons.AttrTerm("Missing"), R: aggrcons.ConstExpr(1)}
	if _, err := bad.Eval(tp); err == nil {
		t.Error("error should propagate through BinExpr left")
	}
	bad2 := aggrcons.BinExpr{Op: aggrcons.OpAdd, L: aggrcons.ConstExpr(1), R: aggrcons.AttrTerm("Missing")}
	if _, err := bad2.Eval(tp); err == nil {
		t.Error("error should propagate through BinExpr right")
	}
	bad3 := aggrcons.ScaleExpr{C: 2, E: aggrcons.AttrTerm("Missing")}
	if _, err := bad3.Eval(tp); err == nil {
		t.Error("error should propagate through ScaleExpr")
	}
}

func TestLinearizeCancellation(t *testing.T) {
	// Value - Value cancels to nothing.
	e := aggrcons.BinExpr{Op: aggrcons.OpSub, L: aggrcons.AttrTerm("Value"), R: aggrcons.AttrTerm("Value")}
	lf := aggrcons.Linearize(e)
	if len(lf.Coeffs) != 0 || lf.Const != 0 {
		t.Errorf("Linearize(Value-Value) = %+v, want empty", lf)
	}
}

// --- Formula evaluation --------------------------------------------------

func TestCmpOperators(t *testing.T) {
	db := runningex.CorrectDatabase()
	tp := db.Relation("CashBudget").Tuples()[1] // 2003, Receipts, cash sales, det, 100
	args := []relational.Value{relational.Int(2003)}
	tests := []struct {
		f    aggrcons.BoolExpr
		want bool
	}{
		{aggrcons.Cmp{L: aggrcons.OpAttr("Year"), Op: aggrcons.CmpEQ, R: aggrcons.OpParam(0)}, true},
		{aggrcons.Cmp{L: aggrcons.OpAttr("Year"), Op: aggrcons.CmpNE, R: aggrcons.OpParam(0)}, false},
		{aggrcons.Cmp{L: aggrcons.OpAttr("Value"), Op: aggrcons.CmpLT, R: aggrcons.OpConst(relational.Int(101))}, true},
		{aggrcons.Cmp{L: aggrcons.OpAttr("Value"), Op: aggrcons.CmpLE, R: aggrcons.OpConst(relational.Int(100))}, true},
		{aggrcons.Cmp{L: aggrcons.OpAttr("Value"), Op: aggrcons.CmpGT, R: aggrcons.OpConst(relational.Int(100))}, false},
		{aggrcons.Cmp{L: aggrcons.OpAttr("Value"), Op: aggrcons.CmpGE, R: aggrcons.OpConst(relational.Int(100))}, true},
		{aggrcons.Cmp{L: aggrcons.OpAttr("Section"), Op: aggrcons.CmpEQ, R: aggrcons.OpConst(relational.String("Receipts"))}, true},
		// Cross-domain string/number: only <> holds.
		{aggrcons.Cmp{L: aggrcons.OpAttr("Section"), Op: aggrcons.CmpEQ, R: aggrcons.OpConst(relational.Int(5))}, false},
		{aggrcons.Cmp{L: aggrcons.OpAttr("Section"), Op: aggrcons.CmpNE, R: aggrcons.OpConst(relational.Int(5))}, true},
		// Numeric comparison across Z and R.
		{aggrcons.Cmp{L: aggrcons.OpAttr("Value"), Op: aggrcons.CmpEQ, R: aggrcons.OpConst(relational.Real(100.0))}, true},
		{aggrcons.And{}, true},
		{aggrcons.Or{aggrcons.Cmp{L: aggrcons.OpAttr("Year"), Op: aggrcons.CmpEQ, R: aggrcons.OpConst(relational.Int(1999))},
			aggrcons.Cmp{L: aggrcons.OpAttr("Year"), Op: aggrcons.CmpEQ, R: aggrcons.OpParam(0)}}, true},
		{aggrcons.Not{F: aggrcons.Cmp{L: aggrcons.OpAttr("Year"), Op: aggrcons.CmpEQ, R: aggrcons.OpParam(0)}}, false},
	}
	for i, tc := range tests {
		got, err := tc.f.Eval(tp, args)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got != tc.want {
			t.Errorf("case %d (%s): got %v, want %v", i, tc.f.Render([]string{"x"}), got, tc.want)
		}
	}
}

func TestFormulaErrors(t *testing.T) {
	db := runningex.CorrectDatabase()
	tp := db.Relation("CashBudget").Tuples()[0]
	bad := aggrcons.Cmp{L: aggrcons.OpAttr("Missing"), Op: aggrcons.CmpEQ, R: aggrcons.OpConst(relational.Int(1))}
	if _, err := bad.Eval(tp, nil); err == nil {
		t.Error("missing attribute should fail")
	}
	oob := aggrcons.Cmp{L: aggrcons.OpParam(3), Op: aggrcons.CmpEQ, R: aggrcons.OpConst(relational.Int(1))}
	if _, err := oob.Eval(tp, nil); err == nil {
		t.Error("out-of-range parameter should fail")
	}
	if _, err := (aggrcons.And{bad}).Eval(tp, nil); err == nil {
		t.Error("And should propagate errors")
	}
	if _, err := (aggrcons.Or{bad}).Eval(tp, nil); err == nil {
		t.Error("Or should propagate errors")
	}
	if _, err := (aggrcons.Not{F: bad}).Eval(tp, nil); err == nil {
		t.Error("Not should propagate errors")
	}
}

// --- Grounding and consistency checking ---------------------------------

func TestGroundAllDeduplicates(t *testing.T) {
	db := runningex.AcquiredDatabase()
	// Constraint 1 grounds over (section, year) pairs appearing in the body:
	// 3 sections x 2 years = 6 distinct ground constraints (each of the 20
	// tuples produces a substitution, deduplicated down to 6).
	grounds, err := runningex.Constraint1().GroundAll(db)
	if err != nil {
		t.Fatal(err)
	}
	if len(grounds) != 6 {
		t.Errorf("Constraint1 grounds = %d, want 6", len(grounds))
	}
	// Constraints 2 and 3 ground once per year.
	for _, k := range []int{1, 2} {
		grounds, err := runningex.Constraints()[k].GroundAll(db)
		if err != nil {
			t.Fatal(err)
		}
		if len(grounds) != 2 {
			t.Errorf("constraint %d grounds = %d, want 2", k+1, len(grounds))
		}
	}
}

func TestCheckDetectsTheRunningExampleInconsistency(t *testing.T) {
	db := runningex.AcquiredDatabase()
	viols, err := aggrcons.Check(db, runningex.Constraints(), 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	// Exactly the two violations of Example 1: constraint (a) [Constraint 1,
	// Receipts 2003] and constraint (c) [Constraint 2, year 2003].
	if len(viols) != 2 {
		t.Fatalf("violations = %d, want 2:\n%v", len(viols), viols)
	}
	names := map[string]bool{}
	for _, v := range viols {
		names[v.Ground.Source.Name] = true
	}
	if !names["Constraint1"] || !names["Constraint2"] {
		t.Errorf("violated constraints = %v, want Constraint1 and Constraint2", names)
	}
}

func TestCheckPassesOnCorrectDatabase(t *testing.T) {
	db := runningex.CorrectDatabase()
	viols, err := aggrcons.Check(db, runningex.Constraints(), 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if len(viols) != 0 {
		t.Errorf("correct database reported inconsistent: %v", viols)
	}
}

func TestGroundHoldsAndLHS(t *testing.T) {
	db := runningex.AcquiredDatabase()
	grounds, err := runningex.Constraint1().GroundAll(db)
	if err != nil {
		t.Fatal(err)
	}
	var bad *aggrcons.Ground
	for _, g := range grounds {
		ok, err := g.Holds(db, 1e-9)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			bad = g
		}
	}
	if bad == nil {
		t.Fatal("no violated ground constraint found")
	}
	lhs, err := bad.LHS(db)
	if err != nil {
		t.Fatal(err)
	}
	if lhs != -30 { // det sum 220 - aggr 250
		t.Errorf("violated LHS = %v, want -30", lhs)
	}
	if s := bad.String(); !strings.Contains(s, "chi1") {
		t.Errorf("Ground.String = %q", s)
	}
}

func TestConstraintValidate(t *testing.T) {
	db := runningex.AcquiredDatabase()
	chi1 := runningex.Chi1()

	cases := []struct {
		name string
		k    *aggrcons.Constraint
	}{
		{"unknown relation", &aggrcons.Constraint{
			Body: []aggrcons.Atom{{Relation: "Nope", Args: []aggrcons.ArgTerm{aggrcons.Wildcard()}}},
		}},
		{"wrong arity atom", &aggrcons.Constraint{
			Body: []aggrcons.Atom{{Relation: "CashBudget", Args: []aggrcons.ArgTerm{aggrcons.Wildcard()}}},
		}},
		{"call variable not in body", &aggrcons.Constraint{
			Body: []aggrcons.Atom{{Relation: "CashBudget", Args: []aggrcons.ArgTerm{
				aggrcons.Wildcard(), aggrcons.Wildcard(), aggrcons.Wildcard(), aggrcons.Wildcard(), aggrcons.Wildcard()}}},
			Calls: []aggrcons.AggCall{{Coeff: 1, Func: chi1, Args: []aggrcons.ArgTerm{
				aggrcons.VarArg("q"), aggrcons.VarArg("q"), aggrcons.VarArg("q")}}},
		}},
		{"wildcard in call", &aggrcons.Constraint{
			Body: []aggrcons.Atom{{Relation: "CashBudget", Args: []aggrcons.ArgTerm{
				aggrcons.Wildcard(), aggrcons.Wildcard(), aggrcons.Wildcard(), aggrcons.Wildcard(), aggrcons.Wildcard()}}},
			Calls: []aggrcons.AggCall{{Coeff: 1, Func: chi1, Args: []aggrcons.ArgTerm{
				aggrcons.Wildcard(), aggrcons.Wildcard(), aggrcons.Wildcard()}}},
		}},
		{"call arity", &aggrcons.Constraint{
			Body: []aggrcons.Atom{{Relation: "CashBudget", Args: []aggrcons.ArgTerm{
				aggrcons.Wildcard(), aggrcons.Wildcard(), aggrcons.Wildcard(), aggrcons.Wildcard(), aggrcons.Wildcard()}}},
			Calls: []aggrcons.AggCall{{Coeff: 1, Func: chi1, Args: nil}},
		}},
	}
	for _, tc := range cases {
		if err := tc.k.Validate(db); err == nil {
			t.Errorf("%s: Validate should fail", tc.name)
		}
	}
	for _, k := range runningex.Constraints() {
		if err := k.Validate(db); err != nil {
			t.Errorf("%s: %v", k.Name, err)
		}
	}
}

func TestConstraintAndGroundStrings(t *testing.T) {
	k := runningex.Constraint1()
	s := k.String()
	for _, want := range []string{"CashBudget(y, x, _, _, _)", "==>", "chi1(x, y, 'det')", "- chi1(x, y, 'aggr')", "= 0"} {
		if !strings.Contains(s, want) {
			t.Errorf("Constraint.String() = %q missing %q", s, want)
		}
	}
	if fs := runningex.Chi1().String(); !strings.Contains(fs, "SELECT sum(Value) FROM CashBudget") {
		t.Errorf("AggFunc.String() = %q", fs)
	}
}

// --- Steadiness (Definition 6, Example 9) --------------------------------

func TestRunningExampleConstraintsAreSteady(t *testing.T) {
	db := runningex.AcquiredDatabase()
	k1 := runningex.Constraint1()
	// Paper: A(Constraint1) = {Year, Section, Type}, J(Constraint1) = {}.
	a := k1.ASet(db)
	gotA := map[string]bool{}
	for _, r := range a {
		gotA[r.Attribute] = true
	}
	if len(a) != 3 || !gotA["Year"] || !gotA["Section"] || !gotA["Type"] {
		t.Errorf("A(Constraint1) = %v, want {Year, Section, Type}", a)
	}
	if j := k1.JSet(db); len(j) != 0 {
		t.Errorf("J(Constraint1) = %v, want empty", j)
	}
	for _, k := range runningex.Constraints() {
		if !k.IsSteady(db) {
			t.Errorf("%s should be steady", k.Name)
		}
		if v := k.SteadyViolations(db); len(v) != 0 {
			t.Errorf("%s steady violations = %v", k.Name, v)
		}
	}
}

func TestExample9NonSteady(t *testing.T) {
	// Example 9: D with R1(A1,A2,A3), R2(A4,A5,A6), M_D = {A2, A4};
	// kappa: R1(x1,x2,x3), R2(x3,x4,x5) ==> chi(x2) <= K
	// chi(x) = SELECT sum(A6) FROM R2 WHERE A5 = x.
	// A(kappa) = {A5, A2}; J(kappa) = {A3, A4}; kappa is NOT steady.
	db := relational.NewDatabase()
	db.MustAddRelation(relational.MustSchema("R1",
		relational.Attribute{Name: "A1", Domain: relational.DomainInt},
		relational.Attribute{Name: "A2", Domain: relational.DomainInt},
		relational.Attribute{Name: "A3", Domain: relational.DomainInt},
	))
	db.MustAddRelation(relational.MustSchema("R2",
		relational.Attribute{Name: "A4", Domain: relational.DomainInt},
		relational.Attribute{Name: "A5", Domain: relational.DomainInt},
		relational.Attribute{Name: "A6", Domain: relational.DomainInt},
	))
	if err := db.DesignateMeasure("R1", "A2"); err != nil {
		t.Fatal(err)
	}
	if err := db.DesignateMeasure("R2", "A4"); err != nil {
		t.Fatal(err)
	}
	chi := &aggrcons.AggFunc{
		Name: "chi", Relation: "R2", Params: []string{"x"},
		Expr:  aggrcons.AttrTerm("A6"),
		Where: aggrcons.Cmp{L: aggrcons.OpAttr("A5"), Op: aggrcons.CmpEQ, R: aggrcons.OpParam(0)},
	}
	kappa := &aggrcons.Constraint{
		Name: "kappa",
		Body: []aggrcons.Atom{
			{Relation: "R1", Args: []aggrcons.ArgTerm{aggrcons.VarArg("x1"), aggrcons.VarArg("x2"), aggrcons.VarArg("x3")}},
			{Relation: "R2", Args: []aggrcons.ArgTerm{aggrcons.VarArg("x3"), aggrcons.VarArg("x4"), aggrcons.VarArg("x5")}},
		},
		Calls: []aggrcons.AggCall{{Coeff: 1, Func: chi, Args: []aggrcons.ArgTerm{aggrcons.VarArg("x2")}}},
		Rel:   aggrcons.LE,
		K:     10,
	}
	aSet := kappa.ASet(db)
	wantA := map[relational.AttrRef]bool{
		{Relation: "R2", Attribute: "A5"}: true,
		{Relation: "R1", Attribute: "A2"}: true,
	}
	if len(aSet) != 2 || !wantA[aSet[0]] || !wantA[aSet[1]] {
		t.Errorf("A(kappa) = %v, want {R2.A5, R1.A2}", aSet)
	}
	jSet := kappa.JSet(db)
	wantJ := map[relational.AttrRef]bool{
		{Relation: "R1", Attribute: "A3"}: true,
		{Relation: "R2", Attribute: "A4"}: true,
	}
	if len(jSet) != 2 || !wantJ[jSet[0]] || !wantJ[jSet[1]] {
		t.Errorf("J(kappa) = %v, want {R1.A3, R2.A4}", jSet)
	}
	if kappa.IsSteady(db) {
		t.Error("kappa must not be steady (Example 9)")
	}
	v := kappa.SteadyViolations(db)
	if len(v) != 2 { // A2 (in A) and A4 (in J) are measures
		t.Errorf("SteadyViolations = %v, want {R1.A2, R2.A4}", v)
	}
}

func TestGroundKeyStability(t *testing.T) {
	db := runningex.AcquiredDatabase()
	g1, err := runningex.Constraint1().GroundAll(db)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := runningex.Constraint1().GroundAll(db)
	if err != nil {
		t.Fatal(err)
	}
	if len(g1) != len(g2) {
		t.Fatal("grounding not deterministic")
	}
	for i := range g1 {
		if g1[i].Key() != g2[i].Key() {
			t.Errorf("ground %d keys differ: %q vs %q", i, g1[i].Key(), g2[i].Key())
		}
	}
}

func TestInequalityConstraintDirections(t *testing.T) {
	// A LE constraint that holds and a GE constraint that fails.
	db := runningex.CorrectDatabase()
	chi2 := runningex.Chi2()
	body := []aggrcons.Atom{{Relation: "CashBudget", Args: []aggrcons.ArgTerm{
		aggrcons.VarArg("x"), aggrcons.Wildcard(), aggrcons.Wildcard(), aggrcons.Wildcard(), aggrcons.Wildcard()}}}
	le := &aggrcons.Constraint{
		Name: "le", Body: body, Rel: aggrcons.LE, K: 1000,
		Calls: []aggrcons.AggCall{{Coeff: 1, Func: chi2, Args: []aggrcons.ArgTerm{
			aggrcons.VarArg("x"), aggrcons.ConstArg(relational.String("cash sales"))}}},
	}
	ge := &aggrcons.Constraint{
		Name: "ge", Body: body, Rel: aggrcons.GE, K: 1000,
		Calls: le.Calls,
	}
	viols, err := aggrcons.Check(db, []*aggrcons.Constraint{le}, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if len(viols) != 0 {
		t.Errorf("LE 1000 should hold, got %v", viols)
	}
	viols, err = aggrcons.Check(db, []*aggrcons.Constraint{ge}, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if len(viols) != 2 { // one per year
		t.Errorf("GE 1000 should fail twice, got %v", viols)
	}
	if math.Abs(viols[0].LHS-100) > 1e-9 {
		t.Errorf("LHS = %v, want 100", viols[0].LHS)
	}
}

func TestEverySingleValueChangeIsDetectable(t *testing.T) {
	// Completeness of the constraint net on the running example: every
	// measure value participates in at least one ground constraint, so any
	// single-value corruption makes the database inconsistent. This is the
	// property that guarantees single acquisition errors never slip through.
	base := runningex.CorrectDatabase()
	r := base.Relation("CashBudget")
	for _, tp := range r.Tuples() {
		db := base.Clone()
		old := tp.Get("Value").AsInt()
		if err := db.Relation("CashBudget").SetValue(tp.ID(), "Value", relational.Int(old+13)); err != nil {
			t.Fatal(err)
		}
		viols, err := aggrcons.Check(db, runningex.Constraints(), 1e-9)
		if err != nil {
			t.Fatal(err)
		}
		if len(viols) == 0 {
			t.Errorf("corrupting tuple %v went undetected", tp)
		}
	}
}

func TestJoinGrounding(t *testing.T) {
	// Two atoms sharing a variable ground only over matching tuples (a
	// conjunctive join), not the cross product.
	db := relational.NewDatabase()
	r1 := db.MustAddRelation(relational.MustSchema("L",
		relational.Attribute{Name: "K", Domain: relational.DomainString},
		relational.Attribute{Name: "V", Domain: relational.DomainInt},
	))
	r2 := db.MustAddRelation(relational.MustSchema("R",
		relational.Attribute{Name: "K", Domain: relational.DomainString},
		relational.Attribute{Name: "W", Domain: relational.DomainInt},
	))
	if err := db.DesignateMeasure("L", "V"); err != nil {
		t.Fatal(err)
	}
	if err := db.DesignateMeasure("R", "W"); err != nil {
		t.Fatal(err)
	}
	r1.MustInsert(relational.String("a"), relational.Int(1))
	r1.MustInsert(relational.String("b"), relational.Int(2))
	r2.MustInsert(relational.String("b"), relational.Int(20))
	r2.MustInsert(relational.String("c"), relational.Int(30))

	sumV := &aggrcons.AggFunc{
		Name: "sumV", Relation: "L", Params: []string{"k"},
		Expr:  aggrcons.AttrTerm("V"),
		Where: aggrcons.Cmp{L: aggrcons.OpAttr("K"), Op: aggrcons.CmpEQ, R: aggrcons.OpParam(0)},
	}
	k := &aggrcons.Constraint{
		Name: "join",
		Body: []aggrcons.Atom{
			{Relation: "L", Args: []aggrcons.ArgTerm{aggrcons.VarArg("k"), aggrcons.Wildcard()}},
			{Relation: "R", Args: []aggrcons.ArgTerm{aggrcons.VarArg("k"), aggrcons.Wildcard()}},
		},
		Calls: []aggrcons.AggCall{{Coeff: 1, Func: sumV, Args: []aggrcons.ArgTerm{aggrcons.VarArg("k")}}},
		Rel:   aggrcons.LE, K: 100,
	}
	grounds, err := k.GroundAll(db)
	if err != nil {
		t.Fatal(err)
	}
	// Only k='b' appears in both relations.
	if len(grounds) != 1 {
		t.Fatalf("grounds = %d, want 1 (join on 'b' only): %v", len(grounds), grounds)
	}
	if got := grounds[0].Binding["k"]; got != relational.String("b") {
		t.Errorf("binding = %v, want 'b'", got)
	}
}
