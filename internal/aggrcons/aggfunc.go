package aggrcons

import (
	"fmt"

	"dart/internal/relational"
)

// AggFunc is an aggregation function on a relational scheme (Section 3.1):
//
//	chi(x1, ..., xk) = SELECT sum(e) FROM R WHERE alpha(x1, ..., xk)
//
// Params names the formal parameters; Where may reference them by index.
type AggFunc struct {
	Name     string
	Relation string
	Params   []string
	Expr     AttrExpr
	Where    BoolExpr
}

// Arity returns the number of formal parameters.
func (f *AggFunc) Arity() int { return len(f.Params) }

// Tuples returns T_chi: the tuples of the function's relation satisfying the
// WHERE clause under the given arguments.
func (f *AggFunc) Tuples(db *relational.Database, args []relational.Value) ([]*relational.Tuple, error) {
	if len(args) != len(f.Params) {
		return nil, fmt.Errorf("aggrcons: %s expects %d arguments, got %d", f.Name, len(f.Params), len(args))
	}
	r := db.Relation(f.Relation)
	if r == nil {
		return nil, fmt.Errorf("aggrcons: %s aggregates over unknown relation %q", f.Name, f.Relation)
	}
	var out []*relational.Tuple
	for _, t := range r.Tuples() {
		ok, err := f.Where.Eval(t, args)
		if err != nil {
			return nil, fmt.Errorf("aggrcons: evaluating WHERE of %s: %w", f.Name, err)
		}
		if ok {
			out = append(out, t)
		}
	}
	return out, nil
}

// Eval computes SELECT sum(e) FROM R WHERE alpha(args). The sum over an
// empty tuple set is 0, as in SQL's sum over no rows coalesced to zero —
// the convention the paper's examples rely on.
func (f *AggFunc) Eval(db *relational.Database, args []relational.Value) (float64, error) {
	ts, err := f.Tuples(db, args)
	if err != nil {
		return 0, err
	}
	sum := 0.0
	for _, t := range ts {
		v, err := f.Expr.Eval(t)
		if err != nil {
			return 0, fmt.Errorf("aggrcons: evaluating sum expression of %s: %w", f.Name, err)
		}
		sum += v
	}
	return sum, nil
}

// WhereAttrNames returns the attribute names appearing in the WHERE clause
// (deduplicated, in first-appearance order).
func (f *AggFunc) WhereAttrNames() []string {
	return dedupeStrings(f.Where.WhereAttrs(nil))
}

// WhereParamIndexes returns the parameter indices appearing in the WHERE
// clause (deduplicated, ascending first-appearance order).
func (f *AggFunc) WhereParamIndexes() []int {
	seen := map[int]bool{}
	var out []int
	for _, p := range f.Where.WhereParams(nil) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}

// String renders the function definition in the paper's SELECT notation.
func (f *AggFunc) String() string {
	params := ""
	for i, p := range f.Params {
		if i > 0 {
			params += ","
		}
		params += p
	}
	return fmt.Sprintf("%s(%s) := SELECT sum(%s) FROM %s WHERE %s",
		f.Name, params, f.Expr, f.Relation, f.Where.Render(f.Params))
}

func dedupeStrings(in []string) []string {
	seen := make(map[string]bool, len(in))
	out := in[:0]
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}
