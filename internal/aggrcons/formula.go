package aggrcons

import (
	"fmt"
	"strings"

	"dart/internal/relational"
)

// Operand is one side of a comparison in a WHERE formula: an attribute of
// the aggregation function's relation, a parameter of the function, or a
// constant.
type Operand struct {
	kind  operandKind
	attr  string
	param int
	cnst  relational.Value
}

type operandKind int

const (
	opAttr operandKind = iota
	opParam
	opConst
)

// OpAttr references attribute name of the function's relation.
func OpAttr(name string) Operand { return Operand{kind: opAttr, attr: name} }

// OpParam references the i-th parameter of the aggregation function.
func OpParam(i int) Operand { return Operand{kind: opParam, param: i} }

// OpConst is a constant value.
func OpConst(v relational.Value) Operand { return Operand{kind: opConst, cnst: v} }

// value resolves the operand against a tuple and the function's arguments.
func (o Operand) value(t *relational.Tuple, args []relational.Value) (relational.Value, error) {
	switch o.kind {
	case opAttr:
		i := t.Schema().AttrIndex(o.attr)
		if i < 0 {
			return relational.Value{}, fmt.Errorf("aggrcons: %s has no attribute %q", t.Schema().Name(), o.attr)
		}
		return t.At(i), nil
	case opParam:
		if o.param < 0 || o.param >= len(args) {
			return relational.Value{}, fmt.Errorf("aggrcons: parameter index %d out of range (%d args)", o.param, len(args))
		}
		return args[o.param], nil
	default:
		return o.cnst, nil
	}
}

// String renders the operand; params prints as the given parameter names.
func (o Operand) render(params []string) string {
	switch o.kind {
	case opAttr:
		return o.attr
	case opParam:
		if o.param < len(params) {
			return params[o.param]
		}
		return fmt.Sprintf("$%d", o.param)
	default:
		if o.cnst.Kind() == relational.DomainString {
			return "'" + o.cnst.String() + "'"
		}
		return o.cnst.String()
	}
}

// CmpOp is a comparison operator of a WHERE formula.
type CmpOp int

// The comparison operators allowed in WHERE formulas.
const (
	CmpEQ CmpOp = iota
	CmpNE
	CmpLT
	CmpLE
	CmpGT
	CmpGE
)

// String returns the operator symbol.
func (c CmpOp) String() string {
	return [...]string{"=", "<>", "<", "<=", ">", ">="}[c]
}

// BoolExpr is a boolean formula over attributes of the function's relation,
// the function's parameters, and constants — the alpha of an aggregation
// function.
type BoolExpr interface {
	// Eval decides the formula on a tuple with the function arguments bound.
	Eval(t *relational.Tuple, args []relational.Value) (bool, error)
	// WhereAttrs appends the attributes appearing in the formula.
	WhereAttrs(dst []string) []string
	// WhereParams appends the parameter indices appearing in the formula.
	WhereParams(dst []int) []int
	// Render pretty-prints the formula with parameter names substituted.
	Render(params []string) string
}

// Cmp is an atomic comparison L op R.
type Cmp struct {
	L  Operand
	Op CmpOp
	R  Operand
}

// Eval implements BoolExpr. Numeric values compare numerically across Z and
// R; strings compare lexicographically; comparing a string with a number is
// false for every operator except <>, which is true.
func (c Cmp) Eval(t *relational.Tuple, args []relational.Value) (bool, error) {
	l, err := c.L.value(t, args)
	if err != nil {
		return false, err
	}
	r, err := c.R.value(t, args)
	if err != nil {
		return false, err
	}
	if l.IsNumeric() != r.IsNumeric() {
		return c.Op == CmpNE, nil
	}
	var cmp int
	if l.IsNumeric() {
		lf, rf := l.AsFloat(), r.AsFloat()
		switch {
		case lf < rf:
			cmp = -1
		case lf > rf:
			cmp = 1
		}
	} else {
		cmp = strings.Compare(l.AsString(), r.AsString())
	}
	switch c.Op {
	case CmpEQ:
		return cmp == 0, nil
	case CmpNE:
		return cmp != 0, nil
	case CmpLT:
		return cmp < 0, nil
	case CmpLE:
		return cmp <= 0, nil
	case CmpGT:
		return cmp > 0, nil
	case CmpGE:
		return cmp >= 0, nil
	default:
		return false, fmt.Errorf("aggrcons: unknown comparison operator %d", c.Op)
	}
}

// WhereAttrs implements BoolExpr.
func (c Cmp) WhereAttrs(dst []string) []string {
	if c.L.kind == opAttr {
		dst = append(dst, c.L.attr)
	}
	if c.R.kind == opAttr {
		dst = append(dst, c.R.attr)
	}
	return dst
}

// WhereParams implements BoolExpr.
func (c Cmp) WhereParams(dst []int) []int {
	if c.L.kind == opParam {
		dst = append(dst, c.L.param)
	}
	if c.R.kind == opParam {
		dst = append(dst, c.R.param)
	}
	return dst
}

// Render implements BoolExpr.
func (c Cmp) Render(params []string) string {
	return fmt.Sprintf("%s %s %s", c.L.render(params), c.Op, c.R.render(params))
}

// And is a conjunction of subformulas.
type And []BoolExpr

// Eval implements BoolExpr.
func (a And) Eval(t *relational.Tuple, args []relational.Value) (bool, error) {
	for _, f := range a {
		ok, err := f.Eval(t, args)
		if err != nil || !ok {
			return false, err
		}
	}
	return true, nil
}

// WhereAttrs implements BoolExpr.
func (a And) WhereAttrs(dst []string) []string {
	for _, f := range a {
		dst = f.WhereAttrs(dst)
	}
	return dst
}

// WhereParams implements BoolExpr.
func (a And) WhereParams(dst []int) []int {
	for _, f := range a {
		dst = f.WhereParams(dst)
	}
	return dst
}

// Render implements BoolExpr.
func (a And) Render(params []string) string {
	if len(a) == 0 {
		return "TRUE"
	}
	parts := make([]string, len(a))
	for i, f := range a {
		parts[i] = f.Render(params)
	}
	return strings.Join(parts, " AND ")
}

// Or is a disjunction of subformulas.
type Or []BoolExpr

// Eval implements BoolExpr.
func (o Or) Eval(t *relational.Tuple, args []relational.Value) (bool, error) {
	for _, f := range o {
		ok, err := f.Eval(t, args)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}

// WhereAttrs implements BoolExpr.
func (o Or) WhereAttrs(dst []string) []string {
	for _, f := range o {
		dst = f.WhereAttrs(dst)
	}
	return dst
}

// WhereParams implements BoolExpr.
func (o Or) WhereParams(dst []int) []int {
	for _, f := range o {
		dst = f.WhereParams(dst)
	}
	return dst
}

// Render implements BoolExpr.
func (o Or) Render(params []string) string {
	parts := make([]string, len(o))
	for i, f := range o {
		parts[i] = "(" + f.Render(params) + ")"
	}
	return strings.Join(parts, " OR ")
}

// Not negates a subformula.
type Not struct{ F BoolExpr }

// Eval implements BoolExpr.
func (n Not) Eval(t *relational.Tuple, args []relational.Value) (bool, error) {
	ok, err := n.F.Eval(t, args)
	return !ok, err
}

// WhereAttrs implements BoolExpr.
func (n Not) WhereAttrs(dst []string) []string { return n.F.WhereAttrs(dst) }

// WhereParams implements BoolExpr.
func (n Not) WhereParams(dst []int) []int { return n.F.WhereParams(dst) }

// Render implements BoolExpr.
func (n Not) Render(params []string) string { return "NOT (" + n.F.Render(params) + ")" }
