package aggrcons

import (
	"sort"

	"dart/internal/relational"
)

// position identifies one argument slot of one body atom.
type position struct {
	atom int
	arg  int
}

// correspondences maps each constraint variable to the attributes it
// corresponds to via the body atoms (Section 4: attribute A_j corresponds
// to variable x_j of atom R(x_1..x_n)).
func (k *Constraint) correspondences(db *relational.Database) map[string][]relational.AttrRef {
	out := map[string][]relational.AttrRef{}
	for _, atom := range k.Body {
		rel := db.Relation(atom.Relation)
		if rel == nil {
			continue
		}
		s := rel.Schema()
		for i, a := range atom.Args {
			if name, ok := a.IsVar(); ok && i < s.Arity() {
				out[name] = append(out[name], relational.AttrRef{
					Relation:  atom.Relation,
					Attribute: s.Attribute(i).Name,
				})
			}
		}
	}
	return out
}

// ASet computes A(kappa): the union over the constraint's aggregation calls
// of W(chi) — the attributes appearing in each call's WHERE clause plus the
// attributes corresponding to the constraint variables bound to parameters
// that appear in the WHERE clause.
func (k *Constraint) ASet(db *relational.Database) []relational.AttrRef {
	corr := k.correspondences(db)
	set := map[relational.AttrRef]bool{}
	for _, call := range k.Calls {
		for _, a := range call.Func.WhereAttrNames() {
			set[relational.AttrRef{Relation: call.Func.Relation, Attribute: a}] = true
		}
		for _, pi := range call.Func.WhereParamIndexes() {
			if pi < 0 || pi >= len(call.Args) {
				continue
			}
			if name, ok := call.Args[pi].IsVar(); ok {
				for _, ref := range corr[name] {
					set[ref] = true
				}
			}
		}
	}
	return sortedRefs(set)
}

// JSet computes J(kappa): the attributes corresponding to variables shared
// by two distinct argument positions of the body (join variables).
func (k *Constraint) JSet(db *relational.Database) []relational.AttrRef {
	positionsByVar := map[string][]position{}
	for ai, atom := range k.Body {
		for pi, a := range atom.Args {
			if name, ok := a.IsVar(); ok {
				positionsByVar[name] = append(positionsByVar[name], position{ai, pi})
			}
		}
	}
	set := map[relational.AttrRef]bool{}
	for _, ps := range positionsByVar {
		if len(ps) < 2 {
			continue
		}
		for _, p := range ps {
			atom := k.Body[p.atom]
			rel := db.Relation(atom.Relation)
			if rel == nil || p.arg >= rel.Schema().Arity() {
				continue
			}
			set[relational.AttrRef{
				Relation:  atom.Relation,
				Attribute: rel.Schema().Attribute(p.arg).Name,
			}] = true
		}
	}
	return sortedRefs(set)
}

// IsSteady decides Definition 6: kappa is steady iff
// (A(kappa) ∪ J(kappa)) ∩ M_D = ∅ for the measure set of db. When the
// constraint is steady, the tuples involved in it can be identified without
// reading measure values, which is what licenses the MILP translation of
// Section 5.
func (k *Constraint) IsSteady(db *relational.Database) bool {
	for _, ref := range k.ASet(db) {
		if db.IsMeasure(ref.Relation, ref.Attribute) {
			return false
		}
	}
	for _, ref := range k.JSet(db) {
		if db.IsMeasure(ref.Relation, ref.Attribute) {
			return false
		}
	}
	return true
}

// SteadyViolations explains why a constraint is not steady: the offending
// measure attributes in A(kappa) and J(kappa). Empty for steady constraints.
func (k *Constraint) SteadyViolations(db *relational.Database) []relational.AttrRef {
	set := map[relational.AttrRef]bool{}
	for _, ref := range k.ASet(db) {
		if db.IsMeasure(ref.Relation, ref.Attribute) {
			set[ref] = true
		}
	}
	for _, ref := range k.JSet(db) {
		if db.IsMeasure(ref.Relation, ref.Attribute) {
			set[ref] = true
		}
	}
	return sortedRefs(set)
}

func sortedRefs(set map[relational.AttrRef]bool) []relational.AttrRef {
	out := make([]relational.AttrRef, 0, len(set))
	for r := range set {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Relation != out[j].Relation {
			return out[i].Relation < out[j].Relation
		}
		return out[i].Attribute < out[j].Attribute
	})
	return out
}
