package htmlx

import (
	"fmt"
	"strconv"
	"strings"
)

// Cell is one td/th element as written in the source, with its spans.
type Cell struct {
	Text    string
	RowSpan int
	ColSpan int
	Header  bool
}

// Table is a parsed HTML table: rows of source cells plus any nested
// tables encountered inside cells (flattened out, in document order).
type Table struct {
	Rows [][]Cell
}

// GridCell is one cell of the rectangular expansion of a table. Cells
// covered by a span share the Text of — and point back to — their origin.
type GridCell struct {
	Text string
	// OriginRow/OriginCol locate the top-left cell of the span this grid
	// position belongs to; for unspanned cells they equal the position.
	OriginRow, OriginCol int
	// Spanned is true when this position is covered by a rowspan/colspan
	// of another position rather than by its own source cell.
	Spanned bool
	// Present is false for positions with no source cell at all (ragged
	// rows padded to the grid width).
	Present bool
	Header  bool
}

// ParseTables extracts every table of an HTML document, in document order.
// Nested tables are returned after their enclosing table and their content
// is removed from the outer table's cells.
func ParseTables(src string) []*Table {
	toks := Tokenize(src)
	var tables []*Table

	type frame struct {
		table  *Table
		row    []Cell
		cell   *Cell
		text   strings.Builder
		inRow  bool
		inCell bool
	}
	var stack []*frame

	closeCell := func(f *frame) {
		if f.inCell && f.cell != nil {
			f.cell.Text = CollapseSpace(f.text.String())
			f.row = append(f.row, *f.cell)
			f.cell = nil
			f.inCell = false
			f.text.Reset()
		}
	}
	closeRow := func(f *frame) {
		closeCell(f)
		if f.inRow {
			f.table.Rows = append(f.table.Rows, f.row)
			f.row = nil
			f.inRow = false
		}
	}

	for _, tok := range toks {
		top := func() *frame {
			if len(stack) == 0 {
				return nil
			}
			return stack[len(stack)-1]
		}
		switch tok.Kind {
		case TokenStartTag:
			switch tok.Name {
			case "table":
				stack = append(stack, &frame{table: &Table{}})
			case "tr":
				if f := top(); f != nil {
					closeRow(f)
					f.inRow = true
				}
			case "td", "th":
				if f := top(); f != nil {
					if !f.inRow {
						f.inRow = true
					}
					closeCell(f)
					c := &Cell{RowSpan: intAttr(tok.Attrs, "rowspan", 1), ColSpan: intAttr(tok.Attrs, "colspan", 1), Header: tok.Name == "th"}
					f.cell = c
					f.inCell = true
				}
			case "br":
				if f := top(); f != nil && f.inCell {
					f.text.WriteByte(' ')
				}
			}
		case TokenEndTag:
			switch tok.Name {
			case "table":
				if f := top(); f != nil {
					closeRow(f)
					tables = append(tables, f.table)
					stack = stack[:len(stack)-1]
				}
			case "tr":
				if f := top(); f != nil {
					closeRow(f)
				}
			case "td", "th":
				if f := top(); f != nil {
					closeCell(f)
				}
			}
		case TokenText:
			if f := top(); f != nil && f.inCell {
				f.text.WriteString(tok.Text)
			}
		}
	}
	// Unclosed tables at EOF are still returned.
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		closeRow(f)
		tables = append(tables, f.table)
		stack = stack[:len(stack)-1]
	}
	return tables
}

func intAttr(attrs map[string]string, name string, def int) int {
	if v, ok := attrs[name]; ok {
		if n, err := strconv.Atoi(strings.TrimSpace(v)); err == nil && n >= 1 {
			return n
		}
	}
	return def
}

// CollapseSpace trims and collapses consecutive whitespace to single
// spaces, the normalization applied to all extracted cell text.
func CollapseSpace(s string) string {
	return strings.Join(strings.Fields(s), " ")
}

// Grid expands the table into a rectangular matrix, resolving rowspan and
// colspan: each source cell occupies a block of grid positions whose
// top-left holds the cell and whose remainder are Spanned references to it.
// Ragged rows are padded with absent cells. This is the representation the
// wrapper matches row patterns against — the multi-row Year cell of Fig. 1
// becomes a value "associated to all the document rows which are adjacent
// to the multi-row cell" (Example 13) precisely because every covered grid
// row sees its text.
func (t *Table) Grid() [][]GridCell {
	if len(t.Rows) == 0 {
		return nil
	}
	// pending[c] = remaining rows the span at column c still covers, with
	// its origin.
	var grid [][]GridCell
	pending := map[int]*hang{}
	width := 0
	for r := 0; r < len(t.Rows); r++ {
		row := make([]GridCell, 0, 8)
		col := 0
		place := func(gc GridCell) {
			row = append(row, gc)
			col++
		}
		// Fill positions covered by spans from above, then source cells.
		srcIdx := 0
		for srcIdx < len(t.Rows[r]) || hasPendingAt(pending, col) {
			if h, ok := pending[col]; ok && h.rows > 0 {
				for k := 0; k < h.cols; k++ {
					place(GridCell{Text: h.text, OriginRow: h.or, OriginCol: h.oc, Spanned: true, Present: true, Header: h.header})
				}
				h.rows--
				if h.rows == 0 {
					delete(pending, col-h.cols)
				}
				continue
			}
			if srcIdx >= len(t.Rows[r]) {
				break
			}
			c := t.Rows[r][srcIdx]
			srcIdx++
			or, oc := r, col
			for k := 0; k < c.ColSpan; k++ {
				place(GridCell{Text: c.Text, OriginRow: or, OriginCol: oc, Spanned: k > 0, Present: true, Header: c.Header})
			}
			if c.RowSpan > 1 {
				pending[oc] = &hang{rows: c.RowSpan - 1, cols: c.ColSpan, text: c.Text, or: or, oc: oc, header: c.Header}
			}
		}
		if len(row) > width {
			width = len(row)
		}
		grid = append(grid, row)
	}
	// Pad ragged rows.
	for r := range grid {
		for len(grid[r]) < width {
			grid[r] = append(grid[r], GridCell{Present: false})
		}
	}
	return grid
}

func hasPendingAt(pending map[int]*hang, col int) bool {
	h, ok := pending[col]
	return ok && h.rows > 0
}

// hang tracks a rowspan still covering upcoming rows during grid expansion.
type hang struct {
	rows   int
	cols   int
	text   string
	or, oc int
	header bool
}

// String renders the expanded grid for debugging and golden tests.
func (t *Table) String() string {
	grid := t.Grid()
	var b strings.Builder
	for _, row := range grid {
		for i, c := range row {
			if i > 0 {
				b.WriteString(" | ")
			}
			switch {
			case !c.Present:
				b.WriteString("·")
			case c.Spanned:
				fmt.Fprintf(&b, "^%s", c.Text)
			default:
				b.WriteString(c.Text)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
