package htmlx

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenizeBasics(t *testing.T) {
	toks := Tokenize(`<table class="x"><tr><td colspan=2>A &amp; B</td></tr></table>`)
	kinds := []TokenKind{TokenStartTag, TokenStartTag, TokenStartTag, TokenText, TokenEndTag, TokenEndTag, TokenEndTag}
	if len(toks) != len(kinds) {
		t.Fatalf("tokens = %d, want %d: %+v", len(toks), len(kinds), toks)
	}
	for i, k := range kinds {
		if toks[i].Kind != k {
			t.Errorf("token %d kind = %v, want %v", i, toks[i].Kind, k)
		}
	}
	if toks[0].Attrs["class"] != "x" {
		t.Errorf("class attr = %q", toks[0].Attrs["class"])
	}
	if toks[2].Attrs["colspan"] != "2" {
		t.Errorf("unquoted attr = %q", toks[2].Attrs["colspan"])
	}
	if toks[3].Text != "A & B" {
		t.Errorf("text = %q", toks[3].Text)
	}
}

func TestTokenizeCommentsDoctypeScript(t *testing.T) {
	src := `<!DOCTYPE html><!-- hidden <td>junk</td> --><script>if (a<b) x();</script><p>ok</p>`
	toks := Tokenize(src)
	var texts []string
	for _, tok := range toks {
		if tok.Kind == TokenText {
			texts = append(texts, tok.Text)
		}
	}
	joined := strings.Join(texts, "")
	if strings.Contains(joined, "junk") || strings.Contains(joined, "x()") {
		t.Errorf("comment/script leaked into text: %q", joined)
	}
	if !strings.Contains(joined, "ok") {
		t.Errorf("content lost: %q", joined)
	}
}

func TestTokenizeSelfClosingAndBadInput(t *testing.T) {
	toks := Tokenize(`<br/><img src='a.png'/>< ><tag`)
	if len(toks) == 0 || toks[0].Name != "br" || !toks[0].SelfClosing {
		t.Errorf("self-closing br: %+v", toks)
	}
	// Must not panic and must not lose trailing text entirely.
	_ = Tokenize("")
	_ = Tokenize("<")
	_ = Tokenize("<!---")
}

func TestDecodeEntities(t *testing.T) {
	tests := []struct{ in, want string }{
		{"A &amp; B", "A & B"},
		{"&lt;x&gt;", "<x>"},
		{"&quot;q&quot;&apos;", `"q"'`},
		{"&#65;&#x42;", "AB"},
		{"&nbsp;", " "},
		{"&unknown;", "&unknown;"},
		{"no entities", "no entities"},
		{"&#xZZ;", "&#xZZ;"},
		{"dangling &", "dangling &"},
	}
	for _, tc := range tests {
		if got := DecodeEntities(tc.in); got != tc.want {
			t.Errorf("DecodeEntities(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestEscapeTextRoundTrip(t *testing.T) {
	in := `a < b & "c" > d`
	if got := DecodeEntities(EscapeText(in)); got != in {
		t.Errorf("round trip = %q", got)
	}
}

func TestParseSimpleTable(t *testing.T) {
	src := `
<table>
 <tr><th>Year</th><th>Value</th></tr>
 <tr><td>2003</td><td>220</td></tr>
</table>`
	tables := ParseTables(src)
	if len(tables) != 1 {
		t.Fatalf("tables = %d", len(tables))
	}
	tb := tables[0]
	if len(tb.Rows) != 2 || len(tb.Rows[0]) != 2 {
		t.Fatalf("rows = %+v", tb.Rows)
	}
	if !tb.Rows[0][0].Header || tb.Rows[1][0].Header {
		t.Error("header flags wrong")
	}
	if tb.Rows[1][0].Text != "2003" || tb.Rows[1][1].Text != "220" {
		t.Errorf("cell text = %+v", tb.Rows[1])
	}
}

func TestParseTableRowspanGrid(t *testing.T) {
	// The Fig. 1 pattern: a Year cell spanning all data rows.
	src := `
<table>
 <tr><td rowspan="3">2003</td><td>Receipts</td><td>beginning cash</td><td>20</td></tr>
 <tr><td rowspan="2">Receipts</td><td>cash sales</td><td>100</td></tr>
 <tr><td>receivables</td><td>120</td></tr>
</table>`
	tables := ParseTables(src)
	if len(tables) != 1 {
		t.Fatal("table count")
	}
	grid := tables[0].Grid()
	if len(grid) != 3 {
		t.Fatalf("grid rows = %d", len(grid))
	}
	// Row 1 and 2 must see the year via the span.
	if grid[1][0].Text != "2003" || !grid[1][0].Spanned {
		t.Errorf("grid[1][0] = %+v", grid[1][0])
	}
	if grid[2][0].Text != "2003" || grid[2][0].OriginRow != 0 {
		t.Errorf("grid[2][0] = %+v", grid[2][0])
	}
	if grid[2][1].Text != "Receipts" || !grid[2][1].Spanned {
		t.Errorf("grid[2][1] = %+v", grid[2][1])
	}
	if grid[1][2].Text != "cash sales" || grid[1][2].Spanned {
		t.Errorf("grid[1][2] = %+v", grid[1][2])
	}
	// All rows have the same width.
	w := len(grid[0])
	for r, row := range grid {
		if len(row) != w {
			t.Errorf("row %d width %d != %d", r, len(row), w)
		}
	}
}

func TestParseTableColspan(t *testing.T) {
	src := `
<table>
 <tr><td colspan="2">wide</td><td>x</td></tr>
 <tr><td>a</td><td>b</td><td>c</td></tr>
</table>`
	grid := ParseTables(src)[0].Grid()
	if grid[0][0].Text != "wide" || grid[0][1].Text != "wide" || !grid[0][1].Spanned {
		t.Errorf("colspan expansion: %+v", grid[0])
	}
	if grid[0][2].Text != "x" {
		t.Errorf("cell after colspan: %+v", grid[0][2])
	}
	if grid[0][1].OriginCol != 0 {
		t.Errorf("origin col = %d", grid[0][1].OriginCol)
	}
}

func TestParseTableRowAndColSpanCombined(t *testing.T) {
	src := `
<table>
 <tr><td rowspan="2" colspan="2">big</td><td>r0</td></tr>
 <tr><td>r1</td></tr>
 <tr><td>a</td><td>b</td><td>c</td></tr>
</table>`
	grid := ParseTables(src)[0].Grid()
	for _, pos := range [][2]int{{0, 0}, {0, 1}, {1, 0}, {1, 1}} {
		c := grid[pos[0]][pos[1]]
		if c.Text != "big" || c.OriginRow != 0 || c.OriginCol != 0 {
			t.Errorf("grid[%d][%d] = %+v", pos[0], pos[1], c)
		}
	}
	if grid[1][2].Text != "r1" {
		t.Errorf("grid[1][2] = %+v", grid[1][2])
	}
	if grid[2][0].Text != "a" || grid[2][2].Text != "c" {
		t.Errorf("row 2 = %+v", grid[2])
	}
}

func TestParseRaggedRowsPadded(t *testing.T) {
	src := `<table><tr><td>a</td><td>b</td></tr><tr><td>only</td></tr></table>`
	grid := ParseTables(src)[0].Grid()
	if len(grid[1]) != 2 {
		t.Fatalf("row 1 width = %d", len(grid[1]))
	}
	if grid[1][1].Present {
		t.Error("padding cell should be absent")
	}
}

func TestParseMultipleAndNestedTables(t *testing.T) {
	src := `
<table><tr><td>outer1</td></tr></table>
<p>between</p>
<table><tr><td><table><tr><td>inner</td></tr></table></td><td>outer2</td></tr></table>`
	tables := ParseTables(src)
	if len(tables) != 3 {
		t.Fatalf("tables = %d, want 3", len(tables))
	}
	if tables[0].Rows[0][0].Text != "outer1" {
		t.Errorf("first table: %+v", tables[0].Rows)
	}
	// The inner table closes before its parent.
	if tables[1].Rows[0][0].Text != "inner" {
		t.Errorf("second table: %+v", tables[1].Rows)
	}
	if got := tables[2].Rows[0][1].Text; got != "outer2" {
		t.Errorf("outer cell: %q", got)
	}
}

func TestParseUnclosedTable(t *testing.T) {
	src := `<table><tr><td>a</td><td>b`
	tables := ParseTables(src)
	if len(tables) != 1 {
		t.Fatalf("tables = %d", len(tables))
	}
	row := tables[0].Rows[0]
	if len(row) != 2 || row[1].Text != "b" {
		t.Errorf("rows = %+v", tables[0].Rows)
	}
}

func TestCellTextNormalization(t *testing.T) {
	src := "<table><tr><td>  beginning\n   cash </td><td>A<br>B</td></tr></table>"
	row := ParseTables(src)[0].Rows[0]
	if row[0].Text != "beginning cash" {
		t.Errorf("text = %q", row[0].Text)
	}
	if row[1].Text != "A B" {
		t.Errorf("br handling = %q", row[1].Text)
	}
}

func TestTableString(t *testing.T) {
	src := `<table><tr><td rowspan="2">y</td><td>a</td></tr><tr><td>b</td></tr></table>`
	s := ParseTables(src)[0].String()
	if !strings.Contains(s, "^y") {
		t.Errorf("String() = %q, expected spanned marker", s)
	}
	var empty Table
	if empty.Grid() != nil {
		t.Error("empty table grid should be nil")
	}
}

func TestInvalidSpanAttributesDefaultToOne(t *testing.T) {
	src := `<table><tr><td rowspan="0" colspan="banana">x</td></tr></table>`
	c := ParseTables(src)[0].Rows[0][0]
	if c.RowSpan != 1 || c.ColSpan != 1 {
		t.Errorf("spans = %d, %d", c.RowSpan, c.ColSpan)
	}
}

func TestTokenizeNeverPanicsProperty(t *testing.T) {
	f := func(s string) bool {
		_ = Tokenize(s)
		_ = ParseTables(s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(17))}); err != nil {
		t.Error(err)
	}
}

func TestGridAlwaysRectangularProperty(t *testing.T) {
	// For random small span structures, the grid expansion is rectangular.
	f := func(spans []uint8) bool {
		var b strings.Builder
		b.WriteString("<table>")
		i := 0
		for r := 0; r < 3; r++ {
			b.WriteString("<tr>")
			for c := 0; c < 3; c++ {
				rs, cs := 1, 1
				if i < len(spans) {
					rs = 1 + int(spans[i]%3)
					cs = 1 + int(spans[i]/3%3)
					i++
				}
				fmt.Fprintf(&b, `<td rowspan="%d" colspan="%d">x</td>`, rs, cs)
			}
			b.WriteString("</tr>")
		}
		b.WriteString("</table>")
		tables := ParseTables(b.String())
		if len(tables) != 1 {
			return false
		}
		grid := tables[0].Grid()
		if len(grid) == 0 {
			return false
		}
		w := len(grid[0])
		for _, row := range grid {
			if len(row) != w {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(19))}); err != nil {
		t.Error(err)
	}
}
