// Package htmlx implements the HTML substrate of DART's extraction path: a
// tolerant tokenizer for the HTML subset the acquisition module produces,
// and a table model that expands rowspan/colspan cells into a rectangular
// grid. Handling tables with "variable" structure — cells spanning multiple
// rows and columns with no pre-determined scheme — is one of the paper's
// claimed novelties (Section 1, contribution 1), exercised here by the
// multi-row Year cells of Fig. 1.
package htmlx

import (
	"strings"
)

// TokenKind classifies tokens.
type TokenKind int

const (
	// TokenText is character data between tags (entity-decoded).
	TokenText TokenKind = iota
	// TokenStartTag is an opening tag (possibly self-closing).
	TokenStartTag
	// TokenEndTag is a closing tag.
	TokenEndTag
)

// Token is one lexical unit of an HTML document.
type Token struct {
	Kind        TokenKind
	Name        string // tag name, lower-cased (start/end tags)
	Text        string // character data (text tokens)
	Attrs       map[string]string
	SelfClosing bool
}

// Tokenize splits HTML source into tokens. It is deliberately tolerant:
// unknown constructs are skipped, attributes may be unquoted, comments and
// doctypes are dropped. Script and style elements are skipped entirely.
func Tokenize(src string) []Token {
	var toks []Token
	i, n := 0, len(src)
	var text strings.Builder
	flushText := func() {
		if text.Len() > 0 {
			toks = append(toks, Token{Kind: TokenText, Text: DecodeEntities(text.String())})
			text.Reset()
		}
	}
	for i < n {
		c := src[i]
		if c != '<' {
			text.WriteByte(c)
			i++
			continue
		}
		// Comment?
		if strings.HasPrefix(src[i:], "<!--") {
			flushText()
			end := strings.Index(src[i+4:], "-->")
			if end < 0 {
				break
			}
			i += 4 + end + 3
			continue
		}
		// Doctype or other declaration.
		if strings.HasPrefix(src[i:], "<!") || strings.HasPrefix(src[i:], "<?") {
			flushText()
			end := strings.IndexByte(src[i:], '>')
			if end < 0 {
				break
			}
			i += end + 1
			continue
		}
		// Tag.
		end := strings.IndexByte(src[i:], '>')
		if end < 0 {
			// Trailing junk: treat as text.
			text.WriteString(src[i:])
			break
		}
		raw := src[i+1 : i+end]
		i += end + 1
		flushText()
		tok, ok := parseTag(raw)
		if !ok {
			continue
		}
		toks = append(toks, tok)
		// Skip raw content of script/style.
		if tok.Kind == TokenStartTag && !tok.SelfClosing && (tok.Name == "script" || tok.Name == "style") {
			closer := "</" + tok.Name
			idx := strings.Index(strings.ToLower(src[i:]), closer)
			if idx < 0 {
				break
			}
			i += idx
		}
	}
	flushText()
	return toks
}

// parseTag parses the inside of <...>.
func parseTag(raw string) (Token, bool) {
	raw = strings.TrimSpace(raw)
	if raw == "" {
		return Token{}, false
	}
	end := false
	if raw[0] == '/' {
		end = true
		raw = strings.TrimSpace(raw[1:])
	}
	selfClosing := false
	if strings.HasSuffix(raw, "/") {
		selfClosing = true
		raw = strings.TrimSpace(raw[:len(raw)-1])
	}
	// Tag name.
	j := 0
	for j < len(raw) && !isSpace(raw[j]) {
		j++
	}
	name := strings.ToLower(raw[:j])
	if name == "" {
		return Token{}, false
	}
	if end {
		return Token{Kind: TokenEndTag, Name: name}, true
	}
	tok := Token{Kind: TokenStartTag, Name: name, SelfClosing: selfClosing, Attrs: map[string]string{}}
	// Attributes.
	k := j
	for k < len(raw) {
		for k < len(raw) && isSpace(raw[k]) {
			k++
		}
		if k >= len(raw) {
			break
		}
		start := k
		for k < len(raw) && raw[k] != '=' && !isSpace(raw[k]) {
			k++
		}
		attr := strings.ToLower(raw[start:k])
		val := ""
		for k < len(raw) && isSpace(raw[k]) {
			k++
		}
		if k < len(raw) && raw[k] == '=' {
			k++
			for k < len(raw) && isSpace(raw[k]) {
				k++
			}
			if k < len(raw) && (raw[k] == '"' || raw[k] == '\'') {
				q := raw[k]
				k++
				vs := k
				for k < len(raw) && raw[k] != q {
					k++
				}
				val = raw[vs:k]
				if k < len(raw) {
					k++
				}
			} else {
				vs := k
				for k < len(raw) && !isSpace(raw[k]) {
					k++
				}
				val = raw[vs:k]
			}
		}
		if attr != "" {
			tok.Attrs[attr] = DecodeEntities(val)
		}
	}
	return tok, true
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }

// entityTable maps the named entities the converter emits.
var entityTable = map[string]string{
	"amp": "&", "lt": "<", "gt": ">", "quot": `"`, "apos": "'", "nbsp": " ",
}

// DecodeEntities resolves named and numeric character references.
func DecodeEntities(s string) string {
	if !strings.Contains(s, "&") {
		return s
	}
	var b strings.Builder
	i := 0
	for i < len(s) {
		c := s[i]
		if c != '&' {
			b.WriteByte(c)
			i++
			continue
		}
		semi := strings.IndexByte(s[i:], ';')
		if semi < 0 || semi > 10 {
			b.WriteByte(c)
			i++
			continue
		}
		ent := s[i+1 : i+semi]
		if rep, ok := entityTable[ent]; ok {
			b.WriteString(rep)
			i += semi + 1
			continue
		}
		if strings.HasPrefix(ent, "#") {
			num := ent[1:]
			base := 10
			if strings.HasPrefix(num, "x") || strings.HasPrefix(num, "X") {
				base = 16
				num = num[1:]
			}
			var r rune
			ok := len(num) > 0
			for _, d := range num {
				var v rune
				switch {
				case d >= '0' && d <= '9':
					v = d - '0'
				case base == 16 && d >= 'a' && d <= 'f':
					v = d - 'a' + 10
				case base == 16 && d >= 'A' && d <= 'F':
					v = d - 'A' + 10
				default:
					ok = false
				}
				if !ok {
					break
				}
				r = r*rune(base) + v
			}
			if ok && r > 0 {
				b.WriteRune(r)
				i += semi + 1
				continue
			}
		}
		b.WriteByte(c)
		i++
	}
	return b.String()
}

// EscapeText escapes character data for embedding in HTML.
func EscapeText(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
