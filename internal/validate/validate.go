// Package validate implements the Validation Interface of Section 6.3: the
// computed repair is presented to an operator update by update — ordered by
// how many ground constraints the updated item participates in, the paper's
// display-ordering heuristic — and every decision becomes a forced-value
// constraint for the next repair computation. Accepting an update pins the
// suggested value; rejecting it pins the actual source value the operator
// reads off the document. The loop re-solves until a repair is fully
// accepted. Values validated in earlier iterations are never presented
// again.
package validate

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"dart/internal/aggrcons"
	"dart/internal/core"
	"dart/internal/milp"
	"dart/internal/relational"
)

// Decision is an operator's verdict on one proposed update.
type Decision struct {
	// Accepted means the suggested value matches the source document.
	Accepted bool
	// ActualValue is the true source value (meaningful when !Accepted).
	ActualValue float64
}

// Operator reviews proposed updates by comparing them with the source
// document.
type Operator interface {
	// Review decides on one proposed update.
	Review(u core.Update) Decision
}

// OracleOperator simulates a human operator who reads the (ground-truth)
// source document perfectly: it accepts an update iff the suggested value
// equals the true value, and supplies the true value otherwise. Experiments
// use it to measure operator effort without a human in the loop.
type OracleOperator struct {
	Truth *relational.Database
}

// Review implements Operator.
func (o *OracleOperator) Review(u core.Update) Decision {
	rel := o.Truth.Relation(u.Item.Relation)
	if rel == nil {
		return Decision{Accepted: false, ActualValue: u.Old.AsFloat()}
	}
	t := rel.TupleByID(u.Item.TupleID)
	if t == nil {
		return Decision{Accepted: false, ActualValue: u.Old.AsFloat()}
	}
	truth := t.Get(u.Item.Attr).AsFloat()
	if u.New.AsFloat() == truth {
		return Decision{Accepted: true, ActualValue: truth}
	}
	return Decision{Accepted: false, ActualValue: truth}
}

// InteractiveOperator prompts a human on the given streams: 'y' accepts,
// anything else asks for the actual value.
type InteractiveOperator struct {
	In  io.Reader
	Out io.Writer

	scanner *bufio.Scanner
}

// Review implements Operator.
func (o *InteractiveOperator) Review(u core.Update) Decision {
	if o.scanner == nil {
		o.scanner = bufio.NewScanner(o.In)
	}
	fmt.Fprintf(o.Out, "Proposed update: %s\n", u)
	for {
		fmt.Fprintf(o.Out, "Accept? [y/n] ")
		if !o.scanner.Scan() {
			return Decision{Accepted: true}
		}
		switch strings.ToLower(strings.TrimSpace(o.scanner.Text())) {
		case "y", "yes":
			return Decision{Accepted: true}
		case "n", "no":
			fmt.Fprintf(o.Out, "Actual source value: ")
			if !o.scanner.Scan() {
				return Decision{Accepted: true}
			}
			v, err := strconv.ParseFloat(strings.TrimSpace(o.scanner.Text()), 64)
			if err != nil {
				fmt.Fprintf(o.Out, "not a number: %v\n", err)
				continue
			}
			return Decision{Accepted: false, ActualValue: v}
		default:
			fmt.Fprintf(o.Out, "please answer y or n\n")
		}
	}
}

// Session drives one document's validation loop.
type Session struct {
	DB          *relational.Database
	Constraints []*aggrcons.Constraint
	Solver      core.Solver
	Operator    Operator
	// Context, when non-nil, bounds every repair computation of the loop;
	// nil means context.Background().
	Context context.Context
	// ReviewPerIteration restarts the repair computation after validating
	// this many updates per iteration; 0 reviews the whole proposed repair
	// before re-solving (the paper notes re-starting "after validating only
	// some of the suggested updates" as a designer choice).
	ReviewPerIteration int
	// MaxIterations caps the loop (default 100).
	MaxIterations int
	// AutoAcceptReliable accepts without operator review any proposed
	// update whose item takes the same value in every card-minimal repair
	// (the consistent answer of [16]) — an extension beyond the paper that
	// trades a small recovery risk for fewer operator decisions; experiment
	// E12 quantifies the trade.
	AutoAcceptReliable bool
}

// Outcome reports the finished loop.
type Outcome struct {
	// Repaired is the final consistent database.
	Repaired *relational.Database
	// Final is the accepted repair (operator-corrected values included).
	Final *core.Repair
	// Iterations is the number of repair computations performed.
	Iterations int
	// Examined counts operator decisions (the paper's human-effort metric:
	// values compared against the source document).
	Examined int
	// Accepted and Rejected split Examined by verdict.
	Accepted, Rejected int
	// AutoAccepted counts updates accepted via reliability analysis without
	// consulting the operator (only with Session.AutoAcceptReliable).
	AutoAccepted int
	// Forced is the final set of operator-pinned values.
	Forced map[core.Item]float64
}

// Run executes the validation loop to acceptance.
func (s *Session) Run() (*Outcome, error) {
	maxIters := s.MaxIterations
	if maxIters == 0 {
		maxIters = 100
	}
	ctx := s.Context
	if ctx == nil {
		ctx = context.Background()
	}
	out := &Outcome{Forced: map[core.Item]float64{}}
	validated := map[core.Item]bool{}

	// The ordering heuristic needs per-item ground-constraint counts.
	sys, err := core.BuildSystem(s.DB, s.Constraints)
	if err != nil {
		return nil, err
	}
	occ := sys.Occurrences()
	occOf := func(it core.Item) int {
		if i := sys.IndexOf(it); i >= 0 {
			return occ[i]
		}
		return 0
	}

	for out.Iterations < maxIters {
		out.Iterations++
		res, err := core.FindRepairCtx(ctx, s.Solver, s.DB, s.Constraints, out.Forced)
		if err != nil {
			return nil, err
		}
		if res.Status != milp.StatusOptimal {
			return nil, fmt.Errorf("validate: repair computation ended with status %v", res.Status)
		}
		// Pending updates, ordered by descending constraint participation
		// (Section 6.3's display order), ties broken by item order.
		var pending []core.Update
		var reliableItems map[core.Item]float64
		if s.AutoAcceptReliable {
			rel, err := core.ReliableValues(s.DB, s.Constraints, core.EnumerateOptions{
				Forced: out.Forced,
			})
			if err != nil {
				return nil, err
			}
			reliableItems = map[core.Item]float64{}
			for _, r := range rel {
				if r.Reliable {
					reliableItems[r.Item] = r.Values[0]
				}
			}
		}
		for _, u := range res.Repair.Updates {
			if validated[u.Item] {
				continue
			}
			if v, ok := reliableItems[u.Item]; ok && v == u.New.AsFloat() {
				// The update is forced by every card-minimal repair: accept
				// it without bothering the operator.
				validated[u.Item] = true
				out.Forced[u.Item] = v
				out.AutoAccepted++
				continue
			}
			pending = append(pending, u)
		}
		sort.SliceStable(pending, func(i, j int) bool {
			oi, oj := occOf(pending[i].Item), occOf(pending[j].Item)
			return oi > oj
		})
		if len(pending) == 0 {
			// Every update of the proposed repair has been validated: the
			// repair is accepted.
			repaired, err := core.VerifyRepairs(s.DB, s.Constraints, res.Repair, 1e-6)
			if err != nil {
				return nil, err
			}
			out.Repaired = repaired
			out.Final = res.Repair
			return out, nil
		}
		review := len(pending)
		if s.ReviewPerIteration > 0 && s.ReviewPerIteration < review {
			review = s.ReviewPerIteration
		}
		allAccepted := true
		for _, u := range pending[:review] {
			d := s.Operator.Review(u)
			out.Examined++
			validated[u.Item] = true
			if d.Accepted {
				out.Accepted++
				out.Forced[u.Item] = u.New.AsFloat()
			} else {
				out.Rejected++
				allAccepted = false
				out.Forced[u.Item] = d.ActualValue
			}
		}
		if allAccepted && review == len(pending) {
			repaired, err := core.VerifyRepairs(s.DB, s.Constraints, res.Repair, 1e-6)
			if err != nil {
				return nil, err
			}
			out.Repaired = repaired
			out.Final = res.Repair
			return out, nil
		}
	}
	return nil, fmt.Errorf("validate: no accepted repair within %d iterations", maxIters)
}
