// Package validate implements the Validation Interface of Section 6.3: the
// computed repair is presented to an operator update by update — ordered by
// how many ground constraints the updated item participates in, the paper's
// display-ordering heuristic — and every decision becomes a forced-value
// constraint for the next repair computation. Accepting an update pins the
// suggested value; rejecting it pins the actual source value the operator
// reads off the document. The loop re-solves until a repair is fully
// accepted. Values validated in earlier iterations are never presented
// again.
//
// The loop grounds the constraint system exactly once: Run prepares a
// core.Problem up front (or adopts one via Session.Problem) and every
// iteration re-solves the prepared problem under the accumulated pins, so
// multi-iteration sessions do not pay a per-iteration grounding cost.
package validate

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"

	"dart/internal/aggrcons"
	"dart/internal/core"
	"dart/internal/milp"
	"dart/internal/obs"
	"dart/internal/relational"
)

// ErrInputClosed reports that the operator's input stream ended before a
// decision was read. Silently accepting the remaining updates would let an
// aborted session (a closed pipe, a hung-up terminal) commit unreviewed
// values, so the loop surfaces the condition instead.
var ErrInputClosed = errors.New("validate: operator input closed before a decision was read")

// Decision is an operator's verdict on one proposed update.
type Decision struct {
	// Accepted means the suggested value matches the source document.
	Accepted bool
	// ActualValue is the true source value (meaningful when !Accepted).
	ActualValue float64
}

// Operator reviews proposed updates by comparing them with the source
// document.
type Operator interface {
	// Review decides on one proposed update. A non-nil error aborts the
	// validation loop (e.g. ErrInputClosed when an interactive operator's
	// input stream ends mid-review).
	Review(u core.Update) (Decision, error)
}

// OracleOperator simulates a human operator who reads the (ground-truth)
// source document perfectly: it accepts an update iff the suggested value
// equals the true value, and supplies the true value otherwise. Experiments
// use it to measure operator effort without a human in the loop.
type OracleOperator struct {
	Truth *relational.Database
}

// Review implements Operator.
func (o *OracleOperator) Review(u core.Update) (Decision, error) {
	rel := o.Truth.Relation(u.Item.Relation)
	if rel == nil {
		return Decision{Accepted: false, ActualValue: u.Old.AsFloat()}, nil
	}
	t := rel.TupleByID(u.Item.TupleID)
	if t == nil {
		return Decision{Accepted: false, ActualValue: u.Old.AsFloat()}, nil
	}
	truth := t.Get(u.Item.Attr).AsFloat()
	if u.New.AsFloat() == truth {
		return Decision{Accepted: true, ActualValue: truth}, nil
	}
	return Decision{Accepted: false, ActualValue: truth}, nil
}

// InteractiveOperator prompts a human on the given streams: 'y' accepts,
// anything else asks for the actual value. When the input stream ends
// before a decision is read, Review fails with ErrInputClosed (wrapping
// any scanner error).
type InteractiveOperator struct {
	In  io.Reader
	Out io.Writer

	scanner *bufio.Scanner
}

// Review implements Operator.
func (o *InteractiveOperator) Review(u core.Update) (Decision, error) {
	if o.scanner == nil {
		o.scanner = bufio.NewScanner(o.In)
	}
	fmt.Fprintf(o.Out, "Proposed update: %s\n", u)
	for {
		fmt.Fprintf(o.Out, "Accept? [y/n] ")
		if !o.scanner.Scan() {
			return Decision{}, o.inputClosed()
		}
		switch strings.ToLower(strings.TrimSpace(o.scanner.Text())) {
		case "y", "yes":
			return Decision{Accepted: true}, nil
		case "n", "no":
			fmt.Fprintf(o.Out, "Actual source value: ")
			if !o.scanner.Scan() {
				return Decision{}, o.inputClosed()
			}
			v, err := strconv.ParseFloat(strings.TrimSpace(o.scanner.Text()), 64)
			if err != nil {
				fmt.Fprintf(o.Out, "not a number: %v\n", err)
				continue
			}
			return Decision{Accepted: false, ActualValue: v}, nil
		default:
			fmt.Fprintf(o.Out, "please answer y or n\n")
		}
	}
}

// inputClosed wraps a scanner failure into ErrInputClosed, keeping the
// underlying read error (if any) inspectable via errors.Is/As.
func (o *InteractiveOperator) inputClosed() error {
	if err := o.scanner.Err(); err != nil {
		return fmt.Errorf("%w: %w", ErrInputClosed, err)
	}
	return ErrInputClosed
}

// Session drives one document's validation loop.
type Session struct {
	DB          *relational.Database
	Constraints []*aggrcons.Constraint
	Solver      core.Solver
	Operator    Operator
	// Problem, when non-nil, supplies an already-prepared repair problem
	// for (DB, Constraints); Run prepares one otherwise. Sharing a problem
	// across sessions of the same database additionally shares the
	// component-solve memo.
	Problem *core.Problem
	// DisablePreparedReuse makes every iteration re-ground and re-solve
	// from scratch (the pre-refactor behaviour). It exists for the
	// differential tests and the BenchmarkValidationLoop baseline; results
	// are identical either way.
	DisablePreparedReuse bool
	// Observe, when non-nil, receives the latency of the one-time problem
	// preparation ("prepare") and of every in-loop repair computation
	// ("resolve").
	Observe func(stage string, d time.Duration)
	// Context, when non-nil, bounds every repair computation of the loop;
	// nil means context.Background().
	Context context.Context
	// ReviewPerIteration restarts the repair computation after validating
	// this many updates per iteration; 0 reviews the whole proposed repair
	// before re-solving (the paper notes re-starting "after validating only
	// some of the suggested updates" as a designer choice).
	ReviewPerIteration int
	// MaxIterations caps the loop (default 100).
	MaxIterations int
	// AutoAcceptReliable accepts without operator review any proposed
	// update whose item takes the same value in every card-minimal repair
	// (the consistent answer of [16]) — an extension beyond the paper that
	// trades a small recovery risk for fewer operator decisions; experiment
	// E12 quantifies the trade.
	AutoAcceptReliable bool
}

// Outcome reports the finished loop.
type Outcome struct {
	// Repaired is the final consistent database.
	Repaired *relational.Database
	// Final is the accepted repair (operator-corrected values included).
	Final *core.Repair
	// Iterations is the number of repair computations performed.
	Iterations int
	// Examined counts operator decisions (the paper's human-effort metric:
	// values compared against the source document).
	Examined int
	// Accepted and Rejected split Examined by verdict.
	Accepted, Rejected int
	// AutoAccepted counts updates accepted via reliability analysis without
	// consulting the operator (only with Session.AutoAcceptReliable).
	AutoAccepted int
	// ComponentsSolved and ComponentsReused count component-level solver
	// work across the loop; reused components were served from the prepared
	// problem's memo without re-solving (both 0 with DisablePreparedReuse).
	ComponentsSolved, ComponentsReused int
	// SolverNodes totals the branch-and-bound nodes explored across every
	// solve of the loop (schedule-dependent under parallel solving).
	SolverNodes int
	// Forced is the final set of operator-pinned values.
	Forced map[core.Item]float64
}

// observe reports one timed stage to the session's observer, if any.
func (s *Session) observe(stage string, start time.Time) {
	if s.Observe != nil {
		s.Observe(stage, time.Since(start))
	}
}

// Run executes the validation loop to acceptance.
func (s *Session) Run() (*Outcome, error) {
	maxIters := s.MaxIterations
	if maxIters == 0 {
		maxIters = 100
	}
	ctx := s.Context
	if ctx == nil {
		ctx = context.Background()
	}
	out := &Outcome{Forced: map[core.Item]float64{}}
	validated := map[core.Item]bool{}

	// Ground once: the prepared problem carries the linear system, the
	// component decomposition, and the per-item ground-constraint counts
	// the ordering heuristic needs.
	prob := s.Problem
	if prob == nil {
		start := time.Now()
		var err error
		prob, err = core.Prepare(s.DB, s.Constraints)
		if err != nil {
			return nil, err
		}
		s.observe("prepare", start)
	}
	statsBefore := prob.Stats()
	occ := prob.Occurrences()
	occOf := func(it core.Item) int {
		if i := prob.System().IndexOf(it); i >= 0 {
			return occ[i]
		}
		return 0
	}

	for out.Iterations < maxIters {
		out.Iterations++
		done, res, err := s.iterate(ctx, prob, out, validated, occOf)
		if err != nil {
			return nil, err
		}
		if done {
			return s.finish(out, prob, statsBefore, res)
		}
	}
	return nil, fmt.Errorf("validate: no accepted repair within %d iterations", maxIters)
}

// iterate runs one solve-review round of the loop. It reports done=true when
// every update of the proposed repair has been validated (the repair is
// accepted, res carries it). When tracing is active each round becomes one
// "validate.iteration" span — carrying the solve beneath it plus counters for
// the round's accepted/rejected/auto-accepted decisions — so a deferred End
// covers every exit path of the round uniformly.
func (s *Session) iterate(ctx context.Context, prob *core.Problem, out *Outcome, validated map[core.Item]bool, occOf func(core.Item) int) (done bool, res *core.Result, err error) {
	if span := obs.FromContext(ctx).StartChild("validate.iteration"); span != nil {
		span.SetInt("iteration", out.Iterations)
		ctx = obs.ContextWithSpan(ctx, span)
		accepted, rejected, auto := out.Accepted, out.Rejected, out.AutoAccepted
		defer func() {
			span.SetInt("accepted", out.Accepted-accepted)
			span.SetInt("rejected", out.Rejected-rejected)
			span.SetInt("auto_accepted", out.AutoAccepted-auto)
			if err != nil {
				span.SetStr("error", err.Error())
			}
			span.End()
		}()
	}
	start := time.Now()
	if s.DisablePreparedReuse {
		res, err = core.FindRepairCtx(ctx, s.Solver, s.DB, s.Constraints, out.Forced)
	} else {
		res, err = s.Solver.SolveProblem(ctx, prob, out.Forced)
	}
	s.observe("resolve", start)
	if err != nil {
		return false, nil, err
	}
	out.SolverNodes += res.Nodes
	if res.Status != milp.StatusOptimal {
		return false, nil, fmt.Errorf("validate: repair computation ended with status %v", res.Status)
	}
	// Pending updates, ordered by descending constraint participation
	// (Section 6.3's display order), ties broken by item order.
	var pending []core.Update
	var reliableItems map[core.Item]float64
	if s.AutoAcceptReliable {
		opts := core.EnumerateOptions{Forced: out.Forced}
		var rel []core.Reliability
		if s.DisablePreparedReuse {
			rel, err = core.ReliableValues(s.DB, s.Constraints, opts)
		} else {
			rel, err = prob.ReliableValues(opts)
		}
		if err != nil {
			return false, nil, err
		}
		reliableItems = map[core.Item]float64{}
		for _, r := range rel {
			if r.Reliable {
				reliableItems[r.Item] = r.Values[0]
			}
		}
	}
	for _, u := range res.Repair.Updates {
		if validated[u.Item] {
			continue
		}
		if v, ok := reliableItems[u.Item]; ok && v == u.New.AsFloat() {
			// The update is forced by every card-minimal repair: accept
			// it without bothering the operator.
			validated[u.Item] = true
			out.Forced[u.Item] = v
			out.AutoAccepted++
			continue
		}
		pending = append(pending, u)
	}
	sort.SliceStable(pending, func(i, j int) bool {
		oi, oj := occOf(pending[i].Item), occOf(pending[j].Item)
		return oi > oj
	})
	if len(pending) == 0 {
		// Every update of the proposed repair has been validated: the
		// repair is accepted.
		return true, res, nil
	}
	review := len(pending)
	if s.ReviewPerIteration > 0 && s.ReviewPerIteration < review {
		review = s.ReviewPerIteration
	}
	allAccepted := true
	for _, u := range pending[:review] {
		d, rerr := s.Operator.Review(u)
		if rerr != nil {
			err = fmt.Errorf("validate: operator review: %w", rerr)
			return false, nil, err
		}
		out.Examined++
		validated[u.Item] = true
		if d.Accepted {
			out.Accepted++
			out.Forced[u.Item] = u.New.AsFloat()
		} else {
			out.Rejected++
			allAccepted = false
			out.Forced[u.Item] = d.ActualValue
		}
	}
	return allAccepted && review == len(pending), res, nil
}

// finish verifies the accepted repair and closes the outcome's counters.
func (s *Session) finish(out *Outcome, prob *core.Problem, statsBefore core.ProblemStats, res *core.Result) (*Outcome, error) {
	repaired, err := core.VerifyRepairs(s.DB, s.Constraints, res.Repair, 1e-6)
	if err != nil {
		return nil, err
	}
	out.Repaired = repaired
	out.Final = res.Repair
	stats := prob.Stats()
	out.ComponentsSolved = stats.ComponentsSolved - statsBefore.ComponentsSolved
	out.ComponentsReused = stats.ComponentsReused - statsBefore.ComponentsReused
	return out, nil
}
