// Package validate implements the Validation Interface of Section 6.3: the
// computed repair is presented to an operator update by update — ordered by
// how many ground constraints the updated item participates in, the paper's
// display-ordering heuristic — and every decision becomes a forced-value
// constraint for the next repair computation. Accepting an update pins the
// suggested value; rejecting it pins the actual source value the operator
// reads off the document. The loop re-solves until a repair is fully
// accepted. Values validated in earlier iterations are never presented
// again.
//
// Since the auditable-repair refactor the loop is non-destructive: the
// acquired database is never mutated. Every candidate update becomes a
// repair.Suggestion in a repair.Ledger (proposed → accepted/rejected, with
// revert and supersede transitions, who/when audit fields, and a replayable
// event journal), decisions are made by a generic repair.Decider — the
// stdin Operator is one driver of it, the dartd HTTP workbench another —
// and the final repaired database is materialized through a repair.Overlay
// from base + pinned decisions.
//
// The loop grounds the constraint system exactly once: Run prepares a
// core.Problem up front (or adopts one via Session.Problem) and every
// iteration re-solves the prepared problem under the accumulated pins, so
// multi-iteration sessions do not pay a per-iteration grounding cost.
package validate

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"dart/internal/aggrcons"
	"dart/internal/core"
	"dart/internal/milp"
	"dart/internal/obs"
	"dart/internal/relational"
	"dart/internal/repair"
)

// ErrInputClosed reports that the operator's input stream ended before a
// decision was read. Silently accepting the remaining updates would let an
// aborted session (a closed pipe, a hung-up terminal) commit unreviewed
// values, so the loop surfaces the condition instead.
var ErrInputClosed = errors.New("validate: operator input closed before a decision was read")

// Decision is an operator's verdict on one proposed update.
type Decision struct {
	// Accepted means the suggested value matches the source document.
	Accepted bool
	// ActualValue is the true source value (meaningful when !Accepted).
	ActualValue float64
}

// Operator reviews proposed updates by comparing them with the source
// document.
type Operator interface {
	// Review decides on one proposed update. A non-nil error aborts the
	// validation loop (e.g. ErrInputClosed when an interactive operator's
	// input stream ends mid-review).
	Review(u core.Update) (Decision, error)
}

// OracleOperator simulates a human operator who reads the (ground-truth)
// source document perfectly: it accepts an update iff the suggested value
// equals the true value, and supplies the true value otherwise. Experiments
// use it to measure operator effort without a human in the loop.
type OracleOperator struct {
	Truth *relational.Database
}

// Review implements Operator.
func (o *OracleOperator) Review(u core.Update) (Decision, error) {
	rel := o.Truth.Relation(u.Item.Relation)
	if rel == nil {
		return Decision{Accepted: false, ActualValue: u.Old.AsFloat()}, nil
	}
	t := rel.TupleByID(u.Item.TupleID)
	if t == nil {
		return Decision{Accepted: false, ActualValue: u.Old.AsFloat()}, nil
	}
	truth := t.Get(u.Item.Attr).AsFloat()
	if u.New.AsFloat() == truth {
		return Decision{Accepted: true, ActualValue: truth}, nil
	}
	return Decision{Accepted: false, ActualValue: truth}, nil
}

// InteractiveOperator prompts a human on the given streams: 'y' accepts,
// anything else asks for the actual value. When the input stream ends
// before a decision is read, Review fails with ErrInputClosed (wrapping
// any scanner error).
type InteractiveOperator struct {
	In  io.Reader
	Out io.Writer

	scanner *bufio.Scanner
}

// Review implements Operator.
func (o *InteractiveOperator) Review(u core.Update) (Decision, error) {
	if o.scanner == nil {
		o.scanner = bufio.NewScanner(o.In)
	}
	fmt.Fprintf(o.Out, "Proposed update: %s\n", u)
	for {
		fmt.Fprintf(o.Out, "Accept? [y/n] ")
		if !o.scanner.Scan() {
			return Decision{}, o.inputClosed()
		}
		switch strings.ToLower(strings.TrimSpace(o.scanner.Text())) {
		case "y", "yes":
			return Decision{Accepted: true}, nil
		case "n", "no":
			fmt.Fprintf(o.Out, "Actual source value: ")
			if !o.scanner.Scan() {
				return Decision{}, o.inputClosed()
			}
			v, err := strconv.ParseFloat(strings.TrimSpace(o.scanner.Text()), 64)
			if err != nil {
				fmt.Fprintf(o.Out, "not a number: %v\n", err)
				continue
			}
			return Decision{Accepted: false, ActualValue: v}, nil
		default:
			fmt.Fprintf(o.Out, "please answer y or n\n")
		}
	}
}

// inputClosed wraps a scanner failure into ErrInputClosed, keeping the
// underlying read error (if any) inspectable via errors.Is/As.
func (o *InteractiveOperator) inputClosed() error {
	if err := o.scanner.Err(); err != nil {
		return fmt.Errorf("%w: %w", ErrInputClosed, err)
	}
	return ErrInputClosed
}

// OperatorDecider drives a suggestion ledger with a per-update Operator:
// the stdin and oracle operators become one Decider among others. Each
// open suggestion is presented in review order; the verdict is applied to
// the ledger only after the context is re-checked, so a decision arriving
// after cancellation is discarded rather than partially applied.
type OperatorDecider struct {
	Operator Operator
	// Who is recorded as the deciding identity (default "operator").
	Who string
}

// Decide implements repair.Decider.
func (d *OperatorDecider) Decide(ctx context.Context, l *repair.Ledger, open []repair.Suggestion) error {
	for _, sg := range open {
		u, err := suggestionUpdate(sg)
		if err != nil {
			return err
		}
		dec, rerr := d.Operator.Review(u)
		if rerr != nil {
			return fmt.Errorf("validate: operator review: %w", rerr)
		}
		// Decide-then-check: the review may have blocked (a human at a
		// terminal) past the session's deadline or cancellation. Checking
		// the context *before* touching the ledger guarantees a late
		// verdict is never applied — the round aborts with no partial
		// decision recorded.
		if err := ctx.Err(); err != nil {
			return err
		}
		if dec.Accepted {
			_, err = l.Accept(sg.ID, d.Who, sg.Seq)
		} else {
			_, err = l.Reject(sg.ID, dec.ActualValue, d.Who, sg.Seq)
		}
		if err != nil {
			return fmt.Errorf("validate: recording decision on %s: %w", &sg, err)
		}
	}
	return nil
}

// suggestionUpdate reconstructs the core.Update a suggestion was built
// from; measures are numeric, so the float round-trip through the domain
// is exact.
func suggestionUpdate(sg repair.Suggestion) (core.Update, error) {
	dom, err := relational.ParseDomain(sg.Domain)
	if err != nil {
		return core.Update{}, fmt.Errorf("validate: suggestion %s: %w", &sg, err)
	}
	oldV, err := relational.FromFloat(sg.Old, dom)
	if err != nil {
		return core.Update{}, fmt.Errorf("validate: suggestion %s: %w", &sg, err)
	}
	newV, err := relational.FromFloat(sg.New, dom)
	if err != nil {
		return core.Update{}, fmt.Errorf("validate: suggestion %s: %w", &sg, err)
	}
	return core.Update{Item: sg.Item(), Old: oldV, New: newV}, nil
}

// Session drives one document's validation loop.
type Session struct {
	DB          *relational.Database
	Constraints []*aggrcons.Constraint
	Solver      core.Solver
	// Operator validates proposed updates on a per-update interface; it is
	// wrapped into an OperatorDecider. Ignored when Decider is set.
	Operator Operator
	// Decider decides open suggestions round by round (the generic
	// interface; the HTTP workbench and journal replay plug in here).
	Decider repair.Decider
	// Ledger, when non-nil, is adopted instead of a fresh one — the resume
	// path: a ledger restored from a journal re-proposes its open queue
	// idempotently and keeps its decision history and counters.
	Ledger *repair.Ledger
	// Who is the audit identity recorded for Operator decisions (default
	// "operator"); ignored with a custom Decider.
	Who string
	// Problem, when non-nil, supplies an already-prepared repair problem
	// for (DB, Constraints); Run prepares one otherwise. Sharing a problem
	// across sessions of the same database additionally shares the
	// component-solve memo.
	Problem *core.Problem
	// DisablePreparedReuse makes every iteration re-ground and re-solve
	// from scratch (the pre-refactor behaviour). It exists for the
	// differential tests and the BenchmarkValidationLoop baseline; results
	// are identical either way.
	DisablePreparedReuse bool
	// Observe, when non-nil, receives the latency of the one-time problem
	// preparation ("prepare") and of every in-loop repair computation
	// ("resolve").
	Observe func(stage string, d time.Duration)
	// Context, when non-nil, bounds every repair computation of the loop;
	// nil means context.Background().
	Context context.Context
	// ReviewPerIteration restarts the repair computation after validating
	// this many updates per iteration; 0 reviews the whole proposed repair
	// before re-solving (the paper notes re-starting "after validating only
	// some of the suggested updates" as a designer choice).
	ReviewPerIteration int
	// MaxIterations caps the loop (default 100).
	MaxIterations int
	// AutoAcceptReliable accepts without operator review any proposed
	// update whose item takes the same value in every card-minimal repair
	// (the consistent answer of [16]) — an extension beyond the paper that
	// trades a small recovery risk for fewer operator decisions; experiment
	// E12 quantifies the trade.
	AutoAcceptReliable bool
}

// Outcome reports the finished loop.
type Outcome struct {
	// Repaired is the final consistent database, materialized through the
	// overlay; the session's input database is never mutated.
	Repaired *relational.Database
	// Final is the accepted repair (operator-corrected values included).
	Final *core.Repair
	// Iterations is the number of repair computations performed (resumed
	// sessions count the restored rounds too).
	Iterations int
	// Examined counts operator decisions (the paper's human-effort metric:
	// values compared against the source document).
	Examined int
	// Accepted and Rejected split Examined by verdict.
	Accepted, Rejected int
	// AutoAccepted counts updates accepted via reliability analysis without
	// consulting the operator (only with Session.AutoAcceptReliable).
	AutoAccepted int
	// ComponentsSolved and ComponentsReused count component-level solver
	// work across the loop; reused components were served from the prepared
	// problem's memo without re-solving (both 0 with DisablePreparedReuse).
	ComponentsSolved, ComponentsReused int
	// SolverNodes totals the branch-and-bound nodes explored across every
	// solve of the loop (schedule-dependent under parallel solving).
	SolverNodes int
	// Forced is the final set of operator-pinned values.
	Forced map[core.Item]float64
	// Ledger is the session's suggestion ledger: full audit history and
	// replayable event journal.
	Ledger *repair.Ledger
	// Suggestions snapshots every suggestion record at finish, in ID order.
	Suggestions []repair.Suggestion
}

// observe reports one timed stage to the session's observer, if any.
func (s *Session) observe(stage string, start time.Time) {
	if s.Observe != nil {
		s.Observe(stage, time.Since(start))
	}
}

// Run executes the validation loop to acceptance.
func (s *Session) Run() (*Outcome, error) {
	maxIters := s.MaxIterations
	if maxIters == 0 {
		maxIters = 100
	}
	ctx := s.Context
	if ctx == nil {
		ctx = context.Background()
	}
	ledger := s.Ledger
	if ledger == nil {
		ledger = repair.NewLedger()
	}
	decider := s.Decider
	if decider == nil {
		if s.Operator == nil {
			return nil, errors.New("validate: session needs an Operator or a Decider")
		}
		decider = &OperatorDecider{Operator: s.Operator, Who: s.Who}
	}
	// A restored ledger resumes its round numbering so re-proposed
	// suggestions match their journaled iteration fields.
	out := &Outcome{Iterations: ledger.MaxIteration()}

	// Ground once: the prepared problem carries the linear system, the
	// component decomposition, and the per-item ground-constraint counts
	// the ordering heuristic needs.
	prob := s.Problem
	if prob == nil {
		start := time.Now()
		var err error
		prob, err = core.Prepare(s.DB, s.Constraints)
		if err != nil {
			return nil, err
		}
		s.observe("prepare", start)
	}
	statsBefore := prob.Stats()
	occ := prob.Occurrences()
	occOf := func(it core.Item) int {
		if i := prob.System().IndexOf(it); i >= 0 {
			return occ[i]
		}
		return 0
	}

	for out.Iterations < maxIters {
		out.Iterations++
		done, res, err := s.iterate(ctx, prob, ledger, decider, out, occOf)
		if err != nil {
			return nil, err
		}
		if done {
			return s.finish(out, prob, statsBefore, res, ledger)
		}
	}
	return nil, fmt.Errorf("validate: no accepted repair within %d iterations", maxIters)
}

// iterate runs one solve-review round of the loop. It reports done=true
// when every suggestion of the proposed repair is decided without a reject
// or revert this round (the repair is accepted, res carries it). When
// tracing is active each round becomes one "validate.iteration" span —
// carrying the solve beneath it, counters for the round's decisions, and
// one "repair.decision" child span per decision landed this round — so a
// deferred End covers every exit path of the round uniformly.
func (s *Session) iterate(ctx context.Context, prob *core.Problem, ledger *repair.Ledger, decider repair.Decider, out *Outcome, occOf func(core.Item) int) (done bool, res *core.Result, err error) {
	if span := obs.FromContext(ctx).StartChild("validate.iteration"); span != nil {
		span.SetInt("iteration", out.Iterations)
		ctx = obs.ContextWithSpan(ctx, span)
		c0 := ledger.Counters()
		defer func() {
			c1 := ledger.Counters()
			span.SetInt("accepted", c1.Accepted-c0.Accepted)
			span.SetInt("rejected", c1.Rejected-c0.Rejected)
			span.SetInt("auto_accepted", c1.AutoAccepted-c0.AutoAccepted)
			span.SetInt("reverted", c1.Reverted-c0.Reverted)
			if err != nil {
				span.SetStr("error", err.Error())
			}
			span.End()
		}()
	}
	pins := ledger.Pins()
	start := time.Now()
	if s.DisablePreparedReuse {
		res, err = core.FindRepairCtx(ctx, s.Solver, s.DB, s.Constraints, pins)
	} else {
		res, err = s.Solver.SolveProblem(ctx, prob, pins)
	}
	s.observe("resolve", start)
	if err != nil {
		return false, nil, err
	}
	out.SolverNodes += res.Nodes
	if res.Status != milp.StatusOptimal {
		return false, nil, fmt.Errorf("validate: repair computation ended with status %v", res.Status)
	}
	var reliableItems map[core.Item]float64
	if s.AutoAcceptReliable {
		opts := core.EnumerateOptions{Forced: pins}
		var rel []core.Reliability
		if s.DisablePreparedReuse {
			rel, err = core.ReliableValues(s.DB, s.Constraints, opts)
		} else {
			rel, err = prob.ReliableValues(opts)
		}
		if err != nil {
			return false, nil, err
		}
		reliableItems = map[core.Item]float64{}
		for _, r := range rel {
			if r.Reliable {
				reliableItems[r.Item] = r.Values[0]
			}
		}
	}
	// Sync the round's candidate updates into the ledger: cells with a
	// live decision are already pinned and never re-presented; everything
	// else becomes (or stays) an open suggestion.
	decided := ledger.DecidedItems()
	var props []repair.Proposal
	for _, u := range res.Repair.Updates {
		if decided[u.Item] {
			continue
		}
		oldF, newF := u.Old.AsFloat(), u.New.AsFloat()
		props = append(props, repair.Proposal{
			Item:        u.Item,
			Domain:      u.New.Kind().String(),
			Old:         oldF,
			New:         newF,
			Occurrences: occOf(u.Item),
			Confidence:  repair.Confidence(oldF, newF),
			Evidence:    prob.Evidence(u.Item, 3),
		})
	}
	open := ledger.SyncRound(out.Iterations, props)
	if len(reliableItems) > 0 {
		for _, sg := range open {
			if v, ok := reliableItems[sg.Item()]; ok && v == sg.New {
				// The update is forced by every card-minimal repair: accept
				// it without bothering the operator.
				if _, aerr := ledger.Accept(sg.ID, "auto:reliable", sg.Seq); aerr != nil {
					return false, nil, aerr
				}
			}
		}
		open = ledger.Open()
	}
	if len(open) == 0 {
		// Every update of the proposed repair carries a decision: the
		// repair is accepted.
		return true, res, nil
	}
	review := len(open)
	if s.ReviewPerIteration > 0 && s.ReviewPerIteration < review {
		review = s.ReviewPerIteration
	}
	cBefore := ledger.Counters()
	jBefore := ledger.JournalLen()
	derr := decider.Decide(ctx, ledger, open[:review])
	if span := obs.FromContext(ctx); span != nil {
		for _, ev := range ledger.JournalSince(jBefore) {
			if ev.Kind == repair.KindProposed {
				continue
			}
			d := span.StartChild("repair.decision")
			d.SetInt("suggestion", ev.Suggestion.ID)
			d.SetStr("state", string(ev.Kind))
			if by := ev.Suggestion.DecidedBy; by != "" {
				d.SetStr("by", by)
			}
			d.End()
		}
	}
	if derr != nil {
		return false, nil, derr
	}
	cAfter := ledger.Counters()
	// Done only when the queue drained with nothing but accepts this
	// round: a reject or revert changed the pin set, so the repair must be
	// recomputed; an undecided remainder (ReviewPerIteration) re-solves
	// under the new pins first, exactly the paper's early-restart choice.
	done = ledger.OpenCount() == 0 &&
		cAfter.Rejected == cBefore.Rejected &&
		cAfter.Reverted == cBefore.Reverted
	return done, res, nil
}

// finish verifies the accepted repair row-by-row on the prepared problem,
// materializes the repaired database through the overlay (the session's
// input database stays untouched), and closes the outcome's counters from
// the ledger.
func (s *Session) finish(out *Outcome, prob *core.Problem, statsBefore core.ProblemStats, res *core.Result, ledger *repair.Ledger) (*Outcome, error) {
	if err := prob.VerifyRepair(res.Repair, 1e-6); err != nil {
		return nil, err
	}
	repaired, err := repair.NewOverlay(s.DB, ledger).Materialize()
	if err != nil {
		return nil, err
	}
	out.Repaired = repaired
	out.Final = res.Repair
	c := ledger.Counters()
	out.Examined = c.Examined
	out.Accepted = c.Accepted
	out.Rejected = c.Rejected
	out.AutoAccepted = c.AutoAccepted
	out.Forced = ledger.Pins()
	out.Ledger = ledger
	out.Suggestions = ledger.List()
	stats := prob.Stats()
	out.ComponentsSolved = stats.ComponentsSolved - statsBefore.ComponentsSolved
	out.ComponentsReused = stats.ComponentsReused - statsBefore.ComponentsReused
	return out, nil
}
