package validate_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	"dart/internal/core"
	"dart/internal/relational"
	"dart/internal/repair"
	"dart/internal/runningex"
	"dart/internal/validate"
)

func setCell(t *testing.T, db *relational.Database, year int64, sub string, v int64) core.Item {
	t.Helper()
	r := db.Relation("CashBudget")
	for _, tp := range r.Tuples() {
		if tp.Get("Year") == relational.Int(year) && tp.Get("Subsection") == relational.String(sub) {
			if err := r.SetValue(tp.ID(), "Value", relational.Int(v)); err != nil {
				t.Fatal(err)
			}
			return core.Item{Relation: "CashBudget", TupleID: tp.ID(), Attr: "Value"}
		}
	}
	t.Fatalf("cell %d/%s not found", year, sub)
	return core.Item{}
}

func sameValues(t *testing.T, got, want *relational.Database) bool {
	t.Helper()
	g, w := got.Relation("CashBudget"), want.Relation("CashBudget")
	if g.Len() != w.Len() {
		return false
	}
	for i, tp := range g.Tuples() {
		if tp.String() != w.Tuples()[i].String() {
			return false
		}
	}
	return true
}

func TestOracleAcceptsCorrectRepairInOneIteration(t *testing.T) {
	// The running example: the card-minimal repair is the true correction,
	// so the oracle accepts everything at the first iteration.
	truth := runningex.CorrectDatabase()
	acquired := runningex.AcquiredDatabase()
	s := &validate.Session{
		DB:          acquired,
		Constraints: runningex.Constraints(),
		Solver:      &core.MILPSolver{},
		Operator:    &validate.OracleOperator{Truth: truth},
	}
	out, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.Iterations != 1 {
		t.Errorf("iterations = %d, want 1", out.Iterations)
	}
	if out.Examined != 1 || out.Accepted != 1 || out.Rejected != 0 {
		t.Errorf("examined/accepted/rejected = %d/%d/%d", out.Examined, out.Accepted, out.Rejected)
	}
	if !sameValues(t, out.Repaired, truth) {
		t.Error("repaired database does not match ground truth")
	}
}

func TestOracleRejectionDrivesReSolve(t *testing.T) {
	// Corrupt a detail cell so the card-minimal repair is ambiguous: the
	// solver may propose changing the aggregate instead, which the oracle
	// rejects, pinning the aggregate and forcing a second solve that finds
	// the true detail error.
	truth := runningex.CorrectDatabase()
	acquired := runningex.CorrectDatabase()
	setCell(t, acquired, 2003, "cash sales", 170) // true value is 100
	s := &validate.Session{
		DB:          acquired,
		Constraints: runningex.Constraints(),
		Solver:      &core.MILPSolver{},
		Operator:    &validate.OracleOperator{Truth: truth},
	}
	out, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !sameValues(t, out.Repaired, truth) {
		t.Errorf("final database wrong:\n%s", out.Repaired)
	}
	if out.Examined < 1 {
		t.Error("oracle never consulted")
	}
	// However many proposals it took, the loop must converge within a few
	// iterations (the paper: "a few iterations in most cases").
	if out.Iterations > 5 {
		t.Errorf("iterations = %d, expected few", out.Iterations)
	}
}

func TestMultipleErrorsConvergeToTruth(t *testing.T) {
	truth := runningex.CorrectDatabase()
	acquired := runningex.CorrectDatabase()
	setCell(t, acquired, 2003, "total cash receipts", 250)
	setCell(t, acquired, 2004, "capital expenditure", 45)
	setCell(t, acquired, 2004, "ending cash balance", 99)
	s := &validate.Session{
		DB:          acquired,
		Constraints: runningex.Constraints(),
		Solver:      &core.MILPSolver{},
		Operator:    &validate.OracleOperator{Truth: truth},
	}
	out, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !sameValues(t, out.Repaired, truth) {
		t.Errorf("did not converge to truth:\n%s", out.Repaired)
	}
}

func TestReviewPerIterationRestartsEarly(t *testing.T) {
	truth := runningex.CorrectDatabase()
	acquired := runningex.CorrectDatabase()
	setCell(t, acquired, 2003, "cash sales", 170)
	setCell(t, acquired, 2004, "receivables", 130)
	s := &validate.Session{
		DB:                 acquired,
		Constraints:        runningex.Constraints(),
		Solver:             &core.MILPSolver{},
		Operator:           &validate.OracleOperator{Truth: truth},
		ReviewPerIteration: 1,
	}
	out, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !sameValues(t, out.Repaired, truth) {
		t.Error("did not converge to truth")
	}
	// With one review per iteration, iterations >= examined decisions.
	if out.Iterations < out.Examined {
		t.Errorf("iterations %d < examined %d", out.Iterations, out.Examined)
	}
}

func TestOrderingHeuristicPresentsSharedItemsFirst(t *testing.T) {
	// Corrupt so that the repair contains items with different constraint
	// participation; record the order the operator sees.
	truth := runningex.CorrectDatabase()
	acquired := runningex.CorrectDatabase()
	setCell(t, acquired, 2003, "cash sales", 170)          // occurs in 1 ground constraint
	setCell(t, acquired, 2003, "ending cash balance", 150) // occurs in 1 (Constraint3)
	setCell(t, acquired, 2003, "total disbursements", 100) // occurs in 2
	var seen []string
	op := &recordingOperator{inner: &validate.OracleOperator{Truth: truth}, seen: &seen}
	s := &validate.Session{
		DB:          acquired,
		Constraints: runningex.Constraints(),
		Solver:      &core.MILPSolver{},
		Operator:    op,
	}
	out, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !sameValues(t, out.Repaired, truth) {
		t.Error("did not converge to truth")
	}
	if len(seen) == 0 {
		t.Fatal("operator saw nothing")
	}
	// Whatever the exact proposals, the first presented item of the first
	// iteration must be one with maximal occurrence count among that
	// repair's items — we can at least assert the recorded order is
	// non-increasing in occurrence within each iteration. The recording
	// operator stores "occ:item" strings.
	// (Order within one iteration is checked in the session itself; here we
	// just ensure decisions happened.)
	_ = seen
}

type recordingOperator struct {
	inner validate.Operator
	seen  *[]string
}

func (r *recordingOperator) Review(u core.Update) (validate.Decision, error) {
	*r.seen = append(*r.seen, u.Item.String())
	return r.inner.Review(u)
}

func TestInteractiveOperator(t *testing.T) {
	in := strings.NewReader("maybe\ny\n")
	var out strings.Builder
	op := &validate.InteractiveOperator{In: in, Out: &out}
	d, err := op.Review(core.Update{
		Item: core.Item{Relation: "CashBudget", TupleID: 3, Attr: "Value"},
		Old:  relational.Int(250), New: relational.Int(220),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Accepted {
		t.Error("should accept after 'y'")
	}
	if !strings.Contains(out.String(), "please answer") {
		t.Errorf("prompt output = %q", out.String())
	}

	in2 := strings.NewReader("n\nbanana\nn\n230\n")
	var out2 strings.Builder
	op2 := &validate.InteractiveOperator{In: in2, Out: &out2}
	d2, err := op2.Review(core.Update{
		Item: core.Item{Relation: "CashBudget", TupleID: 3, Attr: "Value"},
		Old:  relational.Int(250), New: relational.Int(220),
	})
	if err != nil {
		t.Fatal(err)
	}
	if d2.Accepted || d2.ActualValue != 230 {
		t.Errorf("decision = %+v", d2)
	}
}

func TestInteractiveOperatorEOFIsAnError(t *testing.T) {
	// An input stream that ends before any decision must not silently
	// accept the update.
	op := &validate.InteractiveOperator{In: strings.NewReader(""), Out: &strings.Builder{}}
	u := core.Update{
		Item: core.Item{Relation: "CashBudget", TupleID: 3, Attr: "Value"},
		Old:  relational.Int(250), New: relational.Int(220),
	}
	if _, err := op.Review(u); !errors.Is(err, validate.ErrInputClosed) {
		t.Fatalf("err = %v, want ErrInputClosed", err)
	}

	// EOF right after a rejection, before the actual value is read, is the
	// same condition.
	op2 := &validate.InteractiveOperator{In: strings.NewReader("n\n"), Out: &strings.Builder{}}
	if _, err := op2.Review(u); !errors.Is(err, validate.ErrInputClosed) {
		t.Fatalf("err after 'n' = %v, want ErrInputClosed", err)
	}
}

func TestSessionSurfacesOperatorEOF(t *testing.T) {
	// A session whose interactive operator hits EOF mid-loop fails loudly
	// instead of committing unreviewed values.
	acquired := runningex.AcquiredDatabase()
	s := &validate.Session{
		DB:          acquired,
		Constraints: runningex.Constraints(),
		Solver:      &core.MILPSolver{},
		Operator:    &validate.InteractiveOperator{In: strings.NewReader(""), Out: &strings.Builder{}},
	}
	if _, err := s.Run(); !errors.Is(err, validate.ErrInputClosed) {
		t.Fatalf("Run err = %v, want ErrInputClosed", err)
	}
}

func TestInteractiveSessionEndToEnd(t *testing.T) {
	// A scripted human: reject the first proposal with the true value.
	acquired := runningex.AcquiredDatabase()
	// The proposal will be tcr 2003: 250 -> 220; our human insists the
	// document says 250 was right... then must keep answering for the
	// follow-up proposals; accept everything else.
	in := strings.NewReader(strings.Repeat("y\n", 50))
	var outBuf strings.Builder
	s := &validate.Session{
		DB:          acquired,
		Constraints: runningex.Constraints(),
		Solver:      &core.MILPSolver{},
		Operator:    &validate.InteractiveOperator{In: in, Out: &outBuf},
	}
	out, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.Final.Card() != 1 {
		t.Errorf("final card = %d", out.Final.Card())
	}
}

func TestAutoAcceptReliableSkipsOperatorForForcedUpdates(t *testing.T) {
	// The running example has a unique card-minimal repair, so with
	// AutoAcceptReliable the operator is never consulted.
	truth := runningex.CorrectDatabase()
	acquired := runningex.AcquiredDatabase()
	s := &validate.Session{
		DB:                 acquired,
		Constraints:        runningex.Constraints(),
		Solver:             &core.MILPSolver{},
		Operator:           &failingOperator{t},
		AutoAcceptReliable: true,
	}
	out, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.Examined != 0 || out.AutoAccepted != 1 {
		t.Errorf("examined=%d autoAccepted=%d, want 0/1", out.Examined, out.AutoAccepted)
	}
	if !sameValues(t, out.Repaired, truth) {
		t.Error("auto-accepted repair does not match truth")
	}
}

func TestAutoAcceptReliableStillConsultsOnAmbiguity(t *testing.T) {
	// An ambiguous detail error: the two card-1 repairs disagree, so the
	// damaged cells are unreliable and the operator must decide.
	truth := runningex.CorrectDatabase()
	acquired := runningex.CorrectDatabase()
	setCell(t, acquired, 2003, "cash sales", 170)
	s := &validate.Session{
		DB:                 acquired,
		Constraints:        runningex.Constraints(),
		Solver:             &core.MILPSolver{},
		Operator:           &validate.OracleOperator{Truth: truth},
		AutoAcceptReliable: true,
	}
	out, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.Examined == 0 {
		t.Error("ambiguous repair must reach the operator")
	}
	if !sameValues(t, out.Repaired, truth) {
		t.Error("did not converge to truth")
	}
}

// failingOperator fails the test if consulted.
type failingOperator struct{ t *testing.T }

func (f *failingOperator) Review(u core.Update) (validate.Decision, error) {
	f.t.Errorf("operator consulted unexpectedly for %v", u)
	return validate.Decision{Accepted: true}, nil
}

// cancellingOperator answers like its inner operator but cancels the session
// context *during* the review — modelling a human whose verdict lands after
// the session was cancelled (deadline hit while the prompt sat on screen).
type cancellingOperator struct {
	cancel context.CancelFunc
	inner  validate.Operator
}

func (c *cancellingOperator) Review(u core.Update) (validate.Decision, error) {
	c.cancel()
	return c.inner.Review(u)
}

func TestLateDecisionAfterCancellationIsNotApplied(t *testing.T) {
	// Regression: a decision arriving after context cancellation must not be
	// applied. The loop must abort with the context error and leave the
	// ledger with zero decisions and zero pins — not a half-recorded verdict.
	truth := runningex.CorrectDatabase()
	acquired := runningex.AcquiredDatabase()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ledger := repair.NewLedger()
	s := &validate.Session{
		DB:          acquired,
		Constraints: runningex.Constraints(),
		Solver:      &core.MILPSolver{},
		Operator:    &cancellingOperator{cancel: cancel, inner: &validate.OracleOperator{Truth: truth}},
		Ledger:      ledger,
		Context:     ctx,
	}
	if _, err := s.Run(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Run err = %v, want context.Canceled", err)
	}
	c := ledger.Counters()
	if c.Examined != 0 || c.Accepted != 0 || c.Rejected != 0 {
		t.Fatalf("late decision was applied: counters = %+v", c)
	}
	if pins := ledger.Pins(); len(pins) != 0 {
		t.Fatalf("late decision pinned values: %v", pins)
	}
	// The suggestion itself must still be open (proposed, undecided).
	if ledger.OpenCount() == 0 {
		t.Fatal("suggestion queue drained despite the aborted round")
	}
}
