package wrapper_test

import (
	"strings"
	"testing"

	"dart/internal/docgen"
	"dart/internal/lexicon"
	"dart/internal/runningex"
	"dart/internal/scenario"
	"dart/internal/wrapper"
)

func budgetWrapper(t *testing.T) *wrapper.Wrapper {
	t.Helper()
	md, err := scenario.CashBudget()
	if err != nil {
		t.Fatal(err)
	}
	return md.NewWrapper()
}

func TestExtractRunningExample(t *testing.T) {
	w := budgetWrapper(t)
	html := docgen.RunningExampleDocument().HTML()
	instances, skipped, err := w.Extract(html)
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 0 {
		t.Errorf("skipped rows: %+v", skipped)
	}
	if len(instances) != 20 {
		t.Fatalf("instances = %d, want 20", len(instances))
	}
	// The first instance binds the Fig. 7(b) values.
	in := instances[0]
	checks := map[string]string{
		"Year": "2003", "Section": "Receipts", "Subsection": "beginning cash", "Value": "20",
	}
	for h, want := range checks {
		got, ok := in.Get(h)
		if !ok || got != want {
			t.Errorf("Get(%s) = %q, %v; want %q", h, got, ok, want)
		}
	}
	if in.Score != 1 {
		t.Errorf("clean row score = %v, want 1", in.Score)
	}
	if _, ok := in.Get("Nope"); ok {
		t.Error("Get(Nope) should fail")
	}
}

func TestExample13MisspelledSubsection(t *testing.T) {
	// "bgnning cesh" must bind to "beginning cash" with a sub-100% score
	// for that cell and a sub-100% row score (Fig. 7(b) shows 90%).
	doc := docgen.RunningExampleDocument()
	doc.Tables[0].Rows[0][2].Text = "bgnning cesh"
	w := budgetWrapper(t)
	instances, skipped, err := w.Extract(doc.HTML())
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 0 || len(instances) != 20 {
		t.Fatalf("instances=%d skipped=%d", len(instances), len(skipped))
	}
	in := instances[0]
	got, _ := in.Get("Subsection")
	if got != "beginning cash" {
		t.Errorf("msi substitution = %q, want 'beginning cash'", got)
	}
	if in.Score >= 1 || in.Score < 0.5 {
		t.Errorf("row score = %v, want in [0.5, 1)", in.Score)
	}
	// With the min t-norm the row score equals the bad cell's score.
	if in.Cells[2].Score != in.Score {
		t.Errorf("cell score %v != row score %v under min t-norm", in.Cells[2].Score, in.Score)
	}
}

func TestHierarchyRestrictsSubsectionToSection(t *testing.T) {
	// A subsection corrupted toward an item of a *different* section must
	// still be corrected within its own section thanks to the
	// specialization constraint: 'receivables' under Disbursements would be
	// wrong, so a heavily damaged 'payment of accounts' must stay in the
	// Disbursements items.
	doc := docgen.RunningExampleDocument()
	doc.Tables[0].Rows[4][1].Text = "paymnt of acounts"
	w := budgetWrapper(t)
	instances, _, err := w.Extract(doc.HTML())
	if err != nil {
		t.Fatal(err)
	}
	got, _ := instances[4].Get("Subsection")
	if got != "payment of accounts" {
		t.Errorf("corrected to %q, want 'payment of accounts'", got)
	}
}

func TestSpecializationFallbackPenalty(t *testing.T) {
	// A pattern whose hierarchy admits no specializations for the matched
	// parent must fall back with a penalty instead of failing.
	sec := lexicon.NewDomain("Sec", "Alpha")
	sub := lexicon.NewDomain("Sub", "one", "two")
	h := lexicon.NewHierarchy() // deliberately empty: nothing specializes Alpha
	w := &wrapper.Wrapper{
		Patterns: []*wrapper.RowPattern{{
			Name: "p",
			Cells: []wrapper.PatternCell{
				{Headline: "S", Kind: wrapper.KindDomain, Domain: sec, SpecializationOf: -1},
				{Headline: "U", Kind: wrapper.KindDomain, Domain: sub, SpecializationOf: 0},
			},
		}},
		Hierarchy: h,
		MinScore:  0.1,
	}
	instances, _, err := w.Extract(`<table><tr><td>Alpha</td><td>one</td></tr></table>`)
	if err != nil {
		t.Fatal(err)
	}
	if len(instances) != 1 {
		t.Fatalf("instances = %d", len(instances))
	}
	if got := instances[0].Cells[1].Score; got != 0.5 {
		t.Errorf("penalized score = %v, want 0.5", got)
	}
}

func TestBestPatternSelection(t *testing.T) {
	// Two patterns of the same arity: the wrapper must pick per row.
	numbers := lexicon.NewDomain("Numbers", "one", "two", "three")
	colors := lexicon.NewDomain("Colors", "red", "green", "blue")
	w := &wrapper.Wrapper{
		Patterns: []*wrapper.RowPattern{
			{Name: "num", Cells: []wrapper.PatternCell{
				{Headline: "A", Kind: wrapper.KindDomain, Domain: numbers, SpecializationOf: -1},
				{Headline: "V", Kind: wrapper.KindInteger, SpecializationOf: -1}}},
			{Name: "col", Cells: []wrapper.PatternCell{
				{Headline: "A", Kind: wrapper.KindDomain, Domain: colors, SpecializationOf: -1},
				{Headline: "V", Kind: wrapper.KindInteger, SpecializationOf: -1}}},
		},
		MinScore: 0.4,
	}
	instances, _, err := w.Extract(`<table>
		<tr><td>grean</td><td>5</td></tr>
		<tr><td>thre</td><td>7</td></tr>
	</table>`)
	if err != nil {
		t.Fatal(err)
	}
	if len(instances) != 2 {
		t.Fatalf("instances = %d", len(instances))
	}
	if instances[0].Pattern.Name != "col" {
		t.Errorf("row 0 pattern = %s, want col", instances[0].Pattern.Name)
	}
	if v, _ := instances[0].Get("A"); v != "green" {
		t.Errorf("row 0 A = %q", v)
	}
	if instances[1].Pattern.Name != "num" {
		t.Errorf("row 1 pattern = %s, want num", instances[1].Pattern.Name)
	}
}

func TestSkippedRowsReported(t *testing.T) {
	w := budgetWrapper(t)
	html := `<table>
		<tr><td>completely</td><td>unrelated</td><td>header</td><td>words</td></tr>
		<tr><td>2003</td><td>Receipts</td><td>cash sales</td><td>100</td></tr>
	</table>`
	instances, skipped, err := w.Extract(html)
	if err != nil {
		t.Fatal(err)
	}
	if len(instances) != 1 || len(skipped) != 1 {
		t.Fatalf("instances=%d skipped=%d", len(instances), len(skipped))
	}
	if skipped[0].Row != 0 || !strings.Contains(skipped[0].Text, "unrelated") {
		t.Errorf("skipped = %+v", skipped[0])
	}
}

func TestArityMismatchRowsSkipped(t *testing.T) {
	w := budgetWrapper(t)
	instances, skipped, err := w.Extract(`<table><tr><td>just</td><td>two</td></tr></table>`)
	if err != nil {
		t.Fatal(err)
	}
	if len(instances) != 0 || len(skipped) != 1 {
		t.Errorf("instances=%d skipped=%d", len(instances), len(skipped))
	}
}

func TestTableFilter(t *testing.T) {
	w := budgetWrapper(t)
	w.TableFilter = func(i int) bool { return i == 1 }
	html := docgen.RunningExampleDocument().HTML()
	instances, _, err := w.Extract(html)
	if err != nil {
		t.Fatal(err)
	}
	if len(instances) != 10 {
		t.Fatalf("instances = %d, want 10 (second table only)", len(instances))
	}
	if y, _ := instances[0].Get("Year"); y != "2004" {
		t.Errorf("year = %q", y)
	}
}

func TestIntegerCellScoring(t *testing.T) {
	w := budgetWrapper(t)
	// "2 20" (OCR space) should still be accepted as integer 220.
	doc := docgen.RunningExampleDocument()
	// Row 3 of the document model holds only (subsection, value) cells; the
	// year and section come from spans.
	doc.Tables[0].Rows[3][1].Text = "2 20"
	instances, skipped, err := w.Extract(doc.HTML())
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 0 {
		t.Fatalf("skipped: %+v", skipped)
	}
	v, _ := instances[3].Get("Value")
	if v != "220" {
		t.Errorf("value = %q, want 220", v)
	}
}

func TestPatternValidation(t *testing.T) {
	bad := []*wrapper.RowPattern{
		{Name: "noheadline", Cells: []wrapper.PatternCell{{Kind: wrapper.KindInteger, SpecializationOf: -1}}},
		{Name: "nodomain", Cells: []wrapper.PatternCell{{Headline: "X", Kind: wrapper.KindDomain, SpecializationOf: -1}}},
		{Name: "forwardspec", Cells: []wrapper.PatternCell{{Headline: "X", Kind: wrapper.KindInteger, SpecializationOf: 0}}},
	}
	for _, p := range bad {
		w := &wrapper.Wrapper{Patterns: []*wrapper.RowPattern{p}}
		if _, _, err := w.Extract("<table></table>"); err == nil {
			t.Errorf("pattern %s should fail validation", p.Name)
		}
	}
	empty := &wrapper.Wrapper{}
	if _, _, err := empty.Extract("<table></table>"); err == nil {
		t.Error("wrapper without patterns must error")
	}
}

func TestRunningExampleViaScanTextConversion(t *testing.T) {
	// Extraction must work identically on the scan-text-converted document
	// (paper path: OCR -> converter -> HTML), where spans are repeated
	// values rather than rowspans.
	md, err := scenario.CashBudget()
	if err != nil {
		t.Fatal(err)
	}
	_ = md
	w := budgetWrapper(t)
	txt := docgen.RunningExampleDocument().ScanText()
	// Inline conversion to avoid an import cycle in tests: the convert
	// package has its own tests; here we go through its output shape.
	htmlDoc := scanToHTML(txt)
	instances, skipped, err := w.Extract(htmlDoc)
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 0 || len(instances) != 20 {
		t.Fatalf("instances=%d skipped=%d", len(instances), len(skipped))
	}
	for _, sub := range runningex.Subsections {
		found := false
		for _, in := range instances {
			if got, _ := in.Get("Subsection"); got == sub {
				found = true
			}
		}
		if !found {
			t.Errorf("subsection %q not extracted", sub)
		}
	}
}

// scanToHTML is a minimal local copy of the convert transformation to keep
// this package's tests self-contained.
func scanToHTML(txt string) string {
	var b strings.Builder
	b.WriteString("<table>")
	for _, line := range strings.Split(txt, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "==") || strings.HasPrefix(line, "--") {
			continue
		}
		b.WriteString("<tr>")
		for _, c := range strings.Split(line, "|") {
			b.WriteString("<td>" + strings.TrimSpace(c) + "</td>")
		}
		b.WriteString("</tr>")
	}
	b.WriteString("</table>")
	return b.String()
}

func TestInstanceCorrections(t *testing.T) {
	doc := docgen.RunningExampleDocument()
	doc.Tables[0].Rows[0][2].Text = "bgnning cesh"
	w := budgetWrapper(t)
	instances, _, err := w.Extract(doc.HTML())
	if err != nil {
		t.Fatal(err)
	}
	corr := instances[0].Corrections()
	if len(corr) != 1 {
		t.Fatalf("corrections = %+v, want 1", corr)
	}
	c := corr[0]
	if c.From != "bgnning cesh" || c.To != "beginning cash" || c.Headline != "Subsection" {
		t.Errorf("correction = %+v", c)
	}
	if c.Score >= 1 || c.Score <= 0.5 {
		t.Errorf("score = %v", c.Score)
	}
	// Clean rows report no corrections.
	if got := instances[1].Corrections(); len(got) != 0 {
		t.Errorf("clean row corrections = %+v", got)
	}
}

func TestRealCellKind(t *testing.T) {
	rates := lexicon.NewDomain("Kind", "discount", "markup")
	w := &wrapper.Wrapper{
		Patterns: []*wrapper.RowPattern{{
			Name: "rate",
			Cells: []wrapper.PatternCell{
				{Headline: "Kind", Kind: wrapper.KindDomain, Domain: rates, SpecializationOf: -1},
				{Headline: "Rate", Kind: wrapper.KindReal, SpecializationOf: -1},
			},
		}},
		MinScore: 0.4,
	}
	instances, skipped, err := w.Extract(`<table>
		<tr><td>discount</td><td>0.125</td></tr>
		<tr><td>markup</td><td>- 1.5</td></tr>
		<tr><td>discount</td><td>not a number</td></tr>
	</table>`)
	if err != nil {
		t.Fatal(err)
	}
	if len(instances) != 2 || len(skipped) != 1 {
		t.Fatalf("instances=%d skipped=%d", len(instances), len(skipped))
	}
	if v, _ := instances[0].Get("Rate"); v != "0.125" {
		t.Errorf("rate = %q", v)
	}
	if v, _ := instances[1].Get("Rate"); v != "-1.5" {
		t.Errorf("negative rate = %q", v)
	}
	if wrapper.KindReal.String() != "Real" || wrapper.KindDomain.String() != "domain" ||
		wrapper.KindInteger.String() != "Integer" || wrapper.KindString.String() != "String" {
		t.Error("CellKind names")
	}
}
