// Package wrapper implements DART's table wrapper (Section 6.2): matching
// table rows against designer-specified row patterns, scoring each cell
// match, combining cell scores with a t-norm, choosing the best pattern per
// row, and constructing row pattern instances in which incorrect lexical
// items have been replaced by their most similar valid item (msi) — the
// wrapper-level repair of non-numerical strings described in the paper.
package wrapper

import (
	"fmt"
	"strings"

	"dart/internal/htmlx"
	"dart/internal/lexicon"
)

// CellKind is the content specification of a row-pattern cell: a designer
// domain or one of the standard domains.
type CellKind int

const (
	// KindDomain expects a lexical item of the cell's Domain.
	KindDomain CellKind = iota
	// KindInteger expects an integer literal.
	KindInteger
	// KindReal expects a numeric literal.
	KindReal
	// KindString expects any non-empty text.
	KindString
)

// String names the kind.
func (k CellKind) String() string {
	switch k {
	case KindDomain:
		return "domain"
	case KindInteger:
		return "Integer"
	case KindReal:
		return "Real"
	default:
		return "String"
	}
}

// PatternCell is one cell of a row pattern: the headline names its
// semantics (used by the database generator), Kind/Domain specify the
// expected content, and SpecializationOf >= 0 requires the matched item to
// be a specialization of the item matched in that earlier cell (the arrow
// of Fig. 7(a)).
type PatternCell struct {
	Headline         string
	Kind             CellKind
	Domain           *lexicon.Domain
	SpecializationOf int
}

// RowPattern specifies structure and content of one row shape (Fig. 7(a)).
type RowPattern struct {
	Name  string
	Cells []PatternCell
}

// Validate checks internal consistency of the pattern.
func (p *RowPattern) Validate() error {
	for i, c := range p.Cells {
		if c.Headline == "" {
			return fmt.Errorf("wrapper: pattern %s cell %d has no headline", p.Name, i)
		}
		if c.Kind == KindDomain && c.Domain == nil {
			return fmt.Errorf("wrapper: pattern %s cell %s has kind domain but no domain", p.Name, c.Headline)
		}
		if c.SpecializationOf >= i {
			return fmt.Errorf("wrapper: pattern %s cell %s: specialization must reference an earlier cell", p.Name, c.Headline)
		}
		if c.SpecializationOf >= 0 && p.Cells[c.SpecializationOf].Kind != KindDomain {
			return fmt.Errorf("wrapper: pattern %s cell %s: specialization target must be a domain cell", p.Name, c.Headline)
		}
	}
	return nil
}

// CellMatch is the binding of one pattern cell in an instance: the item (or
// normalized literal) the cell was bound to and the matching score.
type CellMatch struct {
	Value string
	Score float64
}

// Instance is a row pattern instance (Fig. 7(b)): one document row matched
// against its best row pattern.
type Instance struct {
	Pattern *RowPattern
	Cells   []CellMatch
	// Score is the t-norm combination of the cell scores.
	Score float64
	// Table and Row locate the source row within the document.
	Table, Row int
	// Raw holds the document's original cell texts the instance was
	// matched from.
	Raw []string
}

// Correction records one string repair the wrapper performed: a cell whose
// raw text was not a valid lexical item and was replaced by its most
// similar one ("incorrect items in the input tables are transformed into
// the most similar valid lexical items", Section 6.2).
type Correction struct {
	Table, Row int
	Headline   string
	From, To   string
	Score      float64
}

// Corrections lists the string repairs embodied in the instance.
func (in *Instance) Corrections() []Correction {
	var out []Correction
	for i, pc := range in.Pattern.Cells {
		if pc.Kind != KindDomain || i >= len(in.Raw) {
			continue
		}
		if in.Cells[i].Score < 1 && in.Cells[i].Value != htmlx.CollapseSpace(in.Raw[i]) {
			out = append(out, Correction{
				Table: in.Table, Row: in.Row,
				Headline: pc.Headline,
				From:     htmlx.CollapseSpace(in.Raw[i]),
				To:       in.Cells[i].Value,
				Score:    in.Cells[i].Score,
			})
		}
	}
	return out
}

// Get returns the value bound to the cell with the given headline.
func (in *Instance) Get(headline string) (string, bool) {
	for i, c := range in.Pattern.Cells {
		if c.Headline == headline {
			return in.Cells[i].Value, true
		}
	}
	return "", false
}

// Wrapper drives extraction: it matches every row of every table of an
// input HTML document against its row patterns.
type Wrapper struct {
	Patterns []*RowPattern
	// Hierarchy supplies the specialization relation for patterns using it.
	Hierarchy *lexicon.Hierarchy
	// TNorm combines cell scores into the row score (default: min).
	TNorm lexicon.TNorm
	// MinScore is the acceptance threshold for instances; rows whose best
	// match scores below it are reported as skipped (default 0.5).
	MinScore float64
	// TableFilter optionally restricts extraction to specific tables by
	// index (the extraction metadata's "position inside the document").
	TableFilter func(tableIndex int) bool
}

// Skipped describes a document row no pattern matched acceptably.
type Skipped struct {
	Table, Row int
	BestScore  float64
	Text       string
}

// Extract parses the HTML document and returns the accepted row pattern
// instances in document order, plus the rows that matched no pattern.
func (w *Wrapper) Extract(html string) ([]*Instance, []Skipped, error) {
	for _, p := range w.Patterns {
		if err := p.Validate(); err != nil {
			return nil, nil, err
		}
	}
	if len(w.Patterns) == 0 {
		return nil, nil, fmt.Errorf("wrapper: no row patterns")
	}
	minScore := w.MinScore
	if minScore == 0 {
		minScore = 0.5
	}
	var instances []*Instance
	var skipped []Skipped
	tables := htmlx.ParseTables(html)
	for ti, table := range tables {
		if w.TableFilter != nil && !w.TableFilter(ti) {
			continue
		}
		grid := table.Grid()
		for ri, row := range grid {
			cells := presentTexts(row)
			if len(cells) == 0 {
				continue
			}
			best := w.matchRow(cells)
			if best == nil || best.Score < minScore {
				sc := 0.0
				if best != nil {
					sc = best.Score
				}
				skipped = append(skipped, Skipped{Table: ti, Row: ri, BestScore: sc, Text: strings.Join(cells, " | ")})
				continue
			}
			best.Table, best.Row = ti, ri
			instances = append(instances, best)
		}
	}
	return instances, skipped, nil
}

func presentTexts(row []htmlx.GridCell) []string {
	var out []string
	for _, c := range row {
		if c.Present {
			out = append(out, c.Text)
		}
	}
	// Trailing empty cells are padding artifacts, not content.
	for len(out) > 0 && out[len(out)-1] == "" {
		out = out[:len(out)-1]
	}
	return out
}

// matchRow evaluates every pattern on the row's cell texts and returns the
// best-scoring instance (nil when no pattern has the row's arity).
func (w *Wrapper) matchRow(cells []string) *Instance {
	var best *Instance
	for _, p := range w.Patterns {
		if len(p.Cells) != len(cells) {
			continue
		}
		in := w.matchPattern(p, cells)
		if best == nil || in.Score > best.Score {
			best = in
		}
	}
	return best
}

// matchPattern binds each cell of the row to the pattern, producing the
// instance with per-cell scores (Example 13's 90% score for "bgnning cesh"
// against the Subsection domain arises here).
func (w *Wrapper) matchPattern(p *RowPattern, cells []string) *Instance {
	in := &Instance{Pattern: p, Cells: make([]CellMatch, len(cells)), Raw: append([]string(nil), cells...)}
	scores := make([]float64, len(cells))
	for i, pc := range p.Cells {
		text := htmlx.CollapseSpace(cells[i])
		var cm CellMatch
		switch pc.Kind {
		case KindInteger:
			cm = matchInteger(text)
		case KindReal:
			cm = matchReal(text)
		case KindString:
			if text != "" {
				cm = CellMatch{Value: text, Score: 1}
			}
		case KindDomain:
			cm = w.matchDomain(pc, in, text)
		}
		in.Cells[i] = cm
		scores[i] = cm.Score
	}
	in.Score = w.TNorm.Combine(scores)
	return in
}

// matchDomain finds the most similar item of the cell's domain, restricted
// to items satisfying the cell's hierarchical relationship when one is
// specified (footnote 4 of the paper); when no item satisfies it, the full
// domain is used with a score penalty.
func (w *Wrapper) matchDomain(pc PatternCell, in *Instance, text string) CellMatch {
	if pc.SpecializationOf >= 0 && w.Hierarchy != nil {
		parent := in.Cells[pc.SpecializationOf].Value
		restricted := lexicon.NewDomain(pc.Domain.Name)
		for _, item := range pc.Domain.Items() {
			if w.Hierarchy.IsSpecializationOf(item, parent) {
				restricted.Add(item)
			}
		}
		if m, ok := restricted.BestMatch(text); ok {
			return CellMatch{Value: m.Item, Score: m.Score}
		}
		// No item specializes the parent: fall back, penalized.
		if m, ok := pc.Domain.BestMatch(text); ok {
			return CellMatch{Value: m.Item, Score: m.Score * 0.5}
		}
		return CellMatch{}
	}
	if m, ok := pc.Domain.BestMatch(text); ok {
		return CellMatch{Value: m.Item, Score: m.Score}
	}
	return CellMatch{}
}

// matchInteger scores integer literals: exact integers score 1; text whose
// digit content dominates scores partially after stripping grouping
// characters; non-numeric text scores 0.
func matchInteger(text string) CellMatch {
	clean := strings.Map(func(r rune) rune {
		if r == ' ' || r == ',' {
			return -1
		}
		return r
	}, text)
	if isInt(clean) {
		return CellMatch{Value: clean, Score: 1}
	}
	// Count digit fraction as a weak score so a smudged number still beats
	// a string pattern, without being accepted as a clean integer.
	digits := 0
	for i := 0; i < len(clean); i++ {
		if clean[i] >= '0' && clean[i] <= '9' {
			digits++
		}
	}
	if len(clean) == 0 || digits == 0 {
		return CellMatch{Value: text}
	}
	return CellMatch{Value: clean, Score: 0.5 * float64(digits) / float64(len(clean))}
}

func matchReal(text string) CellMatch {
	clean := strings.ReplaceAll(text, " ", "")
	mantissa := strings.Replace(clean, ".", "", 1)
	if isInt(strings.TrimPrefix(mantissa, "-")) {
		return CellMatch{Value: clean, Score: 1}
	}
	return CellMatch{Value: text}
}

func isInt(s string) bool {
	if s == "" {
		return false
	}
	if s[0] == '-' {
		s = s[1:]
		if s == "" {
			return false
		}
	}
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return true
}
