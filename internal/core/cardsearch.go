package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strconv"

	"dart/internal/aggrcons"
	"dart/internal/milp"
	"dart/internal/relational"
)

// CardinalitySearchSolver is an exact alternative to the MILP formulation:
// it searches change-sets S of increasing cardinality k = 1, 2, ... and
// accepts the first S for which the system S(AC) becomes satisfiable with
// only the values in S allowed to move. Correctness rests on the
// observation that any repair must change at least one value in every
// ground constraint row violated by the original data, so the search
// enumerates exactly the subsets hitting all violated rows (plus arbitrary
// padding items for cascade effects). The search is exponential in the
// answer cardinality k but typically very fast in the acquisition-error
// regime the paper targets (k <= 6), making it both a cross-check for MILP
// optima and a baseline for experiment E6.
type CardinalitySearchSolver struct {
	// MaxK bounds the search depth (default 6).
	MaxK int
	// BigM bounds candidate value displacement; 0 derives it from data.
	BigM float64
}

// Name implements Solver.
func (s *CardinalitySearchSolver) Name() string { return "card-search" }

// FindRepair implements Solver.
func (s *CardinalitySearchSolver) FindRepair(db *relational.Database, acs []*aggrcons.Constraint, forced map[Item]float64) (*Result, error) {
	prob, err := Prepare(db, acs)
	if err != nil {
		return nil, err
	}
	return s.SolveProblem(context.Background(), prob, forced)
}

// SolveProblem implements Solver: the search runs directly on the prepared
// system, so re-solves under new pins pay no grounding cost.
func (s *CardinalitySearchSolver) SolveProblem(ctx context.Context, prob *Problem, forced map[Item]float64) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sys, db := prob.System(), prob.Database()
	maxK := s.MaxK
	if maxK == 0 {
		maxK = 6
	}
	mBound := s.BigM
	if mBound <= 0 {
		mBound = sys.PracticalM()
	}
	res := &Result{M: mBound}

	// Forced items are handled by substituting the forced value and
	// treating the item as unchangeable; if the forced value differs from
	// the original it already counts as one update supplied by the operator
	// (the validation interface accounts for those separately).
	vals := append([]float64(nil), sys.V...)
	frozen := make([]bool, sys.N())
	for it, v := range forced {
		if i := sys.IndexOf(it); i >= 0 {
			vals[i] = v
			frozen[i] = true
		}
	}

	violated := violatedRows(sys, vals, 1e-6)
	if len(violated) == 0 {
		res.Status = milp.StatusOptimal
		res.Repair = repairFromValues(db, sys, vals)
		res.Card = res.Repair.Card()
		return res, nil
	}

	// Restrict candidates to the connected components containing violated
	// rows: a repair never needs to touch values outside them.
	candidates := componentItems(sys, violated, frozen)

	for k := 1; k <= maxK && k <= len(candidates); k++ {
		found, solvedVals, err := s.searchK(sys, vals, frozen, violated, candidates, k, mBound, res)
		if err != nil {
			return nil, err
		}
		if found {
			res.Status = milp.StatusOptimal
			res.Repair = repairFromValues(db, sys, solvedVals)
			res.Card = res.Repair.Card()
			if err := prob.VerifyRepair(res.Repair, 1e-6); err != nil {
				return nil, fmt.Errorf("core: cardinality-search solution failed verification: %w", err)
			}
			return res, nil
		}
	}
	res.Status = milp.StatusIterLimit
	return res, nil
}

// violatedRows evaluates every row of the system at the given values and
// returns the indexes of rows that do not hold.
func violatedRows(sys *System, vals []float64, eps float64) []int {
	var out []int
	for ri, row := range sys.Rows {
		lhs := 0.0
		for idx, c := range row.Coeffs {
			lhs += c * vals[idx]
		}
		scale := eps * (1 + math.Abs(row.RHS))
		ok := false
		switch row.Rel {
		case aggrcons.LE:
			ok = lhs <= row.RHS+scale
		case aggrcons.GE:
			ok = lhs >= row.RHS-scale
		default:
			ok = math.Abs(lhs-row.RHS) <= scale
		}
		if !ok {
			out = append(out, ri)
		}
	}
	return out
}

// componentItems returns the unfrozen items of every row-item connected
// component that contains a violated row, ordered by how many violated rows
// each item appears in (descending) so the hitting-set search tries likely
// culprits first.
func componentItems(sys *System, violated []int, frozen []bool) []int {
	// Union-find over items; rows connect their items.
	parent := make([]int, sys.N())
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		//dartvet:allow ctxloop -- union-find path halving strictly shortens the chain
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }
	for _, row := range sys.Rows {
		first := -1
		for idx := range row.Coeffs {
			if first < 0 {
				first = idx
			} else {
				union(first, idx)
			}
		}
	}
	comps := map[int]bool{}
	for _, ri := range violated {
		for idx := range sys.Rows[ri].Coeffs {
			comps[find(idx)] = true
		}
	}
	freq := make(map[int]int)
	for _, ri := range violated {
		for idx := range sys.Rows[ri].Coeffs {
			freq[idx]++
		}
	}
	var out []int
	for i := 0; i < sys.N(); i++ {
		if !frozen[i] && comps[find(i)] {
			out = append(out, i)
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if freq[out[a]] != freq[out[b]] {
			return freq[out[a]] > freq[out[b]]
		}
		return out[a] < out[b]
	})
	return out
}

// searchK enumerates change-sets of size exactly k that hit every violated
// row and feasibility-checks each. It returns the repaired value vector of
// the first feasible set.
func (s *CardinalitySearchSolver) searchK(sys *System, vals []float64, frozen []bool, violated, candidates []int, k int, mBound float64, res *Result) (bool, []float64, error) {
	inSet := make([]bool, sys.N())
	var set []int
	tried := map[string]bool{}

	candPos := make(map[int]int, len(candidates))
	for p, idx := range candidates {
		candPos[idx] = p
	}

	key := func() string {
		sorted := append([]int(nil), set...)
		sort.Ints(sorted)
		out := ""
		for _, v := range sorted {
			out += strconv.Itoa(v) + ","
		}
		return out
	}

	var solved []float64
	var rec func(minFreePos int) (bool, error)
	rec = func(minFreePos int) (bool, error) {
		// Find the first violated row not hit by the current set.
		unhit := -1
		for _, ri := range violated {
			hit := false
			for idx := range sys.Rows[ri].Coeffs {
				if inSet[idx] {
					hit = true
					break
				}
			}
			if !hit {
				unhit = ri
				break
			}
		}
		if unhit >= 0 {
			if len(set) == k {
				return false, nil
			}
			// Branch over the unhit row's candidate items.
			items := make([]int, 0, len(sys.Rows[unhit].Coeffs))
			for idx := range sys.Rows[unhit].Coeffs {
				if !frozen[idx] && !inSet[idx] {
					items = append(items, idx)
				}
			}
			sort.Slice(items, func(a, b int) bool { return candPos[items[a]] < candPos[items[b]] })
			for _, idx := range items {
				inSet[idx] = true
				set = append(set, idx)
				ok, err := rec(minFreePos)
				inSet[idx] = false
				set = set[:len(set)-1]
				if err != nil || ok {
					return ok, err
				}
			}
			return false, nil
		}
		if len(set) == k {
			kk := key()
			if tried[kk] {
				return false, nil
			}
			tried[kk] = true
			ok, x, err := s.feasible(sys, vals, set, mBound, res)
			if err != nil {
				return false, err
			}
			if ok {
				solved = x
				return true, nil
			}
			return false, nil
		}
		// All violated rows hit but slots remain: pad with further
		// candidates (ordered to avoid revisiting permutations).
		for p := minFreePos; p < len(candidates); p++ {
			idx := candidates[p]
			if inSet[idx] {
				continue
			}
			inSet[idx] = true
			set = append(set, idx)
			ok, err := rec(p + 1)
			inSet[idx] = false
			set = set[:len(set)-1]
			if err != nil || ok {
				return ok, err
			}
		}
		return false, nil
	}
	ok, err := rec(0)
	return ok, solved, err
}

// feasible checks whether the system is satisfiable when only the items in
// set may move, and returns the full value vector on success.
func (s *CardinalitySearchSolver) feasible(sys *System, vals []float64, set []int, mBound float64, res *Result) (bool, []float64, error) {
	model := milp.NewModel()
	yv := map[int]milp.Var{}
	for _, idx := range set {
		vt := milp.Continuous
		if sys.Domains[idx] == relational.DomainInt {
			vt = milp.Integer
		}
		yv[idx] = model.AddVar("y"+strconv.Itoa(idx), -mBound, mBound, vt, 0)
	}
	for _, row := range sys.Rows {
		var terms []milp.Term
		rhs := row.RHS
		involves := false
		for idx, c := range row.Coeffs {
			rhs -= c * vals[idx]
			if v, ok := yv[idx]; ok {
				terms = append(terms, milp.Term{Var: v, Coeff: c})
				involves = true
			}
		}
		if !involves {
			// No item of the row may move: the row holds iff it holds at
			// the current values.
			lhs := row.RHS - rhs // = sum of coeffs*vals
			scale := 1e-6 * (1 + math.Abs(row.RHS))
			sat := false
			switch row.Rel {
			case aggrcons.LE:
				sat = lhs <= row.RHS+scale
			case aggrcons.GE:
				sat = lhs >= row.RHS-scale
			default:
				sat = math.Abs(lhs-row.RHS) <= scale
			}
			if !sat {
				return false, nil, nil
			}
			continue
		}
		sortTerms(terms)
		if err := model.AddConstraint(row.Name, terms, milpRel(row.Rel), rhs); err != nil {
			return false, nil, err
		}
	}
	sol, err := milp.Solve(model, milp.MILPOptions{})
	if err != nil {
		return false, nil, err
	}
	res.Nodes += sol.Nodes
	res.Iterations += sol.Iterations
	if sol.Status != milp.StatusOptimal {
		return false, nil, nil
	}
	out := append([]float64(nil), vals...)
	for _, idx := range set {
		out[idx] += sol.X[yv[idx]]
	}
	return true, out, nil
}

// repairFromValues diffs a solved value vector against the database.
// Operator-forced items whose forced value differs from the acquired one
// appear as updates, matching the MILP solver's extraction behaviour.
func repairFromValues(db *relational.Database, sys *System, vals []float64) *Repair {
	rep := &Repair{}
	for i, it := range sys.Items {
		newVal, err := relational.FromFloat(vals[i], sys.Domains[i])
		if err != nil {
			continue
		}
		if math.Abs(newVal.AsFloat()-sys.V[i]) <= 1e-6*(1+math.Abs(sys.V[i])) {
			continue
		}
		old := db.Relation(it.Relation).TupleByID(it.TupleID).Get(it.Attr)
		rep.Updates = append(rep.Updates, Update{Item: it, Old: old, New: newVal})
	}
	rep.Sort()
	return rep
}
