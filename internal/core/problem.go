package core

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"dart/internal/aggrcons"
	"dart/internal/relational"
)

// Problem is a prepared repair problem: the grounded linear system S(AC) of
// one (database, constraints) pair together with everything derivable from
// it alone — the connected-component decomposition, the per-item
// occurrence counts that drive the validation interface's display order —
// and a per-solver memo of already-solved components. Grounding a
// constraint set touches every tuple of the database; the validation loop
// of Section 6.3 re-solves after every batch of operator decisions, so
// building the system once per (database, constraints) pair and re-solving
// the prepared problem under changing pins removes an N× grounding cost
// from the loop. Prepare is the single entry point; solvers consume the
// problem through SolveProblem.
//
// A Problem is safe for concurrent use: component solves running in
// parallel (MILPSolver.Workers) share the memo under a mutex.
type Problem struct {
	db  *relational.Database
	acs []*aggrcons.Constraint
	sys *System

	mu      sync.Mutex
	comps   []*System
	occ     []int
	solvers map[string]*solverState
	stats   ProblemStats
}

// ProblemStats counts component-level solver work across the lifetime of a
// prepared problem. ComponentsSolved is the number of violated components
// actually handed to a solver; ComponentsReused is the number served from
// the memo because an identical component solve (same solver configuration,
// same pins restricted to the component) had already run.
type ProblemStats struct {
	ComponentsSolved int
	ComponentsReused int
}

// solverState is the per-solver-configuration slice of the memo.
type solverState struct {
	comps map[int]*componentState
}

// componentState memoizes solves of one connected component under one
// solver configuration.
type componentState struct {
	// memo maps a pin signature (pins restricted to the component's items)
	// to the finished component solve.
	memo map[string]*componentMemo
	// lastVals is the solved value vector of the most recent optimal solve,
	// kept as a warm-start candidate for solves under different pins.
	lastVals []float64
}

// componentMemo is one memoized component solve. Both fields are
// read-only after insertion.
type componentMemo struct {
	res  *Result
	vals []float64
}

// Prepare grounds the constraints on db once and returns the prepared
// problem. It fails exactly when BuildSystem does (non-steady or invalid
// constraints).
func Prepare(db *relational.Database, acs []*aggrcons.Constraint) (*Problem, error) {
	sys, err := BuildSystem(db, acs)
	if err != nil {
		return nil, err
	}
	return &Problem{db: db, acs: acs, sys: sys, solvers: map[string]*solverState{}}, nil
}

// Database returns the database the problem was prepared for.
func (p *Problem) Database() *relational.Database { return p.db }

// Constraints returns the constraint set the problem was prepared for.
func (p *Problem) Constraints() []*aggrcons.Constraint { return p.acs }

// System returns the grounded linear system S(AC). Callers must not
// mutate it.
func (p *Problem) System() *System { return p.sys }

// N returns the number of involved values.
func (p *Problem) N() int { return p.sys.N() }

// Components returns the connected-component decomposition, computed once
// and shared. Callers must not mutate the returned systems.
func (p *Problem) Components() []*System {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.comps == nil {
		p.comps = p.sys.Split()
	}
	return p.comps
}

// Occurrences returns the per-item ground-constraint participation counts
// (Section 6.3's display-ordering heuristic), computed once and shared.
// Callers must not mutate the returned slice.
func (p *Problem) Occurrences() []int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.occ == nil {
		p.occ = p.sys.Occurrences()
	}
	return p.occ
}

// Evidence renders the ground constraints whose translation mentions the
// item, capped at max entries (0 = all). The validation layer attaches
// these to suggestions so an operator sees *why* a cell is implicated
// before deciding.
func (p *Problem) Evidence(it Item, max int) []string {
	i := p.sys.IndexOf(it)
	if i < 0 {
		return nil
	}
	var out []string
	for _, r := range p.sys.Rows {
		if _, ok := r.Coeffs[i]; !ok {
			continue
		}
		if r.Ground != nil {
			out = append(out, r.Ground.String())
		} else {
			out = append(out, r.Name)
		}
		if max > 0 && len(out) == max {
			break
		}
	}
	return out
}

// Stats returns a snapshot of the component-solve counters.
func (p *Problem) Stats() ProblemStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// pinKey builds the memo signature of a pin set restricted to one
// component: Compile and violatedRows only ever read pins of items the
// component contains, so two solves of the same component under pin sets
// that agree on the component's items produce identical results.
func pinKey(sub *System, forced map[Item]float64) string {
	if len(forced) == 0 {
		return ""
	}
	var b strings.Builder
	for i, it := range sub.Items {
		if v, ok := forced[it]; ok {
			b.WriteString(strconv.Itoa(i))
			b.WriteByte('=')
			b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
			b.WriteByte(';')
		}
	}
	return b.String()
}

// componentState returns (creating on demand) the memo slot of one
// component under one solver fingerprint. Callers must hold p.mu.
func (p *Problem) componentState(fingerprint string, ci int) *componentState {
	ss := p.solvers[fingerprint]
	if ss == nil {
		ss = &solverState{comps: map[int]*componentState{}}
		p.solvers[fingerprint] = ss
	}
	cs := ss.comps[ci]
	if cs == nil {
		cs = &componentState{memo: map[string]*componentMemo{}}
		ss.comps[ci] = cs
	}
	return cs
}

// lookupComponent returns the memoized solve of component ci under the
// given solver fingerprint and pin signature, counting a reuse on hit.
func (p *Problem) lookupComponent(fingerprint string, ci int, key string) (*componentMemo, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	cs := p.componentState(fingerprint, ci)
	m, ok := cs.memo[key]
	if ok {
		p.stats.ComponentsReused++
	}
	return m, ok
}

// warmStart returns the solved value vector of the most recent optimal
// solve of component ci under the fingerprint, or nil.
func (p *Problem) warmStart(fingerprint string, ci int) []float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	cs := p.componentState(fingerprint, ci)
	return cs.lastVals
}

// storeComponent memoizes a finished component solve and counts it.
// Non-optimal results are recorded for reuse (the identical re-solve would
// fail identically) but never become warm-start candidates.
func (p *Problem) storeComponent(fingerprint string, ci int, key string, res *Result, vals []float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	cs := p.componentState(fingerprint, ci)
	cs.memo[key] = &componentMemo{res: res, vals: vals}
	if vals != nil {
		cs.lastVals = vals
	}
	p.stats.ComponentsSolved++
}

// solvedValues reconstructs the full value vector of a component solve:
// the acquired values overlaid with the repair's updates. The result is
// domain-exact (update values passed through relational.FromFloat), which
// warmCutoff relies on.
func solvedValues(sub *System, rep *Repair) []float64 {
	vals := append([]float64(nil), sub.V...)
	for _, u := range rep.Updates {
		if i := sub.IndexOf(u.Item); i >= 0 {
			vals[i] = u.New.AsFloat()
		}
	}
	return vals
}

// warmCutoff checks whether a candidate value vector is a feasible point
// of the component under the current pins and big-M bound, and if so
// returns its objective value (the number of changed items) for use as an
// exactness-preserving branch-and-bound cutoff. The check is strict:
// every row must hold within 1e-9 relative tolerance, every pinned item
// must carry exactly its pinned value, and every displacement must stay
// clear of the big-M bound so the claimed point is feasible in the
// M-model. Items are counted as changed on exact float inequality, which
// is safe because candidate vectors come from solvedValues (domain-exact)
// overlaid with operator pins.
func warmCutoff(sub *System, candidate []float64, forced map[Item]float64, mBound float64) (float64, bool) {
	vals := append([]float64(nil), candidate...)
	for it, v := range forced {
		if i := sub.IndexOf(it); i >= 0 {
			vals[i] = v
		}
	}
	card := 0.0
	for i, v := range vals {
		//dartvet:allow floatcmp -- candidates are copied bit-for-bit from solvedValues, so inequality means a real change
		if v != sub.V[i] {
			d := v - sub.V[i]
			if d < 0 {
				d = -d
			}
			if d > 0.999*mBound {
				return 0, false
			}
			card++
		}
	}
	if len(violatedRows(sub, vals, 1e-9)) > 0 {
		return 0, false
	}
	return card, true
}

// VerifyRepair checks a repair against the prepared system. The system's
// rows are exactly the ground constraints of the (database, constraints)
// pair — grounding depends only on the non-measure attributes a repair
// never touches — so evaluating the rows at the repaired values is
// equivalent to re-checking the repaired database, without cloning it or
// re-grounding. Solvers use it as their per-solve safety net inside the
// validation loop, where the database-level VerifyRepairs would reintroduce
// the per-iteration O(database) cost preparation removes.
func (p *Problem) VerifyRepair(rep *Repair, eps float64) error {
	vals := solvedValues(p.sys, rep)
	if rows := violatedRows(p.sys, vals, eps); len(rows) > 0 {
		return fmt.Errorf("core: repaired values still violate %d ground constraint rows (first: row %d)",
			len(rows), rows[0])
	}
	return nil
}

// fingerprintOf derives the memo fingerprint of a solver: its name plus
// any configuration that changes solve results. Solvers with richer
// configuration implement solverFingerprint to refine it.
func fingerprintOf(s Solver) string {
	if f, ok := s.(interface{ solverFingerprint() string }); ok {
		return f.solverFingerprint()
	}
	return s.Name()
}
